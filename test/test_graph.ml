(* Tests for the ids_graph substrate: bitsets, graph structure, generators,
   permutation group laws, automorphism/isomorphism search against brute
   force, spanning trees, and the paper's dumbbell/DSym families. *)

open Ids_graph
module Rng = Ids_bignum.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- bitsets --------------------------------------------------------------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 61; 62; 99 ] (Bitset.to_list s);
  Alcotest.(check bool) "mem 62" true (Bitset.mem s 62);
  Alcotest.(check bool) "not mem 63" false (Bitset.mem s 63);
  Bitset.remove s 62;
  Alcotest.(check bool) "removed" false (Bitset.mem s 62);
  Alcotest.(check (option int)) "choose" (Some 0) (Bitset.choose s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.add s 10);
  Alcotest.check_raises "mem negative" (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.mem s (-1)))

let test_bitset_set_ops () =
  let a = Bitset.of_list 70 [ 1; 3; 65 ] and b = Bitset.of_list 70 [ 3; 4; 65 ] in
  Alcotest.(check (list int)) "union" [ 1; 3; 4; 65 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3; 65 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check bool) "subset inter a" true (Bitset.subset (Bitset.inter a b) a);
  Alcotest.(check bool) "a not subset b" false (Bitset.subset a b);
  let c = Bitset.copy a in
  Bitset.add c 2;
  Alcotest.(check bool) "copy independent" false (Bitset.mem a 2)

let prop_bitset_list_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list roundtrip" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (int_bound 63))
    (fun xs ->
      let sorted = List.sort_uniq Stdlib.compare xs in
      Bitset.to_list (Bitset.of_list 64 xs) = sorted)

let test_bitset_sparse_mirrors_dense () =
  (* The sparse representation must answer every query identically. *)
  let rng = Rng.create 21 in
  for _ = 1 to 50 do
    let d = Bitset.create 200 and s = Bitset.create_sparse 200 in
    for _ = 1 to 60 do
      let x = Rng.int rng 200 in
      if Rng.int rng 3 = 0 then begin
        Bitset.remove d x;
        Bitset.remove s x
      end
      else begin
        Bitset.add d x;
        Bitset.add s x
      end
    done;
    Alcotest.(check bool) "is_sparse" true (Bitset.is_sparse s && not (Bitset.is_sparse d));
    Alcotest.(check (list int)) "same elements" (Bitset.to_list d) (Bitset.to_list s);
    Alcotest.(check int) "same cardinal" (Bitset.cardinal d) (Bitset.cardinal s);
    Alcotest.(check (option int)) "same choose" (Bitset.choose d) (Bitset.choose s);
    Alcotest.(check bool) "mixed equal d/s" true (Bitset.equal d s);
    Alcotest.(check bool) "mixed equal s/d" true (Bitset.equal s d);
    Alcotest.(check int) "fold order identical" (Bitset.fold (fun x acc -> (acc * 31) + x) d 7)
      (Bitset.fold (fun x acc -> (acc * 31) + x) s 7);
    let s' = Bitset.copy s in
    Alcotest.(check bool) "copy keeps repr" true (Bitset.is_sparse s');
    Bitset.add s' 199;
    Bitset.remove s' 198;
    Alcotest.(check bool) "copy independent"
      (Bitset.mem s 199 && not (Bitset.mem s 198))
      (Bitset.mem s' 199 && not (Bitset.mem s' 198) && Bitset.equal s s')
  done

(* The capacity-mismatch bugfix, pinned: [equal] is total — different
   capacities compare unequal instead of raising — in all four
   representation combinations, and within one capacity it is exactly
   element-set equality. *)
let prop_bitset_equal_total =
  let elems = QCheck.(list_of_size (QCheck.Gen.int_bound 12) (int_bound 49)) in
  QCheck.Test.make ~name:"bitset equal: total, capacity-sensitive, repr-blind" ~count:300
    QCheck.(quad (int_range 50 52) (int_range 50 52) elems elems)
    (fun (c1, c2, xs, ys) ->
      let want = c1 = c2 && List.sort_uniq Stdlib.compare xs = List.sort_uniq Stdlib.compare ys in
      List.for_all
        (fun (a, b) -> Bitset.equal a b = want && Bitset.equal b a = want)
        [ (Bitset.of_list c1 xs, Bitset.of_list c2 ys);
          (Bitset.of_list_sparse c1 xs, Bitset.of_list_sparse c2 ys);
          (Bitset.of_list c1 xs, Bitset.of_list_sparse c2 ys);
          (Bitset.of_list_sparse c1 xs, Bitset.of_list c2 ys)
        ])

(* --- graphs ---------------------------------------------------------------- *)

let test_graph_edges () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check int) "edge count" 3 (Graph.edge_count g);
  Alcotest.(check bool) "has 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 0-2" false (Graph.has_edge g 0 2);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1);
  Alcotest.(check (list (pair int int))) "edges sorted" [ (0, 1); (1, 2); (3, 4) ] (Graph.edges g);
  Graph.remove_edge g 0 1;
  Alcotest.(check bool) "removed" false (Graph.has_edge g 0 1)

let test_graph_self_loop_rejected () =
  let g = Graph.make 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 1 1)

let test_closed_neighborhood () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2) ] in
  Alcotest.(check (list int)) "N(0) includes 0" [ 0; 1; 2 ] (Bitset.to_list (Graph.closed_neighborhood g 0));
  Alcotest.(check (list int)) "N(3) = {3}" [ 3 ] (Bitset.to_list (Graph.closed_neighborhood g 3))

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (Graph.is_connected (Graph.path 6));
  Alcotest.(check bool) "two components" false (Graph.is_connected (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  Alcotest.(check bool) "single vertex" true (Graph.is_connected (Graph.make 1));
  Alcotest.(check bool) "empty on 2" false (Graph.is_connected (Graph.make 2))

let test_induced () =
  let g = Graph.cycle 6 in
  let h = Graph.induced g [ 0; 1; 2 ] in
  Alcotest.(check (list (pair int int))) "induced path" [ (0, 1); (1, 2) ] (Graph.edges h)

let test_disjoint_union () =
  let g = Graph.disjoint_union (Graph.path 3) (Graph.path 2) in
  Alcotest.(check (list (pair int int))) "union edges" [ (0, 1); (1, 2); (3, 4) ] (Graph.edges g)

let test_relabel () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.relabel g [| 2; 0; 1 |] in
  Alcotest.(check bool) "edge moved" true (Graph.has_edge h 2 0);
  Alcotest.(check int) "count kept" 1 (Graph.edge_count h)

let test_encode () =
  let g = Graph.of_edges 3 [ (0, 2) ] in
  Alcotest.(check string) "upper triangle" "010" (Graph.encode g);
  Alcotest.(check string) "row bits with self-loop" "101" (Graph.adjacency_row_bits g 0)

let test_generators_shape () =
  Alcotest.(check int) "cycle edges" 7 (Graph.edge_count (Graph.cycle 7));
  Alcotest.(check int) "complete edges" 10 (Graph.edge_count (Graph.complete 5));
  Alcotest.(check int) "star edges" 6 (Graph.edge_count (Graph.star 7));
  Alcotest.(check int) "K_{3,4} edges" 12 (Graph.edge_count (Graph.complete_bipartite 3 4));
  Alcotest.(check int) "hypercube Q3 edges" 12 (Graph.edge_count (Graph.hypercube 3));
  let p = Graph.petersen () in
  Alcotest.(check int) "petersen edges" 15 (Graph.edge_count p);
  for v = 0 to 9 do
    Alcotest.(check int) "petersen 3-regular" 3 (Graph.degree p v)
  done;
  Alcotest.(check int) "grid 3x4 edges" 17 (Graph.edge_count (Graph.grid 3 4));
  Alcotest.(check bool) "grid connected" true (Graph.is_connected (Graph.grid 3 4))

let test_random_gnp_extremes () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "p=0 gives no edges" 0 (Graph.edge_count (Graph.random_gnp rng 10 0.0));
  Alcotest.(check int) "p=1 gives complete" 45 (Graph.edge_count (Graph.random_gnp rng 10 1.0));
  let g = Graph.random_connected_gnp rng 20 0.05 in
  Alcotest.(check bool) "forced connectivity" true (Graph.is_connected g)

(* --- permutations ----------------------------------------------------------- *)

let arb_perm n =
  QCheck.make
    ~print:(fun p -> Format.asprintf "%a" Perm.pp p)
    (QCheck.Gen.map
       (fun seed -> Perm.random (Rng.create seed) n)
       QCheck.Gen.(int_bound 1_000_000))

let prop_perm_compose_inverse =
  QCheck.Test.make ~name:"p o p^-1 = id" ~count:200 (arb_perm 12) (fun p ->
      Perm.is_identity (Perm.compose p (Perm.inverse p)) && Perm.is_identity (Perm.compose (Perm.inverse p) p))

let prop_perm_compose_assoc =
  QCheck.Test.make ~name:"composition associative" ~count:100
    (QCheck.triple (arb_perm 9) (arb_perm 9) (arb_perm 9)) (fun (a, b, c) ->
      Perm.equal (Perm.compose a (Perm.compose b c)) (Perm.compose (Perm.compose a b) c))

let prop_relabel_compose =
  QCheck.Test.make ~name:"relabel by composition = composed relabel" ~count:100
    (QCheck.pair (arb_perm 8) (arb_perm 8)) (fun (a, b) ->
      let rng = Rng.create 5 in
      let g = Graph.random_gnp rng 8 0.4 in
      Graph.equal
        (Graph.relabel g (Perm.to_array (Perm.compose a b)))
        (Graph.relabel (Graph.relabel g (Perm.to_array b)) (Perm.to_array a)))

let test_perm_validation () =
  Alcotest.check_raises "not injective" (Invalid_argument "Perm.of_array: not injective") (fun () ->
      ignore (Perm.of_array [| 0; 0; 1 |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Perm.of_array: out of range") (fun () ->
      ignore (Perm.of_array [| 0; 3 |]))

let test_perm_all_count () =
  Alcotest.(check int) "4! perms" 24 (List.length (Perm.all 4));
  let distinct = List.sort_uniq Stdlib.compare (List.map Perm.to_array (Perm.all 4)) in
  Alcotest.(check int) "all distinct" 24 (List.length distinct)

let test_perm_apply_set () =
  let p = Perm.of_array [| 1; 2; 0; 3 |] in
  let s = Bitset.of_list 4 [ 0; 2 ] in
  Alcotest.(check (list int)) "image" [ 0; 1 ] (Bitset.to_list (Perm.apply_set p s))

let test_transposition () =
  let t = Perm.transposition 5 1 3 in
  Alcotest.(check int) "t 1" 3 (Perm.apply t 1);
  Alcotest.(check int) "t 3" 1 (Perm.apply t 3);
  Alcotest.(check int) "fixes 0" 0 (Perm.apply t 0);
  Alcotest.(check int) "fixpoints" 3 (Perm.fixpoint_count t)

(* --- iso / automorphisms ----------------------------------------------------- *)

let test_symmetric_classics () =
  List.iter
    (fun (name, g) -> Alcotest.(check bool) name true (Iso.is_symmetric g))
    [ ("path P5 (reversal)", Graph.path 5);
      ("cycle C6", Graph.cycle 6);
      ("complete K5", Graph.complete 5);
      ("star S6", Graph.star 6);
      ("petersen", Graph.petersen ());
      ("hypercube Q3", Graph.hypercube 3);
      ("K_{3,3}", Graph.complete_bipartite 3 3)
    ]

let smallest_asymmetric () =
  (* The 6-vertex asymmetric graph: a triangle with pendant paths of lengths
     1, 2 and 0 attached to distinct corners... we use the standard example
     X_6: path 0-1-2-3-4 plus edges 1-5, 2-5. *)
  Graph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 5); (2, 5) ]

let test_asymmetric_example () =
  let g = smallest_asymmetric () in
  Alcotest.(check bool) "asymmetric" true (Iso.is_asymmetric g);
  Alcotest.(check int) "automorphism count 1" 1 (Iso.automorphism_count g)

let test_automorphism_count_classics () =
  Alcotest.(check int) "K4 has 24" 24 (Iso.automorphism_count (Graph.complete 4));
  Alcotest.(check int) "C5 has 10" 10 (Iso.automorphism_count (Graph.cycle 5));
  Alcotest.(check int) "P4 has 2" 2 (Iso.automorphism_count (Graph.path 4))

let test_found_automorphism_is_valid () =
  List.iter
    (fun g ->
      match Iso.find_nontrivial_automorphism g with
      | None -> Alcotest.fail "expected automorphism"
      | Some rho ->
        Alcotest.(check bool) "valid" true (Iso.is_automorphism g rho);
        Alcotest.(check bool) "non-trivial" false (Perm.is_identity rho))
    [ Graph.cycle 8; Graph.petersen (); Graph.hypercube 4; Graph.star 10 ]

let test_brute_force_agreement () =
  (* On every graph of a deterministic sample at n = 6, the backtracking
     search must agree with exhaustive enumeration. *)
  let rng = Rng.create 2024 in
  for _ = 1 to 60 do
    let g = Graph.random_gnp rng 6 0.45 in
    let brute = Iso.automorphism_count g > 1 in
    Alcotest.(check bool) "search = brute force" brute (Iso.is_symmetric g)
  done

let test_isomorphism_of_relabelling () =
  let rng = Rng.create 7 in
  for _ = 1 to 30 do
    let g = Graph.random_gnp rng 10 0.4 in
    let p = Perm.random rng 10 in
    let h = Graph.relabel g (Perm.to_array p) in
    match Iso.find_isomorphism g h with
    | None -> Alcotest.fail "relabelling must be isomorphic"
    | Some rho -> Alcotest.(check bool) "witness valid" true (Iso.is_isomorphism g h rho)
  done

let test_non_isomorphic_detected () =
  let g1 = Graph.cycle 6 in
  let g2 = Graph.disjoint_union (Graph.cycle 3) (Graph.cycle 3) in
  Alcotest.(check bool) "C6 vs 2xC3" false (Iso.are_isomorphic g1 g2);
  (* Same degree sequence, different structure. *)
  let star_plus = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4); (1, 2) ] in
  let path_plus = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 3) ] in
  Alcotest.(check bool) "5-vertex pair" false (Iso.are_isomorphic star_plus path_plus)

let test_canonical_small () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let g = Graph.random_gnp rng 6 0.5 in
    let p = Perm.random rng 6 in
    let h = Graph.relabel g (Perm.to_array p) in
    Alcotest.(check string) "canonical invariant" (Iso.canonical_small g) (Iso.canonical_small h)
  done;
  let c6 = Graph.cycle 6 and two_c3 = Graph.disjoint_union (Graph.cycle 3) (Graph.cycle 3) in
  Alcotest.(check bool) "distinct classes differ" true (Iso.canonical_small c6 <> Iso.canonical_small two_c3)

let test_refine_colors_orbits () =
  (* In a star, the center must get a different color from the leaves. *)
  let colors = Iso.refine_colors (Graph.star 6) in
  Alcotest.(check bool) "center separated" true (colors.(0) <> colors.(1));
  for v = 2 to 5 do
    Alcotest.(check int) "leaves alike" colors.(1) colors.(v)
  done

(* --- spanning trees ---------------------------------------------------------- *)

let test_bfs_tree_valid () =
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let g = Graph.random_connected_gnp rng 15 0.3 in
    let t = Spanning_tree.bfs g 0 in
    Alcotest.(check bool) "valid" true (Spanning_tree.is_valid g t)
  done

let test_bfs_distances_are_shortest () =
  let g = Graph.cycle 8 in
  let t = Spanning_tree.bfs g 0 in
  Alcotest.(check int) "dist to 4" 4 t.Spanning_tree.dist.(4);
  Alcotest.(check int) "dist to 7" 1 t.Spanning_tree.dist.(7)

let test_bfs_disconnected_rejected () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  Alcotest.check_raises "disconnected" (Invalid_argument "Spanning_tree.bfs: graph not connected") (fun () ->
      ignore (Spanning_tree.bfs g 0))

let test_subtree_partition () =
  let g = Graph.star 7 in
  let t = Spanning_tree.bfs g 0 in
  Alcotest.(check (list int)) "root subtree is everything" [ 0; 1; 2; 3; 4; 5; 6 ] (Spanning_tree.subtree t 0);
  Alcotest.(check (list int)) "leaf subtree" [ 3 ] (Spanning_tree.subtree t 3);
  Alcotest.(check (list int)) "children of root" [ 1; 2; 3; 4; 5; 6 ] (Spanning_tree.children t 0)

let test_tree_validation_catches_forgery () =
  let g = Graph.cycle 6 in
  let t = Spanning_tree.bfs g 0 in
  let forged = { t with Spanning_tree.dist = Array.map (fun d -> d + 1) t.Spanning_tree.dist } in
  Alcotest.(check bool) "bad root distance" false (Spanning_tree.is_valid g forged);
  let bad_parent = Array.copy t.Spanning_tree.parent in
  bad_parent.(3) <- 0;
  (* 0 is not adjacent to 3 in C6 *)
  Alcotest.(check bool) "non-edge parent" false
    (Spanning_tree.is_valid g { t with Spanning_tree.parent = bad_parent })

(* --- families ---------------------------------------------------------------- *)

let test_random_asymmetric () =
  let rng = Rng.create 31 in
  List.iter
    (fun n ->
      let g = Family.random_asymmetric rng n in
      Alcotest.(check bool) "connected" true (Graph.is_connected g);
      Alcotest.(check bool) "asymmetric" true (Iso.is_asymmetric g))
    [ 6; 7; 8; 12 ]

let test_random_asymmetric_small_rejected () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "n=4 impossible"
    (Invalid_argument "Family.random_asymmetric: no asymmetric graph exists for 2 <= n <= 5") (fun () ->
      ignore (Family.random_asymmetric rng 4))

let test_random_symmetric () =
  let rng = Rng.create 5 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      Alcotest.(check bool) "connected" true (Graph.is_connected g);
      Alcotest.(check bool) "symmetric" true (Iso.is_symmetric g))
    [ 4; 6; 8; 14; 21 ]

let test_asymmetric_family_pairwise () =
  let rng = Rng.create 12 in
  let fam = Family.asymmetric_family rng ~n:7 ~size:5 in
  Alcotest.(check int) "size" 5 (List.length fam);
  List.iteri
    (fun i g ->
      Alcotest.(check bool) "asymmetric" true (Iso.is_asymmetric g);
      List.iteri (fun j h -> if i < j then Alcotest.(check bool) "non-isomorphic" false (Iso.are_isomorphic g h)) fam)
    fam

(* The crucial combinatorial fact behind both Section 3.3 and the Section 3.4
   lower bound: the dumbbell G(F_A, F_B) is symmetric iff F_A = F_B. *)
let test_dumbbell_symmetry_iff_equal_sides () =
  let rng = Rng.create 77 in
  let fam = Family.asymmetric_family rng ~n:6 ~size:4 in
  List.iteri
    (fun i f_a ->
      List.iteri
        (fun j f_b ->
          let g = Family.dumbbell f_a f_b in
          Alcotest.(check bool)
            (Printf.sprintf "dumbbell (%d,%d) symmetric iff same side" i j)
            (i = j) (Iso.is_symmetric g))
        fam)
    fam

let test_dumbbell_mirror_is_automorphism () =
  let rng = Rng.create 41 in
  let f = Family.random_asymmetric rng 6 in
  let g = Family.dumbbell f f in
  let m = Family.dumbbell_mirror 6 in
  Alcotest.(check bool) "mirror valid" true (Iso.is_automorphism g m);
  Alcotest.(check bool) "mirror non-trivial" false (Perm.is_identity m);
  Alcotest.(check int) "x_a index" 12 (Family.dumbbell_x_a f);
  Alcotest.(check int) "x_b index" 13 (Family.dumbbell_x_b f)

let test_dsym_membership () =
  let rng = Rng.create 6 in
  let f = Family.random_asymmetric rng 6 in
  let g = Family.dsym_graph f 2 in
  Alcotest.(check int) "vertex count 2n+2r+1" 17 (Graph.n g);
  Alcotest.(check bool) "member" true (Family.is_dsym_member ~n:6 ~r:2 g);
  Alcotest.(check bool) "sigma is automorphism" true (Iso.is_automorphism g (Family.dsym_sigma ~n:6 ~r:2));
  Alcotest.(check bool) "graph is symmetric" true (Iso.is_symmetric g)

let test_dsym_sigma_involution () =
  let s = Family.dsym_sigma ~n:5 ~r:3 in
  Alcotest.(check bool) "involution" true (Perm.is_identity (Perm.compose s s));
  Alcotest.(check bool) "non-trivial" false (Perm.is_identity s);
  (* Spot-check the path reversal clauses of Definition 5. *)
  Alcotest.(check int) "2n -> 2n+2r" 16 (Perm.apply s 10);
  Alcotest.(check int) "2n+1 -> 2n+2r-1" 15 (Perm.apply s 11)

let test_dsym_perturbed_is_no_instance () =
  let rng = Rng.create 10 in
  let f = Family.random_asymmetric rng 6 in
  for _ = 1 to 10 do
    let bad = Family.dsym_perturbed rng f 2 in
    Alcotest.(check bool) "not a member" false (Family.is_dsym_member ~n:6 ~r:2 bad);
    Alcotest.(check bool) "still connected" true (Graph.is_connected bad)
  done

let suite =
  [ ( "bitset",
      [ Alcotest.test_case "basic ops" `Quick test_bitset_basic;
        Alcotest.test_case "bounds checked" `Quick test_bitset_bounds;
        Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
        Alcotest.test_case "sparse mirrors dense" `Quick test_bitset_sparse_mirrors_dense;
        qtest prop_bitset_list_roundtrip;
        qtest prop_bitset_equal_total
      ] );
    ( "graph",
      [ Alcotest.test_case "edges" `Quick test_graph_edges;
        Alcotest.test_case "self-loops rejected" `Quick test_graph_self_loop_rejected;
        Alcotest.test_case "closed neighborhood" `Quick test_closed_neighborhood;
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "induced subgraph" `Quick test_induced;
        Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
        Alcotest.test_case "relabel" `Quick test_relabel;
        Alcotest.test_case "encode" `Quick test_encode;
        Alcotest.test_case "generators" `Quick test_generators_shape;
        Alcotest.test_case "gnp extremes" `Quick test_random_gnp_extremes
      ] );
    ( "perm",
      [ Alcotest.test_case "validation" `Quick test_perm_validation;
        Alcotest.test_case "all 4! permutations" `Quick test_perm_all_count;
        Alcotest.test_case "apply_set" `Quick test_perm_apply_set;
        Alcotest.test_case "transposition" `Quick test_transposition;
        qtest prop_perm_compose_inverse;
        qtest prop_perm_compose_assoc;
        qtest prop_relabel_compose
      ] );
    ( "iso",
      [ Alcotest.test_case "classic symmetric graphs" `Quick test_symmetric_classics;
        Alcotest.test_case "smallest asymmetric graph" `Quick test_asymmetric_example;
        Alcotest.test_case "automorphism counts" `Quick test_automorphism_count_classics;
        Alcotest.test_case "returned witness valid" `Quick test_found_automorphism_is_valid;
        Alcotest.test_case "agrees with brute force (n=6)" `Quick test_brute_force_agreement;
        Alcotest.test_case "isomorphism of relabelling" `Quick test_isomorphism_of_relabelling;
        Alcotest.test_case "non-isomorphic detected" `Quick test_non_isomorphic_detected;
        Alcotest.test_case "canonical form invariant" `Quick test_canonical_small;
        Alcotest.test_case "color refinement orbits" `Quick test_refine_colors_orbits
      ] );
    ( "spanning_tree",
      [ Alcotest.test_case "bfs tree valid" `Quick test_bfs_tree_valid;
        Alcotest.test_case "bfs shortest distances" `Quick test_bfs_distances_are_shortest;
        Alcotest.test_case "disconnected rejected" `Quick test_bfs_disconnected_rejected;
        Alcotest.test_case "subtrees and children" `Quick test_subtree_partition;
        Alcotest.test_case "validation catches forgery" `Quick test_tree_validation_catches_forgery
      ] );
    ( "family",
      [ Alcotest.test_case "random asymmetric" `Quick test_random_asymmetric;
        Alcotest.test_case "asymmetric impossible small n" `Quick test_random_asymmetric_small_rejected;
        Alcotest.test_case "random symmetric" `Quick test_random_symmetric;
        Alcotest.test_case "family pairwise non-isomorphic" `Quick test_asymmetric_family_pairwise;
        Alcotest.test_case "dumbbell symmetric iff equal sides" `Quick test_dumbbell_symmetry_iff_equal_sides;
        Alcotest.test_case "dumbbell mirror automorphism" `Quick test_dumbbell_mirror_is_automorphism;
        Alcotest.test_case "DSym membership" `Quick test_dsym_membership;
        Alcotest.test_case "DSym sigma involution" `Quick test_dsym_sigma_involution;
        Alcotest.test_case "DSym perturbation is NO instance" `Quick test_dsym_perturbed_is_no_instance
      ] )
  ]
