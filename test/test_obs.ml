(* Tests for the tracing/metrics layer (lib/obs) and its integrations:
   determinism of traced runs across worker counts, canonical span order,
   exact agreement between the per-round bit counters and the Cost ledger,
   Chrome-trace export shape, Runlog schema v2/v3 readback, and the lazy
   run-log sink. *)

module Obs = Ids_obs.Obs
module Json = Ids_obs.Json
module Trace = Ids_obs.Trace
module Engine = Ids_engine.Engine
module Runlog = Ids_engine.Runlog
module Rng = Ids_bignum.Rng
module Nat = Ids_bignum.Nat
module Family = Ids_graph.Family
open Ids_proof

(* Tracing is process-global state; every test that turns it on must leave
   it the way the suite runs (off unless IDS_TRACE was exported). *)
let with_tracing f =
  let before = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.reset (); Obs.set_enabled before) f

let strip (e : Engine.estimate) =
  ( e.Engine.trials,
    e.Engine.accepts,
    e.Engine.rate,
    e.Engine.mean_bits,
    e.Engine.max_bits,
    e.Engine.ci_low,
    e.Engine.ci_high,
    e.Engine.stopped_early )

let sym16 = lazy (Family.random_symmetric (Rng.create 99) 16)

let sym_trial seed = Stats.trial_of_outcome (Sym_dmam.run ~seed (Lazy.force sym16) Sym_dmam.honest)

(* --- determinism ---------------------------------------------------------------- *)

let test_traced_estimates_deterministic () =
  (* Tracing must not draw randomness or change control flow: the same
     estimate bit-for-bit whether tracing is off or on, for any worker
     count. *)
  let untraced = Engine.run ~domains:1 ~trials:60 sym_trial in
  with_tracing (fun () ->
      List.iter
        (fun d ->
          let e = Engine.run ~domains:d ~trials:60 sym_trial in
          Alcotest.(check bool)
            (Printf.sprintf "traced, domains=%d, identical to untraced" d)
            true
            (strip e = strip untraced))
        [ 1; 2; 4 ])

let span_labels () =
  List.filter_map
    (fun (s : Obs.span_record) ->
      (* Chunk spans are labeled by chunk index, which depends on the chunk
         size, not the worker count — but the scheduler only emits them for
         engine-driven runs, and their count is worker-dependent only via
         the final ragged chunk. They're excluded from the canonical-label
         claim, which is about protocol structure. *)
      if s.Obs.sname = "scheduler.chunk" then None else Some (s.Obs.sname, s.Obs.sround, s.Obs.snode))
    (Obs.spans ())

let test_span_order_canonical_across_domains () =
  let labels_for d =
    with_tracing (fun () ->
        ignore (Engine.run ~domains:d ~trials:40 sym_trial : Engine.estimate);
        span_labels ())
  in
  let reference = labels_for 1 in
  Alcotest.(check bool) "some spans recorded" true (reference <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d same canonical label sequence" d)
        true
        (labels_for d = reference))
    [ 2; 4 ]

(* --- counters vs the Cost ledger -------------------------------------------------- *)

let counter name (s : Obs.snapshot) = List.find_opt (fun c -> c.Obs.cname = name) s.Obs.counters

let total name s = match counter name s with Some c -> c.Obs.total | None -> 0

let test_counters_sum_to_cost_ledger () =
  (* The acceptance criterion of the tracing layer: per-round bit counters
     are bumped at the same program points, by the same amounts, as the
     Cost ledger — so over any window their totals equal the summed
     Outcome.total_bits exactly. dSym at n = 24, per the spec. *)
  let f = Family.random_asymmetric (Rng.create 7) 24 in
  let inst = Dsym.make_instance ~n:24 ~r:2 (Family.dsym_graph f 2) in
  with_tracing (fun () ->
      let ledger = ref 0 in
      for seed = 1 to 12 do
        let o = Dsym.run ~seed inst Dsym.honest in
        ledger := !ledger + o.Outcome.total_bits
      done;
      let s = Obs.snapshot () in
      let counted = total "net.to_prover_bits" s + total "net.from_prover_bits" s in
      Alcotest.(check int) "counters = Cost ledger, exactly" !ledger counted;
      (* Bit counters only ever bump labeled (round, node) cells, so the
         per-round rows must add back up to each counter's total. *)
      List.iter
        (fun name ->
          match counter name s with
          | None -> Alcotest.fail (name ^ " missing")
          | Some c ->
            let round_sum = List.fold_left (fun a (r : Obs.round_row) -> a + r.Obs.sum) 0 c.Obs.rounds in
            Alcotest.(check int) (name ^ " rounds sum to total") c.Obs.total round_sum;
            List.iter
              (fun (r : Obs.round_row) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s round %d max cell <= sum" name r.Obs.round)
                  true
                  (r.Obs.max_node <= r.Obs.sum && r.Obs.max_node > 0))
              c.Obs.rounds)
        [ "net.to_prover_bits"; "net.from_prover_bits" ])

let test_montgomery_counters () =
  with_tracing (fun () ->
      let m = Nat.of_int 1_000_003 in
      let ctx = Ids_bignum.Montgomery.make m in
      let before = total "mont.pow" (Obs.snapshot ()) in
      let r = Ids_bignum.Montgomery.pow ctx (Nat.of_int 1234) (Nat.of_int 56789) in
      let s = Obs.snapshot () in
      Alcotest.(check bool) "result sane" true (Nat.compare r m < 0);
      Alcotest.(check int) "one pow counted" (before + 1) (total "mont.pow" s);
      Alcotest.(check bool) "reductions counted" true (total "mont.redc" s > 0);
      match List.find_opt (fun h -> h.Obs.hname = "mont.pow_bits") s.Obs.histos with
      | None -> Alcotest.fail "mont.pow_bits histogram missing"
      | Some h ->
        Alcotest.(check int) "one exponent observed"
          1
          (List.fold_left (fun a (_, c) -> a + c) 0 h.Obs.buckets))

(* --- primitives ------------------------------------------------------------------- *)

let test_histo_buckets () =
  List.iter
    (fun (v, b) -> Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Obs.Histo.bucket_of v))
    [ (-3, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1023, 10); (1024, 11) ]

let test_disabled_records_nothing () =
  with_tracing (fun () ->
      Obs.set_enabled false;
      let c = Obs.Counter.make "test.disabled" in
      Obs.Counter.add c 5;
      Obs.Counter.add_cell c ~round:1 ~node:2 7;
      ignore (Obs.span "test.disabled.span" (fun () -> 42) : int);
      Alcotest.(check int) "no ops recorded" 0 (Obs.ops_count ());
      Alcotest.(check bool) "no spans" true (Obs.spans () = []);
      let s = Obs.snapshot () in
      Alcotest.(check bool) "no counter cells" true (counter "test.disabled" s = None))

let test_ops_count_and_reset_metrics () =
  with_tracing (fun () ->
      let c = Obs.Counter.make "test.ops" in
      let h = Obs.Histo.make "test.ops.h" in
      Obs.Counter.add c 3;
      Obs.Counter.add_cell c ~round:2 ~node:1 4;
      Obs.Histo.observe h 9;
      ignore (Obs.span ~round:1 "test.ops.span" (fun () -> ()) : unit);
      Alcotest.(check int) "four instrumentation calls" 4 (Obs.ops_count ());
      (match counter "test.ops" (Obs.snapshot ()) with
      | Some c -> Alcotest.(check int) "total over cells" 7 c.Obs.total
      | None -> Alcotest.fail "counter missing");
      Obs.reset_metrics ();
      let s = Obs.snapshot () in
      Alcotest.(check bool) "metrics cleared" true (counter "test.ops" s = None);
      Alcotest.(check bool) "spans survive reset_metrics" true
        (List.exists (fun (r : Obs.span_record) -> r.Obs.sname = "test.ops.span") (Obs.spans ())))

(* --- trace export ------------------------------------------------------------------ *)

let test_trace_export_parses () =
  with_tracing (fun () ->
      ignore (sym_trial 1 : Ids_engine.Accum.trial);
      let path = Filename.temp_file "ids_test_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.write_file path;
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let body = really_input_string ic len in
          close_in ic;
          match Json.parse body with
          | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
          | Ok j -> (
            match Option.bind (Json.member "traceEvents" j) Json.to_list with
            | None | Some [] -> Alcotest.fail "no traceEvents"
            | Some events ->
              List.iter
                (fun ev ->
                  let str name = Option.bind (Json.member name ev) Json.to_string in
                  Alcotest.(check (option string)) "complete event" (Some "X") (str "ph");
                  Alcotest.(check bool) "has name" true (str "name" <> None);
                  Alcotest.(check bool) "has ts" true
                    (Option.bind (Json.member "ts" ev) Json.to_float <> None);
                  Alcotest.(check bool) "has dur" true
                    (Option.bind (Json.member "dur" ev) Json.to_float <> None))
                events)))

(* --- run-log schema v2/v3 ----------------------------------------------------------- *)

let v2_line =
  {|{"schema_version":2,"protocol":"sym_dmam","n":16,"prover":"honest","fault":"drop=0.1","trials":80,"accepts":78,"rate":0.975,"ci_low":0.913,"ci_high":0.993,"mean_bits":87.2,"max_bits":92,"domains":4,"stopped_early":false}|}

let v3_line =
  {|{"schema_version":3,"protocol":"dsym","n":24,"prover":"honest","trials":12,"accepts":12,"rate":1,"ci_low":0.757,"ci_high":1,"mean_bits":130.5,"max_bits":134,"domains":1,"stopped_early":false,"metrics":{"counters":[{"name":"net.from_prover_bits","total":100,"rounds":[[2,60,30],[3,40,20]]}],"histos":[],"spans_dropped":0}}|}

let test_runlog_reads_v2_and_v3 () =
  (match Runlog.of_line v2_line with
  | Error e -> Alcotest.fail ("v2 rejected: " ^ e)
  | Ok r ->
    Alcotest.(check int) "v2 version" 2 r.Runlog.version;
    Alcotest.(check (option string)) "v2 fault" (Some "drop=0.1") r.Runlog.fault;
    Alcotest.(check bool) "v2 has no metrics" true (r.Runlog.metrics = None));
  match Runlog.of_line v3_line with
  | Error e -> Alcotest.fail ("v3 rejected: " ^ e)
  | Ok r ->
    Alcotest.(check int) "v3 version" 3 r.Runlog.version;
    Alcotest.(check int) "v3 n" 24 r.Runlog.n;
    (match r.Runlog.metrics with
    | None -> Alcotest.fail "v3 metrics missing"
    | Some m ->
      Alcotest.(check bool) "metrics is an object with counters" true
        (Json.member "counters" m <> None))

let test_runlog_rejects_unknown_version () =
  let bad =
    {|{"schema_version":9,"protocol":"x","n":1,"prover":"p","trials":1,"accepts":1,"rate":1,"ci_low":1,"ci_high":1,"mean_bits":1,"max_bits":1,"domains":1,"stopped_early":false}|}
  in
  match Runlog.of_line bad with
  | Ok _ -> Alcotest.fail "schema_version 9 accepted"
  | Error e ->
    Alcotest.(check bool)
      ("error names the supported range: " ^ e)
      true
      (String.length e >= 22 && String.sub e 0 22 = "unknown schema_version")

let test_runlog_read_file_mixed () =
  let path = Filename.temp_file "ids_test_runs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (v2_line ^ "\n\n" ^ v3_line ^ "\n");
      close_out oc;
      (match Runlog.read_file path with
      | Error e -> Alcotest.fail e
      | Ok records ->
        Alcotest.(check int) "two records (blank line skipped)" 2 (List.length records);
        Alcotest.(check (list int)) "versions in file order" [ 2; 3 ]
          (List.map (fun (r : Runlog.record) -> r.Runlog.version) records));
      let oc = open_out path in
      output_string oc (v2_line ^ "\n{broken\n");
      close_out oc;
      match Runlog.read_file path with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error e ->
        Alcotest.(check bool) ("error carries the line number: " ^ e) true
          (let marker = ":2:" in
           let rec contains i =
             i + String.length marker <= String.length e
             && (String.sub e i (String.length marker) = marker || contains (i + 1))
           in
           contains 0))

(* --- lazy sink ----------------------------------------------------------------------- *)

let test_lazy_sink_creates_no_file_until_log () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "ids_test_lazy_sink.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (* open_from_env prefers IDS_RUNLOG when exported; the default-path
     behavior under test is only reachable without it. *)
  if Sys.getenv_opt "IDS_RUNLOG" = None then
    Fun.protect
      ~finally:(fun () ->
        Runlog.close ();
        if Sys.file_exists path then Sys.remove path)
      (fun () ->
        Runlog.open_from_env ~default:path ();
        Alcotest.(check bool) "no file before the first record" false (Sys.file_exists path);
        let e = Engine.run ~domains:1 ~trials:5 sym_trial in
        Runlog.log ~protocol:"test" ~n:16 ~prover:"honest" e;
        Alcotest.(check bool) "file exists after the first record" true (Sys.file_exists path);
        Runlog.close ();
        match Runlog.read_file path with
        | Ok [ r ] -> Alcotest.(check int) "round-trips at v3" 3 r.Runlog.version
        | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length l))
        | Error err -> Alcotest.fail err)

let suite =
  [ ( "obs",
      [ Alcotest.test_case "traced estimates deterministic across domains" `Slow
          test_traced_estimates_deterministic;
        Alcotest.test_case "span label order canonical across domains" `Slow
          test_span_order_canonical_across_domains;
        Alcotest.test_case "bit counters sum exactly to the Cost ledger (dSym n=24)" `Quick
          test_counters_sum_to_cost_ledger;
        Alcotest.test_case "Montgomery kernel counters" `Quick test_montgomery_counters;
        Alcotest.test_case "histogram bucketing" `Quick test_histo_buckets;
        Alcotest.test_case "disabled tracing records nothing" `Quick test_disabled_records_nothing;
        Alcotest.test_case "ops count and reset_metrics" `Quick test_ops_count_and_reset_metrics;
        Alcotest.test_case "Chrome trace export parses" `Quick test_trace_export_parses;
        Alcotest.test_case "runlog reads schema v2 and v3" `Quick test_runlog_reads_v2_and_v3;
        Alcotest.test_case "runlog rejects unknown schema versions" `Quick
          test_runlog_rejects_unknown_version;
        Alcotest.test_case "runlog read_file: mixed versions, line errors" `Quick
          test_runlog_read_file_mixed;
        Alcotest.test_case "run-log sink is created lazily" `Quick
          test_lazy_sink_creates_no_file_until_log
      ] )
  ]
