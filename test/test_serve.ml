(* The verification service: supervisor state machine (deterministic, no
   forks, fake clock), chaos injector determinism, wire codec round-trips,
   and crash-safe framed run log recovery.  The real-fork worker integration
   test lives in test_serve_fork.ml: OCaml 5 forbids Unix.fork after any
   Domain.spawn, and this binary's engine suites are multi-domain. *)

module Supervisor = Ids_serve.Supervisor
module Chaos = Ids_serve.Chaos
module Request = Ids_serve.Request
module Runlog = Ids_engine.Runlog
module Fault = Ids_network.Fault

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A compact action rendering so transition tests read as scripts. *)
let action_to_string = function
  | Supervisor.Assign { worker; req; attempt; _ } ->
    Printf.sprintf "assign(%d,%s,#%d)" worker req attempt
  | Supervisor.Spawn w -> Printf.sprintf "spawn(%d)" w
  | Supervisor.Kill { worker; req } -> Printf.sprintf "kill(%d,%s)" worker req
  | Supervisor.Complete { req; attempts } -> Printf.sprintf "complete(%s,#%d)" req attempts
  | Supervisor.Reject { req; reject } ->
    let r =
      match reject with
      | Request.Overloaded -> "overloaded"
      | Request.Draining -> "draining"
      | Request.Bad_request _ -> "bad_request"
      | Request.Failed _ -> "failed"
    in
    Printf.sprintf "reject(%s,%s)" req r
  | Supervisor.Stopped -> "stopped"

let actions = Alcotest.(check (list string))
let step t ~now ev = List.map action_to_string (Supervisor.step t ~now ev)

let cfg ?(workers = 2) ?(queue_bound = 8) ?(max_attempts = 3) ?(restart_budget = 4)
    ?(deadline = 10.) () =
  { Supervisor.workers;
    queue_bound;
    max_attempts;
    restart_budget;
    backoff_base = 0.05;
    backoff_mult = 2.0;
    backoff_cap = 1.0;
    deadline
  }

(* --- supervisor: pure transitions ------------------------------------------------- *)

let test_backoff_schedule () =
  let c = cfg () in
  let delays = List.map (fun f -> Supervisor.backoff_delay c ~failures:f) [ 1; 2; 3; 4; 5; 6 ] in
  check
    Alcotest.(list (float 1e-9))
    "exponential, capped" [ 0.05; 0.1; 0.2; 0.4; 0.8; 1.0 ] delays;
  checkb "validate default" true (Result.is_ok (Supervisor.validate Supervisor.default));
  checkb "workers=0 invalid" true
    (Result.is_error (Supervisor.validate { c with Supervisor.workers = 0 }))

let test_dispatch_and_shed () =
  let t = Supervisor.create (cfg ~workers:1 ~queue_bound:1 ()) in
  actions "a runs on worker 0" [ "assign(0,a,#1)" ] (step t ~now:0. (Supervisor.Submit "a"));
  actions "b queues" [] (step t ~now:0. (Supervisor.Submit "b"));
  actions "c sheds at the bound" [ "reject(c,overloaded)" ] (step t ~now:0. (Supervisor.Submit "c"));
  checki "queue depth" 1 (Supervisor.queue_depth t);
  actions "a completes, b dispatched" [ "complete(a,#1)"; "assign(0,b,#1)" ]
    (step t ~now:1. (Supervisor.Done 0));
  let c = Supervisor.counters t in
  checki "accepted" 2 c.Supervisor.accepted;
  checki "shed" 1 c.Supervisor.shed

let test_crash_backoff_retry () =
  let t = Supervisor.create (cfg ~workers:1 ()) in
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "a"));
  (* Crash schedules the retry 50ms out and respawns the worker. *)
  actions "crash -> spawn only" [ "spawn(0)" ] (step t ~now:1. (Supervisor.Crashed 0));
  actions "replacement up, retry not yet eligible" [] (step t ~now:1.01 (Supervisor.Spawned 0));
  actions "still backing off" [] (step t ~now:1.049 Supervisor.Tick);
  actions "retry fires after the backoff" [ "assign(0,a,#2)" ] (step t ~now:1.05 Supervisor.Tick);
  let c = Supervisor.counters t in
  checki "retried" 1 c.Supervisor.retried;
  checki "crashes" 1 c.Supervisor.worker_crashes;
  checki "restarts" 1 c.Supervisor.restarts;
  (* Second crash: backoff doubles. *)
  ignore (Supervisor.step t ~now:2. (Supervisor.Crashed 0));
  ignore (Supervisor.step t ~now:2. (Supervisor.Spawned 0));
  actions "2nd backoff is 100ms" [] (step t ~now:2.09 Supervisor.Tick);
  actions "2nd retry" [ "assign(0,a,#3)" ] (step t ~now:2.1 Supervisor.Tick);
  (* Third crash exhausts max_attempts=3. *)
  actions "gave up" [ "reject(a,failed)"; "spawn(0)" ] (step t ~now:3. (Supervisor.Crashed 0))

let test_restart_budget_exhaustion () =
  let t = Supervisor.create (cfg ~workers:1 ~restart_budget:1 ~max_attempts:10 ()) in
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "a"));
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "b"));
  actions "first crash spends the budget" [ "spawn(0)" ] (step t ~now:1. (Supervisor.Crashed 0));
  (* The replacement picks up b (a's retry is still backing off). *)
  actions "b dispatched to the replacement" [ "assign(0,b,#1)" ]
    (step t ~now:1. (Supervisor.Spawned 0));
  (* Second crash: budget gone -> slot dies, no workers left, everything
     queued (a's retry and b's retry) is failed. *)
  let acts = step t ~now:2. (Supervisor.Crashed 0) in
  checkb "no spawn past the budget" true (not (List.mem "spawn(0)" acts));
  checkb "queued b failed" true (List.mem "reject(b,failed)" acts);
  checki "alive" 0 (Supervisor.alive t);
  actions "submits refused with no pool" [ "reject(c,failed)" ]
    (step t ~now:3. (Supervisor.Submit "c"))

let test_deadline_kill_then_retry () =
  let t = Supervisor.create (cfg ~workers:1 ~deadline:10. ()) in
  actions "assigned" [ "assign(0,a,#1)" ] (step t ~now:0. (Supervisor.Submit "a"));
  actions "before the deadline" [] (step t ~now:9.99 Supervisor.Tick);
  actions "deadline kill" [ "kill(0,a)" ] (step t ~now:10. Supervisor.Tick);
  checki "timed_out" 1 (Supervisor.counters t).Supervisor.timed_out;
  (* The SIGKILL lands: retry is scheduled, the respawn is free (no restart
     budget spent — deadline kills are policy, not worker failure). *)
  actions "death observed" [ "spawn(0)" ] (step t ~now:10.01 (Supervisor.Crashed 0));
  checki "restarts unspent" 0 (Supervisor.counters t).Supervisor.restarts;
  ignore (Supervisor.step t ~now:10.01 (Supervisor.Spawned 0));
  actions "killed attempt retries after backoff" [ "assign(0,a,#2)" ]
    (step t ~now:10.06 Supervisor.Tick);
  (* Race: the response outruns the SIGKILL -> the result is kept and the
     death that follows carries no request. *)
  let t2 = Supervisor.create (cfg ~workers:1 ~deadline:10. ()) in
  ignore (Supervisor.step t2 ~now:0. (Supervisor.Submit "r"));
  ignore (step t2 ~now:10. Supervisor.Tick);
  actions "response wins the race" [ "complete(r,#1)" ] (step t2 ~now:10.005 (Supervisor.Done 0));
  actions "expected death, free respawn" [ "spawn(0)" ] (step t2 ~now:10.01 (Supervisor.Crashed 0));
  checki "no crash counted for the kill" 0 (Supervisor.counters t2).Supervisor.worker_crashes

let test_drain_semantics () =
  (* Build the state drain must discriminate: [b] running on the only
     worker, [a]'s retry backing off in the queue (in-flight work), and [c]
     a queued first attempt (refusable). *)
  let t = Supervisor.create (cfg ~workers:1 ()) in
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "a"));
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "b"));
  ignore (Supervisor.step t ~now:0. (Supervisor.Crashed 0));
  (* Queue: [b#1; a#2 (eligible 0.05)]; the replacement dispatches b. *)
  actions "replacement runs b" [ "assign(0,b,#1)" ] (step t ~now:0. (Supervisor.Spawned 0));
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "c"));
  actions "drain rejects queued first attempts only" [ "reject(c,draining)" ]
    (step t ~now:0.01 Supervisor.Drain);
  checkb "draining" true (Supervisor.is_draining t);
  actions "submits refused while draining" [ "reject(late,draining)" ]
    (step t ~now:0.02 (Supervisor.Submit "late"));
  actions "in-flight b completes, a's retry not yet eligible" [ "complete(b,#1)" ]
    (step t ~now:0.03 (Supervisor.Done 0));
  (* The pending retry is in-flight work: it still runs to completion. *)
  actions "retry dispatched during drain" [ "assign(0,a,#2)" ] (step t ~now:0.05 Supervisor.Tick);
  actions "completion stops the drained pool" [ "complete(a,#2)"; "stopped" ]
    (step t ~now:0.06 (Supervisor.Done 0));
  checkb "stopped" true (Supervisor.is_stopped t);
  actions "events after stop are ignored" [] (step t ~now:1. (Supervisor.Submit "x"))

let test_next_wakeup () =
  let t = Supervisor.create (cfg ~workers:1 ~deadline:10. ()) in
  checkb "idle pool: nothing to wake for" true (Supervisor.next_wakeup t ~now:0. = None);
  ignore (Supervisor.step t ~now:0. (Supervisor.Submit "a"));
  check (Alcotest.option (Alcotest.float 1e-9)) "deadline drives the wakeup" (Some 7.)
    (Supervisor.next_wakeup t ~now:3.);
  ignore (Supervisor.step t ~now:5. (Supervisor.Crashed 0));
  ignore (Supervisor.step t ~now:5. (Supervisor.Spawned 0));
  check (Alcotest.option (Alcotest.float 1e-9)) "backoff eligibility drives the wakeup"
    (Some 0.05)
    (Supervisor.next_wakeup t ~now:5.)

(* --- chaos injector --------------------------------------------------------------- *)

let test_chaos () =
  let s = Chaos.make ~kill:0.3 ~seed:42 () in
  (* Pure in (seed, id, attempt): same decision every time. *)
  for attempt = 1 to 5 do
    let a = Chaos.kills s ~id:"req-1" ~attempt in
    let b = Chaos.kills s ~id:"req-1" ~attempt in
    checkb "kill decision is pure" a b
  done;
  (* The empirical rate over many ids tracks the spec's rate. *)
  let kills = ref 0 in
  let n = 2000 in
  for i = 1 to n do
    if Chaos.kills s ~id:(Printf.sprintf "q%04d" i) ~attempt:1 then incr kills
  done;
  let rate = float_of_int !kills /. float_of_int n in
  checkb (Printf.sprintf "empirical rate %.3f near 0.3" rate) true (rate > 0.25 && rate < 0.35);
  (* Different seeds decorrelate; the same seed reproduces. *)
  let s2 = Chaos.make ~kill:0.3 ~seed:43 () in
  let differs = ref false in
  for i = 1 to 100 do
    let id = Printf.sprintf "q%04d" i in
    if Chaos.kills s ~id ~attempt:1 <> Chaos.kills s2 ~id ~attempt:1 then differs := true
  done;
  checkb "seed changes the schedule" true !differs;
  checkb "none never kills" false (Chaos.kills Chaos.none ~id:"x" ~attempt:1);
  (* Codec. *)
  check Alcotest.string "to_string" "kill=0.3,seed=42" (Chaos.to_string s);
  checkb "round-trip" true (Chaos.of_string (Chaos.to_string s) = s);
  check Alcotest.string "none label" "none" (Chaos.to_string Chaos.none);
  checkb "bad rate rejected" true
    (match Chaos.of_string "kill=1.5" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- wire codec ------------------------------------------------------------------- *)

let test_request_codec () =
  let req =
    Request.make_estimate ~fault:(Fault.drop_only 0.1) ~kill_attempt:2 ~id:"r7"
      ~protocol:"sym_dmam" ~strategy:"honest" ~trials:12 ()
  in
  (match Request.of_line (Request.to_json ~attempt:3 req) with
  | Error e -> Alcotest.failf "estimate did not round-trip: %s" e
  | Ok (r, attempt) ->
    checki "attempt carried" 3 attempt;
    checkb "request preserved" true (r = req));
  (match Request.of_line {|{"op":"estimate","id":"x","protocol":"p","strategy":"s","trials":4}|} with
  | Ok (r, 1) ->
    checkb "fault defaults to none" true
      (match r.Request.op with
      | Request.Estimate { fault; kill_attempt; _ } -> Fault.is_none fault && kill_attempt = None
      | _ -> false)
  | Ok _ -> Alcotest.fail "attempt should default to 1"
  | Error e -> Alcotest.failf "minimal estimate rejected: %s" e);
  List.iter
    (fun (label, line) ->
      checkb label true (Result.is_error (Request.of_line line)))
    [ ("garbage", "nope");
      ("unknown op", {|{"op":"evaluate","id":"x"}|});
      ("empty id", {|{"op":"ping","id":""}|});
      ("zero trials", {|{"op":"estimate","id":"x","protocol":"p","strategy":"s","trials":0}|});
      ("bad fault", {|{"op":"estimate","id":"x","protocol":"p","strategy":"s","trials":1,"fault":"warp=1"}|})
    ];
  (* Responses. *)
  let roundtrip resp =
    match Request.response_of_line (Request.response_to_json resp) with
    | Ok r -> checkb "response round-trip" true (r = resp)
    | Error e -> Alcotest.failf "response did not round-trip: %s" e
  in
  roundtrip
    (Request.Estimated
       { id = "a"; attempts = 2; record = {|{"schema_version":3}|}; telemetry = None });
  roundtrip
    (Request.Stats_reply { id = "s"; stats = [ ("accepted", 4); ("shed", 0) ]; body = None });
  roundtrip (Request.Pong { id = "p" });
  List.iter
    (fun reject -> roundtrip (Request.Rejected { id = "r"; reject }))
    [ Request.Overloaded; Request.Draining; Request.Bad_request "why"; Request.Failed "why" ]

(* --- crash-safe framed log -------------------------------------------------------- *)

let record_line i =
  Printf.sprintf
    {|{"schema_version":3,"protocol":"sym_dmam","n":8,"prover":"honest","trials":%d,"accepts":%d,"rate":1,"ci_low":0.9,"ci_high":1,"mean_bits":76,"max_bits":76,"domains":1,"stopped_early":false}|}
    (i + 1) (i + 1)

let with_tmp f =
  let path = Filename.temp_file "ids_serve_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_framed path lines =
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (Runlog.Framed.frame l)) lines;
  close_out oc

let test_framed_roundtrip () =
  with_tmp (fun path ->
      (match Runlog.Framed.create path with
      | Error e -> Alcotest.failf "create: %s" e
      | Ok w ->
        checki "fresh file: nothing truncated" 0 (Runlog.Framed.truncated w);
        for i = 0 to 4 do
          Runlog.Framed.write w (record_line i)
        done;
        Runlog.Framed.close w);
      match Runlog.read_file_lenient path with
      | Error e -> Alcotest.failf "read: %s" e
      | Ok { Runlog.records; tail; _ } ->
        checki "all records back" 5 (List.length records);
        checkb "clean tail" true (tail = None);
        checkb "trials preserved in order" true
          (List.mapi (fun i _ -> i + 1) records
          = List.map (fun (r : Runlog.record) -> r.Runlog.trials) records))

(* Every way a kill -9 can tear the final frame: mid-header, mid-payload,
   missing terminator. The reader must keep the good prefix and report the
   torn tail; the writer must truncate it on the next open. *)
let test_framed_torn_tail_recovery () =
  let good = [ record_line 0; record_line 1 ] in
  let torn_tails =
    [ ("mid-magic", "=ID");
      ("mid-header", "=IDS 12");
      ("header without newline", "=IDS 1234");
      ("mid-payload", "=IDS 4096\n{\"schema_version\":3,\"proto");
      ("missing terminator", "=IDS 5\nabcde")
    ]
  in
  List.iter
    (fun (label, tear) ->
      with_tmp (fun path ->
          write_framed path good;
          let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
          output_string oc tear;
          close_out oc;
          (* Lenient read: good prefix + structured torn tail. *)
          (match Runlog.read_file_lenient path with
          | Error e -> Alcotest.failf "%s: read: %s" label e
          | Ok { Runlog.records; tail; good_end } ->
            checki (label ^ ": good prefix") 2 (List.length records);
            checkb (label ^ ": torn tail reported") true
              (match tail with Some (Runlog.Torn_tail _) -> true | _ -> false);
            let full = String.length (Runlog.Framed.frame (record_line 0))
                       + String.length (Runlog.Framed.frame (record_line 1)) in
            checki (label ^ ": good_end at the record boundary") full good_end);
          (* Strict read refuses the file outright. *)
          checkb (label ^ ": strict read fails") true (Result.is_error (Runlog.read_file path));
          (* Recovery truncates exactly the tear. *)
          (match Runlog.Framed.create path with
          | Error e -> Alcotest.failf "%s: recovery: %s" label e
          | Ok w ->
            checki (label ^ ": recovery removed the tear") (String.length tear)
              (Runlog.Framed.truncated w);
            (* The log is append-able again after recovery. *)
            Runlog.Framed.write w (record_line 2);
            Runlog.Framed.close w);
          match Runlog.read_file_lenient path with
          | Error e -> Alcotest.failf "%s: post-recovery read: %s" label e
          | Ok { Runlog.records; tail; _ } ->
            checki (label ^ ": records after recovery") 3 (List.length records);
            checkb (label ^ ": clean after recovery") true (tail = None)))
    torn_tails

let test_framed_bad_line_vs_torn () =
  (* An intact frame whose payload doesn't decode is corruption (Bad_line),
     not a torn append: recovery must NOT truncate it away silently. *)
  with_tmp (fun path ->
      write_framed path [ record_line 0; "this is not a record"; record_line 2 ];
      (match Runlog.read_file_lenient path with
      | Error e -> Alcotest.failf "read: %s" e
      | Ok { Runlog.records; tail; _ } ->
        checki "prefix before the bad record" 1 (List.length records);
        checkb "bad line reported" true
          (match tail with Some (Runlog.Bad_line _) -> true | _ -> false));
      match Runlog.Framed.create path with
      | Error e -> Alcotest.failf "reopen: %s" e
      | Ok w ->
        checki "recovery keeps intact frames" 0 (Runlog.Framed.truncated w);
        Runlog.Framed.close w)

(* --- BENCH_serve.json shape ------------------------------------------------------- *)

let test_bench_serve_shape () =
  (* The dune test stanza declares the dependency, which materializes the
     committed artifact one level above the runtest cwd; a `dune exec` from
     the repo root sees the source file directly. *)
  let path =
    match List.find_opt Sys.file_exists [ "../BENCH_serve.json"; "BENCH_serve.json" ] with
    | Some p -> p
    | None -> Alcotest.fail "BENCH_serve.json not committed"
  in
  begin
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Ids_obs.Json.parse s with
    | Error e -> Alcotest.failf "BENCH_serve.json does not parse: %s" e
    | Ok j ->
      let mem k = Ids_obs.Json.member k j in
      let int_at k =
        match Option.bind (mem k) Ids_obs.Json.to_int with
        | Some v -> v
        | None -> Alcotest.failf "BENCH_serve.json: missing int %S" k
      in
      checki "schema_version" 1 (int_at "schema_version");
      List.iter
        (fun k ->
          if mem k = None then Alcotest.failf "BENCH_serve.json: missing %S" k)
        [ "mode"; "chaos"; "requests"; "availability"; "bit_identical"; "throughput_rps";
          "latency_ms"; "recovery_ms"; "supervisor"; "shed_burst"; "log" ];
      let sub name k =
        match Option.bind (mem name) (Ids_obs.Json.member k) with
        | Some v -> v
        | None -> Alcotest.failf "BENCH_serve.json: missing %s.%s" name k
      in
      (* The committed artifact must witness the acceptance criteria:
         every accepted request completed, sheds happened at the bound,
         bit-identity held, and the torn-tail drill recovered. *)
      (match (Ids_obs.Json.to_int (sub "requests" "sent"), Ids_obs.Json.to_int (sub "requests" "completed")) with
      | Some sent, Some completed ->
        checkb "availability 100%" true (sent > 0 && sent = completed)
      | _ -> Alcotest.fail "BENCH_serve.json: requests.sent/completed not ints");
      (match Ids_obs.Json.to_int (sub "shed_burst" "shed") with
      | Some shed -> checkb "burst shed something" true (shed > 0)
      | None -> Alcotest.fail "BENCH_serve.json: shed_burst.shed not an int");
      checkb "bit_identical" true (mem "bit_identical" = Some (Ids_obs.Json.Bool true));
      checkb "torn tail recovered" true
        (Option.bind (mem "log") (Ids_obs.Json.member "torn_tail_recovered")
        = Some (Ids_obs.Json.Bool true))
  end

let suite =
  [ ( "serve",
      [ Alcotest.test_case "supervisor: backoff schedule" `Quick test_backoff_schedule;
        Alcotest.test_case "supervisor: dispatch and shed" `Quick test_dispatch_and_shed;
        Alcotest.test_case "supervisor: crash, backoff, retry, give up" `Quick
          test_crash_backoff_retry;
        Alcotest.test_case "supervisor: restart budget exhaustion" `Quick
          test_restart_budget_exhaustion;
        Alcotest.test_case "supervisor: deadline kill then retry" `Quick
          test_deadline_kill_then_retry;
        Alcotest.test_case "supervisor: drain semantics" `Quick test_drain_semantics;
        Alcotest.test_case "supervisor: next wakeup" `Quick test_next_wakeup;
        Alcotest.test_case "chaos: seeded kill schedule" `Quick test_chaos;
        Alcotest.test_case "wire codec round-trips" `Quick test_request_codec;
        Alcotest.test_case "framed log round-trip" `Quick test_framed_roundtrip;
        Alcotest.test_case "framed log: torn tail recovery" `Quick
          test_framed_torn_tail_recovery;
        Alcotest.test_case "framed log: corruption is not a torn tail" `Quick
          test_framed_bad_line_vs_torn;
        Alcotest.test_case "BENCH_serve.json shape" `Quick test_bench_serve_shape
      ] )
  ]
