(* Setup-path pins and kernel oracles.

   The sieve-gated prime pipeline promises bit-identity with the reference:
   same seed => same prime, and the rng is left at the same position. The
   pins below were captured before the pipeline landed, so they also guard
   against accidental re-baselining. The protocol estimates are pinned
   across worker-domain counts and with tracing on, since the memo layer
   shards per domain and the Obs layer must not perturb control flow. The
   qcheck blocks are oracle tests for the new Nat kernels (Karatsuba,
   squaring, scalar multiply, native remainder) and the SWAR popcount. *)

open Ids_bignum
module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Family = Ids_graph.Family
module Spanning_tree = Ids_graph.Spanning_tree
module Obs = Ids_obs.Obs
module Precomp = Ids_proof.Precomp
module Dsym = Ids_proof.Dsym
module Sym_dam = Ids_proof.Sym_dam
module Sym_dmam = Ids_proof.Sym_dmam
module Gni = Ids_proof.Gni
module Gni_full = Ids_proof.Gni_full
module Gni_induced = Ids_proof.Gni_induced
module Stats = Ids_proof.Stats

let nat = Alcotest.testable Nat.pp Nat.equal

(* --- same seed => same prime, same rng position -------------------------- *)

(* (range name, lo, hi, seed, prime, next 30 rng bits), captured pre-PR. *)
let int_prime_pins =
  let cube s = s * s * s in
  [ ("dsym_s17", 10 * cube 17, 100 * cube 17, 11, 182417, 19943435);
    ("dsym_s17", 10 * cube 17, 100 * cube 17, 12, 122557, 287280638);
    ("dsym_s17", 10 * cube 17, 100 * cube 17, 13, 429701, 656635470);
    ("dsym_s53", 10 * cube 53, 100 * cube 53, 11, 6794471, 677682038);
    ("dsym_s53", 10 * cube 53, 100 * cube 53, 12, 6807683, 287280638);
    ("dsym_s53", 10 * cube 53, 100 * cube 53, 13, 14385593, 996287226);
    ("sym_dmam_n16", 10 * cube 16, 100 * cube 16, 11, 126851, 677682038);
    ("sym_dmam_n16", 10 * cube 16, 100 * cube 16, 12, 242371, 822419056);
    ("sym_dmam_n16", 10 * cube 16, 100 * cube 16, 13, 213287, 994832231);
    ("gni_f720", 4 * 720, 8 * 720, 11, 3557, 592638584);
    ("gni_f720", 4 * 720, 8 * 720, 12, 5651, 672844683);
    ("gni_f720", 4 * 720, 8 * 720, 13, 4649, 1037818444);
    ("gni_f40320", 4 * 40320, 8 * 40320, 11, 280751, 556256695);
    ("gni_f40320", 4 * 40320, 8 * 40320, 12, 313087, 279657015);
    ("gni_f40320", 4 * 40320, 8 * 40320, 13, 216791, 656982448);
    ("rpls_n6", 4 * 1296, 8 * 1296, 11, 7333, 685092748);
    ("rpls_n6", 4 * 1296, 8 * 1296, 12, 10267, 545572224);
    ("rpls_n6", 4 * 1296, 8 * 1296, 13, 7877, 679520393)
  ]

let test_int_prime_pins () =
  List.iter
    (fun (name, lo, hi, seed, want_p, want_next) ->
      let tag = Printf.sprintf "%s seed=%d" name seed in
      let rng = Rng.create seed in
      let p = Prime.random_prime_in_int rng lo hi in
      Alcotest.(check int) (tag ^ " prime") want_p p;
      Alcotest.(check int) (tag ^ " rng position") want_next (Rng.bits rng 30))
    int_prime_pins

let test_int_prime_matches_reference () =
  List.iter
    (fun (name, lo, hi, seed, _, _) ->
      let tag = Printf.sprintf "%s seed=%d" name seed in
      let rng = Rng.create seed in
      let p = Prime.random_prime_in_int rng lo hi in
      let rng_ref = Rng.create seed in
      let p_ref =
        Nat.to_int (Prime.random_prime_in_reference rng_ref (Nat.of_int lo) (Nat.of_int hi))
      in
      Alcotest.(check int) (tag ^ " prime vs reference") p_ref p;
      Alcotest.(check int) (tag ^ " rng position vs reference") (Rng.bits rng_ref 30) (Rng.bits rng 30))
    int_prime_pins

(* (n, seed, prime, next 30 rng bits) on the Protocol-2 interval
   [10 n^(n+2), 100 n^(n+2)], captured pre-PR. *)
let nat_prime_pins =
  [ (6, 11, "97151881", 126217305);
    (6, 12, "123157379", 1012663082);
    (10, 11, "67070304383213", 510545832);
    (10, 12, "34031066245609", 852669796);
    (24, 11, "74940686285593980248102439297151106557", 774158779);
    (24, 12, "39020342259718080556533818959604679539", 448157000)
  ]

let sym_dam_interval n =
  let bound = Nat.pow (Nat.of_int n) (n + 2) in
  (Nat.mul_int bound 10, Nat.mul_int bound 100)

let test_nat_prime_pins () =
  List.iter
    (fun (n, seed, want_p, want_next) ->
      let tag = Printf.sprintf "sym_dam n=%d seed=%d" n seed in
      let lo, hi = sym_dam_interval n in
      let rng = Rng.create seed in
      let p = Prime.random_prime_in rng lo hi in
      Alcotest.(check string) (tag ^ " prime") want_p (Nat.to_string p);
      Alcotest.(check int) (tag ^ " rng position") want_next (Rng.bits rng 30))
    nat_prime_pins

let test_nat_prime_matches_reference () =
  List.iter
    (fun (n, seed, _, _) ->
      let tag = Printf.sprintf "sym_dam n=%d seed=%d" n seed in
      let lo, hi = sym_dam_interval n in
      let rng = Rng.create seed in
      let p = Prime.random_prime_in rng lo hi in
      let rng_ref = Rng.create seed in
      let p_ref = Prime.random_prime_in_reference rng_ref lo hi in
      Alcotest.check nat (tag ^ " prime vs reference") p_ref p;
      Alcotest.(check int) (tag ^ " rng position vs reference") (Rng.bits rng_ref 30) (Rng.bits rng 30))
    nat_prime_pins

(* --- estimate pins: domain counts and tracing must not move them --------- *)

let estimate_configs () =
  let dsym_inst = Dsym.make_instance ~n:6 ~r:2 (Family.dsym_graph (Graph.cycle 6) 2) in
  let gni_yes = Gni.yes_instance (Rng.create 7) 6 in
  let gni_full_yes = Gni_full.yes_instance (Rng.create 7) 6 in
  let gni_induced_yes = Gni_induced.yes_instance (Rng.create 7) 12 in
  [ ("dsym_yes_n6", 24, 24, fun seed -> Dsym.run ~seed dsym_inst Dsym.honest);
    ("sym_dam_c8", 8, 8, fun seed -> Sym_dam.run ~seed (Graph.cycle 8) Sym_dam.honest);
    ("sym_dmam_c8", 16, 16, fun seed -> Sym_dmam.run ~seed (Graph.cycle 8) Sym_dmam.honest);
    ("gni_yes6_single", 12, 1, fun seed -> Gni.run_single ~seed gni_yes Gni.honest);
    ("gni_full_yes6_single", 6, 2, fun seed -> Gni_full.run_single ~seed gni_full_yes Gni_full.honest);
    ("gni_induced_yes12_single", 6, 2, fun seed -> Gni_induced.run_single ~seed gni_induced_yes Gni_induced.honest)
  ]

let test_estimates_across_domains () =
  List.iter
    (fun (name, trials, want_accepts, run) ->
      List.iter
        (fun domains ->
          let e = Stats.acceptance_ci ~domains ~trials run in
          Alcotest.(check int)
            (Printf.sprintf "%s accepts (domains=%d)" name domains)
            want_accepts e.Ids_engine.Engine.accepts)
        [ 1; 2; 4 ])
    (estimate_configs ())

let test_estimates_with_tracing () =
  let was = Obs.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled was;
      Obs.reset ())
    (fun () ->
      List.iter
        (fun (name, trials, want_accepts, run) ->
          Obs.set_enabled true;
          let traced = Stats.acceptance_ci ~domains:2 ~trials run in
          Obs.set_enabled false;
          let quiet = Stats.acceptance_ci ~domains:2 ~trials run in
          Alcotest.(check int) (name ^ " accepts traced") want_accepts traced.Ids_engine.Engine.accepts;
          Alcotest.(check int) (name ^ " accepts untraced") want_accepts quiet.Ids_engine.Engine.accepts)
        (estimate_configs ()))

(* --- memo layer ---------------------------------------------------------- *)

let check_tree tag (want : Spanning_tree.t) (got : Spanning_tree.t) =
  Alcotest.(check int) (tag ^ " root") want.Spanning_tree.root got.Spanning_tree.root;
  Alcotest.(check (array int)) (tag ^ " parent") want.Spanning_tree.parent got.Spanning_tree.parent;
  Alcotest.(check (array int)) (tag ^ " dist") want.Spanning_tree.dist got.Spanning_tree.dist

let test_memo_tree () =
  let g = Graph.petersen () in
  let cold = Precomp.tree g 3 in
  check_tree "cold vs direct" (Spanning_tree.bfs g 3) cold;
  let warm = Precomp.tree g 3 in
  Alcotest.(check bool) "warm hit is the cached value" true (cold == warm);
  (* A different root is a different key. *)
  check_tree "other root" (Spanning_tree.bfs g 0) (Precomp.tree g 0);
  (* Mutation bumps the version: the stale tree must not be served. *)
  let g' = Graph.copy g in
  let before = Precomp.tree g' 0 in
  Graph.add_edge g' 0 2;
  let after = Precomp.tree g' 0 in
  Alcotest.(check bool) "mutation invalidates" false (before == after);
  check_tree "after mutation" (Spanning_tree.bfs g' 0) after;
  (* A copy has a fresh uid: it never aliases the original's entries. *)
  let h = Graph.copy g in
  Alcotest.(check bool) "copy gets fresh uid" false (Graph.uid h = Graph.uid g);
  check_tree "copy" (Spanning_tree.bfs h 0) (Precomp.tree h 0)

let test_memo_values () =
  Alcotest.(check bool) "dsym sigma" true
    (Perm.equal (Precomp.dsym_sigma ~n:5 ~r:2) (Family.dsym_sigma ~n:5 ~r:2));
  Alcotest.(check int) "factorial 8" 40320 (Precomp.factorial 8);
  Alcotest.(check int) "factorial 0" 1 (Precomp.factorial 0);
  Alcotest.check nat "power bound 10^12" (Nat.pow (Nat.of_int 10) 12) (Precomp.power_bound 10 12);
  let g = Graph.cycle 6 in
  let direct = Iso.find_nontrivial_automorphism g in
  let memo = Precomp.nontrivial_automorphism g in
  Alcotest.(check bool) "automorphism" true
    (match (direct, memo) with
    | None, None -> true
    | Some a, Some b -> Perm.equal a b
    | _ -> false)

(* --- Nat kernel oracles --------------------------------------------------- *)

(* A pseudo-random Nat with exactly [limbs] limbs (top limb nonzero), from a
   seed, via the limb constructor — independent of the multipliers under
   test. *)
let nat_of_seed ~limbs seed =
  let rng = Rng.create (0x9e3779b9 lxor seed) in
  Nat.of_limbs
    (Array.init limbs (fun i ->
         let w = Rng.bits rng Nat.base_bits in
         if i = limbs - 1 then w lor 1 else w))

let boundary_sizes = [ 1; 2; 3; 31; 32; 33; 63; 64; 511; 512; 513 ]

let test_mul_threshold_boundaries () =
  (* Cross the Karatsuba threshold (32 limbs) and the scanning-squarer cap
     (512 limbs) exactly, against the schoolbook oracle. *)
  List.iter
    (fun la ->
      List.iter
        (fun lb ->
          let a = nat_of_seed ~limbs:la 1 and b = nat_of_seed ~limbs:lb 2 in
          Alcotest.check nat
            (Printf.sprintf "mul %dx%d limbs" la lb)
            (Nat.mul_schoolbook a b) (Nat.mul a b))
        [ 1; 31; 32; 33; 512 ])
    boundary_sizes

let test_sqr_boundaries () =
  List.iter
    (fun limbs ->
      let a = nat_of_seed ~limbs 3 in
      let a' = Nat.of_limbs (Nat.to_limbs a) in
      Alcotest.check nat
        (Printf.sprintf "sqr %d limbs" limbs)
        (Nat.mul_schoolbook a a) (Nat.sqr a);
      (* Physically equal arguments must route through the squarer. *)
      Alcotest.check nat
        (Printf.sprintf "mul x x %d limbs" limbs)
        (Nat.mul_schoolbook a a') (Nat.mul a a))
    boundary_sizes

let qtest t = QCheck_alcotest.to_alcotest t

let arb_sized_pair =
  let gen =
    QCheck.Gen.(
      let* la = int_range 1 40 in
      let* lb = int_range 1 40 in
      let* sa = int_bound 1_000_000 in
      let* sb = int_bound 1_000_000 in
      return (la, lb, sa, sb))
  in
  QCheck.make
    ~print:(fun (la, lb, sa, sb) -> Printf.sprintf "limbs=(%d,%d) seeds=(%d,%d)" la lb sa sb)
    gen

let prop_mul_matches_schoolbook =
  QCheck.Test.make ~name:"Karatsuba mul matches schoolbook" ~count:300 arb_sized_pair
    (fun (la, lb, sa, sb) ->
      let a = nat_of_seed ~limbs:la sa and b = nat_of_seed ~limbs:lb sb in
      Nat.equal (Nat.mul a b) (Nat.mul_schoolbook a b))

let prop_sqr_matches_mul =
  QCheck.Test.make ~name:"sqr matches schoolbook self-product" ~count:300 arb_sized_pair
    (fun (la, _, sa, _) ->
      let a = nat_of_seed ~limbs:la sa in
      Nat.equal (Nat.sqr a) (Nat.mul_schoolbook a a))

let prop_mul_int_matches_mul =
  QCheck.Test.make ~name:"mul_int matches mul of_int" ~count:300
    (QCheck.pair (QCheck.make (QCheck.gen arb_sized_pair)) (QCheck.int_range 0 (1 lsl 35)))
    (fun ((la, _, sa, _), k) ->
      let a = nat_of_seed ~limbs:la sa in
      Nat.equal (Nat.mul_int a k) (Nat.mul a (Nat.of_int k)))

let prop_rem_int_matches_rem =
  QCheck.Test.make ~name:"rem_int matches divmod remainder" ~count:300
    (QCheck.pair (QCheck.make (QCheck.gen arb_sized_pair)) (QCheck.int_range 1 ((1 lsl 36) - 1)))
    (fun ((la, _, sa, _), d) ->
      let a = nat_of_seed ~limbs:la sa in
      Nat.rem_int a d = Nat.to_int (Nat.rem a (Nat.of_int d)))

let test_mul_int_edges () =
  let a = nat_of_seed ~limbs:7 9 in
  Alcotest.check nat "k = 0" Nat.zero (Nat.mul_int a 0);
  Alcotest.check nat "k = 1" a (Nat.mul_int a 1);
  (* Above the direct-sweep cap the implementation must fall back. *)
  let big = (1 lsl 34) + 12345 in
  Alcotest.check nat "k above sweep cap" (Nat.mul a (Nat.of_int big)) (Nat.mul_int a big);
  Alcotest.check_raises "negative scalar" (Invalid_argument "Nat.mul_int: negative") (fun () ->
      ignore (Nat.mul_int a (-1)))

let test_rem_int_edges () =
  let a = nat_of_seed ~limbs:5 4 in
  Alcotest.(check int) "d = 1" 0 (Nat.rem_int a 1);
  Alcotest.check_raises "d = 0" (Invalid_argument "Nat.rem_int: divisor out of range") (fun () ->
      ignore (Nat.rem_int a 0));
  Alcotest.check_raises "d too large" (Invalid_argument "Nat.rem_int: divisor out of range")
    (fun () -> ignore (Nat.rem_int a (1 lsl 36)))

(* --- SWAR popcount -------------------------------------------------------- *)

let prop_popcount_matches_naive =
  QCheck.Test.make ~name:"SWAR cardinal matches membership count" ~count:300
    (QCheck.pair (QCheck.int_range 1 300) (QCheck.int_bound 100000))
    (fun (capacity, seed) ->
      let rng = Rng.create seed in
      let t = Bitset.create capacity in
      for i = 0 to capacity - 1 do
        if Rng.bits rng 1 = 1 then Bitset.add t i
      done;
      let naive = ref 0 in
      for i = 0 to capacity - 1 do
        if Bitset.mem t i then incr naive
      done;
      Bitset.cardinal t = !naive)

let test_popcount_edges () =
  let full = Bitset.create 124 in
  for i = 0 to 123 do
    Bitset.add full i
  done;
  Alcotest.(check int) "all 124 bits over two full words" 124 (Bitset.cardinal full);
  Alcotest.(check int) "empty" 0 (Bitset.cardinal (Bitset.create 124))

let suite =
  [ ( "setup:prime-pins",
      [ Alcotest.test_case "int ranges pinned" `Quick test_int_prime_pins;
        Alcotest.test_case "int ranges match reference" `Quick test_int_prime_matches_reference;
        Alcotest.test_case "nat ranges pinned" `Quick test_nat_prime_pins;
        Alcotest.test_case "nat ranges match reference" `Quick test_nat_prime_matches_reference
      ] );
    ( "setup:estimates",
      [ Alcotest.test_case "pinned across domain counts" `Quick test_estimates_across_domains;
        Alcotest.test_case "pinned with tracing on" `Quick test_estimates_with_tracing
      ] );
    ( "setup:memo",
      [ Alcotest.test_case "tree cache hit/invalidate" `Quick test_memo_tree;
        Alcotest.test_case "memoized values match direct" `Quick test_memo_values
      ] );
    ( "setup:nat-kernels",
      [ Alcotest.test_case "mul threshold boundaries" `Quick test_mul_threshold_boundaries;
        Alcotest.test_case "sqr boundaries" `Quick test_sqr_boundaries;
        Alcotest.test_case "mul_int edges" `Quick test_mul_int_edges;
        Alcotest.test_case "rem_int edges" `Quick test_rem_int_edges;
        qtest prop_mul_matches_schoolbook;
        qtest prop_sqr_matches_mul;
        qtest prop_mul_int_matches_mul;
        qtest prop_rem_int_matches_rem
      ] );
    ( "setup:popcount",
      [ Alcotest.test_case "full and empty words" `Quick test_popcount_edges;
        qtest prop_popcount_matches_naive
      ] )
  ]
