(* Tests for the extension modules: the unrestricted GNI protocol with the
   automorphism-compensation fix (Gni_full), the randomized proof labeling
   scheme (Rpls), and generic amplification (Amplify). *)

open Ids_proof
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Perm = Ids_graph.Perm
module Rng = Ids_bignum.Rng


(* Trial budgets honor IDS_TRIALS_SCALE so @runtest-fast can dial them down. *)
let strials n = Ids_engine.Engine.scaled_trials n

let accepted (o : Outcome.t) = o.Outcome.accepted

(* --- Gni_full -------------------------------------------------------------------- *)

(* The heart of the compensation fix: |S| = 2 n! on YES instances and n! on
   NO instances even when the graphs are symmetric. *)
let test_gni_full_candidate_counts () =
  let rng = Rng.create 200 in
  let yes = Gni_full.yes_instance rng 6 and no = Gni_full.no_instance rng 6 in
  Alcotest.(check bool) "one side symmetric" true (Iso.is_symmetric yes.Gni_full.g0);
  Alcotest.(check int) "YES: |S| = 2 * 6!" 1440 (Array.length (Lazy.force yes.Gni_full.candidates));
  Alcotest.(check int) "NO: |S| = 6!" 720 (Array.length (Lazy.force no.Gni_full.candidates))

let test_gni_full_candidate_counts_asymmetric_too () =
  (* The fix must also agree with the restricted protocol's counting. *)
  let rng = Rng.create 201 in
  let g0 = Family.random_asymmetric rng 6 in
  let g1 = Graph.relabel g0 (Perm.to_array (Perm.random rng 6)) in
  let inst = Gni_full.make_instance g0 g1 in
  Alcotest.(check int) "asymmetric isomorphic pair: n!" 720
    (Array.length (Lazy.force inst.Gni_full.candidates))

let test_gni_full_aut_groups () =
  let rng = Rng.create 202 in
  let inst = Gni_full.yes_instance rng 6 in
  let aut0 = Lazy.force inst.Gni_full.aut0 in
  Alcotest.(check bool) "non-trivial group" true (List.length aut0 > 1);
  List.iter
    (fun table ->
      Alcotest.(check bool) "member is automorphism" true
        (Iso.is_automorphism inst.Gni_full.g0 (Perm.of_array table)))
    aut0;
  (* Orbit–stabilizer sanity: |Aut| divides n!. *)
  Alcotest.(check int) "Lagrange" 0 (720 mod List.length aut0)

let test_gni_full_single_rep_gap () =
  let rng = Rng.create 203 in
  let yes = Gni_full.yes_instance rng 6 and no = Gni_full.no_instance rng 6 in
  let params = Gni_full.params_for ~seed:1 yes in
  let rate inst =
    (Stats.acceptance ~trials:(strials 200) (fun seed -> Gni_full.run_single ~params ~seed inst Gni_full.honest))
      .Stats.rate
  in
  let yes_rate = rate yes and no_rate = rate no in
  Alcotest.(check bool)
    (Printf.sprintf "yes %.3f > no %.3f" yes_rate no_rate)
    true
    (yes_rate > no_rate +. 0.03);
  Alcotest.(check bool) "yes >= bound - slack" true (yes_rate >= params.Gni_full.yes_bound -. 0.09);
  Alcotest.(check bool) "no <= bound + slack" true (no_rate <= params.Gni_full.no_bound +. 0.06)

let test_gni_full_verdicts () =
  let rng = Rng.create 204 in
  let yes = Gni_full.yes_instance rng 6 and no = Gni_full.no_instance rng 6 in
  let params = Gni_full.params_for ~repetitions:400 ~seed:2 yes in
  Alcotest.(check bool) "YES accepted" true (accepted (Gni_full.run ~params ~seed:1 yes Gni_full.honest));
  Alcotest.(check bool) "NO rejected" false (accepted (Gni_full.run ~params ~seed:1 no Gni_full.honest))

let test_gni_full_fake_automorphism_caught () =
  (* The inflated adversary finds hash hits easily but must be unmasked by
     the post-commitment audit: its hit rate cannot exceed the honest one
     beyond noise. *)
  let rng = Rng.create 205 in
  let no = Gni_full.no_instance rng 6 in
  let params = Gni_full.params_for ~seed:3 no in
  let rate prover =
    (Stats.acceptance ~trials:(strials 120) (fun seed -> Gni_full.run_single ~params ~seed no prover)).Stats.rate
  in
  let fake = rate Gni_full.adversary_fake_automorphism and honest = rate Gni_full.honest in
  Alcotest.(check bool)
    (Printf.sprintf "fake %.3f <= honest %.3f + slack" fake honest)
    true
    (fake <= honest +. 0.08)

let test_gni_full_rejects_big_groups () =
  (* A star has (n-1)! automorphisms — too many to enumerate; the
     constructor must refuse rather than hang. *)
  let star = Graph.star 7 in
  match Gni_full.make_instance star star with
  | exception Invalid_argument _ -> ()
  | inst ->
    (match Lazy.force inst.Gni_full.candidates with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "oversized automorphism group must be refused")

(* --- Rpls ------------------------------------------------------------------------ *)

let test_rpls_completeness () =
  let rng = Rng.create 210 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      let advice = Option.get (Pls.Lcp_sym.honest g) in
      for seed = 1 to 5 do
        let v = Rpls.verify_sym ~seed g advice in
        Alcotest.(check bool) (Printf.sprintf "n=%d honest verified" n) true v.Rpls.accepted
      done)
    [ 8; 16; 32 ]

let test_rpls_exponential_verification_saving () =
  let rng = Rng.create 211 in
  let g = Family.random_symmetric rng 64 in
  let advice = Option.get (Pls.Lcp_sym.honest g) in
  let v = Rpls.verify_sym ~seed:1 g advice in
  let det = Rpls.deterministic_verification_bits g in
  Alcotest.(check bool)
    (Printf.sprintf "fingerprint %d bits/edge << deterministic %d" v.Rpls.verification_bits_per_edge det)
    true
    (v.Rpls.verification_bits_per_edge * 40 < det);
  (* But the advice itself is unchanged — the point of the paper's remark
     that RPLS does not subsume interaction. *)
  Alcotest.(check int) "advice unchanged" (Pls.Lcp_sym.advice_bits g) v.Rpls.advice_bits_per_node

let test_rpls_catches_corruption () =
  (* Corrupt one node's copy of the matrix; over independent verification
     rounds the fingerprints must catch it essentially always. *)
  let rng = Rng.create 212 in
  let g = Family.random_symmetric rng 12 in
  let advice = Option.get (Pls.Lcp_sym.honest g) in
  let corrupt = { advice with Pls.Lcp_sym.matrix = Array.copy advice.Pls.Lcp_sym.matrix } in
  (* Flip one bit outside node 3's own row so its exact row check passes. *)
  let s = Bytes.of_string corrupt.Pls.Lcp_sym.matrix.(3) in
  let off = if 3 * 12 = 0 then 12 * 11 else 0 in
  Bytes.set s off (if Bytes.get s off = '0' then '1' else '0');
  corrupt.Pls.Lcp_sym.matrix.(3) <- Bytes.to_string s;
  let caught = ref 0 in
  for seed = 1 to 40 do
    if not (Rpls.verify_sym ~seed g corrupt).Rpls.accepted then incr caught
  done;
  Alcotest.(check bool) (Printf.sprintf "caught %d/40" !caught) true (!caught >= 39)

let test_rpls_error_bound_small () =
  let g = Family.random_symmetric (Rng.create 213) 16 in
  let bound = Rpls.soundness_error_bound g ~p:(4 * 16 * 16 * 16 * 16) in
  Alcotest.(check bool) (Printf.sprintf "bound %.4f < 1/3" bound) true (bound < 1. /. 3.)

(* --- Amplify ---------------------------------------------------------------------- *)

let fake_run rate seed =
  (* Deterministic pseudo-protocol accepting with the given rate. *)
  let rng = Rng.create (seed * 7919) in
  { Outcome.accepted = Rng.float rng < rate;
    max_bits_per_node = 10;
    max_response_bits = 6;
    total_bits = 100;
    prover = "fake"
  }

let test_amplify_majority_sharpens () =
  let strong = Amplify.majority ~trials:101 (fake_run 0.7) in
  let weak = Amplify.majority ~trials:101 (fake_run 0.3) in
  Alcotest.(check bool) "0.7 amplified to accept" true strong.Amplify.outcome.Outcome.accepted;
  Alcotest.(check bool) "0.3 amplified to reject" false weak.Amplify.outcome.Outcome.accepted

let test_amplify_costs_sum () =
  let r = Amplify.repeat ~trials:10 ~threshold:5 (fake_run 0.5) in
  Alcotest.(check int) "bits summed" 100 r.Amplify.outcome.Outcome.max_bits_per_node;
  Alcotest.(check int) "total summed" 1000 r.Amplify.outcome.Outcome.total_bits;
  Alcotest.(check int) "trials recorded" 10 r.Amplify.trials

let test_amplify_error_bound_monotone () =
  let b t = Amplify.error_bound ~single_rate:(2. /. 3.) ~trials:t ~threshold:(t / 2) in
  Alcotest.(check bool) "more trials, smaller error" true (b 300 < b 30 && b 30 < b 3);
  Alcotest.(check bool) "eventually tiny" true (b 1000 < 1e-6)

let test_amplify_trials_for () =
  let t, tau = Amplify.trials_for ~yes_rate:(2. /. 3.) ~no_rate:(1. /. 3.) ~delta:0.01 in
  Alcotest.(check bool) "positive" true (t > 0 && tau > 0 && tau <= t);
  (* The returned parameters really achieve the bound. *)
  Alcotest.(check bool) "yes error <= delta" true
    (Amplify.error_bound ~single_rate:(2. /. 3.) ~trials:t ~threshold:tau <= 0.011);
  Alcotest.(check bool) "invalid input rejected" true
    (match Amplify.trials_for ~yes_rate:0.3 ~no_rate:0.4 ~delta:0.1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_midpoint_threshold_boundaries () =
  let thr ~trials ~yes ~no = Stats.midpoint_threshold ~trials ~yes_rate:yes ~no_rate:no in
  (* Exact integer midpoints must not pick up a float-noise extra accept:
     10 * (0.8 + 0.4) / 2 is 6.000000000000001 in floats, and the old
     ceil-only computation returned 7. *)
  Alcotest.(check int) "exact midpoint 6" 6 (thr ~trials:10 ~yes:0.8 ~no:0.4);
  Alcotest.(check int) "exact midpoint 360" 360 (thr ~trials:600 ~yes:0.8 ~no:0.4);
  (* Non-integer midpoints still round up. *)
  Alcotest.(check int) "fractional rounds up" 7 (thr ~trials:11 ~yes:0.8 ~no:0.4);
  Alcotest.(check int) "definition-2 even" 300 (thr ~trials:600 ~yes:(2. /. 3.) ~no:(1. /. 3.));
  Alcotest.(check int) "definition-2 odd" 301 (thr ~trials:601 ~yes:(2. /. 3.) ~no:(1. /. 3.));
  (* Clamped to the trial count. *)
  Alcotest.(check int) "clamped" 10 (thr ~trials:10 ~yes:1.0 ~no:1.0);
  Alcotest.(check int) "zero rates" 0 (thr ~trials:10 ~yes:0.0 ~no:0.0)

let test_amplify_accepts_at_exact_threshold () =
  (* The acceptance comparison is >=: exactly threshold accepts is enough. *)
  let run_accepting k seed = (fake_run 1.0) seed |> fun o -> { o with Outcome.accepted = seed <= k } in
  let at = Amplify.repeat ~trials:10 ~threshold:6 (run_accepting 6) in
  let below = Amplify.repeat ~trials:10 ~threshold:6 (run_accepting 5) in
  Alcotest.(check bool) "exactly threshold accepts" true at.Amplify.outcome.Outcome.accepted;
  Alcotest.(check bool) "one below rejects" false below.Amplify.outcome.Outcome.accepted

let test_gni_threshold_uses_midpoint () =
  (* The three GNI acceptance thresholds all come from the shared snapped
     midpoint; pin the relationship on a real parameter draw. *)
  let inst = Gni.yes_instance (Rng.create 3) 6 in
  let params = Gni.params_for ~seed:5 inst in
  Alcotest.(check int) "gni threshold"
    (Stats.midpoint_threshold ~trials:params.Gni.repetitions
       ~yes_rate:(Gni.yes_rate_bound params) ~no_rate:(Gni.no_rate_bound params))
    params.Gni.threshold

let test_amplify_protocol_end_to_end () =
  (* Amplify Protocol 1 to error ~0 on both sides. *)
  let rng = Rng.create 214 in
  let yes_g = Family.random_symmetric rng 10 and no_g = Family.random_asymmetric rng 10 in
  let yes = Amplify.majority ~trials:9 (fun seed -> Sym_dmam.run ~seed yes_g Sym_dmam.honest) in
  let no =
    Amplify.majority ~trials:9 (fun seed -> Sym_dmam.run ~seed no_g Sym_dmam.adversary_random_perm)
  in
  Alcotest.(check bool) "YES amplified accept" true yes.Amplify.outcome.Outcome.accepted;
  Alcotest.(check bool) "NO amplified reject" false no.Amplify.outcome.Outcome.accepted

let suite =
  [ ( "gni_full",
      [ Alcotest.test_case "|S| counting with symmetric graphs" `Slow test_gni_full_candidate_counts;
        Alcotest.test_case "|S| counting, asymmetric isomorphic" `Quick
          test_gni_full_candidate_counts_asymmetric_too;
        Alcotest.test_case "automorphism groups" `Quick test_gni_full_aut_groups;
        Alcotest.test_case "single-repetition gap" `Slow test_gni_full_single_rep_gap;
        Alcotest.test_case "amplified verdicts" `Slow test_gni_full_verdicts;
        Alcotest.test_case "fake automorphism caught by audit" `Slow test_gni_full_fake_automorphism_caught;
        Alcotest.test_case "oversized groups refused" `Quick test_gni_full_rejects_big_groups
      ] );
    ( "rpls",
      [ Alcotest.test_case "completeness" `Quick test_rpls_completeness;
        Alcotest.test_case "exponential verification saving" `Quick test_rpls_exponential_verification_saving;
        Alcotest.test_case "corruption caught" `Quick test_rpls_catches_corruption;
        Alcotest.test_case "error bound small" `Quick test_rpls_error_bound_small
      ] );
    ( "amplify",
      [ Alcotest.test_case "majority sharpens" `Quick test_amplify_majority_sharpens;
        Alcotest.test_case "costs sum" `Quick test_amplify_costs_sum;
        Alcotest.test_case "error bound monotone" `Quick test_amplify_error_bound_monotone;
        Alcotest.test_case "trials_for" `Quick test_amplify_trials_for;
        Alcotest.test_case "midpoint threshold boundaries" `Quick test_midpoint_threshold_boundaries;
        Alcotest.test_case "accepts at exact threshold" `Quick test_amplify_accepts_at_exact_threshold;
        Alcotest.test_case "GNI threshold uses snapped midpoint" `Quick test_gni_threshold_uses_midpoint;
        Alcotest.test_case "Protocol 1 amplified end-to-end" `Quick test_amplify_protocol_end_to_end
      ] )
  ]
