(* Tests for the hash substrate: Theorem 3.2's linear family (linearity,
   collision bound, row decomposition) over both carriers, and the eps-API
   hash of Section 4 (aggregation correctness, uniform marginals, pairwise
   collision bound). *)

open Ids_hash
module Bitset = Ids_graph.Bitset
module Graph = Ids_graph.Graph
module Perm = Ids_graph.Perm
module Nat = Ids_bignum.Nat
module Rng = Ids_bignum.Rng

let qtest = QCheck_alcotest.to_alcotest

let p_int = 10007
let f_int = Field.int_field p_int

let f_nat =
  (* A 127-bit Mersenne prime: big enough to exercise the Nat carrier. *)
  Field.nat_field (Nat.of_string "170141183460469231731687303715884105727")

(* --- field records ----------------------------------------------------------- *)

let test_int_field_ops () =
  Alcotest.(check int) "add wraps" 1 (f_int.Field.add 10000 8);
  Alcotest.(check int) "sub wraps" (p_int - 1) (f_int.Field.sub 0 1);
  Alcotest.(check int) "of_int negative" (p_int - 3) (f_int.Field.of_int (-3));
  Alcotest.(check int) "2^10 mod 97" 54 ((Field.int_field 97).Field.pow_int 2 10)

(* int62_field: same contract as int_field with the 2^31 product cap lifted
   by the widening C mulmod. Exercised at the largest prime below 2^62,
   where every product overflows a native int. *)
let p62 = 4611686018427387847 (* 2^62 - 57 *)
let f62 = Field.int62_field p62

let test_int62_field_ops () =
  Alcotest.(check int) "(p-1)^2 = 1" 1 (f62.Field.mul (p62 - 1) (p62 - 1));
  Alcotest.(check int) "add wraps" (p62 - 2) (f62.Field.add (p62 - 1) (p62 - 1));
  Alcotest.(check int) "sub wraps" (p62 - 1) (f62.Field.sub 0 1);
  Alcotest.(check int) "of_int negative" (p62 - 3) (f62.Field.of_int (-3));
  Alcotest.(check int) "2^62 mod (2^62-57)" 57 (f62.Field.pow_int 2 62);
  (* Fermat: a^(p-1) = 1 via pow_int's square-and-multiply over 62 bits.
     p - 1 fits the native exponent argument exactly. *)
  Alcotest.(check int) "Fermat a^(p-1) = 1" 1 (f62.Field.pow_int 1234567891011 (p62 - 1));
  (* Agreement with int_field where both are defined. *)
  let f_a = Field.int_field 10007 and f_b = Field.int62_field 10007 in
  for a = 9990 to 10006 do
    for b = 9990 to 10006 do
      Alcotest.(check int) "mul agrees" (f_a.Field.mul a b) (f_b.Field.mul a b);
      Alcotest.(check int) "add agrees" (f_a.Field.add a b) (f_b.Field.add a b);
      Alcotest.(check int) "sub agrees" (f_a.Field.sub a b) (f_b.Field.sub a b)
    done
  done

let test_int62_field_random_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let x = f62.Field.random rng in
    Alcotest.(check bool) "in range" true (0 <= x && x < p62)
  done

let test_int_field_random_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 500 do
    let x = f_int.Field.random rng in
    Alcotest.(check bool) "in range" true (x >= 0 && x < p_int)
  done

let test_field_rejects_bad_modulus () =
  Alcotest.check_raises "too big" (Invalid_argument "Field.int_field: modulus out of native-safe range")
    (fun () -> ignore (Field.int_field (1 lsl 40)))

let test_nat_field_bits () =
  Alcotest.(check int) "127-bit prime" 127 f_nat.Field.bits

(* --- linear family ------------------------------------------------------------ *)

let random_set rng n =
  let s = Bitset.create n in
  for w = 0 to n - 1 do
    if Rng.bool rng then Bitset.add s w
  done;
  s

let test_linearity_int () =
  (* h_a over disjoint row sums: hashing a matrix row-by-row equals hashing
     the whole matrix, which is exactly the linearity Protocol 1 exploits. *)
  let rng = Rng.create 11 in
  let n = 9 in
  for _ = 1 to 50 do
    let a = f_int.Field.random rng in
    let rows = List.init n (fun v -> (v, random_set rng n)) in
    let whole = Linear.matrix_hash f_int a ~n rows in
    let parts =
      List.fold_left (fun acc (v, s) -> f_int.Field.add acc (Linear.row_hash f_int a ~n ~row:v s)) 0 rows
    in
    Alcotest.(check int) "sum of row hashes" whole parts
  done

let test_row_decomposition () =
  (* h_a([v, r]) = a^(v n) * P(r; a): the factorization every node uses. *)
  let rng = Rng.create 12 in
  let n = 7 in
  for _ = 1 to 50 do
    let a = f_int.Field.random rng in
    let v = Rng.int rng n in
    let s = random_set rng n in
    Alcotest.(check int) "factorized"
      (f_int.Field.mul (f_int.Field.pow_int a (v * n)) (Linear.row_poly f_int a s))
      (Linear.row_hash f_int a ~n ~row:v s)
  done

let test_graph_hash_automorphism_invariance () =
  (* For an automorphism rho, the permuted matrix equals the original, so
     the hashes agree at every index — the completeness side of Protocol 1. *)
  let g = Graph.petersen () in
  let rho = Option.get (Ids_graph.Iso.find_nontrivial_automorphism g) in
  let rng = Rng.create 13 in
  for _ = 1 to 50 do
    let a = f_int.Field.random rng in
    Alcotest.(check int) "hash equal under automorphism" (Linear.graph_hash f_int a g)
      (Linear.permuted_graph_hash f_int a g rho)
  done

let test_collision_rate_within_bound () =
  (* Empirical collision frequency for a non-automorphism must respect the
     m/p bound of Theorem 3.2 (soundness side). *)
  let rng = Rng.create 14 in
  let g = Ids_graph.Family.random_asymmetric rng 8 in
  let rho = Perm.random_nonidentity rng 8 in
  let trials = 4000 in
  let collisions = ref 0 in
  for _ = 1 to trials do
    let a = f_int.Field.random rng in
    if Linear.graph_hash f_int a g = Linear.permuted_graph_hash f_int a g rho then incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  let bound = Linear.collision_bound ~n:8 ~p:p_int in
  (* Allow generous sampling slack above the analytical bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f within 3x bound %.4f + slack" rate bound)
    true
    (rate <= (3. *. bound) +. 0.02)

let test_powers_consistency () =
  let rng = Rng.create 15 in
  let g = Graph.random_gnp rng 8 0.5 in
  let rho = Perm.random rng 8 in
  for _ = 1 to 20 do
    let a = f_int.Field.random rng in
    let powers = Linear.powers f_int a ((8 * 8) + 8) in
    Alcotest.(check int) "graph hash" (Linear.graph_hash f_int a g) (Linear.graph_hash_pow f_int ~powers g);
    Alcotest.(check int) "permuted hash"
      (Linear.permuted_graph_hash f_int a g rho)
      (Linear.permuted_graph_hash_pow f_int ~powers g rho)
  done

let nat_check = Alcotest.testable Nat.pp Nat.equal

let test_linearity_nat () =
  let rng = Rng.create 16 in
  let n = 6 in
  for _ = 1 to 10 do
    let a = f_nat.Field.random rng in
    let rows = List.init n (fun v -> (v, random_set rng n)) in
    let whole = Linear.matrix_hash f_nat a ~n rows in
    let parts =
      List.fold_left
        (fun acc (v, s) -> f_nat.Field.add acc (Linear.row_hash f_nat a ~n ~row:v s))
        Nat.zero rows
    in
    Alcotest.check nat_check "sum of row hashes (nat)" whole parts
  done

let test_nat_automorphism_invariance () =
  let g = Graph.cycle 8 in
  let rho = Option.get (Ids_graph.Iso.find_nontrivial_automorphism g) in
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let a = f_nat.Field.random rng in
    Alcotest.check nat_check "nat hash invariant" (Linear.graph_hash f_nat a g)
      (Linear.permuted_graph_hash f_nat a g rho)
  done

(* --- API hash ------------------------------------------------------------------ *)

let q_api = 2903
let f_api = Field.int_field q_api

let test_api_aggregation_matches_central () =
  (* Summing per-row terms up any order and finalizing equals the central
     hash — the property the GNI spanning-tree aggregation relies on. *)
  let rng = Rng.create 18 in
  for _ = 1 to 30 do
    let g = Graph.random_gnp rng 7 0.5 in
    let spec = Api.random_spec f_api ~k:3 rng in
    let z = ref (Api.zero_term f_api ~k:3) in
    (* Deliberately sum rows in a scrambled order. *)
    let order = Array.init 7 Fun.id in
    Rng.shuffle rng order;
    Array.iter
      (fun v -> z := Api.combine f_api !z (Api.row_term f_api spec ~n:7 ~row:v (Graph.closed_neighborhood g v)))
      order;
    Alcotest.(check int) "aggregated = central" (Api.hash_graph f_api spec g) (Api.finalize f_api spec !z)
  done

let test_api_marginal_uniform () =
  (* Property (2) of eps-API: Pr(h(x) = y) = 1/q exactly. Statistically:
     chi-square-ish check on a coarse bucketing. *)
  let rng = Rng.create 19 in
  let g = Graph.petersen () in
  let trials = 30_000 in
  let buckets = 10 in
  let counts = Array.make buckets 0 in
  for _ = 1 to trials do
    let spec = Api.random_spec f_api ~k:3 rng in
    let y = Api.hash_graph f_api spec g in
    counts.(y * buckets / q_api) <- counts.(y * buckets / q_api) + 1
  done;
  let expected = float_of_int trials /. float_of_int buckets in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d near %.0f" i c expected)
        true
        (Float.abs (float_of_int c -. expected) < expected *. 0.1))
    counts

let test_api_pairwise_collision_bound () =
  (* Property (1): for two distinct fixed graphs, joint collisions onto a
     common target should happen with probability ~ (1+eps)/q^2. Testing the
     joint event directly needs ~q^2 samples, so we test the implied
     distinctness statement: Pr(h(x1) = h(x2)) <= (1+eps)/q for x1 <> x2. *)
  let rng = Rng.create 20 in
  let g1 = Graph.petersen () in
  let g2 = Graph.cycle 10 in
  let trials = 40_000 in
  let collisions = ref 0 in
  for _ = 1 to trials do
    let spec = Api.random_spec f_api ~k:3 rng in
    if Api.hash_graph f_api spec g1 = Api.hash_graph f_api spec g2 then incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  let eps = Api.epsilon f_api ~n:10 ~k:3 ~q:(float_of_int q_api) in
  let bound = (1. +. eps) /. float_of_int q_api in
  Alcotest.(check bool)
    (Printf.sprintf "collision rate %.5f vs bound %.5f" rate bound)
    true
    (rate <= (3. *. bound) +. 0.003)

let test_api_spec_bits () =
  Alcotest.(check int) "2k+1 elements" (7 * f_api.Field.bits) (Api.spec_bits f_api ~k:3)

let prop_api_combine_commutative =
  QCheck.Test.make ~name:"api combine commutative+associative" ~count:100
    (QCheck.make QCheck.Gen.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))
    (fun (a, b, c) ->
      let f = f_api in
      let va = [| a mod q_api; b mod q_api |]
      and vb = [| b mod q_api; c mod q_api |]
      and vc = [| c mod q_api; a mod q_api |] in
      Api.combine f va vb = Api.combine f vb va
      && Api.combine f (Api.combine f va vb) vc = Api.combine f va (Api.combine f vb vc))

let suite =
  [ ( "field",
      [ Alcotest.test_case "int field ops" `Quick test_int_field_ops;
        Alcotest.test_case "int62 field ops" `Quick test_int62_field_ops;
        Alcotest.test_case "int62 random in range" `Quick test_int62_field_random_range;
        Alcotest.test_case "random in range" `Quick test_int_field_random_range;
        Alcotest.test_case "rejects oversized modulus" `Quick test_field_rejects_bad_modulus;
        Alcotest.test_case "nat field bits" `Quick test_nat_field_bits
      ] );
    ( "linear",
      [ Alcotest.test_case "linearity (int)" `Quick test_linearity_int;
        Alcotest.test_case "row decomposition" `Quick test_row_decomposition;
        Alcotest.test_case "automorphism invariance" `Quick test_graph_hash_automorphism_invariance;
        Alcotest.test_case "collision rate within bound" `Quick test_collision_rate_within_bound;
        Alcotest.test_case "power-table consistency" `Quick test_powers_consistency;
        Alcotest.test_case "linearity (nat)" `Quick test_linearity_nat;
        Alcotest.test_case "automorphism invariance (nat)" `Quick test_nat_automorphism_invariance
      ] );
    ( "api",
      [ Alcotest.test_case "aggregation = central hash" `Quick test_api_aggregation_matches_central;
        Alcotest.test_case "marginal uniform" `Slow test_api_marginal_uniform;
        Alcotest.test_case "pairwise collision bound" `Slow test_api_pairwise_collision_bound;
        Alcotest.test_case "spec bits" `Quick test_api_spec_bits;
        qtest prop_api_combine_commutative
      ] )
  ]
