let () =
  Alcotest.run "ids"
    (Test_bignum.suite @ Test_graph.suite @ Test_network.suite @ Test_hash.suite
    @ Test_engine.suite @ Test_protocols.suite @ Test_faults.suite @ Test_lowerbound.suite
    @ Test_extensions.suite
    @ Test_obs.suite
    @ Test_strategy.suite
    @ Test_features.suite @ Test_properties.suite @ Test_integration.suite @ Test_setup.suite
    @ Test_serve.suite @ Test_telemetry.suite @ Test_scale.suite)
