(* Tests for the service telemetry plane (E20): the snapshot delta codec
   and its exactness guarantees, delta windows (checkpoint/since), the
   snapshot merge fold, span re-basing across process-epoch anchors, the
   telemetry frame wire codec, the daemon's per-shard registry fold
   (sequence holes, worker incarnations, lost-delta accounting, latency
   quantiles, JSON + Prometheus exposition), the supervisor's queue-wait
   stamp, and the committed BENCH_telemetry.json artifact. *)

module Obs = Ids_obs.Obs
module Json = Ids_obs.Json
module Request = Ids_serve.Request
module Telemetry = Ids_serve.Telemetry
module Supervisor = Ids_serve.Supervisor

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Tracing is process-global state; leave it the way the suite runs. *)
let with_tracing f =
  let before = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_metric_filter None;
      Obs.set_enabled before)
    f

(* --- snapshot codec ---------------------------------------------------------------- *)

let sample_snapshot =
  { Obs.counters =
      [ { Obs.cname = "net.x";
          total = 7;
          rounds = [ { Obs.round = 1; sum = 5; max_node = 3 }; { Obs.round = 2; sum = 2; max_node = 2 } ]
        }
      ];
    histos = [ { Obs.hname = "h"; buckets = [ (3, 4) ] } ];
    spans_dropped = 1
  }

let test_snapshot_codec_pinned () =
  (* The wire encoding is pinned byte for byte: server, workers, run-log
     records and the bench oracle all compare these strings directly. *)
  let expected =
    {|{"counters":[{"name":"net.x","total":7,"rounds":[[1,5,3],[2,2,2]]}],"histos":[{"name":"h","buckets":[[3,4]]}],"spans_dropped":1}|}
  in
  let line = Obs.snapshot_json sample_snapshot in
  checks "pinned encoding" expected line;
  (match Obs.snapshot_of_string line with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok s -> checkb "round-trips to an equal snapshot" true (s = sample_snapshot));
  (* Strictness: a torn prefix must surface as an error, never a partial
     snapshot. *)
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "prefix of %d bytes rejected" n)
        true
        (Result.is_error (Obs.snapshot_of_string (String.sub line 0 n))))
    [ 10; String.length line / 2; String.length line - 2 ];
  checkb "missing spans_dropped rejected" true
    (Result.is_error (Obs.snapshot_of_string {|{"counters":[],"histos":[]}|}))

let test_checkpoint_since_window () =
  with_tracing (fun () ->
      let c = Obs.Counter.make "test.win" in
      Obs.Counter.add_cell c ~round:1 ~node:0 10;
      Obs.Counter.add_cell c ~round:1 ~node:1 20;
      let cp = Obs.checkpoint () in
      Obs.Counter.add_cell c ~round:1 ~node:1 5;
      Obs.Counter.add_cell c ~round:2 ~node:0 3;
      let d = Obs.since cp in
      (* Every field of the window is exact for the window: the pre-existing
         30 units are invisible, and max_node is the window's own peak. *)
      checki "window total" 8 (Obs.counter_total d "test.win");
      match List.find_opt (fun (x : Obs.counter_snapshot) -> x.Obs.cname = "test.win") d.Obs.counters with
      | None -> Alcotest.fail "window counter missing"
      | Some cs ->
        checkb "window rounds exact" true
          (cs.Obs.rounds
          = [ { Obs.round = 1; sum = 5; max_node = 5 }; { Obs.round = 2; sum = 3; max_node = 3 } ]))

let test_merge_fold () =
  let a =
    { Obs.counters = [ { Obs.cname = "net.x"; total = 3; rounds = [ { Obs.round = 1; sum = 3; max_node = 2 } ] } ];
      histos = [ { Obs.hname = "h"; buckets = [ (2, 1) ] } ];
      spans_dropped = 1
    }
  in
  let b =
    { Obs.counters =
        [ { Obs.cname = "net.x"; total = 4; rounds = [ { Obs.round = 1; sum = 4; max_node = 3 } ] };
          { Obs.cname = "net.y"; total = 1; rounds = [] }
        ];
      histos = [ { Obs.hname = "h"; buckets = [ (2, 2); (5, 1) ] } ];
      spans_dropped = 0
    }
  in
  checkb "empty is the identity" true (Obs.merge Obs.empty a = a && Obs.merge a Obs.empty = a);
  let m = Obs.merge a b in
  checki "totals add" 7 (Obs.counter_total m "net.x");
  checki "names union" 1 (Obs.counter_total m "net.y");
  checkb "fold order does not change the additive fields" true (Obs.merge b a = m);
  (match List.find_opt (fun (c : Obs.counter_snapshot) -> c.Obs.cname = "net.x") m.Obs.counters with
  | Some c ->
    checkb "round sums add, max folds by max" true
      (c.Obs.rounds = [ { Obs.round = 1; sum = 7; max_node = 3 } ])
  | None -> Alcotest.fail "merged counter missing");
  match m.Obs.histos with
  | [ h ] ->
    checkb "buckets add" true (h.Obs.buckets = [ (2, 3); (5, 1) ]);
    checki "spans_dropped adds" 1 m.Obs.spans_dropped
  | _ -> Alcotest.fail "merged histos wrong shape"

(* --- span re-basing across process epochs (satellite: epoch anchor) ---------------- *)

let span name start_ns = { Obs.sname = name; sround = 1; snode = -1; sdomain = 0; start_ns; dur_ns = 10 }

let test_epoch_anchor_and_rebased_ordering () =
  (* The anchor is on the shared machine clock and never ahead of now. *)
  checkb "epoch <= now" true (Obs.epoch_ns () <= Obs.now_ns ());
  let before = Obs.epoch_ns () in
  Obs.refresh_epoch ();
  checkb "refresh moves the anchor forward" true (Obs.epoch_ns () >= before);
  (* Two workers born at different times ship spans relative to their own
     anchors. Worker B was born later but its span has the *smaller*
     relative start — only re-basing (adding the anchor that traveled with
     each frame) recovers the true machine-clock order. *)
  let epoch_a = 1_000_000 and epoch_b = 5_000_000 in
  let rel_a = 3_000_000 (* absolute 4_000_000 *) and rel_b = 100_000 (* absolute 5_100_000 *) in
  let ship epoch sp =
    match Obs.spans_of_json (Result.get_ok (Json.parse (Obs.spans_json ~epoch:0 sp))) with
    | Ok back -> List.map (fun (s : Obs.span_record) -> (s.Obs.sname, s.Obs.start_ns + epoch)) back
    | Error e -> Alcotest.failf "spans codec: %s" e
  in
  let rebased = ship epoch_a [ span "a" rel_a ] @ ship epoch_b [ span "b" rel_b ] in
  let ordered = List.sort (fun (_, t1) (_, t2) -> compare t1 t2) rebased in
  checkb "re-based order is machine-clock order" true
    (List.map fst ordered = [ "a"; "b" ]);
  checkb "relative order alone would have been wrong" true (rel_b < rel_a);
  (* And the codec stores starts relative to the shipping epoch. *)
  match Obs.spans_of_json (Result.get_ok (Json.parse (Obs.spans_json ~epoch:epoch_a [ span "a" (epoch_a + 7) ]))) with
  | Ok [ s ] -> checki "start stored relative to the anchor" 7 s.Obs.start_ns
  | Ok _ | Error _ -> Alcotest.fail "single-span codec round-trip failed"

(* --- metric filter ----------------------------------------------------------------- *)

let test_metric_filter () =
  with_tracing (fun () ->
      let net = Obs.Counter.make "net.filtered_test" in
      let inner = Obs.Counter.make "mont.filtered_test" in
      Obs.set_metric_filter (Some [ "net." ]);
      Obs.Counter.add net 2;
      Obs.Counter.add inner 5;
      let s = Obs.snapshot () in
      checki "prefixed counter live" 2 (Obs.counter_total s "net.filtered_test");
      checki "filtered counter records nothing" 0 (Obs.counter_total s "mont.filtered_test");
      (* Lifting the filter revives the registered handle. *)
      Obs.set_metric_filter None;
      Obs.Counter.add inner 3;
      checki "unfiltered again" 3 (Obs.counter_total (Obs.snapshot ()) "mont.filtered_test"))

(* --- frame wire codec -------------------------------------------------------------- *)

let sample_frame ~trace =
  { Request.fpid = 4242;
    fseq = 3;
    fepoch_ns = 987_654_321;
    ftrace = trace;
    fdelta = sample_snapshot;
    fspans = [ span "worker.execute" 17 ]
  }

let test_frame_codec () =
  let roundtrip f =
    match Request.frame_of_json (Result.get_ok (Json.parse (Request.frame_json f))) with
    | Ok g -> checkb "frame round-trips" true (g = f)
    | Error e -> Alcotest.failf "frame did not round-trip: %s" e
  in
  roundtrip (sample_frame ~trace:(Some ("trace-9", 5)));
  roundtrip (sample_frame ~trace:None);
  let resp_roundtrip resp =
    match Request.response_of_line (Request.response_to_json resp) with
    | Ok r -> checkb "response round-trips" true (r = resp)
    | Error e -> Alcotest.failf "response did not round-trip: %s" e
  in
  resp_roundtrip
    (Request.Estimated
       { id = "e1";
         attempts = 2;
         record = {|{"schema_version":3}|};
         telemetry = Some (sample_frame ~trace:(Some ("t", 1)))
       });
  resp_roundtrip (Request.Flush (sample_frame ~trace:None));
  resp_roundtrip
    (Request.Stats_reply { id = "s1"; stats = [ ("accepted", 3) ]; body = Some {|{"uptime_s":1.0}|} });
  (* Requests carry the trace context and the torn-write fault injector. *)
  let req =
    Request.make_estimate ~trace:("trace-1", 7) ~torn_attempt:2 ~id:"r1" ~protocol:"sym_dmam"
      ~strategy:"honest" ~trials:4 ()
  in
  (match Request.of_line (Request.to_json req) with
  | Ok (r, 1) -> checkb "trace + torn_attempt preserved" true (r = req)
  | Ok _ -> Alcotest.fail "default attempt wrong"
  | Error e -> Alcotest.failf "traced request rejected: %s" e);
  (* Back-compat: a pre-telemetry response line still parses. *)
  match Request.response_of_line {|{"id":"a","status":"ok","attempts":1,"record":"{}"}|} with
  | Ok (Request.Estimated { telemetry = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "pre-telemetry line grew a frame"
  | Error e -> Alcotest.failf "pre-telemetry line rejected: %s" e

(* --- registry fold ----------------------------------------------------------------- *)

let frame_with ~pid ~seq ~total =
  { Request.fpid = pid;
    fseq = seq;
    fepoch_ns = 0;
    ftrace = None;
    fdelta =
      { Obs.counters = [ { Obs.cname = "net.x"; total; rounds = [] } ]; histos = []; spans_dropped = 0 };
    fspans = []
  }

let test_registry_fold () =
  let reg = Telemetry.create ~workers:2 in
  Telemetry.on_frame reg ~wid:0 (frame_with ~pid:100 ~seq:1 ~total:5);
  (* A hole in the per-incarnation sequence is a produced-but-lost frame. *)
  Telemetry.on_frame reg ~wid:0 (frame_with ~pid:100 ~seq:3 ~total:7);
  checki "sequence hole counted" 1 (Telemetry.lost_deltas reg);
  (* A new pid restarts the chain: seq 1 again is a fresh incarnation, not
     a replay or a gap. *)
  Telemetry.on_frame reg ~wid:0 (frame_with ~pid:200 ~seq:1 ~total:2);
  checki "incarnation change adds no loss" 1 (Telemetry.lost_deltas reg);
  (* A worker that died holding a request loses exactly one window. *)
  Telemetry.on_lost reg ~wid:1;
  checki "crash loss counted" 2 (Telemetry.lost_deltas reg);
  Telemetry.on_flush reg ~wid:1 (frame_with ~pid:300 ~seq:1 ~total:11);
  checki "frames counted across shards" 4 (Telemetry.frames reg);
  (* The service ledger is exactly the sum of delivered deltas. *)
  checki "merged ledger = sum of delivered deltas" 25
    (Obs.counter_total (Telemetry.merged reg) "net.x")

let test_exposition () =
  let reg = Telemetry.create ~workers:1 in
  Telemetry.on_frame reg ~wid:0 (frame_with ~pid:100 ~seq:1 ~total:5);
  (* Two requests at 3ms and 5ms total: exact mean 4ms; p99 is the
     power-of-two bucket upper bound covering 5000us, i.e. 8192us. *)
  Telemetry.on_request reg ~protocol:"sym_dmam" ~attempts:2 ~queue_s:0.001 ~run_s:0.002
    ~total_s:0.003 ~ok:true;
  Telemetry.on_request reg ~protocol:"sym_dmam" ~attempts:1 ~queue_s:0.001 ~run_s:0.004
    ~total_s:0.005 ~ok:true;
  let service = [ ("completed", 2); ("rejected", 0) ] in
  let doc = Telemetry.to_json reg ~service ~uptime_s:1.5 in
  (match Json.parse doc with
  | Error e -> Alcotest.failf "telemetry document does not parse: %s" e
  | Ok j ->
    let num path =
      match
        List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
        |> fun v -> Option.bind v Json.to_float
      with
      | Some f -> f
      | None -> Alcotest.failf "missing %s" (String.concat "." path)
    in
    checkb "availability 100%" true (num [ "availability" ] = 1.0);
    checki "frames" 1 (int_of_float (num [ "frames" ]));
    (match Option.bind (Json.member "protocols" j) Json.to_list with
    | Some [ p ] ->
      let f k k2 = match Option.bind (Json.member k p) (fun h -> Option.bind (Json.member k2 h) Json.to_float) with
        | Some v -> v
        | None -> Alcotest.failf "missing protocols[0].%s.%s" k k2
      in
      checkb "exact mean total ms" true (abs_float (f "total_ms" "mean" -. 4.0) < 0.001);
      checkb "p99 is the bucket upper bound" true (abs_float (f "total_ms" "p99" -. 8.192) < 0.001);
      checkb "retries counted" true
        (Option.bind (Json.member "retries" p) Json.to_int = Some 1)
    | _ -> Alcotest.fail "expected exactly one protocol row");
    match Option.bind (Json.member "ledger" j) (Json.member "counters") with
    | Some _ -> ()
    | None -> Alcotest.fail "merged ledger missing");
  let prom = Telemetry.to_prometheus reg ~service ~uptime_s:1.5 in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      checkb (Printf.sprintf "prometheus text has %S" needle) true (contains prom needle))
    [ "ids_availability 1.0000";
      "ids_shard_frames_total{wid=\"0\"} 1";
      "ids_requests_total{protocol=\"sym_dmam\",outcome=\"completed\"} 2";
      "ids_obs_counter_total{name=\"net.x\"} 5"
    ]

(* --- supervisor queue-wait stamp ---------------------------------------------------- *)

let test_supervisor_queued_for () =
  let cfg = { Supervisor.default with Supervisor.workers = 1; queue_bound = 8 } in
  let sup = Supervisor.create cfg in
  let assigns acts =
    List.filter_map
      (function Supervisor.Assign { req; queued_for; _ } -> Some (req, queued_for) | _ -> None)
      acts
  in
  (match assigns (Supervisor.step sup ~now:1.0 (Supervisor.Submit "r1")) with
  | [ ("r1", q) ] -> checkb "immediate dispatch waits ~0" true (q < 1e-9)
  | _ -> Alcotest.fail "r1 not assigned immediately");
  checkb "r2 queues behind the busy worker" true
    (assigns (Supervisor.step sup ~now:1.0 (Supervisor.Submit "r2")) = []);
  (* The stamp measures enqueue-to-assign on the supervisor's clock. *)
  match assigns (Supervisor.step sup ~now:1.25 (Supervisor.Done 0)) with
  | [ ("r2", q) ] -> checkb "queue wait = 0.25s" true (abs_float (q -. 0.25) < 1e-9)
  | _ -> Alcotest.fail "r2 not assigned after the worker freed"

(* --- committed artifact ------------------------------------------------------------- *)

let test_bench_telemetry_shape () =
  let path =
    match List.find_opt Sys.file_exists [ "../BENCH_telemetry.json"; "BENCH_telemetry.json" ] with
    | Some p -> p
    | None -> Alcotest.fail "BENCH_telemetry.json not committed"
  in
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse s with
  | Error e -> Alcotest.failf "BENCH_telemetry.json does not parse: %s" e
  | Ok j ->
    let mem k = Json.member k j in
    let sub name k = Option.bind (mem name) (Json.member k) in
    checkb "schema_version 1" true (Option.bind (mem "schema_version") Json.to_int = Some 1);
    List.iter
      (fun k -> if mem k = None then Alcotest.failf "missing %S" k)
      [ "mode"; "chaos"; "requests"; "ledger_exact"; "lost_deltas"; "frames"; "counters"; "trace";
        "overhead"; "torn" ];
    (* The artifact must witness the E20 acceptance criteria. *)
    checkb "ledger exactness held" true (mem "ledger_exact" = Some (Json.Bool true));
    (match Option.bind (sub "trace" "pids") Json.to_int with
    | Some pids -> checkb "trace stitched across >= 2 pids" true (pids >= 2)
    | None -> Alcotest.fail "trace.pids not an int");
    (match Option.bind (sub "overhead" "overhead_pct") Json.to_float with
    | Some pct -> checkb "enabled-path overhead under 3%" true (pct < 3.0)
    | None -> Alcotest.fail "overhead.overhead_pct not a number");
    (match Option.bind (sub "torn" "parse_errors") Json.to_int with
    | Some 0 -> ()
    | _ -> Alcotest.fail "torn.parse_errors must be 0");
    match (Option.bind (sub "requests" "sent") Json.to_int, Option.bind (sub "requests" "completed") Json.to_int) with
    | Some sent, Some completed -> checkb "all chaos requests completed" true (sent > 0 && sent = completed)
    | _ -> Alcotest.fail "requests.sent/completed not ints"

let suite =
  [ ( "telemetry",
      [ Alcotest.test_case "snapshot codec: pinned encoding, strict reader" `Quick
          test_snapshot_codec_pinned;
        Alcotest.test_case "checkpoint/since: exact delta window" `Quick
          test_checkpoint_since_window;
        Alcotest.test_case "snapshot merge: additive fold" `Quick test_merge_fold;
        Alcotest.test_case "epoch anchor: re-based span ordering" `Quick
          test_epoch_anchor_and_rebased_ordering;
        Alcotest.test_case "metric filter: prefixes gate the hot path" `Quick test_metric_filter;
        Alcotest.test_case "frame codec: frames, flushes, trace context" `Quick test_frame_codec;
        Alcotest.test_case "registry fold: seq holes, incarnations, losses" `Quick
          test_registry_fold;
        Alcotest.test_case "exposition: JSON + Prometheus documents" `Quick test_exposition;
        Alcotest.test_case "supervisor: queue-wait stamp" `Quick test_supervisor_queued_for;
        Alcotest.test_case "BENCH_telemetry.json shape" `Quick test_bench_telemetry_shape
      ] )
  ]
