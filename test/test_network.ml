(* Tests for the ids_network substrate: bit accounting, cost ledger, and the
   broadcast/unicast semantics of the execution context. *)

open Ids_network
module Graph = Ids_graph.Graph

let qtest = QCheck_alcotest.to_alcotest

let test_bits_values () =
  Alcotest.(check int) "ceil_log2 1" 0 (Bits.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Bits.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Bits.ceil_log2 3);
  Alcotest.(check int) "ceil_log2 1024" 10 (Bits.ceil_log2 1024);
  Alcotest.(check int) "ceil_log2 1025" 11 (Bits.ceil_log2 1025);
  Alcotest.(check int) "id 16" 4 (Bits.id 16);
  Alcotest.(check int) "id 1 at least one bit" 1 (Bits.id 1);
  Alcotest.(check int) "field 7 needs 3 bits" 3 (Bits.field_int 7);
  Alcotest.(check int) "perm 8" 24 (Bits.perm 8)

let test_bits_invalid () =
  Alcotest.check_raises "non-positive" (Invalid_argument "Bits.ceil_log2: non-positive") (fun () ->
      ignore (Bits.ceil_log2 0))

let test_cost_ledger () =
  let c = Cost.create 3 in
  Cost.charge_to_prover c 0 10;
  Cost.charge_from_prover c 0 5;
  Cost.charge_from_prover c 1 100;
  Cost.charge_all_from_prover c 1;
  Alcotest.(check int) "node 0 total" 16 (Cost.node_total c 0);
  Alcotest.(check int) "node 1 total" 101 (Cost.node_total c 1);
  Alcotest.(check int) "node 2 total" 1 (Cost.node_total c 2);
  Alcotest.(check int) "max per node" 101 (Cost.max_per_node c);
  Alcotest.(check int) "max from prover" 101 (Cost.max_from_prover c);
  Alcotest.(check int) "grand total" 118 (Cost.total c)

let test_challenge_charges_and_determinism () =
  let g = Graph.cycle 5 in
  let net1 = Network.create ~seed:7 g in
  let net2 = Network.create ~seed:7 g in
  let c1 = Network.challenge net1 ~bits:12 (fun rng -> Ids_bignum.Rng.bits rng 12) in
  let c2 = Network.challenge net2 ~bits:12 (fun rng -> Ids_bignum.Rng.bits rng 12) in
  Alcotest.(check (array int)) "same seed, same challenges" c1 c2;
  for v = 0 to 4 do
    Alcotest.(check int) "charged to prover" 12 (Cost.to_prover (Network.cost net1) v)
  done;
  let net3 = Network.create ~seed:8 g in
  let c3 = Network.challenge net3 ~bits:12 (fun rng -> Ids_bignum.Rng.bits rng 12) in
  Alcotest.(check bool) "different seed differs" true (c1 <> c3)

let test_challenges_independent_across_nodes () =
  let g = Graph.complete 6 in
  let net = Network.create ~seed:3 g in
  let c = Network.challenge net ~bits:30 (fun rng -> Ids_bignum.Rng.bits rng 30) in
  let distinct = List.sort_uniq Stdlib.compare (Array.to_list c) in
  Alcotest.(check int) "6 nodes, 6 distinct 30-bit draws" 6 (List.length distinct)

let test_broadcast_consistency () =
  let g = Graph.path 4 in
  let net = Network.create ~seed:1 g in
  let uniform = Network.broadcast_uniform net ~bits:8 42 in
  for v = 0 to 3 do
    Alcotest.(check bool) "uniform consistent" true (Network.broadcast_consistent_at net uniform v)
  done;
  let split = Network.broadcast net ~bits:8 [| 42; 42; 7; 7 |] in
  Alcotest.(check bool) "node 0 sees consistent prefix" true (Network.broadcast_consistent_at net split 0);
  Alcotest.(check bool) "node 1 catches mismatch" false (Network.broadcast_consistent_at net split 1);
  Alcotest.(check bool) "node 2 catches mismatch" false (Network.broadcast_consistent_at net split 2)

let test_nonconstant_broadcast_always_caught_when_connected () =
  (* On a connected graph, any non-constant assignment must fail at some
     node: the distributed check implements a true broadcast. *)
  let rng = Ids_bignum.Rng.create 5 in
  for _ = 1 to 30 do
    let g = Graph.random_connected_gnp rng 10 0.3 in
    let net = Network.create ~seed:1 g in
    let values = Array.init 10 (fun _ -> Ids_bignum.Rng.int rng 3) in
    let constant = Array.for_all (fun x -> x = values.(0)) values in
    let all_pass =
      List.for_all (fun v -> Network.broadcast_consistent_at net values v) (List.init 10 Fun.id)
    in
    Alcotest.(check bool) "caught iff non-constant" constant all_pass
  done

let test_unicast_charges () =
  let g = Graph.star 4 in
  let net = Network.create ~seed:1 g in
  let _ = Network.unicast net ~bits:9 [| 1; 2; 3; 4 |] in
  let _ = Network.unicast_varbits net ~bits:(fun v -> v) [| 1; 2; 3; 4 |] in
  for v = 0 to 3 do
    Alcotest.(check int) "per-node charge" (9 + v) (Cost.from_prover (Network.cost net) v)
  done

let test_unicast_varbits_accounting () =
  (* Per-node bit functions sum into both the node totals and the grand
     total, on top of whatever the node was already charged. *)
  let g = Graph.cycle 5 in
  let net = Network.create ~seed:2 g in
  let _ = Network.unicast_varbits net ~bits:(fun v -> (2 * v) + 1) [| 10; 11; 12; 13; 14 |] in
  let _ = Network.unicast_varbits net ~bits:(fun v -> 100 * v) [| 0; 0; 0; 0; 0 |] in
  let expected v = (2 * v) + 1 + (100 * v) in
  for v = 0 to 4 do
    Alcotest.(check int) (Printf.sprintf "node %d from-prover sum" v) (expected v)
      (Cost.from_prover (Network.cost net) v)
  done;
  let grand = List.fold_left (fun acc v -> acc + expected v) 0 (List.init 5 Fun.id) in
  Alcotest.(check int) "grand total" grand (Cost.total (Network.cost net));
  Alcotest.(check int) "max per node" (expected 4) (Cost.max_per_node (Network.cost net))

let test_unicast_varbits_length_mismatch () =
  let net = Network.create ~seed:1 (Graph.path 3) in
  Alcotest.check_raises "too short" (Invalid_argument "Network: response length mismatch")
    (fun () -> ignore (Network.unicast_varbits net ~bits:(fun _ -> 1) [| 1; 2 |]));
  Alcotest.check_raises "too long" (Invalid_argument "Network: response length mismatch")
    (fun () -> ignore (Network.unicast_varbits net ~bits:(fun _ -> 1) [| 1; 2; 3; 4 |]))

let test_broadcast_consistent_at_custom_equal () =
  (* The ?equal hook: values that are structurally distinct but semantically
     equal must not read as an equivocation once the payload's own equality
     is supplied. Lists standing in for an un-normalized numeric type. *)
  let g = Graph.path 3 in
  let net = Network.create ~seed:1 g in
  let values = [| [ 1 ]; [ 1; 0 ]; [ 1; 0; 0 ] |] in
  let semantically_equal a b = List.fold_left ( + ) 0 a = List.fold_left ( + ) 0 b in
  Alcotest.(check bool) "structural equality sees a split" false
    (Network.broadcast_consistent_at net values 1);
  Alcotest.(check bool) "semantic equality does not" true
    (Network.broadcast_consistent_at ~equal:semantically_equal net values 1)

let test_equivocation_not_caught_across_components () =
  (* Pins the paper's connectivity assumption: broadcast consistency is only
     enforced along edges, so per-component-constant values pass every local
     check on a disconnected graph — a cross-component equivocation is
     invisible. *)
  let g = Graph.disjoint_union (Graph.cycle 3) (Graph.cycle 3) in
  Alcotest.(check bool) "graph really is disconnected" false (Graph.is_connected g);
  let net = Network.create ~seed:1 g in
  let split = Network.broadcast net ~bits:8 [| 42; 42; 42; 7; 7; 7 |] in
  for v = 0 to 5 do
    Alcotest.(check bool) (Printf.sprintf "node %d sees no mismatch" v) true
      (Network.broadcast_consistent_at net split v)
  done;
  Alcotest.(check bool) "decide accepts the split" true
    (Network.decide net (fun v -> Network.broadcast_consistent_at net split v))

let test_unicast_length_mismatch () =
  let net = Network.create ~seed:1 (Graph.path 3) in
  Alcotest.check_raises "mismatch" (Invalid_argument "Network: response length mismatch") (fun () ->
      ignore (Network.unicast net ~bits:1 [| 1; 2 |]))

let test_decide_all_must_accept () =
  let net = Network.create ~seed:1 (Graph.path 5) in
  Alcotest.(check bool) "all accept" true (Network.decide net (fun _ -> true));
  Alcotest.(check bool) "one rejects" false (Network.decide net (fun v -> v <> 3))

let prop_cost_total_is_sum =
  QCheck.Test.make ~name:"cost total = sum of node totals" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (pair (int_bound 4) (int_bound 50)))
    (fun charges ->
      let c = Cost.create 5 in
      List.iter (fun (v, b) -> Cost.charge_to_prover c v b) charges;
      Cost.total c = List.fold_left (fun acc (_, b) -> acc + b) 0 charges)

(* Random charge sequences mixing both directions over an 8-node ledger. *)
let arb_charge_seq =
  QCheck.(list_of_size (Gen.int_bound 40) (triple bool (int_bound 7) (int_bound 1000)))

let apply_charges c charges =
  List.iter
    (fun (to_prover, v, bits) ->
      if to_prover then Cost.charge_to_prover c v bits else Cost.charge_from_prover c v bits)
    charges

let prop_cost_invariants =
  QCheck.Test.make ~name:"cost: charges non-negative, total = sum node_total" ~count:300 arb_charge_seq
    (fun charges ->
      let c = Cost.create 8 in
      apply_charges c charges;
      let sum = ref 0 and nonneg = ref true in
      for v = 0 to 7 do
        sum := !sum + Cost.node_total c v;
        if Cost.node_total c v < 0 || Cost.to_prover c v < 0 || Cost.from_prover c v < 0 then
          nonneg := false
      done;
      !nonneg && Cost.total c = !sum)

let prop_cost_max_per_node_upper_bound =
  QCheck.Test.make ~name:"cost: max_per_node is the least upper bound" ~count:300 arb_charge_seq
    (fun charges ->
      let c = Cost.create 8 in
      apply_charges c charges;
      let m = Cost.max_per_node c in
      let bounds = ref true and attained = ref false in
      for v = 0 to 7 do
        if Cost.node_total c v > m then bounds := false;
        if Cost.node_total c v = m then attained := true;
        if Cost.from_prover c v > Cost.max_from_prover c then bounds := false
      done;
      !bounds && !attained)

let test_cost_negative_charge_raises () =
  Alcotest.check_raises "to_prover" (Invalid_argument "Cost.charge_to_prover: negative bits")
    (fun () -> Cost.charge_to_prover (Cost.create 2) 0 (-1));
  Alcotest.check_raises "from_prover" (Invalid_argument "Cost.charge_from_prover: negative bits")
    (fun () -> Cost.charge_from_prover (Cost.create 2) 1 (-5));
  (* broadcast helpers funnel through the same guarded entry points *)
  Alcotest.check_raises "all_from_prover" (Invalid_argument "Cost.charge_from_prover: negative bits")
    (fun () -> Cost.charge_all_from_prover (Cost.create 2) (-3))

let suite =
  [ ( "bits",
      [ Alcotest.test_case "known values" `Quick test_bits_values;
        Alcotest.test_case "invalid input" `Quick test_bits_invalid
      ] );
    ( "cost",
      [ Alcotest.test_case "ledger arithmetic" `Quick test_cost_ledger;
        Alcotest.test_case "negative charge raises" `Quick test_cost_negative_charge_raises;
        qtest prop_cost_total_is_sum;
        qtest prop_cost_invariants;
        qtest prop_cost_max_per_node_upper_bound
      ] );
    ( "network",
      [ Alcotest.test_case "challenge charges + determinism" `Quick test_challenge_charges_and_determinism;
        Alcotest.test_case "per-node challenge independence" `Quick test_challenges_independent_across_nodes;
        Alcotest.test_case "broadcast consistency check" `Quick test_broadcast_consistency;
        Alcotest.test_case "non-constant broadcast caught" `Quick
          test_nonconstant_broadcast_always_caught_when_connected;
        Alcotest.test_case "unicast charges" `Quick test_unicast_charges;
        Alcotest.test_case "unicast_varbits cost accounting" `Quick test_unicast_varbits_accounting;
        Alcotest.test_case "unicast_varbits length mismatch" `Quick
          test_unicast_varbits_length_mismatch;
        Alcotest.test_case "broadcast_consistent_at ?equal hook" `Quick
          test_broadcast_consistent_at_custom_equal;
        Alcotest.test_case "equivocation invisible across components" `Quick
          test_equivocation_not_caught_across_components;
        Alcotest.test_case "unicast length mismatch" `Quick test_unicast_length_mismatch;
        Alcotest.test_case "decide = conjunction" `Quick test_decide_all_must_accept
      ] )
  ]
