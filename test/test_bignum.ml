(* Tests for the ids_bignum substrate: naturals against a native-int oracle,
   decimal round-trips, division invariants on large operands, modular
   arithmetic, and primality. *)

open Ids_bignum

let nat = Alcotest.testable Nat.pp Nat.equal

(* --- generators ----------------------------------------------------------- *)

let small_int = QCheck.Gen.int_bound 1_000_000

let gen_pair = QCheck.Gen.pair small_int small_int

(* A random Nat of up to [limbs] limbs, built via decimal strings so we
   do not trust the arithmetic under test to construct its own inputs. *)
let gen_big_string =
  QCheck.Gen.(
    let* digits = int_range 1 60 in
    let* first = int_range 1 9 in
    let* rest = list_repeat (digits - 1) (int_range 0 9) in
    return (String.concat "" (List.map string_of_int (first :: rest))))

let arb_big_string = QCheck.make ~print:(fun s -> s) gen_big_string

(* --- unit tests ----------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun k -> Alcotest.(check int) (string_of_int k) k (Nat.to_int (Nat.of_int k)))
    [ 0; 1; 2; 67_108_863; 67_108_864; 67_108_865; max_int; 123_456_789_012_345 ]

let test_of_int_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Nat.of_int: negative") (fun () ->
      ignore (Nat.of_int (-1)))

let test_to_string_known () =
  Alcotest.(check string) "zero" "0" (Nat.to_string Nat.zero);
  Alcotest.(check string) "small" "42" (Nat.to_string (Nat.of_int 42));
  Alcotest.(check string) "max_int" (string_of_int max_int) (Nat.to_string (Nat.of_int max_int));
  let big = Nat.mul (Nat.of_int max_int) (Nat.of_int max_int) in
  (* (2^62 - 1)^2 = 21267647932558653957237540927630737409 *)
  Alcotest.(check string) "max_int squared" "21267647932558653957237540927630737409" (Nat.to_string big)

let test_of_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Nat.to_string (Nat.of_string s)))
    [ "0"; "1"; "10000000"; "99999999999999999999999999999999"; "340282366920938463463374607431768211456" ]

let test_of_string_chunk_boundaries () =
  (* The parser consumes seven decimal digits per step with an integer power
     table (it used to compute the chunk radix through [10. ** k], a float
     round-trip). Exercise every chunk length 1..7 plus values straddling
     the 7-digit boundary, against the native oracle. *)
  List.iteri
    (fun k want ->
      Alcotest.(check int)
        (Printf.sprintf "10^%d" k)
        want
        (Nat.to_int (Nat.of_string ("1" ^ String.make k '0'))))
    [ 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ];
  List.iter
    (fun v -> Alcotest.(check int) (string_of_int v) v (Nat.to_int (Nat.of_string (string_of_int v))))
    [ 9_999_999; 10_000_000; 10_000_001; 99_999_999; 100_000_000;
      99_999_999_999_999; 100_000_000_000_000; 123_456_789_012_345 ];
  (* Leading zeros collapse to the same value. *)
  Alcotest.check nat "leading zeros" (Nat.of_int 42) (Nat.of_string "0000000000000042")

let test_of_string_malformed () =
  List.iter
    (fun s ->
      match Nat.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "of_string %S should fail" s)
    [ ""; "12a"; "-5"; " 1" ]

let test_sub_underflow () =
  Alcotest.check_raises "underflow" (Invalid_argument "Nat.sub: would be negative") (fun () ->
      ignore (Nat.sub Nat.one Nat.two))

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Nat.divmod Nat.one Nat.zero))

let test_pow_known () =
  Alcotest.check nat "2^100"
    (Nat.of_string "1267650600228229401496703205376")
    (Nat.pow Nat.two 100);
  Alcotest.check nat "x^0 = 1" Nat.one (Nat.pow (Nat.of_int 12345) 0);
  Alcotest.check nat "0^0 = 1" Nat.one (Nat.pow Nat.zero 0);
  Alcotest.check nat "0^5 = 0" Nat.zero (Nat.pow Nat.zero 5)

let test_shift_known () =
  Alcotest.check nat "1 << 200 >> 200" Nat.one (Nat.shift_right (Nat.shift_left Nat.one 200) 200);
  Alcotest.check nat "shift past end" Nat.zero (Nat.shift_right (Nat.of_int 12345) 100);
  Alcotest.(check int) "bit_length (1<<130)" 131 (Nat.bit_length (Nat.shift_left Nat.one 130))

let test_bit_length () =
  Alcotest.(check int) "0" 0 (Nat.bit_length Nat.zero);
  Alcotest.(check int) "1" 1 (Nat.bit_length Nat.one);
  Alcotest.(check int) "255" 8 (Nat.bit_length (Nat.of_int 255));
  Alcotest.(check int) "256" 9 (Nat.bit_length (Nat.of_int 256))

let test_to_int_overflow () =
  let big = Nat.mul (Nat.of_int max_int) Nat.two in
  Alcotest.(check (option int)) "overflow" None (Nat.to_int_opt big);
  Alcotest.(check (option int)) "max_int fits" (Some max_int) (Nat.to_int_opt (Nat.of_int max_int))

(* Long division against hand-checked values that exercise the add-back path
   and multi-limb divisors. *)
let test_divmod_known () =
  let check_div a b =
    let a = Nat.of_string a and b = Nat.of_string b in
    let q, r = Nat.divmod a b in
    Alcotest.check nat "a = q*b + r" a (Nat.add (Nat.mul q b) r);
    Alcotest.(check bool) "r < b" true (Nat.compare r b < 0)
  in
  check_div "340282366920938463463374607431768211456" "18446744073709551617";
  check_div "99999999999999999999999999999999999999" "3";
  check_div "170141183460469231731687303715884105728" "170141183460469231731687303715884105727";
  check_div "123456789123456789123456789" "987654321987654321";
  check_div "18446744073709551615" "4294967296"

(* --- property tests ------------------------------------------------------- *)

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int oracle" ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      Nat.to_int (Nat.add (Nat.of_int a) (Nat.of_int b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int oracle" ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      Nat.to_int (Nat.mul (Nat.of_int a) (Nat.of_int b)) = a * b)

let prop_sub_matches_int =
  QCheck.Test.make ~name:"sub matches int oracle" ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      let hi = max a b and lo = min a b in
      Nat.to_int (Nat.sub (Nat.of_int hi) (Nat.of_int lo)) = hi - lo)

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"divmod matches int oracle" ~count:500 (QCheck.make gen_pair) (fun (a, b) ->
      QCheck.assume (b > 0);
      let q, r = Nat.divmod (Nat.of_int a) (Nat.of_int b) in
      Nat.to_int q = a / b && Nat.to_int r = a mod b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal string roundtrip" ~count:200 arb_big_string (fun s ->
      Nat.to_string (Nat.of_string s) = s)

let prop_divmod_invariant_big =
  QCheck.Test.make ~name:"big divmod invariant a = q*b + r, r < b" ~count:200
    (QCheck.pair arb_big_string arb_big_string) (fun (sa, sb) ->
      let a = Nat.of_string sa and b = Nat.of_string sb in
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0)

let prop_mul_commutative_big =
  QCheck.Test.make ~name:"big mul commutative" ~count:200 (QCheck.pair arb_big_string arb_big_string)
    (fun (sa, sb) ->
      let a = Nat.of_string sa and b = Nat.of_string sb in
      Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_distributive_big =
  QCheck.Test.make ~name:"big distributivity a*(b+c) = a*b + a*c" ~count:200
    (QCheck.triple arb_big_string arb_big_string arb_big_string) (fun (sa, sb, sc) ->
      let a = Nat.of_string sa and b = Nat.of_string sb and c = Nat.of_string sc in
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_shift_is_mul_pow2 =
  QCheck.Test.make ~name:"shift_left k = mul by 2^k" ~count:200
    (QCheck.pair arb_big_string (QCheck.int_bound 120)) (fun (sa, k) ->
      let a = Nat.of_string sa in
      Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.pow Nat.two k)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare consistent with sub" ~count:200
    (QCheck.pair arb_big_string arb_big_string) (fun (sa, sb) ->
      let a = Nat.of_string sa and b = Nat.of_string sb in
      match Nat.compare a b with
      | 0 -> Nat.equal a b
      | c when c < 0 -> not (Nat.is_zero (Nat.sub b a)) || Nat.equal a b
      | _ -> not (Nat.is_zero (Nat.sub a b)))

(* --- modular arithmetic --------------------------------------------------- *)

let prop_mod_ops_match_int =
  QCheck.Test.make ~name:"modular ops match int oracle" ~count:500
    (QCheck.make QCheck.Gen.(triple small_int small_int (int_range 2 100000)))
    (fun (a, b, m) ->
      let na = Nat.of_int (a mod m) and nb = Nat.of_int (b mod m) and nm = Nat.of_int m in
      Nat.to_int (Modarith.add na nb nm) = (((a mod m) + (b mod m)) mod m)
      && Nat.to_int (Modarith.mul na nb nm) = ((a mod m) * (b mod m)) mod m
      && Nat.to_int (Modarith.sub na nb nm) = ((((a mod m) - (b mod m)) mod m) + m) mod m)

let test_pow_mod_fermat () =
  (* Fermat's little theorem on a large known prime: a^(p-1) = 1 mod p. *)
  let p = Nat.of_string "170141183460469231731687303715884105727" in
  (* 2^127 - 1, a Mersenne prime *)
  let a = Nat.of_string "123456789123456789" in
  Alcotest.check nat "a^(p-1) mod p = 1" Nat.one (Modarith.pow a (Nat.sub p Nat.one) p)

let prop_pow_int_matches_pow =
  QCheck.Test.make ~name:"pow_int matches pow" ~count:100
    (QCheck.make QCheck.Gen.(triple small_int (int_bound 50) (int_range 2 100000)))
    (fun (a, e, m) ->
      let na = Nat.of_int a and nm = Nat.of_int m in
      Nat.equal (Modarith.pow_int na e nm) (Modarith.pow na (Nat.of_int e) nm))

(* --- precomputed contexts (Montgomery / Barrett kernel) -------------------- *)

(* Decimal strings of up to ~330 digits (~1100 bits): the dSym modulus regime
   p ~ n^(n+2), far past anything the native oracle covers. *)
let gen_huge_string =
  QCheck.Gen.(
    let* digits = int_range 1 330 in
    let* first = int_range 1 9 in
    let* rest = list_repeat (digits - 1) (int_range 0 9) in
    return (String.concat "" (List.map string_of_int (first :: rest))))

let arb_huge_string = QCheck.make ~print:(fun s -> s) gen_huge_string

(* Moduli >= 2 of either parity, up to the same size. *)
let arb_ctx_case =
  QCheck.make
    ~print:(fun (a, e, m) -> Printf.sprintf "a=%s e=%s m=%s" a e m)
    QCheck.Gen.(
      let* a = gen_huge_string in
      let* e = gen_big_string in
      let* m = gen_huge_string in
      return (a, e, m))

let prop_ctx_matches_naive =
  QCheck.Test.make ~name:"ctx ops match naive Modarith (odd and even moduli)" ~count:120
    arb_ctx_case (fun (sa, se, sm) ->
      let a = Nat.of_string sa and e = Nat.of_string se in
      let m = Nat.add_int (Nat.of_string sm) 2 (* >= 2 *) in
      let c = Modarith.ctx m in
      let ar = Nat.rem a m in
      Nat.equal (Modarith.ctx_mul c a a) (Modarith.mul a a m)
      && Nat.equal (Modarith.ctx_pow c a e) (Modarith.pow a e m)
      && Nat.equal (Modarith.ctx_add c ar ar) (Modarith.add ar ar m)
      && Nat.equal (Modarith.ctx_sub c ar (Nat.rem e m)) (Modarith.sub ar (Nat.rem e m) m))

let prop_montgomery_matches_naive =
  QCheck.Test.make ~name:"Montgomery mul/pow match naive Modarith" ~count:120
    arb_ctx_case (fun (sa, se, sm) ->
      let a = Nat.of_string sa and e = Nat.of_string se in
      (* Force the modulus odd and >= 3. *)
      let m = Nat.of_string sm in
      let m = if Nat.is_zero (Nat.rem m Nat.two) then Nat.add_int m 1 else m in
      let m = if Nat.compare m (Nat.of_int 3) < 0 then Nat.of_int 3 else m in
      let t = Montgomery.make m in
      Nat.equal (Montgomery.mul t a a) (Modarith.mul a a m)
      && Nat.equal (Montgomery.pow t a e) (Modarith.pow a e m)
      && Nat.equal (Montgomery.pow_int t a 17) (Modarith.pow_int a 17 m))

let test_montgomery_rejects_bad_moduli () =
  Alcotest.check_raises "even" (Invalid_argument "Montgomery.make: modulus must be odd") (fun () ->
      ignore (Montgomery.make (Nat.of_int 10)));
  Alcotest.check_raises "one" (Invalid_argument "Montgomery.make: modulus must be >= 3") (fun () ->
      ignore (Montgomery.make Nat.one))

let test_ctx_fermat () =
  (* Fermat's little theorem through the fast path, on a ~1000-bit prime:
     2^(p-1) = 1 mod p for the 9th Mersenne prime 2^521 - 1 and known
     non-trivial witnesses. *)
  let p = Nat.sub (Nat.shift_left Nat.one 521) Nat.one in
  let c = Modarith.ctx p in
  let a = Nat.of_string "123456789123456789123456789" in
  Alcotest.check nat "a^(p-1) = 1" Nat.one (Modarith.ctx_pow c a (Nat.sub p Nat.one));
  Alcotest.check nat "matches naive" (Modarith.pow a (Nat.of_int 65537) p)
    (Modarith.ctx_pow c a (Nat.of_int 65537))

let test_ctx_even_modulus () =
  (* The Barrett fallback: a power of two and a doubly-even composite. *)
  List.iter
    (fun (m, a, e) ->
      let m = Nat.of_string m and a = Nat.of_string a and e = Nat.of_string e in
      let c = Modarith.ctx m in
      Alcotest.check nat
        (Printf.sprintf "pow mod %s" (Nat.to_string m))
        (Modarith.pow a e m) (Modarith.ctx_pow c a e))
    [ ("1180591620717411303424", "98765432109876543210", "12345");
      (* 2^70 *)
      ("340282366920938463463374607431768211456", "170141183460469231731687303715884105727", "99");
      (* 2^128 *)
      ("21897604357680877528308623734279007052", "123456789", "1000000007")
      (* 4 * 3^77 *) ]

let test_ctx_rejects_small_moduli () =
  Alcotest.check_raises "zero" (Invalid_argument "Modarith.ctx: modulus must be >= 2") (fun () ->
      ignore (Modarith.ctx Nat.zero));
  Alcotest.check_raises "one" (Invalid_argument "Modarith.ctx: modulus must be >= 2") (fun () ->
      ignore (Modarith.ctx Nat.one))

let test_ctx_cached () =
  (* Same modulus, same cached context (physical equality per domain). *)
  let m = Nat.of_string "1000000000000000000000000000057" in
  Alcotest.(check bool) "cache hit" true (Modarith.ctx m == Modarith.ctx m)

let test_nat_limbs_roundtrip () =
  List.iter
    (fun s ->
      let a = Nat.of_string s in
      Alcotest.check nat s a (Nat.of_limbs (Nat.to_limbs a)))
    [ "0"; "1"; "67108864"; "123456789012345678901234567890123456789" ];
  (* At the 62-bit radix every non-negative int is a valid limb (max_int =
     2^62 - 1), so only negatives can be out of range — and the error names
     the offending index and the radix. *)
  Alcotest.check_raises "limb out of range"
    (Invalid_argument
       (Printf.sprintf "Nat.of_limbs: limb 1 is -5, outside [0, 2^%d) for the %d-bit radix"
          Nat.base_bits Nat.base_bits)) (fun () ->
      ignore (Nat.of_limbs [| 7; -5 |]))

(* --- primality ------------------------------------------------------------ *)

let test_is_prime_int_known () =
  List.iter (fun p -> Alcotest.(check bool) (string_of_int p) true (Prime.is_prime_int p)) [ 2; 3; 5; 101; 7919; 1_000_003 ];
  List.iter (fun c -> Alcotest.(check bool) (string_of_int c) false (Prime.is_prime_int c)) [ 0; 1; 4; 100; 561; 1_000_001 ]

let test_miller_rabin_known () =
  let rng = Rng.create 42 in
  let prime s = Alcotest.(check bool) s true (Prime.is_prime rng (Nat.of_string s)) in
  let composite s = Alcotest.(check bool) s false (Prime.is_prime rng (Nat.of_string s)) in
  prime "170141183460469231731687303715884105727";
  (* 2^127 - 1 *)
  prime "2305843009213693951";
  (* 2^61 - 1 *)
  prime "1000000007";
  composite "170141183460469231731687303715884105725";
  (* Carmichael numbers must be rejected. *)
  composite "561";
  composite "41041";
  composite "825265";
  composite "321197185"

let test_random_prime_in_range () =
  let rng = Rng.create 7 in
  (* The interval from Protocol 2 at n = 10: [10 * 10^12, 100 * 10^12]. *)
  let lo = Nat.of_string "10000000000000" and hi = Nat.of_string "1000000000000000" in
  let p = Prime.random_prime_in rng lo hi in
  Alcotest.(check bool) "lo <= p" true (Nat.compare lo p <= 0);
  Alcotest.(check bool) "p <= hi" true (Nat.compare p hi <= 0);
  Alcotest.(check bool) "p prime" true (Prime.is_prime rng p)

let test_random_prime_int () =
  let rng = Rng.create 11 in
  for n = 4 to 64 do
    (* Protocol 1's interval [10 n^3, 100 n^3]. *)
    let p = Prime.random_prime_in_int rng (10 * n * n * n) (100 * n * n * n) in
    Alcotest.(check bool) "prime" true (Prime.is_prime_int p);
    Alcotest.(check bool) "range" true (p >= 10 * n * n * n && p <= 100 * n * n * n)
  done

(* --- rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 123 in
  let b = Rng.split a in
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_rough_uniform () =
  let rng = Rng.create 99 in
  let counts = Array.make 10 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d near %d" i c expected)
        true
        (abs (c - expected) < expected / 5))
    counts

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* --- cross-radix oracles (wide-limb migration) ----------------------------

   Radix26 is the 26-bit engine frozen at the moment Nat moved to 62-bit
   limbs. Random operands must produce identical values through both
   radixes: any carry-chain bug in the wide kernels shows up as a
   disagreement with an implementation that never had 62-bit carries. *)

let prop_cross_radix_mul_sqr =
  QCheck.Test.make ~name:"wide-limb mul/sqr match the frozen 26-bit kernels" ~count:80
    (QCheck.pair arb_huge_string arb_huge_string) (fun (sa, sb) ->
      let a = Nat.of_string sa and b = Nat.of_string sb in
      let a26 = Radix26.of_nat a and b26 = Radix26.of_nat b in
      Nat.equal a (Radix26.to_nat a26)
      && Nat.equal (Nat.mul a b) (Radix26.to_nat (Radix26.mul a26 b26))
      && Nat.equal (Nat.sqr a) (Radix26.to_nat (Radix26.mul a26 a26)))

let prop_cross_radix_mont_pow =
  QCheck.Test.make ~name:"wide-limb Montgomery pow matches the 26-bit kernel" ~count:40
    arb_ctx_case (fun (sa, se, sm) ->
      let a = Nat.of_string sa and e = Nat.of_string se in
      let m = Nat.of_string sm in
      let m = if Nat.is_zero (Nat.rem m Nat.two) then Nat.add_int m 1 else m in
      let m = if Nat.compare m (Nat.of_int 3) < 0 then Nat.of_int 3 else m in
      let t = Montgomery.make m in
      let t26 = Radix26.mont (Radix26.of_nat m) in
      let a_red = Nat.rem a m in
      Nat.equal (Montgomery.pow t a e)
        (Radix26.to_nat (Radix26.mont_pow t26 (Radix26.of_nat a_red) (Radix26.of_nat e))))

(* --- Toom-3 tier boundaries ------------------------------------------------

   The tier switch sits at 512 limbs per operand; sizes straddling it hit
   base/Karatsuba/Toom dispatch seams, and saturated or sparse limb
   patterns stress the evaluation at -1 (the one signed value in the
   pipeline) and the exact-division-by-3 interpolation step. The digit
   schoolbook oracle shares no code with any of the tiers. *)

let test_toom_boundary () =
  let all_ones limbs = Nat.sub (Nat.shift_left Nat.one (62 * limbs)) Nat.one in
  let top_bit limbs = Nat.shift_left Nat.one ((62 * limbs) - 1) in
  let sparse limbs =
    (* top and bottom limb set, zeros between: maximally unbalanced parts *)
    Nat.add (top_bit limbs) (Nat.of_int 12345)
  in
  let rng = Rng.create 0x70f3 in
  let random_limbs limbs = Nat.add (top_bit limbs) (Nat.random_below rng (top_bit limbs)) in
  let cases =
    [ ("511x511", all_ones 511, all_ones 511);
      ("512x512 saturated", all_ones 512, all_ones 512);
      ("513x513", all_ones 513, all_ones 513);
      ("512x511 straddle", random_limbs 512, random_limbs 511);
      ("513x80 unbalanced", random_limbs 513, random_limbs 80);
      ("512x512 sparse", sparse 512, sparse 512);
      ("530x520 random", random_limbs 530, random_limbs 520)
    ]
  in
  List.iter
    (fun (name, a, b) ->
      Alcotest.check nat (name ^ " mul") (Nat.mul_schoolbook a b) (Nat.mul a b);
      Alcotest.check nat (name ^ " sqr") (Nat.mul_schoolbook a a) (Nat.sqr a))
    cases

(* The scale path's modulus cap: Apihash pins q at the largest prime below
   2^62 once the true Section-4 interval outgrows max_int. The constant is
   only sound if it really is the largest such prime. *)
let test_wide_cap_prime () =
  let rng = Rng.create 99 in
  let cap = 4611686018427387847 in
  Alcotest.(check bool) "2^62 - 57 is prime" true (Prime.is_prime rng (Nat.of_int cap));
  Alcotest.(check bool) "cap is 2^62 - 57" true (cap = max_int - 56);
  let rec none_above k =
    k > max_int
    || ((not (Prime.is_prime rng (Nat.of_int k))) && (k = max_int || none_above (k + 2)))
  in
  Alcotest.(check bool) "no prime between the cap and 2^62" true (none_above (cap + 2))

let test_nat_random_below () =
  let rng = Rng.create 17 in
  let n = Nat.of_string "123456789123456789123456789" in
  for _ = 1 to 100 do
    let r = Nat.random_below rng n in
    Alcotest.(check bool) "r < n" true (Nat.compare r n < 0)
  done

let qtest t = QCheck_alcotest.to_alcotest t

let suite =
  [ ( "nat:unit",
      [ Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_int_roundtrip;
        Alcotest.test_case "of_int rejects negative" `Quick test_of_int_negative;
        Alcotest.test_case "to_string known values" `Quick test_to_string_known;
        Alcotest.test_case "of_string roundtrip" `Quick test_of_string_roundtrip;
        Alcotest.test_case "of_string chunk boundaries" `Quick test_of_string_chunk_boundaries;
        Alcotest.test_case "of_string malformed" `Quick test_of_string_malformed;
        Alcotest.test_case "sub underflow" `Quick test_sub_underflow;
        Alcotest.test_case "divmod by zero" `Quick test_divmod_by_zero;
        Alcotest.test_case "pow known values" `Quick test_pow_known;
        Alcotest.test_case "shifts" `Quick test_shift_known;
        Alcotest.test_case "bit_length" `Quick test_bit_length;
        Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
        Alcotest.test_case "divmod known values" `Quick test_divmod_known;
        Alcotest.test_case "random_below in range" `Quick test_nat_random_below
      ] );
    ( "nat:properties",
      List.map qtest
        [ prop_add_matches_int;
          prop_mul_matches_int;
          prop_sub_matches_int;
          prop_divmod_matches_int;
          prop_string_roundtrip;
          prop_divmod_invariant_big;
          prop_mul_commutative_big;
          prop_distributive_big;
          prop_shift_is_mul_pow2;
          prop_compare_total_order
        ] );
    ( "modarith",
      Alcotest.test_case "Fermat little theorem mod 2^127-1" `Quick test_pow_mod_fermat
      :: List.map qtest [ prop_mod_ops_match_int; prop_pow_int_matches_pow ] );
    ( "modarith:ctx",
      [ Alcotest.test_case "Fermat via ctx mod 2^521-1" `Quick test_ctx_fermat;
        Alcotest.test_case "Barrett path on even moduli" `Quick test_ctx_even_modulus;
        Alcotest.test_case "ctx rejects moduli < 2" `Quick test_ctx_rejects_small_moduli;
        Alcotest.test_case "ctx cached per modulus" `Quick test_ctx_cached;
        Alcotest.test_case "Montgomery rejects bad moduli" `Quick test_montgomery_rejects_bad_moduli;
        Alcotest.test_case "limbs roundtrip" `Quick test_nat_limbs_roundtrip;
        qtest prop_ctx_matches_naive;
        qtest prop_montgomery_matches_naive
      ] );
    ( "prime",
      [ Alcotest.test_case "is_prime_int known" `Quick test_is_prime_int_known;
        Alcotest.test_case "Miller-Rabin known primes/composites" `Quick test_miller_rabin_known;
        Alcotest.test_case "random prime in bignum range" `Quick test_random_prime_in_range;
        Alcotest.test_case "random prime in Protocol-1 ranges" `Quick test_random_prime_int
      ] );
    ( "radix",
      [ qtest prop_cross_radix_mul_sqr;
        qtest prop_cross_radix_mont_pow;
        Alcotest.test_case "Toom-3 tier boundaries" `Quick test_toom_boundary;
        Alcotest.test_case "Apihash wide cap is the largest prime below 2^62" `Quick
          test_wide_cap_prime
      ] );
    ( "rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int roughly uniform" `Quick test_rng_int_rough_uniform;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes
      ] )
  ]
