(* Tests for the second wave of features: extended-GCD modular inverses,
   graph6 I/O and dot export, Prüfer trees and random regular graphs, vertex
   orbits, the bipartiteness / non-bipartiteness proof labeling schemes, and
   the marked-subgraph GNI variant of Section 2.3. *)

module Nat = Ids_bignum.Nat
module Modarith = Ids_bignum.Modarith
module Rng = Ids_bignum.Rng
open Ids_graph
open Ids_proof


(* Trial budgets honor IDS_TRIALS_SCALE so @runtest-fast can dial them down. *)
let strials n = Ids_engine.Engine.scaled_trials n

let qtest = QCheck_alcotest.to_alcotest

(* --- Modarith.gcd / inv ----------------------------------------------------- *)

let prop_gcd_matches_euclid =
  QCheck.Test.make ~name:"gcd matches int euclid" ~count:300
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let rec euclid a b = if b = 0 then a else euclid b (a mod b) in
      Nat.to_int (Modarith.gcd (Nat.of_int a) (Nat.of_int b)) = euclid a b)

let prop_inv_correct =
  QCheck.Test.make ~name:"inv a * a = 1 mod m when coprime" ~count:300
    QCheck.(pair (int_range 1 100000) (int_range 2 100000))
    (fun (a, m) ->
      match Modarith.inv (Nat.of_int a) (Nat.of_int m) with
      | Some i -> (Nat.to_int i * (a mod m)) mod m = 1 mod m
      | None ->
        let rec euclid a b = if b = 0 then a else euclid b (a mod b) in
        euclid a m <> 1)

let test_inv_known () =
  Alcotest.(check (option int)) "3^-1 mod 7" (Some 5) (Modarith.inv_int 3 7);
  Alcotest.(check (option int)) "2 not invertible mod 4" None (Modarith.inv_int 2 4);
  Alcotest.(check (option int)) "0 not invertible" None (Modarith.inv_int 0 5);
  (* Large: inverse modulo a Mersenne prime, checked by multiplication. *)
  let p = Nat.of_string "2305843009213693951" in
  let a = Nat.of_string "123456789" in
  match Modarith.inv a p with
  | None -> Alcotest.fail "prime modulus: inverse must exist"
  | Some i -> Alcotest.(check bool) "a * a^-1 = 1" true (Nat.is_one (Modarith.mul a i p))

(* --- graph6 ----------------------------------------------------------------- *)

let test_graph6_known () =
  (* K3 and P3 against values produced by nauty's geng. *)
  Alcotest.(check string) "K3" "Bw" (Graph_io.to_graph6 (Graph.complete 3));
  Alcotest.(check string) "empty on 0" "?" (Graph_io.to_graph6 (Graph.make 0));
  Alcotest.(check string) "single vertex" "@" (Graph_io.to_graph6 (Graph.make 1));
  let p3 = Graph_io.of_graph6 "Bg" in
  Alcotest.(check int) "P3 edges" 2 (Graph.edge_count p3)

let prop_graph6_roundtrip =
  QCheck.Test.make ~name:"graph6 roundtrip" ~count:200
    QCheck.(pair (int_range 0 40) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Graph.random_gnp (Rng.create seed) n 0.4 in
      Graph.equal g (Graph_io.of_graph6 (Graph_io.to_graph6 g)))

let test_graph6_header_and_whitespace () =
  let g = Graph.petersen () in
  let enc = ">>graph6<<" ^ Graph_io.to_graph6 g ^ "\n" in
  Alcotest.(check bool) "header stripped" true (Graph.equal g (Graph_io.of_graph6 enc))

let test_graph6_big_n () =
  let g = Graph.cycle 100 in
  Alcotest.(check bool) "n=100 roundtrip" true (Graph.equal g (Graph_io.of_graph6 (Graph_io.to_graph6 g)))

let test_graph6_malformed () =
  List.iter
    (fun s ->
      match Graph_io.of_graph6 s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %S" s)
    [ ""; "B"; "Bwx"; "\x1c" ]

let test_graph6_size_header_forms () =
  (* All three header forms with their boundary values. A full graph6
     payload above the 4-byte limit is ~n²/12 bytes (gigabytes), so the
     8-byte form is pinned on the shared size codec and exercised
     end-to-end through sparse6 below. *)
  List.iter
    (fun (n, want_len) ->
      let h = Graph_io.size_header n in
      Alcotest.(check int) (Printf.sprintf "header length for %d" n) want_len (String.length h);
      Alcotest.(check (pair int int))
        (Printf.sprintf "decode of %d" n)
        (n, want_len) (Graph_io.decode_size_header h))
    [ (0, 1); (62, 1); (63, 4); (258047, 4); (258048, 8); ((1 lsl 36) - 1, 8) ];
  Alcotest.(check string) "long-form prefix" "~~" (String.sub (Graph_io.size_header 258048) 0 2);
  (match Graph_io.size_header (1 lsl 36) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "should reject n = 2^36")

let test_graph6_overlong_header_rejected () =
  (* n = 3 spelled with the 4-byte header; n = 100 spelled with the 8-byte
     one. Same values, non-minimal headers: both must be rejected (each
     legal n has exactly one encoding). *)
  let enc4 n =
    Printf.sprintf "~%c%c%c"
      (Char.chr (((n lsr 12) land 63) + 63))
      (Char.chr (((n lsr 6) land 63) + 63))
      (Char.chr ((n land 63) + 63))
  in
  let enc8 n = "~~" ^ String.init 6 (fun i -> Char.chr (((n lsr (6 * (5 - i))) land 63) + 63)) in
  let body n g =
    let e = Graph_io.to_graph6 g in
    String.sub e n (String.length e - n)
  in
  let overlong4 = enc4 3 ^ body 1 (Graph.complete 3) in
  let overlong8 = enc8 100 ^ body 4 (Graph.cycle 100) in
  List.iter
    (fun (tag, s) ->
      match Graph_io.of_graph6 s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject overlong %s" tag)
    [ ("4-byte", overlong4); ("8-byte", overlong8) ];
  List.iter
    (fun (tag, s) ->
      match Graph_io.decode_size_header s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %s" tag)
    [ ("overlong 4-byte header", enc4 62); ("overlong 8-byte header", enc8 258047);
      ("truncated 4-byte header", "~B"); ("truncated 8-byte header", "~~??") ]

let test_sparse6_known () =
  (* :Fa@x^ is the 5-cycle plus chords {0,2},{0,4}... use nauty's documented
     example: ":Fa@x^" encodes the graph with edges
     0-1 0-2 1-2 5-6 on 7 vertices. *)
  let g = Graph_io.of_sparse6 ":Fa@x^" in
  Alcotest.(check int) "n" 7 (Graph.n g);
  Alcotest.(check (list (pair int int)))
    "edges"
    [ (0, 1); (0, 2); (1, 2); (5, 6) ]
    (List.sort Stdlib.compare (Graph.edges g))

let prop_sparse6_roundtrip =
  QCheck.Test.make ~name:"sparse6 roundtrip" ~count:200
    QCheck.(pair (int_range 1 40) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Graph.random_gnp (Rng.create seed) n 0.2 in
      Graph.equal g (Graph_io.of_sparse6 (Graph_io.to_sparse6 g)))

let test_sparse6_power_of_two_padding () =
  (* n = 2^k sizes hit the shield-bit special case in the padding rule. *)
  List.iter
    (fun n ->
      let gs = [ Graph.path n; Graph.star n ] @ (if n >= 3 then [ Graph.cycle n ] else []) in
      List.iter
        (fun g ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d roundtrip" n)
            true
            (Graph.equal g (Graph_io.of_sparse6 (Graph_io.to_sparse6 g))))
        gs)
    [ 2; 4; 8; 16; 32 ]

let test_sparse6_long_form () =
  let n = 258048 in
  let g = Graph.cycle ~repr:Graph.Sparse n in
  let enc = Graph_io.to_sparse6 g in
  Alcotest.(check string) "long-form prefix" ":~~" (String.sub enc 0 3);
  Alcotest.(check bool) "roundtrip" true (Graph.equal g (Graph_io.of_sparse6 enc));
  (* Linear, not quadratic: a million-edge cycle fits in a few MB. *)
  Alcotest.(check bool) "linear size" true (String.length enc < 4 * n)

let test_sparse6_header_and_whitespace () =
  let g = Graph.petersen () in
  let enc = ">>sparse6<<" ^ Graph_io.to_sparse6 g ^ "\n" in
  Alcotest.(check bool) "header stripped" true (Graph.equal g (Graph_io.of_sparse6 enc))

let test_sparse6_malformed () =
  List.iter
    (fun (tag, s) ->
      match Graph_io.of_sparse6 s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "should reject %s: %S" tag s)
    [ ("empty", "");
      ("missing colon", "Fa@x^");
      ("truncated 4-byte size", ":~B");
      ("truncated 8-byte size", ":~~???");
      ("overlong 4-byte size", ":~??B");
      ("overlong 8-byte size", ":~~?????B");
      ("bad payload byte", ":F\x1c");
      ("self-loop", ":BF")
    ]

let test_dot_output () =
  let dot = Graph_io.to_dot ~name:"triangle" (Graph.complete 3) in
  Alcotest.(check bool) "has header" true (String.length dot > 0 && String.sub dot 0 14 = "graph triangle");
  Alcotest.(check bool) "has an edge" true
    (String.fold_left (fun acc c -> acc || c = '-') false dot)

(* --- trees and regular graphs ------------------------------------------------- *)

let prop_prufer_gives_tree =
  QCheck.Test.make ~name:"Prüfer decodes to a tree" ~count:200
    QCheck.(pair (int_range 3 30) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Graph.random_tree (Rng.create seed) n in
      Graph.n g = n && Graph.edge_count g = n - 1 && Graph.is_connected g)

let test_prufer_known () =
  (* The sequence [3;3;3;4] on 6 vertices: a standard textbook example. *)
  let g = Graph.of_prufer [| 3; 3; 3; 4 |] in
  Alcotest.(check (list (pair int int))) "edges" [ (0, 3); (1, 3); (2, 3); (3, 4); (4, 5) ] (Graph.edges g)

let test_prufer_uniformity () =
  (* Cayley's formula at n = 4: 16 labelled trees; with 3200 samples every
     tree should appear roughly 200 times. *)
  let rng = Rng.create 77 in
  let counts = Hashtbl.create 16 in
  for _ = 1 to 3200 do
    let key = Graph.encode (Graph.random_tree rng 4) in
    Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
  done;
  Alcotest.(check int) "16 labelled trees" 16 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c -> Alcotest.(check bool) (Printf.sprintf "count %d near 200" c) true (abs (c - 200) < 80))
    counts

let prop_random_regular =
  QCheck.Test.make ~name:"random regular is d-regular" ~count:60
    QCheck.(pair (int_range 1 4) (int_bound 1_000_000))
    (fun (d, seed) ->
      let n = 12 in
      let g = Graph.random_regular (Rng.create seed) n d in
      List.for_all (fun v -> Graph.degree g v = d) (List.init n Fun.id))

let test_random_regular_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "odd product" (Invalid_argument "Graph.random_regular: n * d must be even")
    (fun () -> ignore (Graph.random_regular rng 5 3));
  Alcotest.check_raises "d >= n" (Invalid_argument "Graph.random_regular: need 0 <= d < n") (fun () ->
      ignore (Graph.random_regular rng 4 4))

(* --- orbits -------------------------------------------------------------------- *)

let test_orbits_classics () =
  Alcotest.(check (list (list int))) "K4: one orbit" [ [ 0; 1; 2; 3 ] ] (Iso.orbits (Graph.complete 4));
  Alcotest.(check (list (list int))) "star: center + leaves" [ [ 0 ]; [ 1; 2; 3; 4 ] ]
    (Iso.orbits (Graph.star 5));
  Alcotest.(check (list (list int))) "P4: two mirror orbits" [ [ 0; 3 ]; [ 1; 2 ] ]
    (Iso.orbits (Graph.path 4));
  Alcotest.(check int) "petersen is vertex-transitive" 1 (List.length (Iso.orbits (Graph.petersen ())))

let test_orbits_asymmetric_all_singletons () =
  let rng = Rng.create 5 in
  let g = Family.random_asymmetric rng 8 in
  Alcotest.(check int) "8 singleton orbits" 8 (List.length (Iso.orbits g))

let prop_orbit_partition =
  QCheck.Test.make ~name:"orbits partition the vertex set" ~count:50 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let g = Graph.random_gnp (Rng.create seed) 8 0.4 in
      let all = List.concat (Iso.orbits g) in
      List.sort_uniq Stdlib.compare all = List.init 8 Fun.id)

(* --- bipartiteness PLS ----------------------------------------------------------- *)

let test_bipartite_pls () =
  let bip = Graph.complete_bipartite 4 5 in
  (match Pls.Lcp_bipartite.honest bip with
  | None -> Alcotest.fail "bipartite graph must have a 2-coloring"
  | Some adv ->
    let v = Pls.Lcp_bipartite.verify bip adv in
    Alcotest.(check bool) "accepted" true v.Pls.accepted;
    Alcotest.(check int) "one bit per node" 1 v.Pls.advice_bits_per_node);
  (* Odd cycles have no proof. *)
  Alcotest.(check bool) "C5 has no coloring" true (Pls.Lcp_bipartite.honest (Graph.cycle 5) = None);
  (* Forged colorings are caught. *)
  let even = Graph.cycle 6 in
  let bad = Array.make 6 true in
  Alcotest.(check bool) "constant coloring rejected" false (Pls.Lcp_bipartite.verify even bad).Pls.accepted

let test_bipartite_pls_on_trees () =
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let g = Graph.random_tree rng 20 in
    match Pls.Lcp_bipartite.honest g with
    | None -> Alcotest.fail "trees are bipartite"
    | Some adv -> Alcotest.(check bool) "verified" true (Pls.Lcp_bipartite.verify g adv).Pls.accepted
  done

let test_odd_cycle_pls () =
  let odd = Graph.cycle 7 in
  (match Pls.Lcp_odd_cycle.honest odd with
  | None -> Alcotest.fail "C7 is not bipartite"
  | Some adv ->
    let v = Pls.Lcp_odd_cycle.verify odd adv in
    Alcotest.(check bool) "accepted" true v.Pls.accepted;
    Alcotest.(check bool) "Theta(log n) advice" true (v.Pls.advice_bits_per_node <= 5 * 3 + 10));
  (* Bipartite graphs have no witness. *)
  Alcotest.(check bool) "C8 has no witness" true (Pls.Lcp_odd_cycle.honest (Graph.cycle 8) = None);
  (* A forged witness (equal-parity claim on a bipartite graph) is caught. *)
  let even = Graph.cycle 8 in
  let tree = Pls.Tree.honest even 0 in
  let forged = { Pls.Lcp_odd_cycle.tree; witness = (0, 1) } in
  Alcotest.(check bool) "forged witness rejected" false (Pls.Lcp_odd_cycle.verify even forged).Pls.accepted

let test_odd_cycle_pls_random () =
  let rng = Rng.create 10 in
  for _ = 1 to 20 do
    let g = Graph.random_connected_gnp rng 15 0.25 in
    match Pls.Lcp_odd_cycle.honest g with
    | Some adv ->
      Alcotest.(check bool) "witness verifies" true (Pls.Lcp_odd_cycle.verify g adv).Pls.accepted;
      Alcotest.(check bool) "graph really non-bipartite" true (Pls.Lcp_bipartite.honest g = None)
    | None -> Alcotest.(check bool) "graph really bipartite" true (Pls.Lcp_bipartite.honest g <> None)
  done

(* --- Gni_induced (Section 2.3 variant) -------------------------------------------- *)

let test_gni_induced_planting () =
  let rng = Rng.create 20 in
  let inst = Gni_induced.yes_instance rng 10 in
  Alcotest.(check int) "class size" 4 inst.Gni_induced.k;
  Alcotest.(check bool) "induced h0 is P4" true (Iso.are_isomorphic inst.Gni_induced.h0 (Graph.path 4));
  Alcotest.(check bool) "induced h1 is K13" true (Iso.are_isomorphic inst.Gni_induced.h1 (Graph.star 4));
  Alcotest.(check bool) "network connected" true (Graph.is_connected inst.Gni_induced.g)

let test_gni_induced_set_sizes () =
  (* |S| = 2 P(n,k) vs P(n,k): the compensation works for the symmetric
     4-vertex sides. *)
  let rng = Rng.create 21 in
  let yes = Gni_induced.yes_instance rng 10 and no = Gni_induced.no_instance rng 10 in
  let p_10_4 = 10 * 9 * 8 * 7 in
  Alcotest.(check int) "YES candidates" (2 * p_10_4) (Array.length (Lazy.force yes.Gni_induced.candidates));
  Alcotest.(check int) "NO candidates" p_10_4 (Array.length (Lazy.force no.Gni_induced.candidates))

let test_gni_induced_gap_and_verdicts () =
  let rng = Rng.create 22 in
  let yes = Gni_induced.yes_instance rng 10 and no = Gni_induced.no_instance rng 10 in
  let params = Gni_induced.params_for ~seed:2 yes in
  let rate inst =
    (Stats.acceptance ~trials:(strials 150) (fun seed -> Gni_induced.run_single ~params ~seed inst Gni_induced.honest))
      .Stats.rate
  in
  let yes_rate = rate yes and no_rate = rate no in
  Alcotest.(check bool)
    (Printf.sprintf "yes %.3f > no %.3f" yes_rate no_rate)
    true
    (yes_rate > no_rate +. 0.03);
  let p200 = Gni_induced.params_for ~repetitions:250 ~seed:2 yes in
  Alcotest.(check bool) "YES accepted" true
    (Gni_induced.run ~params:p200 ~seed:5 yes Gni_induced.honest).Outcome.accepted;
  Alcotest.(check bool) "NO rejected" false
    (Gni_induced.run ~params:p200 ~seed:6 no Gni_induced.honest).Outcome.accepted

let test_gni_induced_validation () =
  let rng = Rng.create 23 in
  let g = Graph.random_connected_gnp rng 8 0.5 in
  (match Gni_induced.make_instance g (Array.make 8 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad marks rejected");
  let marks = Array.make 8 (-1) in
  marks.(0) <- 0;
  marks.(1) <- 0;
  marks.(2) <- 1;
  match Gni_induced.make_instance g marks with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unequal classes rejected"

let suite =
  [ ( "modarith:egcd",
      [ Alcotest.test_case "known inverses" `Quick test_inv_known;
        qtest prop_gcd_matches_euclid;
        qtest prop_inv_correct
      ] );
    ( "graph_io",
      [ Alcotest.test_case "graph6 known encodings" `Quick test_graph6_known;
        Alcotest.test_case "graph6 header/whitespace" `Quick test_graph6_header_and_whitespace;
        Alcotest.test_case "graph6 n=100" `Quick test_graph6_big_n;
        Alcotest.test_case "graph6 malformed" `Quick test_graph6_malformed;
        Alcotest.test_case "size header forms" `Quick test_graph6_size_header_forms;
        Alcotest.test_case "overlong headers rejected" `Quick test_graph6_overlong_header_rejected;
        Alcotest.test_case "sparse6 known encoding" `Quick test_sparse6_known;
        Alcotest.test_case "sparse6 power-of-two padding" `Quick test_sparse6_power_of_two_padding;
        Alcotest.test_case "sparse6 long form" `Quick test_sparse6_long_form;
        Alcotest.test_case "sparse6 header/whitespace" `Quick test_sparse6_header_and_whitespace;
        Alcotest.test_case "sparse6 malformed" `Quick test_sparse6_malformed;
        Alcotest.test_case "dot output" `Quick test_dot_output;
        qtest prop_graph6_roundtrip;
        qtest prop_sparse6_roundtrip
      ] );
    ( "trees+regular",
      [ Alcotest.test_case "Prüfer known sequence" `Quick test_prufer_known;
        Alcotest.test_case "Prüfer uniformity (Cayley n=4)" `Quick test_prufer_uniformity;
        Alcotest.test_case "regular validation" `Quick test_random_regular_validation;
        qtest prop_prufer_gives_tree;
        qtest prop_random_regular
      ] );
    ( "orbits",
      [ Alcotest.test_case "classic orbit structures" `Quick test_orbits_classics;
        Alcotest.test_case "asymmetric = singletons" `Quick test_orbits_asymmetric_all_singletons;
        qtest prop_orbit_partition
      ] );
    ( "bipartite_pls",
      [ Alcotest.test_case "bipartiteness scheme" `Quick test_bipartite_pls;
        Alcotest.test_case "trees are certified" `Quick test_bipartite_pls_on_trees;
        Alcotest.test_case "odd-cycle scheme" `Quick test_odd_cycle_pls;
        Alcotest.test_case "random graphs: exactly one side certifiable" `Quick test_odd_cycle_pls_random
      ] );
    ( "gni_induced",
      [ Alcotest.test_case "planting" `Quick test_gni_induced_planting;
        Alcotest.test_case "|S| = 2 P(n,k) vs P(n,k)" `Slow test_gni_induced_set_sizes;
        Alcotest.test_case "gap and verdicts" `Slow test_gni_induced_gap_and_verdicts;
        Alcotest.test_case "validation" `Quick test_gni_induced_validation
      ] )
  ]
