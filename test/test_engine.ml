(* Tests for the parallel deterministic trial engine: worker-count and
   chunk-size invariance, the accumulator monoid laws, Wilson interval
   sanity, SPRT early stopping, and the Stats regression pin that proves the
   engine migration behavior-preserving. *)

module Engine = Ids_engine.Engine
module Accum = Ids_engine.Accum
module Wilson = Ids_engine.Wilson
module Sprt = Ids_engine.Sprt
module Runlog = Ids_engine.Runlog
module Scheduler = Ids_engine.Scheduler
module Rng = Ids_bignum.Rng
module Family = Ids_graph.Family
open Ids_proof

let qtest = QCheck_alcotest.to_alcotest

(* Everything that must be invariant under scheduling (i.e. all fields
   except the recorded worker count). *)
let strip (e : Engine.estimate) =
  ( e.Engine.trials,
    e.Engine.accepts,
    e.Engine.rate,
    e.Engine.mean_bits,
    e.Engine.max_bits,
    e.Engine.ci_low,
    e.Engine.ci_high,
    e.Engine.stopped_early )

(* A synthetic trial keyed by its seed only, with variable bit costs. *)
let synth_trial seed =
  let rng = Rng.create seed in
  { Accum.accepted = Rng.float rng < 0.7; bits = Rng.int rng 100 }

(* --- determinism across worker counts and chunk sizes -------------------------- *)

let test_determinism_across_domains () =
  let reference = Engine.run ~domains:1 ~trials:1000 synth_trial in
  List.iter
    (fun d ->
      let e = Engine.run ~domains:d ~trials:1000 synth_trial in
      Alcotest.(check bool) (Printf.sprintf "domains=%d identical" d) true (strip e = strip reference))
    [ 2; 4 ]

let test_determinism_across_chunk_sizes () =
  let reference = Engine.run ~domains:1 ~chunk:32 ~trials:500 synth_trial in
  List.iter
    (fun chunk ->
      let e = Engine.run ~domains:4 ~chunk ~trials:500 synth_trial in
      Alcotest.(check bool) (Printf.sprintf "chunk=%d identical" chunk) true (strip e = strip reference))
    [ 1; 7; 33; 500; 2048 ]

let test_protocol_determinism_across_domains () =
  (* The acceptance criterion's test on real protocol code: Protocol 1 runs
     scheduled over 1, 2 and 4 domains produce the identical estimate. *)
  let g = Family.random_symmetric (Rng.create 7) 8 in
  let a = Family.random_asymmetric (Rng.create 8) 8 in
  List.iter
    (fun (name, graph, prover) ->
      let run seed = Sym_dmam.run ~seed graph prover in
      let reference = Stats.acceptance_ci ~domains:1 ~trials:60 run in
      List.iter
        (fun d ->
          let e = Stats.acceptance_ci ~domains:d ~trials:60 run in
          Alcotest.(check bool) (Printf.sprintf "%s domains=%d" name d) true
            (strip e = strip reference))
        [ 2; 4 ];
      (* and the sequential shim agrees with the engine field-for-field *)
      let shim = Stats.acceptance ~trials:60 run in
      Alcotest.(check bool) (name ^ " shim agrees") true
        (shim = Stats.of_engine reference))
    [ ("yes", g, Sym_dmam.honest); ("no", a, Sym_dmam.adversary_random_perm) ]

let test_shim_matches_sequential_loop () =
  (* Stats.acceptance must reproduce the historical sequential for-loop. *)
  let g = Family.random_symmetric (Rng.create 11) 8 in
  let run seed = Sym_dmam.run ~seed g Sym_dmam.honest in
  let trials = 25 in
  let accepts = ref 0 and bits_sum = ref 0 and bits_max = ref 0 in
  for seed = 1 to trials do
    let o = run seed in
    if o.Outcome.accepted then incr accepts;
    bits_sum := !bits_sum + o.Outcome.max_bits_per_node;
    if o.Outcome.max_bits_per_node > !bits_max then bits_max := o.Outcome.max_bits_per_node
  done;
  let est = Stats.acceptance ~trials run in
  Alcotest.(check int) "accepts" !accepts est.Stats.accepts;
  Alcotest.(check int) "trials" trials est.Stats.trials;
  Alcotest.(check (float 0.)) "rate" (float_of_int !accepts /. float_of_int trials) est.Stats.rate;
  Alcotest.(check (float 0.)) "mean_bits"
    (float_of_int !bits_sum /. float_of_int trials)
    est.Stats.mean_bits;
  Alcotest.(check int) "max_bits" !bits_max est.Stats.max_bits

let test_ctx_cache_deterministic_across_domains () =
  (* The modular-arithmetic context cache is keyed per domain (Domain.DLS),
     so parallel workers each build and reuse their own contexts. Results
     must depend only on the work index, never on which domain's cache
     served the context — including when the per-domain cache evicts. *)
  let module Nat = Ids_bignum.Nat in
  let module Modarith = Ids_bignum.Modarith in
  let digest i =
    let rng = Rng.create (0x51ab lxor i) in
    (* A small pool of moduli so every domain re-hits its cache, mixing odd
       (Montgomery) and even (Barrett) paths. *)
    let bound = Nat.shift_left Nat.one (64 + (13 * (i mod 7))) in
    let m = Nat.add (Nat.random_below rng bound) (Nat.of_int (2 + (i mod 5))) in
    let c = Modarith.ctx m in
    let a = Nat.random_below rng m and b = Nat.random_below rng m in
    let e = Nat.random_below rng (Nat.shift_left Nat.one 48) in
    Nat.to_string (Modarith.ctx_pow c a e) ^ "/" ^ Nat.to_string (Modarith.ctx_mul c a b)
  in
  let reference = Scheduler.map_range ~domains:1 ~lo:0 ~hi:96 digest in
  List.iter
    (fun d ->
      let got = Scheduler.map_range ~domains:d ~lo:0 ~hi:96 digest in
      Alcotest.(check (array string)) (Printf.sprintf "domains=%d identical" d) reference got)
    [ 2; 4 ]

let test_scheduler_exception_propagates () =
  Alcotest.check_raises "raised in a worker" (Failure "boom") (fun () ->
      ignore (Scheduler.map_range ~domains:4 ~lo:0 ~hi:64 (fun i -> if i = 37 then failwith "boom" else i)))

(* --- the accumulator monoid ----------------------------------------------------- *)

let arb_trials =
  QCheck.(list_of_size (Gen.int_bound 30) (pair bool (int_bound 1000)))

let accum_of l =
  List.fold_left (fun a (accepted, bits) -> Accum.add a { Accum.accepted; bits }) Accum.empty l

let prop_merge_associative =
  QCheck.Test.make ~name:"Accum: merge associative, empty neutral" ~count:300
    (QCheck.triple arb_trials arb_trials arb_trials)
    (fun (x, y, z) ->
      let a = accum_of x and b = accum_of y and c = accum_of z in
      Accum.equal (Accum.merge (Accum.merge a b) c) (Accum.merge a (Accum.merge b c))
      && Accum.equal (Accum.merge a Accum.empty) a
      && Accum.equal (Accum.merge Accum.empty a) a)

let prop_merge_agrees_with_fold =
  QCheck.Test.make ~name:"Accum: merge of a partition = fold of the whole" ~count:300
    (QCheck.pair arb_trials arb_trials)
    (fun (x, y) -> Accum.equal (accum_of (x @ y)) (Accum.merge (accum_of x) (accum_of y)))

(* --- Wilson intervals ------------------------------------------------------------ *)

let prop_wilson_contains_rate =
  QCheck.Test.make ~name:"Wilson: CI contains the rate, inside [0,1]" ~count:500
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (a, b) ->
      let trials = 1 + max a b and accepts = min a b in
      let rate = float_of_int accepts /. float_of_int trials in
      let lo, hi = Wilson.interval ~accepts ~trials () in
      0. <= lo && lo <= rate && rate <= hi && hi <= 1.)

let test_wilson_width_shrinks () =
  (* Width behaves like 1/sqrt(trials): quadrupling the sample roughly
     halves the interval at a fixed empirical rate. *)
  List.iter
    (fun (accepts, trials) ->
      let w n = Wilson.width ~accepts:(accepts * n) ~trials:(trials * n) () in
      let ratio = w 4 /. w 1 in
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.3f in [0.40, 0.60] at %d/%d" ratio accepts trials)
        true
        (0.40 <= ratio && ratio <= 0.60))
    [ (50, 100); (200, 400); (1, 100); (99, 100) ];
  let lo, hi = Wilson.interval ~accepts:0 ~trials:0 () in
  Alcotest.(check (pair (float 0.) (float 0.))) "vacuous at 0 trials" (0., 1.) (lo, hi)

(* --- SPRT early stopping --------------------------------------------------------- *)

let biased_trial rate seed =
  let rng = Rng.create (7919 * seed) in
  { Accum.accepted = Rng.float rng < rate; bits = 10 }

let test_sprt_agrees_with_full_run () =
  let plan = Sprt.definition2 () in
  (* Both sides of the 2/3 threshold: the early-stopped decision must agree
     with the side the full-budget estimate lands on. *)
  List.iter
    (fun (name, rate, expected) ->
      let trial = biased_trial rate in
      let full = Engine.run ~domains:1 ~trials:2000 trial in
      let est, decision = Engine.run_sprt ~domains:1 ~plan ~max_trials:2000 trial in
      Alcotest.(check bool) (name ^ " decided") true (decision = Some expected);
      Alcotest.(check bool) (name ^ " stopped early") true
        (est.Engine.stopped_early && est.Engine.trials < 2000);
      (match expected with
      | Sprt.Above -> Alcotest.(check bool) (name ^ " full run above 2/3") true (full.Engine.rate >= 2. /. 3.)
      | Sprt.Below -> Alcotest.(check bool) (name ^ " full run below 1/3") true (full.Engine.rate <= 1. /. 3.)))
    [ ("yes-side", 0.95, Sprt.Above); ("no-side", 0.05, Sprt.Below) ]

let test_sprt_determinism_across_domains () =
  let plan = Sprt.definition2 () in
  List.iter
    (fun rate ->
      let trial = biased_trial rate in
      let ref_est, ref_d = Engine.run_sprt ~domains:1 ~plan ~max_trials:2000 trial in
      List.iter
        (fun d ->
          let est, dec = Engine.run_sprt ~domains:d ~plan ~max_trials:2000 trial in
          Alcotest.(check bool)
            (Printf.sprintf "rate=%.2f domains=%d" rate d)
            true
            (strip est = strip ref_est && dec = ref_d))
        [ 2; 4 ])
    [ 0.95; 0.05; 0.5 ]

(* The decision boundary itself: Wald's corridor for H0 rate <= p0 vs
   H1 rate >= p1 at error levels alpha = beta = 1e-3 is
   (log (beta / (1-alpha)), log ((1-beta) / alpha)); the log-likelihood
   ratio of k accepts in n trials is k log (p1/p0) + (n-k) log ((1-p1)/(1-p0)).
   Recomputed here from first principles: a decision on the wrong side of
   the corridor — or silence outside it — is a fault in Sprt.decide
   regardless of how plausible the downstream estimates look. *)
let sprt_boundary_case st =
  let a = 0.001 +. Random.State.float st 0.997 in
  let b = 0.001 +. Random.State.float st 0.997 in
  let p0 = Float.min a b and p1 = Float.max a b in
  let trials = Random.State.int st 500 in
  let accepts = if trials = 0 then 0 else Random.State.int st (trials + 1) in
  (p0, p1, trials, accepts)

let prop_sprt_decisions_respect_corridor =
  QCheck.Test.make ~name:"SPRT decisions never leave the likelihood corridor" ~count:2000
    (QCheck.make
       ~print:(fun (p0, p1, n, k) -> Printf.sprintf "p0=%f p1=%f trials=%d accepts=%d" p0 p1 n k)
       sprt_boundary_case)
    (fun (p0, p1, trials, accepts) ->
      QCheck.assume (p0 < p1);
      let plan = Sprt.plan ~p0 ~p1 () in
      let llr =
        (float_of_int accepts *. log (p1 /. p0))
        +. (float_of_int (trials - accepts) *. log ((1. -. p1) /. (1. -. p0)))
      in
      let log_a = log ((1. -. 1e-3) /. 1e-3) and log_b = log (1e-3 /. (1. -. 1e-3)) in
      let acc = { Accum.empty with Accum.trials; accepts } in
      match Sprt.decide plan acc with
      | Some Sprt.Above -> llr >= log_a
      | Some Sprt.Below -> llr <= log_b
      | None -> log_b < llr && llr < log_a)

let prop_sprt_decisions_monotone =
  QCheck.Test.make ~name:"SPRT decisions are monotone in further evidence" ~count:2000
    (QCheck.make
       ~print:(fun (p0, p1, n, k) -> Printf.sprintf "p0=%f p1=%f trials=%d accepts=%d" p0 p1 n k)
       sprt_boundary_case)
    (fun (p0, p1, trials, accepts) ->
      QCheck.assume (p0 < p1);
      let plan = Sprt.plan ~p0 ~p1 () in
      let decide trials accepts = Sprt.decide plan { Accum.empty with Accum.trials; accepts } in
      match decide trials accepts with
      (* One more confirming trial can only strengthen a crossed boundary. *)
      | Some Sprt.Above -> decide (trials + 1) (accepts + 1) = Some Sprt.Above
      | Some Sprt.Below -> decide (trials + 1) accepts = Some Sprt.Below
      | None -> true)

let test_sprt_pinned_trace () =
  (* Regression pin: the exact stopping point of Definition 2's SPRT on one
     fixed seeded Bernoulli stream, both for a sequential fold over
     Sprt.decide and for the engine's chunk-granular Engine.run_sprt. *)
  let plan = Sprt.definition2 () in
  let trial = biased_trial 0.95 in
  let rec fold acc i =
    let acc = Accum.add acc (trial i) in
    match Sprt.decide plan acc with
    | Some d -> (i + 1, acc.Accum.accepts, d)
    | None -> fold acc (i + 1)
  in
  let stop_trials, stop_accepts, d = fold Accum.empty 0 in
  Alcotest.(check int) "sequential stop index" 10 stop_trials;
  Alcotest.(check int) "sequential accepts at stop" 10 stop_accepts;
  Alcotest.(check bool) "sequential decision" true (d = Sprt.Above);
  let est, decision = Engine.run_sprt ~domains:1 ~plan ~max_trials:2000 trial in
  Alcotest.(check bool) "engine decision" true (decision = Some Sprt.Above);
  Alcotest.(check int) "engine trials at stop" 32 est.Engine.trials;
  Alcotest.(check int) "engine accepts at stop" 31 est.Engine.accepts

let test_sprt_undecided_near_threshold () =
  (* A perfectly balanced trial stream keeps the log-likelihood ratio at
     zero on every chunk boundary: the test must burn the whole budget and
     refuse to decide. *)
  let alternating seed = { Accum.accepted = seed mod 2 = 0; bits = 10 } in
  let est, decision =
    Engine.run_sprt ~domains:2 ~plan:(Sprt.definition2 ()) ~max_trials:640 alternating
  in
  Alcotest.(check bool) "undecided" true (decision = None);
  Alcotest.(check int) "full budget" 640 est.Engine.trials;
  Alcotest.(check bool) "not flagged early-stopped" false est.Engine.stopped_early

(* --- run log ---------------------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_runlog_json_shape () =
  let e = Engine.run ~domains:1 ~trials:50 synth_trial in
  let line = Runlog.to_json ~protocol:"synth\"etic" ~n:8 ~prover:"none" e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains line needle))
    [ Printf.sprintf "{\"schema_version\":%d," Runlog.schema_version;
      "\"protocol\":\"synth\\\"etic\""; "\"n\":8"; "\"trials\":50"; "\"ci_low\":"; "\"domains\":1" ];
  Alcotest.(check bool) "no fault field unless given" true (not (contains line "\"fault\":"));
  Alcotest.(check bool) "single line" true (not (contains line "\n"));
  let faulted = Runlog.to_json ~fault:"drop=0.1" ~protocol:"p" ~n:4 ~prover:"x" e in
  Alcotest.(check bool) "fault field present when given" true
    (let sub = "\"fault\":\"drop=0.1\"" in
     let n = String.length faulted and m = String.length sub in
     let rec go i = i + m <= n && (String.sub faulted i m = sub || go (i + 1)) in
     go 0)

(* --- env knobs --------------------------------------------------------------------- *)

let test_scaled_trials () =
  (* Compute the expectation from the ambient IDS_TRIALS_SCALE so this test
     is valid in both the full and the @runtest-fast tier. *)
  let env_scale default =
    match Sys.getenv_opt "IDS_TRIALS_SCALE" with
    | Some s -> (match float_of_string_opt s with Some f when f > 0. -> f | _ -> default)
    | None -> default
  in
  let expect scale n = max 1 (int_of_float (ceil (float_of_int n *. scale))) in
  Alcotest.(check int) "scales with env/default" (expect (env_scale 1.0) 37) (Engine.scaled_trials 37);
  Alcotest.(check int) "explicit default scale"
    (expect (env_scale 4.0) 37)
    (Engine.scaled_trials ~default_scale:4.0 37);
  Alcotest.(check int) "never below one" 1 (Engine.scaled_trials ~default_scale:0.0001 1)

(* --- regression pin: Protocol 2 through the migrated Stats ------------------------- *)

let test_stats_regression_protocol2 () =
  (* Pins the exact output of Stats.acceptance for Protocol 2 on a small
     fixed instance. These values were produced by the pre-engine
     sequential loop; the engine migration must preserve them bit-for-bit. *)
  let g = Family.random_symmetric (Rng.create 42) 8 in
  let est = Stats.acceptance ~trials:12 (fun seed -> Sym_dam.run ~seed g Sym_dam.honest) in
  Alcotest.(check int) "trials" 12 est.Stats.trials;
  Alcotest.(check int) "accepts" 12 est.Stats.accepts;
  Alcotest.(check (float 0.)) "rate" 1.0 est.Stats.rate;
  Alcotest.(check (float 0.)) "mean_bits" 177.0 est.Stats.mean_bits;
  Alcotest.(check int) "max_bits" 181 est.Stats.max_bits

let suite =
  [ ( "engine",
      [ Alcotest.test_case "determinism across domains" `Quick test_determinism_across_domains;
        Alcotest.test_case "determinism across chunk sizes" `Quick test_determinism_across_chunk_sizes;
        Alcotest.test_case "protocol determinism across domains" `Quick
          test_protocol_determinism_across_domains;
        Alcotest.test_case "shim matches sequential loop" `Quick test_shim_matches_sequential_loop;
        Alcotest.test_case "ctx cache deterministic across domains" `Quick
          test_ctx_cache_deterministic_across_domains;
        Alcotest.test_case "worker exception propagates" `Quick test_scheduler_exception_propagates;
        Alcotest.test_case "scaled trials" `Quick test_scaled_trials;
        qtest prop_merge_associative;
        qtest prop_merge_agrees_with_fold
      ] );
    ( "engine-wilson",
      [ qtest prop_wilson_contains_rate;
        Alcotest.test_case "width shrinks like 1/sqrt(n)" `Quick test_wilson_width_shrinks
      ] );
    ( "engine-sprt",
      [ Alcotest.test_case "agrees with full run on both sides" `Quick test_sprt_agrees_with_full_run;
        Alcotest.test_case "deterministic across domains" `Quick test_sprt_determinism_across_domains;
        Alcotest.test_case "undecided near threshold" `Quick test_sprt_undecided_near_threshold;
        qtest prop_sprt_decisions_respect_corridor;
        qtest prop_sprt_decisions_monotone;
        Alcotest.test_case "pinned stopping trace" `Quick test_sprt_pinned_trace
      ] );
    ( "engine-runlog",
      [ Alcotest.test_case "JSON line shape" `Quick test_runlog_json_shape ] );
    ( "engine-regression",
      [ Alcotest.test_case "Protocol 2 pinned estimate" `Quick test_stats_regression_protocol2 ] )
  ]
