(* Tests for the core protocols: completeness and soundness of Protocols 1
   and 2, the DSym protocol, the PLS / LCP baselines, and the GNI protocol —
   i.e. empirical renditions of Theorems 1.1, 1.2, 1.3 and 1.5 plus the
   Definition 2 thresholds. *)

open Ids_proof
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Perm = Ids_graph.Perm
module Rng = Ids_bignum.Rng


(* Trial budgets honor IDS_TRIALS_SCALE so @runtest-fast can dial them down. *)
let strials n = Ids_engine.Engine.scaled_trials n

let accepted (o : Outcome.t) = o.Outcome.accepted

(* --- Protocol 1 (dMAM) -------------------------------------------------------- *)

let test_dmam_completeness () =
  (* Honest prover on symmetric graphs: Protocol 1 accepts deterministically
     (the honest transcript passes every check for any challenge). *)
  let rng = Rng.create 100 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      for seed = 1 to 10 do
        Alcotest.(check bool) (Printf.sprintf "n=%d seed=%d" n seed) true
          (accepted (Sym_dmam.run ~seed g Sym_dmam.honest))
      done)
    [ 4; 8; 16; 32 ];
  List.iter
    (fun g ->
      Alcotest.(check bool) "classic" true (accepted (Sym_dmam.run ~seed:1 g Sym_dmam.honest)))
    [ Graph.petersen (); Graph.cycle 9; Graph.hypercube 3; Graph.complete 6 ]

let test_dmam_soundness_adversaries () =
  let rng = Rng.create 101 in
  let g = Family.random_asymmetric rng 10 in
  (* Every registered adversary stays under its bound: only random-perm can
     even reach a hash collision; the rest are caught deterministically. *)
  List.iter
    (fun (name, adv) ->
      let max_rate = if name = "random-perm" then 0.1 else 0.0 in
      let est = Stats.acceptance ~trials:(strials 60) (fun seed -> Sym_dmam.run ~seed g adv) in
      Alcotest.(check bool)
        (Printf.sprintf "%s rate %.3f <= %.3f" name est.Stats.rate max_rate)
        true
        (est.Stats.rate <= max_rate))
    Adversary.sym_dmam

let test_dmam_honest_loses_on_asymmetric () =
  (* Even the honest code must fail on NO instances: there is no witness. *)
  let rng = Rng.create 102 in
  let g = Family.random_asymmetric rng 8 in
  let est = Stats.acceptance ~trials:(strials 40) (fun seed -> Sym_dmam.run ~seed g Sym_dmam.honest) in
  Alcotest.(check bool) "honest cannot prove a false statement" true (est.Stats.rate <= 0.1)

let test_dmam_cost_logarithmic () =
  (* O(log n): the per-node bit cost is a small multiple of log2 n. *)
  let rng = Rng.create 103 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      let o = Sym_dmam.run ~seed:5 g Sym_dmam.honest in
      (* Exact shape: 4 vertex ids + 4 field elements with p <= 100 n^3,
         i.e. at most 16 log n + O(1) bits; test with a little headroom. *)
      let log_n = float_of_int (Ids_network.Bits.ceil_log2 n) in
      let bound = (17. *. log_n) +. 35. in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %d bits vs %.0f" n o.Outcome.max_bits_per_node bound)
        true
        (float_of_int o.Outcome.max_bits_per_node <= bound))
    [ 8; 16; 32; 64; 128 ]

let test_dmam_exact_probabilities () =
  let rng = Rng.create 104 in
  (* Automorphism: collision at every index. *)
  let g = Graph.cycle 8 in
  let rho = Option.get (Iso.find_nontrivial_automorphism g) in
  let params = Sym_dmam.params_for ~seed:1 g in
  Alcotest.(check (float 0.0)) "automorphism accepts w.p. 1" 1.0
    (Sym_dmam.acceptance_probability_exact params g rho);
  (* Non-automorphism on an asymmetric graph: below Theorem 3.2's bound. *)
  let a = Family.random_asymmetric rng 8 in
  let pa = Sym_dmam.params_for ~seed:1 a in
  let bound = Ids_hash.Linear.collision_bound ~n:8 ~p:pa.Sym_dmam.p in
  for _ = 1 to 5 do
    let sigma = Perm.random_nonidentity rng 8 in
    let prob = Sym_dmam.acceptance_probability_exact pa a sigma in
    Alcotest.(check bool) (Printf.sprintf "prob %.5f <= %.5f" prob bound) true (prob <= bound)
  done

let test_dmam_best_adversary_below_third () =
  let rng = Rng.create 105 in
  let a = Family.random_asymmetric rng 8 in
  let params = Sym_dmam.params_for ~seed:2 a in
  let bound = Sym_dmam.best_adversary_bound ~sample:10 ~seed:3 params a in
  Alcotest.(check bool) (Printf.sprintf "best adversary %.5f < 1/3" bound) true (bound < 1. /. 3.)

let test_dmam_rejects_tiny () =
  Alcotest.check_raises "n=1" (Invalid_argument "Sym_dmam.run: need at least 2 nodes") (fun () ->
      ignore (Sym_dmam.run ~seed:1 (Graph.make 1) Sym_dmam.honest))

(* --- Protocol 2 (dAM) --------------------------------------------------------- *)

let test_dam_completeness () =
  let rng = Rng.create 110 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      for seed = 1 to 5 do
        Alcotest.(check bool) (Printf.sprintf "n=%d" n) true (accepted (Sym_dam.run ~seed g Sym_dam.honest))
      done)
    [ 4; 8; 12 ]

let test_dam_soundness () =
  let rng = Rng.create 111 in
  let g = Family.random_asymmetric rng 8 in
  List.iter
    (fun (name, adv) ->
      let est = Stats.acceptance ~trials:(strials 25) (fun seed -> Sym_dam.run ~seed g adv) in
      Alcotest.(check bool) (name ^ " blocked") true (est.Stats.rate = 0.0))
    Adversary.sym_dam

let test_dam_cost_n_log_n () =
  (* O(n log n) with a visible n * log n term (the broadcast permutation and
     the long hash index). *)
  let rng = Rng.create 112 in
  List.iter
    (fun n ->
      let g = Family.random_symmetric rng n in
      let o = Sym_dam.run ~seed:3 g Sym_dam.honest in
      let nlogn = float_of_int n *. float_of_int (Ids_network.Bits.ceil_log2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %d bits vs 30 n log n = %.0f" n o.Outcome.max_bits_per_node (30. *. nlogn))
        true
        (float_of_int o.Outcome.max_bits_per_node <= 30. *. nlogn))
    [ 8; 12; 16 ]

let test_dam_field_size_matches_paper () =
  (* p in [10 n^(n+2), 100 n^(n+2)]. *)
  let g = Graph.cycle 10 in
  let params = Sym_dam.params_for ~seed:9 g in
  let lo = Ids_bignum.Nat.mul_int (Ids_bignum.Nat.pow (Ids_bignum.Nat.of_int 10) 12) 10 in
  let hi = Ids_bignum.Nat.mul_int (Ids_bignum.Nat.pow (Ids_bignum.Nat.of_int 10) 12) 100 in
  Alcotest.(check bool) "p >= 10 n^(n+2)" true (Ids_bignum.Nat.compare params.Sym_dam.p lo >= 0);
  Alcotest.(check bool) "p <= 100 n^(n+2)" true (Ids_bignum.Nat.compare params.Sym_dam.p hi <= 0)

(* --- DSym (Section 3.3) -------------------------------------------------------- *)

let test_dsym_completeness () =
  let rng = Rng.create 120 in
  List.iter
    (fun (n, r) ->
      let f = Family.random_asymmetric rng n in
      let inst = Dsym.make_instance ~n ~r (Family.dsym_graph f r) in
      for seed = 1 to 5 do
        Alcotest.(check bool)
          (Printf.sprintf "n=%d r=%d" n r)
          true
          (accepted (Dsym.run ~seed inst Dsym.honest))
      done)
    [ (6, 1); (6, 3); (8, 2); (10, 2) ]

let test_dsym_completeness_with_symmetric_sides () =
  (* DSym membership does not require asymmetric sides. *)
  let inst = Dsym.make_instance ~n:5 ~r:2 (Family.dsym_graph (Graph.cycle 5) 2) in
  Alcotest.(check bool) "cycle sides" true (accepted (Dsym.run ~seed:4 inst Dsym.honest))

let test_dsym_soundness_on_perturbed () =
  let rng = Rng.create 121 in
  let f = Family.random_asymmetric rng 6 in
  let rejected = ref 0 in
  for seed = 1 to 40 do
    let bad = Dsym.make_instance ~n:6 ~r:2 (Family.dsym_perturbed rng f 2) in
    if not (accepted (Dsym.run ~seed bad Dsym.adversary_consistent)) then incr rejected
  done;
  Alcotest.(check bool) (Printf.sprintf "rejected %d/40" !rejected) true (!rejected >= 38)

let test_dsym_soundness_structural () =
  (* Breaking the path is caught deterministically, without the hash. *)
  let rng = Rng.create 122 in
  let f = Family.random_asymmetric rng 6 in
  let g = Family.dsym_graph f 2 in
  Graph.remove_edge g 12 13;
  (* a path edge: 2n=12 *)
  Graph.add_edge g 12 14;
  (* keep it connected so the tree exists *)
  let inst = Dsym.make_instance ~n:6 ~r:2 g in
  Alcotest.(check bool) "structure violation rejected" false
    (accepted (Dsym.run ~seed:1 inst Dsym.adversary_consistent))

let test_dsym_cost_logarithmic () =
  let rng = Rng.create 123 in
  List.iter
    (fun n ->
      let f = Family.random_asymmetric rng n in
      let inst = Dsym.make_instance ~n ~r:2 (Family.dsym_graph f 2) in
      let o = Dsym.run ~seed:2 inst Dsym.honest in
      let size = (2 * n) + 5 in
      let log_n = float_of_int (Ids_network.Bits.ceil_log2 size) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %d bits" n o.Outcome.max_bits_per_node)
        true
        (float_of_int o.Outcome.max_bits_per_node <= (17. *. log_n) +. 35.))
    [ 8; 16; 32; 64 ]

let test_dsym_instance_validation () =
  Alcotest.check_raises "wrong size" (Invalid_argument "Dsym.make_instance: wrong vertex count")
    (fun () -> ignore (Dsym.make_instance ~n:6 ~r:2 (Graph.make 10)))

(* --- PLS / LCP baselines -------------------------------------------------------- *)

let test_tree_pls () =
  let rng = Rng.create 130 in
  for _ = 1 to 10 do
    let g = Graph.random_connected_gnp rng 20 0.2 in
    let adv = Pls.Tree.honest g 0 in
    Alcotest.(check bool) "honest accepted" true (Pls.Tree.verify g adv).Pls.accepted;
    (* Forged distance labels must be rejected. *)
    let forged = { adv with Pls.Tree.dist = Array.map (fun d -> d + 1) adv.Pls.Tree.dist } in
    Alcotest.(check bool) "forged rejected" false (Pls.Tree.verify g forged).Pls.accepted
  done

let test_tree_pls_cost () =
  let g = Graph.random_connected_gnp (Rng.create 4) 64 0.1 in
  Alcotest.(check int) "3 log n bits" 18 (Pls.Tree.advice_bits g)

let test_lcp_sym_complete_and_sound () =
  let rng = Rng.create 131 in
  let g = Family.random_symmetric rng 10 in
  (match Pls.Lcp_sym.honest g with
  | None -> Alcotest.fail "symmetric graph must have advice"
  | Some adv ->
    Alcotest.(check bool) "honest accepted" true (Pls.Lcp_sym.verify g adv).Pls.accepted);
  let a = Family.random_asymmetric rng 10 in
  Alcotest.(check (option reject)) "no advice for asymmetric" None
    (Option.map ignore (Pls.Lcp_sym.honest a));
  (* Forgery: advice for a different (symmetric) graph fails the row checks. *)
  let other = Family.random_symmetric rng 10 in
  (match Pls.Lcp_sym.honest other with
  | Some adv -> Alcotest.(check bool) "foreign advice rejected" false (Pls.Lcp_sym.verify a adv).Pls.accepted
  | None -> Alcotest.fail "advice expected")

let test_lcp_sym_identity_rejected () =
  (* Advice whose permutation is the identity is not a *nontrivial*
     automorphism and must be rejected. *)
  let g = Family.random_symmetric (Rng.create 132) 8 in
  match Pls.Lcp_sym.honest g with
  | None -> Alcotest.fail "advice expected"
  | Some adv ->
    let id_table = Array.init 8 Fun.id in
    let forged = { adv with Pls.Lcp_sym.rho = Array.make 8 id_table } in
    Alcotest.(check bool) "identity rejected" false (Pls.Lcp_sym.verify g forged).Pls.accepted

let test_lcp_sym_cost_quadratic () =
  List.iter
    (fun n ->
      let g = Graph.cycle n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d advice >= n^2" n)
        true
        (Pls.Lcp_sym.advice_bits g >= n * n))
    [ 8; 16; 32; 64; 128 ]

let test_lcp_gni () =
  let rng = Rng.create 133 in
  let g0 = Family.random_asymmetric rng 7 in
  let g1 =
    let rec pick () =
      let h = Family.random_asymmetric rng 7 in
      if Iso.are_isomorphic g0 h then pick () else h
    in
    pick ()
  in
  (match Pls.Lcp_gni.honest g0 g1 with
  | None -> Alcotest.fail "non-isomorphic pair must have advice"
  | Some adv -> Alcotest.(check bool) "honest accepted" true (Pls.Lcp_gni.verify g0 g1 adv).Pls.accepted);
  let iso = Graph.relabel g0 (Perm.to_array (Perm.random rng 7)) in
  Alcotest.(check (option reject)) "no advice for isomorphic pair" None
    (Option.map ignore (Pls.Lcp_gni.honest g0 iso))

(* --- GNI (Section 4) ------------------------------------------------------------ *)

let test_gni_single_rep_rates () =
  (* The Goldwasser–Sipser gap: the single-repetition hit rate on a YES
     instance must exceed the NO rate, and both must respect the analytical
     bounds (with sampling slack). *)
  let rng = Rng.create 140 in
  let yes = Gni.yes_instance rng 6 and no = Gni.no_instance rng 6 in
  let params = Gni.params_for ~seed:1 yes in
  let rate inst =
    let est =
      Stats.acceptance ~trials:(strials 250) (fun seed -> Gni.run_single ~params ~seed inst Gni.honest)
    in
    est.Stats.rate
  in
  let yes_rate = rate yes and no_rate = rate no in
  let yb = Gni.yes_rate_bound params and nb = Gni.no_rate_bound params in
  Alcotest.(check bool)
    (Printf.sprintf "yes %.3f > no %.3f" yes_rate no_rate)
    true (yes_rate > no_rate +. 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "yes %.3f >= bound %.3f - slack" yes_rate yb)
    true
    (yes_rate >= yb -. 0.09);
  Alcotest.(check bool) (Printf.sprintf "no %.3f <= bound %.3f + slack" no_rate nb) true (no_rate <= nb +. 0.05)

let test_gni_full_protocol () =
  let rng = Rng.create 141 in
  let yes = Gni.yes_instance rng 6 and no = Gni.no_instance rng 6 in
  let params = Gni.params_for ~repetitions:400 ~seed:2 yes in
  for seed = 1 to 2 do
    Alcotest.(check bool) "YES accepted" true (accepted (Gni.run ~params ~seed yes Gni.honest));
    Alcotest.(check bool) "NO rejected" false (accepted (Gni.run ~params ~seed no Gni.honest))
  done

let test_gni_forging_adversary_blocked () =
  let rng = Rng.create 142 in
  let no = Gni.no_instance rng 6 in
  let params = Gni.params_for ~seed:3 no in
  (* The forging adversary turns misses into claimed hits; the root's own
     aggregation check must catch every forged repetition, so its hit rate
     cannot exceed the honest one. *)
  let est_forge =
    Stats.acceptance ~trials:(strials 120) (fun seed -> Gni.run_single ~params ~seed no Gni.adversary_forge_aggregates)
  in
  let est_honest =
    Stats.acceptance ~trials:(strials 120) (fun seed -> Gni.run_single ~params ~seed no Gni.honest)
  in
  Alcotest.(check bool)
    (Printf.sprintf "forged %.3f <= honest %.3f + slack" est_forge.Stats.rate est_honest.Stats.rate)
    true
    (est_forge.Stats.rate <= est_honest.Stats.rate +. 0.08)

let test_gni_cost_scales_n_log_n_per_rep () =
  let rng = Rng.create 143 in
  List.iter
    (fun n ->
      let inst = Gni.yes_instance rng n in
      let o = Gni.run_single ~seed:1 inst Gni.honest in
      (* One repetition: a constant number of field elements of O(n log n)
         bits each, plus the permutation broadcast. *)
      let nlogn = float_of_int n *. float_of_int (Ids_network.Bits.ceil_log2 n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %d bits vs 40 n log n" n o.Outcome.max_bits_per_node)
        true
        (float_of_int o.Outcome.max_bits_per_node <= 40. *. nlogn))
    [ 6; 7 ]

let test_gni_instance_validation () =
  let rng = Rng.create 144 in
  let sym = Family.random_symmetric rng 6 in
  let asym = Family.random_asymmetric rng 6 in
  (match Gni.make_instance sym asym with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "symmetric g0 must be rejected");
  match Gni.make_instance asym (Graph.make 7) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch must be rejected"

let suite =
  [ ( "sym_dmam",
      [ Alcotest.test_case "completeness" `Quick test_dmam_completeness;
        Alcotest.test_case "soundness vs adversaries" `Quick test_dmam_soundness_adversaries;
        Alcotest.test_case "honest loses on NO instances" `Quick test_dmam_honest_loses_on_asymmetric;
        Alcotest.test_case "cost O(log n)" `Quick test_dmam_cost_logarithmic;
        Alcotest.test_case "exact acceptance probabilities" `Quick test_dmam_exact_probabilities;
        Alcotest.test_case "best adversary < 1/3" `Quick test_dmam_best_adversary_below_third;
        Alcotest.test_case "tiny graphs rejected" `Quick test_dmam_rejects_tiny
      ] );
    ( "sym_dam",
      [ Alcotest.test_case "completeness" `Quick test_dam_completeness;
        Alcotest.test_case "soundness" `Quick test_dam_soundness;
        Alcotest.test_case "cost O(n log n)" `Quick test_dam_cost_n_log_n;
        Alcotest.test_case "field size per paper" `Quick test_dam_field_size_matches_paper
      ] );
    ( "dsym",
      [ Alcotest.test_case "completeness" `Quick test_dsym_completeness;
        Alcotest.test_case "symmetric sides allowed" `Quick test_dsym_completeness_with_symmetric_sides;
        Alcotest.test_case "soundness on perturbed" `Quick test_dsym_soundness_on_perturbed;
        Alcotest.test_case "structural violations" `Quick test_dsym_soundness_structural;
        Alcotest.test_case "cost O(log n)" `Quick test_dsym_cost_logarithmic;
        Alcotest.test_case "instance validation" `Quick test_dsym_instance_validation
      ] );
    ( "pls",
      [ Alcotest.test_case "spanning tree PLS" `Quick test_tree_pls;
        Alcotest.test_case "tree PLS cost" `Quick test_tree_pls_cost;
        Alcotest.test_case "LCP Sym complete + sound" `Quick test_lcp_sym_complete_and_sound;
        Alcotest.test_case "LCP Sym identity rejected" `Quick test_lcp_sym_identity_rejected;
        Alcotest.test_case "LCP Sym Theta(n^2) advice" `Quick test_lcp_sym_cost_quadratic;
        Alcotest.test_case "LCP GNI" `Quick test_lcp_gni
      ] );
    ( "gni",
      [ Alcotest.test_case "single-repetition gap" `Slow test_gni_single_rep_rates;
        Alcotest.test_case "full protocol verdicts" `Slow test_gni_full_protocol;
        Alcotest.test_case "forging adversary blocked" `Slow test_gni_forging_adversary_blocked;
        Alcotest.test_case "per-repetition cost" `Quick test_gni_cost_scales_n_log_n_per_rep;
        Alcotest.test_case "instance validation" `Quick test_gni_instance_validation
      ] )
  ]
