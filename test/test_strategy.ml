(* Tests for the E17 adversary-search layer: qcheck round-trips and
   line-carrying rejections for the strategy codec, bit-identical searches
   across worker domains and tracing, search-dominates-registry on every
   protocol, and the frontier pins that freeze each protocol's best-found
   strategy (encoding + acceptance estimate) as a regression oracle. *)

module Search = Ids_engine.Search
module Engine = Ids_engine.Engine
module Obs = Ids_obs.Obs
open Ids_proof

let qtest = QCheck_alcotest.to_alcotest

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- codec round-trip ---------------------------------------------------------- *)

let protocols = [ Strategy.Sym_dmam; Strategy.Sym_dam; Strategy.Dsym; Strategy.Gni ]

(* Uniform over the whole space: any protocol, any seed, any grid point. *)
let strategy_gen st =
  let protocol = List.nth protocols (Random.State.int st (List.length protocols)) in
  let space = Strategy.space protocol in
  let seed = Random.State.int st 10_000 in
  let point =
    Array.map (fun (a : Search.axis) -> Random.State.int st a.Search.cardinality) space
  in
  Strategy.make protocol ~seed point

let strategy_arb = QCheck.make ~print:Strategy.encode strategy_gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"decode (encode s) = Ok s" ~count:500 strategy_arb (fun s ->
      match Strategy.decode (Strategy.encode s) with
      | Ok s' -> Strategy.equal s s'
      | Error _ -> false)

let prop_encode_injective =
  QCheck.Test.make ~name:"encode is injective" ~count:300
    (QCheck.pair strategy_arb strategy_arb) (fun (a, b) ->
      Strategy.equal a b = (Strategy.encode a = Strategy.encode b))

(* --- codec rejections ---------------------------------------------------------- *)

let valid_line =
  "strategy v1 sym_dmam seed=0 perm=fallback split=none sums=consistent echo=root fault=none"

let test_codec_rejections () =
  (match Strategy.decode valid_line with
  | Ok s -> Alcotest.(check string) "reference line round-trips" valid_line (Strategy.encode s)
  | Error e -> Alcotest.failf "reference line rejected: %s" e);
  List.iter
    (fun (name, line) ->
      match Strategy.decode line with
      | Ok s -> Alcotest.failf "%s accepted (as %s): %S" name (Strategy.encode s) line
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error carries a token position (%s)" name e)
          true (contains e "token");
        Alcotest.(check bool)
          (Printf.sprintf "%s error carries the line (%s)" name e)
          true (contains e line))
    [ ("wrong magic", "plan v1 sym_dmam seed=0 perm=fallback");
      ("wrong version", "strategy v2 sym_dmam seed=0 perm=fallback");
      ("unknown protocol", "strategy v1 sym_damam seed=0 perm=fallback");
      ("missing seed", "strategy v1 sym_dmam perm=fallback split=none");
      ("malformed seed", "strategy v1 sym_dmam seed=x perm=fallback");
      ( "unknown field",
        "strategy v1 sym_dmam seed=0 perm=fallback glitch=none sums=consistent echo=root \
         fault=none" );
      ( "unknown level",
        "strategy v1 sym_dmam seed=0 perm=warp split=none sums=consistent echo=root fault=none" );
      ("truncated", "strategy v1 sym_dmam seed=0 perm=fallback split=none sums=consistent");
      ("trailing token", valid_line ^ " extra=1");
      ("empty line", "") ]

let test_make_validates () =
  List.iter
    (fun (name, f) ->
      match f () with
      | exception Invalid_argument _ -> ()
      | (_ : Strategy.t) -> Alcotest.failf "%s accepted" name)
    [ ("wrong arity", fun () -> Strategy.make Strategy.Sym_dmam ~seed:0 [| 0; 0 |]);
      ("level out of range", fun () -> Strategy.make Strategy.Gni ~seed:0 [| 9; 0; 0 |]);
      ("negative level", fun () -> Strategy.make Strategy.Dsym ~seed:0 [| 0; -1; 0; 0; 0 |]) ]

(* --- search determinism -------------------------------------------------------- *)

(* Everything that must be invariant under scheduling (all estimate fields
   except the recorded worker count). *)
let strip (e : Engine.estimate) =
  ( e.Engine.trials,
    e.Engine.accepts,
    e.Engine.rate,
    e.Engine.mean_bits,
    e.Engine.max_bits,
    e.Engine.ci_low,
    e.Engine.ci_high,
    e.Engine.stopped_early )

let strip_outcome (o : Search.outcome) = (Array.to_list o.Search.point, strip o.Search.estimate, o.Search.screened)

let strip_result (r : Search.result) =
  (strip_outcome r.Search.best, List.map strip_outcome r.Search.outcomes, r.Search.stats)

(* The test-tier search: the bench's smoke budgets. Deliberately fixed
   numbers (not Engine.scaled_trials) so the pins below hold in the full
   and the @runtest-fast tier alike. *)
let run_case ?domains (case : Strategy.frontier_case) =
  Search.run ?domains
    ~frozen:[ (Strategy.fault_axis case.Strategy.protocol, 0) ]
    ~passes:1 ~generations:1 ~screen_trials:8 ~full_trials:32 ~space:case.Strategy.space
    case.Strategy.trial

let sym_dmam_case () =
  List.find
    (fun (c : Strategy.frontier_case) -> c.Strategy.protocol = Strategy.Sym_dmam)
    (Strategy.frontier_cases ())

let test_search_determinism_across_domains () =
  let case = sym_dmam_case () in
  let reference = strip_result (run_case ~domains:1 case) in
  List.iter
    (fun d ->
      let r = strip_result (run_case ~domains:d case) in
      Alcotest.(check bool) (Printf.sprintf "domains=%d bit-identical" d) true (r = reference))
    [ 2; 4 ]

let test_search_determinism_under_tracing () =
  let case = sym_dmam_case () in
  let was = Obs.enabled () in
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      Obs.set_enabled false;
      let off = strip_result (run_case ~domains:2 case) in
      Obs.set_enabled true;
      let on = strip_result (run_case ~domains:2 case) in
      Alcotest.(check bool) "IDS_TRACE on/off bit-identical" true (on = off))

(* --- frontier pins -------------------------------------------------------------- *)

(* The best strategy the test-tier search finds per protocol, with its
   exact acceptance estimate — harvested from a reference run and pinned.
   Moving any of these means the search, a protocol, or an adversary
   changed behaviour; that must be a deliberate, reviewed event. *)
let pins =
  [ ( "sym_dmam",
      "strategy v1 sym_dmam seed=0 perm=fallback split=none sums=consistent echo=root fault=none",
      0 );
    ("sym_dam", "strategy v1 sym_dam seed=0 perm=search sums=consistent echo=root fault=none", 0);
    ("dsym", "strategy v1 dsym seed=0 perm=sigma root=zero sums=consistent echo=root fault=none", 0);
    ("gni", "strategy v1 gni seed=0 commit=search reveal=honest fault=none", 6) ]

let test_frontier_pins_and_domination () =
  List.iter
    (fun (case : Strategy.frontier_case) ->
      let label = case.Strategy.label in
      let pin_encoding, pin_accepts =
        let _, e, a = List.find (fun (l, _, _) -> l = label) pins in
        (e, a)
      in
      let r = run_case case in
      let best = r.Search.best in
      let found = case.Strategy.strategy_of best.Search.point in
      Alcotest.(check string) (label ^ ": pinned best strategy") pin_encoding
        (Strategy.encode found);
      Alcotest.(check int) (label ^ ": pinned accepts") pin_accepts best.Search.estimate.Engine.accepts;
      Alcotest.(check int) (label ^ ": full evaluation") 32 best.Search.estimate.Engine.trials;
      Alcotest.(check bool) (label ^ ": best not screened") false best.Search.screened;
      (* The acceptance criterion: the search must find a strategy at least
         as strong as every hand-written registry cheater. At seed 0 the
         registry points are grid points, so this holds deterministically. *)
      List.iter
        (fun (name, trial) ->
          let e = Engine.run ~trials:32 trial in
          Alcotest.(check bool)
            (Printf.sprintf "%s: search (%.4f) >= registry %s (%.4f)" label
               best.Search.estimate.Engine.rate name e.Engine.rate)
            true
            (best.Search.estimate.Engine.rate >= e.Engine.rate))
        case.Strategy.registry)
    (Strategy.frontier_cases ())

let test_strategy_prover_names_carry_encoding () =
  (* The run-log contract: a strategy prover's name is its encoding, so a
     frontier record can always be decoded back to the strategy it ran. *)
  List.iter
    (fun (case : Strategy.frontier_case) ->
      let s = case.Strategy.strategy_of (Array.map (fun _ -> 0) case.Strategy.space) in
      let name =
        match case.Strategy.protocol with
        | Strategy.Sym_dmam -> (Strategy.sym_dmam_prover s).Sym_dmam.name
        | Strategy.Sym_dam -> (Strategy.sym_dam_prover s).Sym_dam.name
        | Strategy.Dsym -> (Strategy.dsym_prover s).Dsym.name
        | Strategy.Gni -> Gni.prover_name (Strategy.gni_prover s)
      in
      Alcotest.(check string) (case.Strategy.label ^ ": prover name is the encoding")
        (Strategy.encode s) name)
    (Strategy.frontier_cases ())

let suite =
  [ ( "strategy-codec",
      [ qtest prop_codec_roundtrip;
        qtest prop_encode_injective;
        Alcotest.test_case "rejections carry token and line" `Quick test_codec_rejections;
        Alcotest.test_case "make validates arity and range" `Quick test_make_validates
      ] );
    ( "strategy-search",
      [ Alcotest.test_case "bit-identical across domains" `Quick
          test_search_determinism_across_domains;
        Alcotest.test_case "bit-identical under tracing" `Quick
          test_search_determinism_under_tracing;
        Alcotest.test_case "frontier pins and registry domination" `Quick
          test_frontier_pins_and_domination;
        Alcotest.test_case "prover names carry the encoding" `Quick
          test_strategy_prover_names_carry_encoding
      ] )
  ]
