(* Real-fork worker integration test, isolated in its own executable.

   OCaml 5 forbids Unix.fork once any other domain has been spawned, and the
   shared test binary runs multi-domain engine suites first.  This binary
   never spawns a domain (Catalog.execute_request pins ~domains:1), so the
   Pool.spawn forks below are legal.  It pins the acceptance criterion that a
   request completed via retry after a worker crash is bit-identical to the
   in-process engine. *)

module Request = Ids_serve.Request
module Catalog = Ids_serve.Catalog
module Pool = Ids_serve.Pool
module Fault = Ids_network.Fault

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let wait_readable fd =
  match Unix.select [ fd ] [] [] 30. with
  | [], _, _ -> Alcotest.fail "worker response timed out"
  | _ -> ()

let read_response w =
  let rec go () =
    wait_readable (Pool.read_fd w);
    match Pool.read w with
    | `Lines (line :: _) -> `Line line
    | `Lines [] -> go ()
    | `Eof -> `Eof
  in
  go ()

let test_forked_worker_retry_bit_identical () =
  let protocol = "sym_dmam" and strategy = "honest" and trials = 5 in
  let req =
    Request.make_estimate ~kill_attempt:1 ~id:"it1" ~protocol ~strategy ~trials ()
  in
  (* Attempt 1: the worker self-kills before computing. *)
  let w1 = Pool.spawn ~wid:0 () in
  checkb "attempt 1 sent" true (Pool.send w1 ~attempt:1 req);
  (match read_response w1 with
  | `Eof -> ()
  | `Line l -> Alcotest.failf "worker survived its forced kill: %s" l);
  ignore (Unix.waitpid [] (Pool.pid w1));
  Pool.shutdown w1;
  (* Attempt 2 on a fresh worker: kill_attempt=1 no longer fires. *)
  let w2 = Pool.spawn ~wid:0 () in
  checkb "attempt 2 sent" true (Pool.send w2 ~attempt:2 req);
  let line =
    match read_response w2 with
    | `Line l -> l
    | `Eof -> Alcotest.fail "worker died on the retry"
  in
  Pool.shutdown w2;
  ignore (Unix.waitpid [] (Pool.pid w2));
  (match Request.response_of_line line with
  | Ok (Request.Estimated { id = "it1"; attempts = 2; record }) ->
    let want =
      match Catalog.execute_request ~protocol ~strategy ~trials ~fault:Fault.none with
      | Ok r -> r
      | Error e -> Alcotest.failf "in-process oracle failed: %s" e
    in
    check Alcotest.string "retried result bit-identical to the in-process engine" want record
  | Ok _ -> Alcotest.fail "unexpected response shape"
  | Error e -> Alcotest.failf "bad response line: %s" e)

let () =
  Alcotest.run "ids-serve-fork"
    [ ( "serve-fork",
        [ Alcotest.test_case "forked worker: retried result bit-identical" `Quick
            test_forked_worker_retry_bit_identical
        ] )
    ]
