(* Real-fork worker integration test, isolated in its own executable.

   OCaml 5 forbids Unix.fork once any other domain has been spawned, and the
   shared test binary runs multi-domain engine suites first.  This binary
   never spawns a domain (Catalog.execute_request pins ~domains:1), so the
   Pool.spawn forks below are legal.  It pins the acceptance criterion that a
   request completed via retry after a worker crash is bit-identical to the
   in-process engine. *)

module Request = Ids_serve.Request
module Catalog = Ids_serve.Catalog
module Pool = Ids_serve.Pool
module Fault = Ids_network.Fault

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let wait_readable fd =
  match Unix.select [ fd ] [] [] 30. with
  | [], _, _ -> Alcotest.fail "worker response timed out"
  | _ -> ()

let read_response w =
  let rec go () =
    wait_readable (Pool.read_fd w);
    match Pool.read w with
    | `Lines (line :: _) -> `Line line
    | `Lines [] -> go ()
    | `Eof -> `Eof
  in
  go ()

let test_forked_worker_retry_bit_identical () =
  let protocol = "sym_dmam" and strategy = "honest" and trials = 5 in
  let req =
    Request.make_estimate ~kill_attempt:1 ~id:"it1" ~protocol ~strategy ~trials ()
  in
  (* Attempt 1: the worker self-kills before computing. *)
  let w1 = Pool.spawn ~wid:0 () in
  checkb "attempt 1 sent" true (Pool.send w1 ~attempt:1 req);
  (match read_response w1 with
  | `Eof -> ()
  | `Line l -> Alcotest.failf "worker survived its forced kill: %s" l);
  ignore (Unix.waitpid [] (Pool.pid w1));
  Pool.shutdown w1;
  (* Attempt 2 on a fresh worker: kill_attempt=1 no longer fires. *)
  let w2 = Pool.spawn ~wid:0 () in
  checkb "attempt 2 sent" true (Pool.send w2 ~attempt:2 req);
  let line =
    match read_response w2 with
    | `Line l -> l
    | `Eof -> Alcotest.fail "worker died on the retry"
  in
  Pool.shutdown w2;
  ignore (Unix.waitpid [] (Pool.pid w2));
  (match Request.response_of_line line with
  | Ok (Request.Estimated { id = "it1"; attempts = 2; record; _ }) ->
    let want =
      match Catalog.execute_request ~protocol ~strategy ~trials ~fault:Fault.none with
      | Ok r -> r
      | Error e -> Alcotest.failf "in-process oracle failed: %s" e
    in
    check Alcotest.string "retried result bit-identical to the in-process engine" want record
  | Ok _ -> Alcotest.fail "unexpected response shape"
  | Error e -> Alcotest.failf "bad response line: %s" e)

(* The torn-frame drill at the pool layer (the E20 chaos-during-framing
   satellite): a worker killed mid-response-write must leave only a partial
   line behind — which the reader discards wholesale at EOF — and the retry
   on a fresh worker must produce a byte-identical record with a complete,
   parseable telemetry frame.  The lost first-attempt delta surfaces as a
   counted gap (the dead incarnation's frames never arrive), never as a
   parse error. *)
let test_torn_frame_lost_delta_clean_retry () =
  let protocol = "sym_dmam" and strategy = "honest" and trials = 4 in
  let req =
    Request.make_estimate ~torn_attempt:1 ~trace:("tr-torn", 3) ~id:"torn1" ~protocol ~strategy
      ~trials ()
  in
  let w1 = Pool.spawn ~telemetry:true ~wid:0 () in
  checkb "attempt 1 sent" true (Pool.send w1 ~attempt:1 req);
  (* The worker writes roughly half the line and SIGKILLs itself: the pipe
     EOFs with a partial line buffered, and `read` must not surface it as a
     parseable line. *)
  let rec drain_to_eof salvaged =
    wait_readable (Pool.read_fd w1);
    match Pool.read w1 with
    | `Lines ls -> drain_to_eof (salvaged @ ls)
    | `Eof -> salvaged
  in
  let salvaged = drain_to_eof [] in
  checkb "no complete line salvaged from the torn write" true (salvaged = []);
  ignore (Unix.waitpid [] (Pool.pid w1));
  Pool.shutdown w1;
  (* Retry on a fresh worker: full line, complete frame, fresh chain. *)
  let w2 = Pool.spawn ~telemetry:true ~wid:0 () in
  checkb "attempt 2 sent" true (Pool.send w2 ~attempt:2 req);
  let line =
    match read_response w2 with
    | `Line l -> l
    | `Eof -> Alcotest.fail "worker died on the retry"
  in
  Pool.shutdown w2;
  ignore (Unix.waitpid [] (Pool.pid w2));
  match Request.response_of_line line with
  | Error e -> Alcotest.failf "retried response did not parse: %s" e
  | Ok (Request.Estimated { id = "torn1"; attempts = 2; record; telemetry = Some f }) ->
    checkb "fresh incarnation restarts the frame chain" true (f.Request.fseq = 1);
    checkb "frame echoes the request's trace context" true (f.Request.ftrace = Some ("tr-torn", 3));
    checkb "frame carries the worker.execute span" true
      (List.exists (fun (s : Ids_obs.Obs.span_record) -> s.Ids_obs.Obs.sname = "worker.execute") f.Request.fspans);
    let want =
      match Catalog.execute_request ~protocol ~strategy ~trials ~fault:Fault.none with
      | Ok r -> r
      | Error e -> Alcotest.failf "in-process oracle failed: %s" e
    in
    (* Telemetry workers embed a metrics object in the record; compare net
       of it (every other field must agree exactly). *)
    let strip r =
      match Ids_engine.Runlog.of_line r with
      | Ok rec_ -> { rec_ with Ids_engine.Runlog.metrics = None }
      | Error e -> Alcotest.failf "record does not parse: %s" e
    in
    checkb "retried record identical to the oracle net of metrics" true (strip want = strip record)
  | Ok _ -> Alcotest.fail "unexpected response shape"

(* Graceful EOF: closing the request pipe must produce a Flush frame whose
   delta carries everything not yet shipped, so the frame chain telescopes
   to the worker's full ledger even when the worker exits idle. *)
let test_graceful_eof_flush () =
  let req =
    Request.make_estimate ~id:"f1" ~protocol:"sym_dmam" ~strategy:"honest" ~trials:3 ()
  in
  let w = Pool.spawn ~telemetry:true ~wid:0 () in
  checkb "request sent" true (Pool.send w ~attempt:1 req);
  (match read_response w with
  | `Line l -> (
    match Request.response_of_line l with
    | Ok (Request.Estimated { telemetry = Some f; _ }) ->
      checkb "first frame of the incarnation" true (f.Request.fseq = 1)
    | Ok _ -> Alcotest.fail "telemetry worker shipped no frame"
    | Error e -> Alcotest.failf "bad response line: %s" e)
  | `Eof -> Alcotest.fail "worker died");
  Pool.close_writer w;
  (match read_response w with
  | `Line l -> (
    match Request.response_of_line l with
    | Ok (Request.Flush f) ->
      checkb "flush continues the frame chain" true (f.Request.fseq = 2);
      checkb "flush carries no trace context" true (f.Request.ftrace = None)
    | Ok _ -> Alcotest.fail "expected a Flush frame on EOF"
    | Error e -> Alcotest.failf "bad flush line: %s" e)
  | `Eof -> Alcotest.fail "worker exited without flushing");
  (match read_response w with
  | `Eof -> ()
  | `Line l -> Alcotest.failf "unexpected line after the flush: %s" l);
  ignore (Unix.waitpid [] (Pool.pid w));
  Pool.shutdown w

let () =
  Alcotest.run "ids-serve-fork"
    [ ( "serve-fork",
        [ Alcotest.test_case "forked worker: retried result bit-identical" `Quick
            test_forked_worker_retry_bit_identical;
          Alcotest.test_case "torn frame: counted gap, clean retry" `Quick
            test_torn_frame_lost_delta_clean_retry;
          Alcotest.test_case "graceful EOF ships a Flush frame" `Quick test_graceful_eof_flush
        ] )
    ]
