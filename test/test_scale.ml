(* Scale-path contracts (the million-node PR).

   Four families of checks: (1) every Family/Graph generator builds the
   same graph on the dense and sparse backends; (2) pinned protocol
   estimates (dSym, PLS via the randomized labeling scheme, GNI, the
   eps-API hash) replay bit-identically across backend x worker-domain
   count; (3) the streamed Network folds are bit-identical to the array
   primitives, fault layer included; (4) the Apihash protocol itself —
   completeness, deterministic rejection of tampered advice, fault
   behavior — plus the committed BENCH_scale.json artifact's shape. *)

open Ids_graph
module Rng = Ids_bignum.Rng
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Apihash = Ids_proof.Apihash
module Dsym = Ids_proof.Dsym
module Gni = Ids_proof.Gni
module Pls = Ids_proof.Pls
module Rpls = Ids_proof.Rpls
module Outcome = Ids_proof.Outcome
module Stats = Ids_proof.Stats
module Engine = Ids_engine.Engine

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- backend equivalence of generators ------------------------------------ *)

(* Each generator runs once per backend with a fresh identically-seeded rng:
   the repr hint must change the container only, never the draws or edges. *)
let generators =
  [ ("path", fun repr -> Graph.path ~repr 23);
    ("cycle", fun repr -> Graph.cycle ~repr 23);
    ("star", fun repr -> Graph.star ~repr 17);
    ("complete", fun repr -> Graph.complete ~repr 9);
    ("complete_bipartite", fun repr -> Graph.complete_bipartite ~repr 4 5);
    ("grid", fun repr -> Graph.grid ~repr 4 6);
    ("hypercube", fun repr -> Graph.hypercube ~repr 4);
    ("of_prufer", fun repr -> Graph.of_prufer ~repr [| 3; 3; 0; 1; 4 |]);
    ("random_tree", fun repr -> Graph.random_tree ~repr (Rng.create 3) 40);
    ("random_regular", fun repr -> Graph.random_regular ~repr (Rng.create 4) 12 3);
    ("random_gnp", fun repr -> Graph.random_gnp ~repr (Rng.create 5) 20 0.3);
    ("random_connected_gnp", fun repr -> Graph.random_connected_gnp ~repr (Rng.create 6) 20 0.15);
    ("expander", fun repr -> Family.expander ~repr (Rng.create 8) ~n:50 ~degree:6)
  ]

let test_generators_backend_equal () =
  List.iter
    (fun (name, build) ->
      let gd = build Graph.Dense and gs = build Graph.Sparse in
      checkb (name ^ " repr dense") true (Graph.repr gd = Graph.Dense);
      checkb (name ^ " repr sparse") true (Graph.repr gs = Graph.Sparse);
      checkb (name ^ " dense = sparse") true (Graph.equal gd gs);
      checkb (name ^ " sparse = dense") true (Graph.equal gs gd);
      checki (name ^ " edge count") (Graph.edge_count gd) (Graph.edge_count gs);
      checki (name ^ " max degree") (Graph.max_degree gd) (Graph.max_degree gs))
    generators

let test_with_repr_roundtrip () =
  let g = Family.expander (Rng.create 2) ~n:80 ~degree:4 in
  let there = Graph.with_repr Graph.Dense g in
  let back = Graph.with_repr Graph.Sparse there in
  checkb "sparse -> dense equal" true (Graph.equal g there);
  checkb "dense -> sparse equal" true (Graph.equal g back);
  checkb "mutation after conversion is independent" true
    (let h = Graph.with_repr Graph.Dense g in
     Graph.add_edge h 0 40;
     not (Graph.has_edge g 0 40));
  (* The satellite bugfix at the graph level: comparing graphs of
     different sizes answers false instead of raising from Bitset.equal. *)
  checkb "different n compares unequal" false (Graph.equal (Graph.path 3) (Graph.path 4))

let test_expander_shape () =
  let g = Family.expander (Rng.create 9) ~n:101 ~degree:6 in
  checkb "connected" true (Graph.is_connected g);
  checki "edge count nd/2" (101 * 6 / 2) (Graph.edge_count g);
  for v = 0 to 100 do
    checki "regular" 6 (Graph.degree g v)
  done;
  Alcotest.check_raises "odd degree rejected"
    (Invalid_argument "Family.expander: degree must be even and >= 2") (fun () ->
      ignore (Family.expander (Rng.create 1) ~n:10 ~degree:3))

(* --- pinned estimates: backend x domains ---------------------------------- *)

(* The rpls verdict wrapped as an outcome so the engine can drive it. *)
let rpls_outcome g advice seed =
  let v = Rpls.verify_sym ~seed g advice in
  { Outcome.accepted = v.Rpls.accepted;
    max_bits_per_node = v.Rpls.advice_bits_per_node;
    max_response_bits = v.Rpls.verification_bits_per_edge;
    total_bits = 0;
    prover = "rpls"
  }

(* (name, trials, pinned accepts, dense run, sparse run). The accept counts
   are exact pins: completeness of every run below is deterministic per
   seed, and the sparse backend must not move a single verdict. *)
let estimate_configs () =
  let dsym_graph = Family.dsym_graph (Graph.cycle 6) 2 in
  let dsym_d = Dsym.make_instance ~n:6 ~r:2 dsym_graph in
  let dsym_s = Dsym.make_instance ~n:6 ~r:2 (Graph.with_repr Graph.Sparse dsym_graph) in
  let gni_d = Gni.yes_instance (Rng.create 7) 6 in
  let gni_s =
    Gni.make_instance
      (Graph.with_repr Graph.Sparse gni_d.Gni.g0)
      (Graph.with_repr Graph.Sparse gni_d.Gni.g1)
  in
  let sym = Family.random_symmetric (Rng.create 5) 10 in
  let sym_s = Graph.with_repr Graph.Sparse sym in
  let adv_d = Option.get (Pls.Lcp_sym.honest sym) in
  let adv_s = Option.get (Pls.Lcp_sym.honest sym_s) in
  let exp_d = Family.expander ~repr:Graph.Dense (Rng.create 8) ~n:40 ~degree:4 in
  let exp_s = Family.expander ~repr:Graph.Sparse (Rng.create 8) ~n:40 ~degree:4 in
  [ ( "dsym_yes_n6",
      24,
      24,
      (fun seed -> Dsym.run ~seed dsym_d Dsym.honest),
      fun seed -> Dsym.run ~seed dsym_s Dsym.honest );
    ( "gni_yes6_single",
      12,
      1,
      (fun seed -> Gni.run_single ~seed gni_d Gni.honest),
      fun seed -> Gni.run_single ~seed gni_s Gni.honest );
    ("rpls_sym_n10", 12, 12, rpls_outcome sym adv_d, rpls_outcome sym_s adv_s);
    ( "apihash_expander40",
      10,
      10,
      (fun seed -> Apihash.run ~seed ~root:0 exp_d),
      fun seed -> Apihash.run ~seed ~root:0 exp_s )
  ]

let test_estimates_backend_domains () =
  List.iter
    (fun (name, trials, want_accepts, run_dense, run_sparse) ->
      List.iter
        (fun domains ->
          let ed = Stats.acceptance_ci ~domains ~trials run_dense in
          let es = Stats.acceptance_ci ~domains ~trials run_sparse in
          checki (Printf.sprintf "%s accepts (dense, domains=%d)" name domains) want_accepts
            ed.Engine.accepts;
          checkb (Printf.sprintf "%s estimate bit-identical (domains=%d)" name domains) true (ed = es))
        [ 1; 2; 4 ])
    (estimate_configs ())

(* --- streamed folds = array primitives ------------------------------------ *)

let fold_to_array t fold =
  let out = Array.make (Network.n t) None in
  fold (fun () (v : _ Network.node_view) -> out.(v.Network.node) <- Some v.Network.value) ;
  Array.map Option.get out

let test_streaming_matches_arrays () =
  let g = Family.expander (Rng.create 12) ~n:60 ~degree:4 in
  List.iter
    (fun fault ->
      let tag = Fault.to_string fault in
      let ta = Network.create ~fault ~seed:99 g in
      let tf = Network.create ~fault ~seed:99 g in
      (* Challenge round: same draws, same missed flags. *)
      let ca = Network.challenge ta ~bits:7 (fun rng -> Rng.bits rng 7) in
      let cf =
        fold_to_array tf (fun f ->
            Network.challenge_fold tf ~bits:7 ~gen:(fun rng -> Rng.bits rng 7) ~init:() f)
      in
      checkb (tag ^ ": challenge draws equal") true (ca = cf);
      (* Unicast round with a corrupt hook and no on_drop. *)
      let payload = Array.init (Graph.n g) (fun v -> (v * 37) land 127) in
      let ua = Network.unicast ta ~corrupt:(Fault.flip_int_bit ~bits:7) ~bits:7 payload in
      let uf =
        fold_to_array tf (fun f ->
            Network.unicast_fold tf ~corrupt:(Fault.flip_int_bit ~bits:7) ~bits:7
              ~respond:(fun v -> payload.(v))
              ~init:() f)
      in
      checkb (tag ^ ": unicast deliveries equal") true (ua = uf);
      (* Broadcast round (equivocation victim included). *)
      let ba = Network.broadcast_uniform ta ~corrupt:(Fault.flip_int_bit ~bits:9) ~bits:9 301 in
      let bf =
        fold_to_array tf (fun f ->
            Network.broadcast_fold tf ~corrupt:(Fault.flip_int_bit ~bits:9) ~bits:9 301 ~init:() f)
      in
      checkb (tag ^ ": broadcast deliveries equal") true (ba = bf);
      checkb (tag ^ ": missed flags equal") true (Network.take_missed ta = Network.take_missed tf);
      checkb (tag ^ ": cost ledgers equal") true (Network.cost ta = Network.cost tf))
    [ Fault.none;
      Fault.drop_only 0.2;
      Fault.corrupt_only 0.3;
      Fault.make ~drop:0.1 ~corrupt:0.1 ~crash:0.1 ~equivocate:true ()
    ]

(* --- the apihash protocol -------------------------------------------------- *)

let test_apihash_completeness () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let out = Apihash.run ~seed ~root:0 g in
          checkb (Printf.sprintf "%s seed=%d accepts" name seed) true out.Outcome.accepted)
        [ 1; 2; 3 ])
    [ ("petersen", Graph.petersen ());
      ("grid", Graph.grid 5 5);
      ("single", Graph.make 1);
      ("sparse expander", Family.expander (Rng.create 3) ~n:200 ~degree:4)
    ]

let test_apihash_epsilon_small () =
  let g = Graph.petersen () in
  let params = Apihash.params_for ~seed:1 g in
  checkb "eps < 1 at small n" true (Apihash.epsilon params ~n:(Graph.n g) < 1.0)

let test_apihash_soundness () =
  let g = Family.expander (Rng.create 4) ~n:64 ~degree:4 in
  List.iter
    (fun seed ->
      let wrong = Apihash.run ~prover:Apihash.adversary_wrong_claim ~seed ~root:0 g in
      checkb "wrong claim rejected" false wrong.Outcome.accepted;
      List.iter
        (fun node ->
          let bad = Apihash.run ~prover:(Apihash.adversary_corrupt_agg node) ~seed ~root:0 g in
          checkb (Printf.sprintf "corrupt agg at %d rejected" node) false bad.Outcome.accepted)
        [ 0; 17; 63 ])
    [ 1; 2 ]

let test_apihash_faults () =
  let g = Graph.grid 6 6 in
  let all_drop = Apihash.run ~fault:(Fault.drop_only 1.0) ~seed:5 ~root:0 g in
  checkb "total drop rejects" false all_drop.Outcome.accepted;
  let equiv = Apihash.run ~fault:Fault.equivocate_only ~seed:5 ~root:0 g in
  checkb "equivocation caught" false equiv.Outcome.accepted;
  let clean = Apihash.run ~fault:Fault.none ~seed:5 ~root:0 g in
  let bare = Apihash.run ~seed:5 ~root:0 g in
  checkb "zero-rate spec bit-identical" true (clean = bare)

let test_apihash_rejects_bad_root () =
  Alcotest.check_raises "root out of range" (Invalid_argument "Apihash.run: root out of range")
    (fun () -> ignore (Apihash.run ~seed:1 ~root:9 (Graph.path 3)))

(* --- committed benchmark artifact ------------------------------------------ *)

let test_bench_scale_shape () =
  let path =
    match List.find_opt Sys.file_exists [ "../BENCH_scale.json"; "BENCH_scale.json" ] with
    | Some p -> p
    | None -> Alcotest.fail "BENCH_scale.json not committed"
  in
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ids_obs.Json.parse s with
  | Error e -> Alcotest.failf "BENCH_scale.json does not parse: %s" e
  | Ok j ->
    let mem k = Ids_obs.Json.member k j in
    let int_at k =
      match Option.bind (mem k) Ids_obs.Json.to_int with
      | Some v -> v
      | None -> Alcotest.failf "BENCH_scale.json: missing int %S" k
    in
    (* The committed artifact must witness the acceptance criteria: both
       protocols completed end-to-end at n = 10^6 with throughput and
       peak-RSS numbers present. *)
    checki "n is one million" 1_000_000 (int_at "n");
    checkb "full run, not smoke" true (mem "smoke" = Some (Ids_obs.Json.Bool false));
    List.iter
      (fun k -> if mem k = None then Alcotest.failf "BENCH_scale.json: missing %S" k)
      [ "degree"; "repr"; "graph_build_seconds"; "sparse6_bytes"; "pls_tree"; "apihash";
        "apihash_q"; "apihash_copies"; "peak_rss_mb" ];
    List.iter
      (fun proto ->
        let sub k =
          match Option.bind (mem proto) (Ids_obs.Json.member k) with
          | Some v -> v
          | None -> Alcotest.failf "BENCH_scale.json: missing %s.%s" proto k
        in
        checkb (proto ^ " accepted") true (sub "accepted" = Ids_obs.Json.Bool true);
        match Ids_obs.Json.to_float (sub "nodes_per_sec") with
        | Some r -> checkb (proto ^ " nodes_per_sec positive") true (r > 0.)
        | None -> Alcotest.failf "BENCH_scale.json: %s.nodes_per_sec not a number" proto)
      [ "pls_tree"; "apihash" ]

let suite =
  [ ( "scale",
      [ Alcotest.test_case "generators equal across backends" `Quick test_generators_backend_equal;
        Alcotest.test_case "with_repr round-trip" `Quick test_with_repr_roundtrip;
        Alcotest.test_case "expander shape" `Quick test_expander_shape;
        Alcotest.test_case "estimates pinned across backend x domains" `Slow
          test_estimates_backend_domains;
        Alcotest.test_case "streamed folds = array primitives" `Quick test_streaming_matches_arrays;
        Alcotest.test_case "apihash completeness" `Quick test_apihash_completeness;
        Alcotest.test_case "apihash eps < 1 at small n" `Quick test_apihash_epsilon_small;
        Alcotest.test_case "apihash rejects tampered advice" `Quick test_apihash_soundness;
        Alcotest.test_case "apihash under faults" `Quick test_apihash_faults;
        Alcotest.test_case "apihash root validation" `Quick test_apihash_rejects_bad_root;
        Alcotest.test_case "BENCH_scale.json shape" `Quick test_bench_scale_shape
      ] )
  ]
