(* Tests for the fault-injection layer: spec parsing, the determinism and
   zero-rate guarantees, crash/drop/equivocation semantics, the adversary
   registry, and the degradation sweep runner. *)

open Ids_proof
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Rng = Ids_bignum.Rng
module Engine = Ids_engine.Engine
module Sweep = Ids_engine.Sweep
module Runlog = Ids_engine.Runlog

let strials n = Engine.scaled_trials n

(* --- spec construction and parsing -------------------------------------------- *)

let test_spec_roundtrip () =
  let specs =
    [ Fault.none;
      Fault.drop_only 0.1;
      Fault.corrupt_only 0.05;
      Fault.crash_only 0.25;
      Fault.crash_only ~crash_mode:Fault.Crash_vacuous 0.25;
      Fault.equivocate_only;
      Fault.make ~drop:0.1 ~corrupt:0.05 ~crash:0.2 ~crash_mode:Fault.Crash_vacuous
        ~equivocate:true ()
    ]
  in
  List.iter
    (fun s ->
      let label = Fault.to_string s in
      Alcotest.(check bool) (label ^ " round-trips") true (Fault.of_string label = s))
    specs;
  Alcotest.(check string) "none label" "none" (Fault.to_string Fault.none);
  Alcotest.(check bool) "empty string is none" true (Fault.of_string "" = Fault.none);
  Alcotest.(check bool) "spaces tolerated" true
    (Fault.of_string " drop = 0.1 , equivocate " = Fault.make ~drop:0.1 ~equivocate:true ())

let test_spec_invalid () =
  let raises s = match Fault.of_string s with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown key" true (raises "jitter=0.1");
  Alcotest.(check bool) "bad rate" true (raises "drop=lots");
  Alcotest.(check bool) "rate above 1" true (raises "drop=1.5");
  Alcotest.(check bool) "bad crash mode" true (raises "crash_mode=explode");
  Alcotest.(check bool) "make validates" true
    (match Fault.make ~corrupt:(-0.1) () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_spec_is_none () =
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Alcotest.(check bool) "zero rates are none" true (Fault.is_none (Fault.drop_only 0.));
  Alcotest.(check bool) "equivocate is not none" false (Fault.is_none Fault.equivocate_only);
  Alcotest.(check bool) "crash mode alone is none" true
    (Fault.is_none (Fault.crash_only ~crash_mode:Fault.Crash_vacuous 0.))

(* --- zero-fault specs are bit-identical to the un-faulted path ----------------- *)

let test_zero_fault_identical () =
  (* The regression pin of the tentpole: threading ?fault through every
     channel primitive must not perturb the clean path — same acceptance,
     same bit costs, same everything, for every protocol. *)
  List.iter
    (fun (c : Adversary.case) ->
      for seed = 1 to 5 do
        let faulted = c.Adversary.run ~fault:Fault.none seed in
        let clean = c.Adversary.run ~fault:(Fault.drop_only 0.) seed in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s seed %d identical" c.Adversary.protocol c.Adversary.strategy seed)
          true (faulted = clean)
      done)
    (Adversary.cases ())

let test_zero_fault_matches_direct_run () =
  let g = Family.random_symmetric (Rng.create 42) 8 in
  for seed = 1 to 5 do
    let direct = Sym_dam.run ~seed g Sym_dam.honest in
    let via_none = Sym_dam.run ~fault:Fault.none ~seed g Sym_dam.honest in
    Alcotest.(check bool) "fault:none equals no fault argument" true (direct = via_none)
  done

let test_fault_costs_unchanged () =
  (* The ledger records what the prover transmits, not what arrives, so for
     delivery faults (drop/corrupt/equivocate) per-node bit costs are
     identical at any rate. Crash faults are the exception: crashed nodes
     are silent and must not be billed, covered by the tests below. *)
  let heavy = Fault.make ~drop:0.5 ~corrupt:0.5 ~equivocate:true () in
  List.iter
    (fun (c : Adversary.case) ->
      for seed = 1 to 3 do
        let clean = c.Adversary.run ~fault:Fault.none seed in
        let faulted = c.Adversary.run ~fault:heavy seed in
        Alcotest.(check int)
          (Printf.sprintf "%s/%s max bits" c.Adversary.protocol c.Adversary.strategy)
          clean.Outcome.max_bits_per_node faulted.Outcome.max_bits_per_node;
        Alcotest.(check int)
          (Printf.sprintf "%s/%s total bits" c.Adversary.protocol c.Adversary.strategy)
          clean.Outcome.total_bits faulted.Outcome.total_bits
      done)
    (Adversary.cases ())

let test_crashed_nodes_not_charged () =
  (* Regression: challenge/unicast/broadcast used to bill crashed-silent
     nodes for bits they never exchange, inflating crash degradation
     sweeps. Crashed nodes must end every round with a zero ledger while
     live nodes are charged exactly the clean amounts. *)
  let g = Family.random_symmetric (Rng.create 11) 10 in
  let n = Ids_graph.Graph.n g in
  let spec = Fault.crash_only 0.4 in
  let exercise net =
    let resp = Array.make n 3 in
    ignore (Network.challenge net ~bits:5 (fun rng -> Rng.bits rng 5));
    ignore (Network.unicast net ~bits:7 resp);
    ignore (Network.unicast_varbits net ~bits:(fun v -> v + 1) resp);
    ignore (Network.broadcast net ~bits:2 resp)
  in
  let seen_crash = ref false in
  for seed = 1 to 10 do
    let net = Network.create ~fault:spec ~seed g in
    let clean = Network.create ~seed g in
    exercise net;
    exercise clean;
    for v = 0 to n - 1 do
      let cost = Ids_network.Cost.node_total (Network.cost net) v in
      if Network.crashed net v then begin
        seen_crash := true;
        Alcotest.(check int) (Printf.sprintf "seed %d: crashed node %d unbilled" seed v) 0 cost
      end
      else
        Alcotest.(check int)
          (Printf.sprintf "seed %d: live node %d billed as clean" seed v)
          (Ids_network.Cost.node_total (Network.cost clean) v)
          cost
    done
  done;
  Alcotest.(check bool) "crash fault actually exercised" true !seen_crash

let test_crash_total_bits_bounded () =
  (* End-to-end view of the same fix: under crash faults the ledger total
     can only shrink relative to the clean run, never grow. *)
  let spec = Fault.crash_only 0.3 in
  List.iter
    (fun (c : Adversary.case) ->
      for seed = 1 to 3 do
        let clean = c.Adversary.run ~fault:Fault.none seed in
        let faulted = c.Adversary.run ~fault:spec seed in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s total bits bounded" c.Adversary.protocol c.Adversary.strategy)
          true
          (faulted.Outcome.total_bits <= clean.Outcome.total_bits)
      done)
    (Adversary.cases ())

(* --- fault determinism --------------------------------------------------------- *)

let test_fault_determinism () =
  (* Fault decisions are a pure function of (seed, round, node): re-running
     a faulted trial reproduces it exactly. *)
  let spec = Fault.make ~drop:0.2 ~corrupt:0.2 ~crash:0.2 ~equivocate:true () in
  List.iter
    (fun (c : Adversary.case) ->
      for seed = 1 to 5 do
        let a = c.Adversary.run ~fault:spec seed in
        let b = c.Adversary.run ~fault:spec seed in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s seed %d reproducible" c.Adversary.protocol c.Adversary.strategy seed)
          true (a = b)
      done)
    (Adversary.cases ())

(* --- equivocation -------------------------------------------------------------- *)

let test_equivocation_always_caught () =
  (* On a connected graph a split broadcast fails some node's neighbor
     comparison with probability 1: every completeness case must flip from
     all-accept to all-reject under the pure equivocation spec. *)
  List.iter
    (fun (c : Adversary.case) ->
      if c.Adversary.kind = Adversary.Completeness then
        for seed = 1 to 20 do
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s seed %d accepts clean" c.Adversary.protocol c.Adversary.strategy seed)
            true
            (c.Adversary.run ~fault:Fault.none seed).Outcome.accepted;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s seed %d rejects equivocation" c.Adversary.protocol
               c.Adversary.strategy seed)
            false
            (c.Adversary.run ~fault:Fault.equivocate_only seed).Outcome.accepted
        done)
    (Adversary.cases ())

(* --- crash semantics ----------------------------------------------------------- *)

let test_crash_modes () =
  let g = Graph.petersen () in
  for seed = 1 to 5 do
    let rejecting = Sym_dmam.run ~fault:(Fault.crash_only 1.0) ~seed g Sym_dmam.honest in
    Alcotest.(check bool) "all crashed, reject mode" false rejecting.Outcome.accepted;
    let vacuous =
      Sym_dmam.run ~fault:(Fault.crash_only ~crash_mode:Fault.Crash_vacuous 1.0) ~seed g
        Sym_dmam.honest
    in
    (* Degenerate by design: with every verdict skipped, the all-nodes-accept
       rule is vacuously true. *)
    Alcotest.(check bool) "all crashed, vacuous mode" true vacuous.Outcome.accepted
  done

let test_crash_set_deterministic () =
  let f1 = Fault.create ~seed:9 ~n:20 (Fault.crash_only 0.5) in
  let f2 = Fault.create ~seed:9 ~n:20 (Fault.crash_only 0.5) in
  let set f = List.init 20 (Fault.crashed f) in
  Alcotest.(check bool) "same seed, same crash set" true (set f1 = set f2);
  let any = List.exists Fun.id (set f1) and all = List.for_all Fun.id (set f1) in
  Alcotest.(check bool) "rate 0.5 crashes someone at n=20" true any;
  Alcotest.(check bool) "rate 0.5 spares someone at n=20" false all

(* --- drop semantics ------------------------------------------------------------ *)

let test_drop_rejects_or_defaults () =
  let g = Graph.cycle 6 in
  (* With drop=1 and no on_drop default, every node misses the round and
     decide rejects even though the local predicate accepts. *)
  let net = Network.create ~fault:(Fault.drop_only 1.0) ~seed:3 g in
  let (_ : int array) = Network.unicast net ~bits:4 (Array.make 6 7) in
  Alcotest.(check bool) "all nodes missed" true
    (List.for_all (Network.missed net) (List.init 6 Fun.id));
  Alcotest.(check bool) "decide rejects" false (Network.decide net (fun _ -> true));
  (* With an on_drop default the round degrades to the protocol-defined
     value instead. *)
  let net' = Network.create ~fault:(Fault.drop_only 1.0) ~seed:3 g in
  let got = Network.unicast net' ~on_drop:0 ~bits:4 (Array.make 6 7) in
  Alcotest.(check (array int)) "defaults delivered" (Array.make 6 0) got;
  Alcotest.(check bool) "nobody missed" true
    (not (List.exists (Network.missed net') (List.init 6 Fun.id)));
  Alcotest.(check bool) "decide accepts" true (Network.decide net' (fun _ -> true))

let test_dropped_challenge_rejects () =
  let g = Graph.cycle 6 in
  let net = Network.create ~fault:(Fault.drop_only 1.0) ~seed:3 g in
  let (_ : int array) = Network.challenge net ~bits:4 (fun rng -> Rng.bits rng 4) in
  Alcotest.(check bool) "challenge drop marks sender missed" true (Network.missed net 0);
  Alcotest.(check bool) "decide rejects" false (Network.decide net (fun _ -> true))

(* --- GNI honors the fault layer's decision semantics --------------------------- *)

(* Regression: GNI's repetition loop used to compute acceptance from the
   local validity array alone, so drop and crash faults had no effect on its
   outcomes. Drops must now invalidate the affected node for the repetition
   they occur in, and crashes must be judged per the spec's crash mode. *)

let gni_instance = lazy (Gni.yes_instance (Rng.create 7) 6)

let test_gni_drop_degrades () =
  let inst = Lazy.force gni_instance in
  let params = Gni.params_for ~seed:11 inst in
  let hits fault =
    let count = ref 0 in
    for seed = 1 to 40 do
      if (Gni.run_single ?fault ~params ~seed inst Gni.honest).Outcome.accepted then incr count
    done;
    !count
  in
  let clean = hits None in
  let dropped = hits (Some (Fault.drop_only 0.3)) in
  Alcotest.(check bool) "clean single-repetition hits occur" true (clean > 0);
  Alcotest.(check bool)
    (Printf.sprintf "drop degrades completeness (%d -> %d hits of 40)" clean dropped)
    true (dropped < clean);
  (* With every message dropped each node misses some round, so even a
     locally valid repetition cannot be a hit. *)
  Alcotest.(check bool) "total drop rejects" false
    (Gni.run_single ~fault:(Fault.drop_only 1.0) ~params ~seed:1 inst Gni.honest).Outcome.accepted

let test_gni_crash_modes () =
  let inst = Lazy.force gni_instance in
  let params = Gni.params_for ~repetitions:400 ~seed:11 inst in
  Alcotest.(check bool) "clean amplified run accepts" true
    (Gni.run ~params ~seed:1 inst Gni.honest).Outcome.accepted;
  for seed = 1 to 3 do
    Alcotest.(check bool) "Crash_reject forces rejection" false
      (Gni.run ~fault:(Fault.crash_only 1.0) ~params ~seed inst Gni.honest).Outcome.accepted;
    Alcotest.(check bool) "Crash_vacuous vacuously accepts" true
      (Gni.run ~fault:(Fault.crash_only ~crash_mode:Fault.Crash_vacuous 1.0) ~params ~seed inst
         Gni.honest)
        .Outcome.accepted;
    Alcotest.(check bool) "total drop rejects the amplified run" false
      (Gni.run ~fault:(Fault.drop_only 1.0) ~params ~seed inst Gni.honest).Outcome.accepted
  done

(* --- corrupt hooks ------------------------------------------------------------- *)

let test_corrupt_hooks_change_value () =
  (* The equivocation guarantee rests on every hook returning a distinct
     value; exercise each over many draws. *)
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let x = Rng.bits rng 10 in
    Alcotest.(check bool) "flip_int_bit differs" true (Fault.flip_int_bit ~bits:10 rng x <> x)
  done;
  let module Nat = Ids_bignum.Nat in
  for i = 1 to 50 do
    let x = Nat.of_int i in
    let y = Fault.flip_nat_bit ~bits:8 rng x in
    Alcotest.(check bool) "flip_nat_bit differs" true (not (Nat.equal x y))
  done;
  Alcotest.(check bool) "flip_bool differs" true (Fault.flip_bool rng true = false);
  for n = 2 to 6 do
    let a = Array.init n Fun.id in
    let b = Fault.swap_entries rng a in
    Alcotest.(check bool) "swap_entries differs" true (a <> b);
    Alcotest.(check bool) "swap_entries preserves multiset" true
      (List.sort compare (Array.to_list b) = Array.to_list a);
    Alcotest.(check bool) "input untouched" true (a = Array.init n Fun.id)
  done;
  Alcotest.(check bool) "swap_entries singleton unchanged" true
    (Fault.swap_entries rng [| 42 |] = [| 42 |])

(* --- adversary registry -------------------------------------------------------- *)

let test_registry_lookup () =
  Alcotest.(check bool) "sym_dmam random-perm" true
    (Result.is_ok (Adversary.lookup Adversary.sym_dmam "random-perm"));
  Alcotest.(check bool) "dsym wrong-permutation" true
    (Result.is_ok (Adversary.lookup Adversary.dsym "wrong-permutation"));
  Alcotest.(check bool) "gni biased-hash" true
    (Result.is_ok (Adversary.lookup Adversary.gni "biased-hash"));
  (match Adversary.lookup Adversary.sym_dam "nope" with
  | Ok _ -> Alcotest.fail "lookup of unknown name succeeded"
  | Error msg ->
    (* The error path must name the strategies that do exist. *)
    let contains sub =
      let n = String.length msg and m = String.length sub in
      let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
      go 0
    in
    let mentions s =
      Alcotest.(check bool) (Printf.sprintf "error mentions %s" s) true (contains s)
    in
    mentions "nope";
    List.iter mentions (Adversary.names Adversary.sym_dam));
  (* Every sweep-case strategy resolves through the registry it names. *)
  List.iter
    (fun (c : Adversary.case) ->
      let resolves =
        match c.Adversary.protocol with
        | "sym_dmam" -> Result.is_ok (Adversary.lookup Adversary.sym_dmam c.Adversary.strategy)
        | "sym_dam" -> Result.is_ok (Adversary.lookup Adversary.sym_dam c.Adversary.strategy)
        | "dsym" -> Result.is_ok (Adversary.lookup Adversary.dsym c.Adversary.strategy)
        | "gni" -> Result.is_ok (Adversary.lookup Adversary.gni c.Adversary.strategy)
        | _ -> c.Adversary.strategy = "honest" || c.Adversary.protocol = "pls_tree"
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s resolves" c.Adversary.protocol c.Adversary.strategy)
        true
        (c.Adversary.strategy = "honest" || resolves))
    (Adversary.cases ());
  let unique names = List.sort_uniq compare names = List.sort compare names in
  List.iter
    (fun names -> Alcotest.(check bool) "names unique" true (unique names))
    [ Adversary.names Adversary.sym_dmam;
      Adversary.names Adversary.sym_dam;
      Adversary.names Adversary.dsym;
      Adversary.names Adversary.gni
    ]

let test_registry_cases_clean_rates () =
  (* Completeness cases accept with rate 1 at fault zero; soundness cases
     stay under the Definition 2 threshold. *)
  List.iter
    (fun (c : Adversary.case) ->
      let trials = strials 30 in
      let est =
        Engine.run ~trials (fun seed ->
            Stats.trial_of_outcome (c.Adversary.run ~fault:Fault.none seed))
      in
      let name = Printf.sprintf "%s/%s" c.Adversary.protocol c.Adversary.strategy in
      match c.Adversary.kind with
      | Adversary.Completeness ->
        Alcotest.(check (float 0.)) (name ^ " completeness rate 1") 1.0 est.Engine.rate
      | Adversary.Soundness ->
        Alcotest.(check bool)
          (Printf.sprintf "%s soundness rate %.3f < 1/3" name est.Engine.rate)
          true
          (est.Engine.rate < 1. /. 3.))
    (Adversary.cases ())

let test_wrong_permutation_rejected () =
  (* Deterministic rejection even on YES instances: the verifiers recompute
     b-terms under the true sigma. *)
  let core = Family.random_asymmetric (Rng.create 8) 8 in
  let inst = Dsym.make_instance ~n:8 ~r:2 (Family.dsym_graph core 2) in
  for seed = 1 to 10 do
    Alcotest.(check bool) "wrong permutation rejected" false
      (Dsym.run ~seed inst Dsym.adversary_wrong_permutation).Outcome.accepted
  done

let test_pls_off_by_one_rejected () =
  List.iter
    (fun g ->
      let o = Adversary.run_pls_off_by_one g 0 in
      Alcotest.(check bool) "off-by-one forgery rejected" false o.Outcome.accepted;
      (* The honest advice for the same tree is accepted, so the forgery is
         the only difference. *)
      let honest = Pls.Tree.verify g (Pls.Tree.honest g 0) in
      Alcotest.(check bool) "honest advice accepted" true honest.Pls.accepted)
    [ Graph.cycle 8; Graph.petersen (); Family.random_asymmetric (Rng.create 21) 10 ]

(* --- sweep runner -------------------------------------------------------------- *)

let sweep_case () =
  List.find (fun c -> c.Adversary.protocol = "sym_dmam") (Adversary.cases ())

let test_sweep_deterministic_across_domains () =
  (* The acceptance criterion: fault-sweep results are bit-identical for
     IDS_DOMAINS in {1, 2, 4}. *)
  let c = sweep_case () in
  let specs = [ Fault.none; Fault.drop_only 0.1; Fault.equivocate_only ] in
  let run domains =
    Runlog.set_sink None;
    List.map
      (fun (p : _ Sweep.point) -> (p.Sweep.label, p.Sweep.estimate))
      (Sweep.run ~domains ~protocol:"sym_dmam" ~n:c.Adversary.n ~prover:"honest"
         ~trials:(strials 20) ~label:Fault.to_string ~specs (fun spec seed ->
           Stats.trial_of_outcome (c.Adversary.run ~fault:spec seed)))
  in
  let one = run 1 in
  List.iter
    (fun domains ->
      let other = run domains in
      List.iter2
        (fun (l1, (e1 : Engine.estimate)) (l2, (e2 : Engine.estimate)) ->
          Alcotest.(check string) "same labels" l1 l2;
          Alcotest.(check bool)
            (Printf.sprintf "%s identical at %d domains" l1 domains)
            true
            (e1.Engine.accepts = e2.Engine.accepts
            && e1.Engine.trials = e2.Engine.trials
            && e1.Engine.mean_bits = e2.Engine.mean_bits
            && e1.Engine.max_bits = e2.Engine.max_bits))
        one other)
    [ 2; 4 ]

let test_sweep_logs_fault_label () =
  let path = Filename.temp_file "ids_sweep_test" ".jsonl" in
  let oc = open_out path in
  Runlog.set_sink (Some oc);
  let c = sweep_case () in
  let (_ : Fault.spec Sweep.point list) =
    Sweep.run ~domains:1 ~protocol:"sym_dmam" ~n:c.Adversary.n ~prover:"honest" ~trials:2
      ~label:Fault.to_string
      ~specs:[ Fault.drop_only 0.25 ]
      (fun spec seed -> Stats.trial_of_outcome (c.Adversary.run ~fault:spec seed))
  in
  Runlog.set_sink None;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  let contains sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema_version present" true
    (contains (Printf.sprintf "\"schema_version\":%d" Runlog.schema_version));
  Alcotest.(check bool) "fault label present" true (contains "\"fault\":\"drop=0.25\"")

let suite =
  [ ( "fault-spec",
      [ Alcotest.test_case "to_string/of_string round-trip" `Quick test_spec_roundtrip;
        Alcotest.test_case "invalid specs rejected" `Quick test_spec_invalid;
        Alcotest.test_case "is_none" `Quick test_spec_is_none
      ] );
    ( "fault-injection",
      [ Alcotest.test_case "zero-rate spec is bit-identical" `Quick test_zero_fault_identical;
        Alcotest.test_case "fault:none equals direct run" `Quick test_zero_fault_matches_direct_run;
        Alcotest.test_case "bit costs unchanged under faults" `Quick test_fault_costs_unchanged;
        Alcotest.test_case "crashed nodes not charged" `Quick test_crashed_nodes_not_charged;
        Alcotest.test_case "crash shrinks ledger total" `Quick test_crash_total_bits_bounded;
        Alcotest.test_case "faulted runs reproducible" `Quick test_fault_determinism;
        Alcotest.test_case "equivocation always caught (connected)" `Slow
          test_equivocation_always_caught;
        Alcotest.test_case "crash modes" `Quick test_crash_modes;
        Alcotest.test_case "crash set deterministic" `Quick test_crash_set_deterministic;
        Alcotest.test_case "drop rejects or defaults" `Quick test_drop_rejects_or_defaults;
        Alcotest.test_case "dropped challenge rejects" `Quick test_dropped_challenge_rejects;
        Alcotest.test_case "GNI completeness degrades under drop" `Slow test_gni_drop_degrades;
        Alcotest.test_case "GNI crash modes honored" `Slow test_gni_crash_modes;
        Alcotest.test_case "corrupt hooks always change the value" `Quick
          test_corrupt_hooks_change_value
      ] );
    ( "adversary-registry",
      [ Alcotest.test_case "lookup and names" `Quick test_registry_lookup;
        Alcotest.test_case "clean completeness/soundness rates" `Slow test_registry_cases_clean_rates;
        Alcotest.test_case "wrong-permutation rejected" `Quick test_wrong_permutation_rejected;
        Alcotest.test_case "PLS off-by-one rejected" `Quick test_pls_off_by_one_rejected
      ] );
    ( "fault-sweep",
      [ Alcotest.test_case "bit-identical across domains" `Slow test_sweep_deterministic_across_domains;
        Alcotest.test_case "logs schema_version and fault label" `Quick test_sweep_logs_fault_label
      ] )
  ]
