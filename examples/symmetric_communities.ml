(* Unrestricted GNI on symmetric graphs — the case the basic protocol of
   Section 4 explicitly sets aside and fixes with the Goldwasser-Sipser
   automorphism-compensation trick.

   Scenario: a platform hosts two mirror-structured communities (each has
   internal symmetry, e.g. paired moderator roles). A regulator suspects one
   is a disguised copy of the other; the platform claims they are genuinely
   different. Because the communities are symmetric, applying different
   permutations can yield the same graph, so naive set-size estimation
   under-counts: the prover must also exhibit an automorphism with each
   response, restoring |S| to exactly 2 x n! (different) vs n! (copies).

   Run with:  dune exec examples/symmetric_communities.exe *)

module Graph = Ids_graph.Graph
module Iso = Ids_graph.Iso
module Rng = Ids_bignum.Rng
open Ids_proof

let () =
  let rng = Rng.create 2718 in
  print_endline "=== Unrestricted GNI: symmetric communities ===\n";
  let yes = Gni_full.yes_instance rng 6 in
  Printf.printf "community A: 6 members, |Aut| = %d (symmetric!)\n"
    (List.length (Lazy.force yes.Gni_full.aut0));
  Printf.printf "community B: 6 members, |Aut| = %d\n" (List.length (Lazy.force yes.Gni_full.aut1));
  Printf.printf "ground truth: isomorphic = %b\n\n" (Iso.are_isomorphic yes.Gni_full.g0 yes.Gni_full.g1);

  (* Show why the restricted protocol refuses this instance. *)
  (match Gni.make_instance yes.Gni_full.g0 yes.Gni_full.g1 with
  | exception Invalid_argument msg -> Printf.printf "basic protocol refuses: %s\n" msg
  | _ -> print_endline "unexpected: basic protocol accepted a symmetric instance");

  (* The compensated candidate sets have exactly the sizes the analysis
     needs, symmetry notwithstanding. *)
  Printf.printf "compensated |S|: %d (= 2 x 6! — every copy carries its automorphisms)\n\n"
    (Array.length (Lazy.force yes.Gni_full.candidates));

  let params = Gni_full.params_for ~repetitions:400 ~seed:3 yes in
  let o = Gni_full.run ~params ~seed:9 yes Gni_full.honest in
  Printf.printf "protocol verdict: %s (%d bits per member)\n"
    (if o.Outcome.accepted then "ACCEPT — communities are genuinely different" else "REJECT")
    o.Outcome.max_bits_per_node;

  print_endline "\n=== And when community B *is* a disguised copy ===\n";
  let no = Gni_full.no_instance rng 6 in
  Printf.printf "compensated |S|: %d (= 6! — the two sides contribute the same pairs)\n"
    (Array.length (Lazy.force no.Gni_full.candidates));
  let params = Gni_full.params_for ~repetitions:400 ~seed:4 no in
  let o = Gni_full.run ~params ~seed:10 no Gni_full.honest in
  Printf.printf "protocol verdict: %s\n"
    (if o.Outcome.accepted then "ACCEPT (soundness failure!)" else "REJECT — the copy was caught");

  print_endline "\n=== A cheating platform forging the automorphism ===\n";
  let module Engine = Ids_engine.Engine in
  let est =
    Stats.acceptance_ci ~trials:100 (fun seed ->
        Gni_full.run_single ~params ~seed no Gni_full.adversary_fake_automorphism)
  in
  Printf.printf
    "fake-automorphism adversary per-repetition rate: %.2f, 95%% CI [%.3f, %.3f]\n\
     (no better than honest -- the post-commitment audit hash of the second\n\
     Arthur round unmasks every forged alpha)\n"
    est.Engine.rate est.Engine.ci_low est.Engine.ci_high
