(* Certifying the output of a distributed algorithm — the classic motivation
   for proof labeling schemes (Section 1 of the paper; scheme from
   Korman-Kutten-Peleg).

   A distributed BFS computes a spanning tree and stores, at each node, the
   root, its parent, and its distance from the root. Later — long after the
   algorithm ran — the nodes can re-verify in one communication round with
   their neighbors that the stored labels still describe a spanning tree,
   catching corrupted state.

   Run with:  dune exec examples/certified_spanning_tree.exe *)

module Graph = Ids_graph.Graph
module Rng = Ids_bignum.Rng
open Ids_proof

let () =
  let rng = Rng.create 11 in
  let g = Graph.random_connected_gnp rng 30 0.15 in
  Printf.printf "network: %d nodes, %d edges\n\n" (Graph.n g) (Graph.edge_count g);

  (* The "distributed algorithm" runs and leaves its certified output. *)
  let advice = Pls.Tree.honest g 0 in
  let v = Pls.Tree.verify g advice in
  Printf.printf "fresh labels: %s (advice: %d bits per node)\n"
    (if v.Pls.accepted then "verified" else "REJECTED")
    v.Pls.advice_bits_per_node;

  (* Fault injection: corrupt one node's stored distance. *)
  let corrupt = { advice with Pls.Tree.dist = Array.copy advice.Pls.Tree.dist } in
  corrupt.Pls.Tree.dist.(17) <- corrupt.Pls.Tree.dist.(17) + 5;
  let v = Pls.Tree.verify g corrupt in
  Printf.printf "corrupted distance at node 17: %s\n"
    (if v.Pls.accepted then "verified (BAD)" else "caught by the local checks");

  (* Fault injection: re-point a parent across a non-edge. *)
  let corrupt = { advice with Pls.Tree.parent = Array.copy advice.Pls.Tree.parent } in
  let v17 = 17 in
  let non_neighbor =
    let rec find u = if u <> v17 && not (Graph.has_edge g v17 u) then u else find (u + 1) in
    find 0
  in
  corrupt.Pls.Tree.parent.(v17) <- non_neighbor;
  let v = Pls.Tree.verify g corrupt in
  Printf.printf "parent pointer across a non-edge: %s\n"
    (if v.Pls.accepted then "verified (BAD)" else "caught by the local checks");

  (* Fault injection: a plausible-looking cycle (two nodes swap subtrees). *)
  let corrupt =
    { Pls.Tree.root = advice.Pls.Tree.root;
      parent = Array.copy advice.Pls.Tree.parent;
      dist = Array.map (fun d -> d + 1) advice.Pls.Tree.dist
    }
  in
  let v = Pls.Tree.verify g corrupt in
  Printf.printf "all distances shifted by one: %s\n"
    (if v.Pls.accepted then "verified (BAD)" else "caught by the local checks");

  (* Detection rate over random single-label corruptions, estimated with the
     parallel trial engine directly (the trial is a local verification, not a
     prover exchange, so it bypasses Stats/Outcome). *)
  let module Engine = Ids_engine.Engine in
  let module Accum = Ids_engine.Accum in
  let est =
    Engine.run ~trials:500 (fun seed ->
        let r = Rng.create (1000 + seed) in
        let corrupt = { advice with Pls.Tree.dist = Array.copy advice.Pls.Tree.dist } in
        let victim = Rng.int r (Graph.n g) in
        corrupt.Pls.Tree.dist.(victim) <- corrupt.Pls.Tree.dist.(victim) + 1 + Rng.int r 5;
        let verdict = Pls.Tree.verify g corrupt in
        { Accum.accepted = not verdict.Pls.accepted; bits = verdict.Pls.advice_bits_per_node })
  in
  Printf.printf "\nrandom single-distance corruptions caught: %d/%d (rate %.3f, 95%% CI [%.3f, %.3f])\n"
    est.Engine.accepts est.Engine.trials est.Engine.rate est.Engine.ci_low est.Engine.ci_high
