(* Degradation: what happens to an interactive distributed proof when the
   network misbehaves?

   The paper's model assumes perfect synchronous channels. This example
   injects faults into Protocol 1 on the Petersen graph and watches the two
   halves of Definition 2 respond differently:

   - completeness (honest prover on a YES instance) degrades gracefully as
     messages drop or garble — each fault can only turn an accept into a
     reject;
   - soundness (cheating prover on a NO instance) never gets worse, with one
     instructive exception: crashed nodes whose verdicts are vacuously
     skipped can mask the one node that would have rejected.

   Run with:  dune exec examples/degradation.exe *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Fault = Ids_network.Fault
module Engine = Ids_engine.Engine
open Ids_proof

let grid =
  [ Fault.none;
    Fault.drop_only 0.02;
    Fault.drop_only 0.1;
    Fault.corrupt_only 0.02;
    Fault.corrupt_only 0.1;
    Fault.crash_only 0.1;
    Fault.crash_only ~crash_mode:Fault.Crash_vacuous 0.1;
    Fault.equivocate_only
  ]

let sweep title run =
  Printf.printf "%s\n  %-32s | %7s %15s\n" title "fault" "acc" "95% CI";
  List.iter
    (fun spec ->
      let fault = if Fault.is_none spec then None else Some spec in
      let e = Stats.acceptance_ci ~trials:120 (fun seed -> run ?fault seed) in
      Printf.printf "  %-32s | %7.3f [%.3f, %.3f]\n" (Fault.to_string spec) e.Engine.rate
        e.Engine.ci_low e.Engine.ci_high)
    grid;
  print_newline ()

let () =
  print_endline "=== Protocol 1 under network faults ===\n";

  (* Completeness: the honest prover proving the Petersen graph symmetric. *)
  let yes = Graph.petersen () in
  sweep "honest prover, YES instance (completeness):" (fun ?fault seed ->
      Sym_dmam.run ?fault ~seed yes Sym_dmam.honest);

  (* Soundness: a cheating prover claiming an asymmetric graph is symmetric. *)
  let no = Family.random_asymmetric (Ids_bignum.Rng.create 7) 10 in
  let cheat = Result.get_ok (Adversary.lookup Adversary.sym_dmam "random-perm") in
  sweep "random-perm adversary, NO instance (soundness):" (fun ?fault seed ->
      Sym_dmam.run ?fault ~seed no cheat);

  print_endline "Reading the tables: every equivocation run rejects (the broadcast";
  print_endline "consistency check catches the split on a connected graph), and the only";
  print_endline "fault that can help a cheater is crash_mode=vacuous — silently skipping";
  print_endline "crashed verdicts may skip the one node that would have rejected."
