(* The exponential separation between distributed NP and distributed AM
   (Theorem 1.2 / Section 3.3), measured.

   For Dumbbell Symmetry instances of growing size we compare

   - the advice length of the locally checkable proof for Sym (the
     Theta(n^2) baseline; Omega(n^2) is forced by Göös-Suomela), with
   - the measured per-node communication of the one-round dAM protocol
     (O(log n)).

   Also prints the Theorem 1.4 packing floor: the Omega(log log n) bits any
   dAM protocol for Sym must use.

   Run with:  dune exec examples/separation.exe *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Rng = Ids_bignum.Rng
open Ids_proof

let () =
  let rng = Rng.create 5 in
  print_endline "Dumbbell Symmetry: non-interactive (LCP) vs one-round interactive (dAM)";
  print_endline "";
  Printf.printf "%8s %10s | %14s %14s %10s | %14s\n" "side n" "vertices" "LCP bits/node" "dAM bits/node"
    "ratio" "packing floor";
  List.iter
    (fun n ->
      let r = 2 in
      let f = Family.random_asymmetric rng n in
      let g = Family.dsym_graph f r in
      let inst = Dsym.make_instance ~n ~r g in
      let o = Dsym.run ~seed:3 inst Dsym.honest in
      assert o.Outcome.accepted;
      let lcp_bits = Pls.Lcp_sym.advice_bits g in
      let size = Graph.n g in
      Printf.printf "%8d %10d | %14d %14d %9.1fx | %11d bit\n" n size lcp_bits
        o.Outcome.max_bits_per_node
        (float_of_int lcp_bits /. float_of_int o.Outcome.max_bits_per_node)
        (Ids_lowerbound.Packing.min_protocol_length size))
    [ 8; 16; 32; 64; 128 ];
  print_endline "";
  print_endline "The LCP column grows quadratically; the dAM column logarithmically —";
  print_endline "the exponential separation of Theorem 1.2. The packing floor is the";
  print_endline "Omega(log log n) lower bound of Theorem 1.4 (for Sym on dumbbells).";

  (* Definition 2's thresholds, settled with as few trials as the evidence
     allows: the SPRT engine stops as soon as "rate >= 2/3" or "rate <= 1/3"
     is decided at error level 1e-3. *)
  print_endline "\nDefinition 2 check for n = 16 (SPRT early stopping, alpha = beta = 1e-3):";
  let module Engine = Ids_engine.Engine in
  let module Sprt = Ids_engine.Sprt in
  let f = Family.random_asymmetric rng 16 in
  let inst = Dsym.make_instance ~n:16 ~r:2 (Family.dsym_graph f 2) in
  let describe side run =
    let e, d = Stats.threshold_ci ~max_trials:400 run in
    Printf.printf "  %s instance: %s after %d/400 trials (rate %.3f, 95%% CI [%.3f, %.3f])\n" side
      (match d with
      | Some Sprt.Above -> "rate >= 2/3 decided"
      | Some Sprt.Below -> "rate <= 1/3 decided"
      | None -> "undecided")
      e.Engine.trials e.Engine.rate e.Engine.ci_low e.Engine.ci_high
  in
  let cheat = Result.get_ok (Adversary.lookup Adversary.dsym "consistent") in
  describe "YES" (fun seed -> Dsym.run ~seed inst Dsym.honest);
  describe "NO" (fun seed ->
      (* per-seed perturbation rng: trial functions must be pure in the seed *)
      let bad = Dsym.make_instance ~n:16 ~r:2 (Family.dsym_perturbed (Rng.create (47 + seed)) f 2) in
      Dsym.run ~seed bad cheat)
