(* Quickstart: prove to a network that its graph is symmetric.

   Builds the Petersen graph (vertex-transitive, hence very symmetric), runs
   Protocol 1 — the paper's dMAM[O(log n)] protocol — with the honest prover,
   and then shows that the same prover cannot sell a false statement about an
   asymmetric graph.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
open Ids_proof

let describe name g =
  Printf.printf "%s: %d nodes, %d edges, symmetric = %b\n" name (Graph.n g) (Graph.edge_count g)
    (Iso.is_symmetric g)

let () =
  print_endline "=== Interactive distributed proof of Graph Symmetry (Protocol 1) ===\n";

  (* A YES instance: the Petersen graph. *)
  let g = Graph.petersen () in
  describe "network" g;
  let outcome = Sym_dmam.run ~seed:2024 g Sym_dmam.honest in
  Printf.printf "honest prover: %s\n"
    (if outcome.Outcome.accepted then "all nodes ACCEPT" else "some node REJECTED");
  Printf.printf "communication: %d bits per node (max), %d bits total\n\n"
    outcome.Outcome.max_bits_per_node outcome.Outcome.total_bits;

  (* The witness the prover found. *)
  (match Iso.find_nontrivial_automorphism g with
  | Some rho -> Printf.printf "witness automorphism: %s\n\n" (Format.asprintf "%a" Ids_graph.Perm.pp rho)
  | None -> assert false);

  (* A NO instance: an asymmetric graph. No prover can do better than a hash
     collision; estimate the acceptance rate of a cheating prover. *)
  let a = Family.random_asymmetric (Ids_bignum.Rng.create 7) 10 in
  describe "asymmetric network" a;
  let cheat = Result.get_ok (Adversary.lookup Adversary.sym_dmam "random-perm") in
  let est = Stats.acceptance_ci ~trials:200 (fun seed -> Sym_dmam.run ~seed a cheat) in
  let module Engine = Ids_engine.Engine in
  Printf.printf
    "cheating prover accepted %d/%d times, 95%% CI [%.3f, %.3f]\n\
     (soundness error <= 1/3 required; collision bound %.4f)\n"
    est.Engine.accepts est.Engine.trials est.Engine.ci_low est.Engine.ci_high
    (Ids_hash.Linear.collision_bound ~n:10 ~p:(Sym_dmam.params_for ~seed:1 a).Sym_dmam.p);

  (* Compare against "distributed NP": the locally checkable proof needs the
     whole adjacency matrix at every node. *)
  match Pls.Lcp_sym.honest g with
  | Some advice ->
    let v = Pls.Lcp_sym.verify g advice in
    Printf.printf "\nnon-interactive baseline (LCP): %d bits per node vs %d interactive — %.0fx saving\n"
      v.Pls.advice_bits_per_node outcome.Outcome.max_bits_per_node
      (float_of_int v.Pls.advice_bits_per_node /. float_of_int outcome.Outcome.max_bits_per_node)
  | None -> assert false
