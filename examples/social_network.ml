(* The paper's motivating scenario (Section 1): a data center that knows the
   whole topology of a social network wants to convince the member devices —
   each of which sees only its own friend list — of a global structural fact,
   without the devices trusting the data center.

   Two claims are demonstrated:

   1. "Your community graph has a non-trivial symmetry" — e.g. two groups of
      members are structurally interchangeable, which is evidence of
      mirrored/duplicated community structure. Protocol 1 (dMAM) proves it
      with O(log n) bits per device.

   2. "These two communities are structurally different" (not isomorphic) —
      e.g. an allegedly copied botnet subcommunity is in fact not a copy.
      The distributed Goldwasser–Sipser protocol (dAMAM) proves it with
      O(n log n) bits per device.

   Run with:  dune exec examples/social_network.exe *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Rng = Ids_bignum.Rng
open Ids_proof

(* A "social network" with planted mirror structure: two copies of a random
   community joined member-by-member (think: two departments with identical
   org charts, bridged by collaborations). *)
let mirrored_network rng n = Family.random_symmetric rng n

let () =
  let rng = Rng.create 99 in
  print_endline "=== Scenario 1: the data center proves the network is symmetric ===\n";
  let network = mirrored_network rng 40 in
  Printf.printf "social network: %d members, %d friendships\n" (Graph.n network)
    (Graph.edge_count network);
  let o = Sym_dmam.run ~seed:5 network Sym_dmam.honest in
  Printf.printf "protocol 1 (dMAM): %s, %d bits per device\n"
    (if o.Outcome.accepted then "ACCEPTED" else "REJECTED")
    o.Outcome.max_bits_per_node;
  Printf.printf "for comparison, shipping the full topology would cost %d bits per device\n\n"
    (Graph.n network * Graph.n network);

  print_endline "=== Scenario 2: the data center proves two communities differ ===\n";
  (* Community 0 is the network the devices communicate over; community 1 is
     handed to each device as input (its own row of the other community's
     adjacency matrix, e.g. fetched from a public log). *)
  let inst = Gni.yes_instance rng 7 in
  Printf.printf "community sizes: %d members each\n" 7;
  Printf.printf "ground truth: isomorphic = %b\n" (Iso.are_isomorphic inst.Gni.g0 inst.Gni.g1);
  let params = Gni.params_for ~repetitions:400 ~seed:8 inst in
  Printf.printf "GS hash range q = %d (prime ~ 4..8 x 7!), %d repetitions, threshold %d\n" params.Gni.q
    params.Gni.repetitions params.Gni.threshold;
  let o = Gni.run ~params ~seed:21 inst Gni.honest in
  Printf.printf "protocol (dAMAM): %s, %d bits per device total (%d per repetition)\n"
    (if o.Outcome.accepted then "ACCEPTED — communities are NOT isomorphic" else "REJECTED")
    o.Outcome.max_bits_per_node
    (o.Outcome.max_bits_per_node / params.Gni.repetitions);

  print_endline "\n=== Scenario 2b: a dishonest data center claims two equal communities differ ===\n";
  let fake = Gni.no_instance rng 7 in
  Printf.printf "ground truth: isomorphic = %b (the claim is false)\n"
    (Iso.are_isomorphic fake.Gni.g0 fake.Gni.g1);
  let params = Gni.params_for ~repetitions:400 ~seed:9 fake in
  let o = Gni.run ~params ~seed:22 fake Gni.honest in
  Printf.printf "protocol (dAMAM): %s\n"
    (if o.Outcome.accepted then "ACCEPTED (soundness failure!)"
     else "REJECTED — the devices caught the false claim");

  (* How often would a single repetition of the false claim slip through?
     Estimated with the parallel engine, with a Wilson interval. *)
  let module Engine = Ids_engine.Engine in
  let est =
    Stats.acceptance_ci ~trials:200 (fun seed -> Gni.run_single ~params ~seed fake Gni.honest)
  in
  Printf.printf
    "per-repetition acceptance of the false claim: %.3f, 95%% CI [%.3f, %.3f]\n\
     (safely below the %d/%d majority threshold the amplified protocol demands)\n"
    est.Engine.rate est.Engine.ci_low est.Engine.ci_high params.Gni.threshold
    params.Gni.repetitions
