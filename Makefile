# Convenience wrappers around dune; `make test` is the tier-1 gate.

.PHONY: all check test test-fast bench bench-modarith bench-obs bench-setup bench-serve bench-scale bench-telemetry bench-trajectory faults frontier serve-smoke clean

all:
	dune build

# Tier-1: full build + full test suite (the CI gate).
test:
	dune build && dune runtest

# Everything in one command: build, full tests, and every self-test —
# the modular-arithmetic kernel smoke, the setup-path smoke (gated prime
# search cross-checked against the reference pipeline), the soundness
# frontier smoke (search-dominates-registry assertion), the run-log
# inspector's embedded v2/v3 samples, the tracing layer's
# zero-cost-when-disabled bound, and the verification-service smoke
# (daemon round-trip with a forced worker kill + torn-tail recovery),
# the telemetry-plane smoke (ledger exactness, trace stitching, torn
# frame drill), and the committed-benchmark trajectory table.
check:
	dune build && dune runtest && \
	dune exec bench/modarith/main.exe -- --smoke -o /dev/null && \
	dune exec bench/setup/main.exe -- --smoke -o /dev/null && \
	dune exec bench/frontier/main.exe -- --smoke -o /dev/null && \
	dune exec bin/ids_inspect.exe -- --self-test && \
	dune exec bench/obs/main.exe -- --smoke && \
	dune exec bench/serve/main.exe -- --smoke && \
	dune exec bench/scale/main.exe -- --smoke -o /dev/null && \
	dune exec bench/telemetry/main.exe -- --smoke && \
	dune exec bin/ids_inspect.exe -- --bench-summary .

# Same suite with Monte Carlo trial budgets cut down via IDS_TRIALS_SCALE.
test-fast:
	dune build @runtest-fast

# Regenerate the EXPERIMENTS.md tables (plus the JSON run log ids_runs.jsonl).
# IDS_DOMAINS / IDS_TRIALS_SCALE / IDS_RUNLOG tune workers, budgets, log path.
bench:
	dune exec bench/main.exe -- tables

# Modular-arithmetic kernel microbenchmark: naive Modarith vs the
# Montgomery/Barrett contexts. Regenerates BENCH_modarith.json.
bench-modarith:
	dune exec bench/modarith/main.exe

# Tracing-layer overhead assertion: measures the disabled-path cost of
# every instrumentation primitive and fails if one Protocol 2 run's worth
# exceeds 2% of the run itself.
bench-obs:
	dune exec bench/obs/main.exe

# Setup-path benchmark: sieve-gated prime search vs the reference pipeline
# per protocol interval, plus end-to-end dSym trial setup at n=24.
# Regenerates BENCH_setup.json and asserts the speedup targets.
bench-setup:
	dune exec bench/setup/main.exe

# Fast fault-sweep smoke: E13 (degradation curves) with reduced trial
# budgets and no run log. IDS_FAULT_SPEC adds one custom grid point.
faults:
	IDS_TRIALS_SCALE=0.2 IDS_RUNLOG= dune exec bench/main.exe -- faults

# E17: the empirical soundness frontier — grid search over the cheat
# strategy space per protocol, compared against the registry adversaries
# and the analytic bounds. Regenerates BENCH_frontier.json (fixed trial
# budgets, bit-identical across IDS_DOMAINS).
frontier:
	dune exec bench/frontier/main.exe

# E18 smoke: boot the ids-serve daemon, run a handful of requests through
# forked workers (one with a forced mid-request kill, recovered by retry),
# assert bit-identity against the in-process engine and a clean SIGTERM
# drain, then the torn-tail recovery drill on the framed run log.
serve-smoke:
	dune exec bench/serve/main.exe -- --smoke

# E19: the million-node scale run — degree-4 sparse expander through the
# spanning-tree PLS and the streamed Section 4 eps-API hash, end to end,
# with nodes/sec and peak RSS. Regenerates BENCH_scale.json. --smoke
# (n = 10^4, also wired into @runtest-fast and `make check`) adds the
# peak-RSS bound and the dense/sparse bit-identity assertion.
bench-scale:
	dune exec bench/scale/main.exe

# E18 full chaos bench: 60 requests under a 10% seeded worker-kill schedule
# plus forced kills, the shed-at-the-bound burst phase, and the kill -9
# torn-tail drill. Regenerates BENCH_serve.json and asserts 100%
# availability of accepted requests with every record bit-identical.
bench-serve:
	dune exec bench/serve/main.exe

# E20 full telemetry bench: chaos workload with the telemetry plane on —
# the server-folded ledger must equal the in-process oracle's net-bit sums
# exactly with every counted gap accounted for, the merged Chrome trace
# must stitch spans from server and worker pids under shared trace ids,
# and the enabled-path overhead must stay under 3% of the E18-style
# throughput run. Regenerates BENCH_telemetry.json.
bench-telemetry:
	dune exec bench/telemetry/main.exe

# The benchmark trajectory: one headline line per committed BENCH_*.json,
# rendered by the run-log inspector (parse failure = non-zero exit, so a
# malformed committed benchmark fails `make check`).
bench-trajectory:
	dune exec bin/ids_inspect.exe -- --bench-summary .

clean:
	dune clean
