# Convenience wrappers around dune; `make test` is the tier-1 gate.

.PHONY: all test test-fast bench bench-modarith faults clean

all:
	dune build

# Tier-1: full build + full test suite (the CI gate).
test:
	dune build && dune runtest

# Same suite with Monte Carlo trial budgets cut down via IDS_TRIALS_SCALE.
test-fast:
	dune build @runtest-fast

# Regenerate the EXPERIMENTS.md tables (plus the JSON run log ids_runs.jsonl).
# IDS_DOMAINS / IDS_TRIALS_SCALE / IDS_RUNLOG tune workers, budgets, log path.
bench:
	dune exec bench/main.exe -- tables

# Modular-arithmetic kernel microbenchmark: naive Modarith vs the
# Montgomery/Barrett contexts. Regenerates BENCH_modarith.json.
bench-modarith:
	dune exec bench/modarith/main.exe

# Fast fault-sweep smoke: E13 (degradation curves) with reduced trial
# budgets and no run log. IDS_FAULT_SPEC adds one custom grid point.
faults:
	IDS_TRIALS_SCALE=0.2 IDS_RUNLOG= dune exec bench/main.exe -- faults

clean:
	dune clean
