(** Raw C kernels over 62-bit-limb int arrays (internal to [lib/bignum] and
    its benches; no bounds checks beyond the stated contracts).  See
    ids_kernel.c for the carry-headroom argument.  All destinations must be
    caller-allocated, exactly sized, and distinct from every operand. *)

val nat_mul : int array -> int array -> int array -> unit
(** [nat_mul a b dst] writes the [la + lb]-limb product into [dst].
    Requires [la, lb >= 1] and [la + lb <= mul_cap]. *)

val nat_sqr : int array -> int array -> unit
(** [nat_sqr a dst] writes the [2 * la]-limb square into [dst].
    Requires [la >= 1] and [2 * la <= mul_cap]. *)

val mont_mul : int array -> int -> int array -> int array -> int array -> unit
(** [mont_mul m n0 x y dst]: [dst] (k limbs) := [x*y*R^-1 mod m] where
    [k = length m <= 512], [R = 2^(62k)], [n0 = -m^-1 mod 2^62], and
    [x], [y] are k-limb values below [m]. *)

val mont_sqr : int array -> int -> int array -> int array -> unit
(** [mont_sqr m n0 x dst]: [dst] := [x^2*R^-1 mod m]. *)

val mont_redc : int array -> int -> int array -> int array -> unit
(** [mont_redc m n0 v dst]: [dst] := [v*R^-1 mod m] for [v] of at most
    [2k] limbs (Montgomery entry/exit). *)

val mulmod62 : int -> int -> int -> int
(** [mulmod62 a b p] = [a * b mod p] for [0 <= a, b < p < 2^62]. *)

val mul_cap : int
(** Operand-size ceiling ([la + lb]) for [nat_mul]/[nat_sqr]; fixed by the
    C stack buffers. *)

val use_c : bool
(** False iff [IDS_BIGNUM_KERNEL=ocaml]: route the pure-OCaml fallback
    kernels instead of the C stubs (chosen once at startup). *)
