(* The 26-bit-limb kernels exactly as they shipped in PR 3/PR 5, frozen at
   the moment Nat migrated to 62-bit limbs. Two jobs:

   - the *committed baseline* for the wide-limb migration: bench/modarith
     times these kernels live in the same process and asserts the new radix
     clears its speedup floors (pow >= 4x, mul >= 1x), so the floor is
     machine-independent instead of a stale wall-clock number;
   - the *cross-radix oracle*: qcheck drives random operands through both
     radixes and demands identical values, which checks the 62-bit carry
     chains against an implementation that never had any.

   Nothing here is reachable from a protocol. The code is a verbatim copy of
   the old nat.ml/montgomery.ml arithmetic with the module plumbing renamed;
   keep it frozen — a bug fixed here is a baseline silently re-baselined. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero = [||]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

(* Bit-exact repacking between limb radixes: limb [j] of the output is bits
   [j*t, (j+1)*t) of the value, gathered from every source limb of width [s]
   that overlaps the window — up to ceil(t/s) + 1 of them when widening
   (26 -> 62 pulls from as many as four source limbs). *)
let repack ~from_bits ~to_bits src =
  let total = Array.length src * from_bits in
  let out_len = (total + to_bits - 1) / to_bits in
  let out_mask = (1 lsl to_bits) - 1 in
  (* to_bits = 62 wraps 1 lsl 62 to min_int and the decrement to max_int,
     which is exactly the 62-bit mask. *)
  let out =
    Array.init (max out_len 0) (fun j ->
        let rec gather acc pos =
          let bit = (j * to_bits) + pos in
          if pos >= to_bits || bit >= total then acc
          else begin
            let idx = bit / from_bits and off = bit mod from_bits in
            let chunk = src.(idx) lsr off in
            gather (acc lor ((chunk lsl pos) land out_mask)) (pos + (from_bits - off))
          end
        in
        gather 0 0)
  in
  normalize out

let of_nat n = repack ~from_bits:Nat.base_bits ~to_bits:base_bits (Nat.to_limbs n)

let to_nat a = Nat.of_limbs (repack ~from_bits:base_bits ~to_bits:Nat.base_bits a)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Radix26.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let sqr_scan_max = 512

let sqr_scan a =
  let la = Array.length a in
  let r = Array.make (2 * la) 0 in
  let carry = ref 0 in
  for c = 0 to (2 * la) - 2 do
    let lo = max 0 (c - la + 1) in
    let hi = (c - 1) asr 1 in
    let sum = ref 0 in
    for i = lo to hi do
      sum := !sum + (a.(i) * a.(c - i))
    done;
    let cur = !carry + (2 * !sum) + (if c land 1 = 0 then a.(c / 2) * a.(c / 2) else 0) in
    r.(c) <- cur land mask;
    carry := cur lsr base_bits
  done;
  r.((2 * la) - 1) <- !carry;
  normalize r

let add_at r x off =
  let lx = Array.length x in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let cur = r.(off + i) + x.(i) + !carry in
    r.(off + i) <- cur land mask;
    carry := cur lsr base_bits
  done;
  let j = ref (off + lx) in
  while !carry <> 0 do
    let cur = r.(!j) + !carry in
    r.(!j) <- cur land mask;
    carry := cur lsr base_bits;
    incr j
  done

let combine ~len z0 z1 z2 m =
  let r = Array.make len 0 in
  Array.blit z0 0 r 0 (Array.length z0);
  add_at r z1 m;
  add_at r z2 (2 * m);
  normalize r

let rec sqr a =
  let la = Array.length a in
  if la = 0 then zero
  else if la <= sqr_scan_max then sqr_scan a
  else begin
    let m = la / 2 in
    let a0 = normalize (Array.sub a 0 m) and a1 = Array.sub a m (la - m) in
    let z0 = sqr a0 and z2 = sqr a1 in
    let z1 = sub (sqr (add a0 a1)) (add z0 z2) in
    combine ~len:(2 * la) z0 z1 z2 m
  end

let karatsuba_threshold = 64

let rec mul a b =
  if a == b then sqr a
  else begin
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then zero
    else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
    else begin
      let m = max la lb / 2 in
      let low x lx = if lx <= m then x else normalize (Array.sub x 0 m) in
      let high x lx = if lx <= m then zero else Array.sub x m (lx - m) in
      let a0 = low a la and a1 = high a la in
      let b0 = low b lb and b1 = high b lb in
      let z0 = mul a0 b0 in
      let z2 = mul a1 b1 in
      let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
      combine ~len:(la + lb) z0 z1 z2 m
    end
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 1
  end

let shift_left a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let divmod_limb a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end
  else begin
    let shift = base_bits - (bit_length b - ((Array.length b - 1) * base_bits)) in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    let u = Array.append u (Array.make (m + n + 2 - Array.length u) 0) in
    let q = Array.make (m + 1) 0 in
    let v_top = v.(n - 1) and v_next = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / v_top) and rhat = ref (num mod v_top) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - ((base - 1) * v_top)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * v_next > (!rhat lsl base_bits) lor u.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + v_top
        end
        else continue := false
      done;
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        u.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !carry in
          u.(j + i) <- s land mask;
          carry := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let rem a b = snd (divmod a b)

(* --- the frozen 26-bit Montgomery kernel (PR 3) -------------------------- *)

type mont = {
  m : int array;
  k : int;
  n0 : int;
  r2 : int array;
  mutable one_m : int array;
}

let neg_inv_limb m0 =
  let x = ref m0 in
  for _ = 1 to 4 do
    let d = (2 - (m0 * !x)) land mask in
    x := !x * d land mask
  done;
  assert (m0 * !x land mask = 1);
  (base - !x) land mask

let pad k limbs =
  let r = Array.make k 0 in
  Array.blit limbs 0 r 0 (Array.length limbs);
  r

let mul_limbs k x y =
  let r = Array.make (2 * k) 0 in
  let acc = ref 0 in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    let hi = if c < k then c else k - 1 in
    for i = lo to hi do
      acc := !acc + (Array.unsafe_get x i * Array.unsafe_get y (c - i))
    done;
    Array.unsafe_set r c (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.((2 * k) - 1) <- !acc;
  r

let sqr_limbs k x =
  let r = Array.make (2 * k) 0 in
  let acc = ref 0 in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    let hi = (c - 1) asr 1 in
    let ps = ref 0 in
    for i = lo to hi do
      ps := !ps + (Array.unsafe_get x i * Array.unsafe_get x (c - i))
    done;
    acc := !acc + (2 * !ps);
    if c land 1 = 0 then begin
      let xi = Array.unsafe_get x (c / 2) in
      acc := !acc + (xi * xi)
    end;
    Array.unsafe_set r c (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.((2 * k) - 1) <- !acc;
  r

let redc t v =
  let k = t.k and m = t.m and n0 = t.n0 in
  let lv = Array.length v in
  let mu = Array.make k 0 in
  let r = Array.make (k + 1) 0 in
  let acc = ref 0 in
  for i = 0 to k - 1 do
    if i < lv then acc := !acc + Array.unsafe_get v i;
    for j = 0 to i - 1 do
      acc := !acc + (Array.unsafe_get mu j * Array.unsafe_get m (i - j))
    done;
    let mi = (!acc land mask) * n0 land mask in
    Array.unsafe_set mu i mi;
    acc := (!acc + (mi * Array.unsafe_get m 0)) lsr base_bits
  done;
  for i = k to (2 * k) - 1 do
    if i < lv then acc := !acc + Array.unsafe_get v i;
    for j = i - k + 1 to k - 1 do
      acc := !acc + (Array.unsafe_get mu j * Array.unsafe_get m (i - j))
    done;
    Array.unsafe_set r (i - k) (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.(k) <- !acc;
  let ge_m =
    r.(k) <> 0
    ||
    let rec cmp i = if i < 0 then true else if r.(i) <> m.(i) then r.(i) > m.(i) else cmp (i - 1) in
    cmp (k - 1)
  in
  if ge_m then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = r.(i) - m.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done
  end;
  Array.sub r 0 k

let mont_mul_raw t x y = redc t (mul_limbs t.k x y)
let mont_sqr_raw t x = redc t (sqr_limbs t.k x)

let mont modulus =
  let limbs = normalize modulus in
  let k = Array.length limbs in
  if k = 0 || limbs.(0) land 1 = 0 then invalid_arg "Radix26.mont: modulus must be odd";
  if bit_length limbs < 2 then invalid_arg "Radix26.mont: modulus must be >= 3";
  let r2 = pad k (rem (shift_left [| 1 |] (2 * base_bits * k)) limbs) in
  let t = { m = limbs; k; n0 = neg_inv_limb limbs.(0); r2; one_m = [||] } in
  t.one_m <- redc t r2;
  t

let reduce t a = if compare a t.m >= 0 then rem a t.m else a
let to_mont t a = mont_mul_raw t (pad t.k (reduce t a)) t.r2

let mont_mul t a b =
  normalize (mont_mul_raw t (to_mont t a) (pad t.k (reduce t b)))

let window_bits = 4

let mont_pow t a e =
  let e = normalize e in
  if Array.length e = 0 then [| 1 |]
  else begin
    let am = to_mont t a in
    let table = Array.make (1 lsl window_bits) t.one_m in
    table.(1) <- am;
    for i = 2 to (1 lsl window_bits) - 1 do
      table.(i) <- mont_mul_raw t table.(i - 1) am
    done;
    let nbits = bit_length e in
    let bit j = e.(j / base_bits) lsr (j mod base_bits) land 1 in
    let window w =
      let lo = w * window_bits in
      let v = ref 0 in
      for j = min (lo + window_bits - 1) (nbits - 1) downto lo do
        v := (!v lsl 1) lor bit j
      done;
      !v
    in
    let nw = (nbits + window_bits - 1) / window_bits in
    let acc = ref table.(window (nw - 1)) in
    for w = nw - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := mont_sqr_raw t !acc
      done;
      let d = window w in
      if d <> 0 then acc := mont_mul_raw t !acc table.(d)
    done;
    normalize (redc t !acc)
  end
