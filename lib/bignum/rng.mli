(** Deterministic splittable pseudo-random generator (splitmix64).

    Every source of randomness in this repository flows through this module,
    so that protocols, tests and experiments are reproducible given a seed.
    The generator is [splitmix64] (Steele, Lea & Flood 2014): a 64-bit state
    advanced by a Weyl sequence and finalized with an avalanche function. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (statistically) independent of the remainder of [t]'s stream. *)

val key : int list -> int
(** [key parts] derives a seed from a composite key by iterated splitmix64
    mixing: each component is folded through the avalanche function, so seeds
    for nearby tuples (e.g. [(trial, round, node)] and [(trial, round,
    node+1)]) are statistically independent. Pure: no generator state is
    consumed, which is what lets fault decisions be keyed by position rather
    than drawn from a shared stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t k] is a uniformly random [k]-bit non-negative integer,
    [0 <= k <= 62]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Uses rejection sampling, so the distribution is exactly uniform. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
