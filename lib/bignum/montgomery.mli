(** Montgomery modular arithmetic for a fixed odd modulus.

    A context precomputes everything that depends only on the modulus — the
    limb count [k], the Hensel inverse [n0' = -m^(-1) mod 2^62], and
    [R^2 mod m] for [R = 2^(62k)] — so each multiplication is a single fused
    FIOS (finely integrated operand scanning) pass over the 62-bit limbs with
    no long division at all: the C kernel folds each [x*y_i] and [mu*m] pair
    into a k+1-word accumulator using [unsigned __int128] partials (a pure
    OCaml column-scanning fallback over 31-bit half-limbs answers when
    [IDS_BIGNUM_KERNEL=ocaml]). Exponentiation scans the exponent's limbs
    directly with a 4-bit window, replacing the one-division-per-bit loop of
    the naive {!Modarith.pow}.

    Values enter and leave in the ordinary domain: callers never see the
    Montgomery representation. Results are canonical {!Nat.t} values,
    bit-identical to what the naive routines produce. *)

type t

val make : Nat.t -> t
(** [make m] precomputes a context for the odd modulus [m >= 3].
    @raise Invalid_argument if [m] is even or [< 3]. *)

val modulus : t -> Nat.t

val mul : t -> Nat.t -> Nat.t -> Nat.t
(** [mul t a b] is [(a * b) mod m]. Operands need not be pre-reduced. *)

val pow : t -> Nat.t -> Nat.t -> Nat.t
(** [pow t a e] is [a^e mod m] by windowed Montgomery exponentiation. *)

val pow_int : t -> Nat.t -> int -> Nat.t
(** [pow_int t a e] is [a^e mod m] for a native exponent [e >= 0].
    @raise Invalid_argument if [e < 0]. *)
