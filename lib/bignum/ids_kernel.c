/* Wide-limb bignum kernels: 62-bit limbs, unsigned __int128 partials.
 *
 * Every entry point works on plain OCaml `int array` values whose elements
 * are limbs in [0, 2^62).  Tagged representation: an element read with
 * Long_val is the limb, an element written with Val_long stores it; limbs
 * are immediates, so no write barrier is needed and the stubs can be
 * [@@noalloc].  Callers allocate the destination array (never shared with
 * an operand) and guarantee the size contracts stated per function; the
 * OCaml dispatch layer in nat.ml/montgomery.ml enforces them, so the
 * checks here are assertions of the contract, not a public API.
 *
 * Carry headroom at radix 2^62: a limb product is < 2^124, so an
 * operand-scanning inner loop `t = r[i+j] + a_i*b_j + carry` stays below
 * 2^124 + 2^62 + 2^63 < 2^125 in a u128 accumulator, and `t >> 62` is a
 * valid carry < 2^63 for the next column.  Column (Comba) scanning would
 * overflow the u128 after 16 products, hence operand scanning throughout.
 */

#include <stdint.h>
#include <caml/mlvalues.h>

typedef unsigned __int128 u128;
typedef uint64_t u64;

#define LIMB_BITS 62
#define LIMB_MASK (((u64)1 << LIMB_BITS) - 1)

/* Sizing contract: Montgomery moduli are capped at 512 limbs by
 * Montgomery.make, and Nat's dispatch only routes operand pairs with
 * la + lb <= IDS_MUL_CAP here (Karatsuba/Toom split above that). */
#define IDS_MUL_CAP 1024
#define IDS_MONT_CAP 512

/* dst[0 .. la+lb-1] = a * b.  Requires la, lb >= 1 and la + lb <= IDS_MUL_CAP. */
CAMLprim value ids_nat_mul_stub(value va, value vb, value vdst)
{
  mlsize_t la = Wosize_val(va), lb = Wosize_val(vb);
  u64 r[IDS_MUL_CAP]; /* only the la+lb live entries are ever touched */
  for (mlsize_t i = 0; i < la + lb; i++) r[i] = 0;
  for (mlsize_t i = 0; i < la; i++) {
    u64 ai = (u64)Long_val(Field(va, i));
    u64 carry = 0;
    for (mlsize_t j = 0; j < lb; j++) {
      u128 t = (u128)r[i + j] + (u128)ai * (u64)Long_val(Field(vb, j)) + carry;
      r[i + j] = (u64)t & LIMB_MASK;
      carry = (u64)(t >> LIMB_BITS);
    }
    r[i + lb] = carry; /* columns above i+lb untouched this pass */
  }
  for (mlsize_t i = 0; i < la + lb; i++)
    Field(vdst, i) = Val_long((long)r[i]);
  return Val_unit;
}

/* dst[0 .. 2*la-1] = a * a.  Requires la >= 1 and 2*la <= IDS_MUL_CAP.
 * Cross products are accumulated once and doubled via the u128 temp
 * (2*x_i*x_j < 2^125), then the diagonal terms are folded in. */
CAMLprim value ids_nat_sqr_stub(value va, value vdst)
{
  mlsize_t la = Wosize_val(va);
  u64 r[IDS_MUL_CAP];
  for (mlsize_t i = 0; i < 2 * la; i++) r[i] = 0;
  for (mlsize_t i = 0; i < la; i++) {
    u64 ai = (u64)Long_val(Field(va, i));
    u128 carry = 0;
    for (mlsize_t j = i + 1; j < la; j++) {
      u128 t = (u128)r[i + j] + 2 * ((u128)ai * (u64)Long_val(Field(va, j))) + carry;
      r[i + j] = (u64)t & LIMB_MASK;
      carry = t >> LIMB_BITS;
    }
    /* carry < 2^64; walk it up (bounded: r has headroom up to 2*la). */
    for (mlsize_t k = i + la; carry; k++) {
      u128 t = (u128)r[k] + carry;
      r[k] = (u64)t & LIMB_MASK;
      carry = t >> LIMB_BITS;
    }
  }
  {
    u64 carry = 0;
    for (mlsize_t i = 0; i < la; i++) {
      u64 ai = (u64)Long_val(Field(va, i));
      u128 t = (u128)r[2 * i] + (u128)ai * ai + carry;
      r[2 * i] = (u64)t & LIMB_MASK;
      u128 t2 = (u128)r[2 * i + 1] + (t >> LIMB_BITS);
      r[2 * i + 1] = (u64)t2 & LIMB_MASK;
      carry = (u64)(t2 >> LIMB_BITS);
    }
    /* final carry dies at the top limb: a^2 < 2^(124*la) fits 2*la limbs */
  }
  for (mlsize_t i = 0; i < 2 * la; i++)
    Field(vdst, i) = Val_long((long)r[i]);
  return Val_unit;
}

/* In-place SOS Montgomery reduction of t[0 .. 2k+1] by (m, n0), writing the
 * k-limb result (conditionally subtracted below m) into out.  t holds the
 * double-width input; n0 = -m^{-1} mod 2^62. */
static void mont_reduce(mlsize_t k, const u64 *m, u64 n0, u64 *t, u64 *out)
{
  for (mlsize_t i = 0; i < k; i++) {
    u64 mu = (t[i] * n0) & LIMB_MASK; /* low 62 bits of the wrapping product */
    u64 carry = 0;
    for (mlsize_t j = 0; j < k; j++) {
      u128 s = (u128)t[i + j] + (u128)mu * m[j] + carry;
      t[i + j] = (u64)s & LIMB_MASK;
      carry = (u64)(s >> LIMB_BITS);
    }
    for (mlsize_t idx = i + k; carry; idx++) {
      u128 s = (u128)t[idx] + carry;
      t[idx] = (u64)s & LIMB_MASK;
      carry = (u64)(s >> LIMB_BITS);
    }
  }
  /* t[k .. 2k] now holds v/R + (mu.m)/R < 2m, i.e. at most k limbs plus a
   * possible top bit in t[2k]. */
  int ge = t[2 * k] != 0;
  if (!ge) {
    ge = 1;
    for (mlsize_t i = k; i-- > 0;) {
      if (t[k + i] != m[i]) { ge = t[k + i] > m[i]; break; }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (mlsize_t i = 0; i < k; i++) {
      u64 d = t[k + i] - m[i] - borrow;
      borrow = (d >> 63) & 1; /* two's-complement wrap flags the borrow */
      out[i] = d & LIMB_MASK;
    }
  } else {
    for (mlsize_t i = 0; i < k; i++) out[i] = t[k + i];
  }
}

/* dst[0..k-1] = mont_mul(x, y) = x*y*R^{-1} mod m, R = 2^(62k).
 * x, y are k-limb arrays below m; k <= IDS_MONT_CAP.
 *
 * Fused FIOS loop: each outer step folds x*y_i and mu*m into the running
 * k-limb accumulator in one pass, so the working set is k+1 words instead
 * of the 2k+2 of a separate product + reduce (SOS) pair.  Inner sum bound:
 * t[j] + x_j*y_i + mu*m_j + carry < 2^62 + 2*(2^62-1)^2 + 2^63 < 2^126,
 * so the u128 holds it and the shifted carry stays below 2^63.  The
 * classical invariant T <= 2m - 1 keeps the top word t[k] in {0, 1}. */
CAMLprim value ids_mont_mul_stub(value vm, value vn0, value vx, value vy, value vdst)
{
  mlsize_t k = Wosize_val(vm);
  u64 m[IDS_MONT_CAP], x[IDS_MONT_CAP], t[IDS_MONT_CAP + 1];
  u64 n0 = (u64)Long_val(vn0);
  for (mlsize_t i = 0; i < k; i++) {
    m[i] = (u64)Long_val(Field(vm, i));
    x[i] = (u64)Long_val(Field(vx, i));
    t[i] = 0;
  }
  t[k] = 0;
  for (mlsize_t i = 0; i < k; i++) {
    u64 yi = (u64)Long_val(Field(vy, i));
    u128 s = (u128)t[0] + (u128)x[0] * yi;
    /* mu needs (s mod 2^62)*n0 mod 2^62; the stray bits 62..63 of (u64)s
     * contribute multiples of 2^62 to the product, invisible mod 2^62. */
    u64 mu = ((u64)s * n0) & LIMB_MASK;
    s += (u128)mu * m[0]; /* low 62 bits cancel by choice of mu */
    u64 carry = (u64)(s >> LIMB_BITS);
    for (mlsize_t j = 1; j < k; j++) {
      u128 s2 = (u128)t[j] + (u128)x[j] * yi + (u128)mu * m[j] + carry;
      t[j - 1] = (u64)s2 & LIMB_MASK;
      carry = (u64)(s2 >> LIMB_BITS);
    }
    u64 top = t[k] + carry; /* t[k] <= 1 and carry < 2^63: no u64 overflow */
    t[k - 1] = top & LIMB_MASK;
    t[k] = top >> LIMB_BITS;
  }
  int ge = t[k] != 0;
  if (!ge) {
    ge = 1;
    for (mlsize_t i = k; i-- > 0;) {
      if (t[i] != m[i]) { ge = t[i] > m[i]; break; }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (mlsize_t i = 0; i < k; i++) {
      u64 d = t[i] - m[i] - borrow;
      borrow = (d >> 63) & 1;
      Field(vdst, i) = Val_long((long)(d & LIMB_MASK));
    }
  } else {
    for (mlsize_t i = 0; i < k; i++)
      Field(vdst, i) = Val_long((long)t[i]);
  }
  return Val_unit;
}

/* dst[0..k-1] = mont_sqr(x) = x^2*R^{-1} mod m.
 * Same fused FIOS loop as mont_mul with y = x; the single pass over the
 * k+1-word accumulator beats the halved product count of a two-pass
 * doubled-cross SOS at every modulus size the service uses. */
CAMLprim value ids_mont_sqr_stub(value vm, value vn0, value vx, value vdst)
{
  mlsize_t k = Wosize_val(vm);
  u64 m[IDS_MONT_CAP], x[IDS_MONT_CAP], t[IDS_MONT_CAP + 1];
  u64 n0 = (u64)Long_val(vn0);
  for (mlsize_t i = 0; i < k; i++) {
    m[i] = (u64)Long_val(Field(vm, i));
    x[i] = (u64)Long_val(Field(vx, i));
    t[i] = 0;
  }
  t[k] = 0;
  for (mlsize_t i = 0; i < k; i++) {
    u64 yi = x[i];
    u128 s = (u128)t[0] + (u128)x[0] * yi;
    u64 mu = ((u64)s * n0) & LIMB_MASK;
    s += (u128)mu * m[0];
    u64 carry = (u64)(s >> LIMB_BITS);
    for (mlsize_t j = 1; j < k; j++) {
      u128 s2 = (u128)t[j] + (u128)x[j] * yi + (u128)mu * m[j] + carry;
      t[j - 1] = (u64)s2 & LIMB_MASK;
      carry = (u64)(s2 >> LIMB_BITS);
    }
    u64 top = t[k] + carry;
    t[k - 1] = top & LIMB_MASK;
    t[k] = top >> LIMB_BITS;
  }
  int ge = t[k] != 0;
  if (!ge) {
    ge = 1;
    for (mlsize_t i = k; i-- > 0;) {
      if (t[i] != m[i]) { ge = t[i] > m[i]; break; }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (mlsize_t i = 0; i < k; i++) {
      u64 d = t[i] - m[i] - borrow;
      borrow = (d >> 63) & 1;
      Field(vdst, i) = Val_long((long)(d & LIMB_MASK));
    }
  } else {
    for (mlsize_t i = 0; i < k; i++)
      Field(vdst, i) = Val_long((long)t[i]);
  }
  return Val_unit;
}

/* dst[0..k-1] = v * R^{-1} mod m for v of lv <= 2k limbs (entry/exit REDC). */
CAMLprim value ids_mont_redc_stub(value vm, value vn0, value vv, value vdst)
{
  mlsize_t k = Wosize_val(vm), lv = Wosize_val(vv);
  u64 m[IDS_MONT_CAP], t[2 * IDS_MONT_CAP + 2], out[IDS_MONT_CAP];
  u64 n0 = (u64)Long_val(vn0);
  for (mlsize_t i = 0; i < 2 * k + 2; i++) t[i] = 0;
  for (mlsize_t i = 0; i < k; i++)
    m[i] = (u64)Long_val(Field(vm, i));
  for (mlsize_t i = 0; i < lv; i++)
    t[i] = (u64)Long_val(Field(vv, i));
  mont_reduce(k, m, n0, t, out);
  for (mlsize_t i = 0; i < k; i++)
    Field(vdst, i) = Val_long((long)out[i]);
  return Val_unit;
}

/* a * b mod p for 0 <= a, b < p < 2^62: the scalar kernel behind
 * Field.int62_field. */
CAMLprim value ids_mulmod62_stub(value va, value vb, value vp)
{
  u128 t = (u128)(u64)Long_val(va) * (u64)Long_val(vb);
  return Val_long((long)(u64)(t % (u64)Long_val(vp)));
}
