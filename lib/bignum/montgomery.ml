(* Montgomery arithmetic over Nat's 26-bit limbs. Multiplication is product
   scanning (Comba) followed by a row-wise Montgomery reduction (REDC);
   squaring halves the product pass by doubling cross terms. With w = 26
   every intermediate fits a 63-bit native int: a limb product is < 2^52, so
   a product-scanning column of k <= 512 terms stays under 2^62, and the REDC
   accumulation t[i+j] + mu*m[j] + carry is at most 2^52 + 2^27.

   The inner loops use unsafe accesses: each index is bounded by [k] or [2k]
   against arrays allocated with exactly those extents, and this is the
   innermost loop of every bignum protocol estimate. *)

let base_bits = Nat.base_bits
let base = 1 lsl base_bits
let mask = base - 1

module Obs = Ids_obs.Obs

(* Hot-path accounting: one counter bump per exponentiation, never per limb
   or per column. The REDC count is derived arithmetically from the window
   walk, so the disabled path costs a single flag test. *)
let c_pow = Obs.Counter.make "mont.pow"
let c_redc = Obs.Counter.make "mont.redc"
let h_pow_bits = Obs.Histo.make "mont.pow_bits"

type t = {
  modulus : Nat.t;
  m : int array; (* k limbs, little-endian *)
  k : int;
  n0 : int; (* -m^(-1) mod 2^26 *)
  r2 : int array; (* R^2 mod m, R = 2^(26k) *)
  one_m : int array; (* R mod m: 1 in Montgomery form *)
}

let modulus t = t.modulus

(* Hensel lifting: for odd m0, x = m0 is an inverse of m0 modulo 8, and each
   Newton step x <- x(2 - m0 x) doubles the number of correct low bits, so
   four steps reach >= 26. Everything is taken modulo 2^26 through
   [land mask] (two's-complement, so the negative intermediate is fine),
   keeping every product under 2^52. *)
let neg_inv_limb m0 =
  let x = ref m0 in
  for _ = 1 to 4 do
    let d = (2 - (m0 * !x)) land mask in
    x := !x * d land mask
  done;
  assert (m0 * !x land mask = 1);
  (base - !x) land mask

(* Pad a normalized limb array to exactly k limbs. *)
let pad k limbs =
  let r = Array.make k 0 in
  Array.blit limbs 0 r 0 (Array.length limbs);
  r

(* Product scanning: x * y into 2k limbs. Column sums are accumulated in a
   single native int and carried once per column. *)
let mul_limbs k x y =
  let r = Array.make (2 * k) 0 in
  let acc = ref 0 in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    let hi = if c < k then c else k - 1 in
    for i = lo to hi do
      acc := !acc + (Array.unsafe_get x i * Array.unsafe_get y (c - i))
    done;
    Array.unsafe_set r c (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.((2 * k) - 1) <- !acc;
  r

(* Product scanning square: cross terms x_i * x_j (i < j) are summed once
   into a pair accumulator and doubled per column, the diagonal added once —
   about half the multiplies of {!mul_limbs}. *)
let sqr_limbs k x =
  let r = Array.make (2 * k) 0 in
  let acc = ref 0 in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    (* Floor division ([asr], not [/]) so c = 0 gives an empty pair range. *)
    let hi = (c - 1) asr 1 in
    let ps = ref 0 in
    for i = lo to hi do
      ps := !ps + (Array.unsafe_get x i * Array.unsafe_get x (c - i))
    done;
    acc := !acc + (2 * !ps);
    if c land 1 = 0 then begin
      let xi = Array.unsafe_get x (c / 2) in
      acc := !acc + (xi * xi)
    end;
    Array.unsafe_set r c (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.((2 * k) - 1) <- !acc;
  r

(* Column-wise Montgomery reduction (the product-scanning half of FIPS):
   v (up to 2k limbs, value < m * 2^(26k)) to v * R^(-1) mod m, fully reduced
   into k limbs. Column i determines mu_i = v_i * n0 mod 2^26 such that
   adding mu_i * m * 2^(26 i) zeroes the column; the high columns then read
   off the result. Does not mutate v. *)
let redc t v =
  let k = t.k and m = t.m and n0 = t.n0 in
  let lv = Array.length v in
  let mu = Array.make k 0 in
  let r = Array.make (k + 1) 0 in
  let acc = ref 0 in
  for i = 0 to k - 1 do
    if i < lv then acc := !acc + Array.unsafe_get v i;
    for j = 0 to i - 1 do
      acc := !acc + (Array.unsafe_get mu j * Array.unsafe_get m (i - j))
    done;
    let mi = (!acc land mask) * n0 land mask in
    Array.unsafe_set mu i mi;
    acc := (!acc + (mi * Array.unsafe_get m 0)) lsr base_bits
  done;
  for i = k to (2 * k) - 1 do
    if i < lv then acc := !acc + Array.unsafe_get v i;
    for j = i - k + 1 to k - 1 do
      acc := !acc + (Array.unsafe_get mu j * Array.unsafe_get m (i - j))
    done;
    Array.unsafe_set r (i - k) (!acc land mask);
    acc := !acc lsr base_bits
  done;
  r.(k) <- !acc;
  (* The accumulated value is < 2m (top limb 0 or 1): one conditional
     subtract completes the reduction. *)
  let ge_m =
    r.(k) <> 0
    ||
    let rec cmp i = if i < 0 then true else if r.(i) <> m.(i) then r.(i) > m.(i) else cmp (i - 1) in
    cmp (k - 1)
  in
  if ge_m then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = r.(i) - m.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done
  end;
  Array.sub r 0 k

let mont_mul t x y = redc t (mul_limbs t.k x y)
let mont_sqr t x = redc t (sqr_limbs t.k x)

let make modulus =
  let limbs = Nat.to_limbs modulus in
  let k = Array.length limbs in
  if k = 0 || limbs.(0) land 1 = 0 then invalid_arg "Montgomery.make: modulus must be odd";
  if Nat.compare modulus Nat.two <= 0 then invalid_arg "Montgomery.make: modulus must be >= 3";
  if k > 512 then invalid_arg "Montgomery.make: modulus too large for product scanning";
  let r2 = pad k (Nat.to_limbs (Nat.rem (Nat.shift_left Nat.one (2 * base_bits * k)) modulus)) in
  let t = { modulus; m = limbs; k; n0 = neg_inv_limb limbs.(0); r2; one_m = [||] } in
  (* 1 in Montgomery form is REDC(R^2) = R mod m. *)
  { t with one_m = redc t r2 }

let reduce t a = if Nat.compare a t.modulus >= 0 then Nat.rem a t.modulus else a
let to_mont t a = mont_mul t (pad t.k (Nat.to_limbs (reduce t a))) t.r2

let mul t a b =
  (* REDC(aR * b) = a*b mod m: only one operand needs the conversion pass. *)
  Nat.of_limbs (mont_mul t (to_mont t a) (pad t.k (Nat.to_limbs (reduce t b))))

(* 4-bit fixed windows, most significant first, reading bits straight out of
   the exponent's limb array — no division-by-two loop. *)
let window_bits = 4

let pow t a e =
  if Nat.is_zero e then Nat.one (* modulus >= 3, so 1 mod m = 1 *)
  else begin
    let am = to_mont t a in
    let table = Array.make (1 lsl window_bits) t.one_m in
    table.(1) <- am;
    for i = 2 to (1 lsl window_bits) - 1 do
      table.(i) <- mont_mul t table.(i - 1) am
    done;
    let limbs = Nat.to_limbs e in
    let nbits = Nat.bit_length e in
    let bit j = limbs.(j / base_bits) lsr (j mod base_bits) land 1 in
    let window w =
      let lo = w * window_bits in
      let v = ref 0 in
      for j = min (lo + window_bits - 1) (nbits - 1) downto lo do
        v := (!v lsl 1) lor bit j
      done;
      !v
    in
    let nw = (nbits + window_bits - 1) / window_bits in
    let acc = ref table.(window (nw - 1)) in
    let nmul = ref 0 in
    for w = nw - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := mont_sqr t !acc
      done;
      let d = window w in
      if d <> 0 then begin
        incr nmul;
        acc := mont_mul t !acc table.(d)
      end
    done;
    if Obs.enabled () then begin
      Obs.Counter.add c_pow 1;
      (* to_mont + table fill + window squares + window multiplies + the
         final domain exit below — each is exactly one REDC. *)
      Obs.Counter.add c_redc
        (1 + ((1 lsl window_bits) - 2) + (window_bits * (nw - 1)) + !nmul + 1);
      Obs.Histo.observe h_pow_bits nbits
    end;
    (* Leave the Montgomery domain: REDC of the bare k-limb value. *)
    Nat.of_limbs (redc t !acc)
  end

let pow_int t a e =
  if e < 0 then invalid_arg "Montgomery.pow_int: negative exponent";
  pow t a (Nat.of_int e)
