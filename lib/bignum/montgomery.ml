(* Montgomery arithmetic over Nat's 62-bit limbs. The hot kernels (product,
   square, REDC) run in C with unsigned __int128 partials by default
   (ids_kernel.c via Kernel); `IDS_BIGNUM_KERNEL=ocaml` selects the pure
   fallback below, which splits each limb product into hi:lo native halves
   and accumulates columns in a three-word (62+62+carry) window — the
   radix-2^62 translation of the old Comba pass, kept as the portable
   reference the cross-radix tests triangulate against.

   At w = 62 a limb product needs 124 bits, so unlike the 26-bit kernels no
   native accumulator can defer carries across a column; the C side uses
   operand scanning in __int128 (sum < 2^125 per step), and the OCaml side
   carries the three-word window once per product. *)

let base_bits = Nat.base_bits
let mask = max_int (* = 2^62 - 1 *)

module Obs = Ids_obs.Obs

(* Hot-path accounting: one counter bump per exponentiation, never per limb
   or per column. The REDC count is derived arithmetically from the window
   walk, so the disabled path costs a single flag test. *)
let c_pow = Obs.Counter.make "mont.pow"
let c_redc = Obs.Counter.make "mont.redc"
let h_pow_bits = Obs.Histo.make "mont.pow_bits"

type t = {
  modulus : Nat.t;
  m : int array; (* k limbs, little-endian *)
  k : int;
  n0 : int; (* -m^(-1) mod 2^62 *)
  r2 : int array; (* R^2 mod m, R = 2^(62k) *)
  one_m : int array; (* R mod m: 1 in Montgomery form *)
}

let modulus t = t.modulus

(* hi:lo split of a full 62x62-bit product: x = xh*2^31 + xl with 31-bit
   halves, so each partial product fits a native int. Returns the product as
   (high 62 bits, low 62 bits). *)
let half_bits = 31
let half_mask = (1 lsl half_bits) - 1

let mul_wide x y =
  let xl = x land half_mask and xh = x lsr half_bits in
  let yl = y land half_mask and yh = y lsr half_bits in
  let ll = xl * yl in
  let mid = (xl * yh) + (yl * xh) in (* < 2^63: two products < 2^62 *)
  let hh = xh * yh in
  let lo = ll + ((mid land half_mask) lsl half_bits) in (* < 2^63 *)
  let hi = hh + (mid lsr half_bits) + (lo lsr base_bits) in
  (hi, lo land mask)

(* Low 62 bits of x * y: the three partial products that reach them. *)
let mul_low x y =
  let xl = x land half_mask and xh = x lsr half_bits in
  let yl = y land half_mask and yh = y lsr half_bits in
  ((xl * yl) + ((((xl * yh) + (yl * xh)) land half_mask) lsl half_bits)) land mask

(* Hensel lifting: for odd m0, x = m0 is an inverse of m0 modulo 8, and each
   Newton step x <- x(2 - m0 x) doubles the number of correct low bits, so
   five steps reach >= 62 (3 -> 6 -> 12 -> 24 -> 48 -> 96). All products are
   taken modulo 2^62 through {!mul_low}. *)
let neg_inv_limb m0 =
  let x = ref m0 in
  for _ = 1 to 5 do
    let d = (2 - mul_low m0 !x) land mask in
    x := mul_low !x d
  done;
  assert (mul_low m0 !x = 1);
  (mask - !x + 1) land mask (* = 2^62 - x = -x mod 2^62 *)

(* Pad a normalized limb array to exactly k limbs. *)
let pad k limbs =
  let r = Array.make k 0 in
  Array.blit limbs 0 r 0 (Array.length limbs);
  r

(* --- pure-OCaml fallback kernels -----------------------------------------

   Product scanning with a three-word column window (w0 = current 62-bit
   column, w1 = next, w2 = overflow of next): each limb product splits into
   hi:lo and is folded with one carry step per word, so nothing ever
   exceeds a native int. *)

let mul_limbs k x y =
  let r = Array.make (2 * k) 0 in
  let w0 = ref 0 and w1 = ref 0 and w2 = ref 0 in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    let hi = if c < k then c else k - 1 in
    for i = lo to hi do
      let ph, pl = mul_wide (Array.unsafe_get x i) (Array.unsafe_get y (c - i)) in
      let s0 = !w0 + pl in
      w0 := s0 land mask;
      let s1 = !w1 + ph + (s0 lsr base_bits) in
      w1 := s1 land mask;
      w2 := !w2 + (s1 lsr base_bits)
    done;
    Array.unsafe_set r c !w0;
    w0 := !w1;
    w1 := !w2;
    w2 := 0
  done;
  r.((2 * k) - 1) <- !w0;
  r

let sqr_limbs k x =
  let r = Array.make (2 * k) 0 in
  let w0 = ref 0 and w1 = ref 0 and w2 = ref 0 in
  let fold ph pl =
    let s0 = !w0 + pl in
    w0 := s0 land mask;
    let s1 = !w1 + ph + (s0 lsr base_bits) in
    w1 := s1 land mask;
    w2 := !w2 + (s1 lsr base_bits)
  in
  for c = 0 to (2 * k) - 2 do
    let lo = if c >= k then c - k + 1 else 0 in
    (* Floor division ([asr], not [/]) so c = 0 gives an empty pair range. *)
    let hi = (c - 1) asr 1 in
    for i = lo to hi do
      let ph, pl = mul_wide (Array.unsafe_get x i) (Array.unsafe_get x (c - i)) in
      (* Double the cross term word-by-word; each doubled word is < 2^63. *)
      let dl = pl lsl 1 in
      fold (((ph lsl 1) land mask) lor (pl lsr (base_bits - 1))) (dl land mask);
      w2 := !w2 + (ph lsr (base_bits - 1))
    done;
    if c land 1 = 0 then begin
      let xi = Array.unsafe_get x (c / 2) in
      let ph, pl = mul_wide xi xi in
      fold ph pl
    end;
    Array.unsafe_set r c !w0;
    w0 := !w1;
    w1 := !w2;
    w2 := 0
  done;
  r.((2 * k) - 1) <- !w0;
  r

(* Conditional subtract shared by both OCaml reduction exits: r (k+1 limbs,
   value < 2m) minus m when r >= m. *)
let cond_sub_m k m r =
  let ge_m =
    r.(k) <> 0
    ||
    let rec cmp i = if i < 0 then true else if r.(i) <> m.(i) then r.(i) > m.(i) else cmp (i - 1) in
    cmp (k - 1)
  in
  if ge_m then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = r.(i) - m.(i) - !borrow in
      r.(i) <- d land mask;
      borrow := if d < 0 then 1 else 0
    done
  end;
  Array.sub r 0 k

(* Column-wise Montgomery reduction, OCaml fallback: v (up to 2k limbs,
   value < m * 2^(62k)) to v * R^(-1) mod m, fully reduced into k limbs.
   Column i determines mu_i = v_i * n0 mod 2^62 such that adding
   mu_i * m * 2^(62 i) zeroes the column; the high columns then read off
   the result. Does not mutate v. *)
let redc_ocaml t v =
  let k = t.k and m = t.m and n0 = t.n0 in
  let lv = Array.length v in
  let mu = Array.make k 0 in
  let r = Array.make (k + 1) 0 in
  let w0 = ref 0 and w1 = ref 0 and w2 = ref 0 in
  let fold ph pl =
    let s0 = !w0 + pl in
    w0 := s0 land mask;
    let s1 = !w1 + ph + (s0 lsr base_bits) in
    w1 := s1 land mask;
    w2 := !w2 + (s1 lsr base_bits)
  in
  let add_word x =
    let s0 = !w0 + x in
    w0 := s0 land mask;
    let s1 = !w1 + (s0 lsr base_bits) in
    w1 := s1 land mask;
    w2 := !w2 + (s1 lsr base_bits)
  in
  for i = 0 to k - 1 do
    if i < lv then add_word (Array.unsafe_get v i);
    for j = 0 to i - 1 do
      let ph, pl = mul_wide (Array.unsafe_get mu j) (Array.unsafe_get m (i - j)) in
      fold ph pl
    done;
    let mi = mul_low !w0 n0 in
    Array.unsafe_set mu i mi;
    let ph, pl = mul_wide mi (Array.unsafe_get m 0) in
    fold ph pl;
    (* The column is now zero mod 2^62 by construction: shift the window. *)
    assert (!w0 = 0);
    w0 := !w1;
    w1 := !w2;
    w2 := 0
  done;
  for i = k to (2 * k) - 1 do
    if i < lv then add_word (Array.unsafe_get v i);
    for j = i - k + 1 to k - 1 do
      let ph, pl = mul_wide (Array.unsafe_get mu j) (Array.unsafe_get m (i - j)) in
      fold ph pl
    done;
    Array.unsafe_set r (i - k) !w0;
    w0 := !w1;
    w1 := !w2;
    w2 := 0
  done;
  r.(k) <- !w0;
  cond_sub_m t.k t.m r

(* --- kernel dispatch ------------------------------------------------------ *)

let redc t v =
  if Kernel.use_c then begin
    let dst = Array.make t.k 0 in
    Kernel.mont_redc t.m t.n0 v dst;
    dst
  end
  else redc_ocaml t v

let mont_mul t x y =
  if Kernel.use_c then begin
    let dst = Array.make t.k 0 in
    Kernel.mont_mul t.m t.n0 x y dst;
    dst
  end
  else redc_ocaml t (mul_limbs t.k x y)

let mont_sqr t x =
  if Kernel.use_c then begin
    let dst = Array.make t.k 0 in
    Kernel.mont_sqr t.m t.n0 x dst;
    dst
  end
  else redc_ocaml t (sqr_limbs t.k x)

let make modulus =
  let limbs = Nat.to_limbs modulus in
  let k = Array.length limbs in
  if k = 0 || limbs.(0) land 1 = 0 then invalid_arg "Montgomery.make: modulus must be odd";
  if Nat.compare modulus Nat.two <= 0 then invalid_arg "Montgomery.make: modulus must be >= 3";
  if k > 512 then invalid_arg "Montgomery.make: modulus too large for the fixed kernel buffers";
  let r2 = pad k (Nat.to_limbs (Nat.rem (Nat.shift_left Nat.one (2 * base_bits * k)) modulus)) in
  let t = { modulus; m = limbs; k; n0 = neg_inv_limb limbs.(0); r2; one_m = [||] } in
  (* 1 in Montgomery form is REDC(R^2) = R mod m. *)
  { t with one_m = redc t r2 }

let reduce t a = if Nat.compare a t.modulus >= 0 then Nat.rem a t.modulus else a
let to_mont t a = mont_mul t (pad t.k (Nat.to_limbs (reduce t a))) t.r2

let mul t a b =
  (* REDC(aR * b) = a*b mod m: only one operand needs the conversion pass. *)
  Nat.of_limbs (mont_mul t (to_mont t a) (pad t.k (Nat.to_limbs (reduce t b))))

(* 4-bit fixed windows, most significant first, reading bits straight out of
   the exponent's limb array — no division-by-two loop. *)
let window_bits = 4

let pow t a e =
  if Nat.is_zero e then Nat.one (* modulus >= 3, so 1 mod m = 1 *)
  else begin
    let am = to_mont t a in
    let table = Array.make (1 lsl window_bits) t.one_m in
    table.(1) <- am;
    for i = 2 to (1 lsl window_bits) - 1 do
      table.(i) <- mont_mul t table.(i - 1) am
    done;
    let limbs = Nat.to_limbs e in
    let nbits = Nat.bit_length e in
    let bit j = limbs.(j / base_bits) lsr (j mod base_bits) land 1 in
    let window w =
      let lo = w * window_bits in
      let v = ref 0 in
      for j = min (lo + window_bits - 1) (nbits - 1) downto lo do
        v := (!v lsl 1) lor bit j
      done;
      !v
    in
    let nw = (nbits + window_bits - 1) / window_bits in
    let acc = ref table.(window (nw - 1)) in
    let nmul = ref 0 in
    for w = nw - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := mont_sqr t !acc
      done;
      let d = window w in
      if d <> 0 then begin
        incr nmul;
        acc := mont_mul t !acc table.(d)
      end
    done;
    if Obs.enabled () then begin
      Obs.Counter.add c_pow 1;
      (* to_mont + table fill + window squares + window multiplies + the
         final domain exit below — each is exactly one REDC. *)
      Obs.Counter.add c_redc
        (1 + ((1 lsl window_bits) - 2) + (window_bits * (nw - 1)) + !nmul + 1);
      Obs.Histo.observe h_pow_bits nbits
    end;
    (* Leave the Montgomery domain: REDC of the bare k-limb value. *)
    Nat.of_limbs (redc t !acc)
  end

let pow_int t a e =
  if e < 0 then invalid_arg "Montgomery.pow_int: negative exponent";
  pow t a (Nat.of_int e)
