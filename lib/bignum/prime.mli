(** Primality testing and prime search.

    Theorem 3.2 of the paper instantiates its linear hash family with a prime
    [p] in an interval [\[10 n^3, 100 n^3\]] (Protocol 1) or
    [\[10 n^(n+2), 100 n^(n+2)\]] (Protocol 2); Bertrand's postulate
    guarantees such a prime exists. [random_prime_in] finds one by rejection
    sampling with Miller–Rabin.

    The search pipeline is gated behind a small-prime sieve ({!Sieve}):
    candidates with a factor at most 97 are rejected before any rng draw,
    candidates caught by a larger trial prime [q] have their Miller–Rabin
    rounds decided by the mod-[q] projection of the round condition, and
    native-width candidates run their rounds in int arithmetic. Every path
    consumes exactly the rng draws the reference pipeline would and returns
    the same verdict, so the search returns the same prime for the same seed
    and leaves the rng at the same position — composites just cost ~10–50x
    less. [IDS_TRACE] counters: [prime.candidates], [prime.sieve_reject],
    [prime.trial_proved], [prime.mr_rounds], [prime.cert_rounds]. *)

val is_prime : ?rounds:int -> Rng.t -> Nat.t -> bool
(** [is_prime rng n] tests [n] for primality: sieve-backed trial division
    followed by [rounds] (default 32) Miller–Rabin rounds with random bases.
    The error probability is at most [4^-rounds] for composites. Draw-for-
    draw and verdict-for-verdict equal to {!is_prime_reference}. *)

val is_prime_int : int -> bool
(** Deterministic primality for native integers (sieve lookup up to
    [Sieve.limit], trial division beyond; intended for the moderate values
    used by Protocol 1's field, up to ~2^40). *)

val random_prime_in : Rng.t -> Nat.t -> Nat.t -> Nat.t
(** [random_prime_in rng lo hi] samples uniform odd candidates in
    [\[lo, hi\]] until one passes [is_prime].
    @raise Invalid_argument if the interval is empty.
    @raise Failure if no prime is found after a very large number of tries
    (which cannot happen on the intervals the protocols use). *)

val random_prime_in_int : Rng.t -> int -> int -> int
(** Native-integer variant of {!random_prime_in}. *)

(** {1 Reference pipeline}

    The pre-sieve implementation, kept verbatim as the oracle the gated
    pipeline is pinned against (tests assert same seed ⇒ same prime and
    same rng position; [bench/setup] times the two against each other). *)

val is_prime_reference : ?rounds:int -> Rng.t -> Nat.t -> bool

val random_prime_in_reference : Rng.t -> Nat.t -> Nat.t -> Nat.t
