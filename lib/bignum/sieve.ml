(* Bit-packed sieve of Eratosthenes over the odd numbers. One bit per odd
   integer (bit i represents 2i + 1), 62 bits per word, so the whole table
   for [limit] = 2^16 is ~530 words — built once at module initialization
   (a few microseconds) and shared read-only by every domain thereafter. *)

let limit = 1 lsl 16

let word_bits = 62

let table =
  let n_bits = (limit + 1) / 2 in
  let words = Array.make ((n_bits + word_bits - 1) / word_bits) 0 in
  let set i = words.(i / word_bits) <- words.(i / word_bits) lor (1 lsl (i mod word_bits)) in
  (* Mark composites: bit 0 is the number 1. *)
  set 0;
  let p = ref 3 in
  while !p * !p <= limit do
    if words.(!p / 2 / word_bits) land (1 lsl (!p / 2 mod word_bits)) = 0 then begin
      let c = ref (!p * !p) in
      while !c <= limit do
        set (!c / 2);
        c := !c + (2 * !p)
      done
    end;
    p := !p + 2
  done;
  words

let is_prime n =
  if n < 2 || n > limit then invalid_arg "Sieve.is_prime: out of range"
  else if n = 2 then true
  else if n land 1 = 0 then false
  else table.(n / 2 / word_bits) land (1 lsl (n / 2 mod word_bits)) = 0

(* The trial-division prefilter in [Prime] only uses primes up to
   [trial_bound]: beyond that, the cost of dividing outgrows the ~1/q
   fraction of candidates each extra prime q rejects. 4096 also puts the
   whole dSym range at n >= 24 below trial_bound^2, where trial division is
   a complete primality test. *)
let trial_bound = 4096

let primes_upto b =
  if b < 2 || b > limit then invalid_arg "Sieve.primes_upto: out of range";
  let acc = ref [] in
  let n = ref b in
  (* Walk downward so the list comes out ascending. *)
  if !n land 1 = 0 then decr n;
  while !n >= 3 do
    if is_prime !n then acc := !n :: !acc;
    n := !n - 2
  done;
  Array.of_list (2 :: !acc)

let trial_primes = primes_upto trial_bound

(* Greedy products of consecutive odd trial primes, each kept below 2^36 so
   [Nat.rem_int] can reduce a bignum candidate by a whole batch in one
   pass (the 2^36 window survived the 62-bit limb migration: rem_int now
   consumes each limb in sub-limb chunks, same bound, same batches); an int
   gcd against the (squarefree) product then reveals which batch primes
   divide the candidate. *)
type batch = { product : int; lo : int; hi : int }

let max_product = 1 lsl 36

let batches =
  let acc = ref [] in
  let i = ref 1 (* skip 2: candidates are forced odd before filtering *) in
  let np = Array.length trial_primes in
  while !i < np do
    let lo = !i in
    let product = ref trial_primes.(!i) in
    incr i;
    while !i < np && !product * trial_primes.(!i) < max_product do
      product := !product * trial_primes.(!i);
      incr i
    done;
    acc := { product = !product; lo; hi = !i - 1 } :: !acc
  done;
  Array.of_list (List.rev !acc)
