module Obs = Ids_obs.Obs

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let is_prime_int n =
  if n < 2 then false
  else if n <= Sieve.limit then Sieve.is_prime n
  else if n mod 2 = 0 then false
  else begin
    let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 2) in
    go 3
  end

(* One Miller-Rabin round: n - 1 = d * 2^s with d odd; witness a. The context
   carries the Montgomery precomputation for n (always odd here: even inputs
   are rejected by the small-prime filter before any round runs). *)
let miller_rabin_round ctx d s a =
  let n = Modarith.ctx_modulus ctx in
  let x = Modarith.ctx_pow ctx a d in
  let n_minus_1 = Nat.sub n Nat.one in
  if Nat.is_one x || Nat.equal x n_minus_1 then true
  else begin
    let rec squaring x i =
      if i >= s - 1 then false
      else
        let x = Modarith.ctx_mul ctx x x in
        if Nat.equal x n_minus_1 then true else squaring x (i + 1)
    in
    squaring x 0
  end

(* --- reference pipeline ------------------------------------------------- *)

(* The pre-sieve implementation, kept verbatim: the oracle that the gated
   pipeline below must match draw for draw (bench/setup times against it,
   tests pin equality). *)

let is_prime_reference ?(rounds = 32) rng n =
  match Nat.to_int_opt n with
  | Some k when k < 100 * 100 -> is_prime_int k
  | _ ->
    let divisible_by_small =
      List.exists (fun p -> Nat.is_zero (Nat.rem n (Nat.of_int p))) small_primes
    in
    if divisible_by_small then false
    else begin
      let n_minus_1 = Nat.sub n Nat.one in
      let rec split d s = if Nat.is_zero (Nat.rem d Nat.two) then split (Nat.shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n_minus_1 0 in
      let ctx = Modarith.ctx n in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          let a = Nat.add Nat.two (Nat.random_below rng (Nat.sub n (Nat.of_int 3))) in
          if miller_rabin_round ctx d s a then rounds_left (k - 1) else false
        end
      in
      rounds_left rounds
    end

let random_prime_in_reference rng lo hi =
  if Nat.compare lo hi > 0 then invalid_arg "Prime.random_prime_in: empty range";
  let max_tries = 10_000 * Nat.bit_length hi in
  let rec search tries =
    if tries = 0 then failwith "Prime.random_prime_in: no prime found"
    else begin
      let c = Nat.random_in rng lo hi in
      let c = if Nat.is_zero (Nat.rem c Nat.two) then Nat.add c Nat.one else c in
      if Nat.compare c hi <= 0 && is_prime_reference rng c then c else search (tries - 1)
    end
  in
  search max_tries

(* --- sieve-gated pipeline ------------------------------------------------ *)

(* The contract: same rng draws, same decisions as the reference, candidate
   by candidate, so [random_prime_in] returns the same prime for the same
   seed and leaves the rng at the same position. Per candidate class:

   - smallest trial-prime factor q <= 97: rejected with zero draws, exactly
     like the reference's 25-prime filter.
   - smallest trial-prime factor q in (97, 4096]: the reference would run
     full Miller-Rabin rounds. We draw each base identically, then decide
     the round by its mod-q projection: since q | n, a round that passes in
     Z_n forces a^d = 1 or a^(d 2^i) = -1 (mod q), so if neither holds mod q
     (an O(s) int computation), the round certainly fails — same decision,
     same single draw. In the ~(s+2)/q of cases where the projection is
     inconclusive, fall back to the full bignum round.
   - no trial-prime factor, n < trial_bound^2: trial division has proved n
     prime. Miller-Rabin never rejects a prime, so the reference would run
     [rounds] passing rounds, one base draw each — burn the same draws (no
     exponentiations) and accept.
   - no trial-prime factor, n < 2^31 otherwise: run the true rounds in
     native-int arithmetic (operands < 2^31 keep products in 62 bits);
     identical draws and decisions, ~10-50x cheaper than bignum rounds.
   - otherwise: the reference bignum rounds, unchanged. *)

let c_candidates = Obs.Counter.make "prime.candidates"
let c_sieve_reject = Obs.Counter.make "prime.sieve_reject"
let c_trial_proved = Obs.Counter.make "prime.trial_proved"
let c_mr_rounds = Obs.Counter.make "prime.mr_rounds"
let c_cert_rounds = Obs.Counter.make "prime.cert_rounds"

(* Exactly the reference's base draw. *)
let draw_base rng n = Nat.add Nat.two (Nat.random_below rng (Nat.sub n (Nat.of_int 3)))

(* Square-and-multiply for native moduli < 2^31 (products stay < 2^62). *)
let powmod_native a e m =
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then acc * b mod m else acc) (b * b mod m) (e lsr 1)
  in
  go 1 (a mod m) e

let rec split_int d s = if d land 1 = 0 then split_int (d lsr 1) (s + 1) else (d, s)

(* A native-arithmetic Miller-Rabin round: the same decision procedure as
   {!miller_rabin_round} on the same values, for moduli < 2^31. *)
let mr_round_native k d s a =
  let x = powmod_native a d k in
  if x = 1 || x = k - 1 then true
  else begin
    let rec squaring x i =
      if i >= s - 1 then false
      else begin
        let x = x * x mod k in
        if x = k - 1 then true else squaring x (i + 1)
      end
    in
    squaring x 0
  end

(* Scan for the smallest trial-prime factor of native k; [`Proved_prime]
   means no prime <= sqrt k divides k. *)
let rec native_factor k i =
  if i >= Array.length Sieve.trial_primes then `No_factor
  else begin
    let p = Sieve.trial_primes.(i) in
    if p * p > k then `Proved_prime
    else if k mod p = 0 then `Factor p
    else native_factor k (i + 1)
  end

let is_prime_native ~rounds rng n k =
  match native_factor k 0 with
  | `Factor p when p <= 97 ->
    Obs.Counter.add c_sieve_reject 1;
    false
  | `Proved_prime ->
    (* The reference would run [rounds] passing rounds; burn its draws. *)
    Obs.Counter.add c_trial_proved 1;
    for _ = 1 to rounds do
      ignore (draw_base rng n)
    done;
    true
  | `Factor _ | `No_factor ->
    let d, s = split_int (k - 1) 0 in
    let rec rounds_left r =
      if r = 0 then true
      else begin
        let a = Nat.to_int (draw_base rng n) in
        Obs.Counter.add c_mr_rounds 1;
        if mr_round_native k d s a then rounds_left (r - 1) else false
      end
    in
    rounds_left rounds

(* The bignum scan stops at primes <= 1024 rather than the full trial bound:
   past that point a batch's hit probability (sum of 1/q over its primes)
   times the cost of the avoided Miller-Rabin round drops below the cost of
   the batch's [rem_int] + residue scan. Candidates whose smallest factor lies above
   the cap simply take the full-round path — the same rounds the reference
   runs, so the cap is a pure tuning knob with no effect on decisions. *)
let nat_scan_bound = 1024

let nat_batch_count =
  let rec go i =
    if
      i >= Array.length Sieve.batches
      || Sieve.trial_primes.(Sieve.batches.(i).Sieve.lo) > nat_scan_bound
    then i
    else go (i + 1)
  in
  go 0

(* Smallest trial-prime factor (up to [nat_scan_bound]) of a bignum: one
   [Nat.rem_int] per batch of primes folds the whole candidate down to a
   native residue, then each prime in the batch is a single int [mod]
   (cheaper than a gcd against the batch product at these batch sizes).
   Batches are ascending, so the first hit is the smallest factor. *)
let nat_factor n =
  let limbs = Nat.to_limbs n in
  if Array.length limbs > 0 && limbs.(0) land 1 = 0 then Some 2
  else begin
    let nb = nat_batch_count in
    let rec scan i =
      if i >= nb then None
      else begin
        let b = Sieve.batches.(i) in
        let r = Nat.rem_int n b.Sieve.product in
        let rec first j =
          if j > b.Sieve.hi then scan (i + 1)
          else if r mod Sieve.trial_primes.(j) = 0 then Some Sieve.trial_primes.(j)
          else first (j + 1)
        in
        first b.Sieve.lo
      end
    in
    scan 0
  end

let is_prime_nat ~rounds rng n =
  let factor = nat_factor n in
  match factor with
  | Some q when q <= 97 ->
    Obs.Counter.add c_sieve_reject 1;
    false
  | _ ->
    let n_minus_1 = Nat.sub n Nat.one in
    let rec split d s = if Nat.is_zero (Nat.rem d Nat.two) then split (Nat.shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n_minus_1 0 in
    (* Only the full-round fallback needs the (Montgomery) context. *)
    let ctx = lazy (Modarith.ctx n) in
    let full_round a =
      Obs.Counter.add c_mr_rounds 1;
      miller_rabin_round (Lazy.force ctx) d s a
    in
    let round =
      match factor with
      | Some q ->
        (* q | n with 97 < q <= trial_bound: decide rounds by their mod-q
           projection, falling back to the full round when inconclusive. *)
        let d_q = Nat.rem_int d (q - 1) in
        fun a ->
          let aq = Nat.rem_int a q in
          let x0 = if aq = 0 then 0 else powmod_native aq d_q q in
          let rec chain x i = i < s && (x = q - 1 || chain (x * x mod q) (i + 1)) in
          if x0 = 1 || chain x0 0 then full_round a
          else begin
            Obs.Counter.add c_cert_rounds 1;
            false
          end
      | None -> full_round
    in
    let rec rounds_left r =
      if r = 0 then true
      else begin
        let a = draw_base rng n in
        if round a then rounds_left (r - 1) else false
      end
    in
    rounds_left rounds

let is_prime ?(rounds = 32) rng n =
  match Nat.to_int_opt n with
  | Some k when k < 100 * 100 -> is_prime_int k
  | Some k when k < 1 lsl 31 -> is_prime_native ~rounds rng n k
  | _ -> is_prime_nat ~rounds rng n

let random_prime_in rng lo hi =
  if Nat.compare lo hi > 0 then invalid_arg "Prime.random_prime_in: empty range";
  let max_tries = 10_000 * Nat.bit_length hi in
  let rec search tries =
    if tries = 0 then failwith "Prime.random_prime_in: no prime found"
    else begin
      let c = Nat.random_in rng lo hi in
      (* Force the candidate odd (primes 2 below [lo] are irrelevant at the
         magnitudes the protocols use). *)
      let c = if Nat.is_zero (Nat.rem c Nat.two) then Nat.add c Nat.one else c in
      Obs.Counter.add c_candidates 1;
      if Nat.compare c hi <= 0 && is_prime rng c then c else search (tries - 1)
    end
  in
  search max_tries

let random_prime_in_int rng lo hi =
  Nat.to_int (random_prime_in rng (Nat.of_int lo) (Nat.of_int hi))
