let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let is_prime_int n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 2) in
    go 3
  end

(* One Miller-Rabin round: n - 1 = d * 2^s with d odd; witness a. The context
   carries the Montgomery precomputation for n (always odd here: even inputs
   are rejected by the small-prime filter before any round runs). *)
let miller_rabin_round ctx d s a =
  let n = Modarith.ctx_modulus ctx in
  let x = Modarith.ctx_pow ctx a d in
  let n_minus_1 = Nat.sub n Nat.one in
  if Nat.is_one x || Nat.equal x n_minus_1 then true
  else begin
    let rec squaring x i =
      if i >= s - 1 then false
      else
        let x = Modarith.ctx_mul ctx x x in
        if Nat.equal x n_minus_1 then true else squaring x (i + 1)
    in
    squaring x 0
  end

let is_prime ?(rounds = 32) rng n =
  match Nat.to_int_opt n with
  | Some k when k < 100 * 100 -> is_prime_int k
  | _ ->
    let divisible_by_small =
      List.exists
        (fun p -> Nat.is_zero (Nat.rem n (Nat.of_int p)))
        small_primes
    in
    if divisible_by_small then false
    else begin
      let n_minus_1 = Nat.sub n Nat.one in
      (* Write n - 1 = d * 2^s with d odd. *)
      let rec split d s = if Nat.is_zero (Nat.rem d Nat.two) then split (Nat.shift_right d 1) (s + 1) else (d, s) in
      let d, s = split n_minus_1 0 in
      let ctx = Modarith.ctx n in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          let a = Nat.add Nat.two (Nat.random_below rng (Nat.sub n (Nat.of_int 3))) in
          if miller_rabin_round ctx d s a then rounds_left (k - 1) else false
        end
      in
      rounds_left rounds
    end

let random_prime_in rng lo hi =
  if Nat.compare lo hi > 0 then invalid_arg "Prime.random_prime_in: empty range";
  let max_tries = 10_000 * Nat.bit_length hi in
  let rec search tries =
    if tries = 0 then failwith "Prime.random_prime_in: no prime found"
    else begin
      let c = Nat.random_in rng lo hi in
      (* Force the candidate odd (primes 2 below [lo] are irrelevant at the
         magnitudes the protocols use). *)
      let c = if Nat.is_zero (Nat.rem c Nat.two) then Nat.add c Nat.one else c in
      if Nat.compare c hi <= 0 && is_prime rng c then c else search (tries - 1)
    end
  in
  search max_tries

let random_prime_in_int rng lo hi =
  Nat.to_int (random_prime_in rng (Nat.of_int lo) (Nat.of_int hi))
