(* Little-endian arrays of limbs in base 2^26. The base is chosen so that a
   limb product (< 2^52) plus carries stays well inside a 63-bit native int,
   including the two-limb numerators used by Algorithm D's quotient guess. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

type t = int array

let zero = [||]
let one = [| 1 |]
let two = [| 2 |]

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1

(* Strip leading (high-order) zero limbs so representations are canonical. *)
let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int k =
  if k < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs k acc = if k = 0 then List.rev acc else limbs (k lsr base_bits) ((k land mask) :: acc) in
  Array.of_list (limbs k [])

let to_int_opt a =
  let n = Array.length a in
  if n = 0 then Some 0
  else if (n - 1) * base_bits >= 63 then None
  else begin
    let rec go i acc =
      if i < 0 then Some acc
      else
        let high = acc lsl base_bits in
        if high lsr base_bits <> acc || high < 0 then None
        else
          let acc' = high lor a.(i) in
          if acc' < 0 then None else go (i - 1) acc'
    in
    go (n - 1) 0
  end

let to_int a =
  match to_int_opt a with
  | Some k -> k
  | None -> failwith "Nat.to_int: overflow"

let equal a b = a = b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

let add_int a k = add a (of_int k)

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

(* Squaring by product scanning with the symmetric-term trick (same shape as
   Montgomery.sqr_limbs): column c sums the pairs a_i * a_(c-i) with i < c-i
   once, doubles the sum, and adds the diagonal a_(c/2)^2 when c is even —
   about half the limb products of the schoolbook rectangle. Column bound:
   at most la/2 pairs of 52-bit products, doubled, plus diagonal and an
   incoming carry < 2^36, so for la <= 512 the accumulator stays below
   2^62. *)
let sqr_scan_max = 512

let sqr_scan a =
  let la = Array.length a in
  let r = Array.make (2 * la) 0 in
  let carry = ref 0 in
  for c = 0 to (2 * la) - 2 do
    let lo = max 0 (c - la + 1) in
    let hi = (c - 1) asr 1 in
    let sum = ref 0 in
    for i = lo to hi do
      sum := !sum + (a.(i) * a.(c - i))
    done;
    let cur = !carry + (2 * !sum) + (if c land 1 = 0 then a.(c / 2) * a.(c / 2) else 0) in
    r.(c) <- cur land mask;
    carry := cur lsr base_bits
  done;
  (* The total is < base^(2 la), so the final carry fits the top limb. *)
  r.((2 * la) - 1) <- !carry;
  normalize r

(* [add_at r x off]: r += x * base^off, in place. The carry walk past the
   end of [x] cannot overrun [r] as long as the running sum stays below
   base^(length r), which holds at every Karatsuba combine site (partial
   sums of a product are bounded by the product). *)
let add_at r x off =
  let lx = Array.length x in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let cur = r.(off + i) + x.(i) + !carry in
    r.(off + i) <- cur land mask;
    carry := cur lsr base_bits
  done;
  let j = ref (off + lx) in
  while !carry <> 0 do
    let cur = r.(!j) + !carry in
    r.(!j) <- cur land mask;
    carry := cur lsr base_bits;
    incr j
  done

(* z0 + z1 * base^m + z2 * base^2m accumulated into one [len]-limb array —
   a single allocation instead of shift-and-add chains. *)
let combine ~len z0 z1 z2 m =
  let r = Array.make len 0 in
  Array.blit z0 0 r 0 (Array.length z0);
  add_at r z1 m;
  add_at r z2 (2 * m);
  normalize r

(* Above the scanning cap, split at half the limbs: a = a1 * base^m + a0 and
   a^2 = a1^2 * base^2m + ((a0 + a1)^2 - a0^2 - a1^2) * base^m + a0^2 —
   three half-size squarings, no general multiplication needed. *)
let rec sqr a =
  let la = Array.length a in
  if la = 0 then zero
  else if la <= sqr_scan_max then sqr_scan a
  else begin
    let m = la / 2 in
    let a0 = normalize (Array.sub a 0 m) and a1 = Array.sub a m (la - m) in
    let z0 = sqr a0 and z2 = sqr a1 in
    let z1 = sub (sqr (add a0 a1)) (add z0 z2) in
    combine ~len:(2 * la) z0 z1 z2 m
  end

(* Karatsuba above [karatsuba_threshold] limbs: three half-size products
   instead of four. The threshold is where the recursion's extra adds and
   allocations stop outweighing the saved limb products; with 26-bit limbs
   and the single-pass combine it sits around 64 limbs (measured — below
   that the schoolbook inner loop wins on locality). *)
let karatsuba_threshold = 64

let rec mul a b =
  if a == b then sqr a
  else begin
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then zero
    else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
    else begin
      let m = max la lb / 2 in
      let low x lx = if lx <= m then x else normalize (Array.sub x 0 m) in
      let high x lx = if lx <= m then zero else Array.sub x m (lx - m) in
      let a0 = low a la and a1 = high a la in
      let b0 = low b lb and b1 = high b lb in
      let z0 = mul a0 b0 in
      let z2 = mul a1 b1 in
      let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
      combine ~len:(la + lb) z0 z1 z2 m
    end
  end

(* Scalars up to 2^34 multiply in one sweep: limb * k < 2^60 plus a carry
   < 2^34 stays inside a native int. Larger scalars (none in this codebase)
   fall back to a full multiplication. *)
let mul_int_max = 1 lsl 34

let mul_int a k =
  if k < 0 then invalid_arg "Nat.mul_int: negative"
  else if k = 0 || is_zero a then zero
  else if k < mul_int_max then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * k) + !carry in
      r.(i) <- cur land mask;
      carry := cur lsr base_bits
    done;
    r.(la) <- !carry land mask;
    r.(la + 1) <- !carry lsr base_bits;
    normalize r
  end
  else mul a (of_int k)

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 1
  end

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb: straightforward high-to-low sweep. The running
   remainder is < base, so [rem * base + limb < 2^52]. *)
let divmod_limb a d =
  assert (d > 0 && d < base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

(* Remainder by a native divisor in one high-to-low sweep, without building
   the quotient. Valid for d < 2^36: the running remainder is < d, so
   [r * base + limb < 2^62]. The prime-search prefilter leans on the wider
   bound to reduce by whole products of small primes at a time. *)
let rem_int_max = 1 lsl 36

let rem_int a d =
  if d <= 0 || d >= rem_int_max then invalid_arg "Nat.rem_int: divisor out of range";
  let r = ref 0 in
  for i = Array.length a - 1 downto 0 do
    r := ((!r lsl base_bits) lor a.(i)) mod d
  done;
  !r

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D. Both operands are first shifted so
   the divisor's top limb has its high bit set, which bounds the quotient
   guess [qhat] to within 2 of the true digit. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end
  else begin
    let shift = base_bits - (bit_length b - ((Array.length b - 1) * base_bits)) in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    (* Working copy of the dividend with one extra high limb. *)
    let m = Array.length u - n in
    let u = Array.append u (Array.make (m + n + 2 - Array.length u) 0) in
    let q = Array.make (m + 1) 0 in
    let v_top = v.(n - 1) and v_next = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / v_top) and rhat = ref (num mod v_top) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - ((base - 1) * v_top)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * v_next > (!rhat lsl base_bits) lor u.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + v_top
        end
        else continue := false
      done;
      (* Multiply-and-subtract [qhat * v] from the current window of [u]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* The guess was one too large: add the divisor back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !carry in
          u.(j + i) <- s land mask;
          carry := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one a k

let ten_pow_7 = 10_000_000

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel seven decimal digits at a time using single-limb division. *)
    let rec chunks a acc =
      if is_zero a then acc
      else
        let q, r = divmod_limb a ten_pow_7 in
        chunks q (r :: acc)
    in
    match chunks a [] with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
      Buffer.contents buf
  end

(* Integer powers of ten for the parsing chunks; [ten_pow.(k) = 10^k] for
   k <= 7. Exact by construction, unlike a [10. ** k] round-trip. *)
let ten_pow = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit") s;
  let acc = ref zero in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    let take = min 7 (len - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    acc := add_int (mul_int !acc ten_pow.(take)) chunk;
    i := !i + take
  done;
  !acc

let to_limbs a = Array.copy a

let of_limbs l =
  Array.iter (fun x -> if x < 0 || x > mask then invalid_arg "Nat.of_limbs: limb out of range") l;
  normalize (Array.copy l)

let random_below rng n =
  if is_zero n then invalid_arg "Nat.random_below: zero bound";
  let k = bit_length n in
  let limbs = (k + base_bits - 1) / base_bits in
  let top_bits = k - ((limbs - 1) * base_bits) in
  let rec draw () =
    let r = Array.init limbs (fun i -> if i = limbs - 1 then Rng.bits rng top_bits else Rng.bits rng base_bits) in
    let r = normalize r in
    if compare r n < 0 then r else draw ()
  in
  draw ()

let random_in rng lo hi =
  if compare lo hi > 0 then invalid_arg "Nat.random_in: empty range";
  add lo (random_below rng (add_int (sub hi lo) 1))

let pp fmt a = Format.pp_print_string fmt (to_string a)
