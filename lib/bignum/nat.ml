(* Little-endian arrays of limbs in base 2^62 — the widest radix a 63-bit
   OCaml native int can hold ([max_int] is exactly 2^62 - 1, so a limb is any
   non-negative int below [2^62] and [mask = max_int]). A limb product no
   longer fits a native int, so the quadratic kernels run either in C with
   unsigned __int128 partials (Kernel, the default) or in pure OCaml over
   31-bit half-limb "digits" whose products (< 2^62) do fit; division
   (Algorithm D) always runs in digit space for the same reason. Carry and
   borrow chains at the limb level are still native: a sum x + y + carry is
   < 2^63 and its low/high split is [land mask] / [lsr 62] on the 63-bit
   two's-complement pattern, and a borrow d in (-2^62, 2^62) reduces with
   [d land mask].

   The draw radix of [random_below] is NOT the limb radix: random values are
   assembled from fixed 26-bit Rng chunks, low to high, exactly as the 26-bit
   representation drew them — every committed (seed -> prime, next-bits) pin
   depends on that stream shape, so it is frozen independently of storage. *)

let base_bits = 62
let mask = max_int (* = 2^62 - 1; "base" itself is not representable *)

type t = int array

let zero = [||]
let one = [| 1 |]
let two = [| 2 |]

let is_zero a = Array.length a = 0
let is_one a = Array.length a = 1 && a.(0) = 1

(* Strip leading (high-order) zero limbs so representations are canonical. *)
let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

(* Every non-negative native int is a single limb: max_int = mask. *)
let of_int k =
  if k < 0 then invalid_arg "Nat.of_int: negative";
  if k = 0 then zero else [| k |]

let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0) (* a limb is at most mask = max_int *)
  | _ -> None (* normalized, so a second limb means the value is >= 2^62 *)

let to_int a =
  match to_int_opt a with
  | Some k -> k
  | None -> failwith "Nat.to_int: overflow"

let equal a b = a = b

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(n) <- !carry;
  normalize r

let add_int a k = add a (of_int k)

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    r.(i) <- d land mask;
    borrow := if d < 0 then 1 else 0
  done;
  assert (!borrow = 0);
  normalize r

(* --- 31-bit digit views ---------------------------------------------------

   A limb splits exactly into two 31-bit digits (62 = 2 * 31). Digit products
   are < 2^62, so the pre-migration operand-scanning and Algorithm D code
   works verbatim at this radix; these are the pure-OCaml fallback kernels
   and the only division path. *)

let digit_bits = 31
let digit_base = 1 lsl digit_bits
let digit_mask = digit_base - 1

let to_digits a =
  let la = Array.length a in
  let d = Array.make (2 * la) 0 in
  for i = 0 to la - 1 do
    d.(2 * i) <- a.(i) land digit_mask;
    d.((2 * i) + 1) <- a.(i) lsr digit_bits
  done;
  let n = ref (Array.length d) in
  while !n > 0 && d.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length d then d else Array.sub d 0 !n

let of_digits d =
  let ld = Array.length d in
  let la = (ld + 1) / 2 in
  normalize
    (Array.init la (fun i ->
         let lo = d.(2 * i) in
         let hi = if (2 * i) + 1 < ld then d.((2 * i) + 1) else 0 in
         lo lor (hi lsl digit_bits)))

let digits_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land digit_mask;
        carry := cur lsr digit_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land digit_mask;
        carry := cur lsr digit_bits;
        incr k
      done
    done;
    r
  end

(* The reference quadratic product: pure OCaml, no C, no recursion. Oracle
   for every other multiply tier in tests and benches. *)
let mul_schoolbook a b = of_digits (digits_mul (to_digits a) (to_digits b))

(* Base multiply: the C operand-scanning kernel when enabled and within its
   buffer cap, the digit schoolbook otherwise. Oversized unbalanced operands
   (long * short below the Karatsuba threshold) are fed to C in slices. *)
let c_mul a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  Kernel.nat_mul a b r;
  normalize r

(* [add_at r x off]: r += x * 2^(62 off), in place. The carry walk past the
   end of [x] cannot overrun [r] as long as the running sum stays below
   2^(62 * length r), which holds at every combine site (partial sums of a
   product are bounded by the product). *)
let add_at r x off =
  let lx = Array.length x in
  let carry = ref 0 in
  for i = 0 to lx - 1 do
    let cur = r.(off + i) + x.(i) + !carry in
    r.(off + i) <- cur land mask;
    carry := cur lsr base_bits
  done;
  let j = ref (off + lx) in
  while !carry <> 0 do
    let cur = r.(!j) + !carry in
    r.(!j) <- cur land mask;
    carry := cur lsr base_bits;
    incr j
  done

let mul_base a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if not Kernel.use_c then mul_schoolbook a b
  else if la + lb <= Kernel.mul_cap then c_mul a b
  else begin
    (* Slice the longer operand so each C call fits its stack buffer. Only
       reachable for very unbalanced pairs: balanced ones split in the
       recursive tiers long before 1024 limbs. *)
    let x, y = if la >= lb then (a, b) else (b, a) in
    let lx = Array.length x and ly = Array.length y in
    let chunk = Kernel.mul_cap - ly in
    let r = Array.make (la + lb) 0 in
    let off = ref 0 in
    while !off < lx do
      let len = min chunk (lx - !off) in
      let part = normalize (Array.sub x !off len) in
      if not (is_zero part) then add_at r (c_mul part y) !off;
      off := !off + len
    done;
    normalize r
  end

(* z0 + z1 * 2^(62 m) + z2 * 2^(62 * 2m) accumulated into one [len]-limb
   array — a single allocation instead of shift-and-add chains. *)
let combine ~len z0 z1 z2 m =
  let r = Array.make len 0 in
  Array.blit z0 0 r 0 (Array.length z0);
  add_at r z1 m;
  add_at r z2 (2 * m);
  normalize r

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((n - 1) * base_bits) + width 1
  end

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      (* At this radix the shifted limb no longer fits one native int:
         split into the in-limb part and the explicit spill. *)
      r.(i + limb_shift) <- r.(i + limb_shift) lor ((a.(i) lsl bit_shift) land mask);
      if bit_shift > 0 then
        r.(i + limb_shift + 1) <- a.(i) lsr (base_bits - bit_shift)
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single native divisor below 2^31, one half-limb step at a
   time: the running remainder is < d < 2^31, so each window
   [(rem lsl 31) lor digit] is below 2^62. *)
let divmod_limb a d =
  assert (d > 0 && d < digit_base);
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let hi_win = (!r lsl digit_bits) lor (a.(i) lsr digit_bits) in
    let q_hi = hi_win / d in
    let lo_win = ((hi_win mod d) lsl digit_bits) lor (a.(i) land digit_mask) in
    q.(i) <- (q_hi lsl digit_bits) lor (lo_win / d);
    r := lo_win mod d
  done;
  (normalize q, !r)

(* Remainder by a native divisor in one high-to-low sweep, without building
   the quotient. Valid for d < 2^36; the limb is consumed in chunks small
   enough that [(rem lsl chunk) lor bits] stays below 2^62 — two 31-bit
   chunks when d < 2^31, a 10/26/26 split otherwise. The prime-search
   prefilter leans on the wider bound to reduce by whole products of small
   primes at a time. *)
let rem_int_max = 1 lsl 36

let rem_int a d =
  if d <= 0 || d >= rem_int_max then invalid_arg "Nat.rem_int: divisor out of range";
  let r = ref 0 in
  if d < digit_base then
    for i = Array.length a - 1 downto 0 do
      let ai = a.(i) in
      let t = ((!r lsl digit_bits) lor (ai lsr digit_bits)) mod d in
      r := ((t lsl digit_bits) lor (ai land digit_mask)) mod d
    done
  else
    for i = Array.length a - 1 downto 0 do
      let ai = a.(i) in
      let t = ((!r lsl 10) lor (ai lsr 52)) mod d in
      let t = ((t lsl 26) lor ((ai lsr 26) land 0x3ffffff)) mod d in
      r := ((t lsl 26) lor (ai land 0x3ffffff)) mod d
    done;
  !r

(* Knuth TAOCP vol. 2, Algorithm 4.3.1 D, run over the 31-bit digit view so
   the two-digit numerators and qhat * digit products fit a native int. Both
   operands are first shifted so the divisor's top digit has its high bit
   set, which bounds the quotient guess [qhat] to within 2 of the true
   digit. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 && b.(0) < digit_base then begin
    let q, r = divmod_limb a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end
  else begin
    let bd = to_digits b in
    let shift = digit_bits - (bit_length b - ((Array.length bd - 1) * digit_bits)) in
    let u = to_digits (shift_left a shift) and v = to_digits (shift_left b shift) in
    let n = Array.length v in
    (* Working copy of the dividend with one extra high digit. *)
    let m = Array.length u - n in
    let u = Array.append u (Array.make (m + n + 2 - Array.length u) 0) in
    let q = Array.make (m + 1) 0 in
    let v_top = v.(n - 1) and v_next = v.(n - 2) in
    for j = m downto 0 do
      let num = (u.(j + n) lsl digit_bits) lor u.(j + n - 1) in
      let qhat = ref (num / v_top) and rhat = ref (num mod v_top) in
      if !qhat >= digit_base then begin
        qhat := digit_base - 1;
        rhat := num - ((digit_base - 1) * v_top)
      end;
      let continue = ref true in
      while !continue && !rhat < digit_base do
        if !qhat * v_next > (!rhat lsl digit_bits) lor u.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + v_top
        end
        else continue := false
      done;
      (* Multiply-and-subtract [qhat * v] from the current window of [u]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr digit_bits;
        let d = u.(j + i) - (p land digit_mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + digit_base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* The guess was one too large: add the divisor back. *)
        u.(j + n) <- d + digit_base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !carry in
          u.(j + i) <- s land digit_mask;
          carry := s lsr digit_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land digit_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = of_digits (Array.sub u 0 n) in
    (of_digits q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* --- recursive multiply tiers --------------------------------------------

   Base (C operand scanning / digit schoolbook) below [karatsuba_threshold]
   limbs, Karatsuba in the middle, Toom-3 from [toom3_threshold] up.
   Thresholds were measured against the C kernel on the committed bench
   host: the quadratic kernel holds its own up to ~64 limbs (~4000 bits)
   and Karatsuba wins cleanly from 96, so the switch sits at 80; Toom-3's
   five evaluations only amortize once both operands pass ~512 limbs
   (~32000 bits — mul pulls ahead near 1024 limbs, sqr already at 768).
   bench/modarith's toom rows re-measure both crossover neighborhoods. *)

let karatsuba_threshold = 80
let toom3_threshold = 512

(* Slice [len] limbs of x starting at [off] (clamped, normalized). *)
let slice x off len =
  let lx = Array.length x in
  if off >= lx then zero else normalize (Array.sub x off (min len (lx - off)))

(* |u - v| with its sign: Toom-3's evaluation at -1 is the only signed value
   in the whole pipeline, so a (sign, magnitude) pair beats a signed-Nat
   wrapper. *)
let sub_signed u v = if compare u v >= 0 then (1, sub u v) else (-1, sub v u)

(* The C square kernel needs 2 * la <= Kernel.mul_cap, capping the base
   tier at 512 limbs. Squaring's cheaper inner loop pushes its Karatsuba
   crossover past that cap, so base squaring runs right up to the Toom-3
   tier and the split recursion below only fires if the thresholds move. *)
let sqr_base_max = 512

let sqr_base a =
  if not Kernel.use_c then begin
    let d = to_digits a in
    of_digits (digits_mul d d)
  end
  else begin
    let la = Array.length a in
    let r = Array.make (2 * la) 0 in
    Kernel.nat_sqr a r;
    normalize r
  end

let rec sqr a =
  let la = Array.length a in
  if la = 0 then zero
  else if la <= sqr_base_max then sqr_base a
  else if la >= toom3_threshold then toom3_sqr a
  else begin
    (* a = a1 * X + a0, a^2 = a1^2 X^2 + ((a0+a1)^2 - a0^2 - a1^2) X + a0^2:
       three half-size squarings, no general multiplication needed. *)
    let m = la / 2 in
    let a0 = normalize (Array.sub a 0 m) and a1 = Array.sub a m (la - m) in
    let z0 = sqr a0 and z2 = sqr a1 in
    let z1 = sub (sqr (add a0 a1)) (add z0 z2) in
    combine ~len:(2 * la) z0 z1 z2 m
  end

and mul a b =
  if a == b then sqr a
  else begin
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then zero
    else if la < karatsuba_threshold || lb < karatsuba_threshold then mul_base a b
    else if la >= toom3_threshold && lb >= toom3_threshold then toom3_mul a b
    else begin
      let m = max la lb / 2 in
      let low x lx = if lx <= m then x else normalize (Array.sub x 0 m) in
      let high x lx = if lx <= m then zero else Array.sub x m (lx - m) in
      let a0 = low a la and a1 = high a la in
      let b0 = low b lb and b1 = high b lb in
      let z0 = mul a0 b0 in
      let z2 = mul a1 b1 in
      let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
      combine ~len:(la + lb) z0 z1 z2 m
    end
  end

(* Toom-3: split both operands into three parts at X = 2^(62 m), evaluate
   the part polynomials at {0, 1, -1, 2, inf}, multiply pointwise (five
   third-size products instead of Karatsuba's scaled 5.. = 3^log ratio),
   and interpolate. With A = a2 X^2 + a1 X + a0 and coefficients
   c0..c4 of the product polynomial:

     w0 = c0                         (at 0)
     w1 = c0 + c1 + c2 + c3 + c4     (at 1)
     wm = c0 - c1 + c2 - c3 + c4     (at -1, the one signed value)
     w2 = c0 + 2c1 + 4c2 + 8c3 + 16c4  (at 2)
     wi = c4                         (at inf)

   so (w1 + wm)/2 = c0 + c2 + c4 and (w1 - wm)/2 = c1 + c3 recover c2 and
   the odd pair; w2 minus the known even part leaves 2c1 + 8c3, and
   ((w2')/2 - (c1 + c3)) / 3 = c3. Every subtraction below is of a value
   from a sum that contains it, so all intermediates stay non-negative; the
   halvings are exact (even values) and the division by 3 is exact, asserted
   via the single-limb remainder. *)
and toom3_parts x m = (slice x 0 m, slice x m m, slice x (2 * m) max_int)

and toom3_eval x m =
  let x0, x1, x2 = toom3_parts x m in
  let p = add x0 x2 in
  let at1 = add p x1 in
  let s, atm = sub_signed p x1 in
  let at2 = add (add x0 (shift_left x1 1)) (shift_left x2 2) in
  (x0, x2, at1, s, atm, at2)

and toom3_interp ~len ~m ~w0 ~wi ~w1 ~sm ~wm ~w2 =
  let even = shift_right (if sm >= 0 then add w1 wm else sub w1 wm) 1 in
  let odd = shift_right (if sm >= 0 then sub w1 wm else add w1 wm) 1 in
  let c2 = sub even (add w0 wi) in
  let t = sub w2 (add w0 (add (shift_left c2 2) (shift_left wi 4))) in
  let t = shift_right t 1 in
  let c3, r3 = divmod_limb (sub t odd) 3 in
  assert (r3 = 0);
  let c1 = sub odd c3 in
  let r = Array.make len 0 in
  Array.blit w0 0 r 0 (Array.length w0);
  add_at r c1 m;
  add_at r c2 (2 * m);
  add_at r c3 (3 * m);
  add_at r wi (4 * m);
  normalize r

and toom3_mul a b =
  let la = Array.length a and lb = Array.length b in
  let m = ((max la lb) + 2) / 3 in
  let a0, a2, a_1, sa, a_m, a_2 = toom3_eval a m in
  let b0, b2, b_1, sb, b_m, b_2 = toom3_eval b m in
  let w0 = mul a0 b0 in
  let wi = mul a2 b2 in
  let w1 = mul a_1 b_1 in
  let wm = mul a_m b_m in
  let w2 = mul a_2 b_2 in
  toom3_interp ~len:(la + lb) ~m ~w0 ~wi ~w1 ~sm:(sa * sb) ~wm ~w2

and toom3_sqr a =
  let la = Array.length a in
  let m = (la + 2) / 3 in
  let a0, a2, a_1, _sa, a_m, a_2 = toom3_eval a m in
  let w0 = sqr a0 in
  let wi = sqr a2 in
  let w1 = sqr a_1 in
  let wm = sqr a_m in
  let w2 = sqr a_2 in
  toom3_interp ~len:(2 * la) ~m ~w0 ~wi ~w1 ~sm:1 ~wm ~w2

(* Scalars below 2^31 multiply in one digit sweep: digit * k < 2^62 plus a
   carry < k stays inside a native int. Larger scalars fall back to a full
   multiplication. *)
let mul_int_max = digit_base

let mul_int a k =
  if k < 0 then invalid_arg "Nat.mul_int: negative"
  else if k = 0 || is_zero a then zero
  else if k < mul_int_max then begin
    let d = to_digits a in
    let ld = Array.length d in
    let r = Array.make (ld + 2) 0 in
    let carry = ref 0 in
    for i = 0 to ld - 1 do
      let cur = (d.(i) * k) + !carry in
      r.(i) <- cur land digit_mask;
      carry := cur lsr digit_bits
    done;
    r.(ld) <- !carry land digit_mask;
    r.(ld + 1) <- !carry lsr digit_bits;
    of_digits r
  end
  else mul a (of_int k)

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
    end
  in
  go one a k

let ten_pow_7 = 10_000_000

let to_string a =
  if is_zero a then "0"
  else begin
    (* Peel seven decimal digits at a time using single-limb division. *)
    let rec chunks a acc =
      if is_zero a then acc
      else
        let q, r = divmod_limb a ten_pow_7 in
        chunks q (r :: acc)
    in
    match chunks a [] with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest;
      Buffer.contents buf
  end

(* Integer powers of ten for the parsing chunks; [ten_pow.(k) = 10^k] for
   k <= 7. Exact by construction, unlike a [10. ** k] round-trip. *)
let ten_pow = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]

let of_string s =
  if s = "" then invalid_arg "Nat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: not a digit") s;
  let acc = ref zero in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    let take = min 7 (len - !i) in
    let chunk = int_of_string (String.sub s !i take) in
    acc := add_int (mul_int !acc ten_pow.(take)) chunk;
    i := !i + take
  done;
  !acc

let to_limbs a = Array.copy a

let of_limbs l =
  Array.iteri
    (fun i x ->
      if x < 0 || x > mask then
        invalid_arg
          (Printf.sprintf "Nat.of_limbs: limb %d is %d, outside [0, 2^%d) for the %d-bit radix" i x
             base_bits base_bits))
    l;
  normalize (Array.copy l)

(* The frozen draw radix: random values consume the Rng in 26-bit chunks
   (plus one short top chunk), low to high, regardless of the storage radix.
   This is byte-for-byte the stream the 26-bit representation consumed, so
   every pinned (seed -> value) table survives limb migrations. *)
let draw_radix = 26

let random_below rng n =
  if is_zero n then invalid_arg "Nat.random_below: zero bound";
  let k = bit_length n in
  let chunks = (k + draw_radix - 1) / draw_radix in
  let top_bits = k - ((chunks - 1) * draw_radix) in
  let nlimbs = (k + base_bits - 1) / base_bits in
  let rec draw () =
    let r = Array.make nlimbs 0 in
    for i = 0 to chunks - 1 do
      let width = if i = chunks - 1 then top_bits else draw_radix in
      let c = Rng.bits rng width in
      let bit = i * draw_radix in
      let idx = bit / base_bits and off = bit mod base_bits in
      r.(idx) <- r.(idx) lor ((c lsl off) land mask);
      if off + width > base_bits && idx + 1 < nlimbs then
        r.(idx + 1) <- r.(idx + 1) lor (c lsr (base_bits - off))
    done;
    let r = normalize r in
    if compare r n < 0 then r else draw ()
  in
  draw ()

let random_in rng lo hi =
  if compare lo hi > 0 then invalid_arg "Nat.random_in: empty range";
  add lo (random_below rng (add_int (sub hi lo) 1))

let pp fmt a = Format.pp_print_string fmt (to_string a)
