(** Bit-packed small-prime sieve backing the prime-search prefilter.

    The table is built once at module initialization and is immutable
    afterwards, so it is safely shared across the engine's worker domains.
    [Prime] uses it two ways: native candidates are trial-divided prime by
    prime (with early exit), and bignum candidates are reduced by whole
    {!batches} of primes at a time — one [Nat.rem_int] sweep plus an int
    gcd per batch instead of a long division per prime. *)

val limit : int
(** Largest integer the sieve covers (2^16). *)

val is_prime : int -> bool
(** Table lookup. @raise Invalid_argument unless [2 <= n <= limit]. *)

val trial_bound : int
(** Upper bound (4096) on the primes the prefilter divides by. Beyond this
    the ~1/q rejection rate of an extra prime q no longer pays for the
    division. [trial_bound * trial_bound] also bounds the range where
    trial division alone decides primality. *)

val primes_upto : int -> int array
(** All primes [<= b], ascending. @raise Invalid_argument unless
    [2 <= b <= limit]. *)

val trial_primes : int array
(** [primes_upto trial_bound], precomputed. *)

type batch = { product : int; lo : int; hi : int }
(** Product of [trial_primes.(lo .. hi)] (all odd, squarefree), below 2^36
    so a running [Nat.rem_int] remainder stays inside a native int. *)

val batches : batch array
(** Greedy consecutive-prime batches covering [trial_primes] from 3 up. *)
