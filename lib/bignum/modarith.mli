(** Modular arithmetic over {!Nat.t} values.

    All operations take the modulus as their last argument and expect their
    operands already reduced (asserted in debug builds). The protocols use
    these as the field operations for hash evaluation when the prime exceeds
    the native-integer range. *)

val add : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [add a b m] is [(a + b) mod m]. *)

val sub : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [sub a b m] is [(a - b) mod m], always non-negative. *)

val mul : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [mul a b m] is [(a * b) mod m]. *)

val pow : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [pow a e m] is [a^e mod m] by square-and-multiply. *)

val pow_int : Nat.t -> int -> Nat.t -> Nat.t
(** [pow_int a e m] is [a^e mod m] for a native exponent [e >= 0]. *)

val gcd : Nat.t -> Nat.t -> Nat.t
(** Greatest common divisor (Euclid); [gcd 0 0 = 0]. *)

val inv : Nat.t -> Nat.t -> Nat.t option
(** [inv a m] is the multiplicative inverse of [a] modulo [m] when
    [gcd a m = 1], via the extended Euclidean algorithm; [None] otherwise.
    Requires [m >= 2]. *)

val inv_int : int -> int -> int option
(** Native-integer variant of {!inv}. *)

(** {1 Precomputed contexts}

    The functions above pay a full long division per operation and one per
    exponent bit. A {!ctx} precomputes everything reusable for a fixed
    modulus — a Montgomery context (odd moduli) and a Barrett [mu] constant
    (any parity) — so the protocol hot paths do no division at all. Results
    are bit-identical to the naive functions, which remain the reference
    oracle for cross-check tests. *)

type ctx

val ctx : Nat.t -> ctx
(** [ctx m] returns the context for modulus [m >= 2], cached per domain so
    repeated lookups for the same modulus are free.
    @raise Invalid_argument if [m < 2]. *)

val ctx_modulus : ctx -> Nat.t

val ctx_add : ctx -> Nat.t -> Nat.t -> Nat.t
val ctx_sub : ctx -> Nat.t -> Nat.t -> Nat.t

val ctx_mul : ctx -> Nat.t -> Nat.t -> Nat.t
(** Barrett-reduced product; operands need not be pre-reduced. *)

val ctx_pow : ctx -> Nat.t -> Nat.t -> Nat.t
(** Windowed exponentiation: Montgomery (CIOS) for odd moduli, Barrett for
    even ones. Bit-identical to {!pow}. *)

val ctx_pow_int : ctx -> Nat.t -> int -> Nat.t
(** [ctx_pow_int c a e] for a native exponent [e >= 0]. *)
