(* Bindings for the C wide-limb kernels (ids_kernel.c) plus the process-wide
   backend switch.  All externals are [@@noalloc]: they touch only immediate
   int-array elements, never allocate, and never call back into OCaml.

   `IDS_BIGNUM_KERNEL=ocaml` pins the pure-OCaml hi:lo-split paths in
   nat.ml/montgomery.ml instead — slower, but portable and the reference the
   cross-radix qcheck oracles triangulate against. *)

external nat_mul : int array -> int array -> int array -> unit
  = "ids_nat_mul_stub"
[@@noalloc]

external nat_sqr : int array -> int array -> unit = "ids_nat_sqr_stub"
[@@noalloc]

external mont_mul : int array -> int -> int array -> int array -> int array -> unit
  = "ids_mont_mul_stub"
[@@noalloc]

external mont_sqr : int array -> int -> int array -> int array -> unit
  = "ids_mont_sqr_stub"
[@@noalloc]

external mont_redc : int array -> int -> int array -> int array -> unit
  = "ids_mont_redc_stub"
[@@noalloc]

external mulmod62 : int -> int -> int -> int = "ids_mulmod62_stub" [@@noalloc]

(* The C side sizes its stack buffers for la + lb <= 1024 limbs; Nat's
   dispatch splits larger operands before reaching the base kernel, so this
   cap is a contract, not a tunable. *)
let mul_cap = 1024

let use_c =
  match Sys.getenv_opt "IDS_BIGNUM_KERNEL" with
  | Some "ocaml" -> false
  | Some "c" | None | Some _ -> true
