type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: xor-shift multiply avalanche. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

let key parts =
  let z =
    List.fold_left
      (fun z p -> mix (Int64.add (Int64.logxor z (Int64.of_int p)) gamma))
      0x243F6A8885A308D3L parts
  in
  Int64.to_int z

let bits t k =
  assert (k >= 0 && k <= 62);
  if k = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - k)) land ((1 lsl k) - 1)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the smallest power of two >= bound. *)
  let k =
    let rec width k = if 1 lsl k >= bound then k else width (k + 1) in
    width 1
  in
  let rec draw () =
    let v = bits t k in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = bits t 1 = 1

let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
