let add a b m =
  let s = Nat.add a b in
  if Nat.compare s m >= 0 then Nat.sub s m else s

let sub a b m = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a m) b

let mul a b m = Nat.rem (Nat.mul a b) m

let pow a e m =
  if Nat.is_zero m then raise Division_by_zero;
  let rec go acc base e =
    if Nat.is_zero e then acc
    else begin
      let q, r = Nat.divmod e Nat.two in
      let acc = if Nat.is_one r then mul acc base m else acc in
      go acc (mul base base m) q
    end
  in
  go Nat.one (Nat.rem a m) e

let pow_int a e m =
  if e < 0 then invalid_arg "Modarith.pow_int: negative exponent";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc base m else acc in
      go acc (mul base base m) (e lsr 1)
    end
  in
  go Nat.one (Nat.rem a m) e

let rec gcd a b = if Nat.is_zero b then a else gcd b (Nat.rem a b)

(* Extended Euclid, with Bezout coefficients tracked modulo [m] to stay in
   the naturals: invariant r_i = s_i * a (mod m). *)
let inv a m =
  if Nat.compare m Nat.two < 0 then invalid_arg "Modarith.inv: modulus must be >= 2";
  let a = Nat.rem a m in
  let rec go r0 s0 r1 s1 =
    if Nat.is_zero r1 then if Nat.is_one r0 then Some s0 else None
    else begin
      let q, r2 = Nat.divmod r0 r1 in
      let s2 = sub s0 (mul q s1 m) m in
      go r1 s1 r2 s2
    end
  in
  go m Nat.zero a Nat.one

let inv_int a m =
  if m < 2 then invalid_arg "Modarith.inv_int: modulus must be >= 2";
  Option.map Nat.to_int (inv (Nat.of_int ((a mod m + m) mod m)) (Nat.of_int m))

(* ---- Precomputed per-modulus contexts ---------------------------------- *)

(* Barrett reduction (HAC 14.42): for a k-limb modulus m, precompute
   mu = floor(b^2k / m) with b = 2^Nat.base_bits (2^62 since the wide-limb
   migration); then for x < b^2k the quotient guess
   q3 = floor(floor(x / b^(k-1)) * mu / b^(k+1)) satisfies q3 <= floor(x/m)
   <= q3 + 2, so x - q3*m is non-negative (Nat has no negatives) and at most
   two conditional subtracts complete the reduction. Works for any modulus
   parity, which is why it backs the even-modulus path. *)
type barrett = {
  bm : Nat.t;
  bk : int; (* limb count of bm *)
  mu : Nat.t; (* floor(2^(2 * base_bits * bk) / bm) *)
}

let barrett_make m =
  let bk = (Nat.bit_length m + Nat.base_bits - 1) / Nat.base_bits in
  { bm = m; bk; mu = Nat.div (Nat.shift_left Nat.one (2 * Nat.base_bits * bk)) m }

let barrett_reduce br x =
  let q1 = Nat.shift_right x (Nat.base_bits * (br.bk - 1)) in
  let q3 = Nat.shift_right (Nat.mul q1 br.mu) (Nat.base_bits * (br.bk + 1)) in
  let r = ref (Nat.sub x (Nat.mul q3 br.bm)) in
  while Nat.compare !r br.bm >= 0 do
    r := Nat.sub !r br.bm
  done;
  !r

type ctx = {
  modulus : Nat.t;
  barrett : barrett;
  mont : Montgomery.t option; (* odd moduli >= 3 only *)
}

let ctx_modulus c = c.modulus

let make_ctx m =
  if Nat.compare m Nat.two < 0 then invalid_arg "Modarith.ctx: modulus must be >= 2";
  let mont =
    let limbs = Nat.to_limbs m in
    if limbs.(0) land 1 = 1 && Nat.compare m Nat.two > 0 then Some (Montgomery.make m) else None
  in
  { modulus = m; barrett = barrett_make m; mont }

(* One cache per domain: contexts are immutable once built, but the table
   itself must not be shared across the engine's worker domains. Bounded so a
   sweep over many moduli cannot grow it without limit. *)
let cache_limit = 64

let cache_key : (Nat.t, ctx) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let ctx m =
  let tbl = Domain.DLS.get cache_key in
  match Hashtbl.find_opt tbl m with
  | Some c -> c
  | None ->
    let c = make_ctx m in
    if Hashtbl.length tbl >= cache_limit then Hashtbl.reset tbl;
    Hashtbl.add tbl m c;
    c

let reduce c a = if Nat.compare a c.modulus >= 0 then Nat.rem a c.modulus else a
let ctx_add c a b = add (reduce c a) (reduce c b) c.modulus
let ctx_sub c a b = sub (reduce c a) (reduce c b) c.modulus

let barrett_mul c a b = barrett_reduce c.barrett (Nat.mul a b)

(* One-shot products go through Barrett too since the wide-limb migration:
   the C multiply kernel makes the two extra k-limb products far cheaper
   than the Knuth division they replace (the 26-bit engine measured the
   opposite, 0.57-0.82x naive, because its multiplies cost as much as its
   divisions). Montgomery would still add domain conversions on top.
   Operands must be below the modulus for the q3 <= q <= q3 + 2 guarantee,
   hence the reduce pre-passes; physically equal arguments route to the
   squaring kernel inside [Nat.mul]. *)
let ctx_mul c a b = barrett_mul c (reduce c a) (reduce c b)

(* Even-modulus exponentiation: the same 4-bit window over exponent limbs as
   {!Montgomery.pow}, with Barrett-reduced products. *)
let window_bits = 4

let barrett_pow c a e =
  if Nat.is_zero e then Nat.one
  else begin
    let a = reduce c a in
    let table = Array.make (1 lsl window_bits) Nat.one in
    table.(1) <- a;
    for i = 2 to (1 lsl window_bits) - 1 do
      table.(i) <- barrett_mul c table.(i - 1) a
    done;
    let limbs = Nat.to_limbs e in
    let nbits = Nat.bit_length e in
    let bit j = limbs.(j / Nat.base_bits) lsr (j mod Nat.base_bits) land 1 in
    let window w =
      let lo = w * window_bits in
      let v = ref 0 in
      for j = min (lo + window_bits - 1) (nbits - 1) downto lo do
        v := (!v lsl 1) lor bit j
      done;
      !v
    in
    let nw = (nbits + window_bits - 1) / window_bits in
    let acc = ref table.(window (nw - 1)) in
    for w = nw - 2 downto 0 do
      for _ = 1 to window_bits do
        acc := barrett_mul c !acc !acc
      done;
      let d = window w in
      if d <> 0 then acc := barrett_mul c !acc table.(d)
    done;
    !acc
  end

let ctx_pow c a e =
  match c.mont with
  | Some mg -> Montgomery.pow mg a e
  | None -> barrett_pow c a e

let ctx_pow_int c a e =
  if e < 0 then invalid_arg "Modarith.ctx_pow_int: negative exponent";
  ctx_pow c a (Nat.of_int e)
