(** Arbitrary-precision natural numbers.

    The paper's dAM protocol for Symmetry (Protocol 2) hashes into a prime
    field with [p] in [\[10 n^(n+2), 100 n^(n+2)\]], and the Goldwasser–Sipser
    GNI protocol hashes into a range proportional to [n!]; both overflow
    native integers almost immediately. No bignum package is available in the
    build environment, so this module implements the required arithmetic from
    scratch: little-endian arrays of 62-bit limbs (the widest radix a 63-bit
    OCaml int can carry with headroom), C kernels with [unsigned __int128]
    partials for the quadratic ranges, Karatsuba and Toom-3 tiers above, and
    Knuth Algorithm D division over a 31-bit digit view — comfortable from the
    few-hundred-bit protocol numbers up to the multi-hundred-kilobit range the
    benches exercise.

    All values are immutable. Results are always normalized (no leading zero
    limbs), so structural equality coincides with numeric equality. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int k] converts a non-negative native integer.
    @raise Invalid_argument if [k < 0]. *)

val to_int : t -> int
(** [to_int a] converts back to a native integer.
    @raise Failure if the value exceeds [max_int]. *)

val to_int_opt : t -> int option
(** Like {!to_int} but returns [None] on overflow. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. @raise Invalid_argument if [a < b]. *)

val mul : t -> t -> t
(** Tiered: C operand-scanning schoolbook below 80 limbs (~5000 bits),
    Karatsuba in the middle, Toom-3 once both operands reach 512 limbs
    (~32000 bits); physically identical arguments route to {!sqr}. *)

val mul_schoolbook : t -> t -> t
(** The plain O(la * lb) product. Reference oracle for the Karatsuba and
    squaring kernels (tests and benches); same results as {!mul}. *)

val sqr : t -> t
(** [sqr a = mul a a], via the symmetric-term trick (half the limb products
    of the schoolbook rectangle) up to 512 limbs, Toom-3 above. *)

val mul_int : t -> int -> t
(** Direct scalar sweep over the 31-bit digit view for [k < 2^31] (full
    multiply above). @raise Invalid_argument if [k < 0]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero if [b = 0]. *)

val div : t -> t -> t
val rem : t -> t -> t

val rem_int : t -> int -> int
(** [rem_int a d] is [a mod d] in one sweep of sub-limb chunks, no quotient
    allocation. @raise Invalid_argument unless [0 < d < 2^36] (the bound
    keeps the running remainder's window inside a native int). *)

val pow : t -> int -> t
(** [pow a k] is [a] raised to the non-negative native exponent [k]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val base_bits : int
(** Bits per limb (62). Fixed by the representation; exposed so kernels built
    on {!to_limbs} (e.g. Montgomery/Barrett reduction) agree on the radix. *)

val to_limbs : t -> int array
(** Little-endian limbs in base [2^base_bits], normalized (no leading zero
    limbs; [zero] gives [[||]]). The returned array is a fresh copy. *)

val of_limbs : int array -> t
(** Inverse of {!to_limbs}; accepts non-normalized input and copies it.
    @raise Invalid_argument if any limb is outside [\[0, 2^base_bits)] —
    the message names the offending index and the current radix. *)

val of_string : string -> t
(** Parse a decimal string. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val random_below : Rng.t -> t -> t
(** [random_below rng n] is uniform in [\[0, n)]. Requires [n > 0].
    Consumes the generator in fixed 26-bit draws (plus one short top draw),
    low bits first, independent of the storage radix — pinned
    (seed, interval) -> value tables survive representation changes. *)

val random_in : Rng.t -> t -> t -> t
(** [random_in rng lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val pp : Format.formatter -> t -> unit
