(** Arbitrary-precision natural numbers.

    The paper's dAM protocol for Symmetry (Protocol 2) hashes into a prime
    field with [p] in [\[10 n^(n+2), 100 n^(n+2)\]], and the Goldwasser–Sipser
    GNI protocol hashes into a range proportional to [n!]; both overflow
    native integers almost immediately. No bignum package is available in the
    build environment, so this module implements the required arithmetic from
    scratch: little-endian arrays of 26-bit limbs, schoolbook multiplication
    and Knuth Algorithm D division — entirely adequate for the few-hundred-bit
    numbers the protocols need.

    All values are immutable. Results are always normalized (no leading zero
    limbs), so structural equality coincides with numeric equality. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int k] converts a non-negative native integer.
    @raise Invalid_argument if [k < 0]. *)

val to_int : t -> int
(** [to_int a] converts back to a native integer.
    @raise Failure if the value exceeds [max_int]. *)

val to_int_opt : t -> int option
(** Like {!to_int} but returns [None] on overflow. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val add : t -> t -> t
val add_int : t -> int -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. @raise Invalid_argument if [a < b]. *)

val mul : t -> t -> t
(** Schoolbook below 32 limbs, Karatsuba above; physically identical
    arguments route to {!sqr}. *)

val mul_schoolbook : t -> t -> t
(** The plain O(la * lb) product. Reference oracle for the Karatsuba and
    squaring kernels (tests and benches); same results as {!mul}. *)

val sqr : t -> t
(** [sqr a = mul a a], via product scanning with the symmetric-term trick
    (half the limb products of the schoolbook rectangle), splitting
    Karatsuba-style above 512 limbs. *)

val mul_int : t -> int -> t
(** Direct scalar-by-limb sweep for [k < 2^34] (full multiply above).
    @raise Invalid_argument if [k < 0]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero if [b = 0]. *)

val div : t -> t -> t
val rem : t -> t -> t

val rem_int : t -> int -> int
(** [rem_int a d] is [a mod d] in one limb sweep, no quotient allocation.
    @raise Invalid_argument unless [0 < d < 2^36] (the bound keeps the
    running remainder's window inside a native int). *)

val pow : t -> int -> t
(** [pow a k] is [a] raised to the non-negative native exponent [k]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val base_bits : int
(** Bits per limb (26). Fixed by the representation; exposed so kernels built
    on {!to_limbs} (e.g. Montgomery/Barrett reduction) agree on the radix. *)

val to_limbs : t -> int array
(** Little-endian limbs in base [2^base_bits], normalized (no leading zero
    limbs; [zero] gives [[||]]). The returned array is a fresh copy. *)

val of_limbs : int array -> t
(** Inverse of {!to_limbs}; accepts non-normalized input and copies it.
    @raise Invalid_argument if any limb is outside [\[0, 2^base_bits)]. *)

val of_string : string -> t
(** Parse a decimal string. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val random_below : Rng.t -> t -> t
(** [random_below rng n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val random_in : Rng.t -> t -> t -> t
(** [random_in rng lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val pp : Format.formatter -> t -> unit
