type plan = {
  log_a : float;  (* upper boundary: accept H1 when llr >= log_a *)
  log_b : float;  (* lower boundary: accept H0 when llr <= log_b *)
  lr_accept : float;  (* per-accept llr increment: log (p1/p0) *)
  lr_reject : float;  (* per-reject llr increment: log ((1-p1)/(1-p0)) *)
}

type decision = Above | Below

let plan ?(alpha = 1e-3) ?(beta = 1e-3) ~p0 ~p1 () =
  if not (0. < p0 && p0 < p1 && p1 < 1.) then invalid_arg "Sprt.plan: need 0 < p0 < p1 < 1";
  if not (0. < alpha && alpha < 1. && 0. < beta && beta < 1.) then
    invalid_arg "Sprt.plan: error levels must lie in (0, 1)";
  { log_a = log ((1. -. beta) /. alpha);
    log_b = log (beta /. (1. -. alpha));
    lr_accept = log (p1 /. p0);
    lr_reject = log ((1. -. p1) /. (1. -. p0))
  }

let definition2 ?alpha ?beta () = plan ?alpha ?beta ~p0:(1. /. 3.) ~p1:(2. /. 3.) ()

let decide plan (acc : Accum.t) =
  let llr =
    (float_of_int acc.Accum.accepts *. plan.lr_accept)
    +. (float_of_int (acc.Accum.trials - acc.Accum.accepts) *. plan.lr_reject)
  in
  if llr >= plan.log_a then Some Above else if llr <= plan.log_b then Some Below else None

let pp_decision fmt = function
  | Above -> Format.pp_print_string fmt "above"
  | Below -> Format.pp_print_string fmt "below"
