type trial = { accepted : bool; bits : int }

type t = { trials : int; accepts : int; bits_sum : int; bits_max : int }

let empty = { trials = 0; accepts = 0; bits_sum = 0; bits_max = 0 }

let add t trial =
  if trial.bits < 0 then invalid_arg "Accum.add: negative bit cost";
  { trials = t.trials + 1;
    accepts = (t.accepts + if trial.accepted then 1 else 0);
    bits_sum = t.bits_sum + trial.bits;
    bits_max = (if trial.bits > t.bits_max then trial.bits else t.bits_max)
  }

let merge a b =
  { trials = a.trials + b.trials;
    accepts = a.accepts + b.accepts;
    bits_sum = a.bits_sum + b.bits_sum;
    bits_max = (if a.bits_max > b.bits_max then a.bits_max else b.bits_max)
  }

let equal a b =
  a.trials = b.trials && a.accepts = b.accepts && a.bits_sum = b.bits_sum && a.bits_max = b.bits_max

let pp fmt t =
  Format.fprintf fmt "accum(%d/%d, bits sum=%d max=%d)" t.accepts t.trials t.bits_sum t.bits_max
