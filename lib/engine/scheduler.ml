module Obs = Ids_obs.Obs

(* One span per claimed chunk, labeled with the chunk index as the round.
   Each worker domain appends to its own Domain.DLS shard; the shards stay
   registered in Obs's global list after the joins below, which is what
   "merged at scheduler join" means operationally — Obs.snapshot/spans read
   them once no worker is running. *)
let traced f i = Obs.span ~round:i "scheduler.chunk" (fun () -> f i)

let map_range ~domains ~lo ~hi f =
  let n = hi - lo in
  if n <= 0 then [||]
  else begin
    let f = if Obs.enabled () then traced f else f in
    let workers = Int.min (Int.max 1 domains) n in
    if workers = 1 then Array.init n (fun i -> f (lo + i))
    else begin
      (* Dynamic index hand-out: each worker repeatedly claims the next
         unclaimed index. Every slot is written by exactly one domain, and
         all writes happen before the joins, so reading the array afterwards
         is race-free. *)
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (f (lo + i));
            loop ()
          end
        in
        loop ()
      in
      let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      let caller_exn = (try worker (); None with e -> Some e) in
      let spawned_exn =
        Array.fold_left
          (fun acc d -> match (try Domain.join d; None with e -> Some e) with Some _ as e when acc = None -> e | _ -> acc)
          None spawned
      in
      (match (caller_exn, spawned_exn) with
      | Some e, _ | None, Some e -> raise e
      | None, None -> ());
      Array.map (function Some v -> v | None -> assert false) results
    end
  end
