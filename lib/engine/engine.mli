(** Parallel deterministic Monte Carlo trial engine.

    Estimates acceptance probabilities by running a seeded trial function
    over the seed range [1 .. trials], partitioned into fixed-size chunks
    that are farmed out to OCaml 5 domains. Every trial is keyed by its seed
    alone (the repository-wide splitmix64 discipline), and chunk summaries
    are reduced in chunk order, so the resulting {!estimate} is bit-identical
    for every worker count — 1 domain, 2, 4, or however many
    [Domain.recommended_domain_count] reports. *)

type estimate = {
  trials : int;  (** Trials actually executed (less than requested iff early-stopped). *)
  accepts : int;
  rate : float;
  mean_bits : float;  (** Mean over trials of the max-per-node bit cost. *)
  max_bits : int;  (** Maximum over trials of the same. *)
  ci_low : float;  (** 95% Wilson score interval, lower end. *)
  ci_high : float;  (** 95% Wilson score interval, upper end. *)
  domains : int;  (** Worker count that produced this estimate. *)
  stopped_early : bool;
}

val default_domains : unit -> int
(** Worker count: the [IDS_DOMAINS] environment variable if set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)

val scaled_trials : ?default_scale:float -> int -> int
(** [scaled_trials trials] multiplies [trials] by the [IDS_TRIALS_SCALE]
    environment variable (a float; [default_scale], default [1.0], when
    unset), rounding up, never below 1. Lets one env var dial every
    experiment's trial budget up (benches) or down ([@runtest-fast]). *)

val of_accum : ?domains:int -> ?stopped_early:bool -> Accum.t -> estimate
(** Finish an accumulator into an estimate (rate, mean, Wilson CI). *)

val run : ?domains:int -> ?chunk:int -> trials:int -> (int -> Accum.trial) -> estimate
(** [run ~trials f] executes [f seed] for [seed = 1 .. trials] ([chunk]
    seeds per work item, default 32) on [domains] workers (default
    {!default_domains}). Requires [trials > 0]. *)

val run_sprt :
  ?domains:int ->
  ?chunk:int ->
  plan:Sprt.plan ->
  max_trials:int ->
  (int -> Accum.trial) ->
  estimate * Sprt.decision option
(** [run_sprt ~plan ~max_trials f] runs trials in chunk order, testing the
    SPRT boundary after every chunk, and stops at the first chunk whose
    cumulative prefix crosses it (or at [max_trials], returning [None]).
    The stopping point is a function of the chunk-ordered trial prefix only,
    so decision and estimate are identical for every worker count; extra
    workers merely evaluate some post-decision chunks speculatively. *)

val pp : Format.formatter -> estimate -> unit
