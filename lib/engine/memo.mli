(** Keyed memoization for instance-invariant values.

    A protocol run recomputes a handful of values that depend only on the
    instance — the dSym permutation [sigma], the honest prover's BFS tree,
    factorial field bounds — once per {e response}, even though they are
    fixed for the whole estimate. A memo caches them keyed by what they are
    a function of.

    Correctness contract: [compute] must be a pure function of [key]
    (callers enforce this; graph-keyed memos key by
    [(Graph.uid, Graph.version, ...)] so mutation invalidates). Under that
    contract a hit returns exactly what a recompute would, so estimates are
    bit-identical with the cache hot, cold, or sharded differently.

    The table is sharded per domain via [Domain.DLS] — the same pattern as
    the [Modarith.ctx] cache — so worker domains never contend and never
    share entries. Each shard holds at most [limit] entries and is cleared
    wholesale on overflow (sweeps over many instances cannot grow it without
    bound).

    Hit/miss [IDS_TRACE] counters named [name ^ ".hit"] / [name ^ ".miss"]
    are registered at {!create} time; create memos at module initialization,
    matching the {!Ids_obs.Obs.Counter} contract. *)

type ('k, 'v) t

val create : ?limit:int -> string -> ('k, 'v) t
(** [create name] registers the [name ^ ".hit"] / [name ^ ".miss"] counters
    and returns an empty memo. [limit] (default 256) bounds each per-domain
    shard. Call once at module initialization.
    @raise Invalid_argument if [limit < 1]. *)

val find : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** [find t key compute] returns the cached value for [key] in this domain's
    shard, running [compute key] and caching on a miss. [compute] must be a
    pure function of [key]. *)
