module Rng = Ids_bignum.Rng

type axis = { name : string; cardinality : int }

type space = axis array

type point = int array

type outcome = { point : point; estimate : Engine.estimate; screened : bool }

type stats = { evaluated : int; screened_out : int; cache_hits : int; trials_spent : int }

type result = { best : outcome; outcomes : outcome list; stats : stats }

let better a b =
  if a.estimate.Engine.rate <> b.estimate.Engine.rate then
    a.estimate.Engine.rate > b.estimate.Engine.rate
  else if a.screened <> b.screened then not a.screened
  else if a.estimate.Engine.accepts <> b.estimate.Engine.accepts then
    a.estimate.Engine.accepts > b.estimate.Engine.accepts
  else compare a.point b.point < 0

(* [better] is a strict total order on distinct points, so this comparator
   sorts deterministically. *)
let compare_outcomes a b = if better a b then -1 else if better b a then 1 else 0

let run ?domains ?chunk ?(seed = 1) ?starts ?(frozen = []) ?(passes = 2) ?(mu = 3) ?(lambda = 6)
    ?(generations = 3) ?(screen_trials = 96) ?(screen_floor = 0.05) ~full_trials ~space f =
  let k = Array.length space in
  if k = 0 then invalid_arg "Search.run: empty space";
  Array.iter
    (fun a -> if a.cardinality < 1 then invalid_arg "Search.run: axis cardinality must be >= 1")
    space;
  if full_trials <= 0 then invalid_arg "Search.run: full_trials must be positive";
  if passes < 0 || mu < 1 || lambda < 0 || generations < 0 then
    invalid_arg "Search.run: negative search budget";
  if not (0. < screen_floor && screen_floor < 1.) then
    invalid_arg "Search.run: screen_floor must lie in (0, 1)";
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= k || v < 0 || v >= space.(i).cardinality then
        invalid_arg "Search.run: frozen entry out of range")
    frozen;
  let free_axes = List.filter (fun i -> not (List.mem_assoc i frozen)) (List.init k Fun.id) in
  let normalize p =
    let q =
      Array.init k (fun i ->
          let v = if i < Array.length p then p.(i) else 0 in
          min (space.(i).cardinality - 1) (max 0 v))
    in
    List.iter (fun (i, v) -> q.(i) <- v) frozen;
    q
  in
  let starts = match starts with Some l when l <> [] -> l | _ -> [ Array.make k 0 ] in
  (* Evaluation cache + running tallies. Keyed by the point's level list, so
     structural equality does the lookup. *)
  let cache : (int list, outcome) Hashtbl.t = Hashtbl.create 64 in
  let acc = ref [] in
  let best = ref None in
  let evaluated = ref 0 and screened_out = ref 0 and cache_hits = ref 0 and trials_spent = ref 0 in
  let best_rate () = match !best with None -> 0. | Some o -> o.estimate.Engine.rate in
  let evaluate p =
    let p = normalize p in
    let key = Array.to_list p in
    match Hashtbl.find_opt cache key with
    | Some o ->
      incr cache_hits;
      o
    | None ->
      let trial = f p in
      (* Race the point against the incumbent: H1 is "as good as the best
         seen so far". The screen only engages once the incumbent clears
         [screen_floor] — racing against a tiny rate would need far more
         than [screen_trials] trials, and worse, would confidently discard
         points whose true (tiny) rate is the actual frontier. *)
      let screened_estimate =
        if screen_trials <= 0 || screen_trials >= full_trials || best_rate () < screen_floor then
          None
        else begin
          let p1 = Float.min 0.995 (best_rate ()) in
          let plan = Sprt.plan ~p0:(p1 /. 4.) ~p1 () in
          let est, decision = Engine.run_sprt ?domains ?chunk ~plan ~max_trials:screen_trials trial in
          trials_spent := !trials_spent + est.Engine.trials;
          if decision = Some Sprt.Below then Some est else None
        end
      in
      let o =
        match screened_estimate with
        | Some est -> { point = p; estimate = est; screened = true }
        | None ->
          let est = Engine.run ?domains ?chunk ~trials:full_trials trial in
          trials_spent := !trials_spent + est.Engine.trials;
          { point = p; estimate = est; screened = false }
      in
      incr evaluated;
      if o.screened then incr screened_out;
      Hashtbl.add cache key o;
      acc := o :: !acc;
      (match !best with Some b when not (better o b) -> () | _ -> best := Some o);
      o
  in
  List.iter (fun s -> ignore (evaluate s)) starts;
  (* Coordinate descent: sweep every level of one free axis while the others
     sit at the incumbent best. *)
  for _pass = 1 to passes do
    List.iter
      (fun i ->
        for v = 0 to space.(i).cardinality - 1 do
          let b = (Option.get !best).point in
          let candidate = Array.copy b in
          candidate.(i) <- v;
          ignore (evaluate candidate)
        done)
      free_axes
  done;
  (* (mu + lambda) refinement: mutants re-roll one or two free coordinates of
     a parent drawn round-robin from the mu best points seen so far. *)
  if generations > 0 && lambda > 0 && free_axes <> [] then begin
    let free = Array.of_list free_axes in
    for gen = 1 to generations do
      let pop =
        let sorted = List.sort compare_outcomes !acc in
        List.filteri (fun i _ -> i < mu) sorted
      in
      let parents = Array.of_list pop in
      for j = 1 to lambda do
        let parent = parents.((j - 1) mod Array.length parents) in
        let rng = Rng.create (Rng.key [ seed; 0x5ea; gen; j ]) in
        let child = Array.copy parent.point in
        let mutations = 1 + Rng.int rng 2 in
        for _ = 1 to mutations do
          let i = free.(Rng.int rng (Array.length free)) in
          child.(i) <- Rng.int rng space.(i).cardinality
        done;
        ignore (evaluate child)
      done
    done
  end;
  { best = Option.get !best;
    outcomes = List.rev !acc;
    stats =
      { evaluated = !evaluated;
        screened_out = !screened_out;
        cache_hits = !cache_hits;
        trials_spent = !trials_spent
      }
  }

let pp_stats fmt s =
  Format.fprintf fmt "%d points (%d screened out, %d cache hits), %d trials" s.evaluated
    s.screened_out s.cache_hits s.trials_spent
