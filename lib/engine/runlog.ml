module Json = Ids_obs.Json

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Bumped whenever a field is added, renamed, or re-typed, so downstream
   consumers can dispatch without sniffing. History: 1 = the PR-1 format
   (no version field); 2 = adds schema_version and the optional fault label;
   3 = adds the optional embedded Obs metrics snapshot. *)
let schema_version = 3

let min_supported_version = 2

let to_json ?fault ?metrics ~protocol ~n ~prover (e : Engine.estimate) =
  let fault_field =
    match fault with
    | None -> ""
    | Some f -> Printf.sprintf "\"fault\":\"%s\"," (escape f)
  in
  let metrics_field =
    (* [metrics] is a pre-rendered JSON object (Obs.snapshot_json); embedding
       it raw keeps the line a single valid JSON document. *)
    match metrics with None -> "" | Some m -> Printf.sprintf ",\"metrics\":%s" m
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"protocol\":\"%s\",\"n\":%d,\"prover\":\"%s\",%s\"trials\":%d,\"accepts\":%d,\"rate\":%.6g,\"ci_low\":%.6g,\"ci_high\":%.6g,\"mean_bits\":%.6g,\"max_bits\":%d,\"domains\":%d,\"stopped_early\":%b%s}"
    schema_version (escape protocol) n (escape prover) fault_field e.Engine.trials
    e.Engine.accepts e.Engine.rate e.Engine.ci_low e.Engine.ci_high e.Engine.mean_bits
    e.Engine.max_bits e.Engine.domains e.Engine.stopped_early metrics_field

(* The sink is process-global. A [Pending] path is only opened (and the
   file only created) on the first record actually logged, so runs that
   never log leave no artifact behind; [owned] distinguishes channels this
   module opened (and must close) from externally supplied ones. *)
type state = Closed | Pending of string | Open of out_channel

let sink : state ref = ref Closed
let owned = ref false

let close () =
  (match !sink with
  | Open oc ->
    flush oc;
    if !owned then close_out_noerr oc
  | Pending _ | Closed -> ());
  sink := Closed;
  owned := false

let set_sink oc =
  close ();
  match oc with None -> () | Some oc -> sink := Open oc

let open_from_env ?default () =
  let path = match Sys.getenv_opt "IDS_RUNLOG" with Some p -> Some p | None -> default in
  close ();
  match path with None | Some "" -> () | Some path -> sink := Pending path

let channel () =
  match !sink with
  | Closed -> None
  | Open oc -> Some oc
  | Pending path -> (
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | oc ->
      sink := Open oc;
      owned := true;
      Some oc
    | exception Sys_error msg ->
      (* An unwritable log path shouldn't abort a long benchmark run. *)
      Printf.eprintf "warning: run log disabled (%s)\n%!" msg;
      sink := Closed;
      None)

let log ?fault ?metrics ~protocol ~n ~prover e =
  match channel () with
  | None -> ()
  | Some oc ->
    output_string oc (to_json ?fault ?metrics ~protocol ~n ~prover e);
    output_char oc '\n';
    flush oc

(* --- crash-safe framed sink ---------------------------------------------------- *)

(* The serving daemon's log must survive kill -9 mid-write: plain JSONL
   leaves a torn final line that poisons the whole file for strict readers.
   Framed records make the torn tail detectable and cheap to cut off:

     =IDS <payload-byte-length>\n<payload>\n

   The header's byte length lets recovery know exactly where the record
   should end without trusting the payload's content; [Framed.create] runs
   that recovery on open (truncating a torn tail in place) and every
   [Framed.write] is a single [write] syscall followed by [fsync] (unless
   [~sync:false]), so the on-disk prefix at any crash point is a whole
   number of records plus at most one torn tail. *)
module Framed = struct
  let magic = "=IDS "

  let frame payload = Printf.sprintf "%s%d\n%s\n" magic (String.length payload) payload

  (* [scan s offset] walks frames from [offset]: payloads in order, the byte
     offset just past the last whole frame, and the reason the walk stopped
     early (if it did). A bad header mid-file is reported the same way as a
     truncated tail — the fsync'd append-only discipline means everything
     after the first framing violation is untrustworthy. *)
  let scan s offset =
    let len = String.length s in
    let ml = String.length magic in
    let rec go o acc =
      if o >= len then (List.rev acc, o, None)
      else
        let torn reason = (List.rev acc, o, Some reason) in
        if o + ml > len then torn "truncated frame magic"
        else if String.sub s o ml <> magic then torn "bad frame magic"
        else begin
          let h = ref (o + ml) in
          while !h < len && s.[!h] >= '0' && s.[!h] <= '9' do incr h done;
          if !h = o + ml then torn "frame header has no length"
          else if !h >= len then torn "truncated frame header"
          else if s.[!h] <> '\n' then torn "malformed frame header"
          else
            let plen = int_of_string (String.sub s (o + ml) (!h - (o + ml))) in
            let pstart = !h + 1 in
            let pend = pstart + plen in
            if pend > len then torn "truncated payload"
            else if pend = len then torn "truncated payload terminator"
            else if s.[pend] <> '\n' then torn "missing payload terminator"
            else go (pend + 1) (String.sub s pstart plen :: acc)
        end
    in
    go offset []

  type writer = { fd : Unix.file_descr; wpath : string; sync : bool; wtruncated : int }

  let read_all path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let create ?(sync = true) path =
    match
      let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
      let contents = try read_all path with Sys_error _ -> "" in
      let _, good_end, _torn = scan contents 0 in
      let dropped = String.length contents - good_end in
      if dropped > 0 then Unix.ftruncate fd good_end;
      ignore (Unix.lseek fd good_end Unix.SEEK_SET : int);
      { fd; wpath = path; sync; wtruncated = dropped }
    with
    | w -> Ok w
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    | exception Sys_error msg -> Error msg

  let truncated w = w.wtruncated
  let path w = w.wpath

  let write w payload =
    let line = frame payload in
    let len = String.length line in
    let rec put o = if o < len then put (o + Unix.write_substring w.fd line o (len - o)) in
    put 0;
    if w.sync then Unix.fsync w.fd

  let close w = try Unix.close w.fd with Unix.Unix_error _ -> ()
end

(* --- reading records back ----------------------------------------------------- *)

type record = {
  version : int;
  protocol : string;
  n : int;
  prover : string;
  fault : string option;
  trials : int;
  accepts : int;
  rate : float;
  ci_low : float;
  ci_high : float;
  mean_bits : float;
  max_bits : int;
  domains : int;
  stopped_early : bool;
  metrics : Json.t option;
}

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* version = field "schema_version" Json.to_int in
  if version < min_supported_version || version > schema_version then
    Error
      (Printf.sprintf "unknown schema_version %d (this reader supports %d..%d)" version
         min_supported_version schema_version)
  else
    let* protocol = field "protocol" Json.to_string in
    let* n = field "n" Json.to_int in
    let* prover = field "prover" Json.to_string in
    let* trials = field "trials" Json.to_int in
    let* accepts = field "accepts" Json.to_int in
    let* rate = field "rate" Json.to_float in
    let* ci_low = field "ci_low" Json.to_float in
    let* ci_high = field "ci_high" Json.to_float in
    let* mean_bits = field "mean_bits" Json.to_float in
    let* max_bits = field "max_bits" Json.to_int in
    let* domains = field "domains" Json.to_int in
    let* stopped_early = field "stopped_early" Json.to_bool in
    Ok
      { version;
        protocol;
        n;
        prover;
        fault = Option.bind (Json.member "fault" j) Json.to_string;
        trials;
        accepts;
        rate;
        ci_low;
        ci_high;
        mean_bits;
        max_bits;
        domains;
        stopped_early;
        metrics = Json.member "metrics" j
      }

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

type tail_error =
  | Torn_tail of { offset : int; reason : string }
  | Bad_line of { lineno : int; reason : string }

type contents = { records : record list; good_end : int; tail : tail_error option }

let tail_error_to_string = function
  | Torn_tail { offset; reason } -> Printf.sprintf "torn trailing record at byte %d (%s)" offset reason
  | Bad_line { lineno; reason } -> Printf.sprintf "%d: %s" lineno reason

(* Plain-JSONL walk from byte [offset]: whole newline-terminated lines parse
   as records; a malformed line that the file ends on without a newline is a
   torn tail (an interrupted append), while a malformed line {e inside} the
   file is a per-line error. [good_end] stops at the first problem either
   way, so a tail-follower can retry from a record boundary. A well-formed
   final line without its newline is accepted (matching [input_line]). *)
let parse_jsonl s offset =
  let len = String.length s in
  let rec go o lineno acc =
    if o >= len then { records = List.rev acc; good_end = o; tail = None }
    else
      let nl = try Some (String.index_from s o '\n') with Not_found -> None in
      let line_end = match nl with Some i -> i | None -> len in
      let line = String.sub s o (line_end - o) in
      let next = line_end + (match nl with Some _ -> 1 | None -> 0) in
      if line = "" then go next (lineno + 1) acc
      else
        match of_line line with
        | Ok r -> go next (lineno + 1) (r :: acc)
        | Error e ->
          let tail =
            match nl with
            | None -> Torn_tail { offset = o; reason = e }
            | Some _ -> Bad_line { lineno; reason = e }
          in
          { records = List.rev acc; good_end = o; tail = Some tail }
  in
  go offset 1 []

(* Framed walk: framing violations are torn tails at the frame's offset;
   a payload that frames correctly but doesn't decode is a per-record
   error (framing intact means the bytes were written whole). *)
let parse_framed s offset =
  let payloads, good_end, torn = Framed.scan s offset in
  let torn_tail = Option.map (fun reason -> Torn_tail { offset = good_end; reason }) torn in
  let rec go idx acc = function
    | [] -> { records = List.rev acc; good_end; tail = torn_tail }
    | p :: rest -> (
      match of_line p with
      | Ok r -> go (idx + 1) (r :: acc) rest
      | Error e ->
        { records = List.rev acc; good_end; tail = Some (Bad_line { lineno = idx; reason = e }) })
  in
  go 1 [] payloads

let is_framed s =
  String.length s >= String.length Framed.magic
  && String.sub s 0 (String.length Framed.magic) = Framed.magic

let read_from path ~offset =
  match Framed.read_all path with
  | exception Sys_error msg -> Error msg
  | s ->
    let offset = if offset < 0 || offset > String.length s then 0 else offset in
    Ok (if is_framed s then parse_framed s offset else parse_jsonl s offset)

let read_file_lenient path = read_from path ~offset:0

let read_file path =
  match read_file_lenient path with
  | Error e -> Error e
  | Ok { tail = None; records; _ } -> Ok records
  | Ok { tail = Some (Bad_line { lineno; reason }); _ } ->
    Error (Printf.sprintf "%s:%d: %s" path lineno reason)
  | Ok { tail = Some (Torn_tail _ as t); _ } ->
    Error (Printf.sprintf "%s: %s" path (tail_error_to_string t))
