let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Bumped whenever a field is added, renamed, or re-typed, so downstream
   consumers can dispatch without sniffing. History: 1 = the PR-1 format
   (no version field); 2 = adds schema_version and the optional fault label. *)
let schema_version = 2

let to_json ?fault ~protocol ~n ~prover (e : Engine.estimate) =
  let fault_field =
    match fault with
    | None -> ""
    | Some f -> Printf.sprintf "\"fault\":\"%s\"," (escape f)
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"protocol\":\"%s\",\"n\":%d,\"prover\":\"%s\",%s\"trials\":%d,\"accepts\":%d,\"rate\":%.6g,\"ci_low\":%.6g,\"ci_high\":%.6g,\"mean_bits\":%.6g,\"max_bits\":%d,\"domains\":%d,\"stopped_early\":%b}"
    schema_version (escape protocol) n (escape prover) fault_field e.Engine.trials
    e.Engine.accepts e.Engine.rate e.Engine.ci_low e.Engine.ci_high e.Engine.mean_bits
    e.Engine.max_bits e.Engine.domains e.Engine.stopped_early

(* The sink is process-global; [owned] distinguishes channels this module
   opened (and must close) from externally supplied ones. *)
let sink : out_channel option ref = ref None
let owned = ref false

let close () =
  (match !sink with
  | Some oc ->
    flush oc;
    if !owned then close_out_noerr oc
  | None -> ());
  sink := None;
  owned := false

let set_sink oc =
  close ();
  sink := oc

let open_from_env ?default () =
  let path = match Sys.getenv_opt "IDS_RUNLOG" with Some p -> Some p | None -> default in
  match path with
  | None | Some "" -> close ()
  | Some path -> (
    close ();
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | oc ->
      sink := Some oc;
      owned := true
    | exception Sys_error msg ->
      (* An unwritable log path shouldn't abort a long benchmark run. *)
      Printf.eprintf "warning: run log disabled (%s)\n%!" msg)

let log ?fault ~protocol ~n ~prover e =
  match !sink with
  | None -> ()
  | Some oc ->
    output_string oc (to_json ?fault ~protocol ~n ~prover e);
    output_char oc '\n';
    flush oc
