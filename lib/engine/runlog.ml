module Json = Ids_obs.Json

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Bumped whenever a field is added, renamed, or re-typed, so downstream
   consumers can dispatch without sniffing. History: 1 = the PR-1 format
   (no version field); 2 = adds schema_version and the optional fault label;
   3 = adds the optional embedded Obs metrics snapshot. *)
let schema_version = 3

let min_supported_version = 2

let to_json ?fault ?metrics ~protocol ~n ~prover (e : Engine.estimate) =
  let fault_field =
    match fault with
    | None -> ""
    | Some f -> Printf.sprintf "\"fault\":\"%s\"," (escape f)
  in
  let metrics_field =
    (* [metrics] is a pre-rendered JSON object (Obs.snapshot_json); embedding
       it raw keeps the line a single valid JSON document. *)
    match metrics with None -> "" | Some m -> Printf.sprintf ",\"metrics\":%s" m
  in
  Printf.sprintf
    "{\"schema_version\":%d,\"protocol\":\"%s\",\"n\":%d,\"prover\":\"%s\",%s\"trials\":%d,\"accepts\":%d,\"rate\":%.6g,\"ci_low\":%.6g,\"ci_high\":%.6g,\"mean_bits\":%.6g,\"max_bits\":%d,\"domains\":%d,\"stopped_early\":%b%s}"
    schema_version (escape protocol) n (escape prover) fault_field e.Engine.trials
    e.Engine.accepts e.Engine.rate e.Engine.ci_low e.Engine.ci_high e.Engine.mean_bits
    e.Engine.max_bits e.Engine.domains e.Engine.stopped_early metrics_field

(* The sink is process-global. A [Pending] path is only opened (and the
   file only created) on the first record actually logged, so runs that
   never log leave no artifact behind; [owned] distinguishes channels this
   module opened (and must close) from externally supplied ones. *)
type state = Closed | Pending of string | Open of out_channel

let sink : state ref = ref Closed
let owned = ref false

let close () =
  (match !sink with
  | Open oc ->
    flush oc;
    if !owned then close_out_noerr oc
  | Pending _ | Closed -> ());
  sink := Closed;
  owned := false

let set_sink oc =
  close ();
  match oc with None -> () | Some oc -> sink := Open oc

let open_from_env ?default () =
  let path = match Sys.getenv_opt "IDS_RUNLOG" with Some p -> Some p | None -> default in
  close ();
  match path with None | Some "" -> () | Some path -> sink := Pending path

let channel () =
  match !sink with
  | Closed -> None
  | Open oc -> Some oc
  | Pending path -> (
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | oc ->
      sink := Open oc;
      owned := true;
      Some oc
    | exception Sys_error msg ->
      (* An unwritable log path shouldn't abort a long benchmark run. *)
      Printf.eprintf "warning: run log disabled (%s)\n%!" msg;
      sink := Closed;
      None)

let log ?fault ?metrics ~protocol ~n ~prover e =
  match channel () with
  | None -> ()
  | Some oc ->
    output_string oc (to_json ?fault ?metrics ~protocol ~n ~prover e);
    output_char oc '\n';
    flush oc

(* --- reading records back ----------------------------------------------------- *)

type record = {
  version : int;
  protocol : string;
  n : int;
  prover : string;
  fault : string option;
  trials : int;
  accepts : int;
  rate : float;
  ci_low : float;
  ci_high : float;
  mean_bits : float;
  max_bits : int;
  domains : int;
  stopped_early : bool;
  metrics : Json.t option;
}

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* version = field "schema_version" Json.to_int in
  if version < min_supported_version || version > schema_version then
    Error
      (Printf.sprintf "unknown schema_version %d (this reader supports %d..%d)" version
         min_supported_version schema_version)
  else
    let* protocol = field "protocol" Json.to_string in
    let* n = field "n" Json.to_int in
    let* prover = field "prover" Json.to_string in
    let* trials = field "trials" Json.to_int in
    let* accepts = field "accepts" Json.to_int in
    let* rate = field "rate" Json.to_float in
    let* ci_low = field "ci_low" Json.to_float in
    let* ci_high = field "ci_high" Json.to_float in
    let* mean_bits = field "mean_bits" Json.to_float in
    let* max_bits = field "max_bits" Json.to_int in
    let* domains = field "domains" Json.to_int in
    let* stopped_early = field "stopped_early" Json.to_bool in
    Ok
      { version;
        protocol;
        n;
        prover;
        fault = Option.bind (Json.member "fault" j) Json.to_string;
        trials;
        accepts;
        rate;
        ci_low;
        ci_high;
        mean_bits;
        max_bits;
        domains;
        stopped_early;
        metrics = Json.member "metrics" j
      }

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line -> (
            match of_line line with
            | Ok r -> go (lineno + 1) (r :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
        in
        go 1 [])
