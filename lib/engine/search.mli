(** Generic black-box maximization over a discrete strategy grid.

    The adversary-search experiments (E17) pose the question the soundness
    theorems answer analytically — "how well can the {e best} cheating
    prover do?" — as an optimization problem: a cheat strategy is a point
    of a small discrete grid (one coordinate per knob), its quality is the
    Monte Carlo acceptance rate on a fixed NO instance, and this module
    climbs the grid looking for the maximum. The module is deliberately
    generic: it knows nothing about protocols or fault specs, only about
    points of an axis grid and a seeded trial function, so the engine
    library stays free of upward dependencies (the proof layer supplies the
    semantics via {!Ids_proof.Strategy}).

    {2 Algorithm}

    Two phases over a shared evaluation cache:

    + {b coordinate descent}: starting from each start point, sweep the
      axes in order, trying every level of one axis while holding the
      others at the incumbent best — the classic discrete hill climb; run
      [passes] sweeps so later axes can unlock earlier ones;
    + {b (μ+λ) evolutionary refinement}: keep the μ best distinct points
      seen so far, breed λ mutants per generation by re-rolling one or two
      coordinates of a parent (seeded splitmix64 streams keyed by
      [(seed, generation, child)]), and keep the best μ of parents ∪
      children.

    {2 SPRT screening}

    Evaluating every point at the full trial budget is wasteful: most grid
    points are deterministically rejected cheats (true rate 0). Once the
    incumbent best clears [screen_floor], each new point is first raced
    against it with a sequential probability ratio test ({!Sprt}): the
    screen tests H0 "rate ≤ p0" against H1 "rate ≥ p1" where
    [p1 = best_rate] and [p0 = p1 / 4]. A point the screen confidently
    rejects ([Below]) is discarded after a handful of trials; anything else
    graduates to a full {!Engine.run} evaluation. While the incumbent's
    rate is below [screen_floor] the screen stays off and every point gets
    the full budget, which is exactly right: in the tiny-rate regimes the
    frontier itself sits below any sensible corridor, and distinguishing
    tiny rates needs the trials.

    {2 Determinism}

    Evaluations use {!Engine.run} / {!Engine.run_sprt}, whose estimates
    are bit-identical for every worker-domain count; the evaluation order,
    mutation streams, and tie-breaks are all functions of the
    configuration alone. Hence the whole search — best point, every
    estimate, the trial ledger — is reproducible across [IDS_DOMAINS] and
    process boundaries. *)

type axis = {
  name : string;  (** For diagnostics and labels only. *)
  cardinality : int;  (** Number of levels; level indices are [0 .. cardinality - 1]. *)
}

type space = axis array

type point = int array
(** One level index per axis, [point.(i)] in [0 .. (axes.(i)).cardinality - 1]. *)

type outcome = {
  point : point;
  estimate : Engine.estimate;
  screened : bool;
      (** The SPRT screen discarded this point; its estimate covers only
          the screen's (early-stopped) trials. *)
}

type stats = {
  evaluated : int;  (** Distinct points evaluated (cache misses). *)
  screened_out : int;  (** Of those, points the SPRT screen discarded. *)
  cache_hits : int;  (** Point revisits answered from the cache. *)
  trials_spent : int;  (** Total trials across screens and full evaluations. *)
}

type result = {
  best : outcome;
  outcomes : outcome list;  (** Every distinct point evaluated, in evaluation order. *)
  stats : stats;
}

val better : outcome -> outcome -> bool
(** The search's total order: higher rate wins; ties prefer an unscreened
    (fully evaluated) outcome, then more accepts, then the
    lexicographically smaller point — deterministic by construction. *)

val run :
  ?domains:int ->
  ?chunk:int ->
  ?seed:int ->
  ?starts:point list ->
  ?frozen:(int * int) list ->
  ?passes:int ->
  ?mu:int ->
  ?lambda:int ->
  ?generations:int ->
  ?screen_trials:int ->
  ?screen_floor:float ->
  full_trials:int ->
  space:space ->
  (point -> int -> Accum.trial) ->
  result
(** [run ~full_trials ~space f] maximizes the acceptance rate of
    [f point seed] over the grid. [f] must be pure in [(point, seed)] —
    the engine's usual contract.

    - [seed] (default 1) drives start-point and mutation randomness;
    - [starts] (default the all-zeros origin) seeds the descent; every
      start is clamped into range and overridden by [frozen];
    - [frozen] pins [(axis, level)] pairs: descent skips those axes and
      mutations never touch them — used to hold the fault knob at "none"
      for the paper-model frontier;
    - [passes] (default 2) coordinate-descent sweeps over the axes;
    - [mu]/[lambda]/[generations] (defaults 3/6/3) size the evolutionary
      refinement; [generations = 0] disables it;
    - [screen_trials] (default 96) caps each SPRT screen; [0] disables
      screening entirely;
    - [screen_floor] (default 0.05) is the minimum incumbent rate at which
      the screen engages (see above);
    - [full_trials] is the budget of a full evaluation.

    Raises [Invalid_argument] on an empty space, an axis with
    [cardinality < 1], out-of-range [frozen] entries, or non-positive
    budgets. *)

val pp_stats : Format.formatter -> stats -> unit
