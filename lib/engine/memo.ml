module Obs = Ids_obs.Obs

type ('k, 'v) t = {
  limit : int;
  hits : Obs.Counter.t;
  misses : Obs.Counter.t;
  shard : ('k, 'v) Hashtbl.t Domain.DLS.key;
}

let create ?(limit = 256) name =
  if limit < 1 then invalid_arg "Memo.create: limit must be >= 1";
  { limit;
    hits = Obs.Counter.make (name ^ ".hit");
    misses = Obs.Counter.make (name ^ ".miss");
    shard = Domain.DLS.new_key (fun () -> Hashtbl.create 16)
  }

let find t key compute =
  let tbl = Domain.DLS.get t.shard in
  match Hashtbl.find_opt tbl key with
  | Some v ->
    Obs.Counter.add t.hits 1;
    v
  | None ->
    Obs.Counter.add t.misses 1;
    let v = compute key in
    if Hashtbl.length tbl >= t.limit then Hashtbl.reset tbl;
    Hashtbl.add tbl key v;
    v
