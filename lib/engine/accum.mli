(** Per-trial outcomes and their merge-able summary.

    A worker folds the trials of its chunk into a local [t]; chunk summaries
    are then [merge]d in chunk order. [merge] is associative with [empty] as
    identity, and folding trials one by one with [add] equals merging any
    partition of the same trial sequence — the property that makes the
    parallel engine's results independent of the worker count. *)

type trial = {
  accepted : bool;
  bits : int;  (** The run's max-per-node bit cost (non-negative). *)
}

type t = {
  trials : int;
  accepts : int;
  bits_sum : int;
  bits_max : int;
}

val empty : t

val add : t -> trial -> t

val merge : t -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
