(** Machine-readable run log: one JSON line per estimate.

    The bench harness records every estimate it prints, so downstream
    tooling (plots, regression tracking across commits) can consume the
    experiment tables without scraping stdout. Line format:

    {v
    {"schema_version":2,"protocol":"sym_dmam","n":16,"prover":"honest",
     "trials":240,"accepts":240,"rate":1.0,"ci_low":0.98413,"ci_high":1.0,
     "mean_bits":87.1,"max_bits":92,"domains":4,"stopped_early":false}
    v}

    Fault-sweep records additionally carry a ["fault"] field holding the
    [Fault.to_string]-style label of the injected spec. *)

val schema_version : int
(** Version stamped on every record; bumped on any format change. *)

val to_json : ?fault:string -> protocol:string -> n:int -> prover:string -> Engine.estimate -> string
(** The JSON object for one estimate (a single line, no trailing newline).
    [fault] adds the fault-spec label field. *)

val set_sink : out_channel option -> unit
(** Route subsequent {!log} calls to the given channel (or drop them). *)

val open_from_env : ?default:string -> unit -> unit
(** Open the sink named by the [IDS_RUNLOG] environment variable (appending),
    falling back to [default] when the variable is unset; an empty value
    disables logging. No default and no variable means no sink. An
    unwritable path prints a warning on stderr and disables logging rather
    than aborting the run. *)

val log : ?fault:string -> protocol:string -> n:int -> prover:string -> Engine.estimate -> unit
(** Append one JSON line to the sink, if any (no-op otherwise). *)

val close : unit -> unit
(** Flush and close the current sink, if it was opened by this module. *)
