(** Machine-readable run log: one JSON line per estimate.

    The bench harness records every estimate it prints, so downstream
    tooling ([ids_inspect], plots, regression tracking across commits) can
    consume the experiment tables without scraping stdout. Line format:

    {v
    {"schema_version":3,"protocol":"sym_dmam","n":16,"prover":"honest",
     "trials":240,"accepts":240,"rate":1.0,"ci_low":0.98413,"ci_high":1.0,
     "mean_bits":87.1,"max_bits":92,"domains":4,"stopped_early":false}
    v}

    Fault-sweep records additionally carry a ["fault"] field holding the
    [Fault.to_string]-style label of the injected spec; records written
    while tracing ([IDS_TRACE=1]) is on carry a ["metrics"] object — the
    {!Ids_obs.Obs.snapshot_json} snapshot covering that estimate's trials.

    The reader half ({!of_line}, {!read_file}) accepts schema versions 2
    and 3 in the same file (version 2 lines simply have no metrics) and
    reports an explicit error for anything else. *)

val schema_version : int
(** Version stamped on every record; bumped on any format change. *)

val min_supported_version : int
(** Oldest version {!of_json} still reads (currently 2). *)

val to_json :
  ?fault:string -> ?metrics:string -> protocol:string -> n:int -> prover:string -> Engine.estimate -> string
(** The JSON object for one estimate (a single line, no trailing newline).
    [fault] adds the fault-spec label field; [metrics] embeds a
    pre-rendered JSON object (use {!Ids_obs.Obs.snapshot_json}). *)

val set_sink : out_channel option -> unit
(** Route subsequent {!log} calls to the given channel (or drop them). *)

val open_from_env : ?default:string -> unit -> unit
(** Point the sink at the path named by the [IDS_RUNLOG] environment
    variable (appending), falling back to [default] when the variable is
    unset; an empty value disables logging. No default and no variable
    means no sink. The file is created lazily — only when the first record
    is logged — so runs that log nothing leave no artifact. An unwritable
    path prints a warning on stderr (at first write) and disables logging
    rather than aborting the run. *)

val log :
  ?fault:string -> ?metrics:string -> protocol:string -> n:int -> prover:string -> Engine.estimate -> unit
(** Append one JSON line to the sink, if any (no-op otherwise). *)

val close : unit -> unit
(** Flush and close the current sink, if it was opened by this module. *)

(** {1 Crash-safe framed sink}

    The serving daemon ([ids_serve]) appends its records through this
    writer instead of the plain JSONL sink: each record is framed as
    [=IDS <payload-bytes>\n<payload>\n] and (by default) [fsync]'d, so a
    [kill -9] mid-write leaves a whole-record prefix plus at most one torn
    tail, which {!Framed.create} detects and truncates on the next open.
    {!read_file} / {!read_file_lenient} auto-detect the framing. *)
module Framed : sig
  val magic : string
  (** The record prefix (["=IDS "]); a file starting with it is framed. *)

  val frame : string -> string
  (** The on-disk bytes of one record (header, payload, terminator). *)

  type writer

  val create : ?sync:bool -> string -> (writer, string) result
  (** Open [path] for appending, first truncating any torn trailing record
      (crash recovery). [sync] (default [true]) fsyncs after every write. *)

  val truncated : writer -> int
  (** Bytes of torn tail removed by recovery at {!create} time (0 = clean). *)

  val path : writer -> string

  val write : writer -> string -> unit
  (** Append one framed record (the payload must not contain ['\n']). *)

  val close : writer -> unit
end

(** {1 Reading records back} *)

type record = {
  version : int;
  protocol : string;
  n : int;
  prover : string;
  fault : string option;
  trials : int;
  accepts : int;
  rate : float;
  ci_low : float;
  ci_high : float;
  mean_bits : float;
  max_bits : int;
  domains : int;
  stopped_early : bool;
  metrics : Ids_obs.Json.t option;  (** present on (some) version-3 records *)
}

val of_json : Ids_obs.Json.t -> (record, string) result
(** Decode one parsed line. Versions 2 and 3 are accepted; any other
    [schema_version] is an explicit error naming the supported range. *)

val of_line : string -> (record, string) result
(** Parse + decode one log line. *)

type tail_error =
  | Torn_tail of { offset : int; reason : string }
      (** The file ends in an interrupted write: [offset] is where the good
          prefix ends (a record boundary, safe to truncate to or resume
          reading from). *)
  | Bad_line of { lineno : int; reason : string }
      (** A complete line/record (1-based index) that doesn't decode —
          corruption or a foreign format, not a torn append. *)

type contents = {
  records : record list;  (** The good prefix, in file order. *)
  good_end : int;  (** Byte offset just past the last good record. *)
  tail : tail_error option;  (** Why reading stopped before EOF, if it did. *)
}

val tail_error_to_string : tail_error -> string

val read_file_lenient : string -> (contents, string) result
(** All leading good records of a run log (framed or plain JSONL,
    auto-detected), plus a structured description of the first problem
    instead of a hard failure — crash recovery and [ids_inspect] keep the
    good prefix. [Error] only for filesystem-level failures. Blank JSONL
    lines are skipped. *)

val read_from : string -> offset:int -> (contents, string) result
(** {!read_file_lenient} starting at byte [offset] (a record boundary, e.g.
    a previous read's [good_end]; out-of-range offsets restart at 0). The
    [ids_inspect --follow] tailing primitive. *)

val read_file : string -> (record list, string) result
(** Strict mode (tests, regression pins): all records of the file, in file
    order; the first malformed or unsupported line aborts with
    ["path:lineno: reason"] (torn tails abort with the byte offset). Blank
    lines are skipped. *)
