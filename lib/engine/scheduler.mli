(** Deterministic work scheduling across OCaml 5 domains.

    Work items are identified by an integer index; which worker evaluates an
    index is arbitrary (an atomic counter hands out indices dynamically) but
    results land in an array slot determined by the index alone, so the
    returned array is identical for every worker count — provided [f] itself
    depends only on its index (the engine guarantees this by keying every
    trial on its seed, never on domain identity). *)

val map_range : domains:int -> lo:int -> hi:int -> (int -> 'a) -> 'a array
(** [map_range ~domains ~lo ~hi f] is [[| f lo; f (lo+1); ...; f (hi-1) |]],
    evaluated by up to [domains] domains (the calling domain participates;
    [domains <= 1] runs entirely in the caller without spawning). An
    exception raised by any [f] is re-raised after all domains are joined. *)
