(** Wilson score confidence intervals for a binomial proportion.

    Unlike the Wald interval, the Wilson interval never escapes [0, 1] and
    behaves sensibly at the extreme rates (0 and 1) the protocol experiments
    routinely produce. *)

val z95 : float
(** Normal quantile for a two-sided 95% interval (1.96). *)

val z99 : float
(** Normal quantile for a two-sided 99% interval (2.576). *)

val interval : ?z:float -> accepts:int -> trials:int -> unit -> float * float
(** [interval ~accepts ~trials ()] is the Wilson score interval [(lo, hi)]
    for the acceptance probability, at confidence [z] (default {!z95}).
    [trials = 0] yields the vacuous interval [(0, 1)]. Raises
    [Invalid_argument] on negative counts or [accepts > trials]. *)

val width : ?z:float -> accepts:int -> trials:int -> unit -> float
(** [hi - lo] of {!interval}; shrinks like [1/sqrt trials]. *)
