let z95 = 1.96
let z99 = 2.576

let interval ?(z = z95) ~accepts ~trials () =
  if accepts < 0 || trials < 0 || accepts > trials then
    invalid_arg "Wilson.interval: need 0 <= accepts <= trials";
  if trials = 0 then (0., 1.)
  else begin
    let n = float_of_int trials in
    let p = float_of_int accepts /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = p +. (z2 /. (2. *. n)) in
    let half = z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) in
    (Float.max 0. ((center -. half) /. denom), Float.min 1. ((center +. half) /. denom))
  end

let width ?z ~accepts ~trials () =
  let lo, hi = interval ?z ~accepts ~trials () in
  hi -. lo
