(** Degradation sweeps: one Monte Carlo estimate per fault spec.

    A sweep runs the same seeded trial function once per point of a fault
    grid and logs every estimate to {!Runlog} tagged with the point's label,
    producing the completeness/soundness-vs-fault-rate curves the robustness
    experiments plot. The module is generic in the spec type (the network
    layer's [Fault.spec] in practice) so the engine stays free of upward
    dependencies.

    Determinism: each point is estimated with {!Engine.run}, so a sweep is
    bit-identical for every worker-domain count, and trials are keyed by
    seed alone — the spec must flow into the trial function's behavior only
    through its value, never through shared mutable state. *)

type 's point = {
  spec : 's;
  label : string;  (** The [label] function applied to [spec]. *)
  estimate : Engine.estimate;
}

val run :
  ?domains:int ->
  ?chunk:int ->
  protocol:string ->
  n:int ->
  prover:string ->
  trials:int ->
  label:('s -> string) ->
  specs:'s list ->
  ('s -> int -> Accum.trial) ->
  's point list
(** [run ~protocol ~n ~prover ~trials ~label ~specs f] estimates
    [f spec seed] over [seed = 1 .. trials] for each spec in order, logging
    each estimate with {!Runlog.log} under the spec's label (the [fault]
    record field). [protocol], [n], and [prover] are the run-log identity
    fields; [domains] and [chunk] are passed to {!Engine.run}. When tracing
    is on ([IDS_TRACE=1]) the metrics registry is reset before each point
    and a snapshot covering exactly that point's trials is embedded in its
    record. *)
