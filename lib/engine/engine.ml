type estimate = {
  trials : int;
  accepts : int;
  rate : float;
  mean_bits : float;
  max_bits : int;
  ci_low : float;
  ci_high : float;
  domains : int;
  stopped_early : bool;
}

let default_domains () =
  match Sys.getenv_opt "IDS_DOMAINS" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some d when d >= 1 -> d | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let scaled_trials ?(default_scale = 1.0) trials =
  let scale =
    match Sys.getenv_opt "IDS_TRIALS_SCALE" with
    | Some s -> (match float_of_string_opt (String.trim s) with Some f when f > 0. -> f | _ -> default_scale)
    | None -> default_scale
  in
  Int.max 1 (int_of_float (Float.ceil (float_of_int trials *. scale)))

let of_accum ?(domains = 1) ?(stopped_early = false) (a : Accum.t) =
  let trials = a.Accum.trials in
  let accepts = a.Accum.accepts in
  let ci_low, ci_high = Wilson.interval ~accepts ~trials () in
  { trials;
    accepts;
    rate = (if trials = 0 then 0. else float_of_int accepts /. float_of_int trials);
    mean_bits = (if trials = 0 then 0. else float_of_int a.Accum.bits_sum /. float_of_int trials);
    max_bits = a.Accum.bits_max;
    ci_low;
    ci_high;
    domains;
    stopped_early
  }

(* Fold one chunk of the seed range sequentially; a chunk's summary depends
   only on its seed interval, never on which domain ran it. *)
let run_chunk ~chunk ~trials f c =
  let lo = (c * chunk) + 1 in
  let hi = Int.min trials ((c + 1) * chunk) in
  let acc = ref Accum.empty in
  for seed = lo to hi do
    acc := Accum.add !acc (f seed)
  done;
  !acc

let run ?domains ?(chunk = 32) ~trials f =
  if trials <= 0 then invalid_arg "Engine.run: need positive trials";
  if chunk <= 0 then invalid_arg "Engine.run: need positive chunk";
  let domains = match domains with Some d -> Int.max 1 d | None -> default_domains () in
  let chunks = (trials + chunk - 1) / chunk in
  let parts = Scheduler.map_range ~domains ~lo:0 ~hi:chunks (run_chunk ~chunk ~trials f) in
  of_accum ~domains (Array.fold_left Accum.merge Accum.empty parts)

let run_sprt ?domains ?(chunk = 32) ~plan ~max_trials f =
  if max_trials <= 0 then invalid_arg "Engine.run_sprt: need positive max_trials";
  if chunk <= 0 then invalid_arg "Engine.run_sprt: need positive chunk";
  let domains = match domains with Some d -> Int.max 1 d | None -> default_domains () in
  let chunks = (max_trials + chunk - 1) / chunk in
  (* Waves of [domains] chunks run in parallel; the boundary is tested on
     the cumulative prefix after each chunk in order, so the stopping chunk
     (and hence the estimate) is independent of the wave width. *)
  let acc = ref Accum.empty in
  let decision = ref None in
  let next = ref 0 in
  while !decision = None && !next < chunks do
    let wave = Int.min domains (chunks - !next) in
    let parts =
      Scheduler.map_range ~domains ~lo:!next ~hi:(!next + wave) (run_chunk ~chunk ~trials:max_trials f)
    in
    Array.iter
      (fun part ->
        if !decision = None then begin
          acc := Accum.merge !acc part;
          decision := Sprt.decide plan !acc
        end)
      parts;
    next := !next + wave
  done;
  (of_accum ~domains ~stopped_early:(!decision <> None) !acc, !decision)

let pp fmt e =
  Format.fprintf fmt "%d/%d accepted (%.3f, 95%% CI [%.3f, %.3f]), %.1f bits/node mean%s" e.accepts
    e.trials e.rate e.ci_low e.ci_high e.mean_bits
    (if e.stopped_early then ", stopped early" else "")
