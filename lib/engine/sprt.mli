(** Wald's sequential probability ratio test for a Bernoulli rate.

    Definition 2 poses threshold questions — "is the acceptance probability
    at least 2/3 (YES instances) or at most 1/3 (NO instances)?" — for which
    a fixed trial budget is wasteful: when the true rate sits far from the
    thresholds (the common case: honest provers accept with probability near
    1, committed cheats near 0), a handful of trials already decides the
    question at the requested error level. The SPRT stops as soon as the
    cumulative log-likelihood ratio leaves the [(log B, log A)] corridor. *)

type plan

type decision =
  | Above  (** Evidence favours rate >= p1 (e.g. a YES instance). *)
  | Below  (** Evidence favours rate <= p0 (e.g. a NO instance). *)

val plan : ?alpha:float -> ?beta:float -> p0:float -> p1:float -> unit -> plan
(** [plan ~p0 ~p1 ()] tests H0: rate <= [p0] against H1: rate >= [p1],
    [0 < p0 < p1 < 1], with type-I error [alpha] and type-II error [beta]
    (both default [1e-3]). Raises [Invalid_argument] on a bad corridor. *)

val definition2 : ?alpha:float -> ?beta:float -> unit -> plan
(** The paper's thresholds: [p0 = 1/3], [p1 = 2/3]. *)

val decide : plan -> Accum.t -> decision option
(** [decide plan acc] is [Some d] once the accumulated evidence crosses a
    boundary, [None] while the test must continue. Depends only on the
    accumulator's [trials] and [accepts], so it is deterministic in the
    trial prefix regardless of how the trials were scheduled. *)

val pp_decision : Format.formatter -> decision -> unit
