type 's point = { spec : 's; label : string; estimate : Engine.estimate }

module Obs = Ids_obs.Obs

let run ?domains ?chunk ~protocol ~n ~prover ~trials ~label ~specs f =
  List.map
    (fun spec ->
      (* Scope the metrics snapshot to this point so each sweep record's
         counters cover exactly its own trials. *)
      if Obs.enabled () then Obs.reset_metrics ();
      let estimate = Engine.run ?domains ?chunk ~trials (fun seed -> f spec seed) in
      let metrics = if Obs.enabled () then Some (Obs.snapshot_json (Obs.snapshot ())) else None in
      let label = label spec in
      Runlog.log ~fault:label ?metrics ~protocol ~n ~prover estimate;
      { spec; label; estimate })
    specs
