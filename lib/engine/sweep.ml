type 's point = { spec : 's; label : string; estimate : Engine.estimate }

let run ?domains ?chunk ~protocol ~n ~prover ~trials ~label ~specs f =
  List.map
    (fun spec ->
      let estimate = Engine.run ?domains ?chunk ~trials (fun seed -> f spec seed) in
      let label = label spec in
      Runlog.log ~fault:label ~protocol ~n ~prover estimate;
      { spec; label; estimate })
    specs
