(** Fixed-capacity sets over [0 .. capacity-1], in one of two
    representations behind the same interface:

    - {b dense}: packed bit words — O(capacity) memory, O(1) membership.
      The right shape for the adjacency rows of small or dense graphs,
      whose rows the hash protocols treat as characteristic vectors.
    - {b sparse}: a sorted element array — O(cardinal) memory, O(log
      cardinal) membership. The shape that lets a bounded-degree graph on a
      million vertices hold each adjacency row in O(degree) memory.

    Iteration ({!iter}, {!fold}, {!to_list}) is ascending for both, so any
    accumulation over a set is bit-identical across representations. *)

type t

val create : int -> t
(** [create capacity] is the empty {b dense} set over [0 .. capacity-1]. *)

val create_sparse : int -> t
(** [create_sparse capacity] is the empty {b sparse} set. *)

val create_like : t -> t
(** Empty set with the same capacity and representation as the argument. *)

val is_sparse : t -> bool

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int

val equal : t -> t -> bool
(** Equality of contents, across representations. Sets with different
    capacities are never equal (they are sets over different universes) —
    mismatched capacities answer [false] rather than raise, so
    [Graph.equal] on different-sized graphs is total. *)

val copy : t -> t
(** Preserves the representation. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Iterates members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs], dense. @raise Invalid_argument on out-of-range
    element. *)

val of_list_sparse : int -> int list -> t
(** [of_list xs] into a sparse set. *)

val union : t -> t -> t
(** Result takes the left operand's representation.
    @raise Invalid_argument on capacity mismatch (unlike {!equal}, there is
    no meaningful answer over different universes). *)

val inter : t -> t -> t
val subset : t -> t -> bool
val is_empty : t -> bool

val choose : t -> int option
(** Smallest member, or [None] if empty. *)

val pp : Format.formatter -> t -> unit
