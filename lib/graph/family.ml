module Rng = Ids_bignum.Rng

let random_asymmetric rng n =
  if n >= 2 && n <= 5 then invalid_arg "Family.random_asymmetric: no asymmetric graph exists for 2 <= n <= 5";
  if n <= 1 then Graph.make n
  else begin
    let rec sample () =
      let g = Graph.random_gnp rng n 0.5 in
      if Graph.is_connected g && Iso.is_asymmetric g then g else sample ()
    in
    sample ()
  end

let random_symmetric rng n =
  if n <= 1 then invalid_arg "Family.random_symmetric: need n >= 2";
  if n <= 8 then begin
    let rec sample () =
      let g = Graph.random_connected_gnp rng n 0.5 in
      if Iso.is_symmetric g then g else sample ()
    in
    sample ()
  end
  else begin
    (* Plant a mirror symmetry: two copies of a random side joined by edges
       between corresponding vertices (plus one apex when n is odd). *)
    let half = n / 2 in
    let side = Graph.random_connected_gnp rng half 0.5 in
    let g = Graph.make n in
    List.iter
      (fun (u, v) ->
        Graph.add_edge g u v;
        Graph.add_edge g (u + half) (v + half))
      (Graph.edges side);
    for i = 0 to half - 1 do
      Graph.add_edge g i (i + half)
    done;
    if n mod 2 = 1 then begin
      Graph.add_edge g (n - 1) 0;
      Graph.add_edge g (n - 1) half
    end;
    assert (Iso.is_symmetric g);
    g
  end

let expander ?repr rng ~n ~degree =
  if n < 3 then invalid_arg "Family.expander: need n >= 3";
  if degree < 2 || degree mod 2 <> 0 then invalid_arg "Family.expander: degree must be even and >= 2";
  let max_off = (n - 1) / 2 in
  let chords = (degree - 2) / 2 in
  if chords > max_off - 1 then invalid_arg "Family.expander: degree too large for n";
  let repr = match repr with Some r -> r | None -> Graph.auto_repr n in
  let g = Graph.make ~repr n in
  (* Random circulant: the n-cycle (connectivity for free) plus
     (degree - 2) / 2 distinct random chord offsets in [2, (n-1)/2] — each
     offset contributes exactly 2 to every vertex's degree, and excluding
     n/2 keeps the contribution exact for even n. Random circulants are
     good enough spectral expanders for the scale benchmarks, and the
     generator is O(n * degree) with O(degree) rng draws, which is what
     makes the family usable at n = 10⁶ (the pairing-model
     [random_regular] is not). *)
  for i = 0 to n - 1 do
    Graph.add_edge g i ((i + 1) mod n)
  done;
  let offsets = Hashtbl.create 8 in
  let rec draw remaining =
    if remaining > 0 then begin
      let d = 2 + Rng.int rng (max_off - 1) in
      if Hashtbl.mem offsets d then draw remaining
      else begin
        Hashtbl.add offsets d ();
        for i = 0 to n - 1 do
          Graph.add_edge g i ((i + d) mod n)
        done;
        draw (remaining - 1)
      end
    end
  in
  draw chords;
  g

let asymmetric_family rng ~n ~size =
  let max_attempts = 200 * size in
  let rec collect acc count attempts =
    if count >= size || attempts >= max_attempts then List.rev acc
    else begin
      let g = random_asymmetric rng n in
      if List.exists (fun h -> Iso.are_isomorphic g h) acc then collect acc count (attempts + 1)
      else collect (g :: acc) (count + 1) (attempts + 1)
    end
  in
  collect [] 0 0

(* --- dumbbells ------------------------------------------------------------ *)

let dumbbell f_a f_b =
  let n = Graph.n f_a in
  if Graph.n f_b <> n then invalid_arg "Family.dumbbell: side size mismatch";
  let g = Graph.make ((2 * n) + 2) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (Graph.edges f_a);
  List.iter (fun (u, v) -> Graph.add_edge g (u + n) (v + n)) (Graph.edges f_b);
  let x_a = 2 * n and x_b = (2 * n) + 1 in
  Graph.add_edge g 0 x_a;
  Graph.add_edge g x_a x_b;
  Graph.add_edge g x_b n;
  g

let dumbbell_x_a f = 2 * Graph.n f
let dumbbell_x_b f = (2 * Graph.n f) + 1

let dumbbell_mirror n =
  let size = (2 * n) + 2 in
  let a = Array.make size 0 in
  for i = 0 to n - 1 do
    a.(i) <- i + n;
    a.(i + n) <- i
  done;
  a.(2 * n) <- (2 * n) + 1;
  a.((2 * n) + 1) <- 2 * n;
  Perm.of_array a

(* --- Dumbbell Symmetry (Definition 5) -------------------------------------- *)

let dsym_graph f r =
  if r < 0 then invalid_arg "Family.dsym_graph: negative path parameter";
  let n = Graph.n f in
  let size = (2 * n) + (2 * r) + 1 in
  let g = Graph.make size in
  List.iter
    (fun (u, v) ->
      Graph.add_edge g u v;
      Graph.add_edge g (u + n) (v + n))
    (Graph.edges f);
  (* The path 0 - 2n - 2n+1 - ... - 2n+2r - n. *)
  Graph.add_edge g 0 (2 * n);
  for i = 0 to (2 * r) - 1 do
    Graph.add_edge g ((2 * n) + i) ((2 * n) + i + 1)
  done;
  Graph.add_edge g ((2 * n) + (2 * r)) n;
  g

let dsym_sigma ~n ~r =
  let size = (2 * n) + (2 * r) + 1 in
  let a = Array.make size 0 in
  for x = 0 to size - 1 do
    a.(x) <-
      (if x < n then x + n
       else if x < 2 * n then x - n
       else if x <= (2 * n) + r then (2 * n) + (2 * r) - (x - (2 * n))
       else (2 * n) + ((2 * n) + (2 * r) - x))
  done;
  Perm.of_array a

let is_dsym_member ~n ~r g =
  let size = (2 * n) + (2 * r) + 1 in
  Graph.n g = size
  &&
  let path_edges =
    ((0, 2 * n) :: List.init (2 * r) (fun i -> ((2 * n) + i, (2 * n) + i + 1)))
    @ [ ((2 * n) + (2 * r), n) ]
  in
  let path_ok = List.for_all (fun (u, v) -> Graph.has_edge g u v) path_edges in
  let norm (u, v) = (min u v, max u v) in
  let path_set = List.map norm path_edges in
  let stray_ok =
    List.for_all
      (fun (u, v) ->
        let internal_a = u < n && v < n in
        let internal_b = u >= n && u < 2 * n && v >= n && v < 2 * n in
        internal_a || internal_b || List.mem (norm (u, v)) path_set)
      (Graph.edges g)
  in
  let mirror_ok =
    let shift_ok = ref true in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Graph.has_edge g u v <> Graph.has_edge g (u + n) (v + n) then shift_ok := false
      done
    done;
    !shift_ok
  in
  path_ok && stray_ok && mirror_ok

let dsym_perturbed rng f r =
  let n = Graph.n f in
  let g = dsym_graph f r in
  (* Flip a random vertex pair inside the B-side copy; retry until the flip
     actually breaks the mirror (i.e. always, since the A side is untouched),
     while keeping the graph connected. *)
  let rec flip tries =
    if tries = 0 then failwith "Family.dsym_perturbed: could not perturb"
    else begin
      let u = n + Rng.int rng n and v = n + Rng.int rng n in
      if u = v then flip (tries - 1)
      else begin
        let h = Graph.copy g in
        if Graph.has_edge h u v then Graph.remove_edge h u v else Graph.add_edge h u v;
        if Graph.is_connected h && not (is_dsym_member ~n ~r h) then h else flip (tries - 1)
      end
    end
  in
  flip 100
