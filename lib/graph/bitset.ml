type t = { capacity : int; words : int array }

let word_bits = 62

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make ((capacity + word_bits - 1) / word_bits) 0 }

let capacity t = t.capacity

let check t i = if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

(* SWAR popcount (Hacker's Delight 5-2), constant-time instead of one loop
   iteration per set bit. Words here carry at most 62 bits, so the final
   byte-sum multiply cannot carry into the sign bit (sum <= 62 < 128) and
   the top byte read by [lsr 56] holds the exact total. *)
let popcount w =
  let m1 = 0x1555555555555555 (* 62-bit 01 pattern *) in
  let m2 = 0x3333333333333333 in
  let m4 = 0x0F0F0F0F0F0F0F0F in
  let w = w - ((w lsr 1) land m1) in
  let w = (w land m2) + ((w lsr 2) land m2) in
  let w = (w + (w lsr 4)) land m4 in
  (w * 0x0101010101010101) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let equal a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.equal: capacity mismatch";
  a.words = b.words

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
      f ((w * word_bits) + log2 bit 0);
      word := !word land lnot bit
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

let union a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.union: capacity mismatch";
  { capacity = a.capacity; words = Array.mapi (fun i w -> w lor b.words.(i)) a.words }

let inter a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter: capacity mismatch";
  { capacity = a.capacity; words = Array.mapi (fun i w -> w land b.words.(i)) a.words }

let subset a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.subset: capacity mismatch";
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let choose t =
  let found = ref None in
  (try iter (fun i -> found := Some i; raise Exit) t with Exit -> ());
  !found

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
