(* Two representations behind one interface: dense packed words (the
   original, O(capacity/62) memory, O(1) membership) and a sparse sorted
   element array (O(cardinal) memory — the representation that lets a
   million-node bounded-degree graph hold one row in O(degree) instead of
   O(n) bits). Iteration order is ascending for both, so every fold over a
   set — in particular the field-element accumulations of the hash
   protocols — produces bit-identical results regardless of representation. *)

type dense = { dcapacity : int; words : int array }

type sparse = { scapacity : int; mutable size : int; mutable elts : int array }
(* Invariant: elts.(0 .. size-1) is strictly increasing; slots beyond [size]
   are garbage. *)

type t = Dense of dense | Sparse of sparse

let word_bits = 62

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  Dense { dcapacity = capacity; words = Array.make ((capacity + word_bits - 1) / word_bits) 0 }

let create_sparse capacity =
  if capacity < 0 then invalid_arg "Bitset.create_sparse: negative capacity";
  Sparse { scapacity = capacity; size = 0; elts = [||] }

let capacity = function Dense d -> d.dcapacity | Sparse s -> s.scapacity

let create_like t =
  match t with Dense d -> create d.dcapacity | Sparse s -> create_sparse s.scapacity

let is_sparse = function Dense _ -> false | Sparse _ -> true

let check t i = if i < 0 || i >= capacity t then invalid_arg "Bitset: index out of range"

(* Position of [i] in s.elts, or the insertion point encoded as [-(pos+1)]. *)
let sparse_find s i =
  let lo = ref 0 and hi = ref s.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if s.elts.(mid) < i then lo := mid + 1 else hi := mid
  done;
  if !lo < s.size && s.elts.(!lo) = i then !lo else -(!lo + 1)

let mem t i =
  check t i;
  match t with
  | Dense d -> d.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0
  | Sparse s -> sparse_find s i >= 0

let add t i =
  check t i;
  match t with
  | Dense d -> d.words.(i / word_bits) <- d.words.(i / word_bits) lor (1 lsl (i mod word_bits))
  | Sparse s -> (
    let pos = sparse_find s i in
    if pos < 0 then begin
      let at = -pos - 1 in
      if s.size = Array.length s.elts then begin
        let grown = Array.make (max 2 (2 * s.size)) 0 in
        Array.blit s.elts 0 grown 0 s.size;
        s.elts <- grown
      end;
      Array.blit s.elts at s.elts (at + 1) (s.size - at);
      s.elts.(at) <- i;
      s.size <- s.size + 1
    end)

let remove t i =
  check t i;
  match t with
  | Dense d -> d.words.(i / word_bits) <- d.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))
  | Sparse s ->
    let pos = sparse_find s i in
    if pos >= 0 then begin
      Array.blit s.elts (pos + 1) s.elts pos (s.size - pos - 1);
      s.size <- s.size - 1
    end

(* SWAR popcount (Hacker's Delight 5-2), constant-time instead of one loop
   iteration per set bit. Words here carry at most 62 bits, so the final
   byte-sum multiply cannot carry into the sign bit (sum <= 62 < 128) and
   the top byte read by [lsr 56] holds the exact total. *)
let popcount w =
  let m1 = 0x1555555555555555 (* 62-bit 01 pattern *) in
  let m2 = 0x3333333333333333 in
  let m4 = 0x0F0F0F0F0F0F0F0F in
  let w = w - ((w lsr 1) land m1) in
  let w = (w land m2) + ((w lsr 2) land m2) in
  let w = (w + (w lsr 4)) land m4 in
  (w * 0x0101010101010101) lsr 56

let cardinal = function
  | Dense d -> Array.fold_left (fun acc w -> acc + popcount w) 0 d.words
  | Sparse s -> s.size

let iter f t =
  match t with
  | Dense d ->
    for w = 0 to Array.length d.words - 1 do
      let word = ref d.words.(w) in
      while !word <> 0 do
        let bit = !word land - !word in
        let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
        f ((w * word_bits) + log2 bit 0);
        word := !word land lnot bit
      done
    done
  | Sparse s ->
    for i = 0 to s.size - 1 do
      f s.elts.(i)
    done

let fold f t init =
  match t with
  | Dense _ ->
    let acc = ref init in
    iter (fun i -> acc := f i !acc) t;
    !acc
  | Sparse s ->
    let acc = ref init in
    for i = 0 to s.size - 1 do
      acc := f s.elts.(i) !acc
    done;
    !acc

(* Mismatched capacities compare unequal (they are sets over different
   universes, and [Graph.equal] on different-sized graphs must answer
   [false], not raise). Mixed representations compare by contents. *)
let equal a b =
  capacity a = capacity b
  &&
  match (a, b) with
  | Dense x, Dense y -> x.words = y.words
  | Sparse x, Sparse y ->
    x.size = y.size
    &&
    let rec go i = i >= x.size || (x.elts.(i) = y.elts.(i) && go (i + 1)) in
    go 0
  | (Dense _ as d), (Sparse _ as s) | (Sparse _ as s), (Dense _ as d) ->
    cardinal d = cardinal s
    &&
    let ok = ref true in
    iter (fun i -> if not (mem d i) then ok := false) s;
    !ok

let copy = function
  | Dense d -> Dense { d with words = Array.copy d.words }
  | Sparse s -> Sparse { s with elts = Array.sub s.elts 0 s.size }

let clear = function
  | Dense d -> Array.fill d.words 0 (Array.length d.words) 0
  | Sparse s -> s.size <- 0

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

let of_list_sparse capacity xs =
  let t = create_sparse capacity in
  List.iter (add t) xs;
  t

(* The binary set operations keep the capacity-mismatch exception: unlike
   {!equal} there is no meaningful answer over different universes. The
   result takes the left operand's representation. *)
let union a b =
  if capacity a <> capacity b then invalid_arg "Bitset.union: capacity mismatch";
  match (a, b) with
  | Dense x, Dense y -> Dense { x with words = Array.mapi (fun i w -> w lor y.words.(i)) x.words }
  | _ ->
    let r = create_like a in
    iter (add r) a;
    iter (add r) b;
    r

let inter a b =
  if capacity a <> capacity b then invalid_arg "Bitset.inter: capacity mismatch";
  match (a, b) with
  | Dense x, Dense y -> Dense { x with words = Array.mapi (fun i w -> w land y.words.(i)) x.words }
  | _ ->
    let r = create_like a in
    iter (fun i -> if mem b i then add r i) a;
    r

let subset a b =
  if capacity a <> capacity b then invalid_arg "Bitset.subset: capacity mismatch";
  match (a, b) with
  | Dense x, Dense y ->
    let ok = ref true in
    Array.iteri (fun i w -> if w land lnot y.words.(i) <> 0 then ok := false) x.words;
    !ok
  | _ ->
    let ok = ref true in
    iter (fun i -> if not (mem b i) then ok := false) a;
    !ok

let is_empty = function
  | Dense d -> Array.for_all (fun w -> w = 0) d.words
  | Sparse s -> s.size = 0

let choose t =
  match t with
  | Sparse s -> if s.size = 0 then None else Some s.elts.(0)
  | Dense _ ->
    let found = ref None in
    (try iter (fun i -> found := Some i; raise Exit) t with Exit -> ());
    !found

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
