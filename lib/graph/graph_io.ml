(* graph6: n encoded in 1, 4 or 8 bytes (printable ASCII, value + 63),
   followed by the upper triangle of the adjacency matrix in column-major
   order (x_{0,1}, x_{0,2}, x_{1,2}, x_{0,3}, ...), packed 6 bits per byte,
   padded with zeros.

   sparse6: ':' then n, then a stream of (b, x) groups — 1 + k bits each,
   k the least number of bits representing n - 1 — encoding edges in
   column-major order with a moving current vertex. Linear in the edge
   count, which is what makes million-node bounded-degree graphs
   round-trippable (graph6's dense payload is ~n²/12 bytes regardless of
   the edge count). Both follow nauty's formats.txt. *)

let max_size = (1 lsl 36) - 1

let encode_size buf n =
  if n < 0 then invalid_arg "Graph_io: negative size"
  else if n <= 62 then Buffer.add_char buf (Char.chr (n + 63))
  else if n <= 258047 then begin
    Buffer.add_char buf '~';
    Buffer.add_char buf (Char.chr (((n lsr 12) land 63) + 63));
    Buffer.add_char buf (Char.chr (((n lsr 6) land 63) + 63));
    Buffer.add_char buf (Char.chr ((n land 63) + 63))
  end
  else if n <= max_size then begin
    (* The 8-byte long form: "~~" then 36 bits, most significant first. *)
    Buffer.add_char buf '~';
    Buffer.add_char buf '~';
    for i = 5 downto 0 do
      Buffer.add_char buf (Char.chr (((n lsr (6 * i)) land 63) + 63))
    done
  end
  else invalid_arg "Graph_io: graph too large for graph6/sparse6 (n > 2^36 - 1)"

let strip_header header s =
  let s = String.trim s in
  if String.length s >= String.length header && String.sub s 0 (String.length header) = header then
    String.sub s (String.length header) (String.length s - String.length header)
  else s

let sixbit who s i =
  if i >= String.length s then invalid_arg (who ^ ": truncated");
  let c = Char.code s.[i] in
  if c < 63 || c > 126 then invalid_arg (who ^ ": invalid byte");
  c - 63

(* Decode N(n) at offset [pos]; returns (n, offset past the size field).
   Non-minimal encodings — a 4-byte size that fits 1 byte, an 8-byte size
   that fits 4 — are rejected: every legal value has exactly one header,
   so an overlong one is a malformed (or adversarial) stream, not an
   alternate spelling. *)
let decode_size who s pos =
  if pos >= String.length s then invalid_arg (who ^ ": truncated");
  if s.[pos] <> '~' then (sixbit who s pos, pos + 1)
  else if pos + 1 < String.length s && s.[pos + 1] = '~' then begin
    let n = ref 0 in
    for i = 0 to 5 do
      n := (!n lsl 6) lor sixbit who s (pos + 2 + i)
    done;
    if !n <= 258047 then invalid_arg (who ^ ": overlong size header");
    (!n, pos + 8)
  end
  else begin
    let n = (sixbit who s (pos + 1) lsl 12) lor (sixbit who s (pos + 2) lsl 6) lor sixbit who s (pos + 3) in
    if n <= 62 then invalid_arg (who ^ ": overlong size header");
    (n, pos + 4)
  end

let size_header n =
  let buf = Buffer.create 8 in
  encode_size buf n;
  Buffer.contents buf

let decode_size_header s = decode_size "Graph_io.decode_size_header" s 0

let to_graph6 g =
  let n = Graph.n g in
  let buf = Buffer.create (4 + (n * n / 12)) in
  encode_size buf n;
  let bits = ref 0 and count = ref 0 in
  let flush_partial () =
    if !count > 0 then begin
      Buffer.add_char buf (Char.chr ((!bits lsl (6 - !count)) + 63));
      bits := 0;
      count := 0
    end
  in
  let push b =
    bits := (!bits lsl 1) lor (if b then 1 else 0);
    incr count;
    if !count = 6 then begin
      Buffer.add_char buf (Char.chr (!bits + 63));
      bits := 0;
      count := 0
    end
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      push (Graph.has_edge g u v)
    done
  done;
  flush_partial ();
  Buffer.contents buf

let of_graph6 s =
  let who = "Graph_io.of_graph6" in
  let s = strip_header ">>graph6<<" s in
  if s = "" then invalid_arg (who ^ ": empty");
  let n, start = decode_size who s 0 in
  let g = Graph.make ~repr:(Graph.auto_repr n) n in
  let need = n * (n - 1) / 2 in
  let expected_bytes = start + ((need + 5) / 6) in
  if String.length s <> expected_bytes then invalid_arg (who ^ ": wrong length");
  let byte i = sixbit who s i in
  let idx = ref 0 in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      let word = byte (start + (!idx / 6)) in
      let bit = (word lsr (5 - (!idx mod 6))) land 1 in
      if bit = 1 then Graph.add_edge g u v;
      incr idx
    done
  done;
  g

(* Least k >= 1 with 2^k >= n: the group width of sparse6. *)
let sparse6_k n =
  let k = ref 1 in
  while 1 lsl !k < n do
    incr k
  done;
  !k

let to_sparse6 g =
  let n = Graph.n g in
  let k = sparse6_k n in
  let buf = Buffer.create 32 in
  Buffer.add_char buf ':';
  encode_size buf n;
  let acc = ref 0 and nacc = ref 0 in
  let push_bit b =
    acc := (!acc lsl 1) lor b;
    incr nacc;
    if !nacc = 6 then begin
      Buffer.add_char buf (Char.chr (!acc + 63));
      acc := 0;
      nacc := 0
    end
  in
  let push_bits x w =
    for i = w - 1 downto 0 do
      push_bit ((x lsr i) land 1)
    done
  in
  (* Edges in column-major order (by higher endpoint, then lower), with a
     moving current vertex [v]: (0, u) repeats the column, (1, u) advances
     it by one, and a jump writes an explicit (1, w) vertex-set group. *)
  let v = ref 0 in
  for w = 0 to n - 1 do
    Bitset.iter
      (fun u ->
        if u < w then begin
          if w = !v then begin push_bit 0; push_bits u k end
          else if w = !v + 1 then begin
            incr v;
            push_bit 1;
            push_bits u k
          end
          else begin
            v := w;
            push_bit 1;
            push_bits w k;
            push_bit 0;
            push_bits u k
          end
        end)
      (Graph.neighbors g w)
  done;
  (* Pad with 1-bits; when n = 2^k the all-ones padding is a valid group
     that would advance [v], so a lone 0-bit shields it (nauty's rule). *)
  let pad = (6 - !nacc) mod 6 in
  if k < 6 && n = 1 lsl k && pad >= k && !v < n - 1 then push_bit 0;
  while !nacc <> 0 do
    push_bit 1
  done;
  Buffer.contents buf

let of_sparse6 s =
  let who = "Graph_io.of_sparse6" in
  let s = strip_header ">>sparse6<<" s in
  if s = "" then invalid_arg (who ^ ": empty");
  if s.[0] <> ':' then invalid_arg (who ^ ": missing ':' prefix");
  let n, start = decode_size who s 1 in
  let k = sparse6_k n in
  let g = Graph.make ~repr:(Graph.auto_repr n) n in
  let len = String.length s in
  (* Validate the payload bytes up front so trailing garbage is rejected
     even when it falls entirely inside the padding tail. *)
  for i = start to len - 1 do
    ignore (sixbit who s i)
  done;
  let total_bits = (len - start) * 6 in
  let bit i =
    let c = Char.code s.[start + (i / 6)] - 63 in
    (c lsr (5 - (i mod 6))) land 1
  in
  let pos = ref 0 and v = ref 0 in
  (try
     while total_bits - !pos >= k + 1 do
       let b = bit !pos in
       incr pos;
       let x = ref 0 in
       for _ = 1 to k do
         x := (!x lsl 1) lor bit !pos;
         incr pos
       done;
       if b = 1 then incr v;
       if !x >= n || !v >= n then raise Exit
       else if !x > !v then v := !x
       else if !x = !v then invalid_arg (who ^ ": self-loop")
       else Graph.add_edge g !x !v
     done
   with Exit -> ());
  g

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
