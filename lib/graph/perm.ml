type t = int array

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= n then invalid_arg "Perm.of_array: out of range";
      if seen.(x) then invalid_arg "Perm.of_array: not injective";
      seen.(x) <- true)
    a;
  Array.copy a

let to_array t = Array.copy t

let size = Array.length

let apply t i = t.(i)

let identity n = Array.init n Fun.id

let is_identity t =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) t;
  !ok

let compose a b =
  if Array.length a <> Array.length b then invalid_arg "Perm.compose: size mismatch";
  Array.map (fun i -> a.(i)) b

let inverse t =
  let inv = Array.make (Array.length t) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) t;
  inv

let equal (a : t) (b : t) = a = b

let transposition n i j =
  if i < 0 || i >= n || j < 0 || j >= n then invalid_arg "Perm.transposition: out of range";
  let a = identity n in
  a.(i) <- j;
  a.(j) <- i;
  a

let random rng n =
  let a = identity n in
  Ids_bignum.Rng.shuffle rng a;
  a

let random_nonidentity rng n =
  if n < 2 then invalid_arg "Perm.random_nonidentity: need n >= 2";
  let rec go () =
    let p = random rng n in
    if is_identity p then go () else p
  in
  go ()

let apply_set t s =
  (* Preserve the argument's representation: a sparse neighborhood's image
     stays O(degree). *)
  let r = Bitset.create_like s in
  Bitset.iter (fun i -> Bitset.add r t.(i)) s;
  r

let all n =
  if n > 10 then invalid_arg "Perm.all: too large";
  let rec perms = function
    | [] -> [ [] ]
    | xs -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) xs))) xs
  in
  List.map (fun p -> Array.of_list p) (perms (List.init n Fun.id))

let fixpoint_count t =
  let c = ref 0 in
  Array.iteri (fun i x -> if i = x then incr c) t;
  !c

let pp fmt t =
  Format.fprintf fmt "[%s]" (String.concat " " (Array.to_list (Array.map string_of_int t)))
