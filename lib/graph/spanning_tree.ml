type t = { root : int; parent : int array; dist : int array }

let bfs g root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Spanning_tree.bfs: root out of range";
  let parent = Array.make n (-1) and dist = Array.make n (-1) in
  parent.(root) <- root;
  dist.(root) <- 0;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Bitset.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          parent.(u) <- v;
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  if Array.exists (fun d -> d < 0) dist then invalid_arg "Spanning_tree.bfs: graph not connected";
  { root; parent; dist }

(* One bucketing pass: children.(v) lists v's tree children ascending. The
   per-vertex [children] below scans all n parents, which is fine for one
   query but O(n²) summed over the tree — every scale-path consumer
   (honest aggregation at n = 10⁶) goes through this index instead. *)
let children_index t =
  let n = Array.length t.parent in
  let count = Array.make n 0 in
  for u = 0 to n - 1 do
    if u <> t.root && t.parent.(u) >= 0 && t.parent.(u) < n then
      count.(t.parent.(u)) <- count.(t.parent.(u)) + 1
  done;
  let out = Array.init n (fun v -> Array.make count.(v) 0) in
  let fill = Array.make n 0 in
  for u = 0 to n - 1 do
    if u <> t.root && t.parent.(u) >= 0 && t.parent.(u) < n then begin
      let p = t.parent.(u) in
      out.(p).(fill.(p)) <- u;
      fill.(p) <- fill.(p) + 1
    end
  done;
  out

let children t v =
  let acc = ref [] in
  for u = Array.length t.parent - 1 downto 0 do
    if u <> t.root && t.parent.(u) = v then acc := u :: !acc
  done;
  !acc

let subtree t v =
  (* Explicit stack over the children index: linear, and safe at depths
     (million-vertex paths) where the naive recursion would overflow. *)
  let index = children_index t in
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push v stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    acc := u :: !acc;
    Array.iter (fun c -> Stack.push c stack) index.(u)
  done;
  List.sort Stdlib.compare !acc

let is_valid g t =
  let n = Graph.n g in
  Array.length t.parent = n
  && Array.length t.dist = n
  && t.root >= 0
  && t.root < n
  && t.dist.(t.root) = 0
  && t.parent.(t.root) = t.root
  &&
  let ok = ref true in
  for v = 0 to n - 1 do
    if v <> t.root then
      if not (Graph.has_edge g v t.parent.(v)) || t.dist.(v) <> t.dist.(t.parent.(v)) + 1 then ok := false
  done;
  (* Reachability count via the children index — no list materialization. *)
  !ok
  &&
  let index = children_index t in
  let reached = ref 0 in
  let stack = Stack.create () in
  Stack.push t.root stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    incr reached;
    Array.iter (fun c -> Stack.push c stack) index.(u)
  done;
  !reached = n
