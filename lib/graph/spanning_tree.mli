(** BFS spanning trees with parent and distance labels.

    Every protocol in the paper aggregates hash values "up a spanning tree"
    whose labels (parent pointer, distance from root, root identity) the
    prover supplies and the nodes verify in the style of the proof-labeling
    scheme of Korman–Kutten–Peleg. The honest prover computes the labels with
    this module. *)

type t = {
  root : int;
  parent : int array;  (** [parent.(root) = root]. *)
  dist : int array;  (** BFS distance from the root. *)
}

val bfs : Graph.t -> int -> t
(** [bfs g root] computes a BFS tree. @raise Invalid_argument if [g] is not
    connected or [root] is out of range. *)

val children : t -> int -> int list
(** Children of a vertex in the tree, ascending. O(n) per query — use
    {!children_index} when visiting many vertices. *)

val children_index : t -> int array array
(** [children_index t] buckets every non-root vertex under its parent in
    one O(n) pass; entry [v] lists [v]'s children ascending. The scale path
    (honest aggregation at n = 10⁶) uses this instead of n calls to
    {!children}. Out-of-range parent labels are skipped, so the index is
    total even on adversarial advice. *)

val subtree : t -> int -> int list
(** Vertices of the subtree rooted at [v] (including [v]), ascending.
    Iterative — safe at million-vertex depths. *)

val is_valid : Graph.t -> t -> bool
(** Global check that the labels describe a BFS-consistent spanning tree of
    [g]: every non-root's parent is a neighbor at distance one less, the
    root has distance 0, and all vertices reach the root. This is the
    ground-truth oracle against which the distributed verification of the
    protocols is tested. *)
