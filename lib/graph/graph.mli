(** Simple undirected graphs on vertex set [{0, ..., n-1}].

    This is the network-graph representation used throughout the repository:
    the paper's instances (Definition 3–5) are graphs, the distributed model
    identifies network nodes with vertices, and the hash protocols treat the
    closed neighborhood [N(v)] (which includes [v] itself, per Section 2.1 of
    the paper) as row [v] of the adjacency matrix. *)

type t

val make : int -> t
(** [make n] is the edgeless graph on [n] vertices. *)

val n : t -> int
(** Number of vertices. *)

val uid : t -> int
(** Process-unique id, assigned at construction ({!copy} and every generator
    included). Together with {!version} it keys caches of values derived
    from a graph — O(1) instead of hashing the adjacency matrix. The id
    reflects allocation order, so it must never influence protocol results;
    caches may only store values that are pure functions of the graph. *)

val version : t -> int
(** Mutation counter: bumped by {!add_edge} / {!remove_edge}. A cached value
    keyed ([uid], [version]) can never be served stale. Bumps are not
    atomic — graphs are built before worker domains fan out and are never
    mutated concurrently. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the undirected edge [{u, v}].
    @raise Invalid_argument on a self-loop or out-of-range endpoint. *)

val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

val degree : t -> int -> int
(** Number of neighbors, excluding [v] itself. *)

val neighbors : t -> int -> Bitset.t
(** Open neighborhood of [v] (not including [v]). The returned set is the
    internal one; callers must not mutate it. *)

val closed_neighborhood : t -> int -> Bitset.t
(** [N(v)] in the paper's convention: neighbors of [v] plus [v] itself
    ("with self-loops for all vertices", Section 3.1.1). Fresh copy. *)

val edges : t -> (int * int) list
(** Edge list with [u < v], sorted lexicographically. *)

val edge_count : t -> int

val of_edges : int -> (int * int) list -> t

val copy : t -> t

val equal : t -> t -> bool
(** Equality as labelled graphs (same vertex count and edge set). *)

val is_connected : t -> bool
(** True for the one-vertex graph; false for the empty graph on [n >= 2]. *)

val induced : t -> int list -> t
(** [induced g vs] is the subgraph induced on [vs], relabelled to
    [0 .. length vs - 1] in the order given.
    @raise Invalid_argument on duplicate or out-of-range vertices. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n] of the first. *)

val relabel : t -> int array -> t
(** [relabel g sigma] is the graph with edge [{sigma u, sigma v}] for every
    edge [{u, v}] of [g]; [sigma] must be a permutation of [0 .. n-1]. *)

val adjacency_row_bits : t -> int -> string
(** Row [v] of the adjacency matrix with the self-loop convention, as a
    string of ['0']/['1'] characters of length [n]; used for fingerprints. *)

val encode : t -> string
(** Canonical labelled encoding: the upper triangle of the adjacency matrix
    (no self-loops), row by row, as '0'/'1' characters. Equal iff {!equal}. *)

val pp : Format.formatter -> t -> unit

(** {1 Generators} *)

val path : int -> t
val cycle : int -> t
val complete : int -> t
val star : int -> t
val complete_bipartite : int -> int -> t
val hypercube : int -> t
(** [hypercube d] has [2^d] vertices. *)

val petersen : unit -> t
val grid : int -> int -> t

val random_gnp : Ids_bignum.Rng.t -> int -> float -> t
(** Erdős–Rényi [G(n, p)]. *)

val random_connected_gnp : Ids_bignum.Rng.t -> int -> float -> t
(** Resamples [G(n, p)] until connected (adds a random spanning path if the
    density is too low to ever connect). *)

val random_tree : Ids_bignum.Rng.t -> int -> t
(** A uniformly random labelled tree on [n >= 1] vertices, decoded from a
    uniform Prüfer sequence (Cayley: there are [n^(n-2)] of them). *)

val of_prufer : int array -> t
(** [of_prufer seq] decodes a Prüfer sequence of length [n - 2] into the
    corresponding tree on [n = length seq + 2] vertices.
    @raise Invalid_argument on out-of-range entries. *)

val random_regular : Ids_bignum.Rng.t -> int -> int -> t
(** [random_regular rng n d] is a (simple) [d]-regular graph on [n]
    vertices, by the pairing model with restarts.
    @raise Invalid_argument if [n * d] is odd or [d >= n]. *)
