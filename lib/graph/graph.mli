(** Simple undirected graphs on vertex set [{0, ..., n-1}].

    This is the network-graph representation used throughout the repository:
    the paper's instances (Definition 3–5) are graphs, the distributed model
    identifies network nodes with vertices, and the hash protocols treat the
    closed neighborhood [N(v)] (which includes [v] itself, per Section 2.1 of
    the paper) as row [v] of the adjacency matrix.

    {2 Representation}

    Adjacency rows are {!Bitset.t} values in one of two shapes, chosen per
    graph at construction: {b dense} packed bit words (O(n²) bits per graph
    — the right shape for the paper's small dense instances) or {b sparse}
    sorted neighbor arrays (O(n + m) memory — the shape that holds a
    bounded-degree graph on 10⁶ vertices). Every accessor and generator is
    representation-independent: the same edges, the same rng draws, the
    same iteration order, so protocol estimates are bit-identical across
    backends. Generators of sparse families pick the representation by size
    ({!auto_repr}) unless given an explicit [~repr] hint. *)

type repr = Dense | Sparse

type t

val make : ?repr:repr -> int -> t
(** [make n] is the edgeless graph on [n] vertices; [repr] defaults to
    [Dense] (the historical representation). *)

val auto_repr : int -> repr
(** The default representation for a sparse-family generator at size [n]:
    [Dense] up to a fixed threshold (1024), [Sparse] above it. *)

val repr : t -> repr

val n : t -> int
(** Number of vertices. *)

val uid : t -> int
(** Process-unique id, assigned at construction ({!copy} and every generator
    included). Together with {!version} it keys caches of values derived
    from a graph — O(1) instead of hashing the adjacency matrix. The id
    reflects allocation order, so it must never influence protocol results;
    caches may only store values that are pure functions of the graph. *)

val version : t -> int
(** Mutation counter: bumped by {!add_edge} / {!remove_edge}. A cached value
    keyed ([uid], [version]) can never be served stale. Bumps are not
    atomic — graphs are built before worker domains fan out and are never
    mutated concurrently. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the undirected edge [{u, v}].
    @raise Invalid_argument on a self-loop or out-of-range endpoint. *)

val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

val degree : t -> int -> int
(** Number of neighbors, excluding [v] itself. *)

val max_degree : t -> int
(** Maximum degree over all vertices; the per-node residency bound of the
    streaming execution paths. O(n). *)

val neighbors : t -> int -> Bitset.t
(** Open neighborhood of [v] (not including [v]). The returned set is the
    internal one; callers must not mutate it. Sparse-backed graphs return a
    sparse set (O(degree) to copy or iterate). *)

val closed_neighborhood : t -> int -> Bitset.t
(** [N(v)] in the paper's convention: neighbors of [v] plus [v] itself
    ("with self-loops for all vertices", Section 3.1.1). Fresh copy, same
    representation as the row — O(degree) for sparse-backed graphs. *)

val edges : t -> (int * int) list
(** Edge list with [u < v], sorted lexicographically. O(m) list; prefer
    {!iter_edges} on huge graphs. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] for every edge [u < v] in lexicographic
    order, without materializing the list. *)

val edge_count : t -> int

val of_edges : ?repr:repr -> int -> (int * int) list -> t

val copy : t -> t
(** Preserves the representation; fresh uid. *)

val with_repr : repr -> t -> t
(** [with_repr r g] is a copy of [g] in representation [r] (fresh uid).
    [Graph.equal g (with_repr r g)] always holds. *)

val equal : t -> t -> bool
(** Equality as labelled graphs (same vertex count and edge set), across
    representations; different vertex counts answer [false]. *)

val is_connected : t -> bool
(** True for the one-vertex graph; false for the empty graph on [n >= 2].
    Iterative — safe on million-vertex paths. *)

val induced : t -> int list -> t
(** [induced g vs] is the subgraph induced on [vs], relabelled to
    [0 .. length vs - 1] in the order given.
    @raise Invalid_argument on duplicate or out-of-range vertices. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n] of the first. Sparse if
    either operand is sparse. *)

val relabel : t -> int array -> t
(** [relabel g sigma] is the graph with edge [{sigma u, sigma v}] for every
    edge [{u, v}] of [g]; [sigma] must be a permutation of [0 .. n-1]. *)

val adjacency_row_bits : t -> int -> string
(** Row [v] of the adjacency matrix with the self-loop convention, as a
    string of ['0']/['1'] characters of length [n]; used for fingerprints. *)

val encode : t -> string
(** Canonical labelled encoding: the upper triangle of the adjacency matrix
    (no self-loops), row by row, as '0'/'1' characters. Equal iff {!equal}.
    O(n²) — small graphs only; use {!Graph_io} codecs at scale. *)

val pp : Format.formatter -> t -> unit

(** {1 Generators}

    All take an optional [?repr] hint. Sparse families (paths, cycles,
    stars, grids, hypercubes, trees, regular graphs) default to
    {!auto_repr}; dense families (complete, complete bipartite, [G(n, p)])
    default to [Dense]. *)

val path : ?repr:repr -> int -> t
val cycle : ?repr:repr -> int -> t
val complete : ?repr:repr -> int -> t
val star : ?repr:repr -> int -> t
val complete_bipartite : ?repr:repr -> int -> int -> t
val hypercube : ?repr:repr -> int -> t
(** [hypercube d] has [2^d] vertices. *)

val petersen : unit -> t
val grid : ?repr:repr -> int -> int -> t

val random_gnp : ?repr:repr -> Ids_bignum.Rng.t -> int -> float -> t
(** Erdős–Rényi [G(n, p)]. *)

val random_connected_gnp : ?repr:repr -> Ids_bignum.Rng.t -> int -> float -> t
(** Resamples [G(n, p)] until connected (adds a random spanning path if the
    density is too low to ever connect). *)

val random_tree : ?repr:repr -> Ids_bignum.Rng.t -> int -> t
(** A uniformly random labelled tree on [n >= 1] vertices, decoded from a
    uniform Prüfer sequence (Cayley: there are [n^(n-2)] of them). *)

val of_prufer : ?repr:repr -> int array -> t
(** [of_prufer seq] decodes a Prüfer sequence of length [n - 2] into the
    corresponding tree on [n = length seq + 2] vertices.
    @raise Invalid_argument on out-of-range entries. *)

val random_regular : ?repr:repr -> Ids_bignum.Rng.t -> int -> int -> t
(** [random_regular rng n d] is a (simple) [d]-regular graph on [n]
    vertices, by the pairing model with restarts.
    @raise Invalid_argument if [n * d] is odd or [d >= n]. *)
