(** Graph interchange: the standard graph6 / sparse6 formats and Graphviz
    export.

    graph6 and sparse6 are the compact ASCII encodings used by nauty, geng
    and the House of Graphs, so instances can be imported from, and
    exported to, the standard corpora (e.g. the known lists of asymmetric
    graphs used to sanity-check the Section 3.4 family). All three size
    headers are implemented — 1 byte (n <= 62), 4 bytes (n <= 258047) and
    the 8-byte long form (n <= 2^36 - 1) — and non-minimal ("overlong")
    headers are rejected on decode. graph6 carries the dense upper
    triangle (~n²/12 bytes); sparse6 is linear in the edge count, the
    right container for the million-node bounded-degree families. *)

val size_header : int -> string
(** The N(n) size field shared by graph6 and sparse6: 1 byte for
    [n <= 62], 4 bytes ([~] prefix) for [n <= 258047], 8 bytes ([~~]
    prefix, 36-bit value) up to [2^36 - 1].
    @raise Invalid_argument outside that range. *)

val decode_size_header : string -> int * int
(** [(n, bytes consumed)] for a string starting with a size field.
    @raise Invalid_argument on a truncated, invalid, or non-minimal
    ("overlong") header. *)

val to_graph6 : Graph.t -> string
(** Encode; no header ([>>graph6<<] prefixes are not emitted). *)

val of_graph6 : string -> Graph.t
(** Decode. Accepts an optional [>>graph6<<] header and surrounding
    whitespace; the result's backend follows {!Graph.auto_repr}.
    @raise Invalid_argument on malformed input: truncated or overlong
    size header, invalid bytes, wrong payload length. *)

val to_sparse6 : Graph.t -> string
(** Encode in sparse6 (leading [':'], no [>>sparse6<<] header), following
    nauty's canonical writer: edges in column-major order, 1-bit padding
    with the n = 2^k shield bit. O(m log n) output bytes. *)

val of_sparse6 : string -> Graph.t
(** Decode. Accepts an optional [>>sparse6<<] header and surrounding
    whitespace; the result's backend follows {!Graph.auto_repr}. Duplicate
    edges collapse; self-loops are rejected (the {!Graph} model has none).
    @raise Invalid_argument on malformed input: missing [':'], truncated
    or overlong size header, invalid payload bytes, self-loops. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz [graph { ... }] source for visual inspection. *)
