(** The graph families used by the paper's constructions.

    Section 3.3 (Dumbbell Symmetry) and Section 3.4 (the lower bound) both
    build "dumbbell" graphs: two n-vertex graphs joined by a short bridge,
    arranged so that the whole graph is symmetric iff the two sides are equal.
    The lower bound additionally needs a large family [F] of asymmetric,
    pairwise non-isomorphic graphs. *)

val random_asymmetric : Ids_bignum.Rng.t -> int -> Graph.t
(** A connected asymmetric graph on [n >= 6] vertices, by rejection sampling
    of [G(n, 1/2)] (no asymmetric graph exists for [2 <= n <= 5]).
    @raise Invalid_argument if [2 <= n <= 5]. *)

val random_symmetric : Ids_bignum.Rng.t -> int -> Graph.t
(** A connected graph on [n] vertices with a non-trivial automorphism:
    rejection sampling at small [n], a planted mirror construction at
    larger [n]. *)

val expander : ?repr:Graph.repr -> Ids_bignum.Rng.t -> n:int -> degree:int -> Graph.t
(** A connected [degree]-regular random circulant on [n] vertices: the
    n-cycle plus [(degree - 2) / 2] distinct random chord offsets. Random
    circulants are good spectral expanders in practice, and — unlike the
    pairing-model {!Graph.random_regular} — the generator is
    O(n · degree) time with O(degree) rng draws, so it scales to the
    million-node benchmarks. Backend defaults to {!Graph.auto_repr}.
    @raise Invalid_argument unless [n >= 3], [degree] is even, [>= 2] and
    small enough that the chord offsets exist. *)

val asymmetric_family : Ids_bignum.Rng.t -> n:int -> size:int -> Graph.t list
(** [asymmetric_family rng ~n ~size] is a list of at most [size] connected,
    asymmetric, pairwise non-isomorphic graphs on [n] vertices — the family
    [F] of Section 3.4. Fewer than [size] graphs are returned only if
    sampling stalls (e.g. [n = 6] has just 8 such graphs up to
    isomorphism). *)

(** {1 Dumbbells (Section 3.4)}

    [G(F_A, F_B)] has vertex set [V_A = {0..n-1}] carrying a copy of [F_A],
    [V_B = {n..2n-1}] carrying a copy of [F_B], and bridge nodes
    [x_A = 2n], [x_B = 2n+1] with edges [{v_A, x_A}], [{x_A, x_B}],
    [{x_B, v_B}] where [v_A = 0] and [v_B = n]. *)

val dumbbell : Graph.t -> Graph.t -> Graph.t
(** @raise Invalid_argument if the sides have different vertex counts. *)

val dumbbell_x_a : Graph.t -> int
(** Index of bridge node [x_A] in [dumbbell f_a f_b] given a side graph. *)

val dumbbell_x_b : Graph.t -> int

val dumbbell_mirror : int -> Perm.t
(** The mirror involution of a dumbbell with side size [n]: swaps [u_i^A]
    with [u_i^B] and [x_A] with [x_B]. It is an automorphism of
    [dumbbell f f] for every [f]. *)

(** {1 Dumbbell Symmetry (Definition 5)} *)

val dsym_graph : Graph.t -> int -> Graph.t
(** [dsym_graph f r] is the DSym member built from side graph [f] on
    [n] vertices and a connecting path through [2r + 1] fresh vertices:
    vertices [0..n-1] carry [f], vertices [n..2n-1] carry the shifted copy,
    and the path [0 - 2n - 2n+1 - ... - 2n+2r - n] joins them. *)

val dsym_sigma : n:int -> r:int -> Perm.t
(** The fixed automorphism [sigma] of Definition 5: swaps the two sides via
    [x <-> x + n] and reverses the path. *)

val is_dsym_member : n:int -> r:int -> Graph.t -> bool
(** Ground-truth membership test for the language DSym: the three structural
    conditions of Definition 5 checked globally. *)

val dsym_perturbed : Ids_bignum.Rng.t -> Graph.t -> int -> Graph.t
(** [dsym_perturbed rng f r] is a NO-instance for DSym obtained from
    [dsym_graph f r] by flipping one random edge inside the second side, so
    the two sides stop being mirror images while the path and "no stray
    edges" conditions keep holding whenever possible. *)
