type repr = Dense | Sparse

type t = { n : int; repr : repr; adj : Bitset.t array; uid : int; mutable version : int }

(* Process-unique ids let derived-value caches key a graph by (uid, version)
   in O(1) instead of hashing the adjacency matrix. Mutation bumps the
   version, so a cache entry can never serve a stale derived value. *)
let uid_counter = Atomic.make 0

(* Above this size a dense adjacency matrix costs more than ~64 bits of row
   per vertex even when empty; generators of sparse families switch to the
   sorted-array rows by default. The cutover is a pure representation
   choice: it never touches a generator's rng draws, so graph contents (and
   every protocol estimate derived from them) are unchanged. *)
let dense_threshold = 1024

let auto_repr n = if n <= dense_threshold then Dense else Sparse

let row_for repr n = match repr with Dense -> Bitset.create n | Sparse -> Bitset.create_sparse n

let make ?(repr = Dense) n =
  if n < 0 then invalid_arg "Graph.make: negative size";
  { n;
    repr;
    adj = Array.init n (fun _ -> row_for repr n);
    uid = Atomic.fetch_and_add uid_counter 1;
    version = 0
  }

let n g = g.n

let repr g = g.repr

let uid g = g.uid

let version g = g.version

let check_vertex g v = if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  g.version <- g.version + 1;
  Bitset.add g.adj.(u) v;
  Bitset.add g.adj.(v) u

let remove_edge g u v =
  check_vertex g u;
  check_vertex g v;
  g.version <- g.version + 1;
  Bitset.remove g.adj.(u) v;
  Bitset.remove g.adj.(v) u

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  u <> v && Bitset.mem g.adj.(u) v

let degree g v =
  check_vertex g v;
  Bitset.cardinal g.adj.(v)

let max_degree g = Array.fold_left (fun acc s -> max acc (Bitset.cardinal s)) 0 g.adj

let neighbors g v =
  check_vertex g v;
  g.adj.(v)

let closed_neighborhood g v =
  check_vertex g v;
  let s = Bitset.copy g.adj.(v) in
  Bitset.add s v;
  s

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Bitset.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let pairs = Bitset.fold (fun v acc -> if u < v then (u, v) :: acc else acc) g.adj.(u) [] in
    acc := pairs @ !acc
  done;
  !acc

let edge_count g = Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 g.adj / 2

let of_edges ?repr n es =
  let g = make ?repr n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  { g with
    adj = Array.map Bitset.copy g.adj;
    uid = Atomic.fetch_and_add uid_counter 1;
    version = 0
  }

let with_repr repr g =
  if repr = g.repr then copy g
  else begin
    let h = make ~repr g.n in
    for u = 0 to g.n - 1 do
      Bitset.iter (fun v -> Bitset.add h.adj.(u) v) g.adj.(u)
    done;
    h
  end

(* Equality as labelled graphs: cross-representation (a sparse copy equals
   its dense original) and total (different vertex counts answer false). *)
let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.adj b.adj

let is_connected g =
  if g.n = 0 then false
  else begin
    (* Iterative DFS: the explicit stack keeps million-vertex paths from
       overflowing the call stack. *)
    let seen = Array.make g.n false in
    let stack = Stack.create () in
    seen.(0) <- true;
    Stack.push 0 stack;
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      Bitset.iter
        (fun u ->
          if not seen.(u) then begin
            seen.(u) <- true;
            Stack.push u stack
          end)
        g.adj.(v)
    done;
    Array.for_all Fun.id seen
  end

let induced g vs =
  let k = List.length vs in
  let index = Array.make g.n (-1) in
  List.iteri
    (fun i v ->
      check_vertex g v;
      if index.(v) <> -1 then invalid_arg "Graph.induced: duplicate vertex";
      index.(v) <- i)
    vs;
  let h = make ~repr:g.repr k in
  List.iter
    (fun v -> Bitset.iter (fun u -> if index.(u) >= 0 && u > v then add_edge h index.(v) index.(u)) g.adj.(v))
    vs;
  h

let disjoint_union a b =
  let repr = if a.repr = Sparse || b.repr = Sparse then Sparse else Dense in
  let g = make ~repr (a.n + b.n) in
  iter_edges a (fun u v -> add_edge g u v);
  iter_edges b (fun u v -> add_edge g (u + a.n) (v + a.n));
  g

let relabel g sigma =
  if Array.length sigma <> g.n then invalid_arg "Graph.relabel: size mismatch";
  let h = make ~repr:g.repr g.n in
  iter_edges g (fun u v -> add_edge h sigma.(u) sigma.(v));
  h

let adjacency_row_bits g v =
  check_vertex g v;
  String.init g.n (fun u -> if u = v || has_edge g u v then '1' else '0')

let encode g =
  let buf = Buffer.create (g.n * g.n / 2) in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      Buffer.add_char buf (if has_edge g u v then '1' else '0')
    done
  done;
  Buffer.contents buf

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d:" g.n (edge_count g);
  List.iter (fun (u, v) -> Format.fprintf fmt " %d-%d" u v) (edges g);
  Format.fprintf fmt ")"

(* --- generators -----------------------------------------------------------

   Sparse families (paths, cycles, stars, grids, trees, hypercubes) pick
   their representation by size unless the caller says otherwise; the dense
   families (complete graphs, complete bipartite, G(n, p) at constant p)
   keep bitset rows. The hint only selects the container: the edge set and
   every rng draw are representation-independent. *)

let path ?repr n =
  let repr = match repr with Some r -> r | None -> auto_repr n in
  let g = make ~repr n in
  for i = 0 to n - 2 do
    add_edge g i (i + 1)
  done;
  g

let cycle ?repr n =
  if n < 3 then invalid_arg "Graph.cycle: need at least 3 vertices";
  let g = path ?repr n in
  add_edge g (n - 1) 0;
  g

let complete ?(repr = Dense) n =
  let g = make ~repr n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g

let star ?repr n =
  let repr = match repr with Some r -> r | None -> auto_repr n in
  let g = make ~repr n in
  for v = 1 to n - 1 do
    add_edge g 0 v
  done;
  g

let complete_bipartite ?(repr = Dense) a b =
  let g = make ~repr (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      add_edge g u v
    done
  done;
  g

let hypercube ?repr d =
  if d < 0 then invalid_arg "Graph.hypercube: negative dimension";
  let n = 1 lsl d in
  let repr = match repr with Some r -> r | None -> auto_repr n in
  let g = make ~repr n in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then add_edge g u v
    done
  done;
  g

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let g = make 10 in
  for i = 0 to 4 do
    add_edge g i ((i + 1) mod 5);
    add_edge g (5 + i) (5 + ((i + 2) mod 5));
    add_edge g i (i + 5)
  done;
  g

let grid ?repr rows cols =
  let repr = match repr with Some r -> r | None -> auto_repr (rows * cols) in
  let g = make ~repr (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then add_edge g v (v + 1);
      if r + 1 < rows then add_edge g v (v + cols)
    done
  done;
  g

let random_gnp ?(repr = Dense) rng n p =
  let g = make ~repr n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Ids_bignum.Rng.float rng < p then add_edge g u v
    done
  done;
  g

let of_prufer ?repr seq =
  let n = Array.length seq + 2 in
  let repr = match repr with Some r -> r | None -> auto_repr n in
  Array.iter (fun x -> if x < 0 || x >= n then invalid_arg "Graph.of_prufer: entry out of range") seq;
  let g = make ~repr n in
  let degree = Array.make n 1 in
  Array.iter (fun x -> degree.(x) <- degree.(x) + 1) seq;
  (* Repeatedly join the smallest remaining leaf to the next sequence entry. *)
  let module IntSet = Set.Make (Int) in
  let leaves = ref IntSet.empty in
  for v = 0 to n - 1 do
    if degree.(v) = 1 then leaves := IntSet.add v !leaves
  done;
  Array.iter
    (fun x ->
      let leaf = IntSet.min_elt !leaves in
      leaves := IntSet.remove leaf !leaves;
      add_edge g leaf x;
      degree.(x) <- degree.(x) - 1;
      if degree.(x) = 1 then leaves := IntSet.add x !leaves)
    seq;
  (match IntSet.elements !leaves with
  | [ u; v ] -> add_edge g u v
  | _ -> assert false);
  g

let random_tree ?repr rng n =
  if n < 1 then invalid_arg "Graph.random_tree: need n >= 1";
  if n = 1 then make ?repr 1
  else if n = 2 then of_edges ?repr 2 [ (0, 1) ]
  else of_prufer ?repr (Array.init (n - 2) (fun _ -> Ids_bignum.Rng.int rng n))

let random_regular ?repr rng n d =
  if d < 0 || d >= n then invalid_arg "Graph.random_regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Graph.random_regular: n * d must be even";
  let repr = match repr with Some r -> r | None -> auto_repr n in
  (* Pairing model: shuffle n*d half-edge stubs, pair consecutively, restart
     on self-loops or parallel edges. *)
  let stubs = Array.concat (List.init n (fun v -> Array.make d v)) in
  let rec attempt tries =
    if tries = 0 then failwith "Graph.random_regular: too many restarts (d too close to n?)"
    else begin
      Ids_bignum.Rng.shuffle rng stubs;
      let g = make ~repr n in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < Array.length stubs do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        if u = v || has_edge g u v then ok := false else add_edge g u v;
        i := !i + 2
      done;
      if !ok then g else attempt (tries - 1)
    end
  in
  attempt 5000

let random_connected_gnp ?repr rng n p =
  let rec attempt tries =
    let g = random_gnp ?repr rng n p in
    if is_connected g then g
    else if tries = 0 then begin
      (* Too sparse to connect by luck: thread a random Hamiltonian path. *)
      let order = Array.init n Fun.id in
      Ids_bignum.Rng.shuffle rng order;
      for i = 0 to n - 2 do
        if not (has_edge g order.(i) order.(i + 1)) then add_edge g order.(i) order.(i + 1)
      done;
      g
    end
    else attempt (tries - 1)
  in
  attempt 50
