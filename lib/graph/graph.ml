type t = { n : int; adj : Bitset.t array; uid : int; mutable version : int }

(* Process-unique ids let derived-value caches key a graph by (uid, version)
   in O(1) instead of hashing the adjacency matrix. Mutation bumps the
   version, so a cache entry can never serve a stale derived value. *)
let uid_counter = Atomic.make 0

let make n =
  if n < 0 then invalid_arg "Graph.make: negative size";
  { n;
    adj = Array.init n (fun _ -> Bitset.create n);
    uid = Atomic.fetch_and_add uid_counter 1;
    version = 0
  }

let n g = g.n

let uid g = g.uid

let version g = g.version

let check_vertex g v = if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  g.version <- g.version + 1;
  Bitset.add g.adj.(u) v;
  Bitset.add g.adj.(v) u

let remove_edge g u v =
  check_vertex g u;
  check_vertex g v;
  g.version <- g.version + 1;
  Bitset.remove g.adj.(u) v;
  Bitset.remove g.adj.(v) u

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  u <> v && Bitset.mem g.adj.(u) v

let degree g v =
  check_vertex g v;
  Bitset.cardinal g.adj.(v)

let neighbors g v =
  check_vertex g v;
  g.adj.(v)

let closed_neighborhood g v =
  check_vertex g v;
  let s = Bitset.copy g.adj.(v) in
  Bitset.add s v;
  s

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let pairs = Bitset.fold (fun v acc -> if u < v then (u, v) :: acc else acc) g.adj.(u) [] in
    acc := pairs @ !acc
  done;
  !acc

let edge_count g = Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 g.adj / 2

let of_edges n es =
  let g = make n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g =
  { n = g.n;
    adj = Array.map Bitset.copy g.adj;
    uid = Atomic.fetch_and_add uid_counter 1;
    version = 0
  }

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.adj b.adj

let is_connected g =
  if g.n = 0 then false
  else begin
    let seen = Array.make g.n false in
    let rec dfs v =
      seen.(v) <- true;
      Bitset.iter (fun u -> if not seen.(u) then dfs u) g.adj.(v)
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let induced g vs =
  let k = List.length vs in
  let index = Array.make g.n (-1) in
  List.iteri
    (fun i v ->
      check_vertex g v;
      if index.(v) <> -1 then invalid_arg "Graph.induced: duplicate vertex";
      index.(v) <- i)
    vs;
  let h = make k in
  List.iter
    (fun v -> Bitset.iter (fun u -> if index.(u) >= 0 && u > v then add_edge h index.(v) index.(u)) g.adj.(v))
    vs;
  h

let disjoint_union a b =
  let g = make (a.n + b.n) in
  List.iter (fun (u, v) -> add_edge g u v) (edges a);
  List.iter (fun (u, v) -> add_edge g (u + a.n) (v + a.n)) (edges b);
  g

let relabel g sigma =
  if Array.length sigma <> g.n then invalid_arg "Graph.relabel: size mismatch";
  let h = make g.n in
  List.iter (fun (u, v) -> add_edge h sigma.(u) sigma.(v)) (edges g);
  h

let adjacency_row_bits g v =
  check_vertex g v;
  String.init g.n (fun u -> if u = v || has_edge g u v then '1' else '0')

let encode g =
  let buf = Buffer.create (g.n * g.n / 2) in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      Buffer.add_char buf (if has_edge g u v then '1' else '0')
    done
  done;
  Buffer.contents buf

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d:" g.n (edge_count g);
  List.iter (fun (u, v) -> Format.fprintf fmt " %d-%d" u v) (edges g);
  Format.fprintf fmt ")"

(* --- generators ----------------------------------------------------------- *)

let path n =
  let g = make n in
  for i = 0 to n - 2 do
    add_edge g i (i + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need at least 3 vertices";
  let g = path n in
  add_edge g (n - 1) 0;
  g

let complete n =
  let g = make n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g

let star n =
  let g = make n in
  for v = 1 to n - 1 do
    add_edge g 0 v
  done;
  g

let complete_bipartite a b =
  let g = make (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      add_edge g u v
    done
  done;
  g

let hypercube d =
  if d < 0 then invalid_arg "Graph.hypercube: negative dimension";
  let n = 1 lsl d in
  let g = make n in
  for u = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then add_edge g u v
    done
  done;
  g

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let g = make 10 in
  for i = 0 to 4 do
    add_edge g i ((i + 1) mod 5);
    add_edge g (5 + i) (5 + ((i + 2) mod 5));
    add_edge g i (i + 5)
  done;
  g

let grid rows cols =
  let g = make (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then add_edge g v (v + 1);
      if r + 1 < rows then add_edge g v (v + cols)
    done
  done;
  g

let random_gnp rng n p =
  let g = make n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Ids_bignum.Rng.float rng < p then add_edge g u v
    done
  done;
  g

let of_prufer seq =
  let n = Array.length seq + 2 in
  Array.iter (fun x -> if x < 0 || x >= n then invalid_arg "Graph.of_prufer: entry out of range") seq;
  let g = make n in
  let degree = Array.make n 1 in
  Array.iter (fun x -> degree.(x) <- degree.(x) + 1) seq;
  (* Repeatedly join the smallest remaining leaf to the next sequence entry. *)
  let module IntSet = Set.Make (Int) in
  let leaves = ref IntSet.empty in
  for v = 0 to n - 1 do
    if degree.(v) = 1 then leaves := IntSet.add v !leaves
  done;
  Array.iter
    (fun x ->
      let leaf = IntSet.min_elt !leaves in
      leaves := IntSet.remove leaf !leaves;
      add_edge g leaf x;
      degree.(x) <- degree.(x) - 1;
      if degree.(x) = 1 then leaves := IntSet.add x !leaves)
    seq;
  (match IntSet.elements !leaves with
  | [ u; v ] -> add_edge g u v
  | _ -> assert false);
  g

let random_tree rng n =
  if n < 1 then invalid_arg "Graph.random_tree: need n >= 1";
  if n = 1 then make 1
  else if n = 2 then of_edges 2 [ (0, 1) ]
  else of_prufer (Array.init (n - 2) (fun _ -> Ids_bignum.Rng.int rng n))

let random_regular rng n d =
  if d < 0 || d >= n then invalid_arg "Graph.random_regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Graph.random_regular: n * d must be even";
  (* Pairing model: shuffle n*d half-edge stubs, pair consecutively, restart
     on self-loops or parallel edges. *)
  let stubs = Array.concat (List.init n (fun v -> Array.make d v)) in
  let rec attempt tries =
    if tries = 0 then failwith "Graph.random_regular: too many restarts (d too close to n?)"
    else begin
      Ids_bignum.Rng.shuffle rng stubs;
      let g = make n in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < Array.length stubs do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        if u = v || has_edge g u v then ok := false else add_edge g u v;
        i := !i + 2
      done;
      if !ok then g else attempt (tries - 1)
    end
  in
  attempt 5000

let random_connected_gnp rng n p =
  let rec attempt tries =
    let g = random_gnp rng n p in
    if is_connected g then g
    else if tries = 0 then begin
      (* Too sparse to connect by luck: thread a random Hamiltonian path. *)
      let order = Array.init n Fun.id in
      Ids_bignum.Rng.shuffle rng order;
      for i = 0 to n - 2 do
        if not (has_edge g order.(i) order.(i + 1)) then add_edge g order.(i) order.(i + 1)
      done;
      g
    end
    else attempt (tries - 1)
  in
  attempt 50
