/* Monotonic clock for span timing: CLOCK_MONOTONIC in nanoseconds, as a
   native OCaml int. 63 bits of nanoseconds since boot overflow after ~146
   years, so Val_long is safe. No allocation, no callbacks. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ids_obs_clock_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
