let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The category is the dotted prefix of the span name ("net.challenge" ->
   "net"), which lets Perfetto's category filter separate network rounds
   from protocol and scheduler spans. *)
let category name = match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name

let to_channel oc =
  let spans = Obs.spans () in
  let t0 = List.fold_left (fun acc s -> Int.min acc s.Obs.start_ns) max_int spans in
  let us ns = float_of_int ns /. 1000. in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Obs.span_record) ->
      if i > 0 then output_char oc ',';
      let args =
        match (s.Obs.sround, s.Obs.snode) with
        | -1, -1 -> ""
        | r, -1 -> Printf.sprintf ",\"args\":{\"round\":%d}" r
        | -1, v -> Printf.sprintf ",\"args\":{\"node\":%d}" v
        | r, v -> Printf.sprintf ",\"args\":{\"round\":%d,\"node\":%d}" r v
      in
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
           (escape s.Obs.sname) (escape (category s.Obs.sname))
           (us (s.Obs.start_ns - t0))
           (us s.Obs.dur_ns) s.Obs.sdomain args))
    spans;
  output_string oc "],\"displayTimeUnit\":\"ms\"}\n"

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> to_channel oc)

(* --- multi-process events ---------------------------------------------------- *)

type ev = {
  ename : string;
  epid : int;
  etid : int;
  ets_ns : int;  (* absolute, on the shared machine clock *)
  edur_ns : int;
  eargs : (string * string) list;
}

let ev_of_span ~pid ~base_ns ?(args = []) (s : Obs.span_record) =
  let args =
    args
    @ (if s.Obs.sround >= 0 then [ ("round", string_of_int s.Obs.sround) ] else [])
    @ if s.Obs.snode >= 0 then [ ("node", string_of_int s.Obs.snode) ] else []
  in
  { ename = s.Obs.sname;
    epid = pid;
    etid = s.Obs.sdomain;
    ets_ns = base_ns + s.Obs.start_ns;
    edur_ns = s.Obs.dur_ns;
    eargs = args
  }

let export_events oc evs =
  let t0 = List.fold_left (fun acc e -> Int.min acc e.ets_ns) max_int evs in
  let us ns = float_of_int ns /. 1000. in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then output_char oc ',';
      let args =
        if e.eargs = [] then ""
        else
          ",\"args\":{"
          ^ String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) e.eargs)
          ^ "}"
      in
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d%s}"
           (escape e.ename) (escape (category e.ename))
           (us (e.ets_ns - t0))
           (us e.edur_ns) e.epid e.etid args))
    evs;
  output_string oc "],\"displayTimeUnit\":\"ms\"}\n"

let export_events_file path evs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> export_events oc evs)

let events_of_file path =
  let read_all ic =
    let n = in_channel_length ic in
    really_input_string ic n
  in
  match open_in path with
  | exception Sys_error e -> Error e
  | ic -> (
    let s = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_all ic) in
    match Json.parse s with
    | Error e -> Error e
    | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "no traceEvents array"
      | Some rows -> (
        let ns_of_us f = int_of_float (f *. 1000. +. 0.5) in
        let ev_of row =
          let str k = Option.bind (Json.member k row) Json.to_string in
          let num k = Option.bind (Json.member k row) Json.to_float in
          match (str "name", num "ts", num "dur", Json.member "pid" row, Json.member "tid" row) with
          | Some ename, Some ts, Some dur, Some pid, Some tid ->
            let args =
              match Json.member "args" row with
              | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with
                    | Json.Str s -> Some (k, s)
                    | Json.Num f ->
                      Some
                        ( k,
                          if Float.is_integer f then string_of_int (int_of_float f)
                          else string_of_float f )
                    | _ -> None)
                  kvs
              | _ -> []
            in
            Some
              { ename;
                epid = Option.value (Json.to_int pid) ~default:0;
                etid = Option.value (Json.to_int tid) ~default:0;
                ets_ns = ns_of_us ts;
                edur_ns = ns_of_us dur;
                eargs = args
              }
          | _ -> None
        in
        match List.map ev_of rows with
        | evs when List.for_all Option.is_some evs -> Ok (List.filter_map Fun.id evs)
        | _ -> Error "malformed trace event")))

let write_from_env ?(quiet = false) () =
  if not (Obs.enabled ()) then None
  else if Obs.spans () = [] then None
  else
    match Option.value (Sys.getenv_opt "IDS_TRACE_OUT") ~default:"ids_trace.json" with
    | "" -> None
    | path -> (
      match write_file path with
      | () ->
        if not quiet then
          Printf.eprintf "trace: %d spans written to %s (load in Perfetto / about:tracing)\n%!"
            (List.length (Obs.spans ()))
            path;
        Some path
      | exception Sys_error msg ->
        Printf.eprintf "warning: trace export failed (%s)\n%!" msg;
        None)
