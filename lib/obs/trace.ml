let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The category is the dotted prefix of the span name ("net.challenge" ->
   "net"), which lets Perfetto's category filter separate network rounds
   from protocol and scheduler spans. *)
let category name = match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name

let to_channel oc =
  let spans = Obs.spans () in
  let t0 = List.fold_left (fun acc s -> Int.min acc s.Obs.start_ns) max_int spans in
  let us ns = float_of_int ns /. 1000. in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i (s : Obs.span_record) ->
      if i > 0 then output_char oc ',';
      let args =
        match (s.Obs.sround, s.Obs.snode) with
        | -1, -1 -> ""
        | r, -1 -> Printf.sprintf ",\"args\":{\"round\":%d}" r
        | -1, v -> Printf.sprintf ",\"args\":{\"node\":%d}" v
        | r, v -> Printf.sprintf ",\"args\":{\"round\":%d,\"node\":%d}" r v
      in
      output_string oc
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d%s}"
           (escape s.Obs.sname) (escape (category s.Obs.sname))
           (us (s.Obs.start_ns - t0))
           (us s.Obs.dur_ns) s.Obs.sdomain args))
    spans;
  output_string oc "],\"displayTimeUnit\":\"ms\"}\n"

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> to_channel oc)

let write_from_env ?(quiet = false) () =
  if not (Obs.enabled ()) then None
  else if Obs.spans () = [] then None
  else
    match Option.value (Sys.getenv_opt "IDS_TRACE_OUT") ~default:"ids_trace.json" with
    | "" -> None
    | path -> (
      match write_file path with
      | () ->
        if not quiet then
          Printf.eprintf "trace: %d spans written to %s (load in Perfetto / about:tracing)\n%!"
            (List.length (Obs.spans ()))
            path;
        Some path
      | exception Sys_error msg ->
        Printf.eprintf "warning: trace export failed (%s)\n%!" msg;
        None)
