(** Minimal JSON: enough to read run-log lines and trace files back.

    The writer side of this codebase emits JSON by hand ({!Runlog},
    {!Trace}); this is the matching reader, kept dependency-free. Numbers
    are parsed as floats (ints in the logs are well below 2^53, so the
    round-trip is exact); objects preserve insertion order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error. Errors carry a
    character offset and a short description. *)

val member : string -> t -> t option
(** First field of that name in an object; [None] on non-objects too. *)

val to_int : t -> int option
(** [Num] with an integral value. *)

val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
