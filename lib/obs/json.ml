type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s !pos 4) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Only the escapes our writers emit (< 0x80) need to round-trip;
             encode the rest as UTF-8 for completeness. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 53. -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
