(** Tracing and metrics for the protocol engine.

    Everything in this module is gated by the [IDS_TRACE] environment knob
    (or {!set_enabled}): when tracing is off, {!span} is a flag test plus a
    tail call and the counter primitives are a flag test — nothing is
    recorded, nothing is allocated beyond the optional-argument boxes at the
    call site. The disabled path is pinned by [bench/obs], which asserts its
    cost is under 2% of the Protocol 2 hot path.

    When tracing is on, spans and metric increments go to a {e per-domain}
    shard reached through [Domain.DLS] — the hot path takes no lock (a
    mutex is touched once per domain lifetime, to register the fresh shard
    in the global list). Shards are merged by {!snapshot} / {!spans}, which
    must be called when no worker domain is running — in this codebase,
    after [Scheduler.map_range] has joined its domains. Tracing never draws
    randomness and never changes control flow, so traced runs produce
    bit-identical estimates.

    Span merge order is canonicalized (sorted by name, round, node, then
    time) before export, so the sequence of span labels is deterministic
    across worker counts even though timings and domain assignment are
    not. *)

val enabled : unit -> bool
(** True when tracing is on. Initialized from [IDS_TRACE] (any value other
    than empty or ["0"] enables). *)

val set_enabled : bool -> unit
(** Override the environment gate (used by tests and the bench harness).
    Call from the main domain with no workers running. *)

val set_metric_filter : string list option -> unit
(** Restrict which counters and histograms stay live while enabled: [None]
    (the default) keeps everything — the IDS_TRACE deep-trace mode; [Some
    prefixes] keeps only metrics whose name starts with one of the
    prefixes.  Service-telemetry workers run [Some ["net."]] so the
    wire-ledger counters tick while the inner-loop instrumentation
    (mont.redc fires once per modular reduction) stays free.  Spans are
    never filtered — every span site is low-frequency.  Call from the main
    domain with no workers running; already-recorded cells are kept. *)

val now_ns : unit -> int
(** Monotonic clock in nanoseconds (CLOCK_MONOTONIC; origin unspecified).
    Timestamps from different processes on one machine share the clock but
    not any per-process origin — see {!epoch_ns} for the anchor that makes
    independently captured traces alignable. *)

val epoch_ns : unit -> int
(** The process-epoch anchor: the [now_ns] value captured when this module
    was initialized (or at the last {!refresh_epoch}). Span start times
    shipped across a process boundary are stored relative to the shipping
    process's anchor; a collector re-bases them by adding the anchor that
    traveled with them, yielding timestamps on the shared machine clock. *)

val refresh_epoch : unit -> unit
(** Re-capture the anchor. A forked worker inherits its parent's anchor;
    call this first thing after the fork so spans are anchored at the
    worker's own birth. *)

val span : ?round:int -> ?node:int -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] and, when tracing is on, records its wall-clock
    duration under [name] with optional [round] / [node] labels ([-1] =
    unlabeled). The span is recorded even when [f] raises. *)

(** Monotonically increasing named counters, optionally labeled with a
    (round, node) cell — e.g. bits delivered to node 3 in round 2. Counter
    handles are created once at module initialization; adding to one from
    any domain is lock-free. *)
module Counter : sig
  type t

  val make : string -> t
  (** Register a counter. Names should be unique; registering the same name
      twice yields two counters whose cells are merged under one name in
      snapshots. *)

  val add : t -> int -> unit
  (** Unlabeled increment (no round/node cell). No-op when tracing is off. *)

  val add_cell : t -> round:int -> node:int -> int -> unit
  (** Increment the (round, node) cell. No-op when tracing is off. *)
end

(** Log-scale histograms: observation [v] lands in bucket [bits v] (the
    bit length of [v], 0 for [v <= 0]), so bucket [b] covers
    [[2^(b-1), 2^b)]. *)
module Histo : sig
  type t

  val make : string -> t
  val observe : t -> int -> unit
  (** No-op when tracing is off. *)

  val bucket_of : int -> int
  (** The bucket an observation falls into (exposed for tests/tools). *)
end

type span_record = {
  sname : string;
  sround : int;  (** -1 when unlabeled *)
  snode : int;  (** -1 when unlabeled *)
  sdomain : int;  (** id of the domain that recorded the span *)
  start_ns : int;
  dur_ns : int;
}

type round_row = { round : int; sum : int; max_node : int }
(** One round of a counter: total over all (node) cells and the largest
    single-node cell. *)

type counter_snapshot = {
  cname : string;
  total : int;  (** all cells plus unlabeled increments *)
  rounds : round_row list;  (** labeled cells grouped by round, ascending *)
}

type histo_snapshot = { hname : string; buckets : (int * int) list }

type snapshot = {
  counters : counter_snapshot list;  (** sorted by name *)
  histos : histo_snapshot list;  (** sorted by name *)
  spans_dropped : int;  (** spans lost to the per-shard buffer cap *)
}

val snapshot : unit -> snapshot
(** Merge all shards' metrics. Call with no worker domains running. *)

type checkpoint
(** A deep copy of the merged metric cells at one instant, the base of a
    delta window. *)

val checkpoint : unit -> checkpoint
(** Capture the current cells. Call with no worker domains running. *)

val since : checkpoint -> snapshot
(** The delta window from [checkpoint] to now, computed cell by cell —
    every field, including per-round [max_node], is exact {e for the
    window}. Do not call {!reset_metrics} / {!reset} between the checkpoint
    and the delta; cells only grow otherwise. *)

val empty : snapshot
(** The identity of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Fold two snapshots name by name: counter totals, per-round sums,
    histogram buckets, and [spans_dropped] add (exact under any fold
    order); per-round [max_node] folds by max, which over deltas from one
    process is a {e lower bound} on the true per-node peak (the same node
    may contribute to several windows). The additive fields are the ledger;
    the bound is advisory. *)

val counter_total : snapshot -> string -> int
(** Total of the named counter, 0 when absent. *)

val spans : unit -> span_record list
(** All recorded spans in canonical order (name, round, node, start time).
    Call with no worker domains running. *)

val ops_count : unit -> int
(** Total instrumentation calls (spans recorded, counter adds, histogram
    observations) across all shards since the last {!reset}. The overhead
    bench multiplies this by the measured disabled-path per-call cost to
    bound what the instrumentation costs when tracing is off. *)

val reset_metrics : unit -> unit
(** Clear counters and histograms in every shard, keeping spans (the bench
    harness snapshots metrics per estimate while the trace accumulates for
    the whole process). Call with no worker domains running. *)

val reset_spans : unit -> unit
(** Drop recorded spans (and the dropped-span count), keeping metric cells.
    Long-running workers call this between requests so the span buffer
    never hits its cap; do it {e before} taking the next {!checkpoint} so
    the dropped count stays monotone within each window. *)

val reset : unit -> unit
(** Clear everything and drop shards of joined domains. Call from the main
    domain with no workers running. *)

val snapshot_json : snapshot -> string
(** Compact one-line JSON rendering, embedded in schema-version-3 run-log
    records:
    {v
    {"counters":[{"name":"net.from_prover_bits","total":544,
                  "rounds":[[1,256,16],[2,288,18]]}],
     "histos":[{"name":"mont.pow_bits","buckets":[[10,5]]}],
     "spans_dropped":0}
    v}
    Round rows are [[round, sum, max_node]]. *)

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!snapshot_json}. Strict: any missing or mistyped field is
    an [Error], so a torn frame can never decode into a partial snapshot. *)

val snapshot_of_string : string -> (snapshot, string) result
(** [snapshot_of_json] composed with {!Json.parse}. *)

val spans_json : epoch:int -> span_record list -> string
(** Wire encoding of spans as a JSON array of
    [[name, round, node, domain, start, dur]] rows, with start times stored
    relative to [epoch] (normally {!epoch_ns}[ ()] of the shipping
    process). *)

val spans_of_json : Json.t -> (span_record list, string) result
(** Inverse of {!spans_json}. Start times come back as stored (relative);
    the collector re-bases by adding the epoch that traveled alongside. *)
