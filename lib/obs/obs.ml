external now_ns : unit -> int = "ids_obs_clock_ns" [@@noalloc]

let enabled_flag =
  ref
    (match Sys.getenv_opt "IDS_TRACE" with
    | Some s -> String.trim s <> "" && String.trim s <> "0"
    | None -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Process-epoch anchor.  [now_ns] is CLOCK_MONOTONIC with an unspecified
   origin, so raw timestamps from two processes are only comparable because
   the clock is machine-wide; what is NOT shared is any notion of "when this
   process started".  [epoch] pins that: captured at module initialization,
   re-captured on demand.  A forked worker inherits the parent's anchor, so
   workers that ship spans relative to their own birth call [refresh_epoch]
   first thing after the fork. *)
let epoch = ref (now_ns ())
let epoch_ns () = !epoch
let refresh_epoch () = epoch := now_ns ()

type span_record = {
  sname : string;
  sround : int;
  snode : int;
  sdomain : int;
  start_ns : int;
  dur_ns : int;
}

(* Per-domain shard. Span records go to a growable array capped at
   [max_spans]; metric cells live in int-keyed hash tables (keys pack the
   (id, round, node) triple so the hot path allocates nothing). Only the
   owning domain writes a shard; merges happen after the owning domain is
   joined (or from the owner itself), so no lock is needed on the path. *)
type shard = {
  mutable sp : span_record array;
  mutable nsp : int;
  mutable dropped : int;
  mutable ops : int;  (* instrumentation calls recorded; feeds the overhead bench *)
  cells : (int, int ref) Hashtbl.t;
  hcells : (int, int ref) Hashtbl.t;
}

let max_spans = 1 lsl 18

let shards : shard list ref = ref []
let shards_mu = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { sp = [||]; nsp = 0; dropped = 0; ops = 0; cells = Hashtbl.create 64; hcells = Hashtbl.create 16 }
      in
      Mutex.lock shards_mu;
      shards := s :: !shards;
      Mutex.unlock shards_mu;
      s)

let shard () = Domain.DLS.get shard_key

let record_span r =
  let sh = shard () in
  sh.ops <- sh.ops + 1;
  let n = sh.nsp in
  let cap = Array.length sh.sp in
  if n >= max_spans then sh.dropped <- sh.dropped + 1
  else begin
    if n >= cap then begin
      let sp = Array.make (Int.min max_spans (Int.max 256 (2 * cap))) r in
      Array.blit sh.sp 0 sp 0 n;
      sh.sp <- sp
    end;
    sh.sp.(n) <- r;
    sh.nsp <- n + 1
  end

let span ?(round = -1) ?(node = -1) name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now_ns () in
    let finish () =
      let t1 = now_ns () in
      record_span
        { sname = name;
          sround = round;
          snode = node;
          sdomain = (Domain.self () :> int);
          start_ns = t0;
          dur_ns = t1 - t0
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* Cell keys pack (metric id, round, node) into one int: 20 bits of id, 21
   bits each for round and node stored off by one so -1 (unlabeled) maps to
   0. Protocol rounds and node ids are far below 2^21 - 2. *)
let pack id round node = (id lsl 42) lor ((round + 1) lsl 21) lor (node + 1)
let unpack key = (key lsr 42, ((key lsr 21) land 0x1fffff) - 1, (key land 0x1fffff) - 1)

let bump sh tbl key k =
  sh.ops <- sh.ops + 1;
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + k
  | None -> Hashtbl.add tbl key (ref k)

(* Metric registries: name per id, appended under a mutex at module
   initialization time (Counter.make / Histo.make at top level of the
   instrumented modules). *)
let names : (int, string) Hashtbl.t = Hashtbl.create 32
let next_id = ref 0
let names_mu = Mutex.create ()

(* Metric filter: which counters/histos stay live while instrumentation is
   enabled.  [None] = everything (the IDS_TRACE deep-trace mode).  A worker
   in service-telemetry mode keeps only the cheap wire-ledger prefixes
   (e.g. ["net."]) so the inner-loop metrics (mont.redc ticks once per
   modular reduction) cost nothing: each metric holds a [live] flag
   recomputed when the filter changes, and the hot path pays one extra
   dereference only when already enabled.  Spans are not filtered — the
   span sites are all low-frequency. *)
let filter : string list option ref = ref None

let filter_matches name = function
  | None -> true
  | Some prefixes ->
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      prefixes

let lives : (string * bool ref) list ref = ref []

let set_metric_filter f =
  Mutex.lock names_mu;
  filter := f;
  List.iter (fun (n, live) -> live := filter_matches n f) !lives;
  Mutex.unlock names_mu

let register name =
  Mutex.lock names_mu;
  let id = !next_id in
  incr next_id;
  Hashtbl.add names id name;
  let live = ref (filter_matches name !filter) in
  lives := (name, live) :: !lives;
  Mutex.unlock names_mu;
  (id, live)

module Counter = struct
  type t = { id : int; live : bool ref }

  let make name =
    let id, live = register name in
    { id; live }

  let add_cell c ~round ~node k =
    if !enabled_flag && !(c.live) then
      let sh = shard () in
      bump sh sh.cells (pack c.id round node) k

  let add c k =
    if !enabled_flag && !(c.live) then
      let sh = shard () in
      bump sh sh.cells (pack c.id (-1) (-1)) k
end

module Histo = struct
  type t = { id : int; live : bool ref }

  let make name =
    let id, live = register name in
    { id; live }

  let bit_length v =
    let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_of v = if v <= 0 then 0 else bit_length v

  let observe h v =
    if !enabled_flag && !(h.live) then
      let sh = shard () in
      bump sh sh.hcells (pack h.id (bucket_of v) (-1)) 1
end

(* --- merge & export ---------------------------------------------------------- *)

type round_row = { round : int; sum : int; max_node : int }
type counter_snapshot = { cname : string; total : int; rounds : round_row list }
type histo_snapshot = { hname : string; buckets : (int * int) list }
type snapshot = { counters : counter_snapshot list; histos : histo_snapshot list; spans_dropped : int }

let all_shards () =
  Mutex.lock shards_mu;
  let l = !shards in
  Mutex.unlock shards_mu;
  l

let name_of id = match Hashtbl.find_opt names id with Some n -> n | None -> Printf.sprintf "metric#%d" id

let merge_cells field =
  let merged : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sh ->
      Hashtbl.iter
        (fun key r ->
          let prev = Option.value (Hashtbl.find_opt merged key) ~default:0 in
          Hashtbl.replace merged key (prev + !r))
        (field sh))
    (all_shards ());
  merged

let dropped_total () = List.fold_left (fun a sh -> a + sh.dropped) 0 (all_shards ())

(* Build a snapshot from already-merged (or differenced) cell tables; the
   public [snapshot] and the delta path [since] share this. *)
let snapshot_of_tables ~cells ~hcells ~spans_dropped =
  let merged = cells in
  (* Group cells by counter name (two registrations of one name merge). *)
  let by_name : (string, (int * int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun key total ->
      let id, round, node = unpack key in
      let name = name_of id in
      match Hashtbl.find_opt by_name name with
      | Some l -> l := (round, node, total) :: !l
      | None -> Hashtbl.add by_name name (ref [ (round, node, total) ]))
    merged;
  let counters =
    Hashtbl.fold
      (fun cname cells acc ->
        let total = List.fold_left (fun a (_, _, v) -> a + v) 0 !cells in
        let rounds_tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (round, _, v) ->
            if round >= 0 then begin
              let sum, mx = Option.value (Hashtbl.find_opt rounds_tbl round) ~default:(0, 0) in
              Hashtbl.replace rounds_tbl round (sum + v, Int.max mx v)
            end)
          !cells;
        let rounds =
          Hashtbl.fold (fun round (sum, max_node) l -> { round; sum; max_node } :: l) rounds_tbl []
          |> List.sort (fun a b -> compare a.round b.round)
        in
        { cname; total; rounds } :: acc)
      by_name []
    |> List.sort (fun a b -> compare a.cname b.cname)
  in
  let hmerged = hcells in
  let hby_name : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key count ->
      let id, bucket, _ = unpack key in
      let name = name_of id in
      match Hashtbl.find_opt hby_name name with
      | Some l -> l := (bucket, count) :: !l
      | None -> Hashtbl.add hby_name name (ref [ (bucket, count) ]))
    hmerged;
  let histos =
    Hashtbl.fold
      (fun hname buckets acc -> { hname; buckets = List.sort compare !buckets } :: acc)
      hby_name []
    |> List.sort (fun a b -> compare a.hname b.hname)
  in
  { counters; histos; spans_dropped }

let snapshot () =
  snapshot_of_tables
    ~cells:(merge_cells (fun sh -> sh.cells))
    ~hcells:(merge_cells (fun sh -> sh.hcells))
    ~spans_dropped:(dropped_total ())

(* --- delta windows ----------------------------------------------------------- *)

(* A checkpoint is a deep copy of the merged cell tables.  Deltas are taken
   at cell granularity — (counter, round, node) — rather than by subtracting
   snapshots, because a snapshot's per-round [max_node] is a max over
   cumulative cells and is not subtractable; differencing the cells first
   makes every field of the resulting window snapshot exact for that
   window. *)
type checkpoint = {
  ck_cells : (int, int) Hashtbl.t;
  ck_hcells : (int, int) Hashtbl.t;
  ck_dropped : int;
}

let checkpoint () =
  { ck_cells = merge_cells (fun sh -> sh.cells);
    ck_hcells = merge_cells (fun sh -> sh.hcells);
    ck_dropped = dropped_total ();
  }

let table_diff cur prev =
  let d = Hashtbl.create (Hashtbl.length cur) in
  Hashtbl.iter
    (fun key v ->
      let before = Option.value (Hashtbl.find_opt prev key) ~default:0 in
      if v <> before then Hashtbl.add d key (v - before))
    cur;
  d

let since cp =
  snapshot_of_tables
    ~cells:(table_diff (merge_cells (fun sh -> sh.cells)) cp.ck_cells)
    ~hcells:(table_diff (merge_cells (fun sh -> sh.hcells)) cp.ck_hcells)
    ~spans_dropped:(dropped_total () - cp.ck_dropped)

(* --- snapshot algebra -------------------------------------------------------- *)

let empty = { counters = []; histos = []; spans_dropped = 0 }

let merge_rounds ra rb =
  let tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let sum, mx = Option.value (Hashtbl.find_opt tbl r.round) ~default:(0, 0) in
      Hashtbl.replace tbl r.round (sum + r.sum, Int.max mx r.max_node))
    (ra @ rb);
  Hashtbl.fold (fun round (sum, max_node) l -> { round; sum; max_node } :: l) tbl []
  |> List.sort (fun a b -> compare a.round b.round)

let merge_buckets ba bb =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b, c) ->
      Hashtbl.replace tbl b (Option.value (Hashtbl.find_opt tbl b) ~default:0 + c))
    (ba @ bb);
  Hashtbl.fold (fun b c l -> (b, c) :: l) tbl [] |> List.sort compare

let merge a b =
  let ctbl : (string, counter_snapshot) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt ctbl c.cname with
      | None -> Hashtbl.replace ctbl c.cname c
      | Some p ->
        Hashtbl.replace ctbl c.cname
          { cname = c.cname; total = p.total + c.total; rounds = merge_rounds p.rounds c.rounds })
    (a.counters @ b.counters);
  let htbl : (string, histo_snapshot) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun h ->
      match Hashtbl.find_opt htbl h.hname with
      | None -> Hashtbl.replace htbl h.hname h
      | Some p ->
        Hashtbl.replace htbl h.hname
          { hname = h.hname; buckets = merge_buckets p.buckets h.buckets })
    (a.histos @ b.histos);
  { counters =
      Hashtbl.fold (fun _ c l -> c :: l) ctbl [] |> List.sort (fun x y -> compare x.cname y.cname);
    histos =
      Hashtbl.fold (fun _ h l -> h :: l) htbl [] |> List.sort (fun x y -> compare x.hname y.hname);
    spans_dropped = a.spans_dropped + b.spans_dropped
  }

let counter_total s name =
  match List.find_opt (fun c -> c.cname = name) s.counters with
  | Some c -> c.total
  | None -> 0

let spans () =
  let all =
    List.concat_map (fun sh -> Array.to_list (Array.sub sh.sp 0 sh.nsp)) (all_shards ())
  in
  List.sort
    (fun a b ->
      let c = compare a.sname b.sname in
      if c <> 0 then c
      else
        let c = compare a.sround b.sround in
        if c <> 0 then c
        else
          let c = compare a.snode b.snode in
          if c <> 0 then c else compare (a.start_ns, a.dur_ns) (b.start_ns, b.dur_ns))
    all

let ops_count () = List.fold_left (fun a sh -> a + sh.ops) 0 (all_shards ())

let reset_metrics () =
  List.iter
    (fun sh ->
      Hashtbl.reset sh.cells;
      Hashtbl.reset sh.hcells)
    (all_shards ())

let reset_spans () =
  List.iter
    (fun sh ->
      sh.sp <- [||];
      sh.nsp <- 0;
      sh.dropped <- 0)
    (all_shards ())

let reset () =
  (* Keep only the calling domain's shard registered: joined domains are
     gone and fresh ones re-register through the DLS initializer. *)
  let own = shard () in
  own.sp <- [||];
  own.nsp <- 0;
  own.dropped <- 0;
  own.ops <- 0;
  Hashtbl.reset own.cells;
  Hashtbl.reset own.hcells;
  Mutex.lock shards_mu;
  shards := [ own ];
  Mutex.unlock shards_mu

let snapshot_json s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"name\":%S,\"total\":%d,\"rounds\":[" c.cname c.total);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%d,%d]" r.round r.sum r.max_node))
        c.rounds;
      Buffer.add_string buf "]}")
    s.counters;
  Buffer.add_string buf "],\"histos\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"name\":%S,\"buckets\":[" h.hname);
      List.iteri
        (fun j (b, c) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" b c))
        h.buckets;
      Buffer.add_string buf "]}")
    s.histos;
  Buffer.add_string buf (Printf.sprintf "],\"spans_dropped\":%d}" s.spans_dropped);
  Buffer.contents buf

(* --- codecs ------------------------------------------------------------------ *)

(* Inverse of [snapshot_json].  The reader is strict about shape (every
   field of the writer must be present and well-typed) so a torn or
   corrupted frame surfaces as [Error] at the boundary instead of a partial
   snapshot polluting an aggregate. *)

exception Bad of string

let want what = function Some v -> v | None -> raise (Bad what)

let snapshot_of_json j =
  try
    let counters =
      want "counters" (Option.bind (Json.member "counters" j) Json.to_list)
      |> List.map (fun c ->
             { cname = want "counter name" (Option.bind (Json.member "name" c) Json.to_string);
               total = want "counter total" (Option.bind (Json.member "total" c) Json.to_int);
               rounds =
                 want "counter rounds" (Option.bind (Json.member "rounds" c) Json.to_list)
                 |> List.map (fun r ->
                        match Option.map (List.map Json.to_int) (Json.to_list r) with
                        | Some [ Some round; Some sum; Some max_node ] -> { round; sum; max_node }
                        | _ -> raise (Bad "round row"))
             })
    in
    let histos =
      want "histos" (Option.bind (Json.member "histos" j) Json.to_list)
      |> List.map (fun h ->
             { hname = want "histo name" (Option.bind (Json.member "name" h) Json.to_string);
               buckets =
                 want "histo buckets" (Option.bind (Json.member "buckets" h) Json.to_list)
                 |> List.map (fun b ->
                        match Option.map (List.map Json.to_int) (Json.to_list b) with
                        | Some [ Some bucket; Some count ] -> (bucket, count)
                        | _ -> raise (Bad "bucket pair"))
             })
    in
    let spans_dropped =
      want "spans_dropped" (Option.bind (Json.member "spans_dropped" j) Json.to_int)
    in
    Ok { counters; histos; spans_dropped }
  with Bad what -> Error (Printf.sprintf "snapshot: bad or missing %s" what)

let snapshot_of_string s =
  match Json.parse s with
  | Error e -> Error ("snapshot: " ^ e)
  | Ok j -> snapshot_of_json j

(* Span wire codec: a JSON array of [[name, round, node, domain, start, dur]]
   rows.  [spans_json ~epoch] stores start times relative to [epoch] (the
   shipping process's anchor); [spans_of_json] returns them as stored — the
   collector re-bases by adding the epoch that traveled with the frame. *)

let spans_json ~epoch sps =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "[%S,%d,%d,%d,%d,%d]" s.sname s.sround s.snode s.sdomain
           (s.start_ns - epoch) s.dur_ns))
    sps;
  Buffer.add_char buf ']';
  Buffer.contents buf

let spans_of_json j =
  try
    Ok
      (want "spans" (Json.to_list j)
      |> List.map (fun row ->
             match Json.to_list row with
             | Some [ n; r; nd; d; t; u ] ->
               { sname = want "span name" (Json.to_string n);
                 sround = want "span round" (Json.to_int r);
                 snode = want "span node" (Json.to_int nd);
                 sdomain = want "span domain" (Json.to_int d);
                 start_ns = want "span start" (Json.to_int t);
                 dur_ns = want "span dur" (Json.to_int u)
               }
             | _ -> raise (Bad "span row")))
  with Bad what -> Error (Printf.sprintf "spans: bad or missing %s" what)
