(** Chrome [trace_event] export of the recorded spans.

    The output is the JSON-object flavor of the trace format — a
    ["traceEvents"] array of complete ("ph":"X") events — which
    [about:tracing] and Perfetto load directly. Spans are exported in
    {!Obs.spans}' canonical order; timestamps are microseconds relative to
    the earliest span, thread ids are the recording domain's id, and the
    round/node labels ride in ["args"]. *)

val to_channel : out_channel -> unit
(** Write the current spans as one trace JSON object. *)

val write_file : string -> unit
(** [write_file path] truncates [path] and writes the trace there. *)

val write_from_env : ?quiet:bool -> unit -> string option
(** When tracing is enabled and spans were recorded, write the trace to the
    path named by [IDS_TRACE_OUT] (default ["ids_trace.json"]; empty
    disables) and return the path; print a one-line notice unless [quiet].
    [None] when tracing is off, no spans exist, or the sink is disabled. *)
