(** Chrome [trace_event] export of the recorded spans.

    The output is the JSON-object flavor of the trace format — a
    ["traceEvents"] array of complete ("ph":"X") events — which
    [about:tracing] and Perfetto load directly. Spans are exported in
    {!Obs.spans}' canonical order; timestamps are microseconds relative to
    the earliest span, thread ids are the recording domain's id, and the
    round/node labels ride in ["args"]. *)

val to_channel : out_channel -> unit
(** Write the current spans as one trace JSON object. *)

val write_file : string -> unit
(** [write_file path] truncates [path] and writes the trace there. *)

(** {2 Multi-process traces}

    {!to_channel} exports the calling process's own spans under a fixed
    pid. The event-level API below stitches spans {e from several
    processes} into one trace: each event carries the real pid of the
    process that recorded it, an absolute timestamp on the shared machine
    clock (worker span starts, shipped relative to the worker's
    {!Obs.epoch_ns} anchor, are re-based by adding that anchor back), and
    free-form string args — which is where the [trace_id] /
    [parent_span] linkage rides. *)

type ev = {
  ename : string;
  epid : int;  (** the recording process *)
  etid : int;  (** thread lane, usually the recording domain's id *)
  ets_ns : int;  (** absolute nanoseconds on the shared machine clock *)
  edur_ns : int;
  eargs : (string * string) list;  (** e.g. [("trace_id", ...)] *)
}

val ev_of_span : pid:int -> base_ns:int -> ?args:(string * string) list -> Obs.span_record -> ev
(** Re-base a shipped span onto the machine clock: [ets_ns = base_ns +
    start_ns], where [base_ns] is the shipping process's epoch anchor and
    [start_ns] is the relative value off the wire. Round/node labels are
    appended to [args]. *)

val export_events : out_channel -> ev list -> unit
(** Write events as one Chrome trace object (timestamps re-origined to the
    earliest event, rendered in microseconds). *)

val export_events_file : string -> ev list -> unit

val events_of_file : string -> (ev list, string) result
(** Read a trace written by {!export_events} back (used by the E20 bench
    and tests to validate merged traces). Numeric args come back as their
    decimal rendering; sub-microsecond precision is rounding-limited. *)

val write_from_env : ?quiet:bool -> unit -> string option
(** When tracing is enabled and spans were recorded, write the trace to the
    path named by [IDS_TRACE_OUT] (default ["ids_trace.json"]; empty
    disables) and return the path; print a one-line notice unless [quiet].
    [None] when tracing is off, no spans exist, or the sink is disabled. *)
