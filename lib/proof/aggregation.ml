module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Spanning_tree = Ids_graph.Spanning_tree

let in_range n x = x >= 0 && x < n

let tree_check g ~root ~parent ~dist v =
  let n = Graph.n g in
  in_range n parent.(v)
  && in_range n dist.(v)
  &&
  if v = root then dist.(v) = 0 && parent.(v) = v
  else Graph.has_edge g v parent.(v) && dist.(parent.(v)) = dist.(v) - 1

let children g ~parent v =
  Bitset.fold (fun u acc -> if parent.(u) = v && u <> v then u :: acc else acc) (Graph.neighbors g v) []

let subtree_equation f ~own ~claimed ~children v =
  let expected = List.fold_left (fun acc u -> f.Ids_hash.Field.add acc claimed.(u)) own children in
  f.Ids_hash.Field.equal claimed.(v) expected

let honest_sums f tree ~term =
  let n = Array.length tree.Spanning_tree.parent in
  let sums = Array.make n f.Ids_hash.Field.zero in
  (* Accumulate leaves-first: order vertices by decreasing distance. The
     one-pass children index replaces a per-vertex parent scan that summed
     to O(n²) — at n = 10⁶ the difference between seconds and weeks. Child
     visit order (ascending) is unchanged, so sums are bit-identical. *)
  let index = Spanning_tree.children_index tree in
  let order = Array.init n Fun.id in
  Array.sort (fun u v -> Stdlib.compare tree.Spanning_tree.dist.(v) tree.Spanning_tree.dist.(u)) order;
  Array.iter
    (fun v ->
      sums.(v) <-
        Array.fold_left (fun acc u -> f.Ids_hash.Field.add acc sums.(u)) (term v) index.(v))
    order;
  sums
