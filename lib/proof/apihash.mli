(** Distributed evaluation of the Section 4 eps-API hash, end to end.

    The language is trivial — the prover claims [y = h_spec(G)] for the
    execution's own graph — but the protocol exercises exactly the
    tree-aggregability that Section 4 needs from the hash: Arthur draws the
    spec, Merlin commits to a BFS spanning tree, per-node subtree aggregates
    of the [k] inner row hashes, and the claimed hash; each node then checks
    its tree labels, recomputes its own row term from its O(degree) view,
    and verifies the Lemma 3.3 subtree equation, with the root applying the
    outer layer. Completeness is exact; a wrong claim or any tampered
    aggregate breaks an equation at some node.

    Every round runs over {!Ids_network.Network}'s streamed views, so the
    protocol completes at n = 10⁶ with O(n) machine words of delivered
    state and O(max degree) transient state per node — this is the scale
    exemplar benchmarked by [bench/scale]. *)

type params = { q : int; field : int Ids_hash.Field.t; copies : int }

val params_for : ?k:int -> seed:int -> Ids_graph.Graph.t -> params
(** Modulus and copy count for a graph: a seeded random prime in
    [\[4 m^(3/2), 8 m^(3/2)\]] for [m = n² + n] — the least growth rate
    with [eps < 1] at [k = 3] — when that fits the native-int field, else
    a fixed prime just below [2^30] (the scale path measures completeness
    and throughput, which hold for every [q]; see the DESIGN.md
    discussion). [k] defaults to {!Ids_hash.Api.default_copies}.
    @raise Invalid_argument if [k < 1]. *)

val epsilon : params -> n:int -> float
(** The analytical eps-API bound for these parameters. *)

(** The prover's full message: spanning-tree labels, flattened n×k subtree
    aggregates ([agg.((v * copies) + i)] is copy [i] at node [v]), and the
    claimed hash. *)
type advice = {
  root : int;
  parent : int array;
  dist : int array;
  agg : int array;
  claim : int;
}

val honest_advice : params -> int Ids_hash.Api.spec -> root:int -> Ids_graph.Graph.t -> advice

type prover = params -> int Ids_hash.Api.spec -> root:int -> Ids_graph.Graph.t -> advice

val honest : prover

val adversary_wrong_claim : prover
(** Honest advice with the claimed hash shifted: rejected with
    probability 1 (the root's finalize equation). *)

val adversary_corrupt_agg : int -> prover
(** Honest advice with the named node's first inner aggregate shifted:
    rejected with probability 1 (a subtree equation at that node or its
    parent). *)

val response_bits_per_node : int Ids_hash.Field.t -> k:int -> int -> int
(** Prover bits each node receives across all Merlin rounds:
    [Theta(k log n)]. *)

val run :
  ?fault:Ids_network.Fault.spec ->
  ?prover:prover ->
  ?k:int ->
  seed:int ->
  root:int ->
  Ids_graph.Graph.t ->
  Outcome.t
(** One execution on a connected graph: spec challenge (streamed), spec /
    claim / root broadcasts, tree-label and aggregate unicasts, local
    verification inside {!Ids_network.Network.decide}. Deterministic in
    [seed]; the fault layer applies to every round.
    @raise Invalid_argument if [root] is out of range. *)
