module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Api = Ids_hash.Api
module Rng = Ids_bignum.Rng

type instance = {
  g0 : Graph.t;
  g1 : Graph.t;
  n : int;
  candidates : (int array * int * (int * Bitset.t) array) array Lazy.t;
}

let rows_for g sigma =
  let n = Graph.n g in
  Array.init n (fun v ->
      (Perm.apply sigma v, Perm.apply_set sigma (Graph.closed_neighborhood g v)))

let make_instance g0 g1 =
  let n = Graph.n g0 in
  if Graph.n g1 <> n then invalid_arg "Gni.make_instance: size mismatch";
  if n > 8 then invalid_arg "Gni.make_instance: n > 8 (exhaustive prover scans 2 n! permutations)";
  if not (Graph.is_connected g0) then invalid_arg "Gni.make_instance: network graph must be connected";
  if Iso.is_symmetric g0 || Iso.is_symmetric g1 then
    invalid_arg "Gni.make_instance: graphs must be asymmetric (Section 4's restriction)";
  let candidates =
    lazy
      (let perms = Perm.all n in
       let of_b b =
         let g = if b = 0 then g0 else g1 in
         List.map (fun sigma -> (Perm.to_array sigma, b, rows_for g sigma)) perms
       in
       Array.of_list (of_b 0 @ of_b 1))
  in
  { g0; g1; n; candidates }

let yes_instance rng n =
  let g0 = Ids_graph.Family.random_asymmetric rng n in
  let rec pick () =
    let g1 = Ids_graph.Family.random_asymmetric rng n in
    if Iso.are_isomorphic g0 g1 then pick () else g1
  in
  make_instance g0 (pick ())

let no_instance rng n =
  let g0 = Ids_graph.Family.random_asymmetric rng n in
  let g1 = Graph.relabel g0 (Perm.to_array (Perm.random rng n)) in
  make_instance g0 g1

type params = {
  q : int;
  field : int Field.t;
  copies : int;
  repetitions : int;
  threshold : int;
  factorial : int;
  yes_bound : float;
  no_bound : float;
}

let factorial n = Precomp.factorial n

(* Single-repetition acceptance bounds from the GS analysis with an
   eps-API hash (see Api's documentation). *)
let rate_bounds ~n ~q ~k ~factorial =
  let fq = float_of_int q and fk = float_of_int factorial in
  let eps = Api.epsilon (Field.int_field q) ~n ~k ~q:fq in
  let s = 2. *. fk in
  let yes = (s /. fq) -. (s *. s *. (1. +. eps) /. (2. *. fq *. fq)) in
  let no = fk /. fq in
  (yes, no)

let params_for ?repetitions ~seed inst =
  let k = Api.default_copies in
  let fact = factorial inst.n in
  let rng = Rng.create (seed lxor 0x6b2f) in
  let q = Ids_bignum.Prime.random_prime_in_int rng (4 * fact) (8 * fact) in
  let yes, no = rate_bounds ~n:inst.n ~q ~k ~factorial:fact in
  let repetitions = match repetitions with Some t -> t | None -> 600 in
  let threshold = Stats.midpoint_threshold ~trials:repetitions ~yes_rate:yes ~no_rate:no in
  { q;
    field = Field.int_field q;
    copies = k;
    repetitions;
    threshold;
    factorial = fact;
    yes_bound = yes;
    no_bound = no
  }

let yes_rate_bound p = p.yes_bound
let no_rate_bound p = p.no_bound

(* --- fast preimage search --------------------------------------------------- *)

(* Hash a candidate's rows under an Api spec using per-point power tables:
   z_i = sum_rows powers_i.(row_index * n) * P_i(content),
   y   = shift + sum_i coeffs_i * z_i   (mod q). *)
let hash_candidate ~q ~n powtabs (spec : int Api.spec) rows =
  let k = Array.length spec.Api.points in
  let y = ref spec.Api.shift in
  for i = 0 to k - 1 do
    let pows = powtabs.(i) in
    let z = ref 0 in
    Array.iter
      (fun (idx, content) ->
        let p = Bitset.fold (fun w acc -> (acc + pows.(w + 1)) mod q) content 0 in
        z := (!z + (pows.(idx * n) * p)) mod q)
      rows;
    y := (!y + (spec.Api.coeffs.(i) * !z)) mod q
  done;
  !y

let power_tables ~q ~n (spec : int Api.spec) =
  let m = (n * n) + n in
  Array.map
    (fun a ->
      let t = Array.make (m + 1) 1 in
      for i = 1 to m do
        t.(i) <- t.(i - 1) * a mod q
      done;
      t)
    spec.Api.points

let find_preimage params inst spec target =
  let q = params.q and n = inst.n in
  let powtabs = power_tables ~q ~n spec in
  let cands = Lazy.force inst.candidates in
  let rec scan i =
    if i >= Array.length cands then None
    else begin
      let sigma, b, rows = cands.(i) in
      if hash_candidate ~q ~n powtabs spec rows = target then Some (sigma, b) else scan (i + 1)
    end
  in
  scan 0

(* --- protocol messages ------------------------------------------------------- *)

type challenge = { specs : int Api.spec array; targets : int array }

type commit = {
  miss : bool array;  (* broadcast *)
  b : int array;  (* broadcast *)
  sigma : int array array;  (* broadcast *)
  root : int array;  (* broadcast *)
  spec_echo : int Api.spec array;  (* broadcast *)
  target_echo : int array;  (* broadcast *)
  parent : int array;  (* unicast *)
  dist : int array;  (* unicast *)
}

type reveal = {
  audit_echo : int array;  (* broadcast *)
  agg : int array array;  (* unicast: k inner aggregates per node *)
  audit_agg : int array;  (* unicast *)
}

type prover = {
  name : string;
  commit : params -> instance -> challenge -> commit;
  reveal : params -> instance -> challenge -> commit -> int array -> reveal;
}

let prover_name p = p.name

let const n v = Array.make n v

let honest_root = 0

(* Row owned by node v once (sigma, b) is fixed: index sigma(v), content
   sigma(N_b(v)). *)
let own_row inst sigma_table b v =
  let g = if b = 0 then inst.g0 else inst.g1 in
  let content = Bitset.create inst.n in
  Bitset.iter (fun u -> Bitset.add content sigma_table.(u)) (Graph.closed_neighborhood g v);
  (sigma_table.(v), content)

let identity_table n = Array.init n Fun.id

let honest_commit params inst (ch : challenge) =
  let n = inst.n in
  let tree = Precomp.tree inst.g0 honest_root in
  let spec = ch.specs.(honest_root) and target = ch.targets.(honest_root) in
  let miss, sigma, b =
    match find_preimage params inst spec target with
    | Some (sigma, b) -> (false, sigma, b)
    | None -> (true, identity_table n, 0)
  in
  { miss = const n miss;
    b = const n b;
    sigma = const n sigma;
    root = const n honest_root;
    spec_echo = const n spec;
    target_echo = const n target;
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist
  }

let honest_reveal params inst (_ch : challenge) (c : commit) audit =
  let n = inst.n in
  let f = params.field in
  let root = c.root.(0) in
  let tree = { Spanning_tree.root; parent = Array.copy c.parent; dist = Array.copy c.dist } in
  let spec = c.spec_echo.(0) and sigma = c.sigma.(0) and b = c.b.(0) in
  let audit_point = audit.(root) in
  let k = params.copies in
  if c.miss.(0) then
    { audit_echo = const n audit_point;
      agg = Array.init n (fun _ -> Array.make k 0);
      audit_agg = Array.make n 0
    }
  else begin
    let term v =
      let idx, content = own_row inst sigma b v in
      Api.row_term f spec ~n ~row:idx content
    in
    let audit_term v =
      let idx, content = own_row inst sigma b v in
      Linear.row_hash f audit_point ~n ~row:idx content
    in
    (* Vector aggregation: run the scalar helper once per inner copy. *)
    let per_copy =
      Array.init k (fun i -> Aggregation.honest_sums f tree ~term:(fun v -> (term v).(i)))
    in
    { audit_echo = const n audit_point;
      agg = Array.init n (fun v -> Array.init k (fun i -> per_copy.(i).(v)));
      audit_agg = Aggregation.honest_sums f tree ~term:audit_term
    }
  end

let honest = { name = "honest"; commit = honest_commit; reveal = honest_reveal }

type commit_mode = [ `Search | `Deny of [ `Identity | `Random of int ] | `Always_identity ]

type reveal_mode = [ `Honest | `Patch_root ]

(* Honest search, but a miss is never admitted: claim a preimage that does
   not exist (the failed search already ruled every table out, so the bet is
   hopeless, but the structural checks all pass until the root's target
   equation). *)
let deny_commit table_for params inst ch =
  let c = honest_commit params inst ch in
  if not c.miss.(0) then c
  else begin
    let n = inst.n in
    { c with miss = const n false; sigma = const n (table_for n); b = const n 0 }
  end

(* Never searches: commits to (identity, g0) whether or not the target has a
   preimage, betting on the identity hash landing on the target. The reveal
   is honest for that commitment, so every structural check passes and the
   bet is settled by the root's outer target equation alone — per repetition
   it wins with probability about 1/q, far below the honest miss rate of
   roughly 1 - 2 n!/q. *)
let always_identity_commit _params inst (ch : challenge) =
  let n = inst.n in
  let tree = Precomp.tree inst.g0 honest_root in
  { miss = const n false;
    b = const n 0;
    sigma = const n (identity_table n);
    root = const n honest_root;
    spec_echo = const n ch.specs.(honest_root);
    target_echo = const n ch.targets.(honest_root);
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist
  }

(* Patch the root's aggregate so the outer target equation passes; the
   root's own aggregation check then fails instead. *)
let patch_root_reveal params inst ch c audit =
  let r = honest_reveal params inst ch c audit in
  let f = params.field in
  let root = c.root.(0) and spec = c.spec_echo.(0) and target = c.target_echo.(0) in
  let current = Api.finalize f spec r.agg.(root) in
  if f.Field.equal current target then r
  else begin
    let c0 = spec.Api.coeffs.(0) in
    (* Solve c0 * delta = target - current for delta when c0 <> 0. *)
    let delta =
      if c0 = 0 then 0
      else begin
        let diff = f.Field.sub target current in
        (* Fermat inversion: c0^(q-2) mod q. *)
        let inv = f.Field.pow_int c0 (params.q - 2) in
        f.Field.mul diff inv
      end
    in
    let agg = Array.map Array.copy r.agg in
    agg.(root).(0) <- f.Field.add agg.(root).(0) delta;
    { r with agg }
  end

let cheat ~name ~commit ~reveal =
  let commit =
    match commit with
    | `Search -> honest_commit
    | `Deny `Identity -> deny_commit identity_table
    | `Deny (`Random seed) -> deny_commit (fun n -> Perm.to_array (Perm.random (Rng.create seed) n))
    | `Always_identity -> always_identity_commit
  in
  let reveal = match reveal with `Honest -> honest_reveal | `Patch_root -> patch_root_reveal in
  { name; commit; reveal }

let adversary_forge_aggregates =
  cheat ~name:"adversary:forge-aggregates" ~commit:(`Deny (`Random 99)) ~reveal:`Patch_root

let adversary_biased_hash =
  cheat ~name:"adversary:biased-hash" ~commit:`Always_identity ~reveal:`Honest

(* --- execution --------------------------------------------------------------- *)

(* One repetition inside a running network; returns per-node validity. *)
let run_repetition params inst net prover =
  let n = inst.n in
  let f = params.field in
  let k = params.copies in
  let g0 = inst.g0 in
  (* Arthur 1: spec + target candidates. *)
  let spec_bits = Api.spec_bits f ~k in
  let specs = Network.challenge net ~bits:spec_bits (fun rng -> Api.random_spec f ~k rng) in
  let targets = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let ch = { specs; targets } in
  (* Merlin 1: commitment. *)
  let c = prover.commit params inst ch in
  let id_corrupt = Fault.flip_int_bit ~bits:(Bits.id n) in
  let field_corrupt = Fault.flip_int_bit ~bits:f.Field.bits in
  let spec_corrupt rng (s : int Api.spec) =
    { s with Api.shift = field_corrupt rng s.Api.shift }
  in
  let agg_corrupt rng a =
    if Array.length a = 0 then a
    else begin
      let a = Array.copy a in
      let i = Rng.int rng (Array.length a) in
      a.(i) <- field_corrupt rng a.(i);
      a
    end
  in
  let miss_bc = Network.broadcast net ~corrupt:Fault.flip_bool ~bits:1 c.miss in
  let b_bc = Network.broadcast net ~corrupt:(Fault.flip_int_bit ~bits:1) ~bits:1 c.b in
  let sigma_bc = Network.broadcast net ~corrupt:Fault.swap_entries ~bits:(Bits.perm n) c.sigma in
  let root_bc = Network.broadcast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.root in
  let spec_echo_bc = Network.broadcast net ~corrupt:spec_corrupt ~bits:spec_bits c.spec_echo in
  let target_echo_bc = Network.broadcast net ~corrupt:field_corrupt ~bits:f.Field.bits c.target_echo in
  let parent_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.parent in
  let dist_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.dist in
  (* Arthur 2: audit point. *)
  let audit = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  (* Merlin 2: aggregates. *)
  let r = prover.reveal params inst ch c audit in
  let audit_echo_bc = Network.broadcast net ~corrupt:field_corrupt ~bits:f.Field.bits r.audit_echo in
  let agg_u = Network.unicast net ~corrupt:agg_corrupt ~bits:(k * f.Field.bits) r.agg in
  let audit_agg_u = Network.unicast net ~corrupt:field_corrupt ~bits:f.Field.bits r.audit_agg in
  (* Local verification. *)
  let field_ok x = Aggregation.in_range params.q x in
  let is_perm table =
    Array.length table = n
    && Array.for_all (Aggregation.in_range n) table
    &&
    let seen = Array.make n false in
    Array.iter (fun x -> if Aggregation.in_range n x then seen.(x) <- true) table;
    Array.for_all Fun.id seen
  in
  let valid_at v =
    Network.broadcast_consistent_at net miss_bc v
    && Network.broadcast_consistent_at net b_bc v
    && Network.broadcast_consistent_at net sigma_bc v
    && Network.broadcast_consistent_at net root_bc v
    && Network.broadcast_consistent_at net spec_echo_bc v
    && Network.broadcast_consistent_at net target_echo_bc v
    && Network.broadcast_consistent_at net audit_echo_bc v
    && (not miss_bc.(v))
    &&
    let sigma = sigma_bc.(v) and root = root_bc.(v) in
    let spec = spec_echo_bc.(v) and target = target_echo_bc.(v) in
    let audit_pt = audit_echo_bc.(v) in
    (b_bc.(v) = 0 || b_bc.(v) = 1)
    && is_perm sigma
    && Aggregation.in_range n root
    && field_ok target && field_ok audit_pt
    && Array.for_all field_ok spec.Api.points
    && Array.for_all field_ok spec.Api.coeffs
    && field_ok spec.Api.shift
    && Array.length spec.Api.points = k
    && Array.length agg_u.(v) = k
    && Array.for_all field_ok agg_u.(v)
    && field_ok audit_agg_u.(v)
    && Aggregation.tree_check g0 ~root ~parent:parent_u ~dist:dist_u v
    &&
    let idx, content = own_row inst sigma b_bc.(v) v in
    let children = Aggregation.children g0 ~parent:parent_u v in
    let term = Api.row_term f spec ~n ~row:idx content in
    let audit_term = Linear.row_hash f audit_pt ~n ~row:idx content in
    let copy_ok i =
      let own = term.(i) in
      let expected = List.fold_left (fun acc u -> f.Field.add acc agg_u.(u).(i)) own children in
      f.Field.equal agg_u.(v).(i) expected
    in
    let rec all_copies i = i >= k || (copy_ok i && all_copies (i + 1)) in
    all_copies 0
    && Aggregation.subtree_equation f ~own:audit_term ~claimed:audit_agg_u ~children v
    &&
    if v = root then
      f.Field.equal (Api.finalize f spec agg_u.(v)) target
      && spec = specs.(v) && target = targets.(v) && audit_pt = audit.(v)
    else true
  in
  let valid = Array.init n valid_at in
  (* Scope delivery failures to this repetition: a drop invalidates the node
     here and now, and the cleared flags leave the final Network.decide (over
     the aggregated counts) to judge only crashes. *)
  let missed = Network.take_missed net in
  Array.mapi (fun v ok -> ok && not missed.(v)) valid

let run_single ?fault ?params ~seed inst prover =
  Ids_obs.Obs.span "gni.run_single" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ?fault ~seed inst.g0 in
      let valid = run_repetition params inst net prover in
      let accepted = Network.decide net (fun v -> valid.(v)) in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))

let run ?fault ?params ~seed inst prover =
  Ids_obs.Obs.span "gni.run" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ?fault ~seed inst.g0 in
      let counts = Array.make inst.n 0 in
      for _rep = 1 to params.repetitions do
        let valid = run_repetition params inst net prover in
        Array.iteri (fun v ok -> if ok then counts.(v) <- counts.(v) + 1) valid
      done;
      let accepted = Network.decide net (fun v -> counts.(v) >= params.threshold) in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))
