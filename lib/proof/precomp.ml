module Memo = Ids_engine.Memo
module Graph = Ids_graph.Graph
module Perm = Ids_graph.Perm
module Family = Ids_graph.Family
module Spanning_tree = Ids_graph.Spanning_tree
module Iso = Ids_graph.Iso
module Nat = Ids_bignum.Nat

(* All memos are created here, at module initialization, so their hit/miss
   counters exist before tracing snapshots (Obs.Counter contract). Every
   compute function below is a pure function of its key: graph-keyed entries
   key by (uid, version), which mutation invalidates, so estimates are
   bit-identical whether the cache is cold, warm, or sharded across any
   number of worker domains. *)

let bfs_memo : (int * int * int, Spanning_tree.t) Memo.t = Memo.create "memo.bfs"
let sigma_memo : (int * int, Perm.t) Memo.t = Memo.create "memo.dsym_sigma"
let aut_memo : (int * int, Perm.t option) Memo.t = Memo.create "memo.automorphism"
let factorial_memo : (int, int) Memo.t = Memo.create "memo.factorial"
let power_bound_memo : (int * int, Nat.t) Memo.t = Memo.create "memo.power_bound"

let tree g root =
  Memo.find bfs_memo (Graph.uid g, Graph.version g, root) (fun _ -> Spanning_tree.bfs g root)

let dsym_sigma ~n ~r = Memo.find sigma_memo (n, r) (fun _ -> Family.dsym_sigma ~n ~r)

let nontrivial_automorphism g =
  Memo.find aut_memo (Graph.uid g, Graph.version g) (fun _ ->
      Iso.find_nontrivial_automorphism g)

let factorial n =
  if n < 0 then invalid_arg "Precomp.factorial: negative";
  Memo.find factorial_memo n (fun _ ->
      let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
      go 1 n)

let power_bound n e =
  if n < 0 || e < 0 then invalid_arg "Precomp.power_bound: negative";
  Memo.find power_bound_memo (n, e) (fun _ -> Nat.pow (Nat.of_int n) e)
