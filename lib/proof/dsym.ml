module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Family = Ids_graph.Family
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Rng = Ids_bignum.Rng

type instance = { n : int; r : int; graph : Graph.t }

let make_instance ~n ~r graph =
  if Graph.n graph <> (2 * n) + (2 * r) + 1 then invalid_arg "Dsym.make_instance: wrong vertex count";
  { n; r; graph }

type params = { p : int; field : int Field.t }

let params_for ~seed inst =
  let size = Graph.n inst.graph in
  let rng = Rng.create (seed lxor 0x3d5) in
  let p = Ids_bignum.Prime.random_prime_in_int rng (10 * size * size * size) (100 * size * size * size) in
  { p; field = Field.int_field p }

type response = {
  index : int array;
  root : int array;
  parent : int array;
  dist : int array;
  a : int array;
  b : int array;
}

type prover = { name : string; respond : params -> instance -> int array -> response }

let const n v = Array.make n v

(* Vertex 0 is never fixed by sigma (it maps to n), so the honest prover
   always roots the tree there. *)
let honest_root = 0

(* Honest-shaped play for an arbitrary tree root and aggregation
   permutation: echo the root's challenge and send the true subtree sums of
   both matrices, aggregating the b-matrix under [sigma]. The verifiers
   recompute their own b-terms under the true public sigma, so any other
   [sigma] fails their subtree equations deterministically. *)
let respond_with ~root ~sigma params inst challenges =
  let g = inst.graph in
  let size = Graph.n g in
  let f = params.field in
  let tree = Precomp.tree g root in
  let i = challenges.(root) in
  (* One power table for the shared index replaces a modular exponentiation
     per row term in both sums. *)
  let pows = Linear.powers f i ((size * size) + size) in
  let term_a v = Linear.row_hash_pow f ~powers:pows ~n:size ~row:v (Graph.closed_neighborhood g v) in
  let term_b v =
    Linear.row_hash_pow f ~powers:pows ~n:size ~row:(Perm.apply sigma v)
      (Perm.apply_set sigma (Graph.closed_neighborhood g v))
  in
  { index = const size i;
    root = const size root;
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist;
    a = Aggregation.honest_sums f tree ~term:term_a;
    b = Aggregation.honest_sums f tree ~term:term_b
  }

let respond_consistently params inst challenges =
  respond_with ~root:honest_root ~sigma:(Precomp.dsym_sigma ~n:inst.n ~r:inst.r) params inst
    challenges

let honest = { name = "honest"; respond = respond_consistently }

let adversary_consistent = { name = "adversary:consistent"; respond = respond_consistently }

(* Plays the honest aggregation but for the wrong permutation: sigma composed
   with the transposition (0 1). Rejected deterministically, even on YES
   instances. *)
let adversary_wrong_permutation =
  { name = "adversary:wrong-permutation";
    respond =
      (fun params inst challenges ->
        let size = Graph.n inst.graph in
        let sigma =
          Perm.compose (Precomp.dsym_sigma ~n:inst.n ~r:inst.r) (Perm.transposition size 0 1)
        in
        respond_with ~root:honest_root ~sigma params inst challenges)
  }

(* The purely structural conditions (2) and (3) of Definition 5, from the
   point of view of a single node: which edges is [v] allowed / required to
   have? All of it is a function of [v]'s own neighborhood and the public
   parameters (n, r). *)
let structure_ok inst v =
  let g = inst.graph and n = inst.n and r = inst.r in
  let path_prev x = if x = 2 * n then 0 else x - 1 in
  let path_next x = if x = (2 * n) + (2 * r) then n else x + 1 in
  let allowed u w =
    (* Is the edge {u, w} permitted by condition (3)? *)
    let internal_a = u < n && w < n in
    let internal_b = u >= n && u < 2 * n && w >= n && w < 2 * n in
    let path u w = (u >= 2 * n && (w = path_prev u || w = path_next u)) in
    internal_a || internal_b || path u w || path w u
  in
  let neighbors = Graph.neighbors g v in
  let all_allowed = Bitset.fold (fun u acc -> acc && allowed v u) neighbors true in
  let required =
    if v >= 2 * n then Graph.has_edge g v (path_prev v) && Graph.has_edge g v (path_next v)
    else if v = 0 then Graph.has_edge g v (2 * n)
    else if v = n then Graph.has_edge g v ((2 * n) + (2 * r))
    else true
  in
  all_allowed && required

let run_body ?fault ?params ~seed inst prover =
  let g = inst.graph in
  let size = Graph.n g in
  let params = match params with Some p -> p | None -> params_for ~seed inst in
  let f = params.field in
  let sigma = Precomp.dsym_sigma ~n:inst.n ~r:inst.r in
  let net = Network.create ?fault ~seed g in
  let challenges = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let r = prover.respond params inst challenges in
  (* Corrupt hooks flip a bit of the payload at its transmitted width; the
     range checks below catch out-of-range garbles, the hash / tree / equality
     checks catch in-range ones. *)
  let id_corrupt = Fault.flip_int_bit ~bits:(Bits.id size) in
  let field_corrupt = Fault.flip_int_bit ~bits:f.Field.bits in
  let index_bc = Network.broadcast net ~corrupt:field_corrupt ~bits:f.Field.bits r.index in
  let root_bc = Network.broadcast net ~corrupt:id_corrupt ~bits:(Bits.id size) r.root in
  let parent_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id size) r.parent in
  let dist_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id size) r.dist in
  let a_u = Network.unicast net ~corrupt:field_corrupt ~bits:f.Field.bits r.a in
  let b_u = Network.unicast net ~corrupt:field_corrupt ~bits:f.Field.bits r.b in
  let field_ok x = Aggregation.in_range params.p x in
  let powers_of = Linear.powers_memo f ((size * size) + size) in
  let decide v =
    structure_ok inst v
    && Network.broadcast_consistent_at net index_bc v
    && Network.broadcast_consistent_at net root_bc v
    &&
    let i = index_bc.(v) and root = root_bc.(v) in
    Aggregation.in_range size root && field_ok i && field_ok a_u.(v) && field_ok b_u.(v)
    && Aggregation.tree_check g ~root ~parent:parent_u ~dist:dist_u v
    &&
    let children = Aggregation.children g ~parent:parent_u v in
    let neighborhood = Graph.closed_neighborhood g v in
    let pows = powers_of i in
    let own_a = Linear.row_hash_pow f ~powers:pows ~n:size ~row:v neighborhood in
    let own_b =
      Linear.row_hash_pow f ~powers:pows ~n:size ~row:(Perm.apply sigma v)
        (Perm.apply_set sigma neighborhood)
    in
    Aggregation.subtree_equation f ~own:own_a ~claimed:a_u ~children v
    && Aggregation.subtree_equation f ~own:own_b ~claimed:b_u ~children v
    &&
    if v = root then a_u.(v) = b_u.(v) && Perm.apply sigma v <> v && i = challenges.(v) else true
  in
  let accepted = Network.decide net decide in
  Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net)

let run ?fault ?params ~seed inst prover =
  Ids_obs.Obs.span "dsym.run" (fun () -> run_body ?fault ?params ~seed inst prover)
