(** Memoized instance-invariant values shared by the provers.

    The protocol implementations recompute several values per {e response}
    that are fixed for the whole instance: the dSym embedding permutation,
    the honest prover's BFS spanning tree, a nontrivial automorphism, the
    factorial and [n^(n+2)] field bounds. This module routes them through
    {!Ids_engine.Memo} (per-domain shards, [IDS_TRACE] hit/miss counters
    [memo.bfs], [memo.dsym_sigma], [memo.automorphism], [memo.factorial],
    [memo.power_bound]).

    Every entry is a pure function of its key — graph-keyed entries use
    ([Graph.uid], [Graph.version]) so mutation invalidates — hence runs are
    bit-identical to the uncached computation for any domain count. *)

val tree : Ids_graph.Graph.t -> int -> Ids_graph.Spanning_tree.t
(** Memoized {!Spanning_tree.bfs}. Same exceptions on a bad root or a
    disconnected graph (raised on every call; failures are not cached). *)

val dsym_sigma : n:int -> r:int -> Ids_graph.Perm.t
(** Memoized {!Family.dsym_sigma}. *)

val nontrivial_automorphism : Ids_graph.Graph.t -> Ids_graph.Perm.t option
(** Memoized {!Iso.find_nontrivial_automorphism}. *)

val factorial : int -> int
(** Memoized native-int factorial (callers keep arguments small enough not
    to overflow, as before). @raise Invalid_argument on negatives. *)

val power_bound : int -> int -> Ids_bignum.Nat.t
(** [power_bound n e] is a memoized [Nat.pow (Nat.of_int n) e] — Protocol
    2's field bound [n^(n+2)]. @raise Invalid_argument on negatives. *)
