module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Rng = Ids_bignum.Rng

type verdict = { accepted : bool; advice_bits_per_node : int; verification_bits_per_edge : int }

let deterministic_verification_bits g =
  let n = max 2 (Graph.n g) in
  (n * n) + (n * Bits.id n)

(* Fingerprint of an advice copy (matrix encoding + permutation table) as a
   polynomial hash of its serialized bits at point [a]. *)
let fingerprint f a (matrix : string) (rho : int array) =
  let acc = ref f.Field.zero in
  let feed_bit b =
    acc := f.Field.add (f.Field.mul !acc a) (if b then f.Field.one else f.Field.zero)
  in
  String.iter (fun ch -> feed_bit (ch = '1')) matrix;
  Array.iter (fun x -> acc := f.Field.add (f.Field.mul !acc a) (f.Field.of_int (x + 1))) rho;
  !acc

let soundness_error_bound g ~p =
  let n = Graph.n g in
  2. *. float_of_int (Graph.edge_count g) *. float_of_int ((n * n) + n) /. float_of_int p

let verify_sym_body ~seed g (advice : Pls.Lcp_sym.advice) =
  let n = Graph.n g in
  let rng = Rng.create seed in
  if n > 120 then invalid_arg "Rpls.verify_sym: n too large for a native-int field of size ~n^4";
  let p = Ids_bignum.Prime.random_prime_in_int rng (4 * n * n * n * n) (8 * n * n * n * n) in
  let f = Field.int_field p in
  (* Each node draws its index and computes the fingerprint of its own copy
     once; neighbors verify against their own copies. *)
  let indices = Array.init n (fun _ -> f.Field.random rng) in
  let prints = Array.init n (fun u -> fingerprint f indices.(u) advice.Pls.Lcp_sym.matrix.(u) advice.Pls.Lcp_sym.rho.(u)) in
  let check v =
    (* Exact local checks, as in the deterministic scheme. *)
    String.length advice.Pls.Lcp_sym.matrix.(v) = n * n
    && String.sub advice.Pls.Lcp_sym.matrix.(v) (v * n) n = Graph.adjacency_row_bits g v
    && Pls.Lcp_sym.table_is_automorphism n advice.Pls.Lcp_sym.matrix.(v) advice.Pls.Lcp_sym.rho.(v)
    &&
    (* Fingerprint comparison instead of copy comparison. *)
    Bitset.fold
      (fun u acc ->
        acc
        && f.Field.equal prints.(u)
             (fingerprint f indices.(u) advice.Pls.Lcp_sym.matrix.(v) advice.Pls.Lcp_sym.rho.(v)))
      (Graph.neighbors g v) true
  in
  let accepted =
    Array.length advice.Pls.Lcp_sym.matrix = n
    && Array.length advice.Pls.Lcp_sym.rho = n
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (check v) then ok := false
    done;
    !ok
  in
  { accepted;
    advice_bits_per_node = Pls.Lcp_sym.advice_bits g;
    verification_bits_per_edge = 2 * f.Field.bits (* index + fingerprint *)
  }

let verify_sym ~seed g advice =
  Ids_obs.Obs.span "rpls.verify_sym" (fun () -> verify_sym_body ~seed g advice)
