(** The [dAM\[O(log n)\]] protocol for Dumbbell Symmetry (Section 3.3,
    Theorems 1.2 / 3.6) — one half of the exponential separation between
    distributed NP and distributed AM.

    DSym (Definition 5) fixes the candidate automorphism [sigma] in advance
    (the mirror map of a dumbbell with a connecting path), so the Merlin
    commitment round of Protocol 1 can be dropped: what remains is a genuine
    one-round Arthur–Merlin protocol whose every message is [O(log n)] bits,
    while any locally checkable proof for DSym needs [Omega(n^2)] bits
    (Göös–Suomela, reproduced here by the {!Pls.Lcp_sym} baseline).

    The three membership conditions split as:
    + [sigma] is an automorphism — checked with the Protocol 1 hash
      machinery (both hash rows are computable locally because [sigma] is a
      fixed public formula);
    + the connecting path is present — checked locally by the path nodes;
    + no stray edges — checked locally by every node.

    Instances are parameterized by [(n, r)]: side size and half path length;
    all nodes know these (they are part of the language definition). *)

type instance = { n : int; r : int; graph : Ids_graph.Graph.t }

val make_instance : n:int -> r:int -> Ids_graph.Graph.t -> instance
(** @raise Invalid_argument if the vertex count is not [2n + 2r + 1]. *)

type params = { p : int; field : int Ids_hash.Field.t }

val params_for : seed:int -> instance -> params

type response = {
  index : int array;  (** broadcast *)
  root : int array;  (** broadcast *)
  parent : int array;  (** unicast *)
  dist : int array;  (** unicast *)
  a : int array;  (** unicast *)
  b : int array;  (** unicast *)
}

type prover = { name : string; respond : params -> instance -> int array -> response }

val honest : prover

(** {1 Strategy building blocks}

    Exposed so the E17 strategy space ({!Strategy}) can compose cheats from
    the same pieces the registry adversaries use. *)

val respond_with :
  root:int -> sigma:Ids_graph.Perm.t -> params -> instance -> int array -> response
(** Honest-shaped play for an arbitrary tree root and aggregation
    permutation: echo [root]'s challenge and send the true subtree sums of
    both matrices, aggregating the b-matrix under [sigma]. The honest prover
    is [respond_with ~root:0 ~sigma:(Precomp.dsym_sigma ...)]. *)

val run : ?fault:Ids_network.Fault.spec -> ?params:params -> seed:int -> instance -> prover -> Outcome.t
(** One execution. [fault] injects faults into every channel round (see
    {!Ids_network.Fault}); omitted or {!Ids_network.Fault.none} is the exact
    un-faulted path. *)

val adversary_consistent : prover
(** Plays the honest strategy's moves even on NO instances (true subtree
    sums for both matrices); it wins exactly when the fixed [sigma] fails to
    be an automorphism yet the hash collides — probability at most
    [(N^2+N)/p] by Theorem 3.2. This is the optimal adversary against
    structurally valid NO instances, because every other check is
    deterministic. *)

val adversary_wrong_permutation : prover
(** Aggregates the b-matrix under [sigma] composed with a transposition
    instead of the public [sigma]. The verifiers recompute their own b-terms
    from the true [sigma], so the subtree equations fail deterministically:
    rejected with probability 1 even on YES instances. A sanity anchor for
    soundness sweeps. *)
