module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Nat = Ids_bignum.Nat
module Rng = Ids_bignum.Rng

type params = { p : Nat.t; field : Nat.t Field.t }

let params_for ~seed g =
  let n = max 2 (Graph.n g) in
  let rng = Rng.create (seed lxor 0x2a17) in
  let bound = Precomp.power_bound n (n + 2) in
  let p =
    Ids_bignum.Prime.random_prime_in rng (Nat.mul_int bound 10) (Nat.mul_int bound 100)
  in
  { p; field = Field.nat_field p }

type response = {
  rho : int array array;
  index : Nat.t array;
  root : int array;
  parent : int array;
  dist : int array;
  a : Nat.t array;
  b : Nat.t array;
}

type prover = { name : string; respond : params -> Graph.t -> Nat.t array -> response }

let const n v = Array.make n v

(* Consistent play for a given mapping: root moved by [rho], echo of the
   root's challenge, true subtree sums for both matrices. *)
let respond_with_rho params g challenges rho_table =
  let n = Graph.n g in
  let f = params.field in
  let rec moved v = if v >= n then 0 else if rho_table.(v) <> v then v else moved (v + 1) in
  let root = moved 0 in
  let tree = Precomp.tree g root in
  let i = challenges.(root) in
  (* Both sums evaluate every row at the same index: one power table
     replaces a modular exponentiation per row term. *)
  let pows = Linear.powers f i ((n * n) + n) in
  let term_a v = Linear.row_hash_pow f ~powers:pows ~n ~row:v (Graph.closed_neighborhood g v) in
  let term_b v =
    let image = Bitset.create n in
    Bitset.iter (fun u -> Bitset.add image rho_table.(u)) (Graph.closed_neighborhood g v);
    Linear.row_hash_pow f ~powers:pows ~n ~row:rho_table.(v) image
  in
  { rho = const n rho_table;
    index = const n i;
    root = const n root;
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist;
    a = Aggregation.honest_sums f tree ~term:term_a;
    b = Aggregation.honest_sums f tree ~term:term_b
  }

let fallback_table n = Perm.to_array (Perm.transposition n 0 (min 1 (n - 1)))

let honest =
  { name = "honest";
    respond =
      (fun params g challenges ->
        let table =
          match Precomp.nontrivial_automorphism g with
          | Some rho -> Array.init (Graph.n g) (Perm.apply rho)
          | None -> fallback_table (Graph.n g)
        in
        respond_with_rho params g challenges table)
  }

let run_body ?fault ?params ~seed g prover =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sym_dam.run: need at least 2 nodes";
  let params = match params with Some p -> p | None -> params_for ~seed g in
  let f = params.field in
  let net = Network.create ?fault ~seed g in
  let id_corrupt = Fault.flip_int_bit ~bits:(Bits.id n) in
  let nat_corrupt = Fault.flip_nat_bit ~bits:f.Field.bits in
  (* Arthur round. *)
  let challenges = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  (* Merlin round. *)
  let r = prover.respond params g challenges in
  let rho_bc = Network.broadcast net ~corrupt:Fault.swap_entries ~bits:(Bits.perm n) r.rho in
  let index_bc = Network.broadcast net ~corrupt:nat_corrupt ~bits:f.Field.bits r.index in
  let root_bc = Network.broadcast net ~corrupt:id_corrupt ~bits:(Bits.id n) r.root in
  let parent_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) r.parent in
  let dist_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) r.dist in
  let a_u = Network.unicast net ~corrupt:nat_corrupt ~bits:f.Field.bits r.a in
  let b_u = Network.unicast net ~corrupt:nat_corrupt ~bits:f.Field.bits r.b in
  let field_ok x = Nat.compare x params.p < 0 in
  let powers_of = Linear.powers_memo f ((n * n) + n) in
  let decide v =
    Network.broadcast_consistent_at net rho_bc v
    (* Nat values are normalized, so structural and numeric equality agree —
       but state the intent explicitly rather than ride on that invariant. *)
    && Network.broadcast_consistent_at ~equal:Nat.equal net index_bc v
    && Network.broadcast_consistent_at net root_bc v
    &&
    let rho = rho_bc.(v) and i = index_bc.(v) and root = root_bc.(v) in
    Array.length rho = n
    && Array.for_all (Aggregation.in_range n) rho
    && Aggregation.in_range n root
    && field_ok i && field_ok a_u.(v) && field_ok b_u.(v)
    && Aggregation.tree_check g ~root ~parent:parent_u ~dist:dist_u v
    &&
    let neighborhood = Graph.closed_neighborhood g v in
    let children = Aggregation.children g ~parent:parent_u v in
    let pows = powers_of i in
    let own_a = Linear.row_hash_pow f ~powers:pows ~n ~row:v neighborhood in
    let image = Bitset.create n in
    Bitset.iter (fun u -> Bitset.add image rho.(u)) neighborhood;
    let own_b = Linear.row_hash_pow f ~powers:pows ~n ~row:rho.(v) image in
    Aggregation.subtree_equation f ~own:own_a ~claimed:a_u ~children v
    && Aggregation.subtree_equation f ~own:own_b ~claimed:b_u ~children v
    &&
    if v = root then f.Field.equal a_u.(v) b_u.(v) && rho.(v) <> v && Nat.equal i challenges.(v)
    else true
  in
  let accepted = Network.decide net decide in
  Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net)

let run ?fault ?params ~seed g prover =
  Ids_obs.Obs.span "sym_dam.run" (fun () -> run_body ?fault ?params ~seed g prover)

(* --- adversaries ------------------------------------------------------------ *)

let collides params g table pows =
  let f = params.field in
  let n = Graph.n g in
  let ha = Linear.graph_hash_pow f ~powers:pows g in
  let hb =
    let acc = ref f.Field.zero in
    for v = 0 to n - 1 do
      let image = Bitset.create n in
      Bitset.iter (fun u -> Bitset.add image table.(u)) (Graph.closed_neighborhood g v);
      acc := f.Field.add !acc (Linear.row_hash_pow f ~powers:pows ~n ~row:table.(v) image)
    done;
    !acc
  in
  f.Field.equal ha hb

let search_table ?(extra = 20) ~seed params g challenges =
  let n = Graph.n g in
  let rng = Rng.create seed in
  let candidates =
    List.concat
      [ List.concat_map
          (fun u ->
            List.filter_map
              (fun w -> if u < w then Some (Perm.to_array (Perm.transposition n u w)) else None)
              (List.init n Fun.id))
          (List.init n Fun.id);
        List.init extra (fun _ -> Perm.to_array (Perm.random_nonidentity rng n))
      ]
  in
  (* The root the consistent strategy will use is the first vertex the
     mapping moves, so test the collision under that root's challenge.
     At most n distinct roots arise over all candidates, so memoize the
     power tables by challenge index. *)
  let powers_of = Linear.powers_memo params.field ((n * n) + n) in
  let winning table =
    let rec moved v = if v >= n then 0 else if table.(v) <> v then v else moved (v + 1) in
    collides params g table (powers_of challenges.(moved 0))
  in
  match List.find_opt winning candidates with Some t -> t | None -> fallback_table n

let adversary_search =
  { name = "adversary:search";
    respond =
      (fun params g challenges ->
        let seed = Hashtbl.hash (Graph.encode g) lxor 0x9e1 in
        respond_with_rho params g challenges (search_table ~seed params g challenges))
  }

let adversary_random_perm =
  { name = "adversary:random-perm";
    respond =
      (fun params g challenges ->
        let rng = Rng.create (Hashtbl.hash (Graph.encode g) lxor 0x77) in
        let table = Perm.to_array (Perm.random_nonidentity rng (Graph.n g)) in
        respond_with_rho params g challenges table)
  }
