module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Api = Ids_hash.Api
module Rng = Ids_bignum.Rng

type instance = {
  g0 : Graph.t;
  g1 : Graph.t;
  n : int;
  aut0 : int array list Lazy.t;
  aut1 : int array list Lazy.t;
  candidates : (int array * int * int array * (int * Bitset.t) array) array Lazy.t;
}

let automorphism_tables g =
  List.filter_map
    (fun p -> if Iso.is_automorphism g p then Some (Perm.to_array p) else None)
    (Perm.all (Graph.n g))

(* Rows of the hashed object for a candidate (sigma, b, alpha): the 2n-row
   stack of A_{sigma(G_b)} and the permutation matrix of
   beta = sigma alpha sigma^{-1}. Node v owns rows sigma(v) and
   n + sigma(v). *)
let rows_for g sigma alpha =
  let n = Graph.n g in
  Array.init (2 * n) (fun i ->
      if i < n then begin
        let v = i in
        let content = Bitset.create n in
        Bitset.iter (fun u -> Bitset.add content sigma.(u)) (Graph.closed_neighborhood g v);
        (sigma.(v), content)
      end
      else begin
        let v = i - n in
        let content = Bitset.create n in
        Bitset.add content sigma.(alpha.(v));
        (n + sigma.(v), content)
      end)

(* Key identifying the represented pair (H, beta): the map (sigma, alpha) to
   pairs is |Aut|-to-1, so deduplicating by key enumerates S exactly. *)
let pair_key g sigma alpha =
  let n = Graph.n g in
  let h = Graph.relabel g sigma in
  let beta = Array.make n 0 in
  let sigma_inv = Perm.inverse (Perm.of_array sigma) in
  for w = 0 to n - 1 do
    beta.(w) <- sigma.(alpha.(Perm.apply sigma_inv w))
  done;
  Graph.encode h ^ "|" ^ String.concat "," (Array.to_list (Array.map string_of_int beta))

let make_instance g0 g1 =
  let n = Graph.n g0 in
  if Graph.n g1 <> n then invalid_arg "Gni_full.make_instance: size mismatch";
  if n > 7 then invalid_arg "Gni_full.make_instance: n > 7";
  if not (Graph.is_connected g0) then invalid_arg "Gni_full.make_instance: network graph must be connected";
  let aut0 = lazy (automorphism_tables g0) and aut1 = lazy (automorphism_tables g1) in
  let candidates =
    lazy
      (let check_size auts =
         if List.length auts > 256 then
           invalid_arg "Gni_full.make_instance: automorphism group too large to enumerate"
       in
       check_size (Lazy.force aut0);
       check_size (Lazy.force aut1);
       let seen = Hashtbl.create 4096 in
       let acc = ref [] in
       let perms = List.map Perm.to_array (Perm.all n) in
       List.iter
         (fun (g, b, auts) ->
           List.iter
             (fun sigma ->
               List.iter
                 (fun alpha ->
                   (* The key deliberately omits b: S is a set of pairs
                      (H, beta), and for isomorphic inputs the two sides
                      contribute the same pairs — which is the whole point
                      of the size gap. *)
                   let key = pair_key g sigma alpha in
                   if not (Hashtbl.mem seen key) then begin
                     Hashtbl.add seen key ();
                     acc := (sigma, b, alpha, rows_for g sigma alpha) :: !acc
                   end)
                 auts)
             perms)
         [ (g0, 0, Lazy.force aut0); (g1, 1, Lazy.force aut1) ];
       Array.of_list (List.rev !acc))
  in
  { g0; g1; n; aut0; aut1; candidates }

let small_symmetric rng n =
  let rec sample () =
    let g = Graph.random_connected_gnp rng n 0.5 in
    if Iso.is_symmetric g && List.length (automorphism_tables g) <= 48 then g else sample ()
  in
  sample ()

let yes_instance rng n =
  let g0 = small_symmetric rng n in
  let rec pick () =
    let g1 = Ids_graph.Family.random_asymmetric rng n in
    if Iso.are_isomorphic g0 g1 then pick () else g1
  in
  make_instance g0 (pick ())

let no_instance rng n =
  let g0 = small_symmetric rng n in
  make_instance g0 (Graph.relabel g0 (Perm.to_array (Perm.random rng n)))

type params = {
  q : int;
  field : int Field.t;
  copies : int;
  repetitions : int;
  threshold : int;
  factorial : int;
  yes_bound : float;
  no_bound : float;
}

let factorial n = Precomp.factorial n

let params_for ?repetitions ~seed inst =
  let k = Api.default_copies in
  let n = inst.n in
  let fact = factorial n in
  let rng = Rng.create (seed lxor 0x51c7) in
  let q = Ids_bignum.Prime.random_prime_in_int rng (4 * fact) (8 * fact) in
  let fq = float_of_int q and fk = float_of_int fact in
  (* The hashed matrices have 2n rows of width 2n (only the first n columns
     are populated), so the Schwartz–Zippel degree is m = (2n)^2 + 2n. *)
  let m = (2 * n * 2 * n) + (2 * n) in
  let eps = fq *. ((float_of_int m /. fq) ** float_of_int k) in
  let s = 2. *. fk in
  let yes = (s /. fq) -. (s *. s *. (1. +. eps) /. (2. *. fq *. fq)) in
  (* NO side: genuine preimages (K/q) plus a committed fake automorphism
     slipping past the post-commitment audit ((n^2+n)/q). *)
  let no = (fk /. fq) +. (float_of_int ((n * n) + n) /. fq) in
  let repetitions = match repetitions with Some t -> t | None -> 600 in
  let threshold = Stats.midpoint_threshold ~trials:repetitions ~yes_rate:yes ~no_rate:no in
  { q;
    field = Field.int_field q;
    copies = k;
    repetitions;
    threshold;
    factorial = fact;
    yes_bound = yes;
    no_bound = no
  }

(* --- preimage search ---------------------------------------------------------- *)

let hash_rows ~q ~width powtabs (spec : int Api.spec) rows =
  let k = Array.length spec.Api.points in
  let y = ref spec.Api.shift in
  for i = 0 to k - 1 do
    let pows = powtabs.(i) in
    let z = ref 0 in
    Array.iter
      (fun (idx, content) ->
        let p = Bitset.fold (fun w acc -> (acc + pows.(w + 1)) mod q) content 0 in
        z := (!z + (pows.(idx * width) * p)) mod q)
      rows;
    y := (!y + (spec.Api.coeffs.(i) * !z)) mod q
  done;
  !y

let power_tables ~q ~m (spec : int Api.spec) =
  Array.map
    (fun a ->
      let t = Array.make (m + 1) 1 in
      for i = 1 to m do
        t.(i) <- t.(i - 1) * a mod q
      done;
      t)
    spec.Api.points

let find_preimage params inst spec target =
  let q = params.q in
  let width = 2 * inst.n in
  let powtabs = power_tables ~q ~m:((width * width) + width) spec in
  let cands = Lazy.force inst.candidates in
  let rec scan i =
    if i >= Array.length cands then None
    else begin
      let sigma, b, alpha, rows = cands.(i) in
      if hash_rows ~q ~width powtabs spec rows = target then Some (sigma, b, alpha) else scan (i + 1)
    end
  in
  scan 0

(* --- protocol ------------------------------------------------------------------ *)

type challenge = { specs : int Api.spec array; targets : int array }

type commit = {
  miss : bool array;
  b : int array;
  sigma : int array array;
  alpha : int array array;
  root : int array;
  spec_echo : int Api.spec array;
  target_echo : int array;
  parent : int array;
  dist : int array;
}

type reveal = {
  audit_echo : int array;
  agg : int array array;  (* k main aggregates per node *)
  c_agg : int array;  (* Lemma 3.1 check: sum of [v, N_b(v)] *)
  d_agg : int array;  (* sum of [alpha(v), alpha(N_b(v))] *)
}

type prover = {
  name : string;
  commit : params -> instance -> challenge -> commit;
  reveal : params -> instance -> challenge -> commit -> int array -> reveal;
}

let prover_name p = p.name

let const n v = Array.make n v

let honest_root = 0

let own_rows inst sigma b alpha v =
  let g = if b = 0 then inst.g0 else inst.g1 in
  let n = inst.n in
  let matrix_content = Bitset.create n in
  Bitset.iter (fun u -> Bitset.add matrix_content sigma.(u)) (Graph.closed_neighborhood g v);
  let auto_content = Bitset.create n in
  Bitset.add auto_content sigma.(alpha.(v));
  [ (sigma.(v), matrix_content); (n + sigma.(v), auto_content) ]

let identity_table n = Array.init n Fun.id

let commit_with params inst (ch : challenge) search =
  let n = inst.n in
  let tree = Precomp.tree inst.g0 honest_root in
  let spec = ch.specs.(honest_root) and target = ch.targets.(honest_root) in
  let miss, sigma, b, alpha =
    match search params inst spec target with
    | Some (sigma, b, alpha) -> (false, sigma, b, alpha)
    | None -> (true, identity_table n, 0, identity_table n)
  in
  { miss = const n miss;
    b = const n b;
    sigma = const n sigma;
    alpha = const n alpha;
    root = const n honest_root;
    spec_echo = const n spec;
    target_echo = const n target;
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist
  }

let honest_reveal params inst (_ch : challenge) (c : commit) audit =
  let n = inst.n in
  let f = params.field in
  let root = c.root.(0) in
  let tree = { Spanning_tree.root; parent = Array.copy c.parent; dist = Array.copy c.dist } in
  let spec = c.spec_echo.(0) and sigma = c.sigma.(0) and alpha = c.alpha.(0) and b = c.b.(0) in
  let audit_point = audit.(root) in
  let k = params.copies in
  if c.miss.(0) then
    { audit_echo = const n audit_point;
      agg = Array.init n (fun _ -> Array.make k 0);
      c_agg = Array.make n 0;
      d_agg = Array.make n 0
    }
  else begin
    let width = 2 * n in
    let g = if b = 0 then inst.g0 else inst.g1 in
    let term v =
      List.fold_left
        (fun acc (row, content) -> Api.combine f acc (Api.row_term f spec ~n:width ~row content))
        (Api.zero_term f ~k)
        (own_rows inst sigma b alpha v)
    in
    let c_term v = Linear.row_hash f audit_point ~n ~row:v (Graph.closed_neighborhood g v) in
    let d_term v =
      let image = Bitset.create n in
      Bitset.iter (fun u -> Bitset.add image alpha.(u)) (Graph.closed_neighborhood g v);
      Linear.row_hash f audit_point ~n ~row:alpha.(v) image
    in
    let per_copy = Array.init k (fun i -> Aggregation.honest_sums f tree ~term:(fun v -> (term v).(i))) in
    { audit_echo = const n audit_point;
      agg = Array.init n (fun v -> Array.init k (fun i -> per_copy.(i).(v)));
      c_agg = Aggregation.honest_sums f tree ~term:c_term;
      d_agg = Aggregation.honest_sums f tree ~term:d_term
    }
  end

let honest =
  { name = "honest";
    commit = (fun params inst ch -> commit_with params inst ch find_preimage);
    reveal = honest_reveal
  }

let adversary_fake_automorphism =
  { name = "adversary:fake-automorphism";
    commit =
      (fun params inst ch ->
        (* Inflate the candidate set with non-automorphisms: much easier to
           hit the target, but the audit will expose the commitment. *)
        let inflated params inst spec target =
          match find_preimage params inst spec target with
          | Some _ as hit -> hit
          | None ->
            let n = inst.n in
            let q = params.q in
            let width = 2 * n in
            let powtabs = power_tables ~q ~m:((width * width) + width) spec in
            let rng = Rng.create 4242 in
            let fakes =
              List.filter
                (fun t -> not (Iso.is_automorphism inst.g0 (Perm.of_array t)))
                (List.init 8 (fun _ -> Perm.to_array (Perm.random rng n)))
            in
            let perms = List.map Perm.to_array (Perm.all n) in
            let hit = ref None in
            List.iter
              (fun sigma ->
                List.iter
                  (fun alpha ->
                    if !hit = None then begin
                      let rows = rows_for inst.g0 sigma alpha in
                      if hash_rows ~q ~width powtabs spec rows = target then
                        hit := Some (sigma, 0, alpha)
                    end)
                  fakes)
              perms;
            !hit
        in
        commit_with params inst ch inflated);
    reveal = honest_reveal
  }

let run_repetition params inst net prover =
  let n = inst.n in
  let f = params.field in
  let k = params.copies in
  let g0 = inst.g0 in
  let width = 2 * n in
  let spec_bits = Api.spec_bits f ~k in
  let specs = Network.challenge net ~bits:spec_bits (fun rng -> Api.random_spec f ~k rng) in
  let targets = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let ch = { specs; targets } in
  let c = prover.commit params inst ch in
  let miss_bc = Network.broadcast net ~bits:1 c.miss in
  let b_bc = Network.broadcast net ~bits:1 c.b in
  let sigma_bc = Network.broadcast net ~bits:(Bits.perm n) c.sigma in
  let alpha_bc = Network.broadcast net ~bits:(Bits.perm n) c.alpha in
  let root_bc = Network.broadcast net ~bits:(Bits.id n) c.root in
  let spec_echo_bc = Network.broadcast net ~bits:spec_bits c.spec_echo in
  let target_echo_bc = Network.broadcast net ~bits:f.Field.bits c.target_echo in
  let parent_u = Network.unicast net ~bits:(Bits.id n) c.parent in
  let dist_u = Network.unicast net ~bits:(Bits.id n) c.dist in
  let audit = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let r = prover.reveal params inst ch c audit in
  let audit_echo_bc = Network.broadcast net ~bits:f.Field.bits r.audit_echo in
  let agg_u = Network.unicast net ~bits:(k * f.Field.bits) r.agg in
  let c_agg_u = Network.unicast net ~bits:f.Field.bits r.c_agg in
  let d_agg_u = Network.unicast net ~bits:f.Field.bits r.d_agg in
  let field_ok x = Aggregation.in_range params.q x in
  let is_perm table =
    Array.length table = n
    && Array.for_all (Aggregation.in_range n) table
    &&
    let seen = Array.make n false in
    Array.iter (fun x -> if Aggregation.in_range n x then seen.(x) <- true) table;
    Array.for_all Fun.id seen
  in
  let valid_at v =
    Network.broadcast_consistent_at net miss_bc v
    && Network.broadcast_consistent_at net b_bc v
    && Network.broadcast_consistent_at net sigma_bc v
    && Network.broadcast_consistent_at net alpha_bc v
    && Network.broadcast_consistent_at net root_bc v
    && Network.broadcast_consistent_at net spec_echo_bc v
    && Network.broadcast_consistent_at net target_echo_bc v
    && Network.broadcast_consistent_at net audit_echo_bc v
    && (not miss_bc.(v))
    &&
    let sigma = sigma_bc.(v) and alpha = alpha_bc.(v) and root = root_bc.(v) in
    let spec = spec_echo_bc.(v) and target = target_echo_bc.(v) in
    let audit_pt = audit_echo_bc.(v) in
    (b_bc.(v) = 0 || b_bc.(v) = 1)
    && is_perm sigma && is_perm alpha
    && Aggregation.in_range n root
    && field_ok target && field_ok audit_pt
    && Array.for_all field_ok spec.Api.points
    && Array.for_all field_ok spec.Api.coeffs
    && field_ok spec.Api.shift
    && Array.length spec.Api.points = k
    && Array.length agg_u.(v) = k
    && Array.for_all field_ok agg_u.(v)
    && field_ok c_agg_u.(v) && field_ok d_agg_u.(v)
    && Aggregation.tree_check g0 ~root ~parent:parent_u ~dist:dist_u v
    &&
    let children = Aggregation.children g0 ~parent:parent_u v in
    let g = if b_bc.(v) = 0 then inst.g0 else inst.g1 in
    let term =
      List.fold_left
        (fun acc (row, content) -> Api.combine f acc (Api.row_term f spec ~n:width ~row content))
        (Api.zero_term f ~k)
        (own_rows inst sigma b_bc.(v) alpha v)
    in
    let c_term = Linear.row_hash f audit_pt ~n ~row:v (Graph.closed_neighborhood g v) in
    let d_term =
      let image = Bitset.create n in
      Bitset.iter (fun u -> Bitset.add image alpha.(u)) (Graph.closed_neighborhood g v);
      Linear.row_hash f audit_pt ~n ~row:alpha.(v) image
    in
    let copy_ok i =
      let expected = List.fold_left (fun acc u -> f.Field.add acc agg_u.(u).(i)) term.(i) children in
      f.Field.equal agg_u.(v).(i) expected
    in
    let rec all_copies i = i >= k || (copy_ok i && all_copies (i + 1)) in
    all_copies 0
    && Aggregation.subtree_equation f ~own:c_term ~claimed:c_agg_u ~children v
    && Aggregation.subtree_equation f ~own:d_term ~claimed:d_agg_u ~children v
    &&
    if v = root then
      f.Field.equal (Api.finalize f spec agg_u.(v)) target
      && f.Field.equal c_agg_u.(v) d_agg_u.(v)
      && spec = specs.(v) && target = targets.(v) && audit_pt = audit.(v)
    else true
  in
  Array.init n valid_at

let run_single ?params ~seed inst prover =
  Ids_obs.Obs.span "gni_full.run_single" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ~seed inst.g0 in
      let valid = run_repetition params inst net prover in
      let accepted = Array.for_all Fun.id valid in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))

let run ?params ~seed inst prover =
  Ids_obs.Obs.span "gni_full.run" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ~seed inst.g0 in
      let counts = Array.make inst.n 0 in
      for _rep = 1 to params.repetitions do
        let valid = run_repetition params inst net prover in
        Array.iteri (fun v ok -> if ok then counts.(v) <- counts.(v) + 1) valid
      done;
      let accepted = Array.for_all (fun cnt -> cnt >= params.threshold) counts in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))
