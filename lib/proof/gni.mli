(** The [dAMAM\[O(n log n)\]] protocol for Graph Non-Isomorphism (Section 4,
    Theorem 1.5): a distributed version of the Goldwasser–Sipser set-size
    estimation protocol.

    {2 Setting}

    The network graph is [G_0]; every node [v] additionally receives its row
    of a second graph [G_1] as input (Definition 4). Following the paper we
    restrict to {e asymmetric} [G_0, G_1] (the unrestricted case composes
    with the Symmetry protocol of Section 3.2), so the set

    {v S = { sigma(G_b) : sigma a permutation, b in {0,1} } v}

    has size exactly [2 n!] when [(G_0, G_1) in GNI] and [n!] otherwise.

    {2 One repetition (the A-M-A-M pattern)}

    + {b Arthur} — every node draws a candidate hash spec for the
      {!Ids_hash.Api} family (inner evaluation points, outer coefficients)
      and a candidate target [y in [q]]; the tree root's will bind.
    + {b Merlin} — commits: broadcasts the root [r], an echo of [r]'s spec
      and target (each node checks the echo against its own draw when it is
      the root), the bit [b], the full permutation [sigma] and the
      spanning-tree labels — claiming [h(A_{sigma(G_b)}) = y]. When no
      preimage exists the honest prover signals a miss.
    + {b Arthur} — every node draws a fresh {e audit} point for a second,
      post-commitment linear hash of the committed matrix.
    + {b Merlin} — reveals the subtree aggregates of the inner hash vector
      and of the audit hash, up the spanning tree.

    Each node recomputes its own row's contribution — row [sigma(v)] of
    [A_{sigma(G_b)}] with content [sigma(N_b(v))], all computable locally
    from the broadcast [sigma] — checks the aggregation equations, and the
    root checks that the outer layer of the aggregate equals [y]. Every
    message is [O(n log n)] bits ([q = Theta(n!)], so one field element is
    [Theta(n log n)] bits; [sigma] is [n log n] bits).

    The conference paper does not spell out which values travel in which of
    the four rounds; DESIGN.md documents the substitution above. The audit
    round preserves the paper's A-M-A-M pattern and adds a post-commitment
    consistency hash; soundness rests on the deterministic aggregate checks
    plus the root's target equation, exactly as in the GS analysis.

    {2 Amplification}

    With [q] a prime in [\[4 n!, 8 n!\]] and the {!Ids_hash.Api} parameters,
    one repetition accepts with probability at least
    [(2 n!/q)(1 - (1+eps)/4)] on YES instances and at most [n!/q] on NO
    instances. The full protocol runs [t] independent repetitions and each
    node accepts iff at least [tau t] of them looked valid locally; the
    root's count is the sound one (only it verifies the target equation).
    The default [t] puts both error probabilities below 1/3 (Definition 2). *)

type instance = private {
  g0 : Ids_graph.Graph.t;
  g1 : Ids_graph.Graph.t;
  n : int;
  candidates : (int array * int * (int * Ids_graph.Bitset.t) array) array Lazy.t;
      (** All [(sigma, b, rows of A_{sigma(G_b)})], precomputed for the
          unbounded prover's preimage searches. *)
}

val make_instance : Ids_graph.Graph.t -> Ids_graph.Graph.t -> instance
(** @raise Invalid_argument if the sizes differ, [g0] is disconnected,
    either graph is symmetric (the paper's restriction), or [n > 8] (the
    exhaustive prover scans [2 n!] permutations). *)

val yes_instance : Ids_bignum.Rng.t -> int -> instance
(** A random non-isomorphic pair of asymmetric graphs ([(G_0,G_1) in GNI]). *)

val no_instance : Ids_bignum.Rng.t -> int -> instance
(** [G_1] is a random relabeling of [G_0] ([(G_0,G_1) not in GNI]). *)

type params = {
  q : int;  (** hash range: a prime in [\[4 n!, 8 n!\]] *)
  field : int Ids_hash.Field.t;
  copies : int;  (** inner copies [k] of the API hash *)
  repetitions : int;
  threshold : int;  (** per-node acceptance count *)
  factorial : int;  (** [n!] *)
  yes_bound : float;  (** analytical single-repetition YES lower bound *)
  no_bound : float;  (** analytical single-repetition NO upper bound *)
}

val params_for : ?repetitions:int -> seed:int -> instance -> params

val yes_rate_bound : params -> float
(** The analytical lower bound on the single-repetition acceptance
    probability for YES instances. *)

val no_rate_bound : params -> float
(** The analytical upper bound for NO instances ([n!/q]). *)

type prover

val prover_name : prover -> string

val honest : prover

val adversary_forge_aggregates : prover
(** On repetitions with no genuine preimage, claims one anyway and forges
    the root's aggregate so the target equation passes; the root's own
    aggregation check then fails, so the forged repetitions never count. *)

val adversary_biased_hash : prover
(** Never admits a miss: always commits to [(identity, g0)] and reveals
    honestly for that commitment, betting on the identity hash landing on
    the target — a per-repetition hit rate of about [1/q], far below the
    honest rate, so the amplified protocol rejects it. *)

(** {1 Parameterized cheats (the E17 strategy space)} *)

type commit_mode =
  [ `Search  (** Honest preimage search; a miss is admitted (and loses). *)
  | `Deny of [ `Identity | `Random of int ]
    (** Honest search, but a miss is never admitted: commit to the given
        table (with [b = 0]) and hope — hopeless, since the failed search
        already ruled the table out, so the rate equals [`Search]'s. The
        [int] seeds the random table, keeping the cheat replayable. *)
  | `Always_identity
    (** Skip the search entirely and always commit to [(identity, g0)] —
        {!adversary_biased_hash}'s bet, winning with probability ~[1/q]. *)
  ]

type reveal_mode =
  [ `Honest
  | `Patch_root
    (** Patch the root's first inner aggregate so the outer target equation
        passes; the root's own aggregation check then fails instead. *)
  ]

val cheat : name:string -> commit:commit_mode -> reveal:reveal_mode -> prover
(** Compose a cheating prover from the two knobs above. The registry
    adversaries are instances: {!adversary_forge_aggregates} is
    [`Deny (`Random 99)] + [`Patch_root], {!adversary_biased_hash} is
    [`Always_identity] + [`Honest]. *)

val run_single :
  ?fault:Ids_network.Fault.spec -> ?params:params -> seed:int -> instance -> prover -> Outcome.t
(** One repetition; [accepted] means all nodes found it locally valid (a
    "hit"). Used to measure the single-repetition acceptance rates that the
    GS analysis predicts. [fault] injects faults into every channel round
    (see {!Ids_network.Fault}). *)

val run :
  ?fault:Ids_network.Fault.spec -> ?params:params -> seed:int -> instance -> prover -> Outcome.t
(** The full amplified protocol: [params.repetitions] repetitions, per-node
    counting, global accept iff every node's count reaches the threshold.
    [fault] injects faults into every channel round of every repetition: a
    dropped message (or challenge) invalidates the affected node for exactly
    the repetition it occurred in, so completeness degrades with the drop
    rate, while crashed nodes are judged once at the final decision per the
    spec's crash mode ({!Ids_network.Fault.Crash_reject} forces rejection,
    [Crash_vacuous] skips their counts). *)
