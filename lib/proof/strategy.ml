module Graph = Ids_graph.Graph
module Perm = Ids_graph.Perm
module Family = Ids_graph.Family
module Fault = Ids_network.Fault
module Field = Ids_hash.Field
module Nat = Ids_bignum.Nat
module Rng = Ids_bignum.Rng
module Search = Ids_engine.Search

type protocol = Sym_dmam | Sym_dam | Dsym | Gni

let protocol_label = function
  | Sym_dmam -> "sym_dmam"
  | Sym_dam -> "sym_dam"
  | Dsym -> "dsym"
  | Gni -> "gni"

let protocols = [ Sym_dmam; Sym_dam; Dsym; Gni ]

let protocol_of_label s = List.find_opt (fun p -> protocol_label p = s) protocols

let axis_names = function
  | Sym_dmam -> [| "perm"; "split"; "sums"; "echo"; "fault" |]
  | Sym_dam -> [| "perm"; "sums"; "echo"; "fault" |]
  | Dsym -> [| "perm"; "root"; "sums"; "echo"; "fault" |]
  | Gni -> [| "commit"; "reveal"; "fault" |]

let sums_levels = [| "consistent"; "forge-root-b"; "offset-b" |]
let echo_levels = [| "root"; "skew" |]
let fault_levels = [| "none"; "equivocate"; "crash-vacuous" |]

let levels = function
  | Sym_dmam ->
    [| [| "fallback"; "random"; "identity"; "rotation" |];
       [| "none"; "root" |];
       sums_levels; echo_levels; fault_levels
    |]
  | Sym_dam ->
    [| [| "search"; "fallback"; "random"; "identity" |]; sums_levels; echo_levels; fault_levels |]
  | Dsym -> [| [| "sigma"; "swapped" |]; [| "zero"; "one" |]; sums_levels; echo_levels; fault_levels |]
  | Gni ->
    [| [| "search"; "deny-identity"; "deny-random"; "identity-always" |];
       [| "honest"; "patch-root" |];
       fault_levels
    |]

let space p =
  let names = axis_names p and lv = levels p in
  Array.mapi
    (fun i name -> { Search.name; cardinality = Array.length lv.(i) })
    names

let fault_axis p = Array.length (axis_names p) - 1

type t = { protocol : protocol; seed : int; point : int array }

let make protocol ~seed point =
  let lv = levels protocol in
  if Array.length point <> Array.length lv then
    invalid_arg
      (Printf.sprintf "Strategy.make: %s takes %d axes, got %d" (protocol_label protocol)
         (Array.length lv) (Array.length point));
  Array.iteri
    (fun i v ->
      if v < 0 || v >= Array.length lv.(i) then
        invalid_arg
          (Printf.sprintf "Strategy.make: axis %s has %d levels, got %d"
             (axis_names protocol).(i) (Array.length lv.(i)) v))
    point;
  { protocol; seed; point = Array.copy point }

let equal a b = a.protocol = b.protocol && a.seed = b.seed && a.point = b.point

(* --- codec -------------------------------------------------------------------- *)

let encode t =
  let names = axis_names t.protocol and lv = levels t.protocol in
  let fields =
    Array.to_list (Array.mapi (fun i v -> Printf.sprintf "%s=%s" names.(i) lv.(i).(v)) t.point)
  in
  String.concat " "
    ([ "strategy"; "v1"; protocol_label t.protocol; Printf.sprintf "seed=%d" t.seed ] @ fields)

let decode line =
  let toks = Array.of_list (List.filter (( <> ) "") (String.split_on_char ' ' line)) in
  let len = Array.length toks in
  let err i msg = Error (Printf.sprintf "token %d: %s in %S" i msg line) in
  let need i what =
    if i <= len then Ok toks.(i - 1)
    else Error (Printf.sprintf "token %d: truncated (expected %s) in %S" i what line)
  in
  let ( let* ) = Result.bind in
  let key_value i what tok =
    match String.index_opt tok '=' with
    | Some j -> Ok (String.sub tok 0 j, String.sub tok (j + 1) (String.length tok - j - 1))
    | None -> err i (Printf.sprintf "expected %s, got %S" what tok)
  in
  let* magic = need 1 "\"strategy\"" in
  let* () = if magic = "strategy" then Ok () else err 1 (Printf.sprintf "expected \"strategy\", got %S" magic) in
  let* version = need 2 "version \"v1\"" in
  let* () =
    if version = "v1" then Ok () else err 2 (Printf.sprintf "unknown version %S (expected \"v1\")" version)
  in
  let* label = need 3 "a protocol name" in
  let* protocol =
    match protocol_of_label label with
    | Some p -> Ok p
    | None ->
      err 3
        (Printf.sprintf "unknown protocol %S (expected %s)" label
           (String.concat " | " (List.map protocol_label protocols)))
  in
  let* seed_tok = need 4 "seed=<int>" in
  let* key, value = key_value 4 "seed=<int>" seed_tok in
  let* () = if key = "seed" then Ok () else err 4 (Printf.sprintf "unknown field %S (expected \"seed\")" key) in
  let* seed =
    match int_of_string_opt value with
    | Some s -> Ok s
    | None -> err 4 (Printf.sprintf "seed %S is not an integer" value)
  in
  let names = axis_names protocol and lv = levels protocol in
  let k = Array.length names in
  let point = Array.make k 0 in
  let rec axes i =
    if i >= k then Ok ()
    else begin
      let pos = 5 + i in
      let* tok = need pos (Printf.sprintf "field %S" names.(i)) in
      let* key, value = key_value pos (Printf.sprintf "%s=<level>" names.(i)) tok in
      let* () =
        if key = names.(i) then Ok ()
        else err pos (Printf.sprintf "unknown field %S (expected %S)" key names.(i))
      in
      let* v =
        let rec find j =
          if j >= Array.length lv.(i) then
            err pos
              (Printf.sprintf "unknown level %S for field %S (expected %s)" value names.(i)
                 (String.concat " | " (Array.to_list lv.(i))))
          else if lv.(i).(j) = value then Ok j
          else find (j + 1)
        in
        find 0
      in
      point.(i) <- v;
      axes (i + 1)
    end
  in
  let* () = axes 0 in
  if len > 4 + k then err (5 + k) (Printf.sprintf "trailing token %S" toks.(4 + k))
  else Ok { protocol; seed; point }

(* --- fault knob --------------------------------------------------------------- *)

let fault_of t =
  match t.point.(fault_axis t.protocol) with
  | 0 -> Fault.none
  | 1 -> Fault.equivocate_only
  | _ -> Fault.make ~crash:0.1 ~crash_mode:Fault.Crash_vacuous ()

let fault_param t =
  let f = fault_of t in
  if Fault.is_none f then None else Some f

(* --- response distortions ----------------------------------------------------- *)

(* Shared by the three symmetry-style protocols, generic in the field
   carrier (int for sym_dmam/dsym, Nat for sym_dam). *)

let tweak_sums (type e) (f : e Field.t) ~root ~level ~(a : e array) (b : e array) =
  match level with
  | 0 -> b
  | 1 ->
    (* Force the root comparison a_r = b_r to pass; the root's own subtree
       equation for b then fails. *)
    let b = Array.copy b in
    b.(root) <- a.(root);
    b
  | _ -> Array.map (fun x -> f.Field.add x f.Field.one) b

let tweak_echo (type e) (f : e Field.t) ~level (index : e array) =
  if level = 0 then index else Array.map (fun x -> f.Field.add x f.Field.one) index

let check t want fn =
  if t.protocol <> want then
    invalid_arg (Printf.sprintf "Strategy.%s: strategy is for %s" fn (protocol_label t.protocol))

(* --- provers ------------------------------------------------------------------ *)

let sym_dmam_prover t =
  check t Sym_dmam "sym_dmam_prover";
  let perm = t.point.(0) and split = t.point.(1) and sums = t.point.(2) and echo = t.point.(3) in
  let rho_for g =
    let n = Graph.n g in
    match perm with
    | 0 -> Sym_dmam.fallback_rho g
    | 1 ->
      (* At seed 0 this is exactly the registry random-perm draw. *)
      Perm.random_nonidentity (Rng.create (Hashtbl.hash (Graph.encode g) + t.seed)) n
    | 2 -> Perm.identity n
    | _ -> Perm.of_array (Array.init n (fun i -> (i + 1) mod n))
  in
  { Sym_dmam.name = encode t;
    commit =
      (fun _params g ->
        let c = Sym_dmam.commit_with_rho g (rho_for g) in
        if split = 0 then c
        else begin
          (* Claim a different root to vertex 0 than to everyone else. *)
          let root = Array.copy c.Sym_dmam.root in
          root.(0) <- (if root.(0) = 0 then 1 else 0);
          { c with Sym_dmam.root }
        end);
    respond =
      (fun params g c challenges ->
        let f = params.Sym_dmam.field in
        let r = Sym_dmam.respond_consistently params g c challenges in
        let root = c.Sym_dmam.root.(0) in
        { r with
          Sym_dmam.b = tweak_sums f ~root ~level:sums ~a:r.Sym_dmam.a r.Sym_dmam.b;
          index = tweak_echo f ~level:echo r.Sym_dmam.index
        })
  }

let sym_dam_prover t =
  check t Sym_dam "sym_dam_prover";
  let perm = t.point.(0) and sums = t.point.(1) and echo = t.point.(2) in
  { Sym_dam.name = encode t;
    respond =
      (fun params g challenges ->
        let n = Graph.n g in
        let table =
          match perm with
          | 0 ->
            (* At seed 0 this is exactly the registry collision search. *)
            Sym_dam.search_table
              ~seed:((Hashtbl.hash (Graph.encode g) lxor 0x9e1) + t.seed)
              params g challenges
          | 1 -> Sym_dam.fallback_table n
          | 2 ->
            Perm.to_array
              (Perm.random_nonidentity
                 (Rng.create ((Hashtbl.hash (Graph.encode g) lxor 0x77) + t.seed))
                 n)
          | _ -> Array.init n Fun.id
        in
        let r = Sym_dam.respond_with_rho params g challenges table in
        let f = params.Sym_dam.field in
        let root = r.Sym_dam.root.(0) in
        { r with
          Sym_dam.b = tweak_sums f ~root ~level:sums ~a:r.Sym_dam.a r.Sym_dam.b;
          index = tweak_echo f ~level:echo r.Sym_dam.index
        })
  }

let dsym_prover t =
  check t Dsym "dsym_prover";
  let perm = t.point.(0) and root_ax = t.point.(1) and sums = t.point.(2) and echo = t.point.(3) in
  { Dsym.name = encode t;
    respond =
      (fun params inst challenges ->
        let size = Graph.n inst.Dsym.graph in
        let sigma = Precomp.dsym_sigma ~n:inst.Dsym.n ~r:inst.Dsym.r in
        let sigma = if perm = 0 then sigma else Perm.compose sigma (Perm.transposition size 0 1) in
        let root = root_ax in
        let r = Dsym.respond_with ~root ~sigma params inst challenges in
        let f = params.Dsym.field in
        { r with
          Dsym.b = tweak_sums f ~root ~level:sums ~a:r.Dsym.a r.Dsym.b;
          index = tweak_echo f ~level:echo r.Dsym.index
        })
  }

let gni_prover t =
  check t Gni "gni_prover";
  let commit =
    match t.point.(0) with
    | 0 -> `Search
    | 1 -> `Deny `Identity
    | 2 ->
      (* At seed 0 this is exactly the registry forge-aggregates table. *)
      `Deny (`Random (99 + t.seed))
    | _ -> `Always_identity
  in
  let reveal = if t.point.(1) = 0 then `Honest else `Patch_root in
  Gni.cheat ~name:(encode t) ~commit ~reveal

(* --- frontier cases ----------------------------------------------------------- *)

type frontier_case = {
  protocol : protocol;
  label : string;
  n : int;
  space : Search.space;
  bound : float;
  bound_label : string;
  strategy_of : Search.point -> t;
  trial : Search.point -> int -> Ids_engine.Accum.trial;
  registry : (string * (int -> Ids_engine.Accum.trial)) list;
}

(* Fixed NO instances derived from hard-coded seeds: the frontier is a
   property of one instance, so every process measures the same curves and
   the tier-1 pins can assert exact acceptance counts. *)
let frontier_cases () =
  let trial_of = Stats.trial_of_outcome in
  let sym_dmam_case =
    let g = Family.random_asymmetric (Rng.create 21) 8 in
    let params = Sym_dmam.params_for ~seed:3 g in
    let strategy_of pt = make Sym_dmam ~seed:0 pt in
    { protocol = Sym_dmam;
      label = "sym_dmam";
      n = 8;
      space = space Sym_dmam;
      bound = float_of_int ((8 * 8) + 8) /. float_of_int params.Sym_dmam.p;
      bound_label = "(n^2+n)/p";
      strategy_of;
      trial =
        (fun pt seed ->
          let s = strategy_of pt in
          trial_of (Sym_dmam.run ?fault:(fault_param s) ~params ~seed g (sym_dmam_prover s)));
      registry =
        List.map
          (fun (name, p) -> (name, fun seed -> trial_of (Sym_dmam.run ~params ~seed g p)))
          Adversary.sym_dmam
    }
  in
  let sym_dam_case =
    let g = Family.random_asymmetric (Rng.create 22) 6 in
    let params = Sym_dam.params_for ~seed:3 g in
    let p_float =
      match Nat.to_int_opt params.Sym_dam.p with
      | Some p -> float_of_int p
      | None -> Float.infinity
    in
    let strategy_of pt = make Sym_dam ~seed:0 pt in
    { protocol = Sym_dam;
      label = "sym_dam";
      n = 6;
      space = space Sym_dam;
      bound = (6. ** 6.) *. float_of_int ((6 * 6) + 6) /. p_float;
      bound_label = "n^n (n^2+n)/p";
      strategy_of;
      trial =
        (fun pt seed ->
          let s = strategy_of pt in
          trial_of (Sym_dam.run ?fault:(fault_param s) ~params ~seed g (sym_dam_prover s)));
      registry =
        List.map
          (fun (name, p) -> (name, fun seed -> trial_of (Sym_dam.run ~params ~seed g p)))
          Adversary.sym_dam
    }
  in
  let dsym_case =
    let side = 6 and r = 1 in
    let core = Family.random_asymmetric (Rng.create 23) side in
    let inst = Dsym.make_instance ~n:side ~r (Family.dsym_perturbed (Rng.create 24) core r) in
    let params = Dsym.params_for ~seed:3 inst in
    let size = (2 * side) + (2 * r) + 1 in
    let strategy_of pt = make Dsym ~seed:0 pt in
    { protocol = Dsym;
      label = "dsym";
      n = size;
      space = space Dsym;
      bound = float_of_int ((size * size) + size) /. float_of_int params.Dsym.p;
      bound_label = "(N^2+N)/p";
      strategy_of;
      trial =
        (fun pt seed ->
          let s = strategy_of pt in
          trial_of (Dsym.run ?fault:(fault_param s) ~params ~seed inst (dsym_prover s)));
      registry =
        List.map
          (fun (name, p) -> (name, fun seed -> trial_of (Dsym.run ~params ~seed inst p)))
          Adversary.dsym
    }
  in
  let gni_case =
    let inst = Gni.no_instance (Rng.create 25) 6 in
    let params = Gni.params_for ~seed:3 inst in
    let strategy_of pt = make Gni ~seed:0 pt in
    { protocol = Gni;
      label = "gni";
      n = 6;
      space = space Gni;
      bound = Gni.no_rate_bound params;
      bound_label = "n!/q";
      strategy_of;
      trial =
        (fun pt seed ->
          let s = strategy_of pt in
          trial_of (Gni.run_single ?fault:(fault_param s) ~params ~seed inst (gni_prover s)));
      registry =
        List.map
          (fun (name, p) -> (name, fun seed -> trial_of (Gni.run_single ~params ~seed inst p)))
          Adversary.gni
    }
  in
  [ sym_dmam_case; sym_dam_case; dsym_case; gni_case ]
