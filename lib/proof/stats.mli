(** Acceptance-rate estimation over repeated protocol executions.

    Definition 2's correctness thresholds (2/3 for YES instances, 1/3 for NO
    instances) are probabilities over Arthur's coins; the experiments
    estimate them by running a protocol many times with fresh seeds.

    Estimation is delegated to the parallel deterministic engine
    ({!Ids_engine.Engine}): trials are keyed by seed, so every entry point
    here returns bit-identical results for any worker count. *)

type estimate = {
  trials : int;
  accepts : int;
  rate : float;
  mean_bits : float;  (** Mean over trials of the max-per-node bit cost. *)
  max_bits : int;  (** Maximum over trials of the same. *)
}

val acceptance : trials:int -> (int -> Outcome.t) -> estimate
(** [acceptance ~trials run] executes [run seed] for [seed = 1 .. trials].
    Sequential-compatible shim over the engine (single worker): the result
    is identical to what the historical sequential loop produced. *)

val acceptance_ci :
  ?domains:int -> trials:int -> (int -> Outcome.t) -> Ids_engine.Engine.estimate
(** Like {!acceptance} but parallel (default worker count
    {!Ids_engine.Engine.default_domains}) and with Wilson confidence
    intervals in the richer engine estimate. *)

val threshold_ci :
  ?domains:int ->
  ?plan:Ids_engine.Sprt.plan ->
  max_trials:int ->
  (int -> Outcome.t) ->
  Ids_engine.Engine.estimate * Ids_engine.Sprt.decision option
(** Sequential-probability-ratio early stopping for Definition 2 threshold
    questions (default plan {!Ids_engine.Sprt.definition2}): stops as soon
    as the evidence decides "rate >= 2/3" vs "rate <= 1/3". *)

val midpoint_threshold : trials:int -> yes_rate:float -> no_rate:float -> int
(** [midpoint_threshold ~trials ~yes_rate ~no_rate] is the accept-count
    threshold [ceil (trials * (yes_rate + no_rate) / 2)], clamped to
    [\[0, trials\]], with exactly-integer midpoints snapped before the ceil
    so float noise cannot charge an extra accept (the GNI protocols accept
    at a node iff its accept count reaches this value, [>=]). Requires
    [trials > 0]. *)

val trial_of_outcome : Outcome.t -> Ids_engine.Accum.trial
(** The engine's view of one execution: acceptance bit plus the
    max-per-node bit cost. The adapter every estimator here uses; exposed
    for callers driving {!Ids_engine.Engine} or {!Ids_engine.Sweep}
    directly. *)

val of_engine : Ids_engine.Engine.estimate -> estimate

val pp : Format.formatter -> estimate -> unit
