(** Protocol 1: the [dMAM\[O(log n)\]] protocol for Graph Symmetry
    (Theorem 1.1, Section 3.1).

    Rounds, exactly as in the paper's Protocol 1 box:

    + {b Merlin} — broadcast a claimed spanning-tree root [r]; unicast to
      each node [v] its claimed image [rho_v] under a non-trivial
      automorphism, its claimed parent [t_v] and distance [d_v];
    + {b Arthur} — each node sends a random hash index [i_v in \[|H|\]];
    + {b Merlin} — broadcast an index [i] (claimed to be the root's
      challenge); unicast claimed subtree hash values [a_v, b_v in \[p\]].

    Every value is [O(log n)] bits: the hash family is Theorem 3.2's with a
    prime [p in \[10 n^3, 100 n^3\]].

    Verification (each node locally): broadcast consistency, the spanning
    tree checks of the Korman–Kutten–Peleg labeling, and the two hash-sum
    equations of Line 3. The root additionally checks [a_r = b_r],
    [rho_r <> r], and that [i] really is its own challenge — the step that
    forces the prover to commit to [rho] {e before} learning the hash index.

    Note on Line 3: the paper's text defines the [b]-row via the images of
    the node's {e children}; as the proof of Lemma 3.3 makes clear, the row
    of the permuted matrix [rho(A_G)] owned by [v] is
    [\[rho(v), rho(N(v))\]], computable because [v] sees [rho_u] for every
    neighbor [u]. We implement that (mathematically consistent) version. *)

type params = { p : int; field : int Ids_hash.Field.t }

val params_for : seed:int -> Ids_graph.Graph.t -> params
(** A random prime in Theorem 3.2's interval [\[10 n^3, 100 n^3\]]. *)

(** Prover-supplied values. Broadcast fields are per-node arrays too, so
    that adversaries can attempt inconsistent broadcasts (which the
    neighbor-comparison check catches on connected graphs). *)
type commitment = {
  root : int array;  (** broadcast *)
  rho : int array;  (** unicast: claimed image of each node *)
  parent : int array;  (** unicast *)
  dist : int array;  (** unicast *)
}

type response = {
  index : int array;  (** broadcast: the echoed hash index *)
  a : int array;  (** unicast: claimed subtree hashes of [A_G] *)
  b : int array;  (** unicast: claimed subtree hashes of [rho(A_G)] *)
}

type prover = {
  name : string;
  commit : params -> Ids_graph.Graph.t -> commitment;
  respond : params -> Ids_graph.Graph.t -> commitment -> int array -> response;
      (** Receives all nodes' challenges, like the paper's unbounded Merlin. *)
}

val honest : prover
(** Finds a non-trivial automorphism by exact search and follows the
    protocol. On an asymmetric (or disconnected) graph it has no valid
    strategy and plays a losing commitment. *)

(** {1 Strategy building blocks}

    Exposed so the E17 strategy space ({!Strategy}) can compose cheats from
    the same pieces the registry adversaries use. *)

val commit_with_rho : Ids_graph.Graph.t -> Ids_graph.Perm.t -> commitment
(** A well-formed commitment to the given permutation: a spanning tree
    rooted at a vertex [rho] moves (vertex 0 if it moves none). *)

val respond_consistently :
  params -> Ids_graph.Graph.t -> commitment -> int array -> response
(** Consistent second-round play for whatever [rho] was committed: echo the
    root's challenge and send the true subtree sums for both matrices. *)

val fallback_rho : Ids_graph.Graph.t -> Ids_graph.Perm.t
(** The honest prover's losing but well-formed move when the graph is
    asymmetric: the transposition [(0 1)]. *)

val run :
  ?fault:Ids_network.Fault.spec -> ?params:params -> seed:int -> Ids_graph.Graph.t -> prover -> Outcome.t
(** Execute the protocol once. The seed drives Arthur's coins (and the
    default prime choice). [fault] injects faults into every channel round
    (see {!Ids_network.Fault}); omitted or {!Ids_network.Fault.none} is the
    exact un-faulted path. *)

(** {1 Adversaries and analysis} *)

val adversary_random_perm : prover
(** Commits to a uniformly random non-identity permutation and otherwise
    plays consistently; on an asymmetric graph it wins only on a hash
    collision, i.e. with probability at most [(n^2+n)/p < 1/(9n)]. *)

val adversary_forged_sums : prover
(** Plays consistent [a]-sums but forges the [b]-sums so that the root
    comparison [a_r = b_r] passes; some node's Line-3 equation must then
    fail, so this adversary always loses. *)

val adversary_identity : prover
(** Commits to the identity; the root's [rho_r <> r] check rejects it. *)

val adversary_split_broadcast : prover
(** Sends different "broadcast" roots to the two endpoints of some edge;
    the neighbor-comparison check rejects it. *)

val acceptance_probability_exact : params -> Ids_graph.Graph.t -> Ids_graph.Perm.t -> float
(** Exact probability (over the hash index) that the consistent prover
    committed to [rho] makes all nodes accept: the fraction of indices
    [i in \[p\]] with [h_i(A_G) = h_i(rho(A_G))]. For an automorphism this is
    1; otherwise at most [(n^2+n)/p]. *)

val best_adversary_bound : ?sample:int -> seed:int -> params -> Ids_graph.Graph.t -> float
(** Upper envelope of {!acceptance_probability_exact} over all transpositions
    plus [sample] random permutations — an empirical stand-in for the
    "for all provers" quantifier on NO instances. *)
