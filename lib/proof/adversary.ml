module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Fault = Ids_network.Fault
module Rng = Ids_bignum.Rng

(* --- per-protocol registries -------------------------------------------------- *)

let sym_dmam : (string * Sym_dmam.prover) list =
  [ ("random-perm", Sym_dmam.adversary_random_perm);
    ("forged-sums", Sym_dmam.adversary_forged_sums);
    ("identity", Sym_dmam.adversary_identity);
    ("split-broadcast", Sym_dmam.adversary_split_broadcast)
  ]

let sym_dam : (string * Sym_dam.prover) list =
  [ ("search", Sym_dam.adversary_search); ("random-perm", Sym_dam.adversary_random_perm) ]

let dsym : (string * Dsym.prover) list =
  [ ("consistent", Dsym.adversary_consistent);
    ("wrong-permutation", Dsym.adversary_wrong_permutation)
  ]

let gni : (string * Gni.prover) list =
  [ ("forge-aggregates", Gni.adversary_forge_aggregates);
    ("biased-hash", Gni.adversary_biased_hash)
  ]

let names registry = List.map fst registry

let lookup registry name =
  match List.assoc_opt name registry with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown strategy %S (known: %s)" name (String.concat ", " (names registry)))

(* The sweep cases below name their strategies by registry key; resolving
   through [lookup] keeps the two lists from drifting apart. *)
let resolve registry name =
  match lookup registry name with Ok p -> p | Error e -> invalid_arg ("Adversary.cases: " ^ e)

(* --- the PLS baseline's forger ------------------------------------------------ *)

let pls_off_by_one g root =
  let a = Pls.Tree.honest g root in
  { a with Pls.Tree.dist = Array.map succ a.Pls.Tree.dist }

let run_pls_off_by_one g root =
  let advice = pls_off_by_one g root in
  let v = Pls.Tree.verify g advice in
  let bits = v.Pls.advice_bits_per_node in
  (* The baseline has no prover channel, so advice bits play every role. *)
  { Outcome.accepted = v.Pls.accepted;
    max_bits_per_node = bits;
    max_response_bits = bits;
    total_bits = bits * Graph.n g;
    prover = "adversary:off-by-one-dist"
  }

(* --- fixed sweep cases -------------------------------------------------------- *)

type kind = Completeness | Soundness

type case = {
  protocol : string;
  strategy : string;
  kind : kind;
  n : int;
  run : fault:Fault.spec -> int -> Outcome.t;
}

let kind_to_string = function Completeness -> "completeness" | Soundness -> "soundness"

(* Small fixed instances so one sweep point stays cheap; everything below is
   derived from hard-coded seeds, so the cases are the same in every process.
   Completeness cases accept with probability 1 at fault zero (the anchor a
   degradation curve needs); soundness cases reject with the probability the
   respective analysis bounds. *)
let cases () =
  let fault_or_none fault = if Fault.is_none fault then None else Some fault in
  let sym_cases =
    let yes_g = Family.random_symmetric (Rng.create 11) 12 in
    let no_g = Family.random_asymmetric (Rng.create 12) 12 in
    [ { protocol = "sym_dmam"; strategy = "honest"; kind = Completeness; n = 12;
        run = (fun ~fault seed -> Sym_dmam.run ?fault:(fault_or_none fault) ~seed yes_g Sym_dmam.honest)
      };
      (let strategy = "random-perm" in
       { protocol = "sym_dmam"; strategy; kind = Soundness; n = 12;
         run =
           (fun ~fault seed ->
             Sym_dmam.run ?fault:(fault_or_none fault) ~seed no_g (resolve sym_dmam strategy))
       })
    ]
  in
  let dsym_cases =
    let side = 8 and r = 2 in
    let core = Family.random_asymmetric (Rng.create 13) side in
    let yes = Dsym.make_instance ~n:side ~r (Family.dsym_graph core r) in
    let vertices = (2 * side) + (2 * r) + 1 in
    [ { protocol = "dsym"; strategy = "honest"; kind = Completeness; n = vertices;
        run = (fun ~fault seed -> Dsym.run ?fault:(fault_or_none fault) ~seed yes Dsym.honest)
      };
      (let strategy = "consistent" in
       { protocol = "dsym"; strategy; kind = Soundness; n = vertices;
         run =
           (fun ~fault seed ->
             (* Per-seed perturbation: trial functions must be pure in the seed. *)
             let bad =
               Dsym.make_instance ~n:side ~r
                 (Family.dsym_perturbed (Rng.create (31 + seed)) core r)
             in
             Dsym.run ?fault:(fault_or_none fault) ~seed bad (resolve dsym strategy))
       });
      (let strategy = "wrong-permutation" in
       { protocol = "dsym"; strategy; kind = Soundness; n = vertices;
         run =
           (fun ~fault seed ->
             Dsym.run ?fault:(fault_or_none fault) ~seed yes (resolve dsym strategy))
       })
    ]
  in
  let dam_cases =
    let yes_g = Family.random_symmetric (Rng.create 14) 8 in
    let no_g = Family.random_asymmetric (Rng.create 15) 8 in
    (* The prime search is the expensive part of a Sym_dam trial; share one
       parameter draw across all trials like the bench harness does. *)
    let yes_params = Sym_dam.params_for ~seed:7 yes_g in
    let no_params = Sym_dam.params_for ~seed:7 no_g in
    [ { protocol = "sym_dam"; strategy = "honest"; kind = Completeness; n = 8;
        run =
          (fun ~fault seed ->
            Sym_dam.run ?fault:(fault_or_none fault) ~params:yes_params ~seed yes_g Sym_dam.honest)
      };
      (let strategy = "random-perm" in
       { protocol = "sym_dam"; strategy; kind = Soundness; n = 8;
         run =
           (fun ~fault seed ->
             Sym_dam.run ?fault:(fault_or_none fault) ~params:no_params ~seed no_g
               (resolve sym_dam strategy))
       })
    ]
  in
  let gni_cases =
    let inst = Gni.no_instance (Rng.create 16) 6 in
    let params = Gni.params_for ~seed:7 inst in
    [ (let strategy = "biased-hash" in
       { protocol = "gni"; strategy; kind = Soundness; n = 6;
         run =
           (fun ~fault seed ->
             Gni.run_single ?fault:(fault_or_none fault) ~params ~seed inst
               (resolve gni strategy))
       })
    ]
  in
  let pls_cases =
    let g = Family.random_asymmetric (Rng.create 17) 12 in
    [ { protocol = "pls_tree"; strategy = "off-by-one-dist"; kind = Soundness; n = 12;
        (* The baseline exchanges no prover messages, so faults don't apply. *)
        run = (fun ~fault:_ _seed -> run_pls_off_by_one g 0)
      }
    ]
  in
  sym_cases @ dsym_cases @ dam_cases @ gni_cases @ pls_cases
