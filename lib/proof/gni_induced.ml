module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Api = Ids_hash.Api
module Rng = Ids_bignum.Rng

type instance = {
  g : Graph.t;
  marks : int array;
  n : int;
  k : int;
  h0 : Graph.t;
  h1 : Graph.t;
  candidates : (int array * int * int array * (int * Bitset.t) array) array Lazy.t;
}

let class_members marks b =
  let acc = ref [] in
  Array.iteri (fun v m -> if m = b then acc := v :: !acc) marks;
  List.rev !acc

let induced_of g marks b = Graph.induced g (class_members marks b)

(* Closed neighborhood of [u] within its own class. *)
let class_neighborhood g marks u =
  let s = Bitset.create (Graph.n g) in
  Bitset.add s u;
  Bitset.iter (fun w -> if marks.(w) = marks.(u) then Bitset.add s w) (Graph.neighbors g u);
  s

(* The 2k nonzero rows contributed by the class-b nodes under (psi, alpha). *)
let rows_for inst psi b alpha =
  let n = inst.n in
  List.concat_map
    (fun u ->
      let content = Bitset.create n in
      Bitset.iter (fun w -> Bitset.add content psi.(w)) (class_neighborhood inst.g inst.marks u);
      let auto = Bitset.create n in
      Bitset.add auto psi.(alpha.(u));
      [ (psi.(u), content); ((n + psi.(u), auto)) ])
    (class_members inst.marks b)
  |> Array.of_list

(* Bijections of the class that preserve induced adjacency — Aut(H_b) in
   original-id space, including the identity. Enumerated over the k! maps. *)
let class_automorphisms g marks b =
  let members = Array.of_list (class_members marks b) in
  let k = Array.length members in
  let preserves table =
    let ok = ref true in
    Array.iter
      (fun u ->
        Array.iter
          (fun w -> if u < w && Graph.has_edge g u w <> Graph.has_edge g table.(u) table.(w) then ok := false)
          members)
      members;
    !ok
  in
  List.filter_map
    (fun p ->
      let table = Array.init (Array.length marks) Fun.id in
      Array.iteri (fun i u -> table.(u) <- members.(Perm.apply p i)) members;
      if preserves table then Some table else None)
    (Perm.all k)

let permutations_count n k =
  let rec go acc i = if i = 0 then acc else go (acc * (n - i + 1)) (i - 1) in
  go 1 k

let make_instance g marks =
  let n = Graph.n g in
  if Array.length marks <> n then invalid_arg "Gni_induced.make_instance: marks length mismatch";
  Array.iter (fun m -> if m < -1 || m > 1 then invalid_arg "Gni_induced.make_instance: bad mark") marks;
  if not (Graph.is_connected g) then invalid_arg "Gni_induced.make_instance: network must be connected";
  let c0 = class_members marks 0 and c1 = class_members marks 1 in
  let k = List.length c0 in
  if List.length c1 <> k || k = 0 then invalid_arg "Gni_induced.make_instance: classes must be equal-sized";
  if k > 5 then invalid_arg "Gni_induced.make_instance: k > 5 (the prover scans P(n,k) * k! pairs)";
  if permutations_count n k > 1 lsl 21 then
    invalid_arg "Gni_induced.make_instance: candidate set too large to enumerate";
  let inst_no_cands =
    { g;
      marks;
      n;
      k;
      h0 = induced_of g marks 0;
      h1 = induced_of g marks 1;
      candidates = lazy [||]
    }
  in
  let candidates =
    lazy
      (let seen = Hashtbl.create 4096 in
       let acc = ref [] in
       (* One full permutation per injection: place the class members, fill
          the rest in increasing order. Distinct objects are deduped by
          their serialized rows. *)
       let rec injections chosen remaining =
         if remaining = 0 then [ List.rev chosen ]
         else
           List.concat_map
             (fun t -> if List.mem t chosen then [] else injections (t :: chosen) (remaining - 1))
             (List.init n Fun.id)
       in
       let complete_perm members targets =
         let psi = Array.make n (-1) in
         List.iter2 (fun u t -> psi.(u) <- t) members targets;
         let used = Array.make n false in
         Array.iter (fun t -> if t >= 0 then used.(t) <- true) psi;
         let free = ref (List.filter (fun t -> not used.(t)) (List.init n Fun.id)) in
         Array.iteri
           (fun v t ->
             if t < 0 then begin
               match !free with
               | f :: rest ->
                 psi.(v) <- f;
                 free := rest
               | [] -> assert false
             end)
           psi;
         psi
       in
       let serialize rows =
         String.concat ";"
           (List.map (fun (i, s) -> Printf.sprintf "%d:%s" i (Format.asprintf "%a" Bitset.pp s))
              (List.sort Stdlib.compare (Array.to_list rows)))
       in
       List.iter
         (fun b ->
           let members = class_members marks b in
           let auts = class_automorphisms g marks b in
           List.iter
             (fun targets ->
               let psi = complete_perm members targets in
               List.iter
                 (fun alpha ->
                   let rows = rows_for inst_no_cands psi b alpha in
                   let key = serialize rows in
                   if not (Hashtbl.mem seen key) then begin
                     Hashtbl.add seen key ();
                     acc := (psi, b, alpha, rows) :: !acc
                   end)
                 auts)
             (injections [] k))
         [ 0; 1 ];
       Array.of_list (List.rev !acc))
  in
  { inst_no_cands with candidates }

let plant rng ~n ~h0 ~h1 =
  let k = Graph.n h0 in
  if Graph.n h1 <> k then invalid_arg "Gni_induced.plant: side sizes differ";
  if n < 2 * k then invalid_arg "Gni_induced.plant: need n >= 2k";
  let rec attempt tries =
    if tries = 0 then failwith "Gni_induced.plant: could not build a connected instance"
    else begin
      let order = Array.init n Fun.id in
      Rng.shuffle rng order;
      let marks = Array.make n (-1) in
      let c0 = Array.sub order 0 k and c1 = Array.sub order k k in
      Array.iter (fun v -> marks.(v) <- 0) c0;
      Array.iter (fun v -> marks.(v) <- 1) c1;
      let g = Graph.make n in
      (* Background edges between nodes of different classes (or unmarked). *)
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if (marks.(u) <> marks.(v) || marks.(u) = -1) && Rng.float rng < 0.4 then Graph.add_edge g u v
        done
      done;
      (* Planted induced structure inside each class. *)
      let plant_side members h =
        List.iter (fun (i, j) -> Graph.add_edge g members.(i) members.(j)) (Graph.edges h)
      in
      plant_side c0 h0;
      plant_side c1 h1;
      if Graph.is_connected g then make_instance g marks else attempt (tries - 1)
    end
  in
  attempt 50

let p4 = Graph.path 4
let k13 = Graph.star 4

let yes_instance rng n = plant rng ~n ~h0:p4 ~h1:k13
let no_instance rng n = plant rng ~n ~h0:p4 ~h1:p4

type params = {
  q : int;
  field : int Field.t;
  copies : int;
  repetitions : int;
  threshold : int;
  set_size : int;
  yes_bound : float;
  no_bound : float;
}

let params_for ?repetitions ~seed inst =
  let kcopies = Api.default_copies in
  let n = inst.n in
  let set_size = permutations_count n inst.k in
  let rng = Rng.create (seed lxor 0x77aa) in
  let q = Ids_bignum.Prime.random_prime_in_int rng (4 * set_size) (8 * set_size) in
  let fq = float_of_int q and fk = float_of_int set_size in
  let m = (2 * n * 2 * n) + (2 * n) in
  let eps = fq *. ((float_of_int m /. fq) ** float_of_int kcopies) in
  let s = 2. *. fk in
  let yes = (s /. fq) -. (s *. s *. (1. +. eps) /. (2. *. fq *. fq)) in
  let no = (fk /. fq) +. (float_of_int m /. fq) in
  let repetitions = match repetitions with Some t -> t | None -> 600 in
  let threshold = Stats.midpoint_threshold ~trials:repetitions ~yes_rate:yes ~no_rate:no in
  { q;
    field = Field.int_field q;
    copies = kcopies;
    repetitions;
    threshold;
    set_size;
    yes_bound = yes;
    no_bound = no
  }

(* --- preimage search ----------------------------------------------------------- *)

let hash_rows ~q ~width powtabs (spec : int Api.spec) rows =
  let k = Array.length spec.Api.points in
  let y = ref spec.Api.shift in
  for i = 0 to k - 1 do
    let pows = powtabs.(i) in
    let z = ref 0 in
    Array.iter
      (fun (idx, content) ->
        let p = Bitset.fold (fun w acc -> (acc + pows.(w + 1)) mod q) content 0 in
        z := (!z + (pows.(idx * width) * p)) mod q)
      rows;
    y := (!y + (spec.Api.coeffs.(i) * !z)) mod q
  done;
  !y

let power_tables ~q ~m (spec : int Api.spec) =
  Array.map
    (fun a ->
      let t = Array.make (m + 1) 1 in
      for i = 1 to m do
        t.(i) <- t.(i - 1) * a mod q
      done;
      t)
    spec.Api.points

let find_preimage params inst spec target =
  let q = params.q in
  let width = 2 * inst.n in
  let powtabs = power_tables ~q ~m:((width * width) + width) spec in
  let cands = Lazy.force inst.candidates in
  let rec scan i =
    if i >= Array.length cands then None
    else begin
      let psi, b, alpha, rows = cands.(i) in
      if hash_rows ~q ~width powtabs spec rows = target then Some (psi, b, alpha) else scan (i + 1)
    end
  in
  scan 0

(* --- protocol -------------------------------------------------------------------- *)

type challenge = { specs : int Api.spec array; targets : int array }

type commit = {
  miss : bool array;
  b : int array;
  psi : int array array;
  alpha : int array array;
  root : int array;
  spec_echo : int Api.spec array;
  target_echo : int array;
  parent : int array;
  dist : int array;
}

type reveal = {
  audit_echo : int array;
  agg : int array array;
  c_agg : int array;
  d_agg : int array;
}

type prover = {
  name : string;
  commit : params -> instance -> challenge -> commit;
  reveal : params -> instance -> challenge -> commit -> int array -> reveal;
}

let prover_name p = p.name

let const n v = Array.make n v

let honest_root = 0

(* Rows owned by node v: its embedded matrix row and automorphism row when
   marked with the committed class, nothing otherwise. *)
let own_rows inst psi b alpha v =
  if inst.marks.(v) <> b then []
  else begin
    let n = inst.n in
    let content = Bitset.create n in
    Bitset.iter (fun w -> Bitset.add content psi.(w)) (class_neighborhood inst.g inst.marks v);
    let auto = Bitset.create n in
    Bitset.add auto psi.(alpha.(v));
    [ (psi.(v), content); (n + psi.(v), auto) ]
  end

let identity_table n = Array.init n Fun.id

let honest_commit params inst (ch : challenge) =
  let n = inst.n in
  let tree = Precomp.tree inst.g honest_root in
  let spec = ch.specs.(honest_root) and target = ch.targets.(honest_root) in
  let miss, psi, b, alpha =
    match find_preimage params inst spec target with
    | Some (psi, b, alpha) -> (false, psi, b, alpha)
    | None -> (true, identity_table n, 0, identity_table n)
  in
  { miss = const n miss;
    b = const n b;
    psi = const n psi;
    alpha = const n alpha;
    root = const n honest_root;
    spec_echo = const n spec;
    target_echo = const n target;
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist
  }

let honest_reveal params inst (_ch : challenge) (c : commit) audit =
  let n = inst.n in
  let f = params.field in
  let root = c.root.(0) in
  let tree = { Spanning_tree.root; parent = Array.copy c.parent; dist = Array.copy c.dist } in
  let spec = c.spec_echo.(0) and psi = c.psi.(0) and alpha = c.alpha.(0) and b = c.b.(0) in
  let audit_point = audit.(root) in
  let k = params.copies in
  if c.miss.(0) then
    { audit_echo = const n audit_point;
      agg = Array.init n (fun _ -> Array.make k 0);
      c_agg = Array.make n 0;
      d_agg = Array.make n 0
    }
  else begin
    let width = 2 * n in
    let term v =
      List.fold_left
        (fun acc (row, content) -> Api.combine f acc (Api.row_term f spec ~n:width ~row content))
        (Api.zero_term f ~k)
        (own_rows inst psi b alpha v)
    in
    (* The Lemma 3.1 pair on the induced matrix, in original ids. *)
    let c_term v =
      if inst.marks.(v) <> b then 0
      else Linear.row_hash f audit_point ~n ~row:v (class_neighborhood inst.g inst.marks v)
    in
    let d_term v =
      if inst.marks.(v) <> b then 0
      else begin
        let image = Bitset.create n in
        Bitset.iter (fun u -> Bitset.add image alpha.(u)) (class_neighborhood inst.g inst.marks v);
        Linear.row_hash f audit_point ~n ~row:alpha.(v) image
      end
    in
    let per_copy = Array.init k (fun i -> Aggregation.honest_sums f tree ~term:(fun v -> (term v).(i))) in
    { audit_echo = const n audit_point;
      agg = Array.init n (fun v -> Array.init k (fun i -> per_copy.(i).(v)));
      c_agg = Aggregation.honest_sums f tree ~term:c_term;
      d_agg = Aggregation.honest_sums f tree ~term:d_term
    }
  end

let honest = { name = "honest"; commit = honest_commit; reveal = honest_reveal }

let run_repetition params inst net prover =
  let n = inst.n in
  let f = params.field in
  let k = params.copies in
  let width = 2 * n in
  let spec_bits = Api.spec_bits f ~k in
  let specs = Network.challenge net ~bits:spec_bits (fun rng -> Api.random_spec f ~k rng) in
  let targets = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let ch = { specs; targets } in
  let c = prover.commit params inst ch in
  let miss_bc = Network.broadcast net ~bits:1 c.miss in
  let b_bc = Network.broadcast net ~bits:1 c.b in
  let psi_bc = Network.broadcast net ~bits:(Bits.perm n) c.psi in
  let alpha_bc = Network.broadcast net ~bits:(Bits.perm n) c.alpha in
  let root_bc = Network.broadcast net ~bits:(Bits.id n) c.root in
  let spec_echo_bc = Network.broadcast net ~bits:spec_bits c.spec_echo in
  let target_echo_bc = Network.broadcast net ~bits:f.Field.bits c.target_echo in
  let parent_u = Network.unicast net ~bits:(Bits.id n) c.parent in
  let dist_u = Network.unicast net ~bits:(Bits.id n) c.dist in
  let audit = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  let r = prover.reveal params inst ch c audit in
  let audit_echo_bc = Network.broadcast net ~bits:f.Field.bits r.audit_echo in
  let agg_u = Network.unicast net ~bits:(k * f.Field.bits) r.agg in
  let c_agg_u = Network.unicast net ~bits:f.Field.bits r.c_agg in
  let d_agg_u = Network.unicast net ~bits:f.Field.bits r.d_agg in
  let field_ok x = Aggregation.in_range params.q x in
  let is_perm table =
    Array.length table = n
    && Array.for_all (Aggregation.in_range n) table
    &&
    let seen = Array.make n false in
    Array.iter (fun x -> if Aggregation.in_range n x then seen.(x) <- true) table;
    Array.for_all Fun.id seen
  in
  let valid_at v =
    Network.broadcast_consistent_at net miss_bc v
    && Network.broadcast_consistent_at net b_bc v
    && Network.broadcast_consistent_at net psi_bc v
    && Network.broadcast_consistent_at net alpha_bc v
    && Network.broadcast_consistent_at net root_bc v
    && Network.broadcast_consistent_at net spec_echo_bc v
    && Network.broadcast_consistent_at net target_echo_bc v
    && Network.broadcast_consistent_at net audit_echo_bc v
    && (not miss_bc.(v))
    &&
    let psi = psi_bc.(v) and alpha = alpha_bc.(v) and root = root_bc.(v) in
    let spec = spec_echo_bc.(v) and target = target_echo_bc.(v) in
    let audit_pt = audit_echo_bc.(v) in
    (b_bc.(v) = 0 || b_bc.(v) = 1)
    && is_perm psi
    && Array.length alpha = n
    && Array.for_all (Aggregation.in_range n) alpha
    && Aggregation.in_range n root
    && field_ok target && field_ok audit_pt
    && Array.for_all field_ok spec.Api.points
    && Array.for_all field_ok spec.Api.coeffs
    && field_ok spec.Api.shift
    && Array.length spec.Api.points = k
    && Array.length agg_u.(v) = k
    && Array.for_all field_ok agg_u.(v)
    && field_ok c_agg_u.(v) && field_ok d_agg_u.(v)
    && Aggregation.tree_check inst.g ~root ~parent:parent_u ~dist:dist_u v
    &&
    let children = Aggregation.children inst.g ~parent:parent_u v in
    let term =
      List.fold_left
        (fun acc (row, content) -> Api.combine f acc (Api.row_term f spec ~n:width ~row content))
        (Api.zero_term f ~k)
        (own_rows inst psi b_bc.(v) alpha v)
    in
    let c_term =
      if inst.marks.(v) <> b_bc.(v) then 0
      else Linear.row_hash f audit_pt ~n ~row:v (class_neighborhood inst.g inst.marks v)
    in
    let d_term =
      if inst.marks.(v) <> b_bc.(v) then 0
      else begin
        let image = Bitset.create n in
        Bitset.iter (fun u -> Bitset.add image alpha.(u)) (class_neighborhood inst.g inst.marks v);
        Linear.row_hash f audit_pt ~n ~row:alpha.(v) image
      end
    in
    let copy_ok i =
      let expected = List.fold_left (fun acc u -> f.Field.add acc agg_u.(u).(i)) term.(i) children in
      f.Field.equal agg_u.(v).(i) expected
    in
    let rec all_copies i = i >= k || (copy_ok i && all_copies (i + 1)) in
    all_copies 0
    && Aggregation.subtree_equation f ~own:c_term ~claimed:c_agg_u ~children v
    && Aggregation.subtree_equation f ~own:d_term ~claimed:d_agg_u ~children v
    &&
    if v = root then
      f.Field.equal (Api.finalize f spec agg_u.(v)) target
      && f.Field.equal c_agg_u.(v) d_agg_u.(v)
      && spec = specs.(v) && target = targets.(v) && audit_pt = audit.(v)
    else true
  in
  Array.init n valid_at

let run_single ?params ~seed inst prover =
  Ids_obs.Obs.span "gni_induced.run_single" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ~seed inst.g in
      let valid = run_repetition params inst net prover in
      let accepted = Array.for_all Fun.id valid in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))

let run ?params ~seed inst prover =
  Ids_obs.Obs.span "gni_induced.run" (fun () ->
      let params = match params with Some p -> p | None -> params_for ~seed inst in
      let net = Network.create ~seed inst.g in
      let counts = Array.make inst.n 0 in
      for _rep = 1 to params.repetitions do
        let valid = run_repetition params inst net prover in
        Array.iteri (fun v ok -> if ok then counts.(v) <- counts.(v) + 1) valid
      done;
      let accepted = Array.for_all (fun cnt -> cnt >= params.threshold) counts in
      Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net))
