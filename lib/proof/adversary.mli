(** Registry of named cheating-prover strategies, one per protocol, plus the
    fixed completeness/soundness cases the degradation sweeps run.

    Examples, the demo CLI, and the tests used to each keep a private list
    of adversaries; this module is the single place a strategy gets a name,
    so "which adversaries exist for protocol X" has one answer everywhere.
    Each strategy embodies one way a prover can cheat:

    - Protocol 1 ([sym_dmam]): commit to a wrong permutation (random or
      identity), forge the root's sums, or split a broadcast;
    - Protocol 2 ([sym_dam]): search for a hash collision, or bet on a
      random permutation;
    - DSym ([dsym]): play consistently on a NO instance (the optimal
      adversary), or aggregate under the wrong permutation;
    - GNI ([gni]): forge aggregates after a miss, or never admit a miss
      (biased-hash);
    - the PLS baseline: an off-by-one distance forgery, caught
      deterministically by the tree check. *)

val sym_dmam : (string * Sym_dmam.prover) list
val sym_dam : (string * Sym_dam.prover) list
val dsym : (string * Dsym.prover) list
val gni : (string * Gni.prover) list

val lookup : (string * 'p) list -> string -> ('p, string) result
(** [lookup registry name] finds a strategy by its registry name; the error
    message names every known strategy, ready to show a user. *)

val names : (string * 'p) list -> string list

val pls_off_by_one : Ids_graph.Graph.t -> int -> Pls.Tree.advice
(** Honest spanning-tree advice for the given root with every distance
    incremented by one — locally plausible, globally inconsistent. *)

val run_pls_off_by_one : Ids_graph.Graph.t -> int -> Outcome.t
(** Verify the off-by-one forgery distributively; rejected with probability
    1 (the root sees distance 1 for itself, and every accepted parent edge
    would need the true BFS distances). *)

(** {1 Sweep cases} *)

type kind = Completeness | Soundness

type case = {
  protocol : string;
  strategy : string;
  kind : kind;
  n : int;  (** Network size of the fixed instance. *)
  run : fault:Ids_network.Fault.spec -> int -> Outcome.t;
      (** One seeded trial under the given fault spec ({!Ids_network.Fault.none}
          for the clean baseline). *)
}

val kind_to_string : kind -> string

val cases : unit -> case list
(** The fixed instances the fault sweeps measure: completeness cases accept
    with probability 1 at fault zero, soundness cases reject with at least
    the analytically bounded probability — at every fault rate (soundness
    degrades monotonically in the verifier's favor: faults only add reasons
    to reject). Instances are derived from hard-coded seeds, so the list is
    identical in every process. *)
