type t = { outcome : Outcome.t; accepts : int; trials : int }

let repeat ~trials ~threshold run =
  if trials <= 0 then invalid_arg "Amplify.repeat: need positive trials";
  if threshold < 0 || threshold > trials then invalid_arg "Amplify.repeat: threshold out of range";
  let accepts = ref 0 in
  let max_bits = ref 0 and max_resp = ref 0 and total = ref 0 in
  let name = ref "" in
  for seed = 1 to trials do
    let o = run seed in
    if seed = 1 then name := o.Outcome.prover;
    if o.Outcome.accepted then incr accepts;
    max_bits := !max_bits + o.Outcome.max_bits_per_node;
    max_resp := !max_resp + o.Outcome.max_response_bits;
    total := !total + o.Outcome.total_bits
  done;
  { outcome =
      { Outcome.accepted = !accepts >= threshold;
        max_bits_per_node = !max_bits;
        max_response_bits = !max_resp;
        total_bits = !total;
        prover = Printf.sprintf "%s (x%d)" !name trials
      };
    accepts = !accepts;
    trials
  }

let majority ~trials run = repeat ~trials ~threshold:((trials / 2) + 1) run

let error_bound ~single_rate ~trials ~threshold =
  let tau = float_of_int threshold /. float_of_int trials in
  let gap = Float.abs (single_rate -. tau) in
  exp (-2. *. float_of_int trials *. gap *. gap)

let trials_for ~yes_rate ~no_rate ~delta =
  if yes_rate <= no_rate then invalid_arg "Amplify.trials_for: need yes_rate > no_rate";
  if delta <= 0. || delta >= 1. then invalid_arg "Amplify.trials_for: delta in (0,1)";
  let gap = (yes_rate -. no_rate) /. 2. in
  let t0 = max 1 (int_of_float (ceil (log (1. /. delta) /. (2. *. gap *. gap)))) in
  (* Rounding the threshold up erodes the YES-side gap; grow t until both
     Hoeffding bounds actually meet delta. [error_bound] takes the gap
     through [Float.abs], which reports a bogus small error if a rounded
     threshold ever landed on the wrong side of a rate — so require the
     threshold to sit strictly between the two rates as well. *)
  let rec adjust t =
    let threshold = Stats.midpoint_threshold ~trials:t ~yes_rate ~no_rate in
    let tau = float_of_int threshold /. float_of_int t in
    if
      no_rate < tau && tau < yes_rate
      && error_bound ~single_rate:yes_rate ~trials:t ~threshold <= delta
      && error_bound ~single_rate:no_rate ~trials:t ~threshold <= delta
    then (t, threshold)
    else adjust (t + 1)
  in
  adjust t0
