module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear
module Rng = Ids_bignum.Rng

type params = { p : int; field : int Field.t }

let params_for ~seed g =
  let n = max 2 (Graph.n g) in
  let rng = Rng.create (seed lxor 0x5f3b) in
  let p = Ids_bignum.Prime.random_prime_in_int rng (10 * n * n * n) (100 * n * n * n) in
  { p; field = Field.int_field p }

type commitment = { root : int array; rho : int array; parent : int array; dist : int array }

type response = { index : int array; a : int array; b : int array }

type prover = {
  name : string;
  commit : params -> Graph.t -> commitment;
  respond : params -> Graph.t -> commitment -> int array -> response;
}

let const n v = Array.make n v

(* A spanning tree rooted at a vertex moved by [rho], as the honest prover
   builds it. *)
let tree_for_rho g rho =
  let n = Graph.n g in
  let rec moved v = if v >= n then 0 else if Perm.apply rho v <> v then v else moved (v + 1) in
  Precomp.tree g (moved 0)

let commit_with_rho g rho =
  let n = Graph.n g in
  let tree = tree_for_rho g rho in
  { root = const n tree.Spanning_tree.root;
    rho = Array.init n (Perm.apply rho);
    parent = Array.copy tree.Spanning_tree.parent;
    dist = Array.copy tree.Spanning_tree.dist
  }

(* Consistent second-round play for whatever [rho] was committed: echo the
   root's challenge and send the true subtree sums for both matrices. *)
let respond_consistently params g (c : commitment) challenges =
  let n = Graph.n g in
  let f = params.field in
  let root = c.root.(0) in
  let i = challenges.(root) in
  let tree =
    { Spanning_tree.root; parent = Array.copy c.parent; dist = Array.copy c.dist }
  in
  (* One power table for the shared index replaces a modular exponentiation
     per row term in both sums. *)
  let pows = Linear.powers f i ((n * n) + n) in
  let term_a v = Linear.row_hash_pow f ~powers:pows ~n ~row:v (Graph.closed_neighborhood g v) in
  let rho_of v = c.rho.(v) in
  let term_b v =
    let image = Bitset.create n in
    Bitset.iter (fun u -> Bitset.add image (rho_of u)) (Graph.closed_neighborhood g v);
    Linear.row_hash_pow f ~powers:pows ~n ~row:(rho_of v) image
  in
  { index = const n i;
    a = Aggregation.honest_sums f tree ~term:term_a;
    b = Aggregation.honest_sums f tree ~term:term_b
  }

let fallback_rho g =
  (* A losing but well-formed move for provers with no winning strategy. *)
  Perm.transposition (Graph.n g) 0 (min 1 (Graph.n g - 1))

let honest =
  { name = "honest";
    commit =
      (fun _params g ->
        let rho = Option.value (Precomp.nontrivial_automorphism g) ~default:(fallback_rho g) in
        commit_with_rho g rho);
    respond = respond_consistently
  }

let run_body ?fault ?params ~seed g prover =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sym_dmam.run: need at least 2 nodes";
  let params = match params with Some p -> p | None -> params_for ~seed g in
  let f = params.field in
  let net = Network.create ?fault ~seed g in
  let id_corrupt = Fault.flip_int_bit ~bits:(Bits.id n) in
  let field_corrupt = Fault.flip_int_bit ~bits:f.Field.bits in
  (* Merlin round 1. *)
  let c = prover.commit params g in
  let root_bc = Network.broadcast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.root in
  let rho_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.rho in
  let parent_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.parent in
  let dist_u = Network.unicast net ~corrupt:id_corrupt ~bits:(Bits.id n) c.dist in
  (* Arthur round: random hash indices. *)
  let challenges = Network.challenge net ~bits:f.Field.bits (fun rng -> f.Field.random rng) in
  (* Merlin round 2. *)
  let r = prover.respond params g c challenges in
  let index_bc = Network.broadcast net ~corrupt:field_corrupt ~bits:f.Field.bits r.index in
  let a_u = Network.unicast net ~corrupt:field_corrupt ~bits:f.Field.bits r.a in
  let b_u = Network.unicast net ~corrupt:field_corrupt ~bits:f.Field.bits r.b in
  (* Verification. *)
  let field_ok x = Aggregation.in_range params.p x in
  let powers_of = Linear.powers_memo f ((n * n) + n) in
  let decide v =
    Network.broadcast_consistent_at net root_bc v
    && Network.broadcast_consistent_at net index_bc v
    &&
    let root = root_bc.(v) and i = index_bc.(v) in
    Aggregation.in_range n root && field_ok i && field_ok a_u.(v) && field_ok b_u.(v)
    && Aggregation.tree_check g ~root ~parent:parent_u ~dist:dist_u v
    &&
    (* Every rho value this node relies on must name a vertex. *)
    let neighborhood = Graph.closed_neighborhood g v in
    Bitset.fold (fun u acc -> acc && Aggregation.in_range n rho_u.(u)) neighborhood true
    &&
    let children = Aggregation.children g ~parent:parent_u v in
    let pows = powers_of i in
    let own_a = Linear.row_hash_pow f ~powers:pows ~n ~row:v neighborhood in
    let image = Bitset.create n in
    Bitset.iter (fun u -> Bitset.add image rho_u.(u)) neighborhood;
    let own_b = Linear.row_hash_pow f ~powers:pows ~n ~row:rho_u.(v) image in
    Aggregation.subtree_equation f ~own:own_a ~claimed:a_u ~children v
    && Aggregation.subtree_equation f ~own:own_b ~claimed:b_u ~children v
    &&
    if v = root then f.Field.equal a_u.(v) b_u.(v) && rho_u.(v) <> v && i = challenges.(v)
    else true
  in
  let accepted = Network.decide net decide in
  Outcome.of_cost ~accepted ~prover:prover.name (Network.cost net)

let run ?fault ?params ~seed g prover =
  Ids_obs.Obs.span "sym_dmam.run" (fun () -> run_body ?fault ?params ~seed g prover)

(* --- adversaries ------------------------------------------------------------ *)

let adversary_random_perm =
  { name = "adversary:random-perm";
    commit =
      (fun _params g ->
        let rng = Rng.create (Hashtbl.hash (Graph.encode g)) in
        commit_with_rho g (Perm.random_nonidentity rng (Graph.n g)));
    respond = respond_consistently
  }

let adversary_forged_sums =
  { name = "adversary:forged-sums";
    commit =
      (fun _params g ->
        let rng = Rng.create (Hashtbl.hash (Graph.encode g) lxor 0xf00) in
        commit_with_rho g (Perm.random_nonidentity rng (Graph.n g)));
    respond =
      (fun params g c challenges ->
        let r = respond_consistently params g c challenges in
        (* Force the root comparison to pass; the root's own Line-3 equation
           for b then fails. *)
        let root = c.root.(0) in
        let b = Array.copy r.b in
        b.(root) <- r.a.(root);
        { r with b })
  }

let adversary_identity =
  { name = "adversary:identity";
    commit = (fun _params g -> commit_with_rho g (Perm.identity (Graph.n g)));
    respond = respond_consistently
  }

let adversary_split_broadcast =
  { name = "adversary:split-broadcast";
    commit =
      (fun _params g ->
        let rng = Rng.create (Hashtbl.hash (Graph.encode g) lxor 0xabc) in
        let c = commit_with_rho g (Perm.random_nonidentity rng (Graph.n g)) in
        (* Claim a different root to vertex 0 than to everyone else. *)
        let root = Array.copy c.root in
        root.(0) <- (if root.(0) = 0 then 1 else 0);
        { c with root })
  ; respond = respond_consistently
  }

(* --- analysis ---------------------------------------------------------------- *)

let acceptance_probability_exact params g rho =
  let f = params.field in
  let n = Graph.n g in
  let m = (n * n) + n in
  let collisions = ref 0 in
  for i = 0 to params.p - 1 do
    let powers = Linear.powers f i m in
    let ha = Linear.graph_hash_pow f ~powers g in
    let hb = Linear.permuted_graph_hash_pow f ~powers g rho in
    if ha = hb then incr collisions
  done;
  float_of_int !collisions /. float_of_int params.p

let best_adversary_bound ?(sample = 20) ~seed params g =
  let n = Graph.n g in
  let rng = Rng.create seed in
  let candidates =
    List.concat
      [ List.concat_map
          (fun i -> List.filter_map (fun j -> if i < j then Some (Perm.transposition n i j) else None)
              (List.init n Fun.id))
          (List.init n Fun.id);
        List.init sample (fun _ -> Perm.random_nonidentity rng n)
      ]
  in
  List.fold_left (fun best rho -> Float.max best (acceptance_probability_exact params g rho)) 0. candidates
