(** The declarative cheat-strategy space behind the E17 soundness frontier.

    The soundness theorems quantify over {e every} cheating prover; the
    registry ({!Adversary}) samples that space at a handful of hand-written
    points. This module turns the space itself into a value: per protocol, a
    small grid of typed axes — permutation perturbations, per-round response
    distortions (forged or offset sums, a skewed challenge echo), broadcast
    equivocation, and a fault-model knob — whose points
    {!Ids_engine.Search} can climb. A strategy is a replayable value: the
    protocol, a seed, and one level per axis, with a textual codec
    ({!encode} / {!decode}) so best-found strategies can be pinned in tests
    and serialized into {!Ids_engine.Runlog} prover labels (the provers
    built here carry their encoding as their name).

    {2 Axes}

    Every protocol's last axis is the fault knob
    [none | equivocate | crash-vacuous] (crash-vacuous is the PR2 finding:
    10% crashed nodes judged vacuously). The rest:

    - [sym_dmam] — [perm] (fallback | random | identity | rotation),
      [split] (none | root: split-broadcast the claimed root),
      [sums] (consistent | forge-root-b | offset-b),
      [echo] (root | skew: echo the root's challenge plus one);
    - [sym_dam] — [perm] (search | fallback | random | identity), [sums],
      [echo];
    - [dsym] — [perm] (sigma | swapped), [root] (zero | one), [sums],
      [echo];
    - [gni] — [commit] (search | deny-identity | deny-random |
      identity-always), [reveal] (honest | patch-root).

    At [seed = 0] the graph-keyed random levels coincide exactly with the
    registry adversaries' draws, so every registry cheater (under no
    faults) is a point of the grid and the search dominates the registry by
    construction. *)

type protocol = Sym_dmam | Sym_dam | Dsym | Gni

val protocol_label : protocol -> string
(** ["sym_dmam"], ["sym_dam"], ["dsym"], ["gni"]. *)

val protocol_of_label : string -> protocol option

val axis_names : protocol -> string array

val levels : protocol -> string array array
(** [levels p].(i) are the level labels of axis [i], indexed by level. *)

val space : protocol -> Ids_engine.Search.space

val fault_axis : protocol -> int
(** Index of the fault axis (always the last one) — frozen to level 0 for
    the paper-model frontier. *)

type t = private { protocol : protocol; seed : int; point : int array }
(** One strategy: a grid point plus the seed its randomized levels draw
    from. Build with {!make} or {!decode}. *)

val make : protocol -> seed:int -> int array -> t
(** Validates and copies the point.
    @raise Invalid_argument on a wrong arity or an out-of-range level. *)

val equal : t -> t -> bool

val encode : t -> string
(** A single-line label, e.g.
    ["strategy v1 sym_dmam seed=0 perm=random split=none sums=consistent echo=root fault=none"]. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}: [decode (encode s) = Ok s]. Errors carry the
    1-based token position, what was expected, and the offending line —
    unknown fields, unknown levels, bad seeds, truncated and overlong
    encodings are all rejected. *)

val fault_of : t -> Ids_network.Fault.spec
(** The fault spec the strategy's fault level denotes ([none] ↦
    {!Ids_network.Fault.none}, [equivocate] ↦ equivocation on every
    broadcast, [crash-vacuous] ↦ 10% crashes judged vacuously). *)

(** {1 Prover instantiation}

    Each constructor materializes the strategy as a prover for its
    protocol, with [prover_name = encode t] so run logs record the full
    strategy. @raise Invalid_argument on a protocol mismatch. *)

val sym_dmam_prover : t -> Sym_dmam.prover
val sym_dam_prover : t -> Sym_dam.prover
val dsym_prover : t -> Dsym.prover
val gni_prover : t -> Gni.prover

(** {1 Frontier cases (E17)} *)

type frontier_case = {
  protocol : protocol;
  label : string;
  n : int;  (** Network size of the fixed NO instance. *)
  space : Ids_engine.Search.space;
  bound : float;  (** The paper's per-run soundness bound on this instance. *)
  bound_label : string;  (** e.g. ["(n^2+n)/p"]. *)
  strategy_of : Ids_engine.Search.point -> t;
      (** The seed-0 strategy a search point denotes. *)
  trial : Ids_engine.Search.point -> int -> Ids_engine.Accum.trial;
      (** One seeded protocol run of the point's strategy (faults per its
          fault level) — pure in [(point, seed)], so searches are
          bit-identical across [IDS_DOMAINS]. *)
  registry : (string * (int -> Ids_engine.Accum.trial)) list;
      (** The hand-written registry cheaters on the same instance and
          parameters, for the frontier comparison. *)
}

val frontier_cases : unit -> frontier_case list
(** The four fixed NO instances the frontier measures, one per protocol —
    derived from hard-coded seeds, identical in every process:
    [sym_dmam] (n = 8 asymmetric), [sym_dam] (n = 6 asymmetric),
    [dsym] (side 6, half-path 1, perturbed second side — 15 nodes),
    [gni] (n = 6 isomorphic pair, single repetition, where the honest
    search itself is the strongest cheat at rate ≈ n!/q). *)
