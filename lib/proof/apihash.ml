module Graph = Ids_graph.Graph
module Spanning_tree = Ids_graph.Spanning_tree
module Network = Ids_network.Network
module Fault = Ids_network.Fault
module Bits = Ids_network.Bits
module Field = Ids_hash.Field
module Api = Ids_hash.Api
module Rng = Ids_bignum.Rng

type params = { q : int; field : int Field.t; copies : int }

(* A modulus that makes the eps-API bound meaningful: eps = q (m/q)^k < 1
   needs q > m^(k/(k-1)) for m = n² + n matrix cells, so we draw a seeded
   random prime in [4 m^(3/2), 8 m^(3/2)] (giving eps <= 1/16 at the
   default k = 3).

   Since the wide-limb migration the draw extends past the old 2^30 pin:
   the 2^62 scalar field (C widening mulmod) covers the true §4 prime for
   every m up to 2^40 — n beyond 10^6, the largest committed scale run.
   Above m = 2^40 the interval's lower end 4 m^(3/2) itself outgrows
   max_int = 2^62 - 1, and q caps at the largest prime below 2^62
   (completeness stays exact for every q; soundness eps = m³/q² degrades
   gracefully only past that astronomic point). When max_int truncates the
   interval's upper end 8 m^(3/2), soundness is unaffected: eps <= 1/16
   only needs q >= 4 m^(3/2). *)
let wide_cap_q = 4611686018427387847 (* largest prime below 2^62: 2^62 - 57 *)

(* Largest m with 4 m^(3/2) <= max_int, i.e. m^3 <= 2^120 / 16: m <= 2^40
   means every product below stays in range (4m < 2^43, isqrt m < 2^21). *)
let wide_draw_max_m = 1 lsl 40

(* Floor square root, integer-exact (the float seed is only a first guess,
   so the draw below is deterministic across platforms). *)
let isqrt m =
  let s = ref (int_of_float (sqrt (float_of_int m))) in
  while !s * !s > m do
    decr s
  done;
  while (!s + 1) * (!s + 1) <= m do
    incr s
  done;
  !s

let params_for ?(k = Api.default_copies) ~seed g =
  if k < 1 then invalid_arg "Apihash.params_for: need k >= 1";
  let n = Graph.n g in
  let m = (n * n) + n in
  (* m <= 2^18 is exactly when 8 m^(3/2) <= 2^30: the historical native
     branch, kept verbatim (draw for draw) so every committed small-graph
     estimate and pin is untouched by the scale lift below. *)
  let q =
    if m <= 1 lsl 18 then begin
      let lo = 4 * m * isqrt m in
      Ids_bignum.Prime.random_prime_in_int (Rng.create (seed lxor 0x4a71)) lo (2 * lo)
    end
    else if m <= wide_draw_max_m then begin
      let lo = 4 * m * isqrt m in
      (* 2 * lo can pass max_int near the top of the range; the clamp only
         trims the interval's upper half, which soundness never needed. *)
      let hi = if lo <= max_int / 2 then 2 * lo else max_int in
      Ids_bignum.Prime.random_prime_in_int (Rng.create (seed lxor 0x4a71)) lo hi
    end
    else wide_cap_q
  in
  let field = if q < 1 lsl 31 then Field.int_field q else Field.int62_field q in
  { q; field; copies = k }

let epsilon params ~n =
  Api.epsilon params.field ~n ~k:params.copies ~q:(float_of_int params.q)

(* The prover's whole message, as the honest prover computes it: spanning
   tree labels rooted at [root], per-node subtree aggregates of the k inner
   row hashes, and the claimed hash of the adjacency matrix. [agg] is
   flattened n×k so a million-node advice is one unboxed int array. *)
type advice = {
  root : int;
  parent : int array;
  dist : int array;
  agg : int array;
  claim : int;
}

let honest_advice params (spec : int Api.spec) ~root g =
  let n = Graph.n g in
  let f = params.field and k = params.copies in
  let tree = Spanning_tree.bfs g root in
  let term v = Api.row_term f spec ~n ~row:v (Graph.closed_neighborhood g v) in
  (* One scalar aggregation per inner copy; each [term] call touches one
     node's O(degree) view and is released before the next. *)
  let per_copy = Array.init k (fun i -> Aggregation.honest_sums f tree ~term:(fun v -> (term v).(i))) in
  let agg = Array.init (n * k) (fun j -> per_copy.(j mod k).(j / k)) in
  { root;
    parent = tree.Spanning_tree.parent;
    dist = tree.Spanning_tree.dist;
    agg;
    claim = Api.finalize f spec (Array.init k (fun i -> per_copy.(i).(root)))
  }

type prover = params -> int Api.spec -> root:int -> Graph.t -> advice

let honest : prover = fun params spec ~root g -> honest_advice params spec ~root g

(* Forge the claimed hash without fixing the aggregates: the root's
   finalize equation catches it with probability 1. *)
let adversary_wrong_claim : prover =
 fun params spec ~root g ->
  let a = honest_advice params spec ~root g in
  { a with claim = (a.claim + 1) mod params.q }

(* Patch one node's first inner aggregate: either that node's subtree
   equation or its parent's breaks. *)
let adversary_corrupt_agg node : prover =
 fun params spec ~root g ->
  let a = honest_advice params spec ~root g in
  let agg = Array.copy a.agg in
  let j = node * params.copies in
  agg.(j) <- (agg.(j) + 1) mod params.q;
  { a with agg }

let response_bits_per_node f ~k n =
  (* spec echo + claim + root broadcast, parent + dist + k aggregates
     unicast: Θ(k log n) per node — the §4 budget. *)
  Api.spec_bits f ~k + f.Field.bits + Bits.id n + (2 * Bits.id n) + (k * f.Field.bits)

(* One execution, every round streamed: the Arthur round folds per-node
   spec draws keeping only the root's, the Merlin rounds deliver into flat
   arrays (one machine word or k ints per node), and verification runs
   inside Network.decide — each node's row term is recomputed from its
   shared O(degree) graph row on demand, so no per-node view outlives its
   visit. *)
let run_body ?fault ?(prover = honest) ?k ~seed ~root g =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Apihash.run: root out of range";
  let params = params_for ?k ~seed g in
  let f = params.field and k = params.copies in
  let net = Network.create ?fault ~seed g in
  let spec_bits = Api.spec_bits f ~k in
  (* Arthur: every node draws a spec; the root's draw is the shared one the
     prover must echo. Streamed — n - 1 of the draws die immediately. *)
  let root_spec =
    Network.challenge_fold net ~bits:spec_bits ~gen:(Api.random_spec f ~k) ~init:None
      (fun acc view -> if view.Network.node = root then Some view.Network.value else acc)
  in
  let root_spec = Option.get root_spec in
  let a = prover params root_spec ~root g in
  (* Merlin broadcasts. Delivered copies land in one pointer/int slot per
     node; unfaulted runs share a single spec record across all n slots. *)
  let field_corrupt = Fault.flip_int_bit ~bits:f.Field.bits in
  let spec_corrupt rng (s : int Api.spec) = { s with Api.shift = field_corrupt rng s.Api.shift } in
  let id_corrupt = Fault.flip_int_bit ~bits:(Bits.id n) in
  let spec_bc = Array.make n root_spec in
  Network.broadcast_fold net ~corrupt:spec_corrupt ~bits:spec_bits root_spec ~init:()
    (fun () v -> spec_bc.(v.Network.node) <- v.Network.value);
  let claim_bc = Array.make n 0 in
  Network.broadcast_fold net ~corrupt:field_corrupt ~bits:f.Field.bits a.claim ~init:()
    (fun () v -> claim_bc.(v.Network.node) <- v.Network.value);
  let root_bc = Array.make n 0 in
  Network.broadcast_fold net ~corrupt:id_corrupt ~bits:(Bits.id n) a.root ~init:()
    (fun () v -> root_bc.(v.Network.node) <- v.Network.value);
  (* Merlin unicasts: tree labels and the k-vector of subtree aggregates,
     produced per node on demand. *)
  let parent_bc = Array.make n 0 in
  Network.unicast_fold net ~corrupt:id_corrupt ~bits:(Bits.id n)
    ~respond:(fun v -> a.parent.(v))
    ~init:()
    (fun () v -> parent_bc.(v.Network.node) <- v.Network.value);
  let dist_bc = Array.make n 0 in
  Network.unicast_fold net ~corrupt:id_corrupt ~bits:(Bits.id n)
    ~respond:(fun v -> a.dist.(v))
    ~init:()
    (fun () v -> dist_bc.(v.Network.node) <- v.Network.value);
  let agg_corrupt rng row =
    if Array.length row = 0 then row
    else begin
      let row = Array.copy row in
      let i = Rng.int rng (Array.length row) in
      row.(i) <- field_corrupt rng row.(i);
      row
    end
  in
  let agg_bc = Array.make (n * k) 0 in
  Network.unicast_fold net ~corrupt:agg_corrupt ~bits:(k * f.Field.bits)
    ~respond:(fun v -> Array.init k (fun i -> a.agg.((v * k) + i)))
    ~init:()
    (fun () view ->
      let row = view.Network.value in
      if Array.length row = k then
        Array.blit row 0 agg_bc (view.Network.node * k) k
      else
        (* A cheating prover shipped the wrong arity; poison the slot so the
           range check below rejects deterministically. *)
        Array.fill agg_bc (view.Network.node * k) k (-1));
  (* Local verification, one node at a time inside decide. *)
  let field_ok x = Aggregation.in_range params.q x in
  let spec_eq (x : int Api.spec) (y : int Api.spec) = x == y || x = y in
  let check v =
    let nbrs_consistent =
      Ids_graph.Bitset.fold
        (fun u acc ->
          acc
          && (Network.crashed net u
             || (spec_eq spec_bc.(u) spec_bc.(v)
                && claim_bc.(u) = claim_bc.(v)
                && root_bc.(u) = root_bc.(v))))
        (Graph.neighbors g v) true
    in
    let spec = spec_bc.(v) and claim = claim_bc.(v) and rt = root_bc.(v) in
    nbrs_consistent
    && Aggregation.in_range n rt
    && field_ok claim
    && Array.length spec.Api.points = k
    && Array.for_all field_ok spec.Api.points
    && Array.for_all field_ok spec.Api.coeffs
    && field_ok spec.Api.shift
    && Aggregation.tree_check g ~root:rt ~parent:parent_bc ~dist:dist_bc v
    &&
    let ok = ref true in
    for i = 0 to k - 1 do
      if not (field_ok agg_bc.((v * k) + i)) then ok := false
    done;
    !ok
    &&
    (* Own term from the shared O(degree) row, then the Lemma 3.3 subtree
       equation per inner copy. *)
    let term = Api.row_term f spec ~n ~row:v (Graph.closed_neighborhood g v) in
    let children = Aggregation.children g ~parent:parent_bc v in
    let copy_ok i =
      let expected =
        List.fold_left (fun acc u -> f.Field.add acc agg_bc.((u * k) + i)) term.(i) children
      in
      agg_bc.((v * k) + i) = expected
    in
    let rec all_copies i = i >= k || (copy_ok i && all_copies (i + 1)) in
    all_copies 0
    &&
    if v = rt then
      f.Field.equal (Api.finalize f spec (Array.init k (fun i -> agg_bc.((v * k) + i)))) claim
      && v = root && spec_eq spec root_spec
    else true
  in
  let accepted = Network.decide net check in
  Outcome.of_cost ~accepted ~prover:"apihash" (Network.cost net)

let run ?fault ?prover ?k ~seed ~root g =
  Ids_obs.Obs.span "apihash.run" (fun () -> run_body ?fault ?prover ?k ~seed ~root g)
