module Engine = Ids_engine.Engine
module Accum = Ids_engine.Accum

type estimate = { trials : int; accepts : int; rate : float; mean_bits : float; max_bits : int }

let trial_of_outcome (o : Outcome.t) =
  { Accum.accepted = o.Outcome.accepted; bits = o.Outcome.max_bits_per_node }

let acceptance_ci ?domains ~trials run =
  if trials <= 0 then invalid_arg "Stats.acceptance: need positive trials";
  Engine.run ?domains ~trials (fun seed -> trial_of_outcome (run seed))

let of_engine (e : Engine.estimate) =
  { trials = e.Engine.trials;
    accepts = e.Engine.accepts;
    rate = e.Engine.rate;
    mean_bits = e.Engine.mean_bits;
    max_bits = e.Engine.max_bits
  }

let acceptance ~trials run = of_engine (acceptance_ci ~domains:1 ~trials run)

let midpoint_threshold ~trials ~yes_rate ~no_rate =
  if trials <= 0 then invalid_arg "Stats.midpoint_threshold: need positive trials";
  let x = float_of_int trials *. ((yes_rate +. no_rate) /. 2.) in
  (* Float noise can push an exactly-integer midpoint just above it (e.g.
     10 * (0.8 + 0.4) / 2 = 6.000000000000001), and ceil then charges a whole
     extra accept. Snap to the nearest integer when within relative 1e-9
     before rounding up. *)
  let nearest = Float.round x in
  let snapped =
    if Float.abs (x -. nearest) <= 1e-9 *. Float.max 1. (Float.abs x) then nearest else Float.ceil x
  in
  max 0 (min trials (int_of_float snapped))

let threshold_ci ?domains ?plan ~max_trials run =
  let plan = match plan with Some p -> p | None -> Ids_engine.Sprt.definition2 () in
  Engine.run_sprt ?domains ~plan ~max_trials (fun seed -> trial_of_outcome (run seed))

let pp fmt e =
  Format.fprintf fmt "%d/%d accepted (%.3f), %.1f bits/node mean" e.accepts e.trials e.rate e.mean_bits
