(** Protocol 2: the [dAM\[O(n log n)\]] protocol for Graph Symmetry
    (Theorem 1.3, Section 3.2).

    In dAM the random challenge comes {e first}, so the prover cannot be
    forced to commit to the permutation before the hash index is known. The
    paper compensates with two changes to Protocol 1:

    - the prover broadcasts the {e full} permutation [rho : V -> V]
      ([n log n] bits) rather than each node's own image;
    - the hash family uses a prime [p in \[10 n^(n+2), 100 n^(n+2)\]]
      (arbitrary precision), so a union bound over all [n^n] mappings keeps
      the soundness error below 1/3 even though the prover picks [rho] after
      seeing the index.

    Rounds:
    + {b Arthur} — each node sends a random index [i_v in \[|H|\]]
      ([O(n log n)] bits);
    + {b Merlin} — broadcast [(rho, i, r)]; unicast [(t_v, d_v, a_v, b_v)].

    Verification is Protocol 1's, with the [b]-row computed from the
    broadcast table: node [v] checks its copy of
    [h_i(\[rho(v), rho(N(v))\])]. As in the paper (Theorem 3.5's proof),
    [rho] need not be validated as a permutation: Lemma 3.1's argument
    covers arbitrary non-identity mappings. *)

type params = { p : Ids_bignum.Nat.t; field : Ids_bignum.Nat.t Ids_hash.Field.t }

val params_for : seed:int -> Ids_graph.Graph.t -> params
(** A random prime in [\[10 n^(n+2), 100 n^(n+2)\]]. *)

type response = {
  rho : int array array;  (** broadcast: each node's copy of the full table *)
  index : Ids_bignum.Nat.t array;  (** broadcast *)
  root : int array;  (** broadcast *)
  parent : int array;  (** unicast *)
  dist : int array;  (** unicast *)
  a : Ids_bignum.Nat.t array;  (** unicast *)
  b : Ids_bignum.Nat.t array;  (** unicast *)
}

type prover = {
  name : string;
  respond : params -> Ids_graph.Graph.t -> Ids_bignum.Nat.t array -> response;
      (** Sees all challenges — dAM provers answer after Arthur speaks. *)
}

val honest : prover

(** {1 Strategy building blocks}

    Exposed so the E17 strategy space ({!Strategy}) can compose cheats from
    the same pieces the registry adversaries use. *)

val respond_with_rho :
  params -> Ids_graph.Graph.t -> Ids_bignum.Nat.t array -> int array -> response
(** Consistent play for a given mapping table: root at the first vertex the
    table moves (vertex 0 if it moves none), echo of that root's challenge,
    true subtree sums for both matrices. *)

val fallback_table : int -> int array
(** The transposition [(0 1)] as a table — the honest prover's losing but
    well-formed move on asymmetric graphs. *)

val search_table :
  ?extra:int ->
  seed:int ->
  params ->
  Ids_graph.Graph.t ->
  Ids_bignum.Nat.t array ->
  int array
(** The challenge-aware collision search behind {!adversary_search}: scan
    every transposition plus [extra] (default 20) seeded random non-identity
    permutations for a table colliding under the would-be root's revealed
    challenge; fall back to {!fallback_table} when none collides. *)

val run :
  ?fault:Ids_network.Fault.spec -> ?params:params -> seed:int -> Ids_graph.Graph.t -> prover -> Outcome.t
(** One execution. [fault] injects faults into every channel round (see
    {!Ids_network.Fault}); omitted or {!Ids_network.Fault.none} is the exact
    un-faulted path. *)

(** {1 Adversaries} *)

val adversary_search : prover
(** The strongest cheat we implement: after seeing the root candidates'
    challenges, searches transpositions and random permutations for a
    mapping colliding under the revealed index, and plays it consistently
    if found. On asymmetric graphs its success probability is bounded by
    the union-bound analysis of Theorem 3.5 (about [n^2 (n^2+n) / p],
    astronomically small). *)

val adversary_random_perm : prover
(** Ignores the challenge and plays a random non-identity permutation. *)
