module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Perm = Ids_graph.Perm
module Iso = Ids_graph.Iso
module Spanning_tree = Ids_graph.Spanning_tree
module Bits = Ids_network.Bits

type verdict = { accepted : bool; advice_bits_per_node : int }

let all_nodes_accept g check =
  let accepted = ref true in
  for v = 0 to Graph.n g - 1 do
    if not (check v) then accepted := false
  done;
  !accepted

module Tree = struct
  type advice = { root : int; parent : int array; dist : int array }

  let honest g root =
    let t = Spanning_tree.bfs g root in
    { root = t.Spanning_tree.root; parent = t.Spanning_tree.parent; dist = t.Spanning_tree.dist }

  let advice_bits g =
    (* root + parent + dist per node *)
    3 * Bits.id (max 2 (Graph.n g))

  let verify g advice =
    let n = Graph.n g in
    let check v =
      Aggregation.in_range n advice.root
      && Aggregation.tree_check g ~root:advice.root ~parent:advice.parent ~dist:advice.dist v
    in
    { accepted = Array.length advice.parent = n && Array.length advice.dist = n && all_nodes_accept g check;
      advice_bits_per_node = advice_bits g
    }
end

module Lcp_sym = struct
  type advice = { matrix : string array; rho : int array array }

  let encode_matrix g = Array.init (Graph.n g) (fun v -> Graph.adjacency_row_bits g v)

  let honest g =
    match Iso.find_nontrivial_automorphism g with
    | None -> None
    | Some rho ->
      let n = Graph.n g in
      (* Every node gets the same advice copy, so build the n²-character
         matrix string once and alias it n times ([Array.make] shares the
         pointer). Rebuilding it per node inside [Array.init] allocated
         O(n³) bytes of identical strings — the allocation wall that kept
         the scale path off this prover. The [rho] rows alias one shared
         table the same way; both are safe because [verify] only reads
         advice, and an adversarial prover supplies its own arrays. *)
      let enc = String.concat "" (Array.to_list (encode_matrix g)) in
      let table = Array.init n (Perm.apply rho) in
      Some { matrix = Array.make n enc; rho = Array.make n table }

  let advice_bits g =
    let n = max 2 (Graph.n g) in
    (n * n) + (n * Bits.id n)

  (* Is [table] a non-identity automorphism of the n x n 0/1 matrix encoded
     in [enc] (concatenated rows, self-loop convention)? Local verifiers are
     computationally unbounded, so a full check here is legitimate. *)
  let table_is_automorphism n enc table =
    Array.length table = n
    && Array.for_all (Aggregation.in_range n) table
    && (let seen = Array.make n false in
        Array.iter (fun x -> seen.(x) <- true) table;
        Array.for_all Fun.id seen)
    && Array.exists2 (fun i x -> i <> x) (Array.init n Fun.id) table
    &&
    let bit u w = enc.[(u * n) + w] in
    let ok = ref true in
    for u = 0 to n - 1 do
      for w = 0 to n - 1 do
        if bit u w <> bit table.(u) table.(w) then ok := false
      done
    done;
    !ok

  let verify g advice =
    let n = Graph.n g in
    let check v =
      String.length advice.matrix.(v) = n * n
      &&
      (* Consistency with neighbors' copies. *)
      Bitset.fold
        (fun u acc -> acc && advice.matrix.(u) = advice.matrix.(v) && advice.rho.(u) = advice.rho.(v))
        (Graph.neighbors g v) true
      (* My row of the claimed matrix is my actual neighborhood. *)
      && String.sub advice.matrix.(v) (v * n) n = Graph.adjacency_row_bits g v
      && table_is_automorphism n advice.matrix.(v) advice.rho.(v)
    in
    { accepted =
        Array.length advice.matrix = n && Array.length advice.rho = n && all_nodes_accept g check;
      advice_bits_per_node = advice_bits g
    }
end

module Lcp_bipartite = struct
  type advice = bool array

  let honest g =
    let n = Graph.n g in
    let side = Array.make n None in
    let ok = ref true in
    (* BFS 2-coloring, component by component. *)
    for start = 0 to n - 1 do
      if side.(start) = None then begin
        side.(start) <- Some false;
        let queue = Queue.create () in
        Queue.add start queue;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          let sv = Option.value side.(v) ~default:false in
          Bitset.iter
            (fun u ->
              match side.(u) with
              | None ->
                side.(u) <- Some (not sv);
                Queue.add u queue
              | Some su -> if su = sv then ok := false)
            (Graph.neighbors g v)
        done
      end
    done;
    if !ok then Some (Array.map (fun s -> Option.value s ~default:false) side) else None

  let advice_bits = 1

  let verify g advice =
    let n = Graph.n g in
    let check v =
      Bitset.fold (fun u acc -> acc && advice.(u) <> advice.(v)) (Graph.neighbors g v) true
    in
    { accepted = Array.length advice = n && all_nodes_accept g check;
      advice_bits_per_node = advice_bits
    }
end

module Lcp_odd_cycle = struct
  type advice = { tree : Tree.advice; witness : int * int }

  let advice_bits g =
    let n = max 2 (Graph.n g) in
    Tree.advice_bits g + (2 * Bits.id n)

  let honest g =
    if not (Graph.is_connected g) then invalid_arg "Lcp_odd_cycle.honest: graph must be connected";
    let tree = Tree.honest g 0 in
    let witness =
      List.find_opt (fun (u, v) -> (tree.Tree.dist.(u) - tree.Tree.dist.(v)) mod 2 = 0) (Graph.edges g)
    in
    Option.map (fun w -> { tree; witness = w }) witness

  let verify g advice =
    let n = Graph.n g in
    let x, y = advice.witness in
    let tree_verdict = Tree.verify g advice.tree in
    let check v =
      Aggregation.in_range n x
      && Aggregation.in_range n y
      &&
      (* Only the witness endpoints have anything extra to check. *)
      if v = x || v = y then
        Graph.has_edge g x y && (advice.tree.Tree.dist.(x) - advice.tree.Tree.dist.(y)) mod 2 = 0
      else true
    in
    { accepted = tree_verdict.accepted && all_nodes_accept g check;
      advice_bits_per_node = advice_bits g
    }
end

module Lcp_gni = struct
  type advice = { m0 : string array; m1 : string array }

  let concat_rows g = String.concat "" (List.init (Graph.n g) (Graph.adjacency_row_bits g))

  let honest g0 g1 =
    if Graph.n g0 <> Graph.n g1 then invalid_arg "Lcp_gni.honest: size mismatch";
    if Iso.are_isomorphic g0 g1 then None
    else begin
      let n = Graph.n g0 in
      let e0 = concat_rows g0 and e1 = concat_rows g1 in
      Some { m0 = Array.make n e0; m1 = Array.make n e1 }
    end

  let advice_bits g = 2 * Graph.n g * Graph.n g

  let decode n enc =
    let g = Graph.make n in
    for u = 0 to n - 1 do
      for w = u + 1 to n - 1 do
        if enc.[(u * n) + w] = '1' then Graph.add_edge g u w
      done
    done;
    g

  let verify g0 g1 advice =
    let n = Graph.n g0 in
    let check v =
      String.length advice.m0.(v) = n * n
      && String.length advice.m1.(v) = n * n
      && Bitset.fold
           (fun u acc -> acc && advice.m0.(u) = advice.m0.(v) && advice.m1.(u) = advice.m1.(v))
           (Graph.neighbors g0 v) true
      && String.sub advice.m0.(v) (v * n) n = Graph.adjacency_row_bits g0 v
      && String.sub advice.m1.(v) (v * n) n = Graph.adjacency_row_bits g1 v
      &&
      (* Unbounded local computation: decide GNI on the claimed matrices. *)
      not (Iso.are_isomorphic (decode n advice.m0.(v)) (decode n advice.m1.(v)))
    in
    { accepted =
        Array.length advice.m0 = n && Array.length advice.m1 = n && all_nodes_accept g0 check;
      advice_bits_per_node = advice_bits g0
    }
end
