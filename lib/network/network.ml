module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Rng = Ids_bignum.Rng
module Obs = Ids_obs.Obs

(* Per-round, per-node bit counters mirror the Cost ledger charge for
   charge: their totals sum exactly to Cost.total over the traced window. *)
let c_to_prover = Obs.Counter.make "net.to_prover_bits"
let c_from_prover = Obs.Counter.make "net.from_prover_bits"
let c_draws = Obs.Counter.make "net.challenge_draws"
let c_fault_decisions = Obs.Counter.make "net.fault_decisions"
let c_fault_drops = Obs.Counter.make "net.fault_drops"
let h_msg_bits = Obs.Histo.make "net.msg_bits"

type t = {
  graph : Graph.t;
  cost : Cost.t;
  rng : Rng.t;
  fault : Fault.t option;
  missed : bool array;
  mutable round : int;
}

let create ?fault ~seed graph =
  let n = Graph.n graph in
  let fault =
    match fault with
    | Some spec when not (Fault.is_none spec) -> Some (Fault.create ~seed ~n spec)
    | Some _ | None -> None
  in
  { graph;
    cost = Cost.create n;
    rng = Rng.create seed;
    fault;
    missed = Array.make n false;
    round = 0
  }

let graph t = t.graph
let n t = Graph.n t.graph
let cost t = t.cost
let rng t = t.rng
let current_round t = t.round

(* Every channel operation (challenge, unicast, broadcast) is one round;
   the counter exists whether or not tracing is on, so round numbering in
   traces matches what a protocol would compute by hand. It is independent
   of Fault's internal round counter, which keys fault randomness. *)
let next_round t =
  t.round <- t.round + 1;
  t.round

let fault_spec t = match t.fault with Some f -> Fault.spec f | None -> Fault.none
let crashed t v = match t.fault with Some f -> Fault.crashed f v | None -> false
let missed t v = t.missed.(v)

let take_missed t =
  let snapshot = Array.copy t.missed in
  Array.fill t.missed 0 (Array.length t.missed) false;
  snapshot

(* Crashed nodes are silent for the whole execution: they neither send
   challenges nor receive responses, so the ledger must not charge them
   (a crashed-silent node billed per round was inflating the E13 crash
   degradation sweeps). *)
let charge_live_to_prover t ~round bits =
  for v = 0 to n t - 1 do
    if not (crashed t v) then begin
      Cost.charge_to_prover t.cost v bits;
      Obs.Counter.add_cell c_to_prover ~round ~node:v bits
    end
  done

let charge_live_from_prover t ~round bits =
  for v = 0 to n t - 1 do
    if not (crashed t v) then begin
      Cost.charge_from_prover t.cost v bits;
      Obs.Counter.add_cell c_from_prover ~round ~node:v bits
    end
  done

let challenge t ~bits gen =
  let round = next_round t in
  Obs.span ~round "net.challenge" (fun () ->
      charge_live_to_prover t ~round bits;
      if Obs.enabled () then begin
        Obs.Counter.add c_draws (n t);
        Obs.Histo.observe h_msg_bits bits
      end;
      (* Each node owns an independent generator split off the execution seed. *)
      let a = Array.init (n t) (fun _ -> gen (Rng.split t.rng)) in
      (match t.fault with
      | None -> ()
      | Some f ->
        let fround = Fault.next_round f in
        for v = 0 to n t - 1 do
          Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
          (* Delivery failure is modeled purely as decide-time rejection: the
             drawn value stays in the returned array (and is typically handed to
             the prover — there is no generic sentinel for 'c), but the sending
             node is marked missed so {!decide}, or a protocol folding
             {!take_missed} into its own verdicts, rejects it. Soundness must
             never depend on hiding a dropped challenge from the prover. *)
          match Fault.deliver f ~round:fround ~node:v a.(v) with
          | Fault.Dropped ->
            t.missed.(v) <- true;
            Obs.Counter.add_cell c_fault_drops ~round ~node:v 1
          | Fault.Delivered _ -> ()
        done);
      a)

let check_length t a = if Array.length a <> n t then invalid_arg "Network: response length mismatch"

(* Per-node delivery over one prover-response round. Equivocation (broadcast
   rounds only) corrupts the keyed victim's copy after regular delivery, so
   the spec's drop/corrupt rates and the equivocation attack compose. *)
let apply_faults t ?corrupt ?on_drop ~round ~equivocable responses =
  match t.fault with
  | None -> responses
  | Some f ->
    let fround = Fault.next_round f in
    let out = Array.copy responses in
    for v = 0 to Array.length out - 1 do
      Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
      match Fault.deliver f ~round:fround ~node:v ?corrupt out.(v) with
      | Fault.Delivered x -> out.(v) <- x
      | Fault.Dropped -> (
        Obs.Counter.add_cell c_fault_drops ~round ~node:v 1;
        match on_drop with
        | Some d -> out.(v) <- d
        | None -> t.missed.(v) <- true)
    done;
    (if equivocable then
       match (corrupt, Fault.equivocation f ~round:fround ~n:(Array.length out)) with
       | Some c, Some (victim, rng) -> out.(victim) <- c rng out.(victim)
       | _ -> ());
    out

let unicast t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.unicast" (fun () ->
      charge_live_from_prover t ~round bits;
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:false responses)

let unicast_varbits t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.unicast" (fun () ->
      Array.iteri
        (fun v _ ->
          if not (crashed t v) then begin
            Cost.charge_from_prover t.cost v (bits v);
            Obs.Counter.add_cell c_from_prover ~round ~node:v (bits v)
          end)
        responses;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:false responses)

let broadcast t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.broadcast" (fun () ->
      charge_live_from_prover t ~round bits;
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:true responses)

let broadcast_uniform t ?corrupt ?on_drop ~bits value =
  broadcast t ?corrupt ?on_drop ~bits (Array.make (n t) value)

let broadcast_consistent_at ?(equal = fun a b -> a = b) t values v =
  let ok = ref true in
  (* Crashed neighbors are silent, so there is no copy to compare against. *)
  Bitset.iter
    (fun u -> if (not (crashed t u)) && not (equal values.(u) values.(v)) then ok := false)
    (Graph.neighbors t.graph v);
  !ok

let decide t out =
  let accepted = ref true in
  for v = 0 to n t - 1 do
    if crashed t v then begin
      match t.fault with
      | Some f when Fault.crash_mode f = Fault.Crash_vacuous -> ()
      | _ -> accepted := false
    end
    else if t.missed.(v) then accepted := false
    else if not (out v) then accepted := false
  done;
  !accepted
