module Graph = Ids_graph.Graph
module Bitset = Ids_graph.Bitset
module Rng = Ids_bignum.Rng
module Obs = Ids_obs.Obs

(* Per-round, per-node bit counters mirror the Cost ledger charge for
   charge: their totals sum exactly to Cost.total over the traced window. *)
let c_to_prover = Obs.Counter.make "net.to_prover_bits"
let c_from_prover = Obs.Counter.make "net.from_prover_bits"
let c_draws = Obs.Counter.make "net.challenge_draws"
let c_fault_decisions = Obs.Counter.make "net.fault_decisions"
let c_fault_drops = Obs.Counter.make "net.fault_drops"
let h_msg_bits = Obs.Histo.make "net.msg_bits"

type t = {
  graph : Graph.t;
  cost : Cost.t;
  rng : Rng.t;
  fault : Fault.t option;
  missed : bool array;
  mutable round : int;
}

let create ?fault ~seed graph =
  let n = Graph.n graph in
  let fault =
    match fault with
    | Some spec when not (Fault.is_none spec) -> Some (Fault.create ~seed ~n spec)
    | Some _ | None -> None
  in
  { graph;
    cost = Cost.create n;
    rng = Rng.create seed;
    fault;
    missed = Array.make n false;
    round = 0
  }

let graph t = t.graph
let n t = Graph.n t.graph
let cost t = t.cost
let rng t = t.rng
let current_round t = t.round

(* Every channel operation (challenge, unicast, broadcast) is one round;
   the counter exists whether or not tracing is on, so round numbering in
   traces matches what a protocol would compute by hand. It is independent
   of Fault's internal round counter, which keys fault randomness. *)
let next_round t =
  t.round <- t.round + 1;
  t.round

let fault_spec t = match t.fault with Some f -> Fault.spec f | None -> Fault.none
let crashed t v = match t.fault with Some f -> Fault.crashed f v | None -> false
let missed t v = t.missed.(v)

let take_missed t =
  let snapshot = Array.copy t.missed in
  Array.fill t.missed 0 (Array.length t.missed) false;
  snapshot

(* Crashed nodes are silent for the whole execution: they neither send
   challenges nor receive responses, so the ledger must not charge them
   (a crashed-silent node billed per round was inflating the E13 crash
   degradation sweeps). *)
let charge_live_to_prover t ~round bits =
  for v = 0 to n t - 1 do
    if not (crashed t v) then begin
      Cost.charge_to_prover t.cost v bits;
      Obs.Counter.add_cell c_to_prover ~round ~node:v bits
    end
  done

let charge_live_from_prover t ~round bits =
  for v = 0 to n t - 1 do
    if not (crashed t v) then begin
      Cost.charge_from_prover t.cost v bits;
      Obs.Counter.add_cell c_from_prover ~round ~node:v bits
    end
  done

let challenge t ~bits gen =
  let round = next_round t in
  Obs.span ~round "net.challenge" (fun () ->
      charge_live_to_prover t ~round bits;
      if Obs.enabled () then begin
        Obs.Counter.add c_draws (n t);
        Obs.Histo.observe h_msg_bits bits
      end;
      (* Each node owns an independent generator split off the execution seed. *)
      let a = Array.init (n t) (fun _ -> gen (Rng.split t.rng)) in
      (match t.fault with
      | None -> ()
      | Some f ->
        let fround = Fault.next_round f in
        for v = 0 to n t - 1 do
          Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
          (* Delivery failure is modeled purely as decide-time rejection: the
             drawn value stays in the returned array (and is typically handed to
             the prover — there is no generic sentinel for 'c), but the sending
             node is marked missed so {!decide}, or a protocol folding
             {!take_missed} into its own verdicts, rejects it. Soundness must
             never depend on hiding a dropped challenge from the prover. *)
          match Fault.deliver f ~round:fround ~node:v a.(v) with
          | Fault.Dropped ->
            t.missed.(v) <- true;
            Obs.Counter.add_cell c_fault_drops ~round ~node:v 1
          | Fault.Delivered _ -> ()
        done);
      a)

let check_length t a = if Array.length a <> n t then invalid_arg "Network: response length mismatch"

(* Per-node delivery over one prover-response round. Equivocation (broadcast
   rounds only) corrupts the keyed victim's copy after regular delivery, so
   the spec's drop/corrupt rates and the equivocation attack compose. *)
let apply_faults t ?corrupt ?on_drop ~round ~equivocable responses =
  match t.fault with
  | None -> responses
  | Some f ->
    let fround = Fault.next_round f in
    let out = Array.copy responses in
    for v = 0 to Array.length out - 1 do
      Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
      match Fault.deliver f ~round:fround ~node:v ?corrupt out.(v) with
      | Fault.Delivered x -> out.(v) <- x
      | Fault.Dropped -> (
        Obs.Counter.add_cell c_fault_drops ~round ~node:v 1;
        match on_drop with
        | Some d -> out.(v) <- d
        | None -> t.missed.(v) <- true)
    done;
    (if equivocable then
       match (corrupt, Fault.equivocation f ~round:fround ~n:(Array.length out)) with
       | Some c, Some (victim, rng) -> out.(victim) <- c rng out.(victim)
       | _ -> ());
    out

let unicast t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.unicast" (fun () ->
      charge_live_from_prover t ~round bits;
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:false responses)

let unicast_varbits t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.unicast" (fun () ->
      Array.iteri
        (fun v _ ->
          if not (crashed t v) then begin
            Cost.charge_from_prover t.cost v (bits v);
            Obs.Counter.add_cell c_from_prover ~round ~node:v (bits v)
          end)
        responses;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:false responses)

let broadcast t ?corrupt ?on_drop ~bits responses =
  check_length t responses;
  let round = next_round t in
  Obs.span ~round "net.broadcast" (fun () ->
      charge_live_from_prover t ~round bits;
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      apply_faults t ?corrupt ?on_drop ~round ~equivocable:true responses)

let broadcast_uniform t ?corrupt ?on_drop ~bits value =
  broadcast t ?corrupt ?on_drop ~bits (Array.make (n t) value)

let broadcast_consistent_at ?(equal = fun a b -> a = b) t values v =
  let ok = ref true in
  (* Crashed neighbors are silent, so there is no copy to compare against. *)
  Bitset.iter
    (fun u -> if (not (crashed t u)) && not (equal values.(u) values.(v)) then ok := false)
    (Graph.neighbors t.graph v);
  !ok

(* --- streamed per-node views ----------------------------------------------

   The array primitives above materialize one slot per node, which is fine
   for the paper's small instances but holds every node's challenge or
   response live for the whole round. The folds below visit nodes 0..n-1 in
   order, build each node's view on demand (its graph row is shared, not
   copied — O(degree) resident for sparse-backed graphs), apply the fault
   layer per node, and release the view before moving on. Randomness
   consumption is identical to the array primitives: challenge draws split
   the main generator per node in the same order, and fault decisions come
   from streams keyed by (seed, round, node) — so a protocol computing the
   same function over a streamed round is bit-identical to the array form. *)

type 'c node_view = {
  node : int;
  degree : int;
  neighbors : Ids_graph.Bitset.t;
  value : 'c;
  dropped : bool;
}

let make_view t v value ~dropped =
  let nbrs = Graph.neighbors t.graph v in
  { node = v; degree = Bitset.cardinal nbrs; neighbors = nbrs; value; dropped }

let view t v = make_view t v () ~dropped:false

let fold_views t ~init f =
  let acc = ref init in
  for v = 0 to n t - 1 do
    acc := f !acc (view t v)
  done;
  !acc

let challenge_fold t ~bits ~gen ~init f =
  let round = next_round t in
  Obs.span ~round "net.challenge" (fun () ->
      if Obs.enabled () then begin
        Obs.Counter.add c_draws (n t);
        Obs.Histo.observe h_msg_bits bits
      end;
      let fround = match t.fault with None -> 0 | Some fl -> Fault.next_round fl in
      let acc = ref init in
      for v = 0 to n t - 1 do
        if not (crashed t v) then begin
          Cost.charge_to_prover t.cost v bits;
          Obs.Counter.add_cell c_to_prover ~round ~node:v bits
        end;
        (* Same split order as the array primitive: one child generator per
           node, drawn in node order with nothing interleaved. *)
        let c = gen (Rng.split t.rng) in
        let dropped =
          match t.fault with
          | None -> false
          | Some fl -> (
            Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
            match Fault.deliver fl ~round:fround ~node:v c with
            | Fault.Dropped ->
              t.missed.(v) <- true;
              Obs.Counter.add_cell c_fault_drops ~round ~node:v 1;
              true
            | Fault.Delivered _ -> false)
        in
        acc := f !acc (make_view t v c ~dropped)
      done;
      !acc)

(* Shared per-node delivery for the streamed response rounds. The
   equivocation victim (broadcast only) is resolved up front from the same
   keyed stream the array path uses, then applied to the victim's delivered
   copy — drop/corrupt and the equivocation attack compose exactly as in
   [apply_faults]. *)
let response_fold t ?corrupt ?on_drop ~equivocable ~charge ~respond ~init f =
  let round = next_round t in
  let fround = match t.fault with None -> 0 | Some fl -> Fault.next_round fl in
  let equiv =
    match t.fault with
    | Some fl when equivocable -> (
      match (corrupt, Fault.equivocation fl ~round:fround ~n:(n t)) with
      | Some c, Some (victim, rng) -> Some (victim, c, rng)
      | _ -> None)
    | _ -> None
  in
  let acc = ref init in
  for v = 0 to n t - 1 do
    charge ~round v;
    let sent = respond v in
    let delivered, dropped =
      match t.fault with
      | None -> (sent, false)
      | Some fl -> (
        Obs.Counter.add_cell c_fault_decisions ~round ~node:v 1;
        match Fault.deliver fl ~round:fround ~node:v ?corrupt sent with
        | Fault.Delivered x -> (x, false)
        | Fault.Dropped -> (
          Obs.Counter.add_cell c_fault_drops ~round ~node:v 1;
          match on_drop with
          | Some d -> (d, true)
          | None ->
            t.missed.(v) <- true;
            (sent, true)))
    in
    let delivered =
      match equiv with
      | Some (victim, c, rng) when victim = v -> c rng delivered
      | _ -> delivered
    in
    acc := f !acc (make_view t v delivered ~dropped)
  done;
  !acc

let unicast_fold t ?corrupt ?on_drop ~bits ~respond ~init f =
  Obs.span ~round:(current_round t + 1) "net.unicast" (fun () ->
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      let charge ~round v =
        if not (crashed t v) then begin
          Cost.charge_from_prover t.cost v bits;
          Obs.Counter.add_cell c_from_prover ~round ~node:v bits
        end
      in
      response_fold t ?corrupt ?on_drop ~equivocable:false ~charge ~respond ~init f)

let broadcast_fold t ?corrupt ?on_drop ~bits value ~init f =
  Obs.span ~round:(current_round t + 1) "net.broadcast" (fun () ->
      if Obs.enabled () then Obs.Histo.observe h_msg_bits bits;
      let charge ~round v =
        if not (crashed t v) then begin
          Cost.charge_from_prover t.cost v bits;
          Obs.Counter.add_cell c_from_prover ~round ~node:v bits
        end
      in
      response_fold t ?corrupt ?on_drop ~equivocable:true ~charge
        ~respond:(fun _ -> value)
        ~init f)

let decide t out =
  let accepted = ref true in
  for v = 0 to n t - 1 do
    if crashed t v then begin
      match t.fault with
      | Some f when Fault.crash_mode f = Fault.Crash_vacuous -> ()
      | _ -> accepted := false
    end
    else if t.missed.(v) then accepted := false
    else if not (out v) then accepted := false
  done;
  !accepted
