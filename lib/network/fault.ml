module Rng = Ids_bignum.Rng
module Nat = Ids_bignum.Nat

type crash_mode = Crash_reject | Crash_vacuous

type spec = {
  drop : float;
  corrupt : float;
  crash : float;
  crash_mode : crash_mode;
  equivocate : bool;
}

let none = { drop = 0.; corrupt = 0.; crash = 0.; crash_mode = Crash_reject; equivocate = false }

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault: %s rate %g outside [0, 1]" name r)

let make ?(drop = 0.) ?(corrupt = 0.) ?(crash = 0.) ?(crash_mode = Crash_reject)
    ?(equivocate = false) () =
  check_rate "drop" drop;
  check_rate "corrupt" corrupt;
  check_rate "crash" crash;
  { drop; corrupt; crash; crash_mode; equivocate }

let drop_only rate = make ~drop:rate ()
let corrupt_only rate = make ~corrupt:rate ()
let crash_only ?(crash_mode = Crash_reject) rate = make ~crash:rate ~crash_mode ()
let equivocate_only = make ~equivocate:true ()

let is_none s = s.drop = 0. && s.corrupt = 0. && s.crash = 0. && not s.equivocate

let to_string s =
  if is_none s then "none"
  else begin
    let parts = ref [] in
    let add p = parts := p :: !parts in
    if s.equivocate then add "equivocate";
    if s.crash > 0. then begin
      (match s.crash_mode with
      | Crash_reject -> add "crash_mode=reject"
      | Crash_vacuous -> add "crash_mode=vacuous");
      add (Printf.sprintf "crash=%g" s.crash)
    end;
    if s.corrupt > 0. then add (Printf.sprintf "corrupt=%g" s.corrupt);
    if s.drop > 0. then add (Printf.sprintf "drop=%g" s.drop);
    String.concat "," !parts
  end

let of_string str =
  let fail part = invalid_arg (Printf.sprintf "Fault.of_string: cannot parse %S" part) in
  let rate part v = match float_of_string_opt v with Some f -> check_rate part f; f | None -> fail part in
  List.fold_left
    (fun s part ->
      match String.index_opt part '=' with
      | None -> (
        match String.trim part with
        | "" | "none" -> s
        | "equivocate" -> { s with equivocate = true }
        | p -> fail p)
      | Some i -> (
        let k = String.trim (String.sub part 0 i) in
        let v = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
        match k with
        | "drop" -> { s with drop = rate k v }
        | "corrupt" -> { s with corrupt = rate k v }
        | "crash" -> { s with crash = rate k v }
        | "crash_mode" -> (
          match v with
          | "reject" -> { s with crash_mode = Crash_reject }
          | "vacuous" -> { s with crash_mode = Crash_vacuous }
          | _ -> fail part)
        | _ -> fail part))
    none
    (String.split_on_char ',' str)

let of_env () =
  match Sys.getenv_opt "IDS_FAULT_SPEC" with
  | None | Some "" -> None
  | Some s -> Some (of_string s)

(* --- runtime state ----------------------------------------------------------- *)

(* Fault decisions never touch the execution's main generator: every decision
   comes from a fresh splitmix64 stream keyed by (trial seed, salt, round,
   node). Two consequences: (1) a zero-rate spec leaves the protocol's
   randomness bit-identical to the un-faulted path, and (2) decisions are a
   pure function of position, so faulted runs are reproducible across any
   scheduling of trials over worker domains. *)

let salt_deliver = 0x0D51
let salt_equiv = 0x0E91
let salt_crash = 0x0C0A

type t = { spec : spec; seed : int; crashed : bool array; mutable round : int }

let create ~seed ~n spec =
  let crashed =
    Array.init n (fun v ->
        spec.crash > 0. && Rng.float (Rng.create (Rng.key [ seed; salt_crash; v ])) < spec.crash)
  in
  { spec; seed; crashed; round = 0 }

let spec t = t.spec
let crash_mode t = t.spec.crash_mode
let crashed t v = t.crashed.(v)

let next_round t =
  let r = t.round in
  t.round <- r + 1;
  r

let stream ~salt t ~round ~node = Rng.create (Rng.key [ t.seed; salt; round; node ])

type 'r delivery = Delivered of 'r | Dropped

let deliver t ~round ~node ?corrupt x =
  if t.spec.drop = 0. && t.spec.corrupt = 0. then Delivered x
  else begin
    let rng = stream ~salt:salt_deliver t ~round ~node in
    (* Both decisions are always drawn, so a message's fate at a given
       position depends only on the spec's rates, not on evaluation order. *)
    let dropped = Rng.float rng < t.spec.drop in
    let corrupted = Rng.float rng < t.spec.corrupt in
    if dropped then Dropped
    else if corrupted then
      match corrupt with Some c -> Delivered (c rng x) | None -> Delivered x
    else Delivered x
  end

let equivocation t ~round ~n =
  if (not t.spec.equivocate) || n = 0 then None
  else begin
    let rng = stream ~salt:salt_equiv t ~round ~node:0 in
    Some (Rng.int rng n, rng)
  end

(* --- corrupt hooks for the payload types the protocols use ------------------- *)

let flip_int_bit ~bits rng x = x lxor (1 lsl Rng.int rng (max 1 bits))

let flip_nat_bit ~bits rng x =
  let k = Rng.int rng (max 1 bits) in
  let b = Nat.shift_left Nat.one k in
  if Nat.is_zero (Nat.rem (Nat.shift_right x k) Nat.two) then Nat.add x b else Nat.sub x b

let flip_bool _rng b = not b

let swap_entries rng a =
  let n = Array.length a in
  if n < 2 then a
  else begin
    let a = Array.copy a in
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    a
  end
