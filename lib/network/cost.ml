type t = { to_prover : int array; from_prover : int array }

let create n =
  if n < 0 then invalid_arg "Cost.create: negative size";
  { to_prover = Array.make n 0; from_prover = Array.make n 0 }

let n t = Array.length t.to_prover

let charge_to_prover t v bits =
  if bits < 0 then invalid_arg "Cost.charge_to_prover: negative bits";
  t.to_prover.(v) <- t.to_prover.(v) + bits

let charge_from_prover t v bits =
  if bits < 0 then invalid_arg "Cost.charge_from_prover: negative bits";
  t.from_prover.(v) <- t.from_prover.(v) + bits

let charge_all_from_prover t bits =
  Array.iteri (fun v _ -> charge_from_prover t v bits) t.from_prover

let charge_all_to_prover t bits = Array.iteri (fun v _ -> charge_to_prover t v bits) t.to_prover

let to_prover t v = t.to_prover.(v)
let from_prover t v = t.from_prover.(v)

let node_total t v = t.to_prover.(v) + t.from_prover.(v)

let max_per_node t =
  let m = ref 0 in
  for v = 0 to n t - 1 do
    if node_total t v > !m then m := node_total t v
  done;
  !m

let max_from_prover t = Array.fold_left max 0 t.from_prover

let total t = Array.fold_left ( + ) 0 t.to_prover + Array.fold_left ( + ) 0 t.from_prover

let pp fmt t =
  Format.fprintf fmt "cost(max/node=%d bits, total=%d bits)" (max_per_node t) (total t)
