(** Per-node communication ledger.

    Records, for every network node, the bits it sent to the prover
    (challenges) and the bits it received from the prover (responses). The
    paper's protocol length is the maximum over nodes of the per-node total;
    lower bounds do not charge challenge bits, so the two directions are kept
    separate. *)

type t

val create : int -> t
(** [create n] is a fresh ledger for an [n]-node network. *)

val n : t -> int

val charge_to_prover : t -> int -> int -> unit
(** [charge_to_prover c v bits] records [bits] sent by node [v].
    Raises [Invalid_argument] if [bits < 0]. *)

val charge_from_prover : t -> int -> int -> unit
(** [charge_from_prover c v bits] records [bits] received by node [v].
    Raises [Invalid_argument] if [bits < 0]. *)

val charge_all_from_prover : t -> int -> unit
(** Charge the same number of received bits to every node (broadcast). *)

val charge_all_to_prover : t -> int -> unit

val to_prover : t -> int -> int
val from_prover : t -> int -> int

val node_total : t -> int -> int

val max_per_node : t -> int
(** The paper's length measure: maximum over nodes of the per-node total. *)

val max_from_prover : t -> int
(** Maximum over nodes of response bits only (the measure the lower bound
    charges). *)

val total : t -> int
(** Total communication over the whole network. *)

val pp : Format.formatter -> t -> unit
