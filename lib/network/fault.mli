(** Composable fault injection for the network substrate.

    The paper's model (Section 2.2) assumes a perfect synchronous network;
    this module relaxes it so the robustness shape of the theorems can be
    measured empirically: soundness must hold under {e every} fault below,
    while completeness should degrade gracefully with the fault rates.

    {2 Fault taxonomy}

    - {b drop}: each prover-to-node message is independently lost with the
      given rate. A node that misses a message it was expecting rejects
      (conservative verifier), unless the protocol supplies an [on_drop]
      default for that round. A dropped {e challenge} (node-to-prover) also
      makes the sending node reject: it has no valid transcript.
    - {b corrupt}: each delivered message is independently garbled with the
      given rate, by a per-round [corrupt : Rng.t -> 'r -> 'r] hook the
      protocol supplies for its payload type (see the helpers below). A round
      without a hook delivers corrupted messages unchanged.
    - {b crash}: each node independently crashes (for the whole execution)
      with the given rate. Crashed nodes are silent: their broadcast copies
      are skipped by neighbor comparison, and their local verdict is excluded
      from {!Network.decide} per [crash_mode] — [Crash_reject] counts a
      crashed node as rejecting, [Crash_vacuous] as vacuously accepting.
    - {b equivocate}: on every broadcast round the prover sends one
      deterministically chosen victim node a corrupted copy — exactly the
      attack {!Network.broadcast_consistent_at} exists to catch. Requires the
      round's [corrupt] hook (the hooks below always return a value distinct
      from their input, so on a connected graph the neighbor comparison
      catches the split with probability 1).

    The cost ledger is unaffected by faults: it records what the prover
    transmitted, not what was delivered, so per-node bit costs are identical
    to the un-faulted run.

    {2 Determinism}

    Fault decisions are drawn from fresh splitmix64 streams keyed by
    [(trial seed, salt, round, node)] — never from the execution's main
    generator or any shared state. A zero-rate spec therefore leaves a run
    bit-identical to the un-faulted path, and faulted Monte Carlo sweeps are
    bit-identical for every worker-domain count. *)

type crash_mode =
  | Crash_reject  (** A crashed node counts as rejecting (safe default). *)
  | Crash_vacuous  (** A crashed node's verdict is ignored (vacuous accept). *)

type spec = {
  drop : float;  (** Per-message drop probability, in [0, 1]. *)
  corrupt : float;  (** Per-message corruption probability, in [0, 1]. *)
  crash : float;  (** Per-node crash probability, in [0, 1]. *)
  crash_mode : crash_mode;
  equivocate : bool;  (** Split every broadcast at one victim node. *)
}

val none : spec
(** All rates zero, no equivocation: behaves exactly like no fault layer. *)

val make :
  ?drop:float ->
  ?corrupt:float ->
  ?crash:float ->
  ?crash_mode:crash_mode ->
  ?equivocate:bool ->
  unit ->
  spec
(** All rates default to [0.], [crash_mode] to [Crash_reject].
    @raise Invalid_argument if a rate is outside [0, 1]. *)

val drop_only : float -> spec
val corrupt_only : float -> spec
val crash_only : ?crash_mode:crash_mode -> float -> spec
val equivocate_only : spec

val is_none : spec -> bool
(** No fault can ever fire under this spec. *)

val to_string : spec -> string
(** Canonical label, e.g. ["drop=0.1,corrupt=0.05"] or ["none"]; the format
    {!of_string} parses. Used as the [fault] field of run-log records. *)

val of_string : string -> spec
(** Parse a spec from a comma-separated list of [drop=R], [corrupt=R],
    [crash=R], [crash_mode=reject|vacuous], [equivocate] (and [none] / empty
    items, which are ignored). This is the [IDS_FAULT_SPEC] format.
    @raise Invalid_argument on an unknown key or unparsable rate. *)

val of_env : unit -> spec option
(** The spec named by the [IDS_FAULT_SPEC] environment variable, if set to a
    non-empty string. @raise Invalid_argument if set but unparsable. *)

(** {2 Runtime state (used by {!Network})} *)

type t
(** Fault state bound to one protocol execution: the spec, the trial seed
    the decision streams are keyed by, the crash set, and a round counter. *)

val create : seed:int -> n:int -> spec -> t
(** Fresh state for an [n]-node execution of trial [seed]. The crash set is
    decided here, keyed by [(seed, node)]. *)

val spec : t -> spec
val crash_mode : t -> crash_mode

val crashed : t -> int -> bool

val next_round : t -> int
(** Advance the execution's round counter and return the index of the round
    that is starting; every channel operation is one round. *)

type 'r delivery = Delivered of 'r | Dropped

val deliver : t -> round:int -> node:int -> ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) -> 'r -> 'r delivery
(** The fate of one message at [(round, node)]: dropped, corrupted (when the
    corruption decision fires and a hook is present — the hook draws any
    randomness it needs from the same keyed stream), or delivered intact. *)

val equivocation : t -> round:int -> n:int -> (int * Ids_bignum.Rng.t) option
(** When the spec equivocates: the victim node for this broadcast round and
    the keyed stream the victim's corrupt hook should draw from. *)

(** {2 Corrupt hooks}

    Ready-made [corrupt] instances for the payload types the protocols
    exchange. Every hook returns a value distinct from its input — the
    property the equivocation guarantee rests on. *)

val flip_int_bit : bits:int -> Ids_bignum.Rng.t -> int -> int
(** Flip one uniformly chosen bit among the low [bits] (at least one). *)

val flip_nat_bit : bits:int -> Ids_bignum.Rng.t -> Ids_bignum.Nat.t -> Ids_bignum.Nat.t
(** Bignum variant of {!flip_int_bit}. *)

val flip_bool : Ids_bignum.Rng.t -> bool -> bool

val swap_entries : Ids_bignum.Rng.t -> int array -> int array
(** Swap two distinct positions of a copy of the array (intended for
    permutation image tables, whose entries are pairwise distinct — for
    arrays with repeated values the result may equal the input). Arrays of
    length < 2 are returned unchanged. *)
