(** Execution context for interactive distributed proofs.

    A protocol execution alternates Arthur rounds (every node independently
    draws a random challenge and sends it to the prover) and Merlin rounds
    (the prover answers each node, by unicast or broadcast). This module
    simulates those exchanges over a network graph while charging every bit
    to the {!Cost} ledger, and implements the model's two response
    disciplines from Section 2.2 of the paper:

    - {b unicast}: the prover may give a different value to each node;
    - {b broadcast}: the prover must give all nodes the same value, enforced
      distributively — each node compares its copy with its neighbors' copies
      and rejects on mismatch (on a connected graph, any non-constant
      assignment is caught by some edge).

    The prover is just caller code: honest provers compute what the protocol
    prescribes, adversarial provers may supply arbitrary arrays.

    {2 Fault injection}

    [create ?fault] threads a {!Fault.spec} through every channel primitive:
    messages can be dropped (the expecting node rejects, or receives the
    round's [on_drop] default), corrupted (via the round's [corrupt] hook),
    nodes can crash-silently, and broadcasts can be equivocated at a keyed
    victim node. Each channel operation is one fault {e round}; decisions are
    keyed by [(seed, round, node)], so faulted runs are deterministic in the
    trial seed. A [None] or {!Fault.none} spec is exactly the un-faulted
    path, and the cost ledger always records what the prover transmitted,
    delivered or not. *)

type t

val create : ?fault:Fault.spec -> seed:int -> Ids_graph.Graph.t -> t
(** Fresh execution over the given network graph. The seed determines all of
    Arthur's randomness and, independently, every fault decision. *)

val graph : t -> Ids_graph.Graph.t
val n : t -> int
val cost : t -> Cost.t
val rng : t -> Ids_bignum.Rng.t

val current_round : t -> int
(** Number of channel operations (challenge / unicast / broadcast rounds)
    executed so far; the round index {!Ids_obs.Obs} metrics and spans are
    labeled with. Starts at 0, first operation is round 1. *)

val fault_spec : t -> Fault.spec
(** The active fault spec ({!Fault.none} when no faults are injected). *)

val crashed : t -> int -> bool
(** Did this execution's fault layer crash node [v]? *)

val missed : t -> int -> bool
(** Has node [v] missed a message (dropped with no [on_drop] default) so
    far? Such a node rejects at {!decide} time. *)

val take_missed : t -> bool array
(** Snapshot the per-node missed flags and clear them. For protocols that
    run many repetitions over one execution ({!val:decide} consults the
    {e live} flags, which otherwise accumulate): folding the snapshot into
    repetition [i]'s per-node verdicts scopes a drop to the repetition it
    occurred in instead of poisoning every later one, and leaves the flags
    clean for the final {!val:decide} over the aggregated verdicts. *)

val challenge : t -> bits:int -> (Ids_bignum.Rng.t -> 'c) -> 'c array
(** Arthur round: every node draws an independent challenge with the given
    generator and is charged [bits] towards the prover. Under faults, a
    dropped challenge marks the sending node as missed (it rejects: the
    prover never saw its challenge, so no transcript involving it is
    valid). Delivery failure is modeled purely as that decide-time
    rejection — the drawn value is still present in the returned array and
    observable by prover code; soundness must not rely on hiding it. *)

val unicast : t -> ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) -> ?on_drop:'r -> bits:int -> 'r array -> 'r array
(** Merlin unicast round: the prover supplies one value per node; every node
    is charged [bits] received. Under faults, each delivery can corrupt (via
    [corrupt], see {!Fault}'s ready-made hooks) or drop ([on_drop] default,
    else the node rejects). @raise Invalid_argument on length mismatch. *)

val unicast_varbits :
  t -> ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) -> ?on_drop:'r -> bits:(int -> int) -> 'r array -> 'r array
(** Like {!unicast} with a per-node bit cost. *)

val broadcast : t -> ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) -> ?on_drop:'r -> bits:int -> 'r array -> 'r array
(** Merlin broadcast round: like {!unicast}, but the values are expected to
    be all equal; use {!broadcast_consistent_at} in the verification phase to
    apply the paper's neighbor-comparison check. Under an equivocating fault
    spec, one keyed victim node's copy is additionally corrupted ([corrupt]
    hook required) — the attack the consistency check exists to catch. *)

val broadcast_uniform : t -> ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) -> ?on_drop:'r -> bits:int -> 'r -> 'r array
(** Honest broadcast: replicate one value to all nodes and charge it. *)

val broadcast_consistent_at : ?equal:('r -> 'r -> bool) -> t -> 'r array -> int -> bool
(** [broadcast_consistent_at t values v] is the local broadcast check at
    node [v]: its copy equals every (non-crashed) neighbor's copy.

    [equal] defaults to polymorphic equality — correct for the immediate
    payloads used here (ints, flat int arrays, normalized {!Ids_bignum.Nat}
    values), but a silent trap for any abstract numeric type whose values
    can be structurally distinct yet semantically equal (e.g. an
    un-normalized bignum, a hash-consed value, anything cached or lazy).
    Pass the payload's own equality ([Nat.equal], ...) whenever one exists:
    a structural mismatch between semantically equal copies would make an
    honest broadcast look like an equivocation and destroy completeness. *)

(** {2 Streamed per-node views}

    The array primitives above hold one slot per node for the whole round;
    at n = 10⁶ that is the difference between O(n) resident protocol state
    and none at all. The folds below visit nodes [0 .. n-1] in order, build
    each node's {!node_view} on demand and release it before the next node:
    the view's [neighbors] field is the graph's own row (shared, never
    copied), so resident memory per in-flight node is O(degree) for
    sparse-backed graphs. Randomness consumption is identical to the array
    primitives — challenge draws split the main generator per node in the
    same order, fault decisions come from streams keyed by
    [(seed, round, node)] — so a protocol computing the same function over
    a streamed round is bit-identical to its array form (pinned by the
    equivalence tests). *)

type 'c node_view = {
  node : int;
  degree : int;
  neighbors : Ids_graph.Bitset.t;  (** The graph's own row; do not mutate. *)
  value : 'c;  (** This node's challenge draw or delivered payload. *)
  dropped : bool;  (** The fault layer dropped this node's message. *)
}

val view : t -> int -> unit node_view
(** On-demand view of one node, outside any channel round. *)

val fold_views : t -> init:'a -> ('a -> unit node_view -> 'a) -> 'a
(** Fold the pure views of all nodes in ascending order; no channel round,
    no charge, no rng consumption. *)

val challenge_fold :
  t -> bits:int -> gen:(Ids_bignum.Rng.t -> 'c) -> init:'a -> ('a -> 'c node_view -> 'a) -> 'a
(** Streamed Arthur round: like {!challenge}, but the draws are folded
    node-by-node instead of materialized. A dropped challenge marks the
    node missed (and sets the view's [dropped]); the drawn value is still
    visible in the view, exactly as in the array form. *)

val unicast_fold :
  t ->
  ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) ->
  ?on_drop:'r ->
  bits:int ->
  respond:(int -> 'r) ->
  init:'a ->
  ('a -> 'r node_view -> 'a) ->
  'a
(** Streamed Merlin unicast round: [respond v] produces node [v]'s message
    on demand (the prover side of the stream), the fault layer applies per
    node, and the delivered value reaches the fold in the view. With no
    [on_drop], a dropped node is marked missed and its view carries the
    undelivered value with [dropped = true]. *)

val broadcast_fold :
  t ->
  ?corrupt:(Ids_bignum.Rng.t -> 'r -> 'r) ->
  ?on_drop:'r ->
  bits:int ->
  'r ->
  init:'a ->
  ('a -> 'r node_view -> 'a) ->
  'a
(** Streamed honest broadcast: one value replicated to every node (the
    moral equivalent of {!broadcast_uniform}), fault layer included —
    drop/corrupt per node plus the equivocation victim when the spec
    equivocates. *)

val decide : t -> (int -> bool) -> bool
(** [decide t out] runs the local decision [out v] at every node and accepts
    iff all nodes accept (the paper's global acceptance rule). Nodes that
    missed a message reject. Crashed nodes never run [out]: they count as
    rejecting under {!Fault.Crash_reject} and are skipped under
    {!Fault.Crash_vacuous}. *)
