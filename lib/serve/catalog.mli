(** The serving daemon's request catalog: named, fixed-instance workloads.

    A served estimate must be reproducible anywhere — the chaos bench pins
    every completed response bit-identical to an in-process replay — so the
    daemon only serves workloads whose instances are derived from hard-coded
    seeds: exactly the registry the fault sweeps already measure
    ({!Ids_proof.Adversary.cases}). A request names a workload by
    [(protocol, strategy)], picks a trial budget, and optionally injects
    network faults; execution always runs the deterministic engine
    single-domain (worker processes are the parallelism axis here). *)

type entry = {
  protocol : string;
  strategy : string;
  kind : string;  (** ["completeness"] or ["soundness"]. *)
  n : int;  (** Network size of the fixed instance. *)
  run : fault:Ids_network.Fault.spec -> int -> Ids_engine.Accum.trial;
}

val entries : unit -> entry list
(** The catalog, in registry order. Instances are built once per process
    (first call) and reused — the daemon's workers pay the setup cost on
    their first request only. *)

val find : protocol:string -> strategy:string -> (entry, string) result
(** The error names every known [(protocol, strategy)] pair. *)

val execute : entry -> trials:int -> fault:Ids_network.Fault.spec -> Ids_engine.Engine.estimate
(** [Engine.run] over [seed = 1 .. trials], single-domain: bit-identical in
    every process that executes the same request. *)

val record_of :
  entry -> ?metrics:string -> fault:Ids_network.Fault.spec -> Ids_engine.Engine.estimate -> string
(** The Runlog-v3 record line for one executed request (prover labeled
    [kind:strategy], fault label included when faults are injected,
    [metrics] embeds a pre-rendered snapshot object) — the wire payload,
    the daemon's log record, and the oracle's comparison string. *)

val execute_request :
  protocol:string ->
  strategy:string ->
  trials:int ->
  fault:Ids_network.Fault.spec ->
  (string, string) result
(** Lookup + execute + render: what a worker does with one request, and
    what the bench replays in-process to check bit-identity. When the
    process runs instrumented ({!Ids_obs.Obs.enabled}), the record embeds
    the request's own metrics window (a checkpoint delta — the process
    ledger keeps accumulating). The estimate itself is bit-identical either
    way; records compared across differently-instrumented processes should
    be compared net of the [metrics] field (cache-warmth counters such as
    [memo.*] are process-history-dependent). *)
