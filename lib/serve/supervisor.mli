(** Fault-tolerant worker-pool supervision as a pure state machine.

    All policy — dispatch order, per-request retry with exponential backoff,
    the bounded worker-restart budget, per-attempt deadlines, bounded-queue
    load shedding, and graceful drain — lives here, decoupled from
    processes, sockets, and clocks. {!step} consumes one event with an
    explicit [now] and returns the actions the driver must perform; the
    daemon ({!Server}) drives it with real forks and [Unix.gettimeofday],
    the unit tests drive it with scripted events and a fake clock, and both
    see exactly the same transitions.

    {2 Policy}

    - {b dispatch}: FIFO among eligible queued requests, to the
      lowest-numbered idle worker.
    - {b shed}: a submit beyond [queue_bound] queued requests is rejected
      [Overloaded] immediately — bounded latency, not unbounded queueing.
    - {b retry}: a crashed or deadline-killed attempt is re-queued with the
      next attempt number after an exponential backoff
      ([backoff_base * backoff_mult^(failures-1)], capped at
      [backoff_cap]); after [max_attempts] failures the request is rejected
      [Failed].
    - {b deadline}: an attempt running past [deadline] seconds is killed
      ([Kill] on the next {!Tick}) and retried; deadline kills do not burn
      the restart budget (they are bounded by [max_attempts] per request).
    - {b restart budget}: unexpected worker crashes respawn the worker
      until [restart_budget] respawns have been spent; after that the
      worker slot stays dead, and when no live workers remain every queued
      request is rejected [Failed].
    - {b drain}: first-attempt queued requests are rejected [Draining] and
      new submits refused, but in-flight work (including pending retries of
      crashed in-flight attempts) runs to completion; {!Stopped} is emitted
      once nothing remains. *)

type config = {
  workers : int;  (** Worker-process shard count (>= 1). *)
  queue_bound : int;  (** Max queued (not yet running) requests (>= 0). *)
  max_attempts : int;  (** Attempts per request before [Failed] (>= 1). *)
  restart_budget : int;  (** Total crash-respawns before slots die (>= 0). *)
  backoff_base : float;  (** Seconds before the first retry (> 0). *)
  backoff_mult : float;  (** Backoff growth factor (>= 1). *)
  backoff_cap : float;  (** Ceiling on one backoff delay, seconds. *)
  deadline : float;  (** Per-attempt wall-clock budget, seconds; 0 = none. *)
}

val default : config
(** 4 workers, queue bound 64, 5 attempts, restart budget 32, backoff
    0.05s x2 capped at 1s, 30s deadline. *)

val validate : config -> (config, string) result

val backoff_delay : config -> failures:int -> float
(** Delay inserted after the [failures]-th consecutive failure of a request
    ([failures >= 1]). *)

type event =
  | Submit of string  (** A request id enters the system. *)
  | Done of int  (** Worker (by slot) delivered a response. *)
  | Crashed of int  (** Worker death observed (SIGCHLD/EOF), any cause. *)
  | Spawned of int  (** Replacement worker for the slot is running. *)
  | Tick  (** Time passed: check deadlines and backoff eligibility. *)
  | Drain  (** SIGTERM: stop accepting, finish in-flight, then stop. *)

type action =
  | Assign of {
      worker : int;
      req : string;
      attempt : int;
      deadline : float option;
      queued_for : float;
          (** Seconds this attempt waited in the queue, measured from its
              (re-)enqueue — retry backoff counts as queue wait. The
              telemetry plane's queue-wait histograms and spans are fed
              from this stamp. *)
    }
      (** Send the request to the worker; [deadline] is absolute time. *)
  | Spawn of int  (** Fork a replacement into this slot, then feed {!Spawned}. *)
  | Kill of { worker : int; req : string }
      (** SIGKILL the worker (deadline overrun); a {!Crashed} must follow. *)
  | Complete of { req : string; attempts : int }  (** Deliver the response. *)
  | Reject of { req : string; reject : Request.reject }
  | Stopped  (** Drain finished: all workers idle, nothing queued. *)

type counters = {
  accepted : int;  (** Submits admitted to the queue. *)
  shed : int;  (** Submits rejected [Overloaded]. *)
  retried : int;  (** Attempts re-queued after a crash or kill. *)
  timed_out : int;  (** Deadline kills issued. *)
  worker_crashes : int;  (** Unexpected worker deaths. *)
  completed : int;
  rejected : int;  (** [Draining] + [Failed] rejections. *)
  restarts : int;  (** Crash-respawns spent (of [restart_budget]). *)
}

type t

val create : config -> t
(** All workers start [Idle] (the driver forks the initial pool itself). *)

val step : t -> now:float -> event -> action list
(** Feed one event; perform the returned actions in order. [now] must be
    monotone across calls. Pure in (state, now, event): identical event
    sequences produce identical action sequences. *)

val counters : t -> counters
val queue_depth : t -> int

val in_flight : t -> int
(** Attempts currently running on a worker. *)

val alive : t -> int
(** Worker slots not permanently dead. *)

val is_draining : t -> bool
val is_stopped : t -> bool

val next_wakeup : t -> now:float -> float option
(** Seconds until the nearest deadline expiry or backoff eligibility —
    the driver's select timeout. [None] when nothing is pending. *)

val stats : t -> (string * int) list
(** The counters plus live gauges, in a fixed order — the [stats] wire
    response and the Obs counter names (sans the [serve.] prefix). *)
