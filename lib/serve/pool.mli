(** Worker-process mechanics: fork, pipe IPC, kill, reap.

    One {!worker} is a forked child running {!worker_main}: a loop that
    reads request lines from its parent, executes them through {!Catalog}
    single-domain, and writes response lines back. All supervision {e
    policy} lives in {!Supervisor}; this module only provides the
    primitives its actions need ([Spawn] → {!spawn}, [Assign] → {!send},
    [Kill] → {!kill}) plus the crash-observation side ({!read}, {!reap}).

    Chaos injection happens in the child: before computing, the worker
    consults {!Chaos.kills} (or the request's forced [kill_attempt]) and
    SIGKILLs itself when the decision fires — indistinguishable from a real
    crash at the parent, which is the point. *)

type worker

val spawn :
  ?chaos:Chaos.spec ->
  ?telemetry:bool ->
  ?extra_close:Unix.file_descr list ->
  wid:int ->
  unit ->
  worker
(** Fork a worker into slot [wid]. The child closes [extra_close] (the
    parent's listening socket, client connections, other workers' pipes,
    run-log fd) so it holds no descriptor it doesn't own. With
    [~telemetry:true] the child runs the engine instrumented
    ({!Ids_obs.Obs.set_enabled}), refreshes its epoch anchor, and ships a
    telemetry {!Request.frame} in every Estimated response plus a final
    {!Request.Flush} on graceful EOF. Frame deltas chain checkpoint to
    checkpoint, so the delivered frames telescope to the worker's full
    metrics ledger. *)

val wid : worker -> int
val pid : worker -> int

val read_fd : worker -> Unix.file_descr
(** The parent-side response pipe, for [select]. *)

val write_fd : worker -> Unix.file_descr
(** The parent-side request pipe. Newly forked siblings must close their
    copy of it ([extra_close]), or this worker would never see EOF on
    drain. *)

val send : worker -> attempt:int -> Request.t -> bool
(** Write one request line; [false] when the pipe is broken (the worker
    died — a [Crashed] event is already on its way via SIGCHLD). *)

val read : worker -> [ `Lines of string list | `Eof ]
(** Drain available response data (the fd is non-blocking): zero or more
    complete lines, or [`Eof] when the worker closed its end (death). *)

val kill : worker -> unit
(** SIGKILL (deadline overrun). Idempotent; the reaper observes the death. *)

val close_writer : worker -> unit
(** Close only the request pipe (EOF to the worker), keeping the response
    pipe open — the drain path does this first so a telemetry worker's exit
    {!Request.Flush} can still be read. Idempotent. *)

val shutdown : worker -> unit
(** Close both pipes: a live worker exits cleanly on EOF (drain path). *)

val worker_main : chaos:Chaos.spec -> ?telemetry:bool -> Unix.file_descr -> Unix.file_descr -> 'a
(** The child's request loop (exposed for tests): reads requests from the
    first descriptor, writes responses to the second, [Unix._exit]s on EOF.
    Never returns. *)
