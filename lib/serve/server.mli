(** The verification daemon: accept loop, event loop, graceful drain.

    [run] binds a Unix-domain socket, forks the worker pool, and serves
    {!Request} lines until SIGTERM/SIGINT: requests are queued through the
    {!Supervisor} state machine, executed by forked {!Pool} workers
    (supervised — crash detection via SIGCHLD/pipe EOF, deadline kills,
    seeded {!Chaos} self-kills, retry with exponential backoff, bounded
    restart budget, bounded-queue load shedding), and every completed
    estimate is appended to a crash-safe {!Ids_engine.Runlog.Framed} log
    that [ids_inspect --follow] can tail live.

    Instrumentation flows through the {!Ids_obs.Obs} layer (gated by
    [IDS_TRACE] like everything else): counters [serve.accepted],
    [serve.shed], [serve.retried], [serve.timed_out],
    [serve.worker_crashes]; histograms [serve.queue_depth] (observed per
    accepted request) and [serve.latency_ms] (per completed request).

    Drain semantics on SIGTERM/SIGINT: the listening socket closes
    immediately, queued first attempts are rejected [Draining], in-flight
    requests (and their pending retries) finish and are answered, workers
    are shut down via pipe EOF and reaped, the log is closed, and [run]
    returns [Ok ()]. *)

type config = {
  socket : string;  (** Unix-domain socket path. *)
  sup : Supervisor.config;
  chaos : Chaos.spec;  (** Seeded worker-kill injection (chaos runs). *)
  log_path : string;  (** Framed crash-safe run log; [""] disables. *)
  log_sync : bool;  (** fsync each record (the crash-safety guarantee). *)
  verbose : bool;
  telemetry : bool;
      (** Run workers instrumented: every Estimated response carries a
          {!Request.frame} metrics delta (folded into the {!Telemetry}
          registry), records embed their [metrics] window, and workers
          flush a final frame on graceful exit. Off by default — the E18
          byte-identity pin compares records against an uninstrumented
          oracle. *)
  trace_path : string;
      (** Where to write the merged cross-process Chrome trace on drain
          ([""] disables): queue-wait / attempt / crash spans from the
          server plus every worker's shipped compute spans, stitched under
          per-request trace ids. *)
}

val default : config
(** Socket [ids_serve.sock], log [ids_serve_runs.jsonl], {!Supervisor.default},
    no chaos, synced log, quiet, telemetry off, no trace. *)

val of_env : ?base:config -> unit -> config
(** [base] (default {!default}) overridden by the [IDS_SERVE_*] environment
    knobs: [IDS_SERVE_SOCKET], [IDS_SERVE_WORKERS], [IDS_SERVE_QUEUE],
    [IDS_SERVE_RETRIES] (max attempts), [IDS_SERVE_RESTARTS],
    [IDS_SERVE_DEADLINE_MS], [IDS_SERVE_BACKOFF_MS] (base delay),
    [IDS_SERVE_CHAOS] ({!Chaos.of_string} format), [IDS_SERVE_LOG] (empty
    disables), [IDS_SERVE_SYNC] ([0] = no fsync), [IDS_SERVE_VERBOSE],
    [IDS_SERVE_TELEMETRY] ([0] = off), [IDS_SERVE_TRACE] (merged trace
    path; empty disables).
    @raise Invalid_argument on an unparsable knob. *)

val run : config -> (unit, string) result
(** Serve until drained. [Error] covers startup failures (bad config,
    unbindable socket, unwritable log) and abnormal loop exits; a clean
    SIGTERM drain is [Ok ()]. *)
