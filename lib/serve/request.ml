module Fault = Ids_network.Fault
module Json = Ids_obs.Json
module Obs = Ids_obs.Obs

(* Same escaping as Runlog's writer: the wire is hand-emitted JSON lines. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type stats_format = Basic | Json_full | Prom

type op =
  | Estimate of {
      protocol : string;
      strategy : string;
      trials : int;
      fault : Fault.spec;
      kill_attempt : int option;
      torn_attempt : int option;
    }
  | Stats of stats_format
  | Ping

type t = { id : string; op : op; trace : (string * int) option }

let make_estimate ?(fault = Fault.none) ?kill_attempt ?torn_attempt ?trace ~id ~protocol
    ~strategy ~trials () =
  { id; op = Estimate { protocol; strategy; trials; fault; kill_attempt; torn_attempt }; trace }

let stats_format_name = function Basic -> "basic" | Json_full -> "json" | Prom -> "prom"

let to_json ?attempt t =
  let attempt_field =
    match attempt with None -> "" | Some a -> Printf.sprintf ",\"attempt\":%d" a
  in
  let trace_field =
    match t.trace with
    | None -> ""
    | Some (tid, parent) ->
      Printf.sprintf ",\"trace_id\":\"%s\",\"parent_span\":%d" (escape tid) parent
  in
  match t.op with
  | Ping -> Printf.sprintf "{\"op\":\"ping\",\"id\":\"%s\"%s%s}" (escape t.id) trace_field attempt_field
  | Stats fmt ->
    let fmt_field =
      match fmt with Basic -> "" | f -> Printf.sprintf ",\"format\":\"%s\"" (stats_format_name f)
    in
    Printf.sprintf "{\"op\":\"stats\",\"id\":\"%s\"%s%s%s}" (escape t.id) fmt_field trace_field
      attempt_field
  | Estimate { protocol; strategy; trials; fault; kill_attempt; torn_attempt } ->
    let kill_field =
      match kill_attempt with None -> "" | Some a -> Printf.sprintf ",\"kill_attempt\":%d" a
    in
    let torn_field =
      match torn_attempt with None -> "" | Some a -> Printf.sprintf ",\"torn_attempt\":%d" a
    in
    Printf.sprintf
      "{\"op\":\"estimate\",\"id\":\"%s\",\"protocol\":\"%s\",\"strategy\":\"%s\",\"trials\":%d,\"fault\":\"%s\"%s%s%s%s}"
      (escape t.id) (escape protocol) (escape strategy) trials
      (escape (Fault.to_string fault))
      kill_field torn_field trace_field attempt_field

let valid_id id =
  id <> "" && String.length id <= 200 && String.for_all (fun c -> Char.code c >= 0x20) id

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* id = field "id" Json.to_string in
  if not (valid_id id) then Error "invalid request id (empty, oversized, or control characters)"
  else
    let attempt = Option.value (Option.bind (Json.member "attempt" j) Json.to_int) ~default:1 in
    if attempt < 1 then Error "attempt must be >= 1"
    else
      let* trace =
        match Option.bind (Json.member "trace_id" j) Json.to_string with
        | None -> Ok None
        | Some tid -> (
          if not (valid_id tid) then Error "invalid trace_id"
          else
            match Option.bind (Json.member "parent_span" j) Json.to_int with
            | Some parent -> Ok (Some (tid, parent))
            | None -> Error "trace_id without parent_span")
      in
      let* op = field "op" Json.to_string in
      match op with
      | "ping" -> Ok ({ id; op = Ping; trace }, attempt)
      | "stats" -> (
        match Option.bind (Json.member "format" j) Json.to_string with
        | None | Some "basic" -> Ok ({ id; op = Stats Basic; trace }, attempt)
        | Some "json" -> Ok ({ id; op = Stats Json_full; trace }, attempt)
        | Some "prom" -> Ok ({ id; op = Stats Prom; trace }, attempt)
        | Some f -> Error (Printf.sprintf "unknown stats format %S (basic, json, prom)" f))
      | "estimate" ->
        let* protocol = field "protocol" Json.to_string in
        let* strategy = field "strategy" Json.to_string in
        let* trials = field "trials" Json.to_int in
        if trials < 1 then Error "trials must be >= 1"
        else
          let* fault =
            match Option.bind (Json.member "fault" j) Json.to_string with
            | None -> Ok Fault.none
            | Some s -> (
              match Fault.of_string s with
              | f -> Ok f
              | exception Invalid_argument m -> Error m)
          in
          let kill_attempt = Option.bind (Json.member "kill_attempt" j) Json.to_int in
          let torn_attempt = Option.bind (Json.member "torn_attempt" j) Json.to_int in
          Ok
            ( { id;
                op = Estimate { protocol; strategy; trials; fault; kill_attempt; torn_attempt };
                trace
              },
              attempt )
      | op -> Error (Printf.sprintf "unknown op %S (estimate, stats, ping)" op)

let of_line line =
  match Json.parse line with Error e -> Error e | Ok j -> of_json j

(* --- telemetry frames ----------------------------------------------------------- *)

(* A frame is one worker's telemetry shipment: a metrics delta covering the
   work since its previous frame, plus the serve-layer spans of that work
   (start times relative to [fepoch_ns]).  Frames ride inside Estimated
   responses and in the standalone Flush a worker emits on graceful exit;
   because they are embedded in a single response line, a frame is either
   delivered whole or (on a mid-write kill) not at all — there is no
   partially-applied frame. *)
type frame = {
  fpid : int;
  fseq : int;
  fepoch_ns : int;
  ftrace : (string * int) option;
  fdelta : Obs.snapshot;
  fspans : Obs.span_record list;
}

let frame_json f =
  let trace_field =
    match f.ftrace with
    | None -> ""
    | Some (tid, parent) ->
      Printf.sprintf ",\"trace_id\":\"%s\",\"parent_span\":%d" (escape tid) parent
  in
  Printf.sprintf "{\"pid\":%d,\"seq\":%d,\"epoch_ns\":%d%s,\"delta\":%s,\"spans\":%s}" f.fpid
    f.fseq f.fepoch_ns trace_field
    (Obs.snapshot_json f.fdelta)
    (Obs.spans_json ~epoch:0 f.fspans)

let frame_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "frame: missing or mistyped field %S" name)
  in
  let* fpid = field "pid" Json.to_int in
  let* fseq = field "seq" Json.to_int in
  let* fepoch_ns = field "epoch_ns" Json.to_int in
  let ftrace =
    match
      ( Option.bind (Json.member "trace_id" j) Json.to_string,
        Option.bind (Json.member "parent_span" j) Json.to_int )
    with
    | Some tid, Some parent -> Some (tid, parent)
    | _ -> None
  in
  let* delta_j =
    match Json.member "delta" j with Some d -> Ok d | None -> Error "frame: missing \"delta\""
  in
  let* fdelta = Obs.snapshot_of_json delta_j in
  let* fspans =
    match Json.member "spans" j with None -> Ok [] | Some s -> Obs.spans_of_json s
  in
  Ok { fpid; fseq; fepoch_ns; ftrace; fdelta; fspans }

(* --- responses ----------------------------------------------------------------- *)

type reject = Overloaded | Draining | Bad_request of string | Failed of string

type response =
  | Estimated of { id : string; attempts : int; record : string; telemetry : frame option }
  | Stats_reply of { id : string; stats : (string * int) list; body : string option }
  | Pong of { id : string }
  | Rejected of { id : string; reject : reject }
  | Flush of frame

let response_id = function
  | Estimated { id; _ } | Stats_reply { id; _ } | Pong { id } | Rejected { id; _ } -> id
  | Flush _ -> ""

let response_to_json = function
  | Estimated { id; attempts; record; telemetry } ->
    let telemetry_field =
      match telemetry with None -> "" | Some f -> ",\"telemetry\":" ^ frame_json f
    in
    Printf.sprintf "{\"id\":\"%s\",\"status\":\"ok\",\"attempts\":%d,\"record\":\"%s\"%s}"
      (escape id) attempts (escape record) telemetry_field
  | Stats_reply { id; stats; body } ->
    let body_field =
      match body with None -> "" | Some b -> Printf.sprintf ",\"body\":\"%s\"" (escape b)
    in
    Printf.sprintf "{\"id\":\"%s\",\"status\":\"stats\",\"stats\":{%s}%s}" (escape id)
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) stats))
      body_field
  | Flush f -> Printf.sprintf "{\"id\":\"\",\"status\":\"telemetry\",\"frame\":%s}" (frame_json f)
  | Pong { id } -> Printf.sprintf "{\"id\":\"%s\",\"status\":\"pong\"}" (escape id)
  | Rejected { id; reject } -> (
    let simple status = Printf.sprintf "{\"id\":\"%s\",\"status\":\"%s\"}" (escape id) status in
    match reject with
    | Overloaded -> simple "overloaded"
    | Draining -> simple "draining"
    | Bad_request m ->
      Printf.sprintf "{\"id\":\"%s\",\"status\":\"bad_request\",\"error\":\"%s\"}" (escape id)
        (escape m)
    | Failed m ->
      Printf.sprintf "{\"id\":\"%s\",\"status\":\"failed\",\"error\":\"%s\"}" (escape id) (escape m))

let response_of_line line =
  let ( let* ) = Result.bind in
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
    let field name conv =
      match Option.bind (Json.member name j) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
    in
    let* id = field "id" Json.to_string in
    let* status = field "status" Json.to_string in
    let error_msg () =
      Option.value (Option.bind (Json.member "error" j) Json.to_string) ~default:"unspecified"
    in
    match status with
    | "ok" ->
      let* attempts = field "attempts" Json.to_int in
      let* record = field "record" Json.to_string in
      let* telemetry =
        match Json.member "telemetry" j with
        | None -> Ok None
        | Some f -> Result.map Option.some (frame_of_json f)
      in
      Ok (Estimated { id; attempts; record; telemetry })
    | "stats" -> (
      match Json.member "stats" j with
      | Some (Json.Obj fields) ->
        let stats =
          List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v)) fields
        in
        let body = Option.bind (Json.member "body" j) Json.to_string in
        Ok (Stats_reply { id; stats; body })
      | _ -> Error "missing or mistyped field \"stats\"")
    | "telemetry" -> (
      match Json.member "frame" j with
      | None -> Error "missing or mistyped field \"frame\""
      | Some f -> Result.map (fun frame -> Flush frame) (frame_of_json f))
    | "pong" -> Ok (Pong { id })
    | "overloaded" -> Ok (Rejected { id; reject = Overloaded })
    | "draining" -> Ok (Rejected { id; reject = Draining })
    | "bad_request" -> Ok (Rejected { id; reject = Bad_request (error_msg ()) })
    | "failed" -> Ok (Rejected { id; reject = Failed (error_msg ()) })
    | s -> Error (Printf.sprintf "unknown status %S" s))
