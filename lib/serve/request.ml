module Fault = Ids_network.Fault
module Json = Ids_obs.Json

(* Same escaping as Runlog's writer: the wire is hand-emitted JSON lines. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type op =
  | Estimate of {
      protocol : string;
      strategy : string;
      trials : int;
      fault : Fault.spec;
      kill_attempt : int option;
    }
  | Stats
  | Ping

type t = { id : string; op : op }

let make_estimate ?(fault = Fault.none) ?kill_attempt ~id ~protocol ~strategy ~trials () =
  { id; op = Estimate { protocol; strategy; trials; fault; kill_attempt } }

let to_json ?attempt t =
  let attempt_field =
    match attempt with None -> "" | Some a -> Printf.sprintf ",\"attempt\":%d" a
  in
  match t.op with
  | Ping -> Printf.sprintf "{\"op\":\"ping\",\"id\":\"%s\"%s}" (escape t.id) attempt_field
  | Stats -> Printf.sprintf "{\"op\":\"stats\",\"id\":\"%s\"%s}" (escape t.id) attempt_field
  | Estimate { protocol; strategy; trials; fault; kill_attempt } ->
    let kill_field =
      match kill_attempt with None -> "" | Some a -> Printf.sprintf ",\"kill_attempt\":%d" a
    in
    Printf.sprintf
      "{\"op\":\"estimate\",\"id\":\"%s\",\"protocol\":\"%s\",\"strategy\":\"%s\",\"trials\":%d,\"fault\":\"%s\"%s%s}"
      (escape t.id) (escape protocol) (escape strategy) trials
      (escape (Fault.to_string fault))
      kill_field attempt_field

let valid_id id =
  id <> "" && String.length id <= 200 && String.for_all (fun c -> Char.code c >= 0x20) id

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let* id = field "id" Json.to_string in
  if not (valid_id id) then Error "invalid request id (empty, oversized, or control characters)"
  else
    let attempt = Option.value (Option.bind (Json.member "attempt" j) Json.to_int) ~default:1 in
    if attempt < 1 then Error "attempt must be >= 1"
    else
      let* op = field "op" Json.to_string in
      match op with
      | "ping" -> Ok ({ id; op = Ping }, attempt)
      | "stats" -> Ok ({ id; op = Stats }, attempt)
      | "estimate" ->
        let* protocol = field "protocol" Json.to_string in
        let* strategy = field "strategy" Json.to_string in
        let* trials = field "trials" Json.to_int in
        if trials < 1 then Error "trials must be >= 1"
        else
          let* fault =
            match Option.bind (Json.member "fault" j) Json.to_string with
            | None -> Ok Fault.none
            | Some s -> (
              match Fault.of_string s with
              | f -> Ok f
              | exception Invalid_argument m -> Error m)
          in
          let kill_attempt = Option.bind (Json.member "kill_attempt" j) Json.to_int in
          Ok ({ id; op = Estimate { protocol; strategy; trials; fault; kill_attempt } }, attempt)
      | op -> Error (Printf.sprintf "unknown op %S (estimate, stats, ping)" op)

let of_line line =
  match Json.parse line with Error e -> Error e | Ok j -> of_json j

(* --- responses ----------------------------------------------------------------- *)

type reject = Overloaded | Draining | Bad_request of string | Failed of string

type response =
  | Estimated of { id : string; attempts : int; record : string }
  | Stats_reply of { id : string; stats : (string * int) list }
  | Pong of { id : string }
  | Rejected of { id : string; reject : reject }

let response_id = function
  | Estimated { id; _ } | Stats_reply { id; _ } | Pong { id } | Rejected { id; _ } -> id

let response_to_json = function
  | Estimated { id; attempts; record } ->
    Printf.sprintf "{\"id\":\"%s\",\"status\":\"ok\",\"attempts\":%d,\"record\":\"%s\"}" (escape id)
      attempts (escape record)
  | Stats_reply { id; stats } ->
    Printf.sprintf "{\"id\":\"%s\",\"status\":\"stats\",\"stats\":{%s}}" (escape id)
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) stats))
  | Pong { id } -> Printf.sprintf "{\"id\":\"%s\",\"status\":\"pong\"}" (escape id)
  | Rejected { id; reject } -> (
    let simple status = Printf.sprintf "{\"id\":\"%s\",\"status\":\"%s\"}" (escape id) status in
    match reject with
    | Overloaded -> simple "overloaded"
    | Draining -> simple "draining"
    | Bad_request m ->
      Printf.sprintf "{\"id\":\"%s\",\"status\":\"bad_request\",\"error\":\"%s\"}" (escape id)
        (escape m)
    | Failed m ->
      Printf.sprintf "{\"id\":\"%s\",\"status\":\"failed\",\"error\":\"%s\"}" (escape id) (escape m))

let response_of_line line =
  let ( let* ) = Result.bind in
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> (
    let field name conv =
      match Option.bind (Json.member name j) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
    in
    let* id = field "id" Json.to_string in
    let* status = field "status" Json.to_string in
    let error_msg () =
      Option.value (Option.bind (Json.member "error" j) Json.to_string) ~default:"unspecified"
    in
    match status with
    | "ok" ->
      let* attempts = field "attempts" Json.to_int in
      let* record = field "record" Json.to_string in
      Ok (Estimated { id; attempts; record })
    | "stats" -> (
      match Json.member "stats" j with
      | Some (Json.Obj fields) ->
        let stats =
          List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v)) fields
        in
        Ok (Stats_reply { id; stats })
      | _ -> Error "missing or mistyped field \"stats\"")
    | "pong" -> Ok (Pong { id })
    | "overloaded" -> Ok (Rejected { id; reject = Overloaded })
    | "draining" -> Ok (Rejected { id; reject = Draining })
    | "bad_request" -> Ok (Rejected { id; reject = Bad_request (error_msg ()) })
    | "failed" -> Ok (Rejected { id; reject = Failed (error_msg ()) })
    | s -> Error (Printf.sprintf "unknown status %S" s))
