type worker = {
  wid : int;
  pid : int;
  req_w : Unix.file_descr;  (* parent writes request lines *)
  resp_r : Unix.file_descr;  (* parent reads response lines (non-blocking) *)
  buf : Buffer.t;  (* partial response line *)
  mutable closed : bool;
}

let wid w = w.wid
let pid w = w.pid
let read_fd w = w.resp_r
let write_fd w = w.req_w

(* --- the child ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec put o = if o < len then put (o + Unix.write_substring fd s o (len - o)) in
  put 0

let worker_main ~chaos rfd wfd =
  (* The parent controls this process's lifecycle through the pipes (EOF =
     drain) and SIGKILL (deadline); terminal-delivered signals must not take
     a shard down mid-request. *)
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ic = Unix.in_channel_of_descr rfd in
  let respond resp =
    match write_all wfd (Request.response_to_json resp ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error _ -> Unix._exit 0 (* parent is gone *)
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Unix._exit 0
    | line ->
      (match Request.of_line line with
      | Error e -> respond (Request.Rejected { id = ""; reject = Request.Bad_request e })
      | Ok ({ Request.id; op }, attempt) -> (
        match op with
        | Request.Ping -> respond (Request.Pong { id })
        | Request.Stats ->
          respond
            (Request.Rejected { id; reject = Request.Bad_request "stats is answered by the daemon" })
        | Request.Estimate { protocol; strategy; trials; fault; kill_attempt } ->
          let die =
            match kill_attempt with
            | Some a -> a = attempt
            | None -> Chaos.kills chaos ~id ~attempt
          in
          if die then Unix.kill (Unix.getpid ()) Sys.sigkill;
          let resp =
            match Catalog.execute_request ~protocol ~strategy ~trials ~fault with
            | Ok record -> Request.Estimated { id; attempts = attempt; record }
            | Error e -> Request.Rejected { id; reject = Request.Bad_request e }
          in
          respond resp));
      loop ()
  in
  loop ()

(* --- the parent side ------------------------------------------------------------ *)

let spawn ?(chaos = Chaos.none) ?(extra_close = []) ~wid () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* Unflushed stdio would be duplicated into the child's exit path. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) extra_close;
    worker_main ~chaos req_r resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    Unix.set_nonblock resp_r;
    { wid; pid; req_w; resp_r; buf = Buffer.create 256; closed = false }

let send w ~attempt req =
  match write_all w.req_w (Request.to_json ~attempt req ^ "\n") with
  | () -> true
  | exception Unix.Unix_error _ -> false

let read w =
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read w.resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> `Closed
    | n ->
      Buffer.add_subbytes w.buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Open
    | exception Unix.Unix_error _ -> `Closed
  in
  let state = drain () in
  let data = Buffer.contents w.buf in
  Buffer.clear w.buf;
  let rec split o acc =
    match String.index_from_opt data o '\n' with
    | Some i -> split (i + 1) (String.sub data o (i - o) :: acc)
    | None ->
      Buffer.add_string w.buf (String.sub data o (String.length data - o));
      List.rev acc
  in
  let lines = split 0 [] in
  match (state, lines) with
  | `Closed, [] -> `Eof
  | _, lines -> `Lines lines

let kill w = try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()

let shutdown w =
  if not w.closed then begin
    w.closed <- true;
    (try Unix.close w.req_w with Unix.Unix_error _ -> ());
    try Unix.close w.resp_r with Unix.Unix_error _ -> ()
  end
