module Obs = Ids_obs.Obs

type worker = {
  wid : int;
  pid : int;
  req_w : Unix.file_descr;  (* parent writes request lines *)
  resp_r : Unix.file_descr;  (* parent reads response lines (non-blocking) *)
  buf : Buffer.t;  (* partial response line *)
  mutable wclosed : bool;  (* request pipe closed (EOF sent) *)
  mutable closed : bool;
}

let wid w = w.wid
let pid w = w.pid
let read_fd w = w.resp_r
let write_fd w = w.req_w

(* --- the child ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec put o = if o < len then put (o + Unix.write_substring fd s o (len - o)) in
  put 0

let worker_main ~chaos ?(telemetry = false) rfd wfd =
  (* The parent controls this process's lifecycle through the pipes (EOF =
     drain) and SIGKILL (deadline); terminal-delivered signals must not take
     a shard down mid-request. *)
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* With telemetry on, this worker runs the engine instrumented and ships
     metric deltas back as frames: each frame is a snapshot of the cells
     accumulated since the previous frame, and the cells are cleared the
     instant the snapshot is taken.  The worker is single-threaded between
     requests, so every tick lands in exactly one frame and the sum of
     delivered frames telescopes to the worker's full ledger no matter
     where the chain is cut by a kill.  Snapshot-and-reset (rather than a
     checkpoint chain) keeps the cell tables — and the walk that merges
     them — bounded by one request's worth of cells, and [Obs.reset] also
     drops the shards of engine domains joined during the request, so a
     long-lived worker's frame cost never grows.  The anchor is refreshed
     first so shipped span times are relative to this worker's own birth,
     not the parent's.  Unless the operator asked for the deep IDS_TRACE
     mode, only the wire-ledger counters stay live — the inner-loop
     instrumentation would cost real throughput (see bench/telemetry
     phase B). *)
  if telemetry then begin
    Obs.refresh_epoch ();
    if not (Obs.enabled ()) then Obs.set_metric_filter (Some [ "net." ]);
    Obs.set_enabled true
  end;
  let seq = ref 0 in
  let next_frame ~trace spans =
    if not telemetry then None
    else begin
      incr seq;
      let delta = Obs.snapshot () in
      Obs.reset ();
      Some
        { Request.fpid = Unix.getpid ();
          fseq = !seq;
          fepoch_ns = Obs.epoch_ns ();
          ftrace = trace;
          fdelta = delta;
          fspans = spans
        }
    end
  in
  let ic = Unix.in_channel_of_descr rfd in
  let respond_line line =
    match write_all wfd line with
    | () -> ()
    | exception Unix.Unix_error _ -> Unix._exit 0 (* parent is gone *)
  in
  let respond resp = respond_line (Request.response_to_json resp ^ "\n") in
  let rec loop () =
    match input_line ic with
    | exception End_of_file ->
      (match next_frame ~trace:None [] with Some f -> respond (Request.Flush f) | None -> ());
      Unix._exit 0
    | line ->
      (match Request.of_line line with
      | Error e -> respond (Request.Rejected { id = ""; reject = Request.Bad_request e })
      | Ok (req, attempt) -> (
        let id = req.Request.id in
        match req.Request.op with
        | Request.Ping -> respond (Request.Pong { id })
        | Request.Stats _ ->
          respond
            (Request.Rejected { id; reject = Request.Bad_request "stats is answered by the daemon" })
        | Request.Estimate { protocol; strategy; trials; fault; kill_attempt; torn_attempt } ->
          let die =
            match kill_attempt with
            | Some a -> a = attempt
            | None -> Chaos.kills chaos ~id ~attempt
          in
          if die then Unix.kill (Unix.getpid ()) Sys.sigkill;
          let t0 = Obs.now_ns () in
          let result = Catalog.execute_request ~protocol ~strategy ~trials ~fault in
          let t1 = Obs.now_ns () in
          (match result with
          | Ok record ->
            let frame =
              let spans =
                if not telemetry then []
                else
                  let epoch = Obs.epoch_ns () in
                  [ { Obs.sname = "worker.execute";
                      sround = attempt;
                      snode = -1;
                      sdomain = 0;
                      start_ns = t0 - epoch;
                      dur_ns = t1 - t0
                    }
                  ]
              in
              next_frame ~trace:req.Request.trace spans
            in
            let out =
              Request.response_to_json
                (Request.Estimated { id; attempts = attempt; record; telemetry = frame })
              ^ "\n"
            in
            (match torn_attempt with
            | Some a when a = attempt ->
              (* Die mid-frame: ship roughly half the line, then SIGKILL.
                 The parent must salvage nothing from the partial line and
                 count the gap. *)
              (try ignore (Unix.write_substring wfd out 0 (String.length out / 2))
               with Unix.Unix_error _ -> ());
              Unix.kill (Unix.getpid ()) Sys.sigkill
            | _ -> ());
            respond_line out
          | Error e -> respond (Request.Rejected { id; reject = Request.Bad_request e }))));
      loop ()
  in
  loop ()

(* --- the parent side ------------------------------------------------------------ *)

let spawn ?(chaos = Chaos.none) ?(telemetry = false) ?(extra_close = []) ~wid () =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* Unflushed stdio would be duplicated into the child's exit path. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close req_w;
    Unix.close resp_r;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) extra_close;
    worker_main ~chaos ~telemetry req_r resp_w
  | pid ->
    Unix.close req_r;
    Unix.close resp_w;
    Unix.set_nonblock resp_r;
    { wid; pid; req_w; resp_r; buf = Buffer.create 256; wclosed = false; closed = false }

let send w ~attempt req =
  match write_all w.req_w (Request.to_json ~attempt req ^ "\n") with
  | () -> true
  | exception Unix.Unix_error _ -> false

let read w =
  let chunk = Bytes.create 8192 in
  let rec drain () =
    match Unix.read w.resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> `Closed
    | n ->
      Buffer.add_subbytes w.buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Open
    | exception Unix.Unix_error _ -> `Closed
  in
  let state = drain () in
  let data = Buffer.contents w.buf in
  Buffer.clear w.buf;
  let rec split o acc =
    match String.index_from_opt data o '\n' with
    | Some i -> split (i + 1) (String.sub data o (i - o) :: acc)
    | None ->
      Buffer.add_string w.buf (String.sub data o (String.length data - o));
      List.rev acc
  in
  let lines = split 0 [] in
  match (state, lines) with
  | `Closed, [] -> `Eof
  | _, lines -> `Lines lines

let kill w = try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()

let close_writer w =
  if not w.wclosed then begin
    w.wclosed <- true;
    try Unix.close w.req_w with Unix.Unix_error _ -> ()
  end

let shutdown w =
  if not w.closed then begin
    w.closed <- true;
    close_writer w;
    try Unix.close w.resp_r with Unix.Unix_error _ -> ()
  end
