module Obs = Ids_obs.Obs

(* --- latency histograms ---------------------------------------------------------

   Same log-2 bucketing as Obs.Histo, but over microseconds and owned by the
   server loop (single writer, no shards needed), with count and sum kept
   exactly so means are exact and only the quantiles are bucket-granular. *)

type hist = { mutable count : int; mutable sum_us : int; buckets : int array }

let hist () = { count = 0; sum_us = 0; buckets = Array.make 64 0 }

let observe_us h us =
  let us = Int.max 0 us in
  h.count <- h.count + 1;
  h.sum_us <- h.sum_us + us;
  let b = Obs.Histo.bucket_of us in
  h.buckets.(b) <- h.buckets.(b) + 1

let observe_s h s = observe_us h (int_of_float (s *. 1e6))

(* Upper bound of the smallest bucket prefix holding >= q of the mass: the
   reported pXX is "no observation in the quantile exceeded this", at
   power-of-two granularity. *)
let quantile_us h q =
  if h.count = 0 then 0.
  else begin
    let need = int_of_float (ceil (q *. float_of_int h.count)) in
    let need = Int.max 1 need in
    let acc = ref 0 and b = ref 0 in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         acc := !acc + h.buckets.(i);
         if !acc >= need then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !b = 0 then 1. else Float.of_int (1 lsl !b)
  end

let mean_us h = if h.count = 0 then 0. else float_of_int h.sum_us /. float_of_int h.count

(* --- per-shard fold -------------------------------------------------------------- *)

type shard = {
  swid : int;
  mutable spid : int;
  mutable sgenerations : int;  (* distinct worker incarnations seen *)
  mutable sframes : int;
  mutable sseq : int;  (* last frame seq folded for the current pid *)
  mutable slost : int;  (* counted delta gaps: crashes + seq holes *)
  mutable sledger : Obs.snapshot;
}

type proto = {
  mutable completed : int;
  mutable failed : int;
  mutable retries : int;  (* attempts beyond each request's first *)
  q : hist;  (* queue wait *)
  r : hist;  (* worker run (last attempt) *)
  tot : hist;  (* submit -> response *)
}

type t = { shards : shard array; protos : (string, proto) Hashtbl.t; mutable flushes : int }

let create ~workers =
  { shards =
      Array.init workers (fun swid ->
          { swid;
            spid = 0;
            sgenerations = 0;
            sframes = 0;
            sseq = 0;
            slost = 0;
            sledger = Obs.empty
          });
    protos = Hashtbl.create 8;
    flushes = 0
  }

let proto_of t name =
  match Hashtbl.find_opt t.protos name with
  | Some p -> p
  | None ->
    let p = { completed = 0; failed = 0; retries = 0; q = hist (); r = hist (); tot = hist () } in
    Hashtbl.add t.protos name p;
    p

let on_frame t ~wid (f : Request.frame) =
  let s = t.shards.(wid) in
  if f.Request.fpid <> s.spid then begin
    (* New worker incarnation: its frame chain restarts at 1. *)
    s.spid <- f.Request.fpid;
    s.sgenerations <- s.sgenerations + 1;
    s.sseq <- 0
  end;
  (* A hole in the sequence is a frame that was produced but never arrived
     — count it as lost rather than pretending continuity. *)
  if f.Request.fseq > s.sseq + 1 then s.slost <- s.slost + (f.Request.fseq - s.sseq - 1);
  s.sseq <- Int.max s.sseq f.Request.fseq;
  s.sframes <- s.sframes + 1;
  s.sledger <- Obs.merge s.sledger f.Request.fdelta

let on_flush t ~wid f =
  t.flushes <- t.flushes + 1;
  on_frame t ~wid f

let on_lost t ~wid =
  let s = t.shards.(wid) in
  s.slost <- s.slost + 1

let on_request t ~protocol ~attempts ~queue_s ~run_s ~total_s ~ok =
  let p = proto_of t protocol in
  if ok then p.completed <- p.completed + 1 else p.failed <- p.failed + 1;
  p.retries <- p.retries + Int.max 0 (attempts - 1);
  observe_s p.q queue_s;
  if ok then observe_s p.r run_s;
  observe_s p.tot total_s

let lost_deltas t = Array.fold_left (fun acc s -> acc + s.slost) 0 t.shards
let frames t = Array.fold_left (fun acc s -> acc + s.sframes) 0 t.shards
let merged t = Array.fold_left (fun acc s -> Obs.merge acc s.sledger) Obs.empty t.shards

(* --- exposition ------------------------------------------------------------------ *)

let availability service =
  let get k = Option.value (List.assoc_opt k service) ~default:0 in
  let completed = get "completed" and rejected = get "rejected" in
  if completed + rejected = 0 then 1.
  else float_of_int completed /. float_of_int (completed + rejected)

let sorted_protos t =
  Hashtbl.fold (fun name p acc -> (name, p) :: acc) t.protos []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let ms f = f /. 1000.

let hist_json h =
  Printf.sprintf "{\"count\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f}" h.count
    (ms (mean_us h))
    (ms (quantile_us h 0.50))
    (ms (quantile_us h 0.99))

let to_json t ~service ~uptime_s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"uptime_s\":%.3f,\"availability\":%.4f,\"lost_deltas\":%d,\"frames\":%d,\"flushes\":%d"
       uptime_s (availability service) (lost_deltas t) (frames t) t.flushes);
  Buffer.add_string buf ",\"service\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" k v))
    service;
  Buffer.add_string buf "},\"protocols\":[";
  List.iteri
    (fun i (name, p) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"protocol\":\"%s\",\"completed\":%d,\"failed\":%d,\"retries\":%d,\"queue_ms\":%s,\"run_ms\":%s,\"total_ms\":%s}"
           name p.completed p.failed p.retries (hist_json p.q) (hist_json p.r) (hist_json p.tot)))
    (sorted_protos t);
  Buffer.add_string buf "],\"shards\":[";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"wid\":%d,\"pid\":%d,\"generations\":%d,\"frames\":%d,\"lost_deltas\":%d,\"counters\":{%s}}"
           s.swid s.spid s.sgenerations s.sframes s.slost
           (String.concat ","
              (List.map
                 (fun (c : Obs.counter_snapshot) ->
                   Printf.sprintf "\"%s\":%d" c.Obs.cname c.Obs.total)
                 s.sledger.Obs.counters))))
    t.shards;
  Buffer.add_string buf "],\"ledger\":";
  Buffer.add_string buf (Obs.snapshot_json (merged t));
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_prometheus t ~service ~uptime_s =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# TYPE ids_uptime_seconds gauge";
  line "ids_uptime_seconds %.3f" uptime_s;
  line "# TYPE ids_availability gauge";
  line "ids_availability %.4f" (availability service);
  line "# TYPE ids_serve_events_total counter";
  List.iter (fun (k, v) -> line "ids_serve_events_total{event=\"%s\"} %d" k v) service;
  line "# TYPE ids_telemetry_lost_deltas_total counter";
  line "ids_telemetry_lost_deltas_total %d" (lost_deltas t);
  line "# TYPE ids_shard_frames_total counter";
  Array.iter (fun s -> line "ids_shard_frames_total{wid=\"%d\"} %d" s.swid s.sframes) t.shards;
  line "# TYPE ids_shard_lost_deltas_total counter";
  Array.iter (fun s -> line "ids_shard_lost_deltas_total{wid=\"%d\"} %d" s.swid s.slost) t.shards;
  line "# TYPE ids_requests_total counter";
  List.iter
    (fun (name, p) ->
      line "ids_requests_total{protocol=\"%s\",outcome=\"completed\"} %d" name p.completed;
      line "ids_requests_total{protocol=\"%s\",outcome=\"failed\"} %d" name p.failed)
    (sorted_protos t);
  line "# TYPE ids_request_retries_total counter";
  List.iter
    (fun (name, p) -> line "ids_request_retries_total{protocol=\"%s\"} %d" name p.retries)
    (sorted_protos t);
  let quantiles metric pick =
    line "# TYPE %s summary" metric;
    List.iter
      (fun (name, p) ->
        let h = pick p in
        List.iter
          (fun q ->
            line "%s{protocol=\"%s\",quantile=\"%g\"} %.3f" metric name q (ms (quantile_us h q)))
          [ 0.5; 0.99 ];
        line "%s_count{protocol=\"%s\"} %d" metric name h.count)
      (sorted_protos t)
  in
  quantiles "ids_request_queue_ms" (fun p -> p.q);
  quantiles "ids_request_run_ms" (fun p -> p.r);
  quantiles "ids_request_total_ms" (fun p -> p.tot);
  line "# TYPE ids_obs_counter_total counter";
  List.iter
    (fun (c : Obs.counter_snapshot) -> line "ids_obs_counter_total{name=\"%s\"} %d" c.Obs.cname c.Obs.total)
    (merged t).Obs.counters;
  Buffer.contents buf
