type config = {
  workers : int;
  queue_bound : int;
  max_attempts : int;
  restart_budget : int;
  backoff_base : float;
  backoff_mult : float;
  backoff_cap : float;
  deadline : float;
}

let default =
  { workers = 4;
    queue_bound = 64;
    max_attempts = 5;
    restart_budget = 32;
    backoff_base = 0.05;
    backoff_mult = 2.0;
    backoff_cap = 1.0;
    deadline = 30.0
  }

let validate c =
  let err fmt = Printf.ksprintf Result.error fmt in
  if c.workers < 1 then err "workers must be >= 1 (got %d)" c.workers
  else if c.queue_bound < 0 then err "queue_bound must be >= 0 (got %d)" c.queue_bound
  else if c.max_attempts < 1 then err "max_attempts must be >= 1 (got %d)" c.max_attempts
  else if c.restart_budget < 0 then err "restart_budget must be >= 0 (got %d)" c.restart_budget
  else if not (c.backoff_base > 0.) then err "backoff_base must be > 0 (got %g)" c.backoff_base
  else if not (c.backoff_mult >= 1.) then err "backoff_mult must be >= 1 (got %g)" c.backoff_mult
  else if not (c.backoff_cap >= c.backoff_base) then
    err "backoff_cap must be >= backoff_base (got %g < %g)" c.backoff_cap c.backoff_base
  else if not (c.deadline >= 0.) then err "deadline must be >= 0 (got %g)" c.deadline
  else Ok c

let backoff_delay c ~failures =
  if failures < 1 then invalid_arg "Supervisor.backoff_delay: failures must be >= 1";
  Float.min c.backoff_cap (c.backoff_base *. (c.backoff_mult ** float_of_int (failures - 1)))

type event = Submit of string | Done of int | Crashed of int | Spawned of int | Tick | Drain

type action =
  | Assign of {
      worker : int;
      req : string;
      attempt : int;
      deadline : float option;
      queued_for : float;
    }
  | Spawn of int
  | Kill of { worker : int; req : string }
  | Complete of { req : string; attempts : int }
  | Reject of { req : string; reject : Request.reject }
  | Stopped

type counters = {
  accepted : int;
  shed : int;
  retried : int;
  timed_out : int;
  worker_crashes : int;
  completed : int;
  rejected : int;
  restarts : int;
}

(* [Doomed] is the window between a deadline [Kill] whose response raced the
   signal (the worker answered, so the request completed) and the SIGKILL's
   [Crashed]: the death is expected and carries no request. *)
type wstate =
  | Idle
  | Busy of { req : string; attempt : int; deadline : float option }
  | Killing of { req : string; attempt : int }
  | Doomed
  | Respawning
  | Dead

(* [q_enq] stamps when the request (re-)entered the queue; the wait reported
   on Assign is measured from it, so retry backoff counts as queue wait. *)
type queued = { q_req : string; q_attempt : int; eligible : float; q_enq : float }

type t = {
  cfg : config;
  slots : wstate array;
  mutable queue : queued list;  (* FIFO; dispatch takes the first eligible *)
  mutable draining : bool;
  mutable stopped : bool;
  mutable c : counters;
}

let create cfg =
  { cfg;
    slots = Array.make cfg.workers Idle;
    queue = [];
    draining = false;
    stopped = false;
    c =
      { accepted = 0; shed = 0; retried = 0; timed_out = 0; worker_crashes = 0; completed = 0;
        rejected = 0; restarts = 0
      }
  }

let counters t = t.c
let queue_depth t = List.length t.queue

let in_flight t =
  Array.fold_left
    (fun acc -> function Busy _ | Killing _ -> acc + 1 | Idle | Doomed | Respawning | Dead -> acc)
    0 t.slots

let alive t = Array.fold_left (fun acc s -> if s = Dead then acc else acc + 1) 0 t.slots
let is_draining t = t.draining
let is_stopped t = t.stopped

(* --- the transition function ---------------------------------------------------- *)

let dispatch t ~now acc =
  (* Lowest idle slot gets the first eligible queued request, repeatedly. *)
  let acc = ref acc in
  let continue = ref true in
  while !continue do
    let idle = ref (-1) in
    Array.iteri (fun i s -> if !idle < 0 && s = Idle then idle := i) t.slots;
    if !idle < 0 then continue := false
    else
      let rec take seen = function
        | [] -> None
        | q :: rest when q.eligible <= now -> Some (q, List.rev_append seen rest)
        | q :: rest -> take (q :: seen) rest
      in
      match take [] t.queue with
      | None -> continue := false
      | Some (q, rest) ->
        t.queue <- rest;
        let deadline = if t.cfg.deadline > 0. then Some (now +. t.cfg.deadline) else None in
        t.slots.(!idle) <- Busy { req = q.q_req; attempt = q.q_attempt; deadline };
        acc :=
          Assign
            { worker = !idle;
              req = q.q_req;
              attempt = q.q_attempt;
              deadline;
              queued_for = Float.max 0. (now -. q.q_enq)
            }
          :: !acc
  done;
  !acc

let reject_all_queued t reject acc =
  let acc =
    List.fold_left (fun acc q -> Reject { req = q.q_req; reject } :: acc) acc t.queue
  in
  t.c <- { t.c with rejected = t.c.rejected + List.length t.queue };
  t.queue <- [];
  acc

(* A failed attempt (crash or deadline kill): schedule the retry or give up. *)
let retry_or_fail t ~now ~req ~attempt acc =
  if attempt >= t.cfg.max_attempts then begin
    t.c <- { t.c with rejected = t.c.rejected + 1 };
    Reject
      { req;
        reject = Request.Failed (Printf.sprintf "gave up after %d attempts" attempt)
      }
    :: acc
  end
  else begin
    t.c <- { t.c with retried = t.c.retried + 1 };
    t.queue <-
      t.queue
      @ [ { q_req = req;
            q_attempt = attempt + 1;
            eligible = now +. backoff_delay t.cfg ~failures:attempt;
            q_enq = now
          }
        ];
    acc
  end

(* Crash-respawns spend the restart budget; a slot past it stays dead. *)
let respawn_budgeted t wid acc =
  if t.c.restarts < t.cfg.restart_budget then begin
    t.c <- { t.c with restarts = t.c.restarts + 1 };
    t.slots.(wid) <- Respawning;
    Spawn wid :: acc
  end
  else begin
    t.slots.(wid) <- Dead;
    if alive t = 0 then reject_all_queued t (Request.Failed "worker pool exhausted") acc else acc
  end

(* Deadline kills are policy, not failure: the replacement is free. *)
let respawn_free t wid acc =
  t.slots.(wid) <- Respawning;
  Spawn wid :: acc

let step t ~now ev =
  if t.stopped then []
  else begin
    let acc = [] in
    let acc =
      match ev with
      | Submit req ->
        if t.draining then begin
          t.c <- { t.c with rejected = t.c.rejected + 1 };
          Reject { req; reject = Request.Draining } :: acc
        end
        else if alive t = 0 then begin
          t.c <- { t.c with rejected = t.c.rejected + 1 };
          Reject { req; reject = Request.Failed "worker pool exhausted" } :: acc
        end
        else if queue_depth t >= t.cfg.queue_bound then begin
          t.c <- { t.c with shed = t.c.shed + 1 };
          Reject { req; reject = Request.Overloaded } :: acc
        end
        else begin
          t.c <- { t.c with accepted = t.c.accepted + 1 };
          t.queue <- t.queue @ [ { q_req = req; q_attempt = 1; eligible = now; q_enq = now } ];
          acc
        end
      | Done wid -> (
        match t.slots.(wid) with
        | Busy { req; attempt; _ } ->
          t.c <- { t.c with completed = t.c.completed + 1 };
          t.slots.(wid) <- Idle;
          Complete { req; attempts = attempt } :: acc
        | Killing { req; attempt } ->
          (* The response outran the SIGKILL: keep the result, and expect the
             death as a request-free event. *)
          t.c <- { t.c with completed = t.c.completed + 1 };
          t.slots.(wid) <- Doomed;
          Complete { req; attempts = attempt } :: acc
        | Idle | Doomed | Respawning | Dead -> acc)
      | Crashed wid -> (
        match t.slots.(wid) with
        | Busy { req; attempt; _ } ->
          t.c <- { t.c with worker_crashes = t.c.worker_crashes + 1 };
          let acc = retry_or_fail t ~now ~req ~attempt acc in
          respawn_budgeted t wid acc
        | Killing { req; attempt } ->
          let acc = retry_or_fail t ~now ~req ~attempt acc in
          respawn_free t wid acc
        | Doomed -> respawn_free t wid acc
        | Idle ->
          t.c <- { t.c with worker_crashes = t.c.worker_crashes + 1 };
          respawn_budgeted t wid acc
        | Respawning | Dead -> acc)
      | Spawned wid -> (
        match t.slots.(wid) with
        | Respawning ->
          t.slots.(wid) <- Idle;
          acc
        | _ -> acc)
      | Tick ->
        let acc = ref acc in
        Array.iteri
          (fun wid s ->
            match s with
            | Busy { req; attempt; deadline = Some d } when d <= now ->
              t.c <- { t.c with timed_out = t.c.timed_out + 1 };
              t.slots.(wid) <- Killing { req; attempt };
              acc := Kill { worker = wid; req } :: !acc
            | _ -> ())
          t.slots;
        !acc
      | Drain ->
        t.draining <- true;
        (* Pending first attempts are refused; pending retries are in-flight
           work that crashed mid-drain's predecessor — they finish. *)
        let refuse, keep = List.partition (fun q -> q.q_attempt = 1) t.queue in
        t.c <- { t.c with rejected = t.c.rejected + List.length refuse };
        t.queue <- keep;
        List.fold_left
          (fun acc q -> Reject { req = q.q_req; reject = Request.Draining } :: acc)
          acc refuse
    in
    let acc = dispatch t ~now acc in
    let acc =
      if t.draining && (not t.stopped) && in_flight t = 0 && t.queue = [] then begin
        t.stopped <- true;
        Stopped :: acc
      end
      else acc
    in
    List.rev acc
  end

let next_wakeup t ~now =
  if t.stopped then None
  else
    let best = ref infinity in
    let consider ts = if ts < !best then best := ts in
    Array.iter (function Busy { deadline = Some d; _ } -> consider d | _ -> ()) t.slots;
    List.iter (fun q -> if q.eligible > now then consider q.eligible) t.queue;
    if !best = infinity then None else Some (Float.max 0. (!best -. now))

let stats t =
  [ ("accepted", t.c.accepted);
    ("shed", t.c.shed);
    ("retried", t.c.retried);
    ("timed_out", t.c.timed_out);
    ("worker_crashes", t.c.worker_crashes);
    ("completed", t.c.completed);
    ("rejected", t.c.rejected);
    ("restarts", t.c.restarts);
    ("queue_depth", queue_depth t);
    ("in_flight", in_flight t);
    ("alive", alive t)
  ]
