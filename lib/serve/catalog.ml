module Fault = Ids_network.Fault
module Adversary = Ids_proof.Adversary
module Stats = Ids_proof.Stats
module Engine = Ids_engine.Engine
module Runlog = Ids_engine.Runlog
module Obs = Ids_obs.Obs

type entry = {
  protocol : string;
  strategy : string;
  kind : string;
  n : int;
  run : fault:Fault.spec -> int -> Ids_engine.Accum.trial;
}

(* Adversary.cases rebuilds its fixed instances on every call; the daemon's
   workers serve many requests, so build once per process. *)
let entries_lazy =
  lazy
    (List.map
       (fun (c : Adversary.case) ->
         { protocol = c.Adversary.protocol;
           strategy = c.Adversary.strategy;
           kind = Adversary.kind_to_string c.Adversary.kind;
           n = c.Adversary.n;
           run = (fun ~fault seed -> Stats.trial_of_outcome (c.Adversary.run ~fault seed))
         })
       (Adversary.cases ()))

let entries () = Lazy.force entries_lazy

let find ~protocol ~strategy =
  let all = entries () in
  match List.find_opt (fun e -> e.protocol = protocol && e.strategy = strategy) all with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown workload %s/%s (known: %s)" protocol strategy
         (String.concat ", " (List.map (fun e -> e.protocol ^ "/" ^ e.strategy) all)))

let execute e ~trials ~fault = Engine.run ~domains:1 ~trials (fun seed -> e.run ~fault seed)

let record_of e ?metrics ~fault est =
  let fault_label = if Fault.is_none fault then None else Some (Fault.to_string fault) in
  Runlog.to_json ?fault:fault_label ?metrics ~protocol:e.protocol ~n:e.n
    ~prover:(e.kind ^ ":" ^ e.strategy) est

let execute_request ~protocol ~strategy ~trials ~fault =
  match find ~protocol ~strategy with
  | Error e -> Error e
  | Ok entry ->
    (* When the process runs instrumented (telemetry workers, IDS_TRACE),
       embed the request's own metrics window in the record, same as [bench
       est] and [Sweep.run] do — so bit-profile tables work on daemon logs.
       The window is a checkpoint delta, not a snapshot-and-reset, because
       a serving worker's ledger must keep accumulating across requests. *)
    if Obs.enabled () then begin
      let cp = Obs.checkpoint () in
      let est = execute entry ~trials ~fault in
      let metrics = Obs.snapshot_json (Obs.since cp) in
      Ok (record_of entry ~metrics ~fault est)
    end
    else Ok (record_of entry ~fault (execute entry ~trials ~fault))
