type t = { fd : Unix.file_descr; buf : Buffer.t; mutable closed : bool }

let connect ?(wait = 2.0) path =
  let deadline = Unix.gettimeofday () +. wait in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; buf = Buffer.create 256; closed = false }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        (* The daemon may still be binding its socket: retry briefly. *)
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let len = String.length s in
  let rec put o = if o < len then put (o + Unix.write_substring fd s o (len - o)) in
  put 0

let send t req =
  if t.closed then Error "connection closed"
  else
    match write_all t.fd (Request.to_json req ^ "\n") with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      close t;
      Error (Printf.sprintf "send: %s" (Unix.error_message e))

(* One line from the socket (blocking); the buffer carries read-ahead between
   calls so pipelined responses are not lost. *)
let read_line t =
  let rec take () =
    let data = Buffer.contents t.buf in
    match String.index_opt data '\n' with
    | Some i ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub data (i + 1) (String.length data - i - 1));
      Ok (String.sub data 0 i)
    | None -> (
      let chunk = Bytes.create 8192 in
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        close t;
        Error "connection closed by daemon"
      | n ->
        Buffer.add_subbytes t.buf chunk 0 n;
        take ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
      | exception Unix.Unix_error (e, _, _) ->
        close t;
        Error (Printf.sprintf "recv: %s" (Unix.error_message e)))
  in
  if t.closed then Error "connection closed" else take ()

let recv t =
  match read_line t with
  | Error _ as e -> e
  | Ok line -> Request.response_of_line line

let request t req =
  match send t req with
  | Error _ as e -> e
  | Ok () ->
    (* Skip responses for other ids (pipelined traffic is the bench's job;
       interleaving here would be a caller bug, but don't wedge on it). *)
    let rec wait () =
      match recv t with
      | Error _ as e -> e
      | Ok resp ->
        let rid = Request.response_id resp in
        if rid = req.Request.id || rid = "" then Ok resp else wait ()
    in
    wait ()
