(** Seeded worker-kill injection for the serving daemon.

    The chaos bench needs worker crashes that are {e reproducible}: the same
    requests must die on the same attempts on every machine, at every
    [IDS_DOMAINS] setting, so availability numbers and recovery pins can be
    compared across runs. Following the fault layer's discipline
    ({!Ids_network.Fault}), kill decisions are therefore never drawn from
    shared generator state: each one is a fresh splitmix64 stream keyed by
    [(spec seed, request id, attempt)]. The worker process consults
    {!kills} once per attempt, before computing, and SIGKILLs itself when
    the decision fires — an honest crash from the supervisor's point of
    view. *)

type spec = {
  kill : float;  (** Per-attempt self-kill probability, in [0, 1]. *)
  seed : int;  (** Keys every decision stream; same seed = same kills. *)
}

val none : spec
(** Kill rate zero: workers never self-kill. *)

val make : ?kill:float -> ?seed:int -> unit -> spec
(** [kill] defaults to [0.], [seed] to [0].
    @raise Invalid_argument if [kill] is outside [0, 1]. *)

val is_none : spec -> bool

val to_string : spec -> string
(** Canonical label, e.g. ["kill=0.1,seed=42"] or ["none"]; the format
    {!of_string} parses. *)

val of_string : string -> spec
(** Parse a comma-separated list of [kill=R] and [seed=N] (plus [none] /
    empty items, which are ignored). This is the [IDS_SERVE_CHAOS] format.
    @raise Invalid_argument on an unknown key or unparsable value. *)

val of_env : unit -> spec option
(** The spec named by the [IDS_SERVE_CHAOS] environment variable, if set to
    a non-empty string. @raise Invalid_argument if set but unparsable. *)

val kills : spec -> id:string -> attempt:int -> bool
(** Does attempt [attempt] (1-based) of request [id] die? Pure in its
    arguments: retries re-roll (the stream is keyed by the attempt number),
    so a killed request survives eventually with probability 1. *)
