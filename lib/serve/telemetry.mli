(** The daemon's service-wide telemetry registry.

    Workers ship {!Request.frame} metric deltas (one per completed request,
    plus a flush on graceful exit); the server folds them here, keyed by
    shard (worker slot). The fold obeys an exactly-once discipline:

    - a frame folds when — and only when — its carrier line was delivered
      whole; a worker killed mid-write loses the entire line, so no partial
      frame can ever reach the fold;
    - a delta that dies with its worker (crash while assigned, torn write,
      or a hole in the per-incarnation frame sequence) is {e counted} in
      [lost_deltas] — the aggregate says how many windows are missing
      rather than silently absorbing the gap;
    - retried attempts recompute from scratch on another worker and fold
      once, with their own frame.

    Consequently the additive fields of the folded ledger (counter totals,
    per-round sums, histogram buckets) are exactly the sum of the deltas
    that were delivered — the E20 bench pins this bit-exactly against an
    in-process oracle.

    Request latencies (queue wait, worker run, submit-to-response) are
    recorded per protocol in log-2 microsecond histograms with exact counts
    and sums; reported p50/p99 are bucket upper bounds (power-of-two
    granularity), means are exact. *)

type t

val create : workers:int -> t

val on_frame : t -> wid:int -> Request.frame -> unit
(** Fold one delivered frame into the shard's ledger. Detects worker
    incarnation changes by pid (resetting the expected frame sequence) and
    counts sequence holes as lost deltas. *)

val on_flush : t -> wid:int -> Request.frame -> unit
(** {!on_frame} plus the graceful-exit flush counter. *)

val on_lost : t -> wid:int -> unit
(** Count one lost delta: the worker died while assigned and no response
    for the request was salvaged from its pipe. *)

val on_request :
  t ->
  protocol:string ->
  attempts:int ->
  queue_s:float ->
  run_s:float ->
  total_s:float ->
  ok:bool ->
  unit
(** Record one finished request (completed or finally rejected) in the
    per-protocol tables. [queue_s] is cumulative over attempts, [run_s]
    the last attempt's worker time, [total_s] submit to response. *)

val lost_deltas : t -> int
val frames : t -> int

val merged : t -> Ids_obs.Obs.snapshot
(** The service-wide ledger: every shard's folded deltas merged. *)

val to_json : t -> service:(string * int) list -> uptime_s:float -> string
(** The full telemetry document (one line): uptime, availability
    (completed / (completed + rejected) from the [service] counters),
    [service] counters verbatim, per-protocol latency tables, per-shard
    fold state with counter totals, and the merged ledger as
    {!Ids_obs.Obs.snapshot_json}. *)

val to_prometheus : t -> service:(string * int) list -> uptime_s:float -> string
(** Prometheus-style text exposition of the same data. *)
