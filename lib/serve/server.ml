module Obs = Ids_obs.Obs
module Trace = Ids_obs.Trace
module Runlog = Ids_engine.Runlog

let c_accepted = Obs.Counter.make "serve.accepted"
let c_shed = Obs.Counter.make "serve.shed"
let c_retried = Obs.Counter.make "serve.retried"
let c_timed_out = Obs.Counter.make "serve.timed_out"
let c_crashes = Obs.Counter.make "serve.worker_crashes"
let c_lost = Obs.Counter.make "telemetry.lost_deltas"
let h_queue = Obs.Histo.make "serve.queue_depth"
let h_latency = Obs.Histo.make "serve.latency_ms"

type config = {
  socket : string;
  sup : Supervisor.config;
  chaos : Chaos.spec;
  log_path : string;
  log_sync : bool;
  verbose : bool;
  telemetry : bool;
  trace_path : string;
}

(* [telemetry] defaults off: instrumented workers embed a [metrics] object
   in their records, and the E18 byte-identity pin compares records against
   an uninstrumented in-process oracle. *)
let default =
  { socket = "ids_serve.sock";
    sup = Supervisor.default;
    chaos = Chaos.none;
    log_path = "ids_serve_runs.jsonl";
    log_sync = true;
    verbose = false;
    telemetry = false;
    trace_path = ""
  }

(* --- environment knobs ----------------------------------------------------------- *)

let getenv name = match Sys.getenv_opt name with None | Some "" -> None | some -> some

let int_env name default =
  match getenv name with
  | None -> default
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "%s: expected an integer, got %S" name v))

(* Millisecond knobs on the wire, seconds internally. *)
let ms_env name default =
  match getenv name with
  | None -> default
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some ms -> ms /. 1000.
    | None -> invalid_arg (Printf.sprintf "%s: expected milliseconds, got %S" name v))

let bool_env name default =
  match getenv name with None -> default | Some v -> not (String.trim v = "0")

let of_env ?(base = default) () =
  let sup =
    { base.sup with
      Supervisor.workers = int_env "IDS_SERVE_WORKERS" base.sup.Supervisor.workers;
      queue_bound = int_env "IDS_SERVE_QUEUE" base.sup.Supervisor.queue_bound;
      max_attempts = int_env "IDS_SERVE_RETRIES" base.sup.Supervisor.max_attempts;
      restart_budget = int_env "IDS_SERVE_RESTARTS" base.sup.Supervisor.restart_budget;
      deadline = ms_env "IDS_SERVE_DEADLINE_MS" base.sup.Supervisor.deadline;
      backoff_base = ms_env "IDS_SERVE_BACKOFF_MS" base.sup.Supervisor.backoff_base
    }
  in
  { socket = Option.value (getenv "IDS_SERVE_SOCKET") ~default:base.socket;
    sup;
    chaos = Option.value (Chaos.of_env ()) ~default:base.chaos;
    log_path =
      (match Sys.getenv_opt "IDS_SERVE_LOG" with None -> base.log_path | Some p -> p);
    log_sync = bool_env "IDS_SERVE_SYNC" base.log_sync;
    verbose = bool_env "IDS_SERVE_VERBOSE" base.verbose;
    telemetry = bool_env "IDS_SERVE_TELEMETRY" base.telemetry;
    trace_path =
      (match Sys.getenv_opt "IDS_SERVE_TRACE" with None -> base.trace_path | Some p -> p)
  }

(* --- the event loop -------------------------------------------------------------- *)

type client = { cfd : Unix.file_descr; cbuf : Buffer.t; mutable cclosed : bool }

(* Per-request trace state: which trace the request belongs to, where its
   current attempt is running, and the events stitched so far (server-side
   queue-wait/attempt spans plus the worker's shipped spans, re-based). *)
type rtrace = {
  tr_id : string;
  mutable tr_span : int;  (* parent-span id handed to the current attempt *)
  mutable tr_wid : int;  (* -1 when not assigned *)
  mutable tr_assign_ns : int;
  mutable tr_submit_ns : int;
  mutable tr_queue_s : float;  (* cumulative queue wait over attempts *)
  mutable tr_run_s : float;  (* last completed attempt's worker time *)
  mutable tr_evs : Trace.ev list;  (* newest first *)
}

type pending = { preq : Request.t; pclient : client; pt0 : float; ptr : rtrace }

(* Monotonic seconds: deadlines must not jump with wall-clock adjustments. *)
let now () = float_of_int (Obs.now_ns ()) /. 1e9

(* Drain a non-blocking fd into [buf]; return the complete lines plus whether
   the peer closed. *)
let drain_lines fd buf =
  let chunk = Bytes.create 8192 in
  let rec fill () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> true
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      fill ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> false
    | exception Unix.Unix_error _ -> true
  in
  let eof = fill () in
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec split o acc =
    match String.index_from_opt data o '\n' with
    | Some i -> split (i + 1) (String.sub data o (i - o) :: acc)
    | None ->
      Buffer.add_string buf (String.sub data o (String.length data - o));
      List.rev acc
  in
  (split 0 [], eof)

let run cfg =
  match Supervisor.validate cfg.sup with
  | Error e -> Error ("invalid supervisor config: " ^ e)
  | Ok scfg -> (
    let log_result =
      if cfg.log_path = "" then Ok None
      else
        match Runlog.Framed.create ~sync:cfg.log_sync cfg.log_path with
        | Ok w -> Ok (Some w)
        | Error e -> Error (Printf.sprintf "run log %s: %s" cfg.log_path e)
    in
    match log_result with
    | Error e -> Error e
    | Ok log -> (
      let logf fmt =
        Printf.ksprintf
          (fun s ->
            if cfg.verbose then
              Printf.eprintf "[ids_serve %.3f] %s\n%!" (float_of_int (Obs.now_ns ()) /. 1e9) s)
          fmt
      in
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let bound =
        try
          (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
          Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
          Unix.listen listen_fd 64;
          Unix.set_nonblock listen_fd;
          Ok ()
        with Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "cannot listen on %s: %s" cfg.socket (Unix.error_message e))
      in
      match bound with
      | Error e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Option.iter Runlog.Framed.close log;
        Error e
      | Ok () ->
        let sup = Supervisor.create scfg in
        let workers = Array.make scfg.Supervisor.workers None in
        let pid2wid = Hashtbl.create 16 in
        let clients = ref [] in
        let pending : (string, pending) Hashtbl.t = Hashtbl.create 64 in
        let resp_by_id : (string, Request.response) Hashtbl.t = Hashtbl.create 64 in
        let events : Supervisor.event Queue.t = Queue.create () in
        let post ev = Queue.add ev events in
        let stopped = ref false in
        let listening = ref true in
        let drain_posted = ref false in
        let boot = now () in

        (* The telemetry plane: worker frames fold here; request latencies
           and trace events are recorded here regardless of [telemetry], so
           the stats endpoint always has latency tables (the ledger stays
           empty unless workers ship deltas). *)
        let reg = Telemetry.create ~workers:scfg.Supervisor.workers in
        let tracing = cfg.trace_path <> "" in
        let trace_buf : Trace.ev list ref = ref [] in
        let trace_cap = 65536 in
        let trace_len = ref 0 in
        let trace_dropped = ref 0 in
        let keep_evs evs =
          if tracing then
            List.iter
              (fun ev ->
                if !trace_len >= trace_cap then incr trace_dropped
                else begin
                  trace_buf := ev :: !trace_buf;
                  incr trace_len
                end)
              evs
        in
        let span_ctr = ref 0 in
        let next_span () =
          incr span_ctr;
          !span_ctr
        in
        let trace_ctr = ref 0 in
        let mint_trace_id () =
          incr trace_ctr;
          Printf.sprintf "t%d-%d" (Unix.getpid ()) !trace_ctr
        in
        let mk_rtrace req =
          let tr_id =
            match req.Request.trace with Some (tid, _) -> tid | None -> mint_trace_id ()
          in
          { tr_id;
            tr_span = 0;
            tr_wid = -1;
            tr_assign_ns = 0;
            tr_submit_ns = Obs.now_ns ();
            tr_queue_s = 0.;
            tr_run_s = 0.;
            tr_evs = []
          }
        in
        let ev ~name ~pid ~tid ~ts_ns ~dur_ns args =
          { Trace.ename = name; epid = pid; etid = tid; ets_ns = ts_ns; edur_ns = dur_ns;
            eargs = args
          }
        in
        let self_pid = Unix.getpid () in

        (* Signals only write one byte to the self-pipe; all real work happens
           in the select loop. *)
        let sp_r, sp_w = Unix.pipe () in
        Unix.set_nonblock sp_r;
        Unix.set_nonblock sp_w;
        let notify b =
          try ignore (Unix.write_substring sp_w b 0 1) with Unix.Unix_error _ -> ()
        in
        let prev_chld = Sys.signal Sys.sigchld (Sys.Signal_handle (fun _ -> notify "c")) in
        let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> notify "t")) in
        let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> notify "t")) in
        let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in

        let close_client c =
          if not c.cclosed then begin
            c.cclosed <- true;
            (try Unix.close c.cfd with Unix.Unix_error _ -> ());
            clients := List.filter (fun c' -> c' != c) !clients
          end
        in
        let respond c resp =
          if not c.cclosed then begin
            let s = Request.response_to_json resp ^ "\n" in
            let len = String.length s in
            let rec put o tries =
              if o < len then
                match Unix.write_substring c.cfd s o (len - o) with
                | n -> put (o + n) tries
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  if tries = 0 then close_client c
                  else begin
                    (* Client not reading: wait briefly for buffer space, with a
                       bound so one stuck client cannot wedge the daemon. *)
                    ignore (Unix.select [] [ c.cfd ] [] 0.05);
                    put o (tries - 1)
                  end
                | exception Unix.Unix_error _ -> close_client c
            in
            put 0 100
          end
        in

        let extra_close () =
          let acc = ref [ listen_fd; sp_r; sp_w ] in
          List.iter (fun c -> acc := c.cfd :: !acc) !clients;
          Array.iter
            (function
              | Some w -> acc := Pool.read_fd w :: Pool.write_fd w :: !acc
              | None -> ())
            workers;
          !acc
        in
        let spawn_into wid =
          let w =
            Pool.spawn ~chaos:cfg.chaos ~telemetry:cfg.telemetry ~extra_close:(extra_close ())
              ~wid ()
          in
          workers.(wid) <- Some w;
          Hashtbl.replace pid2wid (Pool.pid w) wid;
          logf "worker %d spawned (pid %d)" wid (Pool.pid w)
        in

        let protocol_of p =
          match p.preq.Request.op with
          | Request.Estimate { protocol; _ } -> protocol
          | Request.Stats _ | Request.Ping -> "-"
        in
        (* Close the books on one request: the root span and the
           per-protocol latency tables. *)
        let finalize p ~ok ~attempts =
          let tr = p.ptr in
          let now_ns = Obs.now_ns () in
          keep_evs
            [ ev ~name:"serve.request" ~pid:self_pid ~tid:0 ~ts_ns:tr.tr_submit_ns
                ~dur_ns:(now_ns - tr.tr_submit_ns)
                [ ("trace_id", tr.tr_id);
                  ("protocol", protocol_of p);
                  ("attempts", string_of_int attempts);
                  ("outcome", (if ok then "ok" else "rejected"))
                ]
            ];
          Telemetry.on_request reg ~protocol:(protocol_of p) ~attempts ~queue_s:tr.tr_queue_s
            ~run_s:tr.tr_run_s
            ~total_s:(float_of_int (now_ns - tr.tr_submit_ns) /. 1e9)
            ~ok
        in

        let finish req_id =
          match Hashtbl.find_opt pending req_id with
          | None -> ()
          | Some p ->
            Hashtbl.remove pending req_id;
            let resp =
              match Hashtbl.find_opt resp_by_id req_id with
              | Some r ->
                Hashtbl.remove resp_by_id req_id;
                r
              | None ->
                Request.Rejected { id = req_id; reject = Request.Failed "response lost" }
            in
            (match (resp, log) with
            | Request.Estimated { record; _ }, Some lw -> (
              try Runlog.Framed.write lw record
              with Unix.Unix_error (e, _, _) ->
                Printf.eprintf "[ids_serve] run log write failed: %s\n%!"
                  (Unix.error_message e))
            | _ -> ());
            Obs.Histo.observe h_latency (int_of_float ((now () -. p.pt0) *. 1000.));
            let ok, attempts =
              match resp with Request.Estimated { attempts; _ } -> (true, attempts) | _ -> (false, 1)
            in
            finalize p ~ok ~attempts;
            respond p.pclient resp
        in
        let reject req_id rej =
          match Hashtbl.find_opt pending req_id with
          | None -> ()
          | Some p ->
            Hashtbl.remove pending req_id;
            Hashtbl.remove resp_by_id req_id;
            finalize p ~ok:false ~attempts:1;
            respond p.pclient (Request.Rejected { id = req_id; reject = rej })
        in
        let do_action = function
          | Supervisor.Assign { worker; req; attempt; deadline = _; queued_for } -> (
            match (workers.(worker), Hashtbl.find_opt pending req) with
            | Some w, Some p ->
              let tr = p.ptr in
              let now_ns = Obs.now_ns () in
              let wait_ns = int_of_float (queued_for *. 1e9) in
              tr.tr_queue_s <- tr.tr_queue_s +. queued_for;
              keep_evs
                [ ev ~name:"serve.queue_wait" ~pid:self_pid ~tid:0 ~ts_ns:(now_ns - wait_ns)
                    ~dur_ns:wait_ns
                    [ ("trace_id", tr.tr_id); ("attempt", string_of_int attempt) ]
                ];
              tr.tr_span <- next_span ();
              tr.tr_wid <- worker;
              tr.tr_assign_ns <- now_ns;
              (* A send to a just-died worker fails silently; the Crashed event
                 already en route schedules the retry. *)
              ignore
                (Pool.send w ~attempt
                   { p.preq with Request.trace = Some (tr.tr_id, tr.tr_span) }
                  : bool)
            | _ -> ())
          | Supervisor.Spawn wid ->
            spawn_into wid;
            post (Supervisor.Spawned wid)
          | Supervisor.Kill { worker; req } -> (
            match workers.(worker) with
            | Some w ->
              logf "deadline: killing worker %d (request %s)" worker req;
              Pool.kill w
            | None -> ())
          | Supervisor.Complete { req; attempts = _ } -> finish req
          | Supervisor.Reject { req; reject = rej } -> reject req rej
          | Supervisor.Stopped -> stopped := true
        in
        let bump before after =
          let d get c =
            let d = get after - get before in
            if d > 0 then Obs.Counter.add c d
          in
          d (fun (x : Supervisor.counters) -> x.accepted) c_accepted;
          d (fun x -> x.shed) c_shed;
          d (fun x -> x.retried) c_retried;
          d (fun x -> x.timed_out) c_timed_out;
          d (fun x -> x.worker_crashes) c_crashes
        in
        let process_all () =
          while not (Queue.is_empty events) do
            let ev = Queue.take events in
            let before = Supervisor.counters sup in
            let actions = Supervisor.step sup ~now:(now ()) ev in
            let after = Supervisor.counters sup in
            bump before after;
            if after.accepted > before.accepted then
              Obs.Histo.observe h_queue (Supervisor.queue_depth sup);
            List.iter do_action actions
          done
        in

        let handle_request_line c line =
          match Request.of_line line with
          | Error e -> respond c (Request.Rejected { id = ""; reject = Request.Bad_request e })
          | Ok (req, _) -> (
            match req.Request.op with
            | Request.Ping -> respond c (Request.Pong { id = req.Request.id })
            | Request.Stats fmt ->
              let service = Supervisor.stats sup in
              let stats =
                service
                @ [ ("telemetry_frames", Telemetry.frames reg);
                    ("lost_deltas", Telemetry.lost_deltas reg)
                  ]
              in
              let uptime_s = now () -. boot in
              let body =
                match fmt with
                | Request.Basic -> None
                | Request.Json_full -> Some (Telemetry.to_json reg ~service ~uptime_s)
                | Request.Prom -> Some (Telemetry.to_prometheus reg ~service ~uptime_s)
              in
              respond c (Request.Stats_reply { id = req.Request.id; stats; body })
            | Request.Estimate { protocol; strategy; _ } ->
              let id = req.Request.id in
              if Hashtbl.mem pending id then
                respond c
                  (Request.Rejected
                     { id; reject = Request.Bad_request "duplicate in-flight id" })
              else (
                (* Catch unknown workloads here rather than burning worker
                   attempts on them. *)
                match Catalog.find ~protocol ~strategy with
                | Error e -> respond c (Request.Rejected { id; reject = Request.Bad_request e })
                | Ok _ ->
                  Hashtbl.replace pending id
                    { preq = req; pclient = c; pt0 = now (); ptr = mk_rtrace req };
                  post (Supervisor.Submit id)))
        in
        let read_client c =
          let lines, eof = drain_lines c.cfd c.cbuf in
          List.iter (handle_request_line c) lines;
          if eof then close_client c
        in
        let accept_clients () =
          let rec go () =
            match Unix.accept ~cloexec:false listen_fd with
            | cfd, _ ->
              Unix.set_nonblock cfd;
              clients := { cfd; cbuf = Buffer.create 256; cclosed = false } :: !clients;
              go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error _ -> ()
          in
          if !listening then go ()
        in

        (* Worker lines: exit flushes fold straight into the registry;
           Estimated responses fold their frame (exactly once per delivered
           line) and stitch the worker's shipped spans into the request's
           trace, re-based from the worker's epoch anchor back onto the
           shared machine clock. *)
        let handle_worker_line wid line =
          match Request.response_of_line line with
          | Ok (Request.Flush f) ->
            logf "worker %d: exit flush (seq %d)" wid f.Request.fseq;
            Telemetry.on_flush reg ~wid f
          | Ok resp ->
            (match resp with
            | Request.Estimated { id; telemetry = Some f; _ } ->
              Telemetry.on_frame reg ~wid f;
              (match Hashtbl.find_opt pending id with
              | Some p ->
                let tr = p.ptr in
                tr.tr_run_s <- float_of_int (Obs.now_ns () - tr.tr_assign_ns) /. 1e9;
                tr.tr_wid <- -1;
                keep_evs
                  (List.map
                     (fun s ->
                       Trace.ev_of_span ~pid:f.Request.fpid ~base_ns:f.Request.fepoch_ns
                         ~args:
                           [ ("trace_id", tr.tr_id);
                             ("parent_span", string_of_int tr.tr_span)
                           ]
                         s)
                     f.Request.fspans)
              | None -> ())
            | Request.Estimated { id; telemetry = None; _ } -> (
              match Hashtbl.find_opt pending id with
              | Some p ->
                p.ptr.tr_run_s <- float_of_int (Obs.now_ns () - p.ptr.tr_assign_ns) /. 1e9;
                p.ptr.tr_wid <- -1
              | None -> ())
            | _ -> ());
            Hashtbl.replace resp_by_id (Request.response_id resp) resp;
            post (Supervisor.Done wid)
          | Error e -> logf "worker %d: unparsable response (%s)" wid e
        in
        let worker_dead wid =
          match workers.(wid) with
          | None -> ()
          | Some w ->
            (* Salvage any response that outran the death (deadline-kill race):
               its Done must precede the Crashed. *)
            (match Pool.read w with
            | `Lines lines -> List.iter (handle_worker_line wid) lines
            | `Eof -> ());
            (* Any request still assigned here whose response was not
               salvaged died with its telemetry window: count the gap. *)
            Hashtbl.iter
              (fun req_id p ->
                let tr = p.ptr in
                if tr.tr_wid = wid && not (Hashtbl.mem resp_by_id req_id) then begin
                  tr.tr_wid <- -1;
                  if cfg.telemetry then begin
                    Telemetry.on_lost reg ~wid;
                    Obs.Counter.add c_lost 1
                  end;
                  let now_ns = Obs.now_ns () in
                  keep_evs
                    [ ev ~name:"serve.attempt_crashed" ~pid:self_pid ~tid:0
                        ~ts_ns:tr.tr_assign_ns
                        ~dur_ns:(now_ns - tr.tr_assign_ns)
                        [ ("trace_id", tr.tr_id); ("wid", string_of_int wid) ]
                    ]
                end)
              pending;
            Hashtbl.remove pid2wid (Pool.pid w);
            Pool.shutdown w;
            workers.(wid) <- None;
            logf "worker %d died (pid %d)" wid (Pool.pid w);
            post (Supervisor.Crashed wid)
        in
        let read_worker w =
          match Pool.read w with
          | `Lines lines -> List.iter (handle_worker_line (Pool.wid w)) lines
          | `Eof -> worker_dead (Pool.wid w)
        in
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] (-1) with
          | 0, _ -> ()
          | pid, _ ->
            (match Hashtbl.find_opt pid2wid pid with
            | Some wid -> worker_dead wid
            | None -> () (* already handled via pipe EOF *));
            reap ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
        in
        let request_drain () =
          if not !drain_posted then begin
            drain_posted := true;
            logf "drain requested";
            if !listening then begin
              listening := false;
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
            end;
            post Supervisor.Drain
          end
        in
        let read_selfpipe () =
          let chunk = Bytes.create 64 in
          let rec go () =
            match Unix.read sp_r chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              for i = 0 to n - 1 do
                match Bytes.get chunk i with
                | 'c' -> reap ()
                | 't' -> request_drain ()
                | _ -> ()
              done;
              go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error _ -> ()
          in
          go ()
        in

        (* The initial pool: Supervisor.create starts every slot Idle. *)
        for wid = 0 to scfg.Supervisor.workers - 1 do
          spawn_into wid
        done;
        logf "listening on %s (%d workers, chaos %s)" cfg.socket scfg.Supervisor.workers
          (Chaos.to_string cfg.chaos);

        let worker_fd_pairs () =
          Array.fold_left
            (fun acc -> function Some w -> (Pool.read_fd w, w) :: acc | None -> acc)
            [] workers
        in
        while not !stopped do
          let timeout =
            match Supervisor.next_wakeup sup ~now:(now ()) with
            | Some s -> Float.min 0.25 (Float.max 0.001 s)
            | None -> 0.25
          in
          let wpairs = worker_fd_pairs () in
          let rfds =
            (if !listening then [ listen_fd ] else [])
            @ (sp_r :: List.map fst wpairs)
            @ List.map (fun c -> c.cfd) !clients
          in
          (match Unix.select rfds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            List.iter
              (fun fd ->
                if fd = sp_r then read_selfpipe ()
                else if !listening && fd = listen_fd then accept_clients ()
                else
                  (* Re-resolve: an earlier handler may have closed this fd. *)
                  match
                    List.find_opt
                      (fun (rfd, w) ->
                        rfd = fd
                        &&
                        match workers.(Pool.wid w) with
                        | Some cur -> cur == w
                        | None -> false)
                      wpairs
                  with
                  | Some (_, w) -> read_worker w
                  | None -> (
                    match List.find_opt (fun c -> c.cfd = fd && not c.cclosed) !clients with
                    | Some c -> read_client c
                    | None -> ()))
              ready);
          post Supervisor.Tick;
          process_all ()
        done;

        (* Drained: EOF the workers' request pipes (clean exit); telemetry
           workers answer with a final Flush frame first, so keep the
           response pipes open and fold those before closing up. *)
        Array.iter (function Some w -> Pool.close_writer w | None -> ()) workers;
        let flush_deadline = now () +. 5. in
        let rec collect_flushes () =
          let wpairs = worker_fd_pairs () in
          if wpairs <> [] && now () < flush_deadline then begin
            (match Unix.select (List.map fst wpairs) [] [] 0.25 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | ready, _, _ ->
              List.iter
                (fun fd ->
                  match List.find_opt (fun (rfd, _) -> rfd = fd) wpairs with
                  | Some (_, w) -> (
                    match Pool.read w with
                    | `Lines lines -> List.iter (handle_worker_line (Pool.wid w)) lines
                    | `Eof ->
                      Pool.shutdown w;
                      workers.(Pool.wid w) <- None)
                  | None -> ())
                ready);
            collect_flushes ()
          end
        in
        if cfg.telemetry then collect_flushes ();
        Array.iter (function Some w -> Pool.shutdown w | None -> ()) workers;
        let rec reap_all () =
          match Unix.waitpid [] (-1) with
          | _ -> reap_all ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap_all ()
        in
        reap_all ();
        if tracing then begin
          (match Trace.export_events_file cfg.trace_path (List.rev !trace_buf) with
          | () ->
            logf "trace: %d events written to %s%s" !trace_len cfg.trace_path
              (if !trace_dropped > 0 then Printf.sprintf " (%d dropped)" !trace_dropped else "")
          | exception Sys_error e ->
            Printf.eprintf "[ids_serve] trace export failed: %s\n%!" e)
        end;
        List.iter close_client !clients;
        if !listening then begin
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
        end;
        (try Unix.close sp_r with Unix.Unix_error _ -> ());
        (try Unix.close sp_w with Unix.Unix_error _ -> ());
        Option.iter Runlog.Framed.close log;
        Sys.set_signal Sys.sigchld prev_chld;
        Sys.set_signal Sys.sigterm prev_term;
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigpipe prev_pipe;
        logf "drained cleanly";
        Ok ()))
