module Obs = Ids_obs.Obs
module Runlog = Ids_engine.Runlog

let c_accepted = Obs.Counter.make "serve.accepted"
let c_shed = Obs.Counter.make "serve.shed"
let c_retried = Obs.Counter.make "serve.retried"
let c_timed_out = Obs.Counter.make "serve.timed_out"
let c_crashes = Obs.Counter.make "serve.worker_crashes"
let h_queue = Obs.Histo.make "serve.queue_depth"
let h_latency = Obs.Histo.make "serve.latency_ms"

type config = {
  socket : string;
  sup : Supervisor.config;
  chaos : Chaos.spec;
  log_path : string;
  log_sync : bool;
  verbose : bool;
}

let default =
  { socket = "ids_serve.sock";
    sup = Supervisor.default;
    chaos = Chaos.none;
    log_path = "ids_serve_runs.jsonl";
    log_sync = true;
    verbose = false
  }

(* --- environment knobs ----------------------------------------------------------- *)

let getenv name = match Sys.getenv_opt name with None | Some "" -> None | some -> some

let int_env name default =
  match getenv name with
  | None -> default
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "%s: expected an integer, got %S" name v))

(* Millisecond knobs on the wire, seconds internally. *)
let ms_env name default =
  match getenv name with
  | None -> default
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some ms -> ms /. 1000.
    | None -> invalid_arg (Printf.sprintf "%s: expected milliseconds, got %S" name v))

let bool_env name default =
  match getenv name with None -> default | Some v -> not (String.trim v = "0")

let of_env ?(base = default) () =
  let sup =
    { base.sup with
      Supervisor.workers = int_env "IDS_SERVE_WORKERS" base.sup.Supervisor.workers;
      queue_bound = int_env "IDS_SERVE_QUEUE" base.sup.Supervisor.queue_bound;
      max_attempts = int_env "IDS_SERVE_RETRIES" base.sup.Supervisor.max_attempts;
      restart_budget = int_env "IDS_SERVE_RESTARTS" base.sup.Supervisor.restart_budget;
      deadline = ms_env "IDS_SERVE_DEADLINE_MS" base.sup.Supervisor.deadline;
      backoff_base = ms_env "IDS_SERVE_BACKOFF_MS" base.sup.Supervisor.backoff_base
    }
  in
  { socket = Option.value (getenv "IDS_SERVE_SOCKET") ~default:base.socket;
    sup;
    chaos = Option.value (Chaos.of_env ()) ~default:base.chaos;
    log_path =
      (match Sys.getenv_opt "IDS_SERVE_LOG" with None -> base.log_path | Some p -> p);
    log_sync = bool_env "IDS_SERVE_SYNC" base.log_sync;
    verbose = bool_env "IDS_SERVE_VERBOSE" base.verbose
  }

(* --- the event loop -------------------------------------------------------------- *)

type client = { cfd : Unix.file_descr; cbuf : Buffer.t; mutable cclosed : bool }
type pending = { preq : Request.t; pclient : client; pt0 : float }

(* Monotonic seconds: deadlines must not jump with wall-clock adjustments. *)
let now () = float_of_int (Obs.now_ns ()) /. 1e9

(* Drain a non-blocking fd into [buf]; return the complete lines plus whether
   the peer closed. *)
let drain_lines fd buf =
  let chunk = Bytes.create 8192 in
  let rec fill () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> true
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      fill ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> false
    | exception Unix.Unix_error _ -> true
  in
  let eof = fill () in
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec split o acc =
    match String.index_from_opt data o '\n' with
    | Some i -> split (i + 1) (String.sub data o (i - o) :: acc)
    | None ->
      Buffer.add_string buf (String.sub data o (String.length data - o));
      List.rev acc
  in
  (split 0 [], eof)

let run cfg =
  match Supervisor.validate cfg.sup with
  | Error e -> Error ("invalid supervisor config: " ^ e)
  | Ok scfg -> (
    let log_result =
      if cfg.log_path = "" then Ok None
      else
        match Runlog.Framed.create ~sync:cfg.log_sync cfg.log_path with
        | Ok w -> Ok (Some w)
        | Error e -> Error (Printf.sprintf "run log %s: %s" cfg.log_path e)
    in
    match log_result with
    | Error e -> Error e
    | Ok log -> (
      let logf fmt =
        Printf.ksprintf
          (fun s ->
            if cfg.verbose then
              Printf.eprintf "[ids_serve %.3f] %s\n%!" (float_of_int (Obs.now_ns ()) /. 1e9) s)
          fmt
      in
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let bound =
        try
          (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
          Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
          Unix.listen listen_fd 64;
          Unix.set_nonblock listen_fd;
          Ok ()
        with Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "cannot listen on %s: %s" cfg.socket (Unix.error_message e))
      in
      match bound with
      | Error e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Option.iter Runlog.Framed.close log;
        Error e
      | Ok () ->
        let sup = Supervisor.create scfg in
        let workers = Array.make scfg.Supervisor.workers None in
        let pid2wid = Hashtbl.create 16 in
        let clients = ref [] in
        let pending : (string, pending) Hashtbl.t = Hashtbl.create 64 in
        let resp_by_id : (string, Request.response) Hashtbl.t = Hashtbl.create 64 in
        let events : Supervisor.event Queue.t = Queue.create () in
        let post ev = Queue.add ev events in
        let stopped = ref false in
        let listening = ref true in
        let drain_posted = ref false in

        (* Signals only write one byte to the self-pipe; all real work happens
           in the select loop. *)
        let sp_r, sp_w = Unix.pipe () in
        Unix.set_nonblock sp_r;
        Unix.set_nonblock sp_w;
        let notify b =
          try ignore (Unix.write_substring sp_w b 0 1) with Unix.Unix_error _ -> ()
        in
        let prev_chld = Sys.signal Sys.sigchld (Sys.Signal_handle (fun _ -> notify "c")) in
        let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> notify "t")) in
        let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> notify "t")) in
        let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in

        let close_client c =
          if not c.cclosed then begin
            c.cclosed <- true;
            (try Unix.close c.cfd with Unix.Unix_error _ -> ());
            clients := List.filter (fun c' -> c' != c) !clients
          end
        in
        let respond c resp =
          if not c.cclosed then begin
            let s = Request.response_to_json resp ^ "\n" in
            let len = String.length s in
            let rec put o tries =
              if o < len then
                match Unix.write_substring c.cfd s o (len - o) with
                | n -> put (o + n) tries
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  if tries = 0 then close_client c
                  else begin
                    (* Client not reading: wait briefly for buffer space, with a
                       bound so one stuck client cannot wedge the daemon. *)
                    ignore (Unix.select [] [ c.cfd ] [] 0.05);
                    put o (tries - 1)
                  end
                | exception Unix.Unix_error _ -> close_client c
            in
            put 0 100
          end
        in

        let extra_close () =
          let acc = ref [ listen_fd; sp_r; sp_w ] in
          List.iter (fun c -> acc := c.cfd :: !acc) !clients;
          Array.iter
            (function
              | Some w -> acc := Pool.read_fd w :: Pool.write_fd w :: !acc
              | None -> ())
            workers;
          !acc
        in
        let spawn_into wid =
          let w = Pool.spawn ~chaos:cfg.chaos ~extra_close:(extra_close ()) ~wid () in
          workers.(wid) <- Some w;
          Hashtbl.replace pid2wid (Pool.pid w) wid;
          logf "worker %d spawned (pid %d)" wid (Pool.pid w)
        in

        let finish req_id =
          match Hashtbl.find_opt pending req_id with
          | None -> ()
          | Some p ->
            Hashtbl.remove pending req_id;
            let resp =
              match Hashtbl.find_opt resp_by_id req_id with
              | Some r ->
                Hashtbl.remove resp_by_id req_id;
                r
              | None ->
                Request.Rejected { id = req_id; reject = Request.Failed "response lost" }
            in
            (match (resp, log) with
            | Request.Estimated { record; _ }, Some lw -> (
              try Runlog.Framed.write lw record
              with Unix.Unix_error (e, _, _) ->
                Printf.eprintf "[ids_serve] run log write failed: %s\n%!"
                  (Unix.error_message e))
            | _ -> ());
            Obs.Histo.observe h_latency (int_of_float ((now () -. p.pt0) *. 1000.));
            respond p.pclient resp
        in
        let reject req_id rej =
          match Hashtbl.find_opt pending req_id with
          | None -> ()
          | Some p ->
            Hashtbl.remove pending req_id;
            Hashtbl.remove resp_by_id req_id;
            respond p.pclient (Request.Rejected { id = req_id; reject = rej })
        in
        let do_action = function
          | Supervisor.Assign { worker; req; attempt; deadline = _ } -> (
            match (workers.(worker), Hashtbl.find_opt pending req) with
            | Some w, Some p ->
              (* A send to a just-died worker fails silently; the Crashed event
                 already en route schedules the retry. *)
              ignore (Pool.send w ~attempt p.preq : bool)
            | _ -> ())
          | Supervisor.Spawn wid ->
            spawn_into wid;
            post (Supervisor.Spawned wid)
          | Supervisor.Kill { worker; req } -> (
            match workers.(worker) with
            | Some w ->
              logf "deadline: killing worker %d (request %s)" worker req;
              Pool.kill w
            | None -> ())
          | Supervisor.Complete { req; attempts = _ } -> finish req
          | Supervisor.Reject { req; reject = rej } -> reject req rej
          | Supervisor.Stopped -> stopped := true
        in
        let bump before after =
          let d get c =
            let d = get after - get before in
            if d > 0 then Obs.Counter.add c d
          in
          d (fun (x : Supervisor.counters) -> x.accepted) c_accepted;
          d (fun x -> x.shed) c_shed;
          d (fun x -> x.retried) c_retried;
          d (fun x -> x.timed_out) c_timed_out;
          d (fun x -> x.worker_crashes) c_crashes
        in
        let process_all () =
          while not (Queue.is_empty events) do
            let ev = Queue.take events in
            let before = Supervisor.counters sup in
            let actions = Supervisor.step sup ~now:(now ()) ev in
            let after = Supervisor.counters sup in
            bump before after;
            if after.accepted > before.accepted then
              Obs.Histo.observe h_queue (Supervisor.queue_depth sup);
            List.iter do_action actions
          done
        in

        let handle_request_line c line =
          match Request.of_line line with
          | Error e -> respond c (Request.Rejected { id = ""; reject = Request.Bad_request e })
          | Ok (req, _) -> (
            match req.Request.op with
            | Request.Ping -> respond c (Request.Pong { id = req.Request.id })
            | Request.Stats ->
              respond c
                (Request.Stats_reply { id = req.Request.id; stats = Supervisor.stats sup })
            | Request.Estimate { protocol; strategy; _ } ->
              let id = req.Request.id in
              if Hashtbl.mem pending id then
                respond c
                  (Request.Rejected
                     { id; reject = Request.Bad_request "duplicate in-flight id" })
              else (
                (* Catch unknown workloads here rather than burning worker
                   attempts on them. *)
                match Catalog.find ~protocol ~strategy with
                | Error e -> respond c (Request.Rejected { id; reject = Request.Bad_request e })
                | Ok _ ->
                  Hashtbl.replace pending id { preq = req; pclient = c; pt0 = now () };
                  post (Supervisor.Submit id)))
        in
        let read_client c =
          let lines, eof = drain_lines c.cfd c.cbuf in
          List.iter (handle_request_line c) lines;
          if eof then close_client c
        in
        let accept_clients () =
          let rec go () =
            match Unix.accept ~cloexec:false listen_fd with
            | cfd, _ ->
              Unix.set_nonblock cfd;
              clients := { cfd; cbuf = Buffer.create 256; cclosed = false } :: !clients;
              go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error _ -> ()
          in
          if !listening then go ()
        in

        let handle_worker_line wid line =
          match Request.response_of_line line with
          | Ok resp ->
            Hashtbl.replace resp_by_id (Request.response_id resp) resp;
            post (Supervisor.Done wid)
          | Error e -> logf "worker %d: unparsable response (%s)" wid e
        in
        let worker_dead wid =
          match workers.(wid) with
          | None -> ()
          | Some w ->
            (* Salvage any response that outran the death (deadline-kill race):
               its Done must precede the Crashed. *)
            (match Pool.read w with
            | `Lines lines -> List.iter (handle_worker_line wid) lines
            | `Eof -> ());
            Hashtbl.remove pid2wid (Pool.pid w);
            Pool.shutdown w;
            workers.(wid) <- None;
            logf "worker %d died (pid %d)" wid (Pool.pid w);
            post (Supervisor.Crashed wid)
        in
        let read_worker w =
          match Pool.read w with
          | `Lines lines -> List.iter (handle_worker_line (Pool.wid w)) lines
          | `Eof -> worker_dead (Pool.wid w)
        in
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] (-1) with
          | 0, _ -> ()
          | pid, _ ->
            (match Hashtbl.find_opt pid2wid pid with
            | Some wid -> worker_dead wid
            | None -> () (* already handled via pipe EOF *));
            reap ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
        in
        let request_drain () =
          if not !drain_posted then begin
            drain_posted := true;
            logf "drain requested";
            if !listening then begin
              listening := false;
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
            end;
            post Supervisor.Drain
          end
        in
        let read_selfpipe () =
          let chunk = Bytes.create 64 in
          let rec go () =
            match Unix.read sp_r chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              for i = 0 to n - 1 do
                match Bytes.get chunk i with
                | 'c' -> reap ()
                | 't' -> request_drain ()
                | _ -> ()
              done;
              go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error _ -> ()
          in
          go ()
        in

        (* The initial pool: Supervisor.create starts every slot Idle. *)
        for wid = 0 to scfg.Supervisor.workers - 1 do
          spawn_into wid
        done;
        logf "listening on %s (%d workers, chaos %s)" cfg.socket scfg.Supervisor.workers
          (Chaos.to_string cfg.chaos);

        let worker_fd_pairs () =
          Array.fold_left
            (fun acc -> function Some w -> (Pool.read_fd w, w) :: acc | None -> acc)
            [] workers
        in
        while not !stopped do
          let timeout =
            match Supervisor.next_wakeup sup ~now:(now ()) with
            | Some s -> Float.min 0.25 (Float.max 0.001 s)
            | None -> 0.25
          in
          let wpairs = worker_fd_pairs () in
          let rfds =
            (if !listening then [ listen_fd ] else [])
            @ (sp_r :: List.map fst wpairs)
            @ List.map (fun c -> c.cfd) !clients
          in
          (match Unix.select rfds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
            List.iter
              (fun fd ->
                if fd = sp_r then read_selfpipe ()
                else if !listening && fd = listen_fd then accept_clients ()
                else
                  (* Re-resolve: an earlier handler may have closed this fd. *)
                  match
                    List.find_opt
                      (fun (rfd, w) ->
                        rfd = fd
                        &&
                        match workers.(Pool.wid w) with
                        | Some cur -> cur == w
                        | None -> false)
                      wpairs
                  with
                  | Some (_, w) -> read_worker w
                  | None -> (
                    match List.find_opt (fun c -> c.cfd = fd && not c.cclosed) !clients with
                    | Some c -> read_client c
                    | None -> ()))
              ready);
          post Supervisor.Tick;
          process_all ()
        done;

        (* Drained: close worker pipes (EOF = clean exit), reap everything,
           release the socket and the log. *)
        Array.iter (function Some w -> Pool.shutdown w | None -> ()) workers;
        let rec reap_all () =
          match Unix.waitpid [] (-1) with
          | _ -> reap_all ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap_all ()
        in
        reap_all ();
        List.iter close_client !clients;
        if !listening then begin
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
        end;
        (try Unix.close sp_r with Unix.Unix_error _ -> ());
        (try Unix.close sp_w with Unix.Unix_error _ -> ());
        Option.iter Runlog.Framed.close log;
        Sys.set_signal Sys.sigchld prev_chld;
        Sys.set_signal Sys.sigterm prev_term;
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigpipe prev_pipe;
        logf "drained cleanly";
        Ok ()))
