(** Minimal blocking client for the verification daemon.

    Line-oriented over the daemon's Unix-domain socket. {!request} is the
    simple call-response path; {!send}/{!recv} decouple the two halves so a
    harness can keep a window of requests in flight on one connection (the
    chaos bench's closed-loop load generator). *)

type t

val connect : ?wait:float -> string -> (t, string) result
(** Connect to the daemon's socket, retrying for up to [wait] seconds
    (default 2) — covers the race against a daemon that is still starting. *)

val send : t -> Request.t -> (unit, string) result
(** Write one request line. *)

val recv : t -> (Request.response, string) result
(** Read the next response line, whichever request it answers (blocking). *)

val request : t -> Request.t -> (Request.response, string) result
(** [send] then [recv] until the response matching the request's id arrives
    (responses to id [""] — daemon-level parse errors — also surface). *)

val close : t -> unit
