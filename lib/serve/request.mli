(** Wire codec of the verification service.

    One request or response per line, JSON, over a Unix-domain socket. The
    payload of a completed estimate is a {!Ids_engine.Runlog} schema-v3
    record (stringified), so the daemon's responses, its crash-safe run log,
    and the bench harness's in-process oracle all speak the same format —
    bit-identity between a served estimate and its in-process replay is a
    string comparison.

    Requests:
    {v
    {"op":"estimate","id":"r1","protocol":"sym_dmam","strategy":"honest",
     "trials":20,"fault":"none"}
    {"op":"stats","id":"s1","format":"json"}
    {"op":"ping","id":"p1"}
    v}

    Every request may carry a trace context — ["trace_id"] plus
    ["parent_span"] — which the daemon propagates on the worker hop so the
    worker's spans land under the caller's trace. The daemon mints a
    context of its own for requests that arrive without one.

    Responses carry the request's [id] and a [status]: ["ok"] (with
    [attempts], the [record], and optionally a [telemetry] frame),
    ["stats"], ["pong"], ["telemetry"] (a worker's exit {!Flush}; never
    forwarded to clients), or a rejection (["overloaded"], ["draining"],
    ["bad_request"], ["failed"] — the last two with an ["error"]
    message). *)

type stats_format =
  | Basic  (** Supervisor counters only (the pre-telemetry reply). *)
  | Json_full  (** Full telemetry document, see {!Telemetry.to_json}. *)
  | Prom  (** Prometheus-style text exposition. *)

type op =
  | Estimate of {
      protocol : string;  (** Catalog protocol, e.g. ["sym_dmam"]. *)
      strategy : string;  (** Catalog strategy, e.g. ["honest"]. *)
      trials : int;
      fault : Ids_network.Fault.spec;  (** Injected network faults. *)
      kill_attempt : int option;
          (** Force the worker to die on exactly this attempt (tests and the
              smoke bench; the seeded injector is {!Chaos}). *)
      torn_attempt : int option;
          (** Force the worker to die {e mid-response-write} on exactly this
              attempt: it emits roughly half the response line, then
              SIGKILLs itself. Exercises the torn-frame path — the partial
              line must never reach a parser and the lost telemetry delta
              must be counted, not guessed. *)
    }
  | Stats of stats_format  (** Answered by the daemon itself. *)
  | Ping

type t = { id : string; op : op; trace : (string * int) option }

val make_estimate :
  ?fault:Ids_network.Fault.spec ->
  ?kill_attempt:int ->
  ?torn_attempt:int ->
  ?trace:string * int ->
  id:string ->
  protocol:string ->
  strategy:string ->
  trials:int ->
  unit ->
  t

val stats_format_name : stats_format -> string
(** ["basic"], ["json"], ["prom"] — the wire names. *)

val to_json : ?attempt:int -> t -> string
(** One line, no trailing newline. [attempt] is only set on the
    daemon-to-worker hop (retries re-send the same request with a bumped
    attempt number). *)

val of_line : string -> (t * int, string) result
(** Parse + validate one request line; returns the request and its attempt
    number (1 when absent). Unknown ops, missing fields, bad fault specs,
    and non-positive trial counts are errors. *)

type frame = {
  fpid : int;  (** the worker process *)
  fseq : int;  (** 1-based, per worker incarnation; gaps mean lost frames *)
  fepoch_ns : int;  (** the worker's {!Ids_obs.Obs.epoch_ns} anchor *)
  ftrace : (string * int) option;
      (** echo of the request's trace context (absent on exit flushes) *)
  fdelta : Ids_obs.Obs.snapshot;  (** metrics delta since the previous frame *)
  fspans : Ids_obs.Obs.span_record list;
      (** serve-layer spans with [start_ns] {e relative to} [fepoch_ns] *)
}
(** One worker telemetry shipment. Frames are embedded in single response
    lines, so a mid-write kill loses the whole frame (a counted gap) rather
    than delivering a corrupt one. *)

val frame_json : frame -> string
val frame_of_json : Ids_obs.Json.t -> (frame, string) result

type reject =
  | Overloaded  (** Queue at bound: load shed, retry later. *)
  | Draining  (** Daemon is shutting down; queue rejected. *)
  | Bad_request of string
  | Failed of string  (** Retry/restart budgets exhausted. *)

type response =
  | Estimated of {
      id : string;
      attempts : int;  (** Attempts consumed, 1 = no retry was needed. *)
      record : string;  (** The Runlog-v3 record line. *)
      telemetry : frame option;  (** Present when the worker runs with telemetry. *)
    }
  | Stats_reply of {
      id : string;
      stats : (string * int) list;
      body : string option;  (** The [Json_full] / [Prom] exposition document. *)
    }
  | Pong of { id : string }
  | Rejected of { id : string; reject : reject }
  | Flush of frame
      (** A worker's final delta, emitted on graceful exit (EOF on its
          request pipe). Folded by the daemon, never sent to clients;
          {!response_id} is [""]. *)

val response_id : response -> string

val response_to_json : response -> string

val response_of_line : string -> (response, string) result
