(** Wire codec of the verification service.

    One request or response per line, JSON, over a Unix-domain socket. The
    payload of a completed estimate is a {!Ids_engine.Runlog} schema-v3
    record (stringified), so the daemon's responses, its crash-safe run log,
    and the bench harness's in-process oracle all speak the same format —
    bit-identity between a served estimate and its in-process replay is a
    string comparison.

    Requests:
    {v
    {"op":"estimate","id":"r1","protocol":"sym_dmam","strategy":"honest",
     "trials":20,"fault":"none"}
    {"op":"stats","id":"s1"}
    {"op":"ping","id":"p1"}
    v}

    Responses carry the request's [id] and a [status]: ["ok"] (with
    [attempts] and the [record]), ["stats"], ["pong"], or a rejection
    (["overloaded"], ["draining"], ["bad_request"], ["failed"] — the last
    two with an ["error"] message). *)

type op =
  | Estimate of {
      protocol : string;  (** Catalog protocol, e.g. ["sym_dmam"]. *)
      strategy : string;  (** Catalog strategy, e.g. ["honest"]. *)
      trials : int;
      fault : Ids_network.Fault.spec;  (** Injected network faults. *)
      kill_attempt : int option;
          (** Force the worker to die on exactly this attempt (tests and the
              smoke bench; the seeded injector is {!Chaos}). *)
    }
  | Stats  (** Supervisor counters, answered by the daemon itself. *)
  | Ping

type t = { id : string; op : op }

val make_estimate :
  ?fault:Ids_network.Fault.spec ->
  ?kill_attempt:int ->
  id:string ->
  protocol:string ->
  strategy:string ->
  trials:int ->
  unit ->
  t

val to_json : ?attempt:int -> t -> string
(** One line, no trailing newline. [attempt] is only set on the
    daemon-to-worker hop (retries re-send the same request with a bumped
    attempt number). *)

val of_line : string -> (t * int, string) result
(** Parse + validate one request line; returns the request and its attempt
    number (1 when absent). Unknown ops, missing fields, bad fault specs,
    and non-positive trial counts are errors. *)

type reject =
  | Overloaded  (** Queue at bound: load shed, retry later. *)
  | Draining  (** Daemon is shutting down; queue rejected. *)
  | Bad_request of string
  | Failed of string  (** Retry/restart budgets exhausted. *)

type response =
  | Estimated of {
      id : string;
      attempts : int;  (** Attempts consumed, 1 = no retry was needed. *)
      record : string;  (** The Runlog-v3 record line. *)
    }
  | Stats_reply of { id : string; stats : (string * int) list }
  | Pong of { id : string }
  | Rejected of { id : string; reject : reject }

val response_id : response -> string

val response_to_json : response -> string

val response_of_line : string -> (response, string) result
