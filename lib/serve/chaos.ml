module Rng = Ids_bignum.Rng

type spec = { kill : float; seed : int }

let none = { kill = 0.; seed = 0 }

let make ?(kill = 0.) ?(seed = 0) () =
  if not (kill >= 0. && kill <= 1.) then
    invalid_arg (Printf.sprintf "Chaos.make: kill rate %g outside [0, 1]" kill);
  { kill; seed }

let is_none s = s.kill = 0.

let to_string s =
  if is_none s then "none"
  else if s.seed = 0 then Printf.sprintf "kill=%g" s.kill
  else Printf.sprintf "kill=%g,seed=%d" s.kill s.seed

let of_string str =
  let item acc part =
    match String.trim part with
    | "" | "none" -> acc
    | part -> (
      match String.index_opt part '=' with
      | None -> invalid_arg (Printf.sprintf "Chaos.of_string: missing '=' in %S" part)
      | Some i -> (
        let key = String.sub part 0 i in
        let v = String.sub part (i + 1) (String.length part - i - 1) in
        match key with
        | "kill" -> (
          match float_of_string_opt v with
          | Some r when r >= 0. && r <= 1. -> { acc with kill = r }
          | _ -> invalid_arg (Printf.sprintf "Chaos.of_string: bad kill rate %S" v))
        | "seed" -> (
          match int_of_string_opt v with
          | Some n -> { acc with seed = n }
          | None -> invalid_arg (Printf.sprintf "Chaos.of_string: bad seed %S" v))
        | _ -> invalid_arg (Printf.sprintf "Chaos.of_string: unknown key %S" key)))
  in
  List.fold_left item none (String.split_on_char ',' str)

let of_env () =
  match Sys.getenv_opt "IDS_SERVE_CHAOS" with
  | None | Some "" -> None
  | Some s -> Some (of_string s)

(* FNV-1a-style fold of the request id into one integer key component (the
   offset basis is the standard one truncated to OCaml's int range);
   collisions only correlate two ids' kill streams, never break
   determinism. *)
let hash_id id =
  let h = ref 0x2bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    id;
  !h land max_int

let kills s ~id ~attempt =
  s.kill > 0.
  &&
  let rng = Rng.create (Rng.key [ s.seed; hash_id id; attempt ]) in
  Rng.float rng < s.kill
