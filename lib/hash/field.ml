module Nat = Ids_bignum.Nat
module Rng = Ids_bignum.Rng

type 'a t = {
  bits : int;
  size : 'a;
  zero : 'a;
  one : 'a;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  of_int : int -> 'a;
  pow_int : 'a -> int -> 'a;
  random : Rng.t -> 'a;
  to_string : 'a -> string;
}

let int_field p =
  if p < 2 || p >= 1 lsl 31 then invalid_arg "Field.int_field: modulus out of native-safe range";
  let pow_int a e =
    let rec go acc base e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then acc * base mod p else acc in
        go acc (base * base mod p) (e lsr 1)
      end
    in
    if e < 0 then invalid_arg "pow_int: negative exponent" else go 1 (a mod p) e
  in
  let bits = max 1 (Nat.bit_length (Nat.of_int (p - 1))) in
  let random rng =
    (* Uniform in [0, p) via rejection on the covering power of two. *)
    let k = bits in
    let rec draw () =
      let v = Rng.bits rng k in
      if v < p then v else draw ()
    in
    draw ()
  in
  { bits;
    size = p;
    zero = 0;
    one = 1;
    add = (fun a b -> (a + b) mod p);
    sub = (fun a b -> ((a - b) mod p + p) mod p);
    mul = (fun a b -> a * b mod p);
    equal = Int.equal;
    of_int = (fun k -> (k mod p + p) mod p);
    pow_int;
    random;
    to_string = string_of_int
  }

let int62_field p =
  if p < 2 then invalid_arg "Field.int62_field: modulus too small";
  (* Any native int below 2^62 qualifies ([max_int] = 2^62 - 1, so every
     non-negative int does): products run through the C
     widening kernel, and sums are rearranged so no intermediate leaves the
     63-bit native range ((a - p) + b is in (-2^62, 2^62)). *)
  let mul a b = Ids_bignum.Kernel.mulmod62 a b p in
  let pow_int a e =
    let rec go acc base e =
      if e = 0 then acc
      else begin
        let acc = if e land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (e lsr 1)
      end
    in
    if e < 0 then invalid_arg "pow_int: negative exponent" else go 1 (((a mod p) + p) mod p) e
  in
  let bits = max 1 (Nat.bit_length (Nat.of_int (p - 1))) in
  let random rng =
    let rec draw () =
      let v = Rng.bits rng bits in
      if v < p then v else draw ()
    in
    draw ()
  in
  { bits;
    size = p;
    zero = 0;
    one = 1;
    add =
      (fun a b ->
        let s = a - p + b in
        if s < 0 then s + p else s);
    sub = (fun a b -> if a >= b then a - b else a - b + p);
    mul;
    equal = Int.equal;
    of_int = (fun k -> ((k mod p) + p) mod p);
    pow_int;
    random;
    to_string = string_of_int
  }

let nat_field p =
  if Nat.compare p Nat.two < 0 then invalid_arg "Field.nat_field: modulus too small";
  (* One precomputed context (Montgomery for odd p, Barrett otherwise) backs
     every field operation; values are bit-identical to the naive Modarith
     functions, just without a long division per op. *)
  let c = Ids_bignum.Modarith.ctx p in
  { bits = max 1 (Nat.bit_length (Nat.sub p Nat.one));
    size = p;
    zero = Nat.zero;
    one = Nat.one;
    add = Ids_bignum.Modarith.ctx_add c;
    sub = Ids_bignum.Modarith.ctx_sub c;
    mul = Ids_bignum.Modarith.ctx_mul c;
    equal = Nat.equal;
    of_int = (fun k -> Nat.rem (Nat.of_int k) p);
    pow_int = Ids_bignum.Modarith.ctx_pow_int c;
    random = (fun rng -> Nat.random_below rng p);
    to_string = Nat.to_string
  }
