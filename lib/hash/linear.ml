module Bitset = Ids_graph.Bitset
module Graph = Ids_graph.Graph
module Perm = Ids_graph.Perm

let row_poly f a s = Bitset.fold (fun w acc -> f.Field.add acc (f.Field.pow_int a (w + 1))) s f.Field.zero

let row_hash f a ~n ~row s =
  if row < 0 || row >= n then invalid_arg "Linear.row_hash: row out of range";
  f.Field.mul (f.Field.pow_int a (row * n)) (row_poly f a s)

let matrix_hash f a ~n rows =
  List.fold_left (fun acc (v, s) -> f.Field.add acc (row_hash f a ~n ~row:v s)) f.Field.zero rows

let graph_hash f a g =
  let n = Graph.n g in
  matrix_hash f a ~n (List.init n (fun v -> (v, Graph.closed_neighborhood g v)))

let permuted_graph_hash f a g rho =
  let n = Graph.n g in
  matrix_hash f a ~n
    (List.init n (fun v -> (Perm.apply rho v, Perm.apply_set rho (Graph.closed_neighborhood g v))))

let collision_bound ~n ~p = float_of_int ((n * n) + n) /. float_of_int p

let powers f a m =
  let t = Array.make (m + 1) f.Field.one in
  for i = 1 to m do
    t.(i) <- f.Field.mul t.(i - 1) a
  done;
  t

(* Decide rounds evaluate row hashes at each node's own copy of the
   broadcast index, which faults can make diverge across nodes: memoize one
   power table per distinct index so the honest case builds exactly one. *)
let powers_memo f m =
  let tbl = Hashtbl.create 4 in
  fun a ->
    match Hashtbl.find_opt tbl a with
    | Some t -> t
    | None ->
      let t = powers f a m in
      Hashtbl.add tbl a t;
      t

let row_poly_pow f ~powers s =
  Bitset.fold (fun w acc -> f.Field.add acc powers.(w + 1)) s f.Field.zero

let row_hash_pow f ~powers ~n ~row s =
  if row < 0 || row >= n then invalid_arg "Linear.row_hash_pow: row out of range";
  f.Field.mul powers.(row * n) (row_poly_pow f ~powers s)

let graph_hash_pow f ~powers g =
  let n = Graph.n g in
  let acc = ref f.Field.zero in
  for v = 0 to n - 1 do
    acc := f.Field.add !acc (row_hash_pow f ~powers ~n ~row:v (Graph.closed_neighborhood g v))
  done;
  !acc

let permuted_graph_hash_pow f ~powers g rho =
  let n = Graph.n g in
  let acc = ref f.Field.zero in
  for v = 0 to n - 1 do
    acc :=
      f.Field.add !acc
        (row_hash_pow f ~powers ~n ~row:(Perm.apply rho v)
           (Perm.apply_set rho (Graph.closed_neighborhood g v)))
  done;
  !acc
