(** The linear hash family of Theorem 3.2.

    For a prime [p] the family [H = { h_a | a in [p] }] hashes boolean
    vectors [x] of length [m] by polynomial evaluation:

    {v h_a(x) = sum_j x_j a^(j+1)  (mod p) v}

    It is linear — [h_a(x + x') = h_a(x) + h_a(x')] with coordinatewise sums
    taken mod [p] — and two distinct vectors collide with probability at most
    [m / p] over a uniform index [a], because their difference is a non-zero
    polynomial in [a] of degree at most [m] (Schwartz–Zippel).

    The protocols hash [n x n] boolean matrices (so [m = n^2 + n] with the
    convenient 1-based exponents), writing a matrix as the sum of its rows
    [\[v, r\]] (the matrix that is [r] in row [v] and zero elsewhere,
    Section 3.1.1). Row [v] occupies coordinates [v*n .. v*n + n - 1], hence

    {v h_a([v, r]) = a^(v*n) * sum_{w in r} a^(w+1) v}

    which a network node can evaluate locally from its own neighborhood. *)

val row_poly : 'a Field.t -> 'a -> Ids_graph.Bitset.t -> 'a
(** [row_poly f a s] is [sum_{w in s} a^(w+1)]: the hash of the row content
    [s] before the row-position shift. *)

val row_hash : 'a Field.t -> 'a -> n:int -> row:int -> Ids_graph.Bitset.t -> 'a
(** [row_hash f a ~n ~row s] is [h_a(\[row, s\])] for an [n x n] matrix. *)

val matrix_hash : 'a Field.t -> 'a -> n:int -> (int * Ids_graph.Bitset.t) list -> 'a
(** Hash of a sum of rows: [sum h_a(\[v, s\])] over the listed [(v, s)]
    pairs. Duplicate row indices are allowed (the matrix sum is over the
    field, exactly as in Lemma 3.1). *)

val graph_hash : 'a Field.t -> 'a -> Ids_graph.Graph.t -> 'a
(** [graph_hash f a g] hashes the full adjacency matrix
    [sum_v \[v, N(v)\]] of [g] (closed neighborhoods). *)

val permuted_graph_hash : 'a Field.t -> 'a -> Ids_graph.Graph.t -> Ids_graph.Perm.t -> 'a
(** [permuted_graph_hash f a g rho] hashes
    [sum_v \[rho(v), rho(N(v))\]] — the rho-permuted adjacency matrix of
    Lemma 3.1. Equal to [graph_hash f a g] for every [a] iff [rho] is an
    automorphism (and with high probability only then). *)

val collision_bound : n:int -> p:int -> float
(** The Theorem 3.2 guarantee [m / p] for [n x n] matrices ([m = n^2 + n]). *)

(** {1 Batched evaluation}

    Exact soundness analysis evaluates the same hash at every index of the
    family, which is much faster with a precomputed power table. *)

val powers : 'a Field.t -> 'a -> int -> 'a array
(** [powers f a m] is [\[| a^0; a^1; ...; a^m |\]]. *)

val powers_memo : 'a Field.t -> int -> 'a -> 'a array
(** [powers_memo f m] is a caching [fun a -> powers f a m]: one table per
    distinct index, shared across calls. The cache is a plain hash table —
    use one memo per execution, not across domains. *)

val row_hash_pow : 'a Field.t -> powers:'a array -> n:int -> row:int -> Ids_graph.Bitset.t -> 'a
(** {!row_hash} using a table from [powers] (of length at least [n^2+n+1]). *)

val graph_hash_pow : 'a Field.t -> powers:'a array -> Ids_graph.Graph.t -> 'a

val permuted_graph_hash_pow :
  'a Field.t -> powers:'a array -> Ids_graph.Graph.t -> Ids_graph.Perm.t -> 'a
