(** First-class prime fields.

    The hash family of Theorem 3.2 is instantiated at runtime with a prime
    that depends on the network size: [p] in [\[10 n^3, 100 n^3\]] for
    Protocol 1 (fits a native int) and [p] in [\[10 n^(n+2), 100 n^(n+2)\]]
    for Protocol 2 (needs {!Ids_bignum.Nat}). A field is therefore a record
    of operations rather than a functor argument, so protocols can be
    polymorphic in the carrier. *)

type 'a t = {
  bits : int;  (** Bits to transmit one field element. *)
  size : 'a;  (** The modulus [p], also the size of the hash family. *)
  zero : 'a;
  one : 'a;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  of_int : int -> 'a;
  pow_int : 'a -> int -> 'a;  (** [pow_int a e] with native exponent [e >= 0]. *)
  random : Ids_bignum.Rng.t -> 'a;  (** Uniform in [\[0, p)]. *)
  to_string : 'a -> string;
}

val int_field : int -> int t
(** [int_field p] for a native prime [p]. Requires [2 <= p < 2^31] so that
    products stay inside a 63-bit integer. *)

val int62_field : int -> int t
(** [int62_field p] for any native prime [p >= 2] (every non-negative int is
    below 2^62): same carrier as {!int_field}, but products run through the
    widening C kernel ({!Ids_bignum.Kernel.mulmod62}) so the modulus is not
    capped at 2^31. Backs the §4 scale path once the true
    [\[4 m^1.5, 8 m^1.5\]] prime outgrows the native-product range. *)

val nat_field : Ids_bignum.Nat.t -> Ids_bignum.Nat.t t
(** [nat_field p] for an arbitrary-precision prime. *)
