(* The exponential separation between distributed NP and distributed AM
   (Theorem 1.2 / Section 3.3), measured.

   For Dumbbell Symmetry instances of growing size we compare

   - the advice length of the locally checkable proof for Sym (the
     Theta(n^2) baseline; Omega(n^2) is forced by Göös-Suomela), with
   - the measured per-node communication of the one-round dAM protocol
     (O(log n)).

   Also prints the Theorem 1.4 packing floor: the Omega(log log n) bits any
   dAM protocol for Sym must use.

   Run with:  dune exec examples/separation.exe *)

module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Rng = Ids_bignum.Rng
open Ids_proof

let () =
  let rng = Rng.create 5 in
  print_endline "Dumbbell Symmetry: non-interactive (LCP) vs one-round interactive (dAM)";
  print_endline "";
  Printf.printf "%8s %10s | %14s %14s %10s | %14s\n" "side n" "vertices" "LCP bits/node" "dAM bits/node"
    "ratio" "packing floor";
  List.iter
    (fun n ->
      let r = 2 in
      let f = Family.random_asymmetric rng n in
      let g = Family.dsym_graph f r in
      let inst = Dsym.make_instance ~n ~r g in
      let o = Dsym.run ~seed:3 inst Dsym.honest in
      assert o.Outcome.accepted;
      let lcp_bits = Pls.Lcp_sym.advice_bits g in
      let size = Graph.n g in
      Printf.printf "%8d %10d | %14d %14d %9.1fx | %11d bit\n" n size lcp_bits
        o.Outcome.max_bits_per_node
        (float_of_int lcp_bits /. float_of_int o.Outcome.max_bits_per_node)
        (Ids_lowerbound.Packing.min_protocol_length size))
    [ 8; 16; 32; 64; 128 ];
  print_endline "";
  print_endline "The LCP column grows quadratically; the dAM column logarithmically —";
  print_endline "the exponential separation of Theorem 1.2. The packing floor is the";
  print_endline "Omega(log log n) lower bound of Theorem 1.4 (for Sym on dumbbells)."
