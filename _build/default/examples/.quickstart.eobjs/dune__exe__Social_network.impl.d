examples/social_network.ml: Gni Ids_bignum Ids_graph Ids_proof Outcome Printf Sym_dmam
