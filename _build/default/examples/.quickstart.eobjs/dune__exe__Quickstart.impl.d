examples/quickstart.ml: Format Ids_bignum Ids_graph Ids_hash Ids_proof Outcome Pls Printf Stats Sym_dmam
