examples/symmetric_communities.mli:
