examples/separation.mli:
