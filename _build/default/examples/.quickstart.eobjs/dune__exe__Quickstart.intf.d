examples/quickstart.mli:
