examples/separation.ml: Dsym Ids_bignum Ids_graph Ids_lowerbound Ids_proof List Outcome Pls Printf
