examples/certified_spanning_tree.mli:
