examples/symmetric_communities.ml: Array Gni Gni_full Ids_bignum Ids_graph Ids_proof Lazy List Outcome Printf
