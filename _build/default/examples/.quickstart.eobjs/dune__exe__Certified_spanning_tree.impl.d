examples/certified_spanning_tree.ml: Array Ids_bignum Ids_graph Ids_proof Pls Printf
