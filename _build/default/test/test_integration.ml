(* Integration tests: cross-module, end-to-end behaviors — protocols used as
   decision procedures against the exact ground truth, determinism of whole
   executions, cost-accounting invariants, and round trips through the
   interchange formats. *)

open Ids_proof
module Graph = Ids_graph.Graph
module Graph_io = Ids_graph.Graph_io
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Rng = Ids_bignum.Rng

let qtest = QCheck_alcotest.to_alcotest

(* Protocol 1 as a decision procedure for Sym: run the honest prover; the
   verdict must equal ground truth (completeness is deterministic; the
   honest prover on NO instances is caught up to hash-collision odds, so a
   single run errs with probability < 1/(9n)). *)
let prop_dmam_decides_sym =
  QCheck.Test.make ~name:"Protocol 1 + honest prover decides Sym" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 6 12) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let g = Graph.random_connected_gnp (Rng.create seed) n 0.5 in
      let truth = Iso.is_symmetric g in
      let verdict = (Sym_dmam.run ~seed:(seed + 1) g Sym_dmam.honest).Outcome.accepted in
      verdict = truth)

let prop_dam_decides_sym =
  QCheck.Test.make ~name:"Protocol 2 + honest prover decides Sym" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 6 10) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let g = Graph.random_connected_gnp (Rng.create seed) n 0.5 in
      Iso.is_symmetric g = (Sym_dam.run ~seed:(seed + 1) g Sym_dam.honest).Outcome.accepted)

let prop_protocols_agree =
  QCheck.Test.make ~name:"Protocols 1 and 2 agree on every instance" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 6 10) (int_bound 1_000_000)))
    (fun (n, seed) ->
      let g = Graph.random_connected_gnp (Rng.create seed) n 0.5 in
      (Sym_dmam.run ~seed g Sym_dmam.honest).Outcome.accepted
      = (Sym_dam.run ~seed g Sym_dam.honest).Outcome.accepted)

(* Determinism: executions are pure functions of (instance, seed, prover). *)
let test_runs_deterministic () =
  let rng = Rng.create 400 in
  let g = Family.random_symmetric rng 14 in
  let o1 = Sym_dmam.run ~seed:9 g Sym_dmam.honest and o2 = Sym_dmam.run ~seed:9 g Sym_dmam.honest in
  Alcotest.(check bool) "same verdict" o1.Outcome.accepted o2.Outcome.accepted;
  Alcotest.(check int) "same cost" o1.Outcome.max_bits_per_node o2.Outcome.max_bits_per_node;
  Alcotest.(check int) "same total" o1.Outcome.total_bits o2.Outcome.total_bits;
  let f = Family.random_asymmetric rng 6 in
  let inst = Dsym.make_instance ~n:6 ~r:2 (Family.dsym_graph f 2) in
  let d1 = Dsym.run ~seed:3 inst Dsym.honest and d2 = Dsym.run ~seed:3 inst Dsym.honest in
  Alcotest.(check int) "dsym deterministic" d1.Outcome.total_bits d2.Outcome.total_bits

(* The communication pattern is protocol-determined: an adversary is charged
   exactly like the honest prover on the same instance and seed. *)
let test_cost_independent_of_prover () =
  let rng = Rng.create 401 in
  let g = Family.random_asymmetric rng 12 in
  let honest = Sym_dmam.run ~seed:5 g Sym_dmam.honest in
  let cheat = Sym_dmam.run ~seed:5 g Sym_dmam.adversary_random_perm in
  Alcotest.(check int) "same bits" honest.Outcome.max_bits_per_node cheat.Outcome.max_bits_per_node;
  Alcotest.(check int) "same total" honest.Outcome.total_bits cheat.Outcome.total_bits

let test_outcome_cost_relations () =
  let rng = Rng.create 402 in
  let g = Family.random_symmetric rng 16 in
  let o = Sym_dmam.run ~seed:7 g Sym_dmam.honest in
  Alcotest.(check bool) "responses <= per-node" true
    (o.Outcome.max_response_bits <= o.Outcome.max_bits_per_node);
  Alcotest.(check bool) "per-node <= total" true (o.Outcome.max_bits_per_node <= o.Outcome.total_bits);
  Alcotest.(check bool) "positive" true (o.Outcome.max_response_bits > 0)

(* Instances survive a graph6 round trip and behave identically. *)
let test_graph6_roundtrip_preserves_protocol () =
  let rng = Rng.create 403 in
  let g = Family.random_symmetric rng 12 in
  let g' = Graph_io.of_graph6 (Graph_io.to_graph6 g) in
  let o = Sym_dmam.run ~seed:4 g Sym_dmam.honest and o' = Sym_dmam.run ~seed:4 g' Sym_dmam.honest in
  Alcotest.(check bool) "same verdict" o.Outcome.accepted o'.Outcome.accepted;
  Alcotest.(check int) "same cost" o.Outcome.total_bits o'.Outcome.total_bits

(* The dumbbell family ties together Family, Iso, Protocol 1 and the LCP:
   the interactive and non-interactive proofs must agree on every pair. *)
let test_dumbbells_across_proof_systems () =
  let rng = Rng.create 404 in
  let fam = Array.of_list (Family.asymmetric_family rng ~n:6 ~size:3) in
  Array.iteri
    (fun i fi ->
      Array.iteri
        (fun j fj ->
          let g = Family.dumbbell fi fj in
          let expected = i = j in
          Alcotest.(check bool) "Protocol 1" expected (Sym_dmam.run ~seed:1 g Sym_dmam.honest).Outcome.accepted;
          Alcotest.(check bool) "LCP witness existence" expected (Pls.Lcp_sym.honest g <> None))
        fam)
    fam

(* The three GNI variants must agree with the ground truth on their shared
   domain (asymmetric pairs). *)
let test_gni_variants_agree () =
  let rng = Rng.create 405 in
  let g0 = Family.random_asymmetric rng 6 in
  let g1 =
    let rec pick () =
      let h = Family.random_asymmetric rng 6 in
      if Iso.are_isomorphic g0 h then pick () else h
    in
    pick ()
  in
  let basic = Gni.make_instance g0 g1 in
  let full = Gni_full.make_instance g0 g1 in
  Alcotest.(check int) "same |S| on asymmetric pairs"
    (Array.length (Lazy.force basic.Gni.candidates))
    (Array.length (Lazy.force full.Gni_full.candidates));
  let pb = Gni.params_for ~repetitions:300 ~seed:1 basic in
  let pf = Gni_full.params_for ~repetitions:300 ~seed:1 full in
  Alcotest.(check bool) "basic accepts" true (Gni.run ~params:pb ~seed:2 basic Gni.honest).Outcome.accepted;
  Alcotest.(check bool) "full accepts" true
    (Gni_full.run ~params:pf ~seed:2 full Gni_full.honest).Outcome.accepted

(* Amplified Protocol 1 as a near-perfect decision procedure on a mixed
   batch of instances. *)
let test_amplified_batch_decision () =
  let rng = Rng.create 406 in
  for _ = 1 to 6 do
    let symmetric = Rng.bool rng in
    let g = if symmetric then Family.random_symmetric rng 10 else Family.random_asymmetric rng 10 in
    let prover = if symmetric then Sym_dmam.honest else Sym_dmam.adversary_random_perm in
    let r = Amplify.majority ~trials:7 (fun seed -> Sym_dmam.run ~seed g prover) in
    Alcotest.(check bool) "verdict matches truth" symmetric r.Amplify.outcome.Outcome.accepted
  done

(* A full pipeline: generate, export, report, verify — nothing raises. *)
let test_pipeline_smoke () =
  let rng = Rng.create 407 in
  let g = Family.random_symmetric rng 10 in
  let dot = Graph_io.to_dot g in
  Alcotest.(check bool) "dot nonempty" true (String.length dot > 10);
  let tree = Pls.Tree.honest g 0 in
  Alcotest.(check bool) "tree verifies" true (Pls.Tree.verify g tree).Pls.accepted;
  match Pls.Lcp_sym.honest g with
  | None -> Alcotest.fail "advice expected"
  | Some advice ->
    Alcotest.(check bool) "lcp verifies" true (Pls.Lcp_sym.verify g advice).Pls.accepted;
    Alcotest.(check bool) "rpls verifies" true (Rpls.verify_sym ~seed:1 g advice).Rpls.accepted

let suite =
  [ ( "integration",
      [ qtest prop_dmam_decides_sym;
        qtest prop_dam_decides_sym;
        qtest prop_protocols_agree;
        Alcotest.test_case "executions deterministic" `Quick test_runs_deterministic;
        Alcotest.test_case "cost independent of prover" `Quick test_cost_independent_of_prover;
        Alcotest.test_case "cost relations" `Quick test_outcome_cost_relations;
        Alcotest.test_case "graph6 roundtrip preserves behavior" `Quick test_graph6_roundtrip_preserves_protocol;
        Alcotest.test_case "dumbbells across proof systems" `Quick test_dumbbells_across_proof_systems;
        Alcotest.test_case "GNI variants agree" `Slow test_gni_variants_agree;
        Alcotest.test_case "amplified batch decisions" `Quick test_amplified_batch_decision;
        Alcotest.test_case "full pipeline smoke" `Quick test_pipeline_smoke
      ] )
  ]
