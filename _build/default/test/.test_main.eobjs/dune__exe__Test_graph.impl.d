test/test_graph.ml: Alcotest Array Bitset Family Format Graph Ids_bignum Ids_graph Iso List Perm Printf QCheck QCheck_alcotest Spanning_tree Stdlib
