test/test_features.ml: Alcotest Array Family Fun Gni_induced Graph Graph_io Hashtbl Ids_bignum Ids_graph Ids_proof Iso Lazy List Option Outcome Pls Printf QCheck QCheck_alcotest Stats Stdlib String
