test/test_network.ml: Alcotest Array Bits Cost Fun Ids_bignum Ids_graph Ids_network List Network QCheck QCheck_alcotest Stdlib
