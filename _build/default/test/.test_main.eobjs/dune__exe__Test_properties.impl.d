test/test_properties.ml: Alcotest Array Bitset Family Fun Graph Ids_bignum Ids_graph Ids_hash Iso List Perm QCheck QCheck_alcotest Spanning_tree Stdlib
