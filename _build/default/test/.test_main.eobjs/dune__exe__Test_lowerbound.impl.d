test/test_lowerbound.ml: Alcotest Array Dist Float Ids_bignum Ids_graph Ids_lowerbound Lazy List Packing Printf QCheck QCheck_alcotest Toy_protocol
