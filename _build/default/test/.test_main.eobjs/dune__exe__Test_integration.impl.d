test/test_integration.ml: Alcotest Amplify Array Dsym Gni Gni_full Ids_bignum Ids_graph Ids_proof Lazy Outcome Pls QCheck QCheck_alcotest Rpls String Sym_dam Sym_dmam
