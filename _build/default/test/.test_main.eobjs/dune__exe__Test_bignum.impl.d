test/test_bignum.ml: Alcotest Array Fun Ids_bignum List Modarith Nat Prime Printf QCheck QCheck_alcotest Rng Stdlib String
