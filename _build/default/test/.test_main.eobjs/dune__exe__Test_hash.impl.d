test/test_hash.ml: Alcotest Api Array Field Float Fun Ids_bignum Ids_graph Ids_hash Linear List Option Printf QCheck QCheck_alcotest
