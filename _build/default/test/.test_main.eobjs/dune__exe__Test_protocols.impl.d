test/test_protocols.ml: Alcotest Array Dsym Fun Gni Ids_bignum Ids_graph Ids_hash Ids_network Ids_proof List Option Outcome Pls Printf Stats Sym_dam Sym_dmam
