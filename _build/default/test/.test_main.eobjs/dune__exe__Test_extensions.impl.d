test/test_extensions.ml: Alcotest Amplify Array Bytes Gni_full Ids_bignum Ids_graph Ids_proof Lazy List Option Outcome Pls Printf Rpls Stats Sym_dmam
