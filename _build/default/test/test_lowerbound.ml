(* Tests for the Section 3.4 lower-bound machinery: distributions and L1
   distance, the packing lemma computations (Lemma 3.12, Theorem 1.4), and
   the executable toy-protocol rendering of the framework (response sets,
   Lemma 3.9's acceptance identity, Lemma 3.11's separation, Lemma 3.7's
   simple transformation, and the pigeonhole soundness failure). *)

open Ids_lowerbound
module Graph = Ids_graph.Graph
module Family = Ids_graph.Family
module Iso = Ids_graph.Iso
module Rng = Ids_bignum.Rng

let qtest = QCheck_alcotest.to_alcotest

(* --- Dist ----------------------------------------------------------------------- *)

let test_dist_basics () =
  let d = Dist.of_samples [ 1; 1; 2; 2; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "p(2)" 0.5 (Dist.prob d 2);
  Alcotest.(check (float 1e-9)) "p(1)" (1. /. 3.) (Dist.prob d 1);
  Alcotest.(check (float 1e-9)) "p(absent)" 0.0 (Dist.prob d 7);
  Alcotest.(check (list int)) "support sorted" [ 1; 2; 3 ] (Dist.support d)

let test_dist_of_assoc_validation () =
  (match Dist.of_assoc [ (1, 0.5); (2, 0.4) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must sum to 1");
  match Dist.of_assoc [ (1, -0.5); (2, 1.5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no negative weights"

let test_l1_distance_known () =
  let a = Dist.of_assoc [ (0, 1.0) ] and b = Dist.of_assoc [ (1, 1.0) ] in
  Alcotest.(check (float 1e-9)) "disjoint point masses" 2.0 (Dist.l1_distance a b);
  Alcotest.(check (float 1e-9)) "identical" 0.0 (Dist.l1_distance a a);
  let c = Dist.of_assoc [ (0, 0.5); (1, 0.5) ] in
  Alcotest.(check (float 1e-9)) "half overlap" 1.0 (Dist.l1_distance a c);
  Alcotest.(check (float 1e-9)) "tv = l1/2" 0.5 (Dist.total_variation a c)

let test_event_gap_bound () =
  (* The inequality used in Lemma 3.11: an event with probability gap p
     certifies L1 distance >= 2p. *)
  let a = Dist.of_assoc [ (0, 0.9); (1, 0.1) ] and b = Dist.of_assoc [ (0, 0.2); (1, 0.8) ] in
  let lower = Dist.event_gap_lower_bound a b (fun x -> x = 0) in
  Alcotest.(check (float 1e-9)) "gap bound" 1.4 lower;
  Alcotest.(check bool) "is a lower bound" true (Dist.l1_distance a b >= lower)

let prop_l1_triangle =
  QCheck.Test.make ~name:"L1 triangle inequality" ~count:200
    QCheck.(triple (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 4))
              (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 4))
              (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 4)))
    (fun (xs, ys, zs) ->
      let a = Dist.of_samples xs and b = Dist.of_samples ys and c = Dist.of_samples zs in
      Dist.l1_distance a c <= Dist.l1_distance a b +. Dist.l1_distance b c +. 1e-9)

let prop_l1_bounds =
  QCheck.Test.make ~name:"0 <= L1 <= 2, symmetric" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 4))
              (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 4)))
    (fun (xs, ys) ->
      let a = Dist.of_samples xs and b = Dist.of_samples ys in
      let d = Dist.l1_distance a b in
      d >= 0. && d <= 2. +. 1e-9 && Float.abs (d -. Dist.l1_distance b a) < 1e-9)

(* --- Packing -------------------------------------------------------------------- *)

let test_packing_bound_values () =
  Alcotest.(check string) "5^4" "625" (Ids_bignum.Nat.to_string (Packing.packing_bound_exact ~d:4));
  Alcotest.(check (float 1e-6)) "log2 5^10" (10. *. (log 5. /. log 2.)) (Packing.log2_packing_bound ~d:10)

let test_ball_volume_formula () =
  (* vol B(x, r) = (4r)^d / (d+1)!; for d=1, r=1/4: vol = 1/2. *)
  Alcotest.(check (float 1e-9)) "d=1 r=1/4" (-1.) (Packing.log2_ball_volume ~d:1 ~r:0.25);
  (* Ratio of the two Lemma 3.12 balls is exactly 5^d. *)
  let d = 7 in
  let ratio = Packing.log2_ball_volume ~d ~r:1.25 -. Packing.log2_ball_volume ~d ~r:0.25 in
  Alcotest.(check (float 1e-6)) "ratio = 5^d" (Packing.log2_packing_bound ~d) ratio

let test_family_size_growth () =
  (* log2 |F(n)| = Omega(n^2): check the quadratic dominates at scale. *)
  let f100 = Packing.log2_family_size 100 and f200 = Packing.log2_family_size 200 in
  Alcotest.(check bool) "superlinear growth" true (f200 > 3.5 *. f100);
  Alcotest.(check bool) "near n^2/2" true (f200 > 0.8 *. (200. *. 199. /. 2.) *. 0.5)

let test_min_protocol_length_curve () =
  (* The Theorem 1.4 curve: grows, and like log log n (adding one bit to L
     squares the packable family's exponent). *)
  let l = Packing.min_protocol_length in
  Alcotest.(check bool) "monotone" true (l 10 <= l 1000 && l 1000 <= l 1_000_000);
  Alcotest.(check bool) "nontrivial at large n" true (l 1_000_000 >= 3);
  (* Doubly exponential spacing: going from L to L+1 should need roughly the
     square of the family exponent. *)
  let rec first_n_with target n = if l n >= target then n else first_n_with target (n * 2) in
  let n3 = first_n_with 3 2 and n4 = first_n_with 4 2 in
  Alcotest.(check bool)
    (Printf.sprintf "L=3 at n=%d, L=4 at n=%d" n3 n4)
    true
    (n4 >= n3 * n3 / 4)

let test_lower_bound_table_shape () =
  let table = Packing.lower_bound_table [ 10; 100; 1000 ] in
  Alcotest.(check int) "three rows" 3 (List.length table);
  List.iter
    (fun (n, logf, l) ->
      Alcotest.(check bool) (Printf.sprintf "n=%d sane" n) true (logf >= 0. && l >= 1))
    table

(* --- Toy protocol ----------------------------------------------------------------- *)

let family6 =
  lazy
    (let rng = Rng.create 300 in
     Array.of_list (Family.asymmetric_family rng ~n:6 ~size:6))

let test_toy_make_validation () =
  let fam = Lazy.force family6 in
  (match Toy_protocol.make [||] ~length:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty family rejected");
  match Toy_protocol.make fam ~length:40 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "absurd length rejected"

let test_toy_response_sets () =
  let fam = Lazy.force family6 in
  let t = Toy_protocol.make fam ~length:(Toy_protocol.min_correct_length fam) in
  Array.iteri
    (fun i _ ->
      let ma = Toy_protocol.m_a t i in
      Alcotest.(check (list int)) "M_A is the fingerprint singleton" [ Toy_protocol.fingerprint t i ] ma;
      Alcotest.(check (list int)) "M_A = M_B" ma (Toy_protocol.m_b t i))
    fam

let test_toy_lemma_3_9_acceptance () =
  (* Lemma 3.9: best-prover acceptance = Pr(M_A cap M_B nonempty); for the
     deterministic toy protocol that is 1 on diagonal pairs, 0 elsewhere. *)
  let fam = Lazy.force family6 in
  let t = Toy_protocol.make fam ~length:(Toy_protocol.min_correct_length fam) in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "acceptance(%d,%d)" i j)
            (if i = j then 1.0 else 0.0)
            (Toy_protocol.acceptance t i j))
        fam)
    fam

let test_toy_lemma_3_11_separation () =
  (* A correct protocol's mu_A distributions are pairwise >= 2/3 apart. *)
  let fam = Lazy.force family6 in
  let t = Toy_protocol.make fam ~length:(Toy_protocol.min_correct_length fam) in
  Alcotest.(check bool) "protocol correct" true (Toy_protocol.correct t);
  let m = Toy_protocol.pairwise_l1 t in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j d ->
          if i <> j then
            Alcotest.(check bool) (Printf.sprintf "d(%d,%d)=%.2f >= 2/3" i j d) true (d >= 2. /. 3.))
        row)
    m

let test_toy_pigeonhole_soundness_failure () =
  (* Below log2 |F| bits there must be a fingerprint collision, the two
     distributions coincide, and the protocol stops being correct — the
     packing phenomenon of Theorem 1.4 in executable form. *)
  let fam = Lazy.force family6 in
  let short = Toy_protocol.min_correct_length fam - 1 in
  let t = Toy_protocol.make fam ~length:short in
  match Toy_protocol.colliding_pair t with
  | None -> Alcotest.fail "pigeonhole guarantees a collision"
  | Some (i, j) ->
    Alcotest.(check (float 1e-9)) "distributions coincide" 0.0
      (Dist.l1_distance (Toy_protocol.mu_a t i) (Toy_protocol.mu_a t j));
    Alcotest.(check (float 1e-9)) "cheater accepted on mixed dumbbell" 1.0 (Toy_protocol.acceptance t i j);
    Alcotest.(check bool) "protocol incorrect" false (Toy_protocol.correct t);
    (* And the mixed dumbbell really is a NO instance of Sym. *)
    let g = Family.dumbbell fam.(i) fam.(j) in
    Alcotest.(check bool) "G(F_i, F_j) asymmetric" true (Iso.is_asymmetric g)

let test_toy_lemma_3_7_simple_transformation () =
  let fam = Lazy.force family6 in
  let t = Toy_protocol.make fam ~length:(Toy_protocol.min_correct_length fam) in
  Alcotest.(check int) "4L length" (4 * 3) (Toy_protocol.simple_length t);
  Alcotest.(check bool) "transformed protocol agrees" true (Toy_protocol.simple_agrees t);
  (* The combined bridge response contains the original fingerprint in each
     of its four L-bit slots. *)
  let m = Toy_protocol.fingerprint t 2 in
  let combined = Toy_protocol.simple_bridge_response t 2 in
  let l = 3 in
  let mask = (1 lsl l) - 1 in
  List.iter
    (fun slot -> Alcotest.(check int) "slot content" m ((combined lsr (slot * l)) land mask))
    [ 0; 1; 2; 3 ]

let test_toy_curve_vs_packing_floor () =
  (* The executable protocol needs ceil log2 |F| bits; the information floor
     of Theorem 1.4 is doubly-logarithmic, hence far below it. *)
  let fam = Lazy.force family6 in
  let needed = Toy_protocol.min_correct_length fam in
  let floor = Packing.min_protocol_length 6 in
  Alcotest.(check bool)
    (Printf.sprintf "floor %d <= toy requirement %d" floor needed)
    true (floor <= needed)

let suite =
  [ ( "dist",
      [ Alcotest.test_case "basics" `Quick test_dist_basics;
        Alcotest.test_case "of_assoc validation" `Quick test_dist_of_assoc_validation;
        Alcotest.test_case "L1 known values" `Quick test_l1_distance_known;
        Alcotest.test_case "event gap bound" `Quick test_event_gap_bound;
        qtest prop_l1_triangle;
        qtest prop_l1_bounds
      ] );
    ( "packing",
      [ Alcotest.test_case "5^d bound" `Quick test_packing_bound_values;
        Alcotest.test_case "ball volume formula" `Quick test_ball_volume_formula;
        Alcotest.test_case "family size growth" `Quick test_family_size_growth;
        Alcotest.test_case "Theorem 1.4 curve" `Quick test_min_protocol_length_curve;
        Alcotest.test_case "lower bound table" `Quick test_lower_bound_table_shape
      ] );
    ( "toy_protocol",
      [ Alcotest.test_case "validation" `Quick test_toy_make_validation;
        Alcotest.test_case "response sets" `Quick test_toy_response_sets;
        Alcotest.test_case "Lemma 3.9 acceptance identity" `Quick test_toy_lemma_3_9_acceptance;
        Alcotest.test_case "Lemma 3.11 separation" `Quick test_toy_lemma_3_11_separation;
        Alcotest.test_case "pigeonhole soundness failure" `Quick test_toy_pigeonhole_soundness_failure;
        Alcotest.test_case "Lemma 3.7 transformation" `Quick test_toy_lemma_3_7_simple_transformation;
        Alcotest.test_case "toy vs packing floor" `Quick test_toy_curve_vs_packing_floor
      ] )
  ]
