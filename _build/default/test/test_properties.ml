(* Deep property-based hardening across the substrates: algebraic laws of
   the fields and hashes, structural invariants of the graph operations, and
   distributional facts the protocols lean on. *)

module Nat = Ids_bignum.Nat
module Modarith = Ids_bignum.Modarith
module Prime = Ids_bignum.Prime
module Rng = Ids_bignum.Rng
open Ids_graph
module Field = Ids_hash.Field
module Linear = Ids_hash.Linear

let qtest = QCheck_alcotest.to_alcotest

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000)

(* --- Nat laws on large values -------------------------------------------------- *)

let big_of_seed seed =
  let rng = Rng.create seed in
  let limbs = 1 + Rng.int rng 6 in
  let rec build acc i = if i = 0 then acc else build (Nat.add (Nat.shift_left acc 26) (Nat.of_int (Rng.bits rng 26))) (i - 1) in
  build Nat.zero limbs

let prop_nat_add_commutative_assoc =
  QCheck.Test.make ~name:"Nat: + commutative and associative (big)" ~count:200
    (QCheck.triple arb_seed arb_seed arb_seed)
    (fun (x, y, z) ->
      let a = big_of_seed x and b = big_of_seed y and c = big_of_seed z in
      Nat.equal (Nat.add a b) (Nat.add b a)
      && Nat.equal (Nat.add a (Nat.add b c)) (Nat.add (Nat.add a b) c))

let prop_nat_sub_add_roundtrip =
  QCheck.Test.make ~name:"Nat: (a + b) - b = a (big)" ~count:200 (QCheck.pair arb_seed arb_seed)
    (fun (x, y) ->
      let a = big_of_seed x and b = big_of_seed y in
      Nat.equal (Nat.sub (Nat.add a b) b) a)

let prop_nat_pow_splits =
  QCheck.Test.make ~name:"Nat: a^(i+j) = a^i * a^j" ~count:100
    (QCheck.triple arb_seed (QCheck.int_bound 12) (QCheck.int_bound 12))
    (fun (x, i, j) ->
      let a = Nat.rem (big_of_seed x) (Nat.of_int 100000) in
      Nat.equal (Nat.pow a (i + j)) (Nat.mul (Nat.pow a i) (Nat.pow a j)))

let prop_nat_compare_antisymmetric =
  QCheck.Test.make ~name:"Nat: compare antisymmetric and total" ~count:200 (QCheck.pair arb_seed arb_seed)
    (fun (x, y) ->
      let a = big_of_seed x and b = big_of_seed y in
      Nat.compare a b = -Nat.compare b a && (Nat.compare a b <> 0 || Nat.equal a b))

let prop_nat_random_in_bounds =
  QCheck.Test.make ~name:"Nat: random_in stays in [lo, hi]" ~count:200 (QCheck.pair arb_seed arb_seed)
    (fun (x, y) ->
      let a = big_of_seed x and b = big_of_seed y in
      let lo = if Nat.compare a b <= 0 then a else b and hi = if Nat.compare a b <= 0 then b else a in
      let r = Nat.random_in (Rng.create (x lxor y)) lo hi in
      Nat.compare lo r <= 0 && Nat.compare r hi <= 0)

(* --- field laws ------------------------------------------------------------------ *)

let f97 = Field.int_field 97

let arb_f97 = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 96)

let prop_field_ring_laws =
  QCheck.Test.make ~name:"Field: ring laws mod 97" ~count:300 (QCheck.triple arb_f97 arb_f97 arb_f97)
    (fun (a, b, c) ->
      f97.Field.mul a (f97.Field.add b c) = f97.Field.add (f97.Field.mul a b) (f97.Field.mul a c)
      && f97.Field.mul a b = f97.Field.mul b a
      && f97.Field.add (f97.Field.sub a b) b = a)

let prop_field_fermat_inverse =
  QCheck.Test.make ~name:"Field: a * a^(p-2) = 1 for a <> 0" ~count:96 arb_f97 (fun a ->
      QCheck.assume (a <> 0);
      f97.Field.mul a (f97.Field.pow_int a 95) = 1)

let prop_field_pow_hom =
  QCheck.Test.make ~name:"Field: (ab)^k = a^k b^k" ~count:200
    (QCheck.triple arb_f97 arb_f97 (QCheck.int_bound 50))
    (fun (a, b, k) ->
      f97.Field.pow_int (f97.Field.mul a b) k = f97.Field.mul (f97.Field.pow_int a k) (f97.Field.pow_int b k))

(* Both carriers agree on the same prime. *)
let prop_field_carriers_agree =
  QCheck.Test.make ~name:"Field: int and nat carriers agree mod 10007" ~count:200
    (QCheck.pair (QCheck.int_bound 10006) (QCheck.int_bound 10006))
    (fun (a, b) ->
      let fi = Field.int_field 10007 and fn = Field.nat_field (Nat.of_int 10007) in
      Nat.to_int (fn.Field.mul (Nat.of_int a) (Nat.of_int b)) = fi.Field.mul a b
      && Nat.to_int (fn.Field.pow_int (Nat.of_int a) 17) = fi.Field.pow_int a 17)

(* --- hash laws -------------------------------------------------------------------- *)

let prop_hash_identity_perm =
  QCheck.Test.make ~name:"Linear: permuted hash under identity = graph hash" ~count:100 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.random_gnp rng 8 0.5 in
      let a = f97.Field.random rng in
      let f = Field.int_field 10007 in
      let a = a mod 10007 in
      Linear.permuted_graph_hash f a g (Perm.identity 8) = Linear.graph_hash f a g)

let prop_hash_duplicate_rows_double =
  QCheck.Test.make ~name:"Linear: duplicated row hashes to twice the row" ~count:100 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let f = Field.int_field 10007 in
      let a = f.Field.random rng in
      let s = Bitset.of_list 8 [ 1; 3; 7 ] in
      let twice = Linear.matrix_hash f a ~n:8 [ (2, s); (2, s) ] in
      twice = f.Field.add (Linear.row_hash f a ~n:8 ~row:2 s) (Linear.row_hash f a ~n:8 ~row:2 s))

let prop_hash_row_shift =
  QCheck.Test.make ~name:"Linear: row shift multiplies by a^n" ~count:100 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let f = Field.int_field 10007 in
      let a = f.Field.random rng in
      let s = Bitset.of_list 6 [ 0; 2; 5 ] in
      Linear.row_hash f a ~n:6 ~row:3 s = f.Field.mul (f.Field.pow_int a 6) (Linear.row_hash f a ~n:6 ~row:2 s))

(* --- graph structure --------------------------------------------------------------- *)

let prop_relabel_preserves_degrees =
  QCheck.Test.make ~name:"Graph: relabel preserves the degree multiset" ~count:150 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.random_gnp rng 10 0.4 in
      let p = Perm.random rng 10 in
      let h = Graph.relabel g (Perm.to_array p) in
      let degrees g = List.sort Stdlib.compare (List.init 10 (Graph.degree g)) in
      degrees g = degrees h)

let prop_relabel_degree_at_image =
  QCheck.Test.make ~name:"Graph: degree of sigma(v) in relabel = degree of v" ~count:150 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.random_gnp rng 9 0.4 in
      let p = Perm.random rng 9 in
      let h = Graph.relabel g (Perm.to_array p) in
      List.for_all (fun v -> Graph.degree h (Perm.apply p v) = Graph.degree g v) (List.init 9 Fun.id))

let prop_induced_edges_exact =
  QCheck.Test.make ~name:"Graph: induced keeps exactly the internal edges" ~count:150 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let g = Graph.random_gnp rng 10 0.4 in
      let vs = [ 1; 4; 6; 9 ] in
      let h = Graph.induced g vs in
      let vs_arr = Array.of_list vs in
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> Graph.has_edge h i j = Graph.has_edge g vs_arr.(i) vs_arr.(j))
            (List.init 4 Fun.id |> List.filter (( <> ) i)))
        (List.init 4 Fun.id))

let prop_complement_degrees =
  QCheck.Test.make ~name:"Graph: edge counts of G plus its complement = C(n,2)" ~count:100 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let n = 9 in
      let g = Graph.random_gnp rng n 0.5 in
      let comp = Graph.make n in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if not (Graph.has_edge g u v) then Graph.add_edge comp u v
        done
      done;
      Graph.edge_count g + Graph.edge_count comp = n * (n - 1) / 2)

let test_hypercube_automorphisms () =
  (* |Aut(Q_3)| = 2^3 * 3! = 48. *)
  Alcotest.(check int) "Q3" 48 (Iso.automorphism_count (Graph.hypercube 3))

let test_spanning_tree_edge_count () =
  let rng = Rng.create 42 in
  for _ = 1 to 20 do
    let g = Graph.random_connected_gnp rng 18 0.25 in
    let t = Spanning_tree.bfs g 0 in
    let tree_edges = List.length (List.filter (fun v -> v <> 0) (List.init 18 Fun.id)) in
    ignore tree_edges;
    (* every non-root has exactly one parent: n - 1 tree edges *)
    let parents = List.init 18 (fun v -> (min v t.Spanning_tree.parent.(v), max v t.Spanning_tree.parent.(v))) in
    let distinct = List.sort_uniq Stdlib.compare (List.filter (fun (a, b) -> a <> b) parents) in
    Alcotest.(check int) "n-1 edges" 17 (List.length distinct)
  done

(* --- permutation laws ----------------------------------------------------------------- *)

let prop_perm_inverse_involution =
  QCheck.Test.make ~name:"Perm: inverse of inverse" ~count:150 arb_seed (fun seed ->
      let p = Perm.random (Rng.create seed) 12 in
      Perm.equal p (Perm.inverse (Perm.inverse p)))

let prop_perm_apply_set_cardinal =
  QCheck.Test.make ~name:"Perm: image preserves cardinality" ~count:150 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = Perm.random rng 12 in
      let s = Bitset.create 12 in
      for i = 0 to 11 do
        if Rng.bool rng then Bitset.add s i
      done;
      Bitset.cardinal (Perm.apply_set p s) = Bitset.cardinal s)

let prop_perm_apply_set_union =
  QCheck.Test.make ~name:"Perm: image distributes over union" ~count:150 arb_seed (fun seed ->
      let rng = Rng.create seed in
      let p = Perm.random rng 10 in
      let mk () =
        let s = Bitset.create 10 in
        for i = 0 to 9 do
          if Rng.bool rng then Bitset.add s i
        done;
        s
      in
      let a = mk () and b = mk () in
      Bitset.equal (Perm.apply_set p (Bitset.union a b)) (Bitset.union (Perm.apply_set p a) (Perm.apply_set p b)))

(* --- family invariants ------------------------------------------------------------------ *)

let prop_dsym_graph_always_member =
  QCheck.Test.make ~name:"Family: dsym_graph is always a DSym member and symmetric" ~count:40 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 + Rng.int rng 3 in
      let r = 1 + Rng.int rng 3 in
      let f = Graph.random_connected_gnp rng n 0.5 in
      let g = Family.dsym_graph f r in
      Family.is_dsym_member ~n ~r g && Iso.is_symmetric g)

let prop_dumbbell_size_and_cut =
  QCheck.Test.make ~name:"Family: dumbbell has 2n+2 vertices and the bridge" ~count:60 arb_seed
    (fun seed ->
      let rng = Rng.create seed in
      let f1 = Graph.random_gnp rng 7 0.5 and f2 = Graph.random_gnp rng 7 0.5 in
      let g = Family.dumbbell f1 f2 in
      Graph.n g = 16
      && Graph.has_edge g 0 14 && Graph.has_edge g 14 15 && Graph.has_edge g 15 7
      && Graph.edge_count g = Graph.edge_count f1 + Graph.edge_count f2 + 3)

(* --- prime facts the protocols rely on ---------------------------------------------------- *)

let prop_protocol1_prime_window_nonempty =
  QCheck.Test.make ~name:"Prime: [10n^3, 100n^3] always contains a prime (Bertrand)" ~count:30
    (QCheck.make QCheck.Gen.(int_range 2 300))
    (fun n ->
      let p = Prime.random_prime_in_int (Rng.create n) (10 * n * n * n) (100 * n * n * n) in
      p >= 10 * n * n * n && p <= 100 * n * n * n)

let prop_miller_rabin_agrees_with_trial_division =
  QCheck.Test.make ~name:"Prime: Miller-Rabin agrees with trial division below 10^6" ~count:300
    (QCheck.make QCheck.Gen.(int_range 2 1_000_000))
    (fun n -> Prime.is_prime (Rng.create n) (Nat.of_int n) = Prime.is_prime_int n)

let suite =
  [ ( "properties:nat",
      List.map qtest
        [ prop_nat_add_commutative_assoc;
          prop_nat_sub_add_roundtrip;
          prop_nat_pow_splits;
          prop_nat_compare_antisymmetric;
          prop_nat_random_in_bounds
        ] );
    ( "properties:field",
      List.map qtest
        [ prop_field_ring_laws; prop_field_fermat_inverse; prop_field_pow_hom; prop_field_carriers_agree ] );
    ( "properties:hash",
      List.map qtest [ prop_hash_identity_perm; prop_hash_duplicate_rows_double; prop_hash_row_shift ] );
    ( "properties:graph",
      Alcotest.test_case "hypercube automorphisms" `Quick test_hypercube_automorphisms
      :: Alcotest.test_case "spanning tree edge count" `Quick test_spanning_tree_edge_count
      :: List.map qtest
           [ prop_relabel_preserves_degrees;
             prop_relabel_degree_at_image;
             prop_induced_edges_exact;
             prop_complement_degrees
           ] );
    ( "properties:perm",
      List.map qtest [ prop_perm_inverse_involution; prop_perm_apply_set_cardinal; prop_perm_apply_set_union ] );
    ( "properties:family", List.map qtest [ prop_dsym_graph_always_member; prop_dumbbell_size_and_cut ] );
    ( "properties:prime",
      List.map qtest [ prop_protocol1_prime_window_nonempty; prop_miller_rabin_agrees_with_trial_division ] )
  ]
