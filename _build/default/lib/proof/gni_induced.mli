(** The marked-subgraph formulation of GNI (Section 2.3's alternative
    definition): there is one network graph [G]; every node carries a mark
    from [{0, 1, ⊥}], and the nodes must decide whether the subgraph induced
    by the 0-marked nodes is {e not} isomorphic to the subgraph induced by
    the 1-marked ones. Unlike Definition 4, nodes here may communicate over
    the edges of [G] as usual — in particular, they exchange marks with
    their neighbors for free (node-to-node communication is not charged by
    the paper's cost measure).

    The protocol is Goldwasser–Sipser again, estimating the size of the
    compensated set

    {v S = { (embedded copy of H_b, automorphism) : b in {0,1} } v}

    where a copy of [H_b] is named by a full permutation [psi] of the
    vertex namespace ([psi] restricted to the marked class does the
    embedding; broadcasting a full permutation keeps it locally checkable).
    With the automorphism compensation of {!Gni_full}, each side contributes
    exactly [P(n, k) = n! / (n-k)!] elements regardless of the sides'
    symmetries, so [|S| = 2 P(n,k)] iff the induced subgraphs are
    non-isomorphic and [P(n,k)] otherwise — and sides as small as [k = 4]
    (where every graph is symmetric) work.

    The hashed object is the [2n x n] stack of (a) the embedded adjacency
    matrix [sum_{u marked b} \[psi(u), psi(N_b(u))\]] (closed rows, so the
    matrix also encodes which vertices carry the copy) and (b) the embedded
    automorphism rows [\[n + psi(u), {psi(alpha(u))}\]]. Marked-[b] nodes
    own their two rows; everyone else contributes zero and participates in
    the aggregation. The post-commitment audit point checks Lemma 3.1's
    equation for [alpha] on the induced matrix, which also forces
    [alpha] to fix the marked class setwise. *)

type instance = private {
  g : Ids_graph.Graph.t;
  marks : int array;  (** 0, 1, or -1 for ⊥ *)
  n : int;
  k : int;  (** size of each marked class *)
  h0 : Ids_graph.Graph.t;  (** induced subgraph of the 0-class, relabelled *)
  h1 : Ids_graph.Graph.t;
  candidates : (int array * int * int array * (int * Ids_graph.Bitset.t) array) array Lazy.t;
      (** [(psi, b, alpha, rows)] — one representative per element of S. *)
}

val make_instance : Ids_graph.Graph.t -> int array -> instance
(** @raise Invalid_argument if [g] is disconnected, marks are not in
    [{-1,0,1}], the classes differ in size, [k > 5], or the candidate
    enumeration would exceed [2^21] elements. *)

val plant : Ids_bignum.Rng.t -> n:int -> h0:Ids_graph.Graph.t -> h1:Ids_graph.Graph.t -> instance
(** Build a random connected [n]-vertex network whose randomly placed marked
    classes induce exactly [h0] and [h1]. *)

val yes_instance : Ids_bignum.Rng.t -> int -> instance
(** Plants the non-isomorphic pair P4 (path) vs K1,3 (star) — both
    symmetric, exercising the compensation — in a random [n]-vertex
    network. *)

val no_instance : Ids_bignum.Rng.t -> int -> instance
(** Plants two copies of P4. *)

type params = {
  q : int;
  field : int Ids_hash.Field.t;
  copies : int;
  repetitions : int;
  threshold : int;
  set_size : int;  (** [P(n, k)] *)
  yes_bound : float;
  no_bound : float;
}

val params_for : ?repetitions:int -> seed:int -> instance -> params

type prover

val prover_name : prover -> string

val honest : prover

val run_single : ?params:params -> seed:int -> instance -> prover -> Outcome.t

val run : ?params:params -> seed:int -> instance -> prover -> Outcome.t
