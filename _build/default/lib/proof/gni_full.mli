(** Unrestricted Graph Non-Isomorphism: the Goldwasser–Sipser protocol with
    the automorphism-compensation fix (Section 4's "fixed cleverly in [15]").

    {!Gni} restricts to asymmetric graphs so that [|S| = n!] vs [2 n!]. The
    full construction drops the restriction by estimating the size of the
    {e compensated} set

    {v S = { (H, beta) : H isomorphic to G_0 or G_1, beta in Aut(H) } v}

    For each [b], the pairs [(H, beta)] with [H ≅ G_b] number exactly [n!]
    {e regardless of symmetry}: the [n!/|Aut(G_b)|] isomorphic copies each
    carry [|Aut(G_b)|] automorphisms. So again [|S| = 2 n!] iff
    [(G_0, G_1) in GNI] and [n!] otherwise.

    The prover's response encodes an element of [S] as [(sigma, b, alpha)]
    with [alpha in Aut(G_b)]; the represented pair is
    [H = sigma(G_b)], [beta = sigma alpha sigma^(-1)]. The hashed object is
    the [2n x n] 0/1 matrix stacking [A_H] on top of the permutation matrix
    of [beta]; node [v] owns rows [sigma(v)] (content [sigma(N_b(v))]) and
    [n + sigma(v)] (content [{sigma(alpha(v))}]), both computable locally
    from the broadcast [sigma] and [alpha].

    {b Where the second Arthur round earns its keep.} The prover must not be
    able to smuggle a non-automorphism [alpha] (that would inflate [S] to
    [n! * n^n]). No node can check [alpha in Aut(G_b)] locally — it would
    need other nodes' rows. Instead the nodes run the Lemma 3.1 check from
    Protocol 1: [sum_v \[v, N_b(v)\] = sum_v \[alpha(v), alpha(N_b(v))\]],
    compared under a hash point drawn {e after} [alpha] is committed — which
    is exactly the audit challenge of the A-M-A-M pattern. A fake [alpha]
    survives with probability at most [(n^2+n)/q], which is folded into the
    NO-side bound.

    Costs remain [O(n log n)] per node per repetition ([sigma] and [alpha]
    broadcasts, a constant number of [Theta(n log n)]-bit field elements). *)

type instance = private {
  g0 : Ids_graph.Graph.t;
  g1 : Ids_graph.Graph.t;
  n : int;
  aut0 : int array list Lazy.t;  (** Aut(G_0) as image tables. *)
  aut1 : int array list Lazy.t;
  candidates : (int array * int * int array * (int * Ids_graph.Bitset.t) array) array Lazy.t;
      (** Distinct representatives [(sigma, b, alpha)] of the elements of
          [S], one per pair [(H, beta)], with the precomputed rows of the
          hashed [2n x n] stack. *)
}

val make_instance : Ids_graph.Graph.t -> Ids_graph.Graph.t -> instance
(** Like {!Gni.make_instance} but without the asymmetry restriction.
    @raise Invalid_argument if sizes differ, [g0] is disconnected, [n > 7],
    or an automorphism group is so large that enumerating
    [n! * |Aut|] pairs is impractical ([|Aut| > 256]). *)

val yes_instance : Ids_bignum.Rng.t -> int -> instance
(** A non-isomorphic pair in which at least one side is symmetric — the
    instances {!Gni} cannot handle. *)

val no_instance : Ids_bignum.Rng.t -> int -> instance
(** An isomorphic pair of symmetric graphs. *)

type params = {
  q : int;
  field : int Ids_hash.Field.t;
  copies : int;
  repetitions : int;
  threshold : int;
  factorial : int;
  yes_bound : float;
  no_bound : float;  (** includes the fake-automorphism term [(n^2+n)/q] *)
}

val params_for : ?repetitions:int -> seed:int -> instance -> params

type prover

val prover_name : prover -> string

val honest : prover

val adversary_fake_automorphism : prover
(** On repetitions with no genuine preimage, commits a random
    non-automorphism [alpha] (inflating the candidate set it searches); the
    post-commitment audit hash catches it with probability
    [1 - (n^2+n)/q]. *)

val run_single : ?params:params -> seed:int -> instance -> prover -> Outcome.t

val run : ?params:params -> seed:int -> instance -> prover -> Outcome.t
