lib/proof/pls.ml: Aggregation Array Fun Ids_graph Ids_network List Option Queue String
