lib/proof/aggregation.mli: Ids_graph Ids_hash
