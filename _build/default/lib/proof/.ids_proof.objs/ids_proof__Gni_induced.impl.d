lib/proof/gni_induced.ml: Aggregation Array Format Fun Hashtbl Ids_bignum Ids_graph Ids_hash Ids_network Lazy List Outcome Printf Stdlib String
