lib/proof/sym_dmam.mli: Ids_graph Ids_hash Outcome
