lib/proof/amplify.mli: Outcome
