lib/proof/amplify.ml: Float Outcome Printf
