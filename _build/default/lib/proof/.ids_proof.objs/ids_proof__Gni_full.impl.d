lib/proof/gni_full.ml: Aggregation Array Fun Hashtbl Ids_bignum Ids_graph Ids_hash Ids_network Lazy List Outcome String
