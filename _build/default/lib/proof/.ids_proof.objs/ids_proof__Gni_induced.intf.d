lib/proof/gni_induced.mli: Ids_bignum Ids_graph Ids_hash Lazy Outcome
