lib/proof/pls.mli: Ids_graph
