lib/proof/dsym.ml: Aggregation Array Ids_bignum Ids_graph Ids_hash Ids_network Outcome
