lib/proof/sym_dam.ml: Aggregation Array Fun Hashtbl Ids_bignum Ids_graph Ids_hash Ids_network List Outcome
