lib/proof/stats.ml: Format Outcome
