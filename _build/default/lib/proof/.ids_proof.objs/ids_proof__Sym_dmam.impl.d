lib/proof/sym_dmam.ml: Aggregation Array Float Fun Hashtbl Ids_bignum Ids_graph Ids_hash Ids_network List Option Outcome
