lib/proof/aggregation.ml: Array Fun Ids_graph Ids_hash List Stdlib
