lib/proof/rpls.mli: Ids_graph Pls
