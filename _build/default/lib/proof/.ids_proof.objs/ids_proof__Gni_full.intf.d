lib/proof/gni_full.mli: Ids_bignum Ids_graph Ids_hash Lazy Outcome
