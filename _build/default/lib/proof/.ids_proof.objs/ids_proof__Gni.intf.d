lib/proof/gni.mli: Ids_bignum Ids_graph Ids_hash Lazy Outcome
