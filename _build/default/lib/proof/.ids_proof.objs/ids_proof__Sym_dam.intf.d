lib/proof/sym_dam.mli: Ids_bignum Ids_graph Ids_hash Outcome
