lib/proof/stats.mli: Format Outcome
