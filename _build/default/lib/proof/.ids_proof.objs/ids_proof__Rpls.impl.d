lib/proof/rpls.ml: Array Ids_bignum Ids_graph Ids_hash Ids_network Pls String
