lib/proof/gni.ml: Aggregation Array Fun Ids_bignum Ids_graph Ids_hash Ids_network Lazy List Outcome
