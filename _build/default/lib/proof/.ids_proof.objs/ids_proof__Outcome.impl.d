lib/proof/outcome.ml: Format Ids_network
