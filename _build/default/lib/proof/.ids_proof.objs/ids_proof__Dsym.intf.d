lib/proof/dsym.mli: Ids_graph Ids_hash Outcome
