lib/proof/outcome.mli: Format Ids_network
