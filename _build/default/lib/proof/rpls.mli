(** Randomized proof labeling schemes (Baruch–Fraigniaud–Patt-Shamir, cited
    as [4] in the paper's related work).

    In an RPLS the prover's advice is unchanged, but the nodes' one-round
    {e verification} messages to their neighbors are randomized. The cited
    result: any PLS verification can be compressed exponentially — instead
    of shipping its whole advice copy to every neighbor for comparison, a
    node ships an [O(log n)]-bit linear fingerprint, at the price of a small
    one-sided error.

    The paper points out (Section 1.2) that this does {e not} subsume
    interactive proofs, because the RPLS still charges [Theta(n^2)] advice
    per node for Sym; this module makes that comparison measurable: same
    advice as {!Pls.Lcp_sym}, exponentially cheaper node-to-node
    verification, advice unchanged.

    The scheme: node [u] draws a random index [a_u] of the Theorem 3.2
    family and sends each neighbor [(a_u, h_(a_u)(advice_u))]; a neighbor
    recomputes the fingerprint on its own copy and rejects on mismatch. Two
    different copies collide with probability at most [m/p] per edge. All
    exact local checks (own matrix row, automorphism of the claimed matrix)
    are unchanged, so completeness is perfect and the soundness error is at
    most [2 |E| m / p]. *)

type verdict = {
  accepted : bool;
  advice_bits_per_node : int;
  verification_bits_per_edge : int;
      (** The randomized scheme's per-edge verification cost — compare with
          {!deterministic_verification_bits}. *)
}

val deterministic_verification_bits : Ids_graph.Graph.t -> int
(** Per-edge cost of the deterministic comparison the fingerprints replace:
    one full advice copy ([n^2 + n log n] bits). *)

val verify_sym : seed:int -> Ids_graph.Graph.t -> Pls.Lcp_sym.advice -> verdict
(** Randomized verification of the {!Pls.Lcp_sym} advice. *)

val soundness_error_bound : Ids_graph.Graph.t -> p:int -> float
(** The union bound [2 |E| (n^2+n) / p] on the probability that some
    corrupted copy slips past every fingerprint. *)
