type estimate = { trials : int; accepts : int; rate : float; mean_bits : float; max_bits : int }

let acceptance ~trials run =
  if trials <= 0 then invalid_arg "Stats.acceptance: need positive trials";
  let accepts = ref 0 and bits_sum = ref 0 and bits_max = ref 0 in
  for seed = 1 to trials do
    let o = run seed in
    if o.Outcome.accepted then incr accepts;
    bits_sum := !bits_sum + o.Outcome.max_bits_per_node;
    if o.Outcome.max_bits_per_node > !bits_max then bits_max := o.Outcome.max_bits_per_node
  done;
  { trials;
    accepts = !accepts;
    rate = float_of_int !accepts /. float_of_int trials;
    mean_bits = float_of_int !bits_sum /. float_of_int trials;
    max_bits = !bits_max
  }

let pp fmt e =
  Format.fprintf fmt "%d/%d accepted (%.3f), %.1f bits/node mean" e.accepts e.trials e.rate e.mean_bits
